// None-line-of-sight demo (§VI-J): the property that separates mmWave
// sensing from vision.  The same trained model estimates hand poses with
// an A4 sheet, a cloth, and a wooden board blocking the optical path — a
// camera would see nothing, the radar still produces skeletons.

#include <cstdio>

#include "mmhand/eval/experiment.hpp"

using namespace mmhand;

int main() {
  std::printf("mmHand occlusion robustness demo\n");
  std::printf("================================\n\n");

  eval::ProtocolConfig config = eval::ProtocolConfig::fast();
  config.train_duration_s = 8.0;
  config.train.epochs = 6;
  eval::Experiment experiment(config);
  experiment.prepare("mmhand_cache/quickstart_occlusion");

  std::printf("%-14s %-12s %-12s %s\n", "obstacle", "MPJPE (mm)",
              "PCK@40 (%)", "camera would see");
  for (const auto& [obstacle, name, vision] :
       std::vector<std::tuple<sim::Obstacle, const char*, const char*>>{
           {sim::Obstacle::kNone, "none", "the hand"},
           {sim::Obstacle::kPaper, "A4 paper", "paper"},
           {sim::Obstacle::kCloth, "cloth", "cloth"},
           {sim::Obstacle::kBoard, "wood board", "wood"}}) {
    eval::EvalAccumulator acc;
    for (int user = 0; user < config.num_users; ++user) {
      auto scenario = experiment.default_scenario(user);
      scenario.obstacle = obstacle;
      scenario.duration_s = 3.0;
      acc.merge(experiment.evaluate_scenario(scenario));
    }
    std::printf("%-14s %-12.1f %-12.1f %s\n", name, acc.mpjpe_mm(),
                acc.pck(40.0), vision);
  }
  std::printf(
      "\nmmWave penetrates paper and cloth with modest attenuation and "
      "still produces\nusable skeletons behind a thin board — the "
      "illumination-independent, none\nline-of-sight capability of §VI-J. "
      "A vision system fails in every occluded row.\n");
  return 0;
}
