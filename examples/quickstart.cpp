// Quickstart: the whole mmHand pipeline in one file.
//
//   1. simulate a mmWave capture of a gesturing hand (the IWR1443 stand-in)
//   2. pre-process IF signals into Radar Cubes (§III)
//   3. train the joint-regression network on a small recording (§IV)
//   4. predict 3-D skeletons on held-out frames and print the error
//
// Uses a deliberately small configuration so it finishes in about a
// minute on a laptop CPU.  See gesture_tracking.cpp and mesh_export.cpp
// for the full-scale cached models.

#include <cstdio>

#include "mmhand/eval/experiment.hpp"
#include "mmhand/eval/metrics.hpp"

using namespace mmhand;

int main() {
  std::printf("mmHand quickstart\n=================\n\n");

  // A small protocol: 4 simulated users, 2 folds, tiny network.
  eval::ProtocolConfig config = eval::ProtocolConfig::fast();
  config.train_duration_s = 6.0;
  config.train.epochs = 6;

  std::printf("simulating radar captures and training (%d users, %d-fold "
              "CV)...\n\n",
              config.num_users, config.folds);
  eval::Experiment experiment(config);
  experiment.prepare("mmhand_cache/quickstart");

  // Evaluate each held-out user, exactly like §VI-B.
  eval::EvalAccumulator all;
  for (int user = 0; user < config.num_users; ++user) {
    const auto acc = experiment.evaluate_user(user);
    std::printf("user %d: MPJPE %6.1f mm   3D-PCK@40mm %5.1f %%\n", user + 1,
                acc.mpjpe_mm(), acc.pck(40.0));
    all.merge(acc);
  }
  std::printf("\noverall: MPJPE %.1f mm, 3D-PCK@40mm %.1f %%, AUC(0-60mm) "
              "%.3f\n",
              all.mpjpe_mm(), all.pck(40.0), all.auc(60.0, 61));

  // Show one predicted skeleton against its ground truth.
  auto& model = experiment.model_for_user(0);
  const auto recording =
      experiment.record_test(experiment.default_scenario(0));
  const auto predictions = pose::predict_recording(model, recording);
  if (!predictions.empty()) {
    const auto& p = predictions.front();
    std::printf("\npredicted skeleton at frame %d (x, y, z in meters):\n",
                p.frame_index);
    for (int j = 0; j < hand::kNumJoints; ++j)
      std::printf("  %-11s pred (%6.3f, %6.3f, %6.3f)   truth (%6.3f, "
                  "%6.3f, %6.3f)\n",
                  std::string(hand::joint_name(j)).c_str(),
                  p.joints[static_cast<std::size_t>(j)].x,
                  p.joints[static_cast<std::size_t>(j)].y,
                  p.joints[static_cast<std::size_t>(j)].z,
                  p.oracle[static_cast<std::size_t>(j)].x,
                  p.oracle[static_cast<std::size_t>(j)].y,
                  p.oracle[static_cast<std::size_t>(j)].z);
  }
  std::printf("\ndone. models cached under mmhand_cache/quickstart.\n");
  return 0;
}
