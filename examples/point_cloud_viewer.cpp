// Point-cloud diagnostic: the classic interpretable view of what the radar
// sees.  Simulates a short gesture capture, extracts a sparse point cloud
// per frame, tracks its centroid against the true hand position, and dumps
// the clouds as OBJ point sets for inspection.

#include <cstdio>
#include <filesystem>

#include "mmhand/hand/gesture.hpp"
#include "mmhand/hand/kinematics.hpp"
#include "mmhand/radar/point_cloud.hpp"
#include "mmhand/sim/dataset.hpp"

using namespace mmhand;

int main() {
  std::printf("mmHand radar point-cloud viewer\n");
  std::printf("===============================\n\n");

  radar::ChirpConfig chirp;
  chirp.noise_stddev = 0.008;
  radar::PipelineConfig pipeline_config;
  radar::AntennaArray array(chirp);
  radar::IfSimulator if_sim(chirp, array);
  radar::RadarPipeline pipeline(chirp, array, pipeline_config);

  const std::string out_dir = "mmhand_pointclouds";
  std::filesystem::create_directories(out_dir);

  // A short continuous gesture performance.
  hand::GestureScriptConfig script_cfg;
  hand::GestureScript script(script_cfg, Rng(3), 2.0);
  const auto profile = hand::HandProfile::reference();
  sim::HandSceneConfig scene_cfg;
  Rng scene_rng(4), noise_rng(5);

  std::printf("%-6s %-8s %-26s %-26s %s\n", "frame", "points",
              "cloud centroid (m)", "true palm center (m)", "offset (mm)");
  const double dt = chirp.frame_period_s;
  for (int f = 0; f < 20; ++f) {
    const double t = f * dt * 5;  // sample every 5th frame time
    const auto joints = hand::forward_kinematics(profile, script.pose_at(t));
    const auto prev =
        hand::forward_kinematics(profile, script.pose_at(std::max(0.0, t - dt)));
    const auto scene =
        sim::build_hand_scene(joints, prev, dt, scene_cfg, scene_rng);
    const auto cube =
        pipeline.process_frame(if_sim.simulate_frame(scene, 0.0, noise_rng));
    const auto cloud = radar::extract_point_cloud(cube, pipeline);
    const Vec3 centroid = radar::point_cloud_centroid(cloud);
    const Vec3 palm = (joints[hand::kWrist] + joints[9]) * 0.5;

    std::printf("%-6d %-8zu (%5.2f, %5.2f, %5.2f)       (%5.2f, %5.2f, "
                "%5.2f)       %6.1f\n",
                f, cloud.size(), centroid.x, centroid.y, centroid.z, palm.x,
                palm.y, palm.z, 1000.0 * distance(centroid, palm));

    // Dump the cloud as an OBJ point set.
    char path[128];
    std::snprintf(path, sizeof(path), "%s/cloud_%03d.obj", out_dir.c_str(),
                  f);
    std::FILE* obj = std::fopen(path, "w");
    if (obj) {
      for (const auto& p : cloud)
        std::fprintf(obj, "v %f %f %f\n", p.position.x, p.position.y,
                     p.position.z);
      std::fclose(obj);
    }
  }
  std::printf("\npoint clouds written to %s/ (OBJ vertex sets).\n",
              out_dir.c_str());
  std::printf("the centroid tracks the palm to within a few cm — the raw "
              "signal the joint\nregression network refines into "
              "millimeter-scale skeletons.\n");
  return 0;
}
