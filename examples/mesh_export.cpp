// Mesh reconstruction demo (§V): reconstructs MANO meshes for a set of
// gestures and for a continuous gesture transition, writing viewable
// Wavefront OBJ files — the "realistic 3D animations" of Fig. 10/11.

#include <cstdio>
#include <filesystem>

#include "mmhand/hand/gesture.hpp"
#include "mmhand/hand/kinematics.hpp"
#include "mmhand/mesh/obj_export.hpp"
#include "mmhand/mesh/reconstruction.hpp"

using namespace mmhand;

int main() {
  std::printf("mmHand mesh reconstruction demo\n");
  std::printf("===============================\n\n");

  const std::string out_dir = "mmhand_meshes";
  std::filesystem::create_directories(out_dir);

  // Train the shape/IK networks on the parametric rig (cached weights are
  // intentionally not reused here so the demo is self-contained).
  Rng rng(7);
  const auto tmpl = mesh::HandTemplate::create(hand::HandProfile::reference());
  mesh::MeshReconstructor reconstructor(tmpl, rng);
  std::printf("training the shape/IK networks on the parametric rig...\n");
  const double err = reconstructor.train({});
  std::printf("held-out joint reconstruction error: %.1f mm\n\n",
              1000.0 * err);

  const auto profile = hand::HandProfile::reference();
  const Quaternion facing{0.0, 0.0, 0.7071067811865476, 0.7071067811865476};

  // --- Static gestures (Fig. 10). ---
  for (hand::Gesture g : {hand::Gesture::kOpenPalm, hand::Gesture::kFist,
                          hand::Gesture::kPoint, hand::Gesture::kPinch,
                          hand::Gesture::kCount3, hand::Gesture::kOkSign}) {
    hand::HandPose pose;
    pose.fingers = hand::gesture_articulation(g);
    pose.orientation = facing;
    pose.wrist_position = Vec3{0.0, 0.30, 0.0};
    const auto joints = hand::forward_kinematics(profile, pose);
    auto result = reconstructor.reconstruct(joints);

    const std::string name(hand::gesture_name(g));
    mesh::write_obj(out_dir + "/" + name + ".obj", result.mesh);
    mesh::write_skeleton_obj(out_dir + "/" + name + "_skeleton.obj", joints);
    double fit = 0.0;
    for (int j = 0; j < hand::kNumJoints; ++j)
      fit += 1000.0 * distance(result.joints[static_cast<std::size_t>(j)],
                               joints[static_cast<std::size_t>(j)]);
    std::printf("  %-10s -> %s/%s.obj  (%zu verts, %zu faces, joint fit "
                "%.1f mm)\n",
                name.c_str(), out_dir.c_str(), name.c_str(),
                result.mesh.vertices.size(), result.mesh.faces.size(),
                fit / hand::kNumJoints);
  }

  // --- A continuous transition (Fig. 11): open palm -> fist. ---
  std::printf("\ncontinuous open->fist transition:\n");
  hand::HandPose open_pose, fist_pose;
  open_pose.fingers = hand::gesture_articulation(hand::Gesture::kOpenPalm);
  fist_pose.fingers = hand::gesture_articulation(hand::Gesture::kFist);
  open_pose.orientation = fist_pose.orientation = facing;
  open_pose.wrist_position = fist_pose.wrist_position = Vec3{0.0, 0.30, 0.0};
  for (int step = 0; step <= 4; ++step) {
    const double t = step / 4.0;
    const auto pose = hand::HandPose::lerp(open_pose, fist_pose, t);
    const auto joints = hand::forward_kinematics(profile, pose);
    auto result = reconstructor.reconstruct(joints);
    char path[128];
    std::snprintf(path, sizeof(path), "%s/transition_%02d.obj",
                  out_dir.c_str(), step);
    mesh::write_obj(path, result.mesh);
    std::printf("  t=%.2f -> %s\n", t, path);
  }
  std::printf("\nopen the OBJ files in any mesh viewer.\n");
  return 0;
}
