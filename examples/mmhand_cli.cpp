// mmhand_cli — a small command-line front end to the library, the entry
// point a downstream user scripts against.
//
//   mmhand_cli simulate [--user N] [--distance M] [--seconds S] [--obj DIR]
//       simulate a capture and print per-frame cube stats / point clouds
//   mmhand_cli train [--fast] [--cache DIR]
//       train (or load) the cross-validation fold models
//   mmhand_cli eval [--fast] [--cache DIR] [--user N] [--glove silk|cotton]
//                   [--obstacle paper|cloth|board] [--distance M]
//       evaluate a scenario with the held-out fold model
//   mmhand_cli mesh --gesture NAME [--out FILE]
//       reconstruct a MANO mesh for a named gesture and write an OBJ
//   mmhand_cli predict [--fast] [--cache DIR] [--user N] [--seconds S]
//                      [--stride N] [--repeat R]
//       run recording-level inference in a loop — the driver the CI
//       telemetry job points MMHAND_TELEMETRY / MMHAND_FLIGHT at

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "mmhand/eval/model_cache.hpp"
#include "mmhand/mesh/obj_export.hpp"
#include "mmhand/pose/inference.hpp"
#include "mmhand/radar/point_cloud.hpp"

using namespace mmhand;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  bool flag(const std::string& name) const {
    return options.count(name) > 0;
  }
  std::string get(const std::string& name, const std::string& fallback)
      const {
    auto it = options.find(name);
    return it == options.end() ? fallback : it->second;
  }
  double get_double(const std::string& name, double fallback) const {
    auto it = options.find(name);
    return it == options.end() ? fallback : std::stod(it->second);
  }
  int get_int(const std::string& name, int fallback) const {
    auto it = options.find(name);
    return it == options.end() ? fallback : std::stoi(it->second);
  }
};

Args parse(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    key = key.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.options.insert_or_assign(key, std::string(argv[++i]));
    } else {
      args.options.insert_or_assign(key, std::string("1"));
    }
  }
  return args;
}

eval::ProtocolConfig protocol_for(const Args& args) {
  return args.flag("fast") ? eval::ProtocolConfig::fast()
                           : eval::ProtocolConfig::standard();
}

int cmd_simulate(const Args& args) {
  auto cfg = eval::ProtocolConfig::standard();
  sim::DatasetBuilder builder(cfg.chirp, cfg.pipeline);
  sim::ScenarioConfig scenario;
  scenario.user_id = args.get_int("user", 0);
  scenario.hand_distance_m = args.get_double("distance", 0.30);
  scenario.duration_s = args.get_double("seconds", 1.0);
  const auto recording = builder.record(scenario);

  std::printf("%-7s %-10s %-9s %s\n", "frame", "cube max", "points",
              "gesture");
  for (std::size_t f = 0; f < recording.frames.size(); f += 5) {
    const auto& frame = recording.frames[f];
    const auto cloud =
        radar::extract_point_cloud(frame.cube, builder.pipeline());
    std::printf("%-7zu %-10.2f %-9zu %s\n", f, frame.cube.max_value(),
                cloud.size(),
                std::string(hand::gesture_name(frame.gesture)).c_str());
  }
  std::printf("simulated %zu frames (user %d, %.0f cm)\n",
              recording.frames.size(), scenario.user_id,
              100.0 * scenario.hand_distance_m);
  return 0;
}

int cmd_train(const Args& args) {
  eval::Experiment experiment(protocol_for(args));
  experiment.prepare(args.get("cache", eval::cache_directory()));
  std::printf("fold models ready.\n");
  return 0;
}

int cmd_eval(const Args& args) {
  eval::Experiment experiment(protocol_for(args));
  experiment.prepare(args.get("cache", eval::cache_directory()));

  sim::ScenarioConfig scenario =
      experiment.default_scenario(args.get_int("user", 0));
  scenario.hand_distance_m =
      args.get_double("distance", scenario.hand_distance_m);
  const std::string glove = args.get("glove", "");
  if (glove == "silk") scenario.glove = sim::GloveType::kSilk;
  if (glove == "cotton") scenario.glove = sim::GloveType::kCotton;
  const std::string obstacle = args.get("obstacle", "");
  if (obstacle == "paper") scenario.obstacle = sim::Obstacle::kPaper;
  if (obstacle == "cloth") scenario.obstacle = sim::Obstacle::kCloth;
  if (obstacle == "board") scenario.obstacle = sim::Obstacle::kBoard;

  const auto acc = experiment.evaluate_scenario(scenario);
  std::printf("user %d  distance %.0f cm  glove %s  obstacle %s\n",
              scenario.user_id, 100.0 * scenario.hand_distance_m,
              glove.empty() ? "none" : glove.c_str(),
              obstacle.empty() ? "none" : obstacle.c_str());
  std::printf("MPJPE      %6.1f mm (palm %.1f / fingers %.1f)\n",
              acc.mpjpe_mm(), acc.mpjpe_mm(eval::JointSubset::kPalm),
              acc.mpjpe_mm(eval::JointSubset::kFingers));
  std::printf("3D-PCK@40  %6.1f %%\n", acc.pck(40.0));
  std::printf("AUC(0-60)  %6.3f\n", acc.auc(60.0, 61));
  return 0;
}

int cmd_predict(const Args& args) {
  eval::Experiment experiment(protocol_for(args));
  experiment.prepare(args.get("cache", eval::cache_directory()));

  sim::ScenarioConfig scenario =
      experiment.default_scenario(args.get_int("user", 0));
  scenario.duration_s = args.get_double("seconds", scenario.duration_s);
  const auto recording = experiment.record_test(scenario);
  auto& model = experiment.model_for_user(scenario.user_id);

  const int stride = args.get_int("stride", 1);
  const int repeat = args.get_int("repeat", 1);
  std::size_t segments = 0;
  for (int r = 0; r < repeat; ++r) {
    const auto predictions =
        pose::predict_recording(model, recording, stride);
    segments += predictions.size();
  }
  std::printf("predicted %zu segments over %d pass%s (%zu frames, "
              "user %d)\n",
              segments, repeat, repeat == 1 ? "" : "es",
              recording.frames.size(), scenario.user_id);
  return 0;
}

int cmd_mesh(const Args& args) {
  const std::string name = args.get("gesture", "open_palm");
  hand::Gesture gesture = hand::Gesture::kOpenPalm;
  bool found = false;
  for (hand::Gesture g : hand::all_gestures())
    if (hand::gesture_name(g) == name) {
      gesture = g;
      found = true;
    }
  if (!found) {
    std::fprintf(stderr, "unknown gesture '%s'; options:", name.c_str());
    for (hand::Gesture g : hand::all_gestures())
      std::fprintf(stderr, " %s", std::string(hand::gesture_name(g)).c_str());
    std::fprintf(stderr, "\n");
    return 1;
  }

  auto reconstructor = eval::prepared_mesh_reconstructor();
  hand::HandPose pose;
  pose.fingers = hand::gesture_articulation(gesture);
  pose.orientation = Quaternion{0.0, 0.0, 0.7071067811865476,
                                0.7071067811865476};
  pose.wrist_position = Vec3{0.0, 0.30, 0.0};
  const auto joints = hand::forward_kinematics(
      hand::HandProfile::reference(), pose);
  const auto result = reconstructor->reconstruct(joints);
  const std::string out = args.get("out", name + ".obj");
  mesh::write_obj(out, result.mesh);
  std::printf("wrote %s (%zu vertices, %zu faces)\n", out.c_str(),
              result.mesh.vertices.size(), result.mesh.faces.size());
  return 0;
}

void usage() {
  std::printf(
      "mmhand_cli <command> [options]\n"
      "  simulate [--user N] [--distance M] [--seconds S]\n"
      "  train    [--fast] [--cache DIR]\n"
      "  eval     [--fast] [--cache DIR] [--user N] [--distance M]\n"
      "           [--glove silk|cotton] [--obstacle paper|cloth|board]\n"
      "  mesh     --gesture NAME [--out FILE]\n"
      "  predict  [--fast] [--cache DIR] [--user N] [--seconds S]\n"
      "           [--stride N] [--repeat R]\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  try {
    if (args.command == "simulate") return cmd_simulate(args);
    if (args.command == "train") return cmd_train(args);
    if (args.command == "eval") return cmd_eval(args);
    if (args.command == "mesh") return cmd_mesh(args);
    if (args.command == "predict") return cmd_predict(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
  return args.command.empty() ? 0 : 1;
}
