// Continuous gesture tracking — the interaction scenario the paper's
// introduction motivates (user-interface control).  A user performs a
// stream of counting/interaction gestures in front of the radar; mmHand
// tracks the skeleton and the demo classifies the gesture per window by
// nearest-articulation matching against the gesture vocabulary.

#include <cstdio>

#include "mmhand/eval/experiment.hpp"
#include "mmhand/pose/gesture_classifier.hpp"
#include "mmhand/pose/smoothing.hpp"

using namespace mmhand;

int main() {
  std::printf("mmHand continuous gesture tracking demo\n");
  std::printf("=======================================\n\n");

  eval::ProtocolConfig config = eval::ProtocolConfig::fast();
  config.train_duration_s = 8.0;
  config.train.epochs = 6;
  eval::Experiment experiment(config);
  experiment.prepare("mmhand_cache/quickstart_tracking");

  // A fresh interaction session: counting gestures at 28 cm.
  sim::ScenarioConfig scenario = experiment.default_scenario(1);
  scenario.duration_s = 6.0;
  scenario.vocabulary = {hand::Gesture::kPoint, hand::Gesture::kCount2,
                         hand::Gesture::kCount3, hand::Gesture::kCount5,
                         hand::Gesture::kFist};
  scenario.seed = 0x7Eac;
  const auto recording = experiment.record_test(scenario);
  auto& model = experiment.model_for_user(scenario.user_id);
  // Kalman smoothing over the prediction stream (constant-velocity model).
  const auto predictions = pose::smooth_predictions(
      pose::predict_recording(model, recording),
      pose::KalmanConfig{.dt = 4 * experiment.config().chirp.frame_period_s});

  pose::GestureClassifier classifier(scenario.vocabulary);
  pose::ConfusionMatrix confusion(scenario.vocabulary);

  std::printf("%-8s %-24s %-14s %-14s %s\n", "frame", "wrist position (m)",
              "true gesture", "classified", "MPJPE (mm)");
  int correct = 0;
  for (const auto& p : predictions) {
    const auto truth =
        recording.frames[static_cast<std::size_t>(p.frame_index)].gesture;
    const auto guessed = classifier.classify(p.joints);
    confusion.add(truth, guessed);
    double err = 0.0;
    for (int j = 0; j < hand::kNumJoints; ++j)
      err += 1000.0 * distance(p.joints[static_cast<std::size_t>(j)],
                               p.oracle[static_cast<std::size_t>(j)]);
    err /= hand::kNumJoints;
    if (guessed == truth) ++correct;
    std::printf("%-8d (%5.2f, %5.2f, %5.2f)     %-14s %-14s %6.1f\n",
                p.frame_index, p.joints[0].x, p.joints[0].y, p.joints[0].z,
                std::string(hand::gesture_name(truth)).c_str(),
                std::string(hand::gesture_name(guessed)).c_str(), err);
  }
  std::printf("\ngesture agreement: %d / %zu windows (accuracy %.0f %%)\n",
              correct, predictions.size(), 100.0 * confusion.accuracy());
  std::printf("(classification is a nearest-template heuristic on the "
              "predicted skeleton —\nthe skeleton itself is the system "
              "output; see §I's interaction use cases.)\n");
  return 0;
}
