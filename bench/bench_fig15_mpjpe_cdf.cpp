// Reproduces Fig. 15: the cumulative distribution of per-frame MPJPE.
// Paper: 90.2 % of predicted hand joints' MPJPE within 30 mm.

#include "bench_common.hpp"

#include "mmhand/common/stats.hpp"

using namespace mmhand;

int main() {
  auto experiment = eval::prepared_standard_experiment();
  eval::print_header("Fig. 15 — CDF of MPJPE");

  eval::EvalAccumulator acc;
  for (int user = 0; user < experiment->config().num_users; ++user)
    acc.merge(experiment->evaluate_user(user));

  const auto& frame_errors = acc.frame_mpjpe_mm();
  const auto cdf = empirical_cdf(frame_errors, 13, 60.0);
  std::vector<std::vector<std::string>> rows{{"MPJPE (mm)", "CDF"}};
  for (const auto& p : cdf)
    rows.push_back({eval::fmt(p.value, 0), eval::fmt(p.cumulative, 3)});
  eval::print_table(rows);

  eval::print_metric("Fraction of frames within 30 mm",
                     100.0 * fraction_below(frame_errors, 30.0),
                     "% (paper: 90.2)");
  eval::print_metric("Median frame MPJPE", percentile(frame_errors, 50.0),
                     "mm");
  eval::print_metric("90th percentile", percentile(frame_errors, 90.0),
                     "mm");
  return 0;
}
