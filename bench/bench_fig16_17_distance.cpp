// Reproduces Fig. 16/17: MPJPE and 3D-PCK versus hand-radar distance
// (20-80 cm; the model trains on 20-40 cm).
// Paper: stable through ~60 cm, degrading beyond; palm more accurate than
// fingers at every distance.

#include "bench_common.hpp"

using namespace mmhand;

int main() {
  auto experiment = eval::prepared_standard_experiment();
  eval::print_header("Fig. 16/17 — MPJPE and 3D-PCK vs distance");

  std::vector<std::vector<std::string>> rows{
      {"Distance (cm)", "MPJPE all", "MPJPE palm", "MPJPE fingers",
       "PCK@40 all", "PCK palm", "PCK fingers"}};
  for (int cm = 20; cm <= 80; cm += 5) {
    const auto acc = bench::evaluate_sweep(
        *experiment, [cm](sim::ScenarioConfig& s) {
          s.hand_distance_m = cm / 100.0;
          s.seed ^= static_cast<std::uint64_t>(cm);
        });
    rows.push_back(
        {std::to_string(cm), eval::fmt(acc.mpjpe_mm()),
         eval::fmt(acc.mpjpe_mm(eval::JointSubset::kPalm)),
         eval::fmt(acc.mpjpe_mm(eval::JointSubset::kFingers)),
         eval::fmt(acc.pck(40.0)),
         eval::fmt(acc.pck(40.0, eval::JointSubset::kPalm)),
         eval::fmt(acc.pck(40.0, eval::JointSubset::kFingers))});
  }
  eval::print_table(rows);
  std::printf(
      "\nExpected shape (paper): roughly flat 20-60 cm, MPJPE rising and "
      "PCK falling\npast 60 cm; palm < fingers error throughout.\n");
  return 0;
}
