// Reproduces Fig. 14: 3D-PCK versus error threshold (0-60 mm) for palm
// joints, finger joints, and overall, with the AUC of each curve.
// Paper: AUC palm 0.722, fingers 0.691, overall 0.707; overall PCK@40mm
// reaches 95.1 %; palm beats fingers at every threshold.

#include "bench_common.hpp"

using namespace mmhand;

int main() {
  auto experiment = eval::prepared_standard_experiment();
  eval::print_header("Fig. 14 — 3D-PCK vs threshold (palm / fingers / all)");

  eval::EvalAccumulator acc;
  for (int user = 0; user < experiment->config().num_users; ++user)
    acc.merge(experiment->evaluate_user(user));

  const int steps = 13;  // 0, 5, ..., 60 mm
  const auto palm = acc.pck_curve(60.0, steps, eval::JointSubset::kPalm);
  const auto fingers =
      acc.pck_curve(60.0, steps, eval::JointSubset::kFingers);
  const auto overall = acc.pck_curve(60.0, steps, eval::JointSubset::kAll);

  std::vector<std::vector<std::string>> rows{
      {"Threshold (mm)", "Palm (%)", "Fingers (%)", "Overall (%)"}};
  for (int i = 0; i < steps; ++i)
    rows.push_back({eval::fmt(overall[static_cast<std::size_t>(i)].threshold_mm, 0),
                    eval::fmt(palm[static_cast<std::size_t>(i)].pck),
                    eval::fmt(fingers[static_cast<std::size_t>(i)].pck),
                    eval::fmt(overall[static_cast<std::size_t>(i)].pck)});
  eval::print_table(rows);

  eval::print_metric("AUC palm", acc.auc(60.0, 61, eval::JointSubset::kPalm),
                     "(paper: 0.722)");
  eval::print_metric("AUC fingers",
                     acc.auc(60.0, 61, eval::JointSubset::kFingers),
                     "(paper: 0.691)");
  eval::print_metric("AUC overall",
                     acc.auc(60.0, 61, eval::JointSubset::kAll),
                     "(paper: 0.707)");
  eval::print_metric("Overall PCK @ 40mm", acc.pck(40.0), "% (paper: 95.1)");
  return 0;
}
