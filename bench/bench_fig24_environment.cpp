// Reproduces Fig. 24: MPJPE and 3D-PCK across the three evaluation
// environments (playground / corridor / classroom).
// Paper: the spread between environments is small (<= 3.2 mm) because
// bandpass filtering localizes the hand's range band.

#include "bench_common.hpp"

#include "mmhand/common/stats.hpp"

using namespace mmhand;

int main() {
  auto experiment = eval::prepared_standard_experiment();
  eval::print_header("Fig. 24 — impact of environment");

  std::vector<std::vector<std::string>> rows{
      {"Environment", "MPJPE (mm)", "PCK@40 (%)"}};
  std::vector<double> mpjpes;
  for (const auto& [env, name] :
       std::vector<std::pair<sim::Environment, std::string>>{
           {sim::Environment::kPlayground, "playground"},
           {sim::Environment::kCorridor, "corridor"},
           {sim::Environment::kClassroom, "classroom"}}) {
    const auto acc = bench::evaluate_sweep(
        *experiment, [&](sim::ScenarioConfig& s) {
          s.clutter.environment = env;
          s.seed ^= 0xE417u;
        });
    mpjpes.push_back(acc.mpjpe_mm());
    rows.push_back(
        {name, eval::fmt(acc.mpjpe_mm()), eval::fmt(acc.pck(40.0))});
  }
  // Overall across all three.
  rows.push_back({"overall", eval::fmt(mean(mpjpes)), "-"});
  eval::print_table(rows);
  eval::print_metric("Max environment spread",
                     max_value(mpjpes) - min_value(mpjpes),
                     "mm (paper: <= 3.2)");
  std::printf(
      "\nExpected shape (paper): insignificant differences — background "
      "clutter sits\noutside the hand's bandpass-filtered range band.\n");
  return 0;
}
