// Reproduces Fig. 19: MPJPE and 3D-PCK for hand bearings from -45 to +45
// degrees in 15-degree bins (distance fixed at 40 cm).
// Paper: errors grow with |angle|, sharply past +-30 deg (the angle-FFT's
// sensitivity falls as sin(theta) compresses); within +-30 deg the means
// are 17.95 mm / 95.78 %.

#include "bench_common.hpp"

#include "mmhand/common/stats.hpp"

using namespace mmhand;

int main() {
  auto experiment = eval::prepared_standard_experiment();
  eval::print_header("Fig. 19 — MPJPE and 3D-PCK vs hand bearing");

  struct Bin {
    int lo, hi;
  };
  const std::vector<Bin> bins{{-45, -30}, {-30, -15}, {-15, 0},
                              {0, 15},    {15, 30},   {30, 45}};
  std::vector<std::vector<std::string>> rows{
      {"Angle (deg)", "MPJPE (mm)", "PCK@40 (%)"}};
  std::vector<double> inner_mpjpe, inner_pck;
  for (const auto& bin : bins) {
    const double center = 0.5 * (bin.lo + bin.hi);
    const auto acc = bench::evaluate_sweep(
        *experiment, [&](sim::ScenarioConfig& s) {
          // The paper runs this at 40 cm; our training envelope tops out
          // at ~37 cm, so the sweep uses an interior range to isolate the
          // angle effect from range extrapolation (see EXPERIMENTS.md).
          s.hand_distance_m = 0.30;
          s.hand_azimuth_deg = center;
          s.seed ^= static_cast<std::uint64_t>(bin.lo + 90);
        });
    char label[32];
    std::snprintf(label, sizeof(label), "(%d,%d)", bin.lo, bin.hi);
    rows.push_back(
        {label, eval::fmt(acc.mpjpe_mm()), eval::fmt(acc.pck(40.0))});
    if (bin.lo >= -30 && bin.hi <= 30) {
      inner_mpjpe.push_back(acc.mpjpe_mm());
      inner_pck.push_back(acc.pck(40.0));
    }
  }
  eval::print_table(rows);
  eval::print_metric("Mean MPJPE within +-30 deg", mean(inner_mpjpe),
                     "mm (paper: 17.95)");
  eval::print_metric("Mean PCK within +-30 deg", mean(inner_pck),
                     "% (paper: 95.78)");
  std::printf(
      "\nExpected shape (paper): symmetric degradation as |angle| grows, "
      "worst in the\n(-45,-30) and (30,45) bins beyond the zoom-FFT's "
      "design span.\n");
  return 0;
}
