// Ablation: the temporal model (§IV-A).  The paper extracts temporal
// features with an LSTM; this bench compares LSTM, GRU and no temporal
// model at all (per-segment features straight into the regression head).

#include "bench_common.hpp"

#include "mmhand/common/stats.hpp"

using namespace mmhand;

namespace {

double evaluate_variant(const eval::ProtocolConfig& cfg) {
  eval::Experiment experiment(cfg);
  experiment.prepare(eval::cache_directory());
  std::vector<double> mpjpe;
  for (int user = 0; user < cfg.num_users; ++user)
    mpjpe.push_back(experiment.evaluate_user(user).mpjpe_mm());
  return mean(mpjpe);
}

}  // namespace

int main() {
  eval::print_header("Ablation — temporal feature extractor");

  std::vector<std::vector<std::string>> rows{{"Temporal model",
                                              "MPJPE (mm)"}};
  for (const auto& [kind, name] :
       std::vector<std::pair<pose::TemporalKind, std::string>>{
           {pose::TemporalKind::kLstm, "LSTM (paper)"},
           {pose::TemporalKind::kGru, "GRU"},
           {pose::TemporalKind::kNone, "none (per-segment only)"}}) {
    auto cfg = bench::ablation_protocol();
    cfg.posenet.temporal = kind;
    rows.push_back({name, eval::fmt(evaluate_variant(cfg))});
  }
  eval::print_table(rows);
  std::printf(
      "\nExpected: recurrent temporal models beat the per-segment-only "
      "variant —\nadjacent frames are highly correlated (§IV-A's rationale "
      "for the LSTM).\n");
  return 0;
}
