// Reproduces §VI-H (handheld objects): a table-tennis ball, a headphone
// case, a pen, and a power bank held during gestures.
// Paper (qualitative): small palm-held objects barely interfere; the pen
// reads as an extra finger; the power bank masks the hand and breaks the
// estimate.

#include "bench_common.hpp"

using namespace mmhand;

int main() {
  auto experiment = eval::prepared_standard_experiment();
  eval::print_header("§VI-H — impact of handheld objects");

  std::vector<std::vector<std::string>> rows{
      {"Object", "MPJPE (mm)", "PCK@40 (%)", "Finger MPJPE (mm)"}};
  for (const auto& [object, name] :
       std::vector<std::pair<sim::HandheldObject, std::string>>{
           {sim::HandheldObject::kNone, "none"},
           {sim::HandheldObject::kTableTennisBall, "table-tennis ball"},
           {sim::HandheldObject::kHeadphoneCase, "headphone case"},
           {sim::HandheldObject::kPen, "pen"},
           {sim::HandheldObject::kPowerBank, "power bank"}}) {
    const auto acc = bench::evaluate_sweep(
        *experiment, [&](sim::ScenarioConfig& s) {
          s.object = object;
          s.seed ^= 0x0B1Eu;
        });
    rows.push_back({name, eval::fmt(acc.mpjpe_mm()),
                    eval::fmt(acc.pck(40.0)),
                    eval::fmt(acc.mpjpe_mm(eval::JointSubset::kFingers))});
  }
  eval::print_table(rows);
  std::printf(
      "\nExpected shape (paper): ball / headphone case ~ unaffected (small, "
      "palm-centered);\npen inflates the finger error (mistaken for a "
      "finger); power bank is worst (it\nshadows the hand).\n");
  return 0;
}
