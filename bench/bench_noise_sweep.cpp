// Extension study: robustness to receiver noise (SNR sweep).  The paper
// fixes the radar's noise figure; this bench evaluates the trained model
// on test captures synthesized at increasing thermal-noise levels — the
// graceful-degradation curve a deployment would care about.  Evaluation
// only: the model is the standard cached one.

#include "bench_common.hpp"

#include "mmhand/pose/inference.hpp"

using namespace mmhand;

int main() {
  auto experiment = eval::prepared_standard_experiment();
  eval::print_header("Extension — robustness to receiver noise");

  const auto& cfg = experiment->config();
  std::vector<std::vector<std::string>> rows{
      {"noise stddev", "x trained", "MPJPE (mm)", "PCK@40 (%)"}};
  for (double factor : {0.5, 1.0, 4.0, 16.0, 48.0}) {
    radar::ChirpConfig chirp = cfg.chirp;
    chirp.noise_stddev *= factor;
    const sim::DatasetBuilder noisy_builder(chirp, cfg.pipeline);

    eval::EvalAccumulator acc;
    for (int user : bench::sweep_users()) {
      if (user >= cfg.num_users) continue;
      sim::ScenarioConfig scenario = experiment->default_scenario(user);
      scenario.duration_s = bench::kSweepDuration;
      scenario.seed ^= 0x5EEDu;
      const auto recording = noisy_builder.record(scenario);
      auto& model = experiment->model_for_user(user);
      for (const auto& p : pose::predict_recording(model, recording))
        acc.add(p.joints, p.oracle);
    }
    rows.push_back({eval::fmt(chirp.noise_stddev, 4),
                    eval::fmt(factor, 1), eval::fmt(acc.mpjpe_mm()),
                    eval::fmt(acc.pck(40.0))});
  }
  eval::print_table(rows);
  std::printf(
      "\nExpected: graceful degradation — accuracy holds near the trained "
      "noise level\nand decays as the hand's returns sink into the noise "
      "floor.\n");
  return 0;
}
