// Reproduces Fig. 26: the time-consumption study.  The paper reports the
// CDF of per-window latency for 3-D skeleton generation (459.6 ms mean),
// hand mesh reconstruction (353.1 ms mean) and the two combined
// (812.7 ms mean, 90 % < 810 ms) on their desktop + 3090 Ti.
//
// This binary measures the same three stages of our implementation — raw
// IF frame -> radar cube -> skeleton, then skeleton -> MANO mesh — both as
// google-benchmark timings and as a printed CDF over repeated windows.
// Absolute numbers differ (CPU simulator vs GPU pipeline); the reproduced
// shape is that mesh reconstruction adds less time than skeleton
// generation and that the distribution is tight.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_common.hpp"
#include "mmhand/common/stats.hpp"
#include "mmhand/obs/obs.hpp"
#include "mmhand/pose/samples.hpp"

using namespace mmhand;

namespace {

struct LatencyFixture {
  LatencyFixture()
      : experiment(eval::prepared_standard_experiment()),
        reconstructor(eval::prepared_mesh_reconstructor()) {
    sim::ScenarioConfig scenario = experiment->default_scenario(0);
    scenario.duration_s = 4.0;
    recording = experiment->record_test(scenario);
    samples = pose::make_pose_samples(recording,
                                      experiment->config().posenet);
  }

  std::unique_ptr<eval::Experiment> experiment;
  std::unique_ptr<mesh::MeshReconstructor> reconstructor;
  sim::Recording recording;
  std::vector<pose::PoseSample> samples;
};

LatencyFixture& fixture() {
  static LatencyFixture f;
  return f;
}

void BM_SkeletonGeneration(benchmark::State& state) {
  auto& f = fixture();
  auto& model = f.experiment->model_for_user(0);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& sample = f.samples[i++ % f.samples.size()];
    benchmark::DoNotOptimize(pose::predict_sample(model, sample));
  }
}
BENCHMARK(BM_SkeletonGeneration)->Unit(benchmark::kMillisecond);

void BM_MeshReconstruction(benchmark::State& state) {
  auto& f = fixture();
  auto& model = f.experiment->model_for_user(0);
  const auto pred = pose::predict_sample(model, f.samples.front());
  const auto joints = pose::row_to_joints(pred, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.reconstructor->reconstruct(joints));
  }
}
BENCHMARK(BM_MeshReconstruction)->Unit(benchmark::kMillisecond);

void BM_EndToEnd(benchmark::State& state) {
  auto& f = fixture();
  auto& model = f.experiment->model_for_user(0);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& sample = f.samples[i++ % f.samples.size()];
    const auto pred = pose::predict_sample(model, sample);
    for (int s = 0; s < pred.dim(0); ++s)
      benchmark::DoNotOptimize(
          f.reconstructor->reconstruct(pose::row_to_joints(pred, s)));
  }
}
BENCHMARK(BM_EndToEnd)->Unit(benchmark::kMillisecond);

void print_cdf_study() {
  auto& f = fixture();
  auto& model = f.experiment->model_for_user(0);
  using Clock = std::chrono::steady_clock;

  std::vector<double> skeleton_ms, mesh_ms, overall_ms;
  for (int round = 0; round < 30; ++round) {
    const auto& sample = f.samples[static_cast<std::size_t>(round) %
                                   f.samples.size()];
    const auto t0 = Clock::now();
    const auto pred = pose::predict_sample(model, sample);
    const auto t1 = Clock::now();
    for (int s = 0; s < pred.dim(0); ++s)
      (void)f.reconstructor->reconstruct(pose::row_to_joints(pred, s));
    const auto t2 = Clock::now();
    skeleton_ms.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
    mesh_ms.push_back(
        std::chrono::duration<double, std::milli>(t2 - t1).count());
    overall_ms.push_back(skeleton_ms.back() + mesh_ms.back());
  }

  eval::print_header("Fig. 26 — time consumption CDF (per window)");
  const auto cdf = empirical_cdf(overall_ms, 11);
  std::vector<std::vector<std::string>> rows{{"Overall (ms)", "CDF"}};
  for (const auto& p : cdf)
    rows.push_back({eval::fmt(p.value, 2), eval::fmt(p.cumulative, 2)});
  eval::print_table(rows);
  eval::print_metric("Mean skeleton generation", mean(skeleton_ms),
                     "ms (paper: 459.6)");
  eval::print_metric("Mean mesh reconstruction", mean(mesh_ms),
                     "ms (paper: 353.1)");
  eval::print_metric("Mean overall", mean(overall_ms),
                     "ms (paper: 812.7)");
  eval::print_metric("90th percentile overall",
                     percentile(overall_ms, 90.0), "ms (paper: ~810)");
  std::printf(
      "\nExpected shape (paper): mesh reconstruction costs less than "
      "skeleton\ngeneration; the overall distribution is tight.\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_cdf_study();
  if (obs::tracing_enabled()) {
    // Flush now so the trace covers the run even if static destructors
    // misbehave; the atexit dump rewrites the same file with any stragglers.
    obs::write_trace();
    std::printf("\nChrome trace written (MMHAND_TRACE); open in "
                "chrome://tracing or ui.perfetto.dev\n");
  }
  return 0;
}
