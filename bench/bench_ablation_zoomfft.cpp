// Ablation: the zoom-FFT angle refinement (§III).  With zoom disabled the
// angle spectra cover +-90 degrees at the same bin count, so the hand's
// +-30 degree sector gets a quarter of the angular sampling density.

#include "bench_common.hpp"

#include "mmhand/common/stats.hpp"

using namespace mmhand;

namespace {

double evaluate_variant(const eval::ProtocolConfig& cfg) {
  eval::Experiment experiment(cfg);
  experiment.prepare(eval::cache_directory());
  std::vector<double> mpjpe;
  for (int user = 0; user < cfg.num_users; ++user)
    mpjpe.push_back(experiment.evaluate_user(user).mpjpe_mm());
  return mean(mpjpe);
}

}  // namespace

int main() {
  eval::print_header("Ablation — zoom-FFT angle refinement");

  auto with_zoom = bench::ablation_protocol();
  auto without_zoom = with_zoom;
  without_zoom.pipeline.enable_zoom_fft = false;

  std::vector<std::vector<std::string>> rows{{"Variant", "MPJPE (mm)"}};
  rows.push_back({"zoom-FFT on (+-30 deg fine grid)",
                  eval::fmt(evaluate_variant(with_zoom))});
  rows.push_back({"zoom-FFT off (+-90 deg coarse grid)",
                  eval::fmt(evaluate_variant(without_zoom))});
  eval::print_table(rows);
  std::printf(
      "\nExpected: the refined angle grid improves joint accuracy — the "
      "reason §III\napplies zoom-FFT with refinement to the angle "
      "spectra.\n");
  return 0;
}
