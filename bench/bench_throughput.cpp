// Throughput bench for the parallel execution layer: times the radar
// pipeline and the GEMM-backed NN layers at 1/2/N threads and writes
// machine-readable results to BENCH_throughput.json (or argv[1]).
//
// Run from the repo root so the JSON lands next to CHANGES.md:
//   ./build/bench/bench_throughput
//
// Thread scaling only shows up when the host actually has cores to scale
// onto; the JSON records `hardware_concurrency` so downstream tooling can
// interpret a flat curve on a single-core CI box.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "mmhand/common/parallel.hpp"
#include "mmhand/common/rng.hpp"
#include "mmhand/nn/conv2d.hpp"
#include "mmhand/nn/linear.hpp"
#include "mmhand/nn/lstm.hpp"
#include "mmhand/obs/obs.hpp"
#include "mmhand/radar/antenna_array.hpp"
#include "mmhand/radar/chirp_config.hpp"
#include "mmhand/radar/if_simulator.hpp"
#include "mmhand/radar/pipeline.hpp"
#include "mmhand/simd/simd.hpp"

namespace {

using mmhand::Rng;
using mmhand::Vec3;

/// Median wall time of `reps` timed calls, in milliseconds.
double time_ms(const std::function<void()>& fn, int reps) {
  fn();  // warm caches, twiddle tables, the thread pool
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

struct OpResult {
  std::string op;
  int threads = 1;
  double ms = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : "BENCH_throughput.json";

  // Paper-shaped radar frame: 3 TX x 4 RX x 16 chirps x 64 samples.
  mmhand::radar::ChirpConfig chirp;
  chirp.noise_stddev = 0.0;
  const mmhand::radar::AntennaArray array(chirp);
  const mmhand::radar::IfSimulator sim(chirp, array);
  const mmhand::radar::PipelineConfig pc;
  const mmhand::radar::RadarPipeline pipe(chirp, array, pc);
  mmhand::radar::Scene scene{
      {Vec3{0.05, 0.30, 0.02}, Vec3{0.0, 0.4, 0.0}, 1.0},
      {Vec3{-0.08, 0.45, -0.01}, Vec3{0.0, -0.2, 0.0}, 0.7},
  };
  Rng frame_rng(1);
  const auto frame = sim.simulate_frame(scene, 0.0, frame_rng);

  Rng rng(2);
  mmhand::nn::Conv2d conv(8, 16, 3, 1, 1, rng);
  const mmhand::nn::Tensor conv_x =
      mmhand::nn::Tensor::randn({1, 8, 32, 32}, rng, 1.0);
  mmhand::nn::Linear fc(256, 256, rng);
  const mmhand::nn::Tensor fc_x =
      mmhand::nn::Tensor::randn({64, 256}, rng, 1.0);
  mmhand::nn::Lstm lstm(128, 128, rng);
  const mmhand::nn::Tensor lstm_x =
      mmhand::nn::Tensor::randn({1, 128}, rng, 1.0);

  struct Op {
    const char* name;
    std::function<void()> fn;
    int reps;
  };
  const std::vector<Op> ops = {
      {"process_frame", [&] { pipe.process_frame(frame); }, 9},
      {"conv2d_forward", [&] { conv.forward(conv_x, false); }, 15},
      {"linear_forward", [&] { fc.forward(fc_x, false); }, 25},
      {"lstm_step", [&] { lstm.forward(lstm_x, false); }, 25},
  };

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  std::vector<int> thread_counts = {1, 2, 4};
  if (hw > 4) thread_counts.push_back(hw);

  std::vector<OpResult> results;
  for (const int t : thread_counts) {
    mmhand::set_num_threads(t);
    for (const auto& op : ops) {
      OpResult r;
      r.op = op.name;
      r.threads = t;
      r.ms = time_ms(op.fn, op.reps);
      results.push_back(r);
      std::printf("%-16s %d thread%s  %8.3f ms\n", op.name, t,
                  t == 1 ? " " : "s", r.ms);
    }
  }
  // Capture pass for the per-stage breakdown: re-run each op at a fixed
  // thread count with metrics on so the span histograms (radar/* stage
  // timings, nn/gemm call+FLOP counters, nn/lstm_step) have samples, then
  // embed the snapshot verbatim below.
  const int capture_threads = std::min(4, std::max(1, hw));
  mmhand::set_num_threads(capture_threads);
  mmhand::obs::set_metrics_enabled(true);
  mmhand::obs::reset_metrics();
  for (const auto& op : ops)
    for (int r = 0; r < op.reps; ++r) op.fn();
  std::string breakdown = mmhand::obs::metrics_json();
  mmhand::obs::set_metrics_enabled(false);
  while (!breakdown.empty() && breakdown.back() == '\n') breakdown.pop_back();
  mmhand::set_num_threads(1);

  auto ms_for = [&](const std::string& op, int threads) {
    for (const auto& r : results)
      if (r.op == op && r.threads == threads) return r.ms;
    return 0.0;
  };

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"throughput\",\n");
  std::fprintf(f, "  \"hardware_concurrency\": %d,\n", hw);
  // The dispatched vector ISA; check_bench.py refuses to compare runs
  // whose ISAs differ (a scalar run would "regress" the AVX2 baseline
  // by design).
  std::fprintf(f, "  \"simd\": \"%s\",\n",
               mmhand::simd::isa_name(mmhand::simd::active_isa()));
  std::fprintf(f, "  \"thread_counts\": [");
  for (std::size_t i = 0; i < thread_counts.size(); ++i)
    std::fprintf(f, "%s%d", i ? ", " : "", thread_counts[i]);
  std::fprintf(f, "],\n  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i)
    std::fprintf(f,
                 "    {\"op\": \"%s\", \"threads\": %d, \"ms\": %.4f}%s\n",
                 results[i].op.c_str(), results[i].threads, results[i].ms,
                 i + 1 < results.size() ? "," : "");
  std::fprintf(f, "  ],\n  \"speedup_4t\": {\n");
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const double t1 = ms_for(ops[i].name, 1);
    const double t4 = ms_for(ops[i].name, 4);
    std::fprintf(f, "    \"%s\": %.3f%s\n", ops[i].name,
                 t4 > 0.0 ? t1 / t4 : 0.0, i + 1 < ops.size() ? "," : "");
  }
  std::fprintf(f, "  },\n  \"stage_breakdown_threads\": %d,\n",
               capture_threads);
  std::fprintf(f, "  \"stage_breakdown\": %s\n}\n", breakdown.c_str());
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
