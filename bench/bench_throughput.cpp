// Throughput bench for the parallel execution layer: times the radar
// pipeline and the GEMM-backed NN layers at 1/2/N threads and writes
// machine-readable results to BENCH_throughput.json (or argv[1]).
//
// Run from the repo root so the JSON lands next to CHANGES.md:
//   ./build/bench/bench_throughput
//
// Thread scaling only shows up when the host actually has cores to scale
// onto; the JSON records `hardware_concurrency` so downstream tooling can
// interpret a flat curve on a single-core CI box.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "mmhand/common/parallel.hpp"
#include "mmhand/common/rng.hpp"
#include "mmhand/nn/conv2d.hpp"
#include "mmhand/nn/linear.hpp"
#include "mmhand/nn/lstm.hpp"
#include "mmhand/obs/obs.hpp"
#include "mmhand/radar/antenna_array.hpp"
#include "mmhand/radar/chirp_config.hpp"
#include "mmhand/radar/if_simulator.hpp"
#include "mmhand/radar/pipeline.hpp"
#include "mmhand/simd/simd.hpp"

namespace {

using mmhand::Rng;
using mmhand::Vec3;

/// Wall time of a single call, in milliseconds.
double timed_call_ms(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

struct OpResult {
  std::string op;
  int threads = 1;
  double ms = 0.0;
};

/// First line of `path`, stripped of the trailing newline ("" on error).
std::string read_line(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  char buf[256] = {0};
  const bool ok = std::fgets(buf, sizeof(buf), f) != nullptr;
  std::fclose(f);
  if (!ok) return {};
  std::string line(buf);
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
    line.pop_back();
  return line;
}

/// Keep provenance strings safe to splice into the JSON literal.
std::string json_safe(std::string s) {
  for (char& c : s)
    if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20)
      c = ' ';
  return s;
}

/// HEAD commit of the checkout the bench ran from ("" outside a repo).
/// Follows one level of symref ("ref: refs/heads/x") without shelling
/// out to git, so the bench stays dependency-free.
std::string git_head_sha() {
  const std::string head = read_line(".git/HEAD");
  if (head.rfind("ref: ", 0) == 0)
    return read_line(".git/" + head.substr(5));
  return head;
}

std::string host_name() {
  char buf[256] = {0};
  if (gethostname(buf, sizeof(buf) - 1) != 0) return {};
  return buf;
}

/// "model name" line from /proc/cpuinfo ("" on non-Linux hosts).
std::string cpu_model() {
  std::FILE* f = std::fopen("/proc/cpuinfo", "rb");
  if (f == nullptr) return {};
  char buf[512];
  std::string model;
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    std::string line(buf);
    if (line.rfind("model name", 0) != 0) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::size_t begin = colon + 1;
    while (begin < line.size() && line[begin] == ' ') ++begin;
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
      line.pop_back();
    model = line.substr(begin);
    break;
  }
  std::fclose(f);
  return model;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : "BENCH_throughput.json";

  // Paper-shaped radar frame: 3 TX x 4 RX x 16 chirps x 64 samples.
  mmhand::radar::ChirpConfig chirp;
  chirp.noise_stddev = 0.0;
  const mmhand::radar::AntennaArray array(chirp);
  const mmhand::radar::IfSimulator sim(chirp, array);
  const mmhand::radar::PipelineConfig pc;
  const mmhand::radar::RadarPipeline pipe(chirp, array, pc);
  mmhand::radar::Scene scene{
      {Vec3{0.05, 0.30, 0.02}, Vec3{0.0, 0.4, 0.0}, 1.0},
      {Vec3{-0.08, 0.45, -0.01}, Vec3{0.0, -0.2, 0.0}, 0.7},
  };
  Rng frame_rng(1);
  const auto frame = sim.simulate_frame(scene, 0.0, frame_rng);

  Rng rng(2);
  mmhand::nn::Conv2d conv(8, 16, 3, 1, 1, rng);
  const mmhand::nn::Tensor conv_x =
      mmhand::nn::Tensor::randn({1, 8, 32, 32}, rng, 1.0);
  mmhand::nn::Linear fc(256, 256, rng);
  const mmhand::nn::Tensor fc_x =
      mmhand::nn::Tensor::randn({64, 256}, rng, 1.0);
  mmhand::nn::Lstm lstm(128, 128, rng);
  const mmhand::nn::Tensor lstm_x =
      mmhand::nn::Tensor::randn({1, 128}, rng, 1.0);

  struct Op {
    const char* name;
    std::function<void()> fn;
    int reps;
  };
  const std::vector<Op> ops = {
      {"process_frame", [&] { pipe.process_frame(frame); }, 9},
      {"conv2d_forward", [&] { conv.forward(conv_x, false); }, 15},
      {"linear_forward", [&] { fc.forward(fc_x, false); }, 25},
      {"lstm_step", [&] { lstm.forward(lstm_x, false); }, 25},
  };

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  std::vector<int> thread_counts = {1, 2, 4};
  if (hw > 4) thread_counts.push_back(hw);

  // Reps are interleaved round-robin across thread counts and the
  // minimum is kept: a sequential per-thread-count loop on a throttling
  // (often single-core) CI box flatters whichever configuration runs
  // first, which used to masquerade as a threading regression.
  // Round-robin spreads the thermal drift evenly and min-of-reps
  // discards the throttled samples.
  std::vector<OpResult> results;
  for (const auto& op : ops) {
    std::vector<double> best(thread_counts.size(), 1e300);
    for (std::size_t ti = 0; ti < thread_counts.size(); ++ti) {
      mmhand::set_num_threads(thread_counts[ti]);
      op.fn();  // warm caches, twiddle tables, the pool at this width
    }
    for (int rep = 0; rep < op.reps; ++rep)
      for (std::size_t ti = 0; ti < thread_counts.size(); ++ti) {
        mmhand::set_num_threads(thread_counts[ti]);
        best[ti] = std::min(best[ti], timed_call_ms(op.fn));
      }
    for (std::size_t ti = 0; ti < thread_counts.size(); ++ti) {
      OpResult r;
      r.op = op.name;
      r.threads = thread_counts[ti];
      r.ms = best[ti];
      results.push_back(r);
      std::printf("%-16s %d thread%s  %8.3f ms\n", op.name, r.threads,
                  r.threads == 1 ? " " : "s", r.ms);
    }
  }
  // Capture pass for the per-stage breakdown: re-run each op at a fixed
  // thread count with metrics on so the span histograms (radar/* stage
  // timings, nn/gemm call+FLOP counters, nn/lstm_step) have samples, then
  // embed the snapshot verbatim below.
  const int capture_threads = std::min(4, std::max(1, hw));
  mmhand::set_num_threads(capture_threads);
  mmhand::obs::set_metrics_enabled(true);
  mmhand::obs::reset_metrics();
  for (const auto& op : ops)
    for (int r = 0; r < op.reps; ++r) op.fn();
  std::string breakdown = mmhand::obs::metrics_json();
  mmhand::obs::set_metrics_enabled(false);
  while (!breakdown.empty() && breakdown.back() == '\n') breakdown.pop_back();
  mmhand::set_num_threads(1);

  // Telemetry overhead probe: radar/process_frame with the continuous
  // sampler live (50 ms interval, in-memory ring only) against fully-off.
  // This box's clock speed drifts by several percent across seconds —
  // far more than the effect being measured — so each round pairs an off
  // and an on timing taken back to back (same thermal state) and the
  // estimate is the median of the per-round on/off ratios, which drift
  // cancels out of.  Reported off/on times are each side's min.  The
  // acceptance bar is < 3%.
  const int overhead_rounds = 16;
  double off_ms = 1e300, on_ms = 1e300;
  std::vector<double> round_ratios;
  mmhand::obs::TelemetryConfig tcfg;
  tcfg.interval_ms = 50;
  // min-of-3 inside each half of a round: a single call can eat a
  // scheduler hiccup or a sampler tick; its round partner then records
  // a bogus ratio.  Three tries per side push that below the median.
  const auto best_of3 = [&] {
    double best = 1e300;
    for (int k = 0; k < 3; ++k)
      best = std::min(best,
                      timed_call_ms([&] { pipe.process_frame(frame); }));
    return best;
  };
  for (int r = 0; r < overhead_rounds; ++r) {
    mmhand::obs::stop_telemetry();
    mmhand::obs::set_metrics_enabled(false);
    pipe.process_frame(frame);  // warm after the mode switch
    const double off = best_of3();
    mmhand::obs::set_telemetry(tcfg);
    pipe.process_frame(frame);
    const double on = best_of3();
    off_ms = std::min(off_ms, off);
    on_ms = std::min(on_ms, on);
    if (off > 0.0) round_ratios.push_back(on / off);
  }
  mmhand::obs::stop_telemetry();
  mmhand::obs::set_metrics_enabled(false);
  std::sort(round_ratios.begin(), round_ratios.end());
  const double overhead_ratio =
      round_ratios.empty() ? 0.0 : round_ratios[round_ratios.size() / 2];
  std::printf("telemetry overhead: off %.3f ms, on %.3f ms (x%.3f median "
              "of %zu paired rounds)\n",
              off_ms, on_ms, overhead_ratio, round_ratios.size());

  auto ms_for = [&](const std::string& op, int threads) {
    for (const auto& r : results)
      if (r.op == op && r.threads == threads) return r.ms;
    return 0.0;
  };

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"throughput\",\n");
  std::fprintf(f, "  \"hardware_concurrency\": %d,\n", hw);
  // Provenance: which commit on which machine produced these numbers.
  // bench/history.jsonl carries the same fields (check_bench.py copies
  // them), so a cross-machine comparison is visible instead of silent.
  std::fprintf(
      f,
      "  \"provenance\": {\"git_sha\": \"%s\", \"hostname\": \"%s\", "
      "\"cpu_model\": \"%s\"},\n",
      json_safe(git_head_sha()).c_str(), json_safe(host_name()).c_str(),
      json_safe(cpu_model()).c_str());
  // The dispatched vector ISA; check_bench.py refuses to compare runs
  // whose ISAs differ (a scalar run would "regress" the AVX2 baseline
  // by design).
  std::fprintf(f, "  \"simd\": \"%s\",\n",
               mmhand::simd::isa_name(mmhand::simd::active_isa()));
  std::fprintf(f, "  \"thread_counts\": [");
  for (std::size_t i = 0; i < thread_counts.size(); ++i)
    std::fprintf(f, "%s%d", i ? ", " : "", thread_counts[i]);
  std::fprintf(f, "],\n  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i)
    std::fprintf(f,
                 "    {\"op\": \"%s\", \"threads\": %d, \"ms\": %.4f}%s\n",
                 results[i].op.c_str(), results[i].threads, results[i].ms,
                 i + 1 < results.size() ? "," : "");
  std::fprintf(f, "  ],\n  \"speedup_4t\": {\n");
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const double t1 = ms_for(ops[i].name, 1);
    const double t4 = ms_for(ops[i].name, 4);
    std::fprintf(f, "    \"%s\": %.3f%s\n", ops[i].name,
                 t4 > 0.0 ? t1 / t4 : 0.0, i + 1 < ops.size() ? "," : "");
  }
  std::fprintf(f,
               "  },\n  \"telemetry_overhead\": {\"op\": "
               "\"process_frame\", \"off_ms\": %.4f, \"on_ms\": %.4f, "
               "\"ratio\": %.4f},\n",
               off_ms, on_ms, overhead_ratio);
  std::fprintf(f, "  \"stage_breakdown_threads\": %d,\n",
               capture_threads);
  std::fprintf(f, "  \"stage_breakdown\": %s\n}\n", breakdown.c_str());
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
