// Serving-layer bench: window throughput and end-to-end latency
// percentiles at 1/8/32 concurrent sessions, plus the shed rate under a
// 2x-overload burst.  Writes machine-readable results to
// BENCH_serve.json (or argv[1]) in the same shape as BENCH_throughput
// so scripts/check_bench.py can gate and trend it:
//
//   scripts/check_bench.py --current BENCH_serve.json \
//       --baseline bench/baseline/BENCH_serve.baseline.json
//
// The `threads` column of results[] carries the SESSION count (the
// serving layer's scaling axis); every run drives the server with the
// same internal worker setup.  No faults are injected here — chaos
// belongs to mmhand_soak / check_serve.sh, the bench wants repeatable
// numbers.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "mmhand/obs/obs.hpp"
#include "mmhand/pose/trainer.hpp"
#include "mmhand/serve/client.hpp"
#include "mmhand/serve/server.hpp"
#include "mmhand/simd/simd.hpp"
#include "mmhand/sim/dataset.hpp"

namespace {

using namespace mmhand;

pose::PoseNetConfig serve_net_config() {
  pose::PoseNetConfig cfg;
  cfg.segment_frames = 2;
  cfg.sequence_segments = 2;
  cfg.velocity_bins = 4;
  cfg.range_bins = 8;
  cfg.angle_bins = 8;
  cfg.feature_dim = 24;
  cfg.lstm_hidden = 16;
  cfg.spacenet.stem_channels = 4;
  cfg.spacenet.block1_channels = 6;
  cfg.spacenet.block2_channels = 6;
  return cfg;
}

sim::Recording serve_recording(int frames) {
  radar::ChirpConfig chirp;
  chirp.chirps_per_frame = 4;
  chirp.samples_per_chirp = 16;
  chirp.frame_period_s = 0.05;
  radar::PipelineConfig pc;
  pc.cube.range_bins = 8;
  pc.cube.azimuth_bins = 6;
  pc.cube.elevation_bins = 2;
  const sim::DatasetBuilder builder(chirp, pc);
  sim::ScenarioConfig scenario;
  scenario.duration_s = frames * chirp.frame_period_s;
  return builder.record(scenario);
}

struct RunResult {
  int sessions = 0;
  double windows_per_s = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double shed_rate = 0.0;
};

/// Drives `sessions` clients against a threaded server for `seconds`
/// of wall time at `frames_per_tick` frames per 1 ms client tick, then
/// drains and reports throughput + latency percentiles.
RunResult run_serve(pose::HandJointRegressor& model,
                    const sim::Recording& recording, int sessions,
                    double seconds, int frames_per_tick,
                    double deadline_ms) {
  obs::reset_metrics();
  serve::ServeConfig cfg;
  cfg.deadline_ms = deadline_ms;
  cfg.max_sessions = sessions;
  cfg.max_inflight = 64;
  cfg.queue_cap = 4;
  cfg.batch_max = 8;
  serve::Server server(cfg, model);

  std::vector<std::unique_ptr<serve::SimClient>> clients;
  clients.reserve(static_cast<std::size_t>(sessions));
  for (int s = 0; s < sessions; ++s) {
    serve::ClientConfig cc;
    cc.frames_per_tick = frames_per_tick;
    cc.seed = 7 + static_cast<std::uint64_t>(s);
    clients.push_back(
        std::make_unique<serve::SimClient>(server, recording, cc));
  }

  const int drivers = std::max(1, std::min(4, sessions));
  std::atomic<bool> stop{false};
  std::vector<std::thread> pool;
  const auto t0 = std::chrono::steady_clock::now();
  for (int t = 0; t < drivers; ++t) {
    pool.emplace_back([&, t] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (int c = t; c < sessions; c += drivers)
          clients[static_cast<std::size_t>(c)]->tick();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<long>(seconds * 1000)));
  stop.store(true);
  for (auto& th : pool) th.join();
  server.drain();
  const auto t1 = std::chrono::steady_clock::now();
  for (auto& c : clients) c->finish();

  const double wall_s =
      std::chrono::duration<double>(t1 - t0).count();
  const serve::ServerStats stats = server.stats();
  const obs::HistogramStats e2e = obs::histogram("serve/e2e").stats();

  RunResult r;
  r.sessions = sessions;
  r.windows_per_s =
      wall_s > 0.0 ? static_cast<double>(stats.windows_completed) / wall_s
                   : 0.0;
  r.p50_us = e2e.p50;
  r.p95_us = e2e.p95;
  r.p99_us = e2e.p99;
  const std::uint64_t offered = stats.windows_completed +
                                stats.windows_shed + stats.windows_missed;
  r.shed_rate = offered == 0
                    ? 0.0
                    : static_cast<double>(stats.windows_shed) /
                          static_cast<double>(offered);
  return r;
}

// --- provenance helpers (same fields as bench_throughput) -----------------

std::string read_line(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  char buf[256] = {0};
  const bool ok = std::fgets(buf, sizeof(buf), f) != nullptr;
  std::fclose(f);
  if (!ok) return {};
  std::string line(buf);
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
    line.pop_back();
  return line;
}

std::string json_safe(std::string s) {
  for (char& c : s)
    if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20)
      c = ' ';
  return s;
}

std::string git_head_sha() {
  const std::string head = read_line(".git/HEAD");
  if (head.rfind("ref: ", 0) == 0)
    return read_line(".git/" + head.substr(5));
  return head;
}

std::string host_name() {
  char buf[256] = {0};
  if (gethostname(buf, sizeof(buf) - 1) != 0) return {};
  return buf;
}

std::string cpu_model() {
  std::FILE* f = std::fopen("/proc/cpuinfo", "rb");
  if (f == nullptr) return {};
  char buf[512];
  std::string model;
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    std::string line(buf);
    if (line.rfind("model name", 0) != 0) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::size_t begin = colon + 1;
    while (begin < line.size() && line[begin] == ' ') ++begin;
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
      line.pop_back();
    model = line.substr(begin);
    break;
  }
  std::fclose(f);
  return model;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_serve.json";

  obs::set_metrics_enabled(true);
  const auto net = serve_net_config();
  Rng rng(41);
  pose::HandJointRegressor model(net, rng);
  const sim::Recording recording = serve_recording(24);

  const std::vector<int> session_counts = {1, 8, 32};
  std::vector<RunResult> runs;
  for (const int sessions : session_counts) {
    const RunResult r =
        run_serve(model, recording, sessions, 0.4, 1, 250.0);
    runs.push_back(r);
    std::printf(
        "%2d sessions  %8.1f windows/s  p50 %7.1f us  p95 %7.1f us  "
        "p99 %7.1f us\n",
        r.sessions, r.windows_per_s, r.p50_us, r.p95_us, r.p99_us);
  }

  // Overload probe: 8 sessions offering 2x the steady frame rate into a
  // tight deadline/queue.  On a fast host the tiny model may absorb it
  // (shed rate 0); the number is recorded either way so a host that
  // starts shedding shows up in the trend.
  const RunResult overload =
      run_serve(model, recording, 8, 0.4, 2, 25.0);
  std::printf("2x overload  shed rate %.4f (completed %0.1f windows/s)\n",
              overload.shed_rate, overload.windows_per_s);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"serve\",\n");
  std::fprintf(f, "  \"hardware_concurrency\": %d,\n",
               static_cast<int>(std::thread::hardware_concurrency()));
  std::fprintf(
      f,
      "  \"provenance\": {\"git_sha\": \"%s\", \"hostname\": \"%s\", "
      "\"cpu_model\": \"%s\"},\n",
      json_safe(git_head_sha()).c_str(), json_safe(host_name()).c_str(),
      json_safe(cpu_model()).c_str());
  std::fprintf(f, "  \"simd\": \"%s\",\n",
               simd::isa_name(simd::active_isa()));
  // check_bench.py reads results[] generically; here the `threads`
  // column carries the session count (the serving scaling axis).
  std::fprintf(f, "  \"threads_column\": \"sessions\",\n");
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    const double window_ms =
        r.windows_per_s > 0.0 ? 1000.0 / r.windows_per_s : 0.0;
    std::fprintf(f,
                 "    {\"op\": \"serve_window\", \"threads\": %d, "
                 "\"ms\": %.4f},\n",
                 r.sessions, window_ms);
    std::fprintf(f,
                 "    {\"op\": \"serve_e2e_p50\", \"threads\": %d, "
                 "\"ms\": %.4f},\n",
                 r.sessions, r.p50_us / 1000.0);
    std::fprintf(f,
                 "    {\"op\": \"serve_e2e_p95\", \"threads\": %d, "
                 "\"ms\": %.4f},\n",
                 r.sessions, r.p95_us / 1000.0);
    std::fprintf(f,
                 "    {\"op\": \"serve_e2e_p99\", \"threads\": %d, "
                 "\"ms\": %.4f}%s\n",
                 r.sessions, r.p99_us / 1000.0,
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"throughput\": {\n");
  for (std::size_t i = 0; i < runs.size(); ++i)
    std::fprintf(f, "    \"sessions_%d\": %.1f%s\n", runs[i].sessions,
                 runs[i].windows_per_s, i + 1 < runs.size() ? "," : "");
  std::fprintf(f,
               "  },\n  \"overload_2x\": {\"sessions\": 8, "
               "\"shed_rate\": %.4f, \"windows_per_s\": %.1f}\n}\n",
               overload.shed_rate, overload.windows_per_s);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
