#pragma once

// Shared plumbing for the experiment benches: every binary loads (or
// trains once into the shared cache) the standard-protocol fold models,
// then evaluates its scenario sweep and prints the paper's rows.

#include <cstdio>
#include <vector>

#include "mmhand/eval/model_cache.hpp"
#include "mmhand/eval/table_printer.hpp"

namespace mmhand::bench {

/// Users evaluated by the sweep benches (a subset keeps each bench's
/// runtime bounded; the per-user benches cover all ten).
inline std::vector<int> sweep_users() { return {0, 1, 2, 3}; }

/// Shorter test recordings for multi-point sweeps.
inline constexpr double kSweepDuration = 3.0;

/// Evaluates one scenario across the sweep users, merging metrics.
inline eval::EvalAccumulator evaluate_sweep(
    eval::Experiment& experiment,
    const std::function<void(sim::ScenarioConfig&)>& tweak) {
  eval::EvalAccumulator merged;
  for (int user : sweep_users()) {
    if (user >= experiment.config().num_users) continue;
    sim::ScenarioConfig scenario = experiment.default_scenario(user);
    scenario.duration_s = kSweepDuration;
    tweak(scenario);
    merged.merge(experiment.evaluate_scenario(scenario));
  }
  return merged;
}

/// A reduced protocol for ablation studies: ablations retrain a model per
/// variant, so they run on a smaller budget than the main experiments.
inline eval::ProtocolConfig ablation_protocol() {
  eval::ProtocolConfig cfg = eval::ProtocolConfig::standard();
  cfg.num_users = 4;
  cfg.train_duration_s = 6.0;
  cfg.test_duration_s = 4.0;
  cfg.train.epochs = 6;
  return cfg;
}

}  // namespace mmhand::bench
