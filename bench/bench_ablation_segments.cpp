// Ablation: temporal geometry — frames per segment (st) and segments per
// LSTM sequence (S) (§IV: "several consecutive frames form a segment ...
// all feature vectors form a vector sequence as an input to LSTM").

#include "bench_common.hpp"

#include "mmhand/common/stats.hpp"

using namespace mmhand;

namespace {

double evaluate_variant(const eval::ProtocolConfig& cfg) {
  eval::Experiment experiment(cfg);
  experiment.prepare(eval::cache_directory());
  std::vector<double> mpjpe;
  for (int user = 0; user < cfg.num_users; ++user)
    mpjpe.push_back(experiment.evaluate_user(user).mpjpe_mm());
  return mean(mpjpe);
}

}  // namespace

int main() {
  eval::print_header("Ablation — segment length st and sequence length S");

  std::vector<std::vector<std::string>> rows{
      {"st (frames/segment)", "S (segments)", "MPJPE (mm)"}};
  for (const auto& [st, s_len] :
       std::vector<std::pair<int, int>>{{1, 4}, {2, 4}, {2, 2}, {4, 2}}) {
    auto cfg = bench::ablation_protocol();
    cfg.posenet.segment_frames = st;
    cfg.posenet.sequence_segments = s_len;
    rows.push_back({std::to_string(st), std::to_string(s_len),
                    eval::fmt(evaluate_variant(cfg))});
  }
  eval::print_table(rows);
  std::printf(
      "\nExpected: multi-frame segments beat single frames (more motion "
      "detail per\ninstant — §IV's argument for segment inputs), and a "
      "longer LSTM sequence\nstabilizes the temporal features.\n");
  return 0;
}
