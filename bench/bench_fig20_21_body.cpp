// Reproduces Fig. 20/21: per-participant MPJPE and 3D-PCK when the user's
// body stands directly behind the hand (type 1, front) versus to the side
// of the radar (type 2).  Paper: front 19.1 mm / 93.6 %, side 18.1 mm /
// 95.4 % — an insignificant difference because bandpass filtering removes
// body returns at their different range.

#include "bench_common.hpp"

#include "mmhand/common/stats.hpp"

using namespace mmhand;

int main() {
  auto experiment = eval::prepared_standard_experiment();
  eval::print_header("Fig. 20/21 — body position: front (type 1) vs side "
                     "(type 2)");

  std::vector<std::vector<std::string>> rows{
      {"User", "MPJPE front", "MPJPE side", "PCK front", "PCK side"}};
  std::vector<double> front_m, side_m, front_p, side_p;
  for (int user = 0; user < experiment->config().num_users; ++user) {
    auto front = experiment->default_scenario(user);
    front.clutter.body = sim::BodyPosition::kFront;
    auto side = front;
    side.clutter.body = sim::BodyPosition::kSide;
    side.seed ^= 0x51DEu;
    const auto acc_front = experiment->evaluate_scenario(front);
    const auto acc_side = experiment->evaluate_scenario(side);
    front_m.push_back(acc_front.mpjpe_mm());
    side_m.push_back(acc_side.mpjpe_mm());
    front_p.push_back(acc_front.pck(40.0));
    side_p.push_back(acc_side.pck(40.0));
    rows.push_back({std::to_string(user + 1),
                    eval::fmt(front_m.back()), eval::fmt(side_m.back()),
                    eval::fmt(front_p.back()), eval::fmt(side_p.back())});
  }
  eval::print_table(rows);
  eval::print_metric("Overall MPJPE, body in front (type 1)", mean(front_m),
                     "mm (paper: 19.1)");
  eval::print_metric("Overall MPJPE, body at side (type 2)", mean(side_m),
                     "mm (paper: 18.1)");
  eval::print_metric("Overall PCK, body in front", mean(front_p),
                     "% (paper: 93.6)");
  eval::print_metric("Overall PCK, body at side", mean(side_p),
                     "% (paper: 95.4)");
  std::printf(
      "\nExpected shape (paper): the two placements differ only slightly "
      "(bandpass\nfiltering suppresses the body's range band either "
      "way).\n");
  return 0;
}
