// Reproduces Table I: MPJPE of mmHand against vision baselines (Cascade,
// DeepPrior++-style, on MSRA-like / ICVL-like synthetic depth datasets)
// and wireless baselines (mm4Arm-style, HandFi-style).
//
// Expected shape (paper): vision methods on vision-friendly depth beat
// mmHand moderately; mm4Arm beats everything in its restricted setup but
// collapses when the arm rotates; HandFi lands in mmHand's error class.

#include "bench_common.hpp"

#include "mmhand/baselines/cascade.hpp"
#include "mmhand/baselines/deepprior.hpp"
#include "mmhand/baselines/handfi.hpp"
#include "mmhand/baselines/mm4arm.hpp"
#include "mmhand/common/stats.hpp"

using namespace mmhand;
using namespace mmhand::baselines;

namespace {

std::vector<DepthSample> depth_data(VisionDataset variant, int samples,
                                    std::uint64_t seed) {
  DepthDatasetConfig cfg;
  cfg.variant = variant;
  cfg.samples = samples;
  cfg.seed = seed;
  return make_depth_dataset(cfg);
}

}  // namespace

int main() {
  auto experiment = eval::prepared_standard_experiment();
  eval::print_header("Table I — MPJPE comparison (mm)");

  // --- mmHand itself (cross-validated). ---
  std::vector<double> user_mpjpe;
  for (int user = 0; user < experiment->config().num_users; ++user)
    user_mpjpe.push_back(experiment->evaluate_user(user).mpjpe_mm());
  const double mmhand_mpjpe = mean(user_mpjpe);

  std::vector<std::vector<std::string>> rows{
      {"Method", "Dataset", "MPJPE (mm)", "Paper (mm)"}};

  // --- Vision baselines on both synthetic depth variants. ---
  const auto msra_train = depth_data(VisionDataset::kMsraLike, 500, 3);
  const auto msra_test = depth_data(VisionDataset::kMsraLike, 150, 103);
  const auto icvl_train = depth_data(VisionDataset::kIcvlLike, 500, 4);
  const auto icvl_test = depth_data(VisionDataset::kIcvlLike, 150, 104);
  const DepthCameraConfig camera;

  {
    CascadeRegressor cascade({}, camera);
    cascade.train(msra_train);
    rows.push_back({"Cascade", "MSRA-like",
                    eval::fmt(cascade.evaluate_mpjpe_mm(msra_test)),
                    "15.2"});
  }
  {
    CascadeRegressor cascade({}, camera);
    cascade.train(icvl_train);
    rows.push_back({"Cascade", "ICVL-like",
                    eval::fmt(cascade.evaluate_mpjpe_mm(icvl_test)), "9.9"});
  }
  {
    DeepPriorConfig cfg;
    cfg.epochs = 25;
    DeepPriorRegressor dp(cfg, camera);
    dp.train(msra_train);
    rows.push_back({"DeepPrior++-style", "MSRA-like",
                    eval::fmt(dp.evaluate_mpjpe_mm(msra_test)), "9.5"});
  }
  {
    DeepPriorConfig cfg;
    cfg.epochs = 25;
    DeepPriorRegressor dp(cfg, camera);
    dp.train(icvl_train);
    rows.push_back({"DeepPrior++-style (HBE slot)", "ICVL-like",
                    eval::fmt(dp.evaluate_mpjpe_mm(icvl_test)), "8.62"});
  }

  // --- Wireless baselines. ---
  {
    Mm4ArmConfig cfg;
    cfg.train_seconds = 40;
    cfg.epochs = 25;
    Mm4ArmBaseline mm4arm(cfg, experiment->config().chirp,
                          experiment->config().pipeline);
    mm4arm.train();
    rows.push_back({"mm4Arm-style (restricted)", "self-collected",
                    eval::fmt(mm4arm.evaluate_restricted_mpjpe_mm()),
                    "4.07"});
    rows.push_back({"mm4Arm-style (arm rotated)", "self-collected",
                    eval::fmt(mm4arm.evaluate_rotated_mpjpe_mm()),
                    "(degrades)"});
  }
  {
    HandFiBaseline handfi({});
    handfi.train();
    rows.push_back({"HandFi-style (WiFi CSI)", "self-collected",
                    eval::fmt(handfi.evaluate_mpjpe_mm()), "20.7"});
  }

  rows.push_back({"mmHand (this work)", "self-collected",
                  eval::fmt(mmhand_mpjpe), "18.3"});
  eval::print_table(rows);

  std::printf(
      "\nExpected ordering (paper): vision < mmHand; mm4Arm(restricted) < "
      "mmHand;\nHandFi ~ mmHand.  Absolute values differ (simulated "
      "substrate, reduced scale);\nthe ordering is the reproduced result.\n");
  return 0;
}
