// Reproduces §VI-G (glove study): silk and cotton gloves as test-only
// conditions against the glove-free trained model.
// Paper: gloves raise the overall MPJPE to 28.6 mm and drop PCK to
// 86.3 % — degraded but still reflecting the basic pose.

#include "bench_common.hpp"

#include "mmhand/common/stats.hpp"

using namespace mmhand;

int main() {
  auto experiment = eval::prepared_standard_experiment();
  eval::print_header("§VI-G — impact of gloves (test-only conditions)");

  std::vector<std::vector<std::string>> rows{
      {"Condition", "MPJPE (mm)", "PCK@40 (%)"}};
  std::vector<double> glove_m, glove_p;
  for (const auto& [glove, name] :
       std::vector<std::pair<sim::GloveType, std::string>>{
           {sim::GloveType::kNone, "bare hand"},
           {sim::GloveType::kSilk, "silk glove"},
           {sim::GloveType::kCotton, "cotton glove"}}) {
    const auto acc = bench::evaluate_sweep(
        *experiment, [&](sim::ScenarioConfig& s) {
          s.glove = glove;
          s.seed ^= 0x6C0Eu;
        });
    rows.push_back(
        {name, eval::fmt(acc.mpjpe_mm()), eval::fmt(acc.pck(40.0))});
    if (glove != sim::GloveType::kNone) {
      glove_m.push_back(acc.mpjpe_mm());
      glove_p.push_back(acc.pck(40.0));
    }
  }
  eval::print_table(rows);
  eval::print_metric("Overall gloved MPJPE", mean(glove_m),
                     "mm (paper: 28.6)");
  eval::print_metric("Overall gloved PCK", mean(glove_p),
                     "% (paper: 86.3)");
  std::printf(
      "\nExpected shape (paper): gloves cost accuracy (fabric reflections "
      "distort the\nsensed hand) but the basic pose survives; cotton "
      "distorts more than silk.\n");
  return 0;
}
