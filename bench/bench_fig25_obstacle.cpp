// Reproduces Fig. 25: MPJPE and 3D-PCK with an obstacle blocking the
// line of sight (A4 paper / cloth / thin wooden board).
// Paper: paper 23.4 mm, cloth 25.1 mm, board 35.8 mm & 80.3 % — mmWave
// penetrates paper and cloth with modest loss; the board costs real
// accuracy but the system still works (unlike vision).

#include "bench_common.hpp"

using namespace mmhand;

int main() {
  auto experiment = eval::prepared_standard_experiment();
  eval::print_header("Fig. 25 — impact of obstacles (none line-of-sight)");

  std::vector<std::vector<std::string>> rows{
      {"Obstacle", "MPJPE (mm)", "PCK@40 (%)", "Paper MPJPE (mm)"}};
  for (const auto& [obstacle, name, paper] :
       std::vector<std::tuple<sim::Obstacle, std::string, std::string>>{
           {sim::Obstacle::kNone, "none", "18.3"},
           {sim::Obstacle::kPaper, "A4 paper", "23.4"},
           {sim::Obstacle::kCloth, "cloth", "25.1"},
           {sim::Obstacle::kBoard, "wood board", "35.8"}}) {
    const auto acc = bench::evaluate_sweep(
        *experiment, [&](sim::ScenarioConfig& s) {
          s.obstacle = obstacle;
          s.seed ^= 0x0B57u;
        });
    rows.push_back({name, eval::fmt(acc.mpjpe_mm()),
                    eval::fmt(acc.pck(40.0)), paper});
  }
  eval::print_table(rows);
  std::printf(
      "\nExpected shape (paper): none < paper < cloth << board — "
      "attenuation and\nin-material scattering grow with material "
      "thickness, but even the board leaves\na usable pose.\n");
  return 0;
}
