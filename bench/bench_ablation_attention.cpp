// Ablation: the attention stack of mmSpaceNet (§IV-A).  Trains the reduced
// protocol with the full two-stage channel + spatial attention and with
// all attention disabled, then compares held-out accuracy.  DESIGN.md
// calls this design choice out: attention should help the network focus
// on the hand's range-angle cells.

#include "bench_common.hpp"

#include "mmhand/common/stats.hpp"

using namespace mmhand;

namespace {

double evaluate_variant(const eval::ProtocolConfig& cfg) {
  eval::Experiment experiment(cfg);
  experiment.prepare(eval::cache_directory());
  std::vector<double> mpjpe;
  for (int user = 0; user < cfg.num_users; ++user)
    mpjpe.push_back(experiment.evaluate_user(user).mpjpe_mm());
  return mean(mpjpe);
}

}  // namespace

int main() {
  eval::print_header("Ablation — mmSpaceNet attention mechanisms");

  auto with_attention = bench::ablation_protocol();
  auto without_attention = with_attention;
  without_attention.posenet.spacenet.attention = {false, false, false};
  auto spatial_only = with_attention;
  spatial_only.posenet.spacenet.attention = {false, false, true};

  std::vector<std::vector<std::string>> rows{{"Variant", "MPJPE (mm)"}};
  rows.push_back({"full attention (frame+channel+spatial)",
                  eval::fmt(evaluate_variant(with_attention))});
  rows.push_back({"spatial attention only",
                  eval::fmt(evaluate_variant(spatial_only))});
  rows.push_back({"no attention",
                  eval::fmt(evaluate_variant(without_attention))});
  eval::print_table(rows);
  std::printf(
      "\n(Reduced ablation protocol: %d users, %.0f s training each, %d "
      "epochs.)\n",
      with_attention.num_users, with_attention.train_duration_s,
      with_attention.train.epochs);
  return 0;
}
