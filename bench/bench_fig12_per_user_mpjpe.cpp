// Reproduces Fig. 12: per-participant MPJPE under the cross-validation
// protocol.  Paper: mean 18.3 mm, std 2.96 mm, per-user spread small.

#include "bench_common.hpp"

#include "mmhand/common/stats.hpp"

using namespace mmhand;

int main() {
  auto experiment = eval::prepared_standard_experiment();
  eval::print_header("Fig. 12 — per-participant MPJPE (mm)");

  std::vector<std::vector<std::string>> rows{{"User", "MPJPE (mm)"}};
  std::vector<double> values;
  for (int user = 0; user < experiment->config().num_users; ++user) {
    const auto acc = experiment->evaluate_user(user);
    const double mpjpe = acc.mpjpe_mm();
    values.push_back(mpjpe);
    rows.push_back({std::to_string(user + 1), eval::fmt(mpjpe)});
  }
  eval::print_table(rows);
  eval::print_metric("Mean MPJPE", mean(values), "mm (paper: 18.3)");
  eval::print_metric("Std deviation", stddev(values), "mm (paper: 2.96)");
  eval::print_metric("Best-worst user gap",
                     max_value(values) - min_value(values),
                     "mm (paper: 2.9)");
  return 0;
}
