// Ablation: the kinematic loss (§IV-B).  Compares training with the
// combined loss (beta*L3D + gamma*Lkine) against plain L3D, and reports
// both the joint accuracy and how strongly predictions violate the
// collinear/coplanar finger constraints.

#include "bench_common.hpp"

#include "mmhand/common/stats.hpp"
#include "mmhand/pose/kinematic_loss.hpp"

using namespace mmhand;

namespace {

struct VariantResult {
  double mpjpe_mm = 0.0;
  double kine_violation = 0.0;  ///< mean L_kine of predictions vs oracle
};

VariantResult evaluate_variant(const eval::ProtocolConfig& cfg) {
  eval::Experiment experiment(cfg);
  experiment.prepare(eval::cache_directory());
  VariantResult out;
  std::vector<double> mpjpe;
  double kine_total = 0.0;
  std::size_t kine_count = 0;
  for (int user = 0; user < cfg.num_users; ++user) {
    auto& model = experiment.model_for_user(user);
    const auto recording =
        experiment.record_test(experiment.default_scenario(user));
    const auto preds = pose::predict_recording(model, recording);
    eval::EvalAccumulator acc;
    for (const auto& p : preds) {
      acc.add(p.joints, p.oracle);
      nn::Tensor pred_row({63}), gt_row({63});
      for (int j = 0; j < hand::kNumJoints; ++j) {
        for (int c = 0; c < 3; ++c) {
          const auto& pj = p.joints[static_cast<std::size_t>(j)];
          const auto& gj = p.oracle[static_cast<std::size_t>(j)];
          pred_row[static_cast<std::size_t>(3 * j + c)] = static_cast<float>(
              c == 0 ? pj.x : (c == 1 ? pj.y : pj.z));
          gt_row[static_cast<std::size_t>(3 * j + c)] = static_cast<float>(
              c == 0 ? gj.x : (c == 1 ? gj.y : gj.z));
        }
      }
      kine_total += pose::kinematic_loss(pred_row, gt_row).value;
      ++kine_count;
    }
    mpjpe.push_back(acc.mpjpe_mm());
  }
  out.mpjpe_mm = mean(mpjpe);
  out.kine_violation = kine_total / static_cast<double>(kine_count);
  return out;
}

}  // namespace

int main() {
  eval::print_header("Ablation — kinematic loss weight gamma (Eq. 8)");

  std::vector<std::vector<std::string>> rows{
      {"gamma", "MPJPE (mm)", "kinematic violation"}};
  for (double gamma : {0.0, 0.1, 0.5}) {
    auto cfg = bench::ablation_protocol();
    cfg.train.loss.gamma = gamma;
    const auto result = evaluate_variant(cfg);
    rows.push_back({eval::fmt(gamma, 1), eval::fmt(result.mpjpe_mm),
                    eval::fmt(result.kine_violation, 3)});
  }
  eval::print_table(rows);
  std::printf(
      "\nExpected: the kinematic term reduces constraint violations "
      "(straighter,\nflatter fingers) at comparable or better MPJPE; a "
      "too-large gamma trades\naccuracy for rigidity.\n");
  return 0;
}
