// Reproduces Fig. 13: per-participant 3D-PCK at the 40 mm threshold.
// Paper: mean 95.1 %, std 1.17 %, per-user gap ~3.3 %.

#include "bench_common.hpp"

#include "mmhand/common/stats.hpp"

using namespace mmhand;

int main() {
  auto experiment = eval::prepared_standard_experiment();
  eval::print_header("Fig. 13 — per-participant 3D-PCK @ 40 mm (%)");

  std::vector<std::vector<std::string>> rows{{"User", "PCK@40mm (%)"}};
  std::vector<double> values;
  for (int user = 0; user < experiment->config().num_users; ++user) {
    const auto acc = experiment->evaluate_user(user);
    const double pck = acc.pck(40.0);
    values.push_back(pck);
    rows.push_back({std::to_string(user + 1), eval::fmt(pck)});
  }
  eval::print_table(rows);
  eval::print_metric("Mean 3D-PCK", mean(values), "% (paper: 95.1)");
  eval::print_metric("Std deviation", stddev(values), "% (paper: 1.17)");
  eval::print_metric("Best-worst user gap",
                     max_value(values) - min_value(values),
                     "% (paper: 3.3)");
  return 0;
}
