// mmhand_lint — project-specific static analysis.
//
//   mmhand_lint [--root DIR] [--allowlist FILE] [--readme FILE]
//               [--json] [DIR|FILE]...
//
// Walks src/, tests/, bench/, and tools/ (or the given paths) under the
// repo root and enforces the invariants DESIGN.md's "Static analysis &
// correctness gates" section catalogues: getenv only behind the
// allowlist, no direct console I/O outside obs/ and the sanctioned eval
// printers, no irreproducible RNG outside common/rng, #pragma once +
// no using-directives in headers, no naked new[]/malloc, and every
// quoted MMHAND_* literal documented in the README env-var table.
//
// Findings print as `file:line: rule-id: message`; exit status is 0
// when clean, 1 with findings, 2 on usage/config errors.  --json
// swaps the human output for a machine-readable report that
// mmhand_report ingests via --lint.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "lint/lint_core.hpp"

namespace fs = std::filesystem;
using mmhand::lint::Config;
using mmhand::lint::Finding;

namespace {

bool slurp(const fs::path& path, std::string* out) {
  std::FILE* f = std::fopen(path.string().c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  char buf[65536];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  std::fclose(f);
  return true;
}

bool lintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h";
}

/// Repo-relative path with forward slashes (the allowlist key format).
std::string rel_key(const fs::path& root, const fs::path& path) {
  return fs::relative(path, root).generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::string allowlist_path;  // default: <root>/scripts/lint_allowlist.json
  std::string readme_path;     // default: <root>/README.md
  bool json_output = false;
  std::vector<std::string> targets;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--root") {
      if (const char* v = next()) root = v;
    } else if (arg == "--allowlist") {
      if (const char* v = next()) allowlist_path = v;
    } else if (arg == "--readme") {
      if (const char* v = next()) readme_path = v;
    } else if (arg == "--json") {
      json_output = true;
    } else if (!arg.empty() && arg[0] != '-') {
      targets.push_back(arg);
    } else {
      std::fprintf(stderr,
                   "usage: mmhand_lint [--root DIR] [--allowlist FILE]"
                   " [--readme FILE] [--json] [DIR|FILE]...\n");
      return arg == "-h" || arg == "--help" ? 0 : 2;
    }
  }
  if (!fs::is_directory(root)) {
    std::fprintf(stderr, "mmhand_lint: root %s is not a directory\n",
                 root.string().c_str());
    return 2;
  }
  root = fs::canonical(root);
  if (targets.empty()) targets = {"src", "tests", "bench", "tools"};

  Config cfg = mmhand::lint::default_config();
  {
    const fs::path path = allowlist_path.empty()
                              ? root / "scripts" / "lint_allowlist.json"
                              : fs::path(allowlist_path);
    std::string text;
    if (slurp(path, &text)) {
      std::string error;
      if (!mmhand::lint::parse_allowlist_json(text, &cfg, &error)) {
        std::fprintf(stderr, "mmhand_lint: %s: %s\n", path.string().c_str(),
                     error.c_str());
        return 2;
      }
    } else if (!allowlist_path.empty()) {
      std::fprintf(stderr, "mmhand_lint: cannot read allowlist %s\n",
                   path.string().c_str());
      return 2;
    }
  }
  {
    const fs::path path = readme_path.empty() ? root / "README.md"
                                              : fs::path(readme_path);
    std::string text;
    if (slurp(path, &text)) {
      cfg.documented_env = mmhand::lint::extract_documented_env(text);
    } else {
      std::fprintf(stderr, "mmhand_lint: cannot read README %s\n",
                   path.string().c_str());
      return 2;
    }
  }

  std::vector<fs::path> files;
  for (const std::string& target : targets) {
    const fs::path base = fs::path(target).is_absolute() ? fs::path(target)
                                                         : root / target;
    if (fs::is_regular_file(base)) {
      files.push_back(base);
    } else if (fs::is_directory(base)) {
      for (const auto& entry : fs::recursive_directory_iterator(base))
        if (entry.is_regular_file() && lintable(entry.path()))
          files.push_back(entry.path());
    }
    // Absent targets are fine: a partial checkout still lints.
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  for (const fs::path& file : files) {
    std::string content;
    if (!slurp(file, &content)) {
      std::fprintf(stderr, "mmhand_lint: cannot read %s\n",
                   file.string().c_str());
      return 2;
    }
    const std::vector<Finding> file_findings =
        mmhand::lint::check_file(rel_key(root, file), content, cfg);
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }

  if (json_output) {
    const std::string body =
        mmhand::lint::findings_to_json(findings, files.size());
    std::fwrite(body.data(), 1, body.size(), stdout);
  } else {
    for (const Finding& f : findings)
      std::printf("%s:%d: %s: %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
    std::fprintf(stderr, "mmhand_lint: %zu file(s), %zu finding(s)\n",
                 files.size(), findings.size());
  }
  return findings.empty() ? 0 : 1;
}
