// mmhand_lint — project-specific static analysis.
//
//   mmhand_lint [--root DIR] [--allowlist FILE] [--readme FILE]
//               [--purity] [--purity-allowlist FILE] [--json]
//               [DIR|FILE]...
//
// Walks src/, tests/, bench/, and tools/ (or the given paths) under the
// repo root and enforces the invariants DESIGN.md's "Static analysis &
// correctness gates" section catalogues: getenv only behind the
// allowlist, no direct console I/O outside obs/ and the sanctioned eval
// printers, no irreproducible RNG outside common/rng, #pragma once +
// no using-directives in headers, no naked new[]/malloc, and every
// quoted MMHAND_* literal documented in the README env-var table.
//
// Findings print as `file:line: rule-id: message`; exit status is 0
// when clean, 1 with findings, 2 on usage/config errors.  --json
// swaps the human output for a machine-readable report that
// mmhand_report ingests via --lint.
//
// --purity runs the hot-path purity analyzer instead (purity_core.hpp):
// call-graph closure from every MMHAND_REALTIME root over src/mmhand/**,
// reporting reachable heap allocation, locks, throws, I/O, and blocking
// syscalls with full call chains.  Exit 0 when every root is clean.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "lint/lint_core.hpp"
#include "lint/purity_core.hpp"

namespace fs = std::filesystem;
using mmhand::lint::Config;
using mmhand::lint::Finding;

namespace {

bool slurp(const fs::path& path, std::string* out) {
  std::FILE* f = std::fopen(path.string().c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  char buf[65536];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  std::fclose(f);
  return true;
}

bool lintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h";
}

/// Repo-relative path with forward slashes (the allowlist key format).
std::string rel_key(const fs::path& root, const fs::path& path) {
  return fs::relative(path, root).generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::string allowlist_path;  // default: <root>/scripts/lint_allowlist.json
  std::string readme_path;     // default: <root>/README.md
  std::string purity_allowlist_path;  // default: scripts/purity_allowlist.json
  bool json_output = false;
  bool purity = false;
  std::vector<std::string> targets;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--root") {
      if (const char* v = next()) root = v;
    } else if (arg == "--allowlist") {
      if (const char* v = next()) allowlist_path = v;
    } else if (arg == "--readme") {
      if (const char* v = next()) readme_path = v;
    } else if (arg == "--json") {
      json_output = true;
    } else if (arg == "--purity") {
      purity = true;
    } else if (arg == "--purity-allowlist") {
      if (const char* v = next()) purity_allowlist_path = v;
    } else if (!arg.empty() && arg[0] != '-') {
      targets.push_back(arg);
    } else {
      std::fprintf(stderr,
                   "usage: mmhand_lint [--root DIR] [--allowlist FILE]"
                   " [--readme FILE] [--purity] [--purity-allowlist FILE]"
                   " [--json] [DIR|FILE]...\n");
      return arg == "-h" || arg == "--help" ? 0 : 2;
    }
  }
  if (!fs::is_directory(root)) {
    std::fprintf(stderr, "mmhand_lint: root %s is not a directory\n",
                 root.string().c_str());
    return 2;
  }
  root = fs::canonical(root);

  if (purity) {
    mmhand::lint::PurityConfig pcfg = mmhand::lint::default_purity_config();
    const fs::path path =
        purity_allowlist_path.empty()
            ? root / "scripts" / "purity_allowlist.json"
            : fs::path(purity_allowlist_path);
    std::string text;
    if (slurp(path, &text)) {
      std::string error;
      if (!mmhand::lint::parse_purity_allowlist_json(text, &pcfg, &error)) {
        std::fprintf(stderr, "mmhand_lint: %s: %s\n", path.string().c_str(),
                     error.c_str());
        return 2;
      }
    } else if (!purity_allowlist_path.empty()) {
      std::fprintf(stderr, "mmhand_lint: cannot read purity allowlist %s\n",
                   path.string().c_str());
      return 2;
    }
    // Purity scans the library tree only (plus .inl kernel bodies);
    // positional targets, if any, narrow the file set for testing.
    std::vector<fs::path> files;
    std::vector<std::string> ptargets = targets;
    if (ptargets.empty()) ptargets = {"src/mmhand"};
    for (const std::string& target : ptargets) {
      const fs::path base = fs::path(target).is_absolute()
                                ? fs::path(target)
                                : root / target;
      if (fs::is_regular_file(base)) {
        files.push_back(base);
      } else if (fs::is_directory(base)) {
        for (const auto& entry : fs::recursive_directory_iterator(base)) {
          if (!entry.is_regular_file()) continue;
          const std::string ext = entry.path().extension().string();
          if (ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".inl")
            files.push_back(entry.path());
        }
      }
    }
    std::sort(files.begin(), files.end());
    std::vector<std::pair<std::string, std::string>> inputs;
    for (const fs::path& file : files) {
      std::string content;
      if (!slurp(file, &content)) {
        std::fprintf(stderr, "mmhand_lint: cannot read %s\n",
                     file.string().c_str());
        return 2;
      }
      inputs.emplace_back(rel_key(root, file), std::move(content));
    }
    const mmhand::lint::PurityReport report =
        mmhand::lint::analyze_purity(inputs, pcfg);
    if (json_output) {
      const std::string body = mmhand::lint::purity_to_json(report);
      std::fwrite(body.data(), 1, body.size(), stdout);
    } else {
      for (const auto& r : report.roots) {
        std::printf("%s:%d: root %s: %zu reachable, %zu audited, %zu"
                    " hit(s)\n",
                    r.file.c_str(), r.line, r.name.c_str(), r.reachable,
                    r.audited, r.hits.size());
        for (const auto& h : r.hits) {
          std::string chain;
          for (std::size_t i = 0; i < h.chain.size(); ++i)
            chain += (i == 0 ? "" : " -> ") + h.chain[i] + "()";
          std::printf("%s:%d: purity-%s: %s via %s\n", h.file.c_str(),
                      h.line, h.category.c_str(), h.token.c_str(),
                      chain.c_str());
        }
      }
      std::size_t hits = 0;
      for (const auto& r : report.roots) hits += r.hits.size();
      std::fprintf(stderr,
                   "mmhand_lint --purity: %zu file(s), %zu function(s),"
                   " %zu root(s), %zu hit(s)\n",
                   report.files_scanned, report.functions_indexed,
                   report.roots.size(), hits);
    }
    return mmhand::lint::purity_clean(report) ? 0 : 1;
  }

  if (targets.empty()) targets = {"src", "tests", "bench", "tools"};

  Config cfg = mmhand::lint::default_config();
  {
    const fs::path path = allowlist_path.empty()
                              ? root / "scripts" / "lint_allowlist.json"
                              : fs::path(allowlist_path);
    std::string text;
    if (slurp(path, &text)) {
      std::string error;
      if (!mmhand::lint::parse_allowlist_json(text, &cfg, &error)) {
        std::fprintf(stderr, "mmhand_lint: %s: %s\n", path.string().c_str(),
                     error.c_str());
        return 2;
      }
    } else if (!allowlist_path.empty()) {
      std::fprintf(stderr, "mmhand_lint: cannot read allowlist %s\n",
                   path.string().c_str());
      return 2;
    }
  }
  {
    const fs::path path = readme_path.empty() ? root / "README.md"
                                              : fs::path(readme_path);
    std::string text;
    if (slurp(path, &text)) {
      cfg.documented_env = mmhand::lint::extract_documented_env(text);
    } else {
      std::fprintf(stderr, "mmhand_lint: cannot read README %s\n",
                   path.string().c_str());
      return 2;
    }
  }

  std::vector<fs::path> files;
  for (const std::string& target : targets) {
    const fs::path base = fs::path(target).is_absolute() ? fs::path(target)
                                                         : root / target;
    if (fs::is_regular_file(base)) {
      files.push_back(base);
    } else if (fs::is_directory(base)) {
      for (const auto& entry : fs::recursive_directory_iterator(base))
        if (entry.is_regular_file() && lintable(entry.path()))
          files.push_back(entry.path());
    }
    // Absent targets are fine: a partial checkout still lints.
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  for (const fs::path& file : files) {
    std::string content;
    if (!slurp(file, &content)) {
      std::fprintf(stderr, "mmhand_lint: cannot read %s\n",
                   file.string().c_str());
      return 2;
    }
    const std::vector<Finding> file_findings =
        mmhand::lint::check_file(rel_key(root, file), content, cfg);
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }

  if (json_output) {
    const std::string body =
        mmhand::lint::findings_to_json(findings, files.size());
    std::fwrite(body.data(), 1, body.size(), stdout);
  } else {
    for (const Finding& f : findings)
      std::printf("%s:%d: %s: %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
    std::fprintf(stderr, "mmhand_lint: %zu file(s), %zu finding(s)\n",
                 files.size(), findings.size());
  }
  return findings.empty() ? 0 : 1;
}
