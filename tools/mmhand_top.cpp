// mmhand_top — live view over the continuous-telemetry stream and the
// crash flight recorder:
//
//   mmhand_top TELEMETRY.jsonl [--last N] [--follow]
//       summarize the newest N sampler intervals (default 30): per-stage
//       rates, windowed p50/p95/p99 latency with a p95 sparkline,
//       counter rates, fault-injection activity, and budget breaches.
//       --follow re-reads and redraws once a second (Ctrl-C to stop).
//   mmhand_top --flight RING
//       render a binary flight-recorder ring file (e.g. the artifact a
//       SIGKILLed run leaves behind) as human-readable per-thread event
//       history with in-flight spans.
//
// The JSONL input is whatever the telemetry sampler streams via
// MMHAND_TELEMETRY's out= path; a torn final line (killed writer) is
// skipped, not fatal.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "mmhand/common/json.hpp"
#include "mmhand/obs/flight.hpp"

namespace {

using mmhand::json::Value;

std::string slurp(const std::string& path, bool* ok) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *ok = false;
    return {};
  }
  std::string out;
  char buf[65536];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  *ok = true;
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    if (nl > pos) lines.push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

/// 8-level unicode sparkline of `values` normalized to their own max.
std::string sparkline(const std::vector<double>& values) {
  static const char* kBlocks[8] = {"▁", "▂", "▃", "▄",
                                   "▅", "▆", "▇", "█"};
  double hi = 0.0;
  for (const double v : values) hi = std::max(hi, v);
  std::string out;
  for (const double v : values) {
    if (hi <= 0.0) {
      out += kBlocks[0];
      continue;
    }
    const int level = std::min(
        7, static_cast<int>(v / hi * 7.999));
    out += kBlocks[level];
  }
  return out;
}

struct StageWindow {
  std::vector<double> p95_series;  ///< one point per interval (0 = idle)
  double count = 0.0, mean_us = 0.0, p50_us = 0.0, p95_us = 0.0,
         p99_us = 0.0, max_us = 0.0;  ///< newest active interval
  double total_count = 0.0;          ///< events across the window
};

int render_telemetry(const std::string& path, std::size_t last,
                     bool clear_screen) {
  bool ok = false;
  const std::string text = slurp(path, &ok);
  if (!ok) {
    std::fprintf(stderr, "mmhand_top: cannot read %s\n", path.c_str());
    return 1;
  }
  std::vector<Value> records;
  for (const std::string& line : split_lines(text)) {
    std::string err;
    Value v = Value::parse(line, &err);
    // A torn final line from a killed writer parses with an error; skip.
    if (err.empty() && v.is_object() &&
        v.string_or("kind", "") == "telemetry")
      records.push_back(std::move(v));
  }
  if (clear_screen) std::printf("\x1b[2J\x1b[H");
  if (records.empty()) {
    std::printf("%s: no telemetry intervals yet\n", path.c_str());
    return 0;
  }
  const std::size_t begin = records.size() > last ? records.size() - last : 0;
  const std::vector<Value> window(records.begin() +
                                      static_cast<std::ptrdiff_t>(begin),
                                  records.end());
  const Value& newest = window.back();
  double window_ms = 0.0;
  for (const Value& r : window) window_ms += r.number_or("dt_ms", 0.0);

  std::printf("%s — interval %zu..%zu of %zu, window %.1f s, "
              "breach_total %lld\n\n",
              path.c_str(), begin + 1, records.size(), records.size(),
              window_ms / 1e3,
              static_cast<long long>(newest.number_or("breach_total", 0)));

  // Stage table with a p95 sparkline across the window.
  std::map<std::string, StageWindow> stages;
  for (std::size_t i = 0; i < window.size(); ++i) {
    const Value* st = window[i].find("stages");
    if (st == nullptr || !st->is_object()) continue;
    for (const auto& [name, h] : st->as_object()) {
      StageWindow& w = stages[name];
      w.p95_series.resize(window.size(), 0.0);
      w.p95_series[i] = h.number_or("p95_us", 0.0);
      w.count = h.number_or("count", 0.0);
      w.mean_us = h.number_or("mean_us", 0.0);
      w.p50_us = h.number_or("p50_us", 0.0);
      w.p95_us = h.number_or("p95_us", 0.0);
      w.p99_us = h.number_or("p99_us", 0.0);
      w.max_us = h.number_or("max_us", 0.0);
      w.total_count += h.number_or("count", 0.0);
    }
  }
  if (!stages.empty()) {
    std::printf("%-28s %8s %9s %9s %9s %9s  %s\n", "stage", "ev/s",
                "mean us", "p50 us", "p95 us", "p99 us", "p95 trend");
    for (auto& [name, w] : stages) {
      w.p95_series.resize(window.size(), 0.0);
      const double rate =
          window_ms > 0.0 ? w.total_count / (window_ms / 1e3) : 0.0;
      std::printf("%-28s %8.1f %9.1f %9.1f %9.1f %9.1f  %s\n",
                  name.c_str(), rate, w.mean_us, w.p50_us, w.p95_us,
                  w.p99_us, sparkline(w.p95_series).c_str());
    }
    std::printf("\n");
  }

  // Counter rates over the window (delta sums / wall time).
  std::map<std::string, std::pair<double, double>> counters;  // total, delta
  for (const Value& r : window) {
    const Value* cs = r.find("counters");
    if (cs == nullptr || !cs->is_object()) continue;
    for (const auto& [name, c] : cs->as_object()) {
      counters[name].first = c.number_or("total", 0.0);
      counters[name].second += c.number_or("delta", 0.0);
    }
  }
  if (!counters.empty()) {
    std::printf("%-28s %12s %10s\n", "counter", "total", "per s");
    for (const auto& [name, tc] : counters)
      std::printf("%-28s %12.0f %10.1f\n", name.c_str(), tc.first,
                  window_ms > 0.0 ? tc.second / (window_ms / 1e3) : 0.0);
    std::printf("\n");
  }

  // Fault injections, when the fault harness is live.
  if (const Value* faults = newest.find("faults");
      faults != nullptr && faults->is_object() &&
      !faults->as_object().empty()) {
    std::printf("%-28s %12s\n", "fault kind", "injected");
    for (const auto& [name, fv] : faults->as_object())
      std::printf("%-28s %12.0f\n", name.c_str(),
                  fv.number_or("total", 0.0));
    std::printf("\n");
  }

  // Budget breaches anywhere in the window.
  std::size_t breaches = 0;
  for (const Value& r : window) {
    const Value* bs = r.find("breaches");
    if (bs == nullptr || !bs->is_array()) continue;
    for (const Value& b : bs->as_array()) {
      if (breaches == 0)
        std::printf("%-28s %-10s %12s %12s\n", "budget breach", "field",
                    "limit us", "actual us");
      ++breaches;
      std::printf("%-28s %-10s %12.1f %12.1f\n",
                  b.string_or("stage", "?").c_str(),
                  b.string_or("field", "?").c_str(),
                  b.number_or("limit", 0.0), b.number_or("actual", 0.0));
    }
  }
  if (breaches == 0)
    std::printf("no budget breaches in window\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonl_path, flight_path;
  std::size_t last = 30;
  bool follow = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--flight") {
      if (i + 1 < argc) flight_path = argv[++i];
    } else if (arg == "--last") {
      if (i + 1 < argc) last = static_cast<std::size_t>(
                             std::max(1, std::atoi(argv[++i])));
    } else if (arg == "--follow") {
      follow = true;
    } else if (arg.rfind("-", 0) != 0 && jsonl_path.empty()) {
      jsonl_path = arg;
    } else {
      std::fprintf(stderr,
                   "usage: mmhand_top TELEMETRY.jsonl [--last N] "
                   "[--follow]\n       mmhand_top --flight RING\n");
      return arg == "-h" || arg == "--help" ? 0 : 2;
    }
  }

  if (!flight_path.empty()) {
    std::string error;
    const std::string rendered =
        mmhand::obs::flight_render_file(flight_path, &error);
    if (rendered.empty()) {
      std::fprintf(stderr, "mmhand_top: %s\n", error.c_str());
      return 1;
    }
    std::fwrite(rendered.data(), 1, rendered.size(), stdout);
    return 0;
  }
  if (jsonl_path.empty()) {
    std::fprintf(stderr,
                 "usage: mmhand_top TELEMETRY.jsonl [--last N] [--follow]\n"
                 "       mmhand_top --flight RING\n");
    return 2;
  }
  if (!follow) return render_telemetry(jsonl_path, last, false);
  for (;;) {
    const int rc = render_telemetry(jsonl_path, last, true);
    if (rc != 0) return rc;
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::seconds(1));
  }
}
