// mmhand_top — live view over the continuous-telemetry stream and the
// crash flight recorder:
//
//   mmhand_top TELEMETRY.jsonl [--last N] [--follow]
//       summarize the newest N sampler intervals (default 30): per-stage
//       rates, windowed p50/p95/p99 latency with a p95 sparkline,
//       counter rates, fault-injection activity, and budget breaches.
//       --follow re-reads and redraws once a second (Ctrl-C to stop),
//       waiting for the file if it does not exist yet.
//   mmhand_top TELEMETRY.jsonl --serve
//       serving-plane view over the same stream: serve/* counters and
//       gauges (live sessions, queue depth, inflight, degradation tier)
//       plus the cross-session and per-session e2e latency histograms.
//   mmhand_top TELEMETRY.jsonl --tail
//       tail-latency attribution over the per-frame records a closing
//       FrameScope appends to the same stream: total-latency p50/p95/p99
//       per frame label, plus which stage dominates the p95+ frames.
//   mmhand_top --flight RING
//       render a binary flight-recorder ring file (e.g. the artifact a
//       SIGKILLed run leaves behind) as human-readable per-thread event
//       history with in-flight spans.
//
// A torn final JSONL line (killed writer) is benign and skipped;
// unparseable *interior* lines are reported but never fatal.  Parsing
// and rendering live in tools/top/top_core.* so tests can drive them.

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "mmhand/obs/flight.hpp"
#include "top/top_core.hpp"

namespace {

bool slurp(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  char buf[65536];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  std::fclose(f);
  return true;
}

int usage(bool error) {
  std::fprintf(error ? stderr : stdout,
               "usage: mmhand_top TELEMETRY.jsonl [--last N] [--follow] "
               "[--tail] [--serve]\n       mmhand_top --flight RING\n");
  return error ? 2 : 0;
}

/// One render pass.  Missing file is an error in one-shot mode but just
/// "not yet" under --follow (the writer may not have started).
int render_once(const std::string& path, std::size_t last, bool tail,
                bool serve, bool follow, bool clear_screen) {
  std::string text;
  if (!slurp(path, &text)) {
    if (!follow) {
      std::fprintf(stderr, "mmhand_top: cannot read %s\n", path.c_str());
      return 1;
    }
    if (clear_screen) std::printf("\x1b[2J\x1b[H");
    std::printf("%s: waiting for stream...\n", path.c_str());
    return 0;
  }
  const mmhand::top::ParsedStream stream = mmhand::top::parse_jsonl(text);
  const std::string body =
      serve ? mmhand::top::render_serve(stream, path, last)
      : tail ? mmhand::top::render_tail(stream, path)
             : mmhand::top::render_intervals(stream, path, last);
  if (clear_screen) std::printf("\x1b[2J\x1b[H");
  if (body.empty()) {
    std::printf("%s: no %s records yet\n", path.c_str(),
                serve ? "serve/*" : tail ? "per-frame" : "telemetry interval");
    return 0;
  }
  std::fwrite(body.data(), 1, body.size(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonl_path, flight_path;
  std::size_t last = 30;
  bool follow = false;
  bool tail = false;
  bool serve = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--flight") {
      if (i + 1 < argc) flight_path = argv[++i];
    } else if (arg == "--last") {
      if (i + 1 < argc)
        last = static_cast<std::size_t>(std::max(1, std::atoi(argv[++i])));
    } else if (arg == "--follow") {
      follow = true;
    } else if (arg == "--tail") {
      tail = true;
    } else if (arg == "--serve") {
      serve = true;
    } else if (arg.rfind("-", 0) != 0 && jsonl_path.empty()) {
      jsonl_path = arg;
    } else {
      return usage(!(arg == "-h" || arg == "--help"));
    }
  }

  if (!flight_path.empty()) {
    std::string error;
    const std::string rendered =
        mmhand::obs::flight_render_file(flight_path, &error);
    if (rendered.empty()) {
      std::fprintf(stderr, "mmhand_top: %s\n", error.c_str());
      return 1;
    }
    std::fwrite(rendered.data(), 1, rendered.size(), stdout);
    return 0;
  }
  if (jsonl_path.empty()) return usage(true);
  if (!follow)
    return render_once(jsonl_path, last, tail, serve, false, false);
  for (;;) {
    const int rc = render_once(jsonl_path, last, tail, serve, true, true);
    if (rc != 0) return rc;
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::seconds(1));
  }
}
