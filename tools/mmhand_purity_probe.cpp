// mmhand_purity_probe — runtime half of the hot-path purity gate.
//
//   mmhand_purity_probe [--frames N] [--warmup N] [--json]
//
// Drives warmed-up steady-state radar frames through
// RadarPipeline::process_frame_into with the operator-new interposer
// (obs/alloc) counting, and asserts the per-frame allocation delta is
// exactly zero on vector ISAs.  This closes the static analyzer's blind
// spots (`mmhand_lint --purity` cannot see allocation behind value
// construction or function pointers); together the two prove the claim
// in DESIGN.md §12.
//
// The pose forward path is gated the same way: with the tensor pool on
// (nn::set_tensor_pool_enabled), every value-returned activation tensor
// recycles a parked buffer from the thread-local free list, so a warmed
// steady-state forward allocates nothing.  This is the invariant the
// serving layer relies on for allocation-free steady-state batching.
//
// Exit status: 0 when steady-state radar frames and pose forwards
// allocate nothing (radar is exempt on the scalar ISA, whose reference
// path allocates by design and is audited in
// scripts/purity_allowlist.json); 1 otherwise.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "mmhand/common/rng.hpp"
#include "mmhand/nn/tensor.hpp"
#include "mmhand/obs/alloc.hpp"
#include "mmhand/pose/joint_model.hpp"
#include "mmhand/pose/trainer.hpp"
#include "mmhand/radar/antenna_array.hpp"
#include "mmhand/radar/chirp_config.hpp"
#include "mmhand/radar/if_simulator.hpp"
#include "mmhand/radar/pipeline.hpp"
#include "mmhand/simd/simd.hpp"

namespace {

using mmhand::Rng;
using mmhand::Vec3;

struct Stats {
  std::int64_t allocs = 0;
  std::int64_t bytes = 0;
  std::int64_t max_frame_allocs = 0;
};

/// Allocation delta across `frames` calls of `fn`, tracking the worst
/// single call.
template <typename Fn>
Stats measure(int frames, Fn&& fn) {
  Stats s;
  for (int i = 0; i < frames; ++i) {
    const auto before = mmhand::obs::alloc_counts();
    fn();
    const auto after = mmhand::obs::alloc_counts();
    const std::int64_t d = after.allocs - before.allocs;
    s.allocs += d;
    s.bytes += after.bytes - before.bytes;
    if (d > s.max_frame_allocs) s.max_frame_allocs = d;
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  int frames = 30;
  int warmup = 5;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--frames" && i + 1 < argc) {
      frames = std::atoi(argv[++i]);
    } else if (arg == "--warmup" && i + 1 < argc) {
      warmup = std::atoi(argv[++i]);
    } else if (arg == "--json") {
      json = true;
    } else {
      std::fprintf(stderr,
                   "usage: mmhand_purity_probe [--frames N] [--warmup N]"
                   " [--json]\n");
      return arg == "-h" || arg == "--help" ? 0 : 2;
    }
  }
  if (frames < 1 || warmup < 0) {
    std::fprintf(stderr, "mmhand_purity_probe: bad --frames/--warmup\n");
    return 2;
  }

  const bool vector_isa =
      mmhand::simd::active_isa() != mmhand::simd::Isa::kScalar;

  // Paper-shaped frame, as in bench_throughput.
  mmhand::radar::ChirpConfig chirp;
  chirp.noise_stddev = 0.0;
  const mmhand::radar::AntennaArray array(chirp);
  const mmhand::radar::IfSimulator sim(chirp, array);
  const mmhand::radar::PipelineConfig pc;
  const mmhand::radar::RadarPipeline pipe(chirp, array, pc);
  mmhand::radar::Scene scene{
      {Vec3{0.05, 0.30, 0.02}, Vec3{0.0, 0.4, 0.0}, 1.0},
      {Vec3{-0.08, 0.45, -0.01}, Vec3{0.0, -0.2, 0.0}, 0.7},
  };
  Rng frame_rng(1);
  const auto frame = sim.simulate_frame(scene, 0.0, frame_rng);

  // Pose model at cube-matched dims.
  mmhand::pose::PoseNetConfig pose_cfg;
  pose_cfg.velocity_bins = chirp.chirps_per_frame;
  pose_cfg.range_bins = pc.cube.range_bins;
  pose_cfg.angle_bins = pc.cube.total_angle_bins();
  Rng model_rng(2);
  mmhand::pose::HandJointRegressor model(pose_cfg, model_rng);
  mmhand::pose::PoseSample sample;
  sample.input = mmhand::nn::Tensor::randn(
      {pose_cfg.frames_per_sample(), pose_cfg.velocity_bins,
       pose_cfg.range_bins, pose_cfg.angle_bins},
      model_rng, 1.0);

  // Warm-up: sizes every grow-on-demand scratch (per worker thread) and
  // builds the FFT twiddle/plan caches, all with tracking off.
  mmhand::radar::RadarCube cube;
  for (int i = 0; i < warmup; ++i) pipe.process_frame_into(frame, &cube);
  mmhand::nn::Tensor pose_out = mmhand::pose::predict_sample(model, sample);

  // Steady state means a full batch of frames with zero allocations.
  // Which pool worker first touches a stage's grow-on-demand scratch is
  // a claiming race (common/parallel chunk assignment is dynamic), so a
  // worker that sat out every warm-up region can grow its scratch
  // frames later — early batches may see a handful of stragglers.  A
  // real per-frame leak allocates in every batch and never settles.
  constexpr int kMaxBatches = 8;
  mmhand::obs::set_alloc_tracking(true);
  Stats radar;
  std::int64_t stray = 0;
  int batches = 0;
  while (batches < kMaxBatches) {
    radar = measure(frames, [&] { pipe.process_frame_into(frame, &cube); });
    ++batches;
    if (radar.allocs == 0) break;
    stray += radar.allocs;
  }
  // Pose: the tensor pool turns per-forward activation tensors into
  // free-list recycling.  One pool-on forward parks the buffers; the
  // settle loop absorbs stragglers exactly like the radar path.
  mmhand::obs::set_alloc_tracking(false);
  mmhand::nn::set_tensor_pool_enabled(true);
  pose_out = mmhand::pose::predict_sample(model, sample);
  mmhand::obs::set_alloc_tracking(true);
  Stats pose;
  std::int64_t pose_stray = 0;
  int pose_batches = 0;
  while (pose_batches < kMaxBatches) {
    pose = measure(frames, [&] {
      pose_out = mmhand::pose::predict_sample(model, sample);
    });
    ++pose_batches;
    if (pose.allocs == 0) break;
    pose_stray += pose.allocs;
  }
  mmhand::obs::set_alloc_tracking(false);

  const bool radar_clean = radar.allocs == 0;
  const bool pose_clean = pose.allocs == 0;
  const bool pass = (radar_clean || !vector_isa) && pose_clean;

  if (json) {
    std::printf(
        "{\n"
        "  \"tool\": \"mmhand_purity_probe\",\n"
        "  \"isa\": \"%s\",\n"
        "  \"frames\": %d,\n"
        "  \"warmup\": %d,\n"
        "  \"radar\": {\"allocs\": %lld, \"bytes\": %lld,"
        " \"max_frame_allocs\": %lld, \"allocs_per_frame\": %.3f,"
        " \"settle_batches\": %d, \"stray_allocs\": %lld},\n"
        "  \"pose\": {\"allocs\": %lld, \"bytes\": %lld,"
        " \"max_frame_allocs\": %lld, \"allocs_per_frame\": %.3f,"
        " \"settle_batches\": %d, \"stray_allocs\": %lld},\n"
        "  \"radar_clean\": %s,\n"
        "  \"pose_clean\": %s,\n"
        "  \"pass\": %s\n"
        "}\n",
        mmhand::simd::isa_name(mmhand::simd::active_isa()), frames, warmup,
        static_cast<long long>(radar.allocs),
        static_cast<long long>(radar.bytes),
        static_cast<long long>(radar.max_frame_allocs),
        static_cast<double>(radar.allocs) / frames, batches,
        static_cast<long long>(stray),
        static_cast<long long>(pose.allocs),
        static_cast<long long>(pose.bytes),
        static_cast<long long>(pose.max_frame_allocs),
        static_cast<double>(pose.allocs) / frames, pose_batches,
        static_cast<long long>(pose_stray),
        radar_clean ? "true" : "false", pose_clean ? "true" : "false",
        pass ? "true" : "false");
  } else {
    std::printf("isa: %s\n",
                mmhand::simd::isa_name(mmhand::simd::active_isa()));
    std::printf("radar: %lld alloc(s) over %d steady-state frame(s)"
                " (worst frame %lld; settled after %d batch(es),"
                " %lld stray warm-up alloc(s))\n",
                static_cast<long long>(radar.allocs), frames,
                static_cast<long long>(radar.max_frame_allocs), batches,
                static_cast<long long>(stray));
    std::printf("pose:  %lld alloc(s) over %d steady-state forward(s)"
                " (worst %lld; settled after %d batch(es), %lld stray"
                " warm-up alloc(s))\n",
                static_cast<long long>(pose.allocs), frames,
                static_cast<long long>(pose.max_frame_allocs), pose_batches,
                static_cast<long long>(pose_stray));
    std::printf("%s\n", pass ? "PASS"
                              : "FAIL: steady-state radar frames and pose"
                                " forwards must not allocate");
  }
  return pass ? 0 : 1;
}
