#include "top/top_core.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <utility>

namespace mmhand::top {

namespace {

using mmhand::json::Value;

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, std::min(static_cast<std::size_t>(n),
                                      sizeof(buf) - 1));
}

/// 8-level unicode sparkline of `values` normalized to their own max.
std::string sparkline(const std::vector<double>& values) {
  static const char* kBlocks[8] = {"▁", "▂", "▃", "▄",
                                   "▅", "▆", "▇", "█"};
  double hi = 0.0;
  for (const double v : values) hi = std::max(hi, v);
  std::string out;
  for (const double v : values) {
    if (hi <= 0.0) {
      out += kBlocks[0];
      continue;
    }
    out += kBlocks[std::min(7, static_cast<int>(v / hi * 7.999))];
  }
  return out;
}

/// Nearest-rank percentile of an already-sorted sample.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

struct StageWindow {
  std::vector<double> p95_series;  ///< one point per interval (0 = idle)
  double count = 0.0, mean_us = 0.0, p50_us = 0.0, p95_us = 0.0,
         p99_us = 0.0, max_us = 0.0;  ///< newest active interval
  double total_count = 0.0;           ///< events across the window
};

}  // namespace

ParsedStream parse_jsonl(const std::string& text) {
  ParsedStream out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    const bool terminated = nl != std::string::npos;
    if (!terminated) nl = text.size();
    if (nl > pos) {
      const std::string line = text.substr(pos, nl - pos);
      std::string err;
      Value v = Value::parse(line, &err);
      if (err.empty() && v.is_object()) {
        out.records.push_back(std::move(v));
      } else if (!terminated) {
        out.torn_tail = true;
      } else {
        ++out.bad_lines;
      }
    }
    pos = nl + 1;
  }
  return out;
}

std::string render_intervals(const ParsedStream& stream,
                             const std::string& source, std::size_t last) {
  std::vector<const Value*> records;
  for (const Value& v : stream.records)
    if (v.string_or("kind", "") == "telemetry") records.push_back(&v);
  if (records.empty()) return {};

  std::string out;
  const std::size_t begin = records.size() > last ? records.size() - last : 0;
  const std::vector<const Value*> window(
      records.begin() + static_cast<std::ptrdiff_t>(begin), records.end());
  const Value& newest = *window.back();
  double window_ms = 0.0;
  for (const Value* r : window) window_ms += r->number_or("dt_ms", 0.0);

  appendf(out,
          "%s — interval %zu..%zu of %zu, window %.1f s, "
          "breach_total %lld\n",
          source.c_str(), begin + 1, records.size(), records.size(),
          window_ms / 1e3,
          static_cast<long long>(newest.number_or("breach_total", 0)));
  if (stream.bad_lines > 0)
    appendf(out, "warning: %zu unparseable interior line%s skipped\n",
            stream.bad_lines, stream.bad_lines == 1 ? "" : "s");
  out += "\n";

  // Stage table with a p95 sparkline across the window.
  std::map<std::string, StageWindow> stages;
  for (std::size_t i = 0; i < window.size(); ++i) {
    const Value* st = window[i]->find("stages");
    if (st == nullptr || !st->is_object()) continue;
    for (const auto& [name, h] : st->as_object()) {
      StageWindow& w = stages[name];
      w.p95_series.resize(window.size(), 0.0);
      w.p95_series[i] = h.number_or("p95_us", 0.0);
      w.count = h.number_or("count", 0.0);
      w.mean_us = h.number_or("mean_us", 0.0);
      w.p50_us = h.number_or("p50_us", 0.0);
      w.p95_us = h.number_or("p95_us", 0.0);
      w.p99_us = h.number_or("p99_us", 0.0);
      w.max_us = h.number_or("max_us", 0.0);
      w.total_count += h.number_or("count", 0.0);
    }
  }
  if (!stages.empty()) {
    appendf(out, "%-28s %8s %9s %9s %9s %9s  %s\n", "stage", "ev/s",
            "mean us", "p50 us", "p95 us", "p99 us", "p95 trend");
    for (auto& [name, w] : stages) {
      w.p95_series.resize(window.size(), 0.0);
      const double rate =
          window_ms > 0.0 ? w.total_count / (window_ms / 1e3) : 0.0;
      appendf(out, "%-28s %8.1f %9.1f %9.1f %9.1f %9.1f  %s\n",
              name.c_str(), rate, w.mean_us, w.p50_us, w.p95_us, w.p99_us,
              sparkline(w.p95_series).c_str());
    }
    out += "\n";
  }

  // Counter rates over the window (delta sums / wall time).
  std::map<std::string, std::pair<double, double>> counters;  // total, delta
  for (const Value* r : window) {
    const Value* cs = r->find("counters");
    if (cs == nullptr || !cs->is_object()) continue;
    for (const auto& [name, c] : cs->as_object()) {
      counters[name].first = c.number_or("total", 0.0);
      counters[name].second += c.number_or("delta", 0.0);
    }
  }
  if (!counters.empty()) {
    appendf(out, "%-28s %12s %10s\n", "counter", "total", "per s");
    for (const auto& [name, tc] : counters)
      appendf(out, "%-28s %12.0f %10.1f\n", name.c_str(), tc.first,
              window_ms > 0.0 ? tc.second / (window_ms / 1e3) : 0.0);
    out += "\n";
  }

  // Fault injections, when the fault harness is live.
  if (const Value* faults = newest.find("faults");
      faults != nullptr && faults->is_object() &&
      !faults->as_object().empty()) {
    appendf(out, "%-28s %12s\n", "fault kind", "injected");
    for (const auto& [name, fv] : faults->as_object())
      appendf(out, "%-28s %12.0f\n", name.c_str(),
              fv.number_or("total", 0.0));
    out += "\n";
  }

  // Budget breaches anywhere in the window.
  std::size_t breaches = 0;
  for (const Value* r : window) {
    const Value* bs = r->find("breaches");
    if (bs == nullptr || !bs->is_array()) continue;
    for (const Value& b : bs->as_array()) {
      if (breaches == 0)
        appendf(out, "%-28s %-10s %12s %12s\n", "budget breach", "field",
                "limit us", "actual us");
      ++breaches;
      appendf(out, "%-28s %-10s %12.1f %12.1f\n",
              b.string_or("stage", "?").c_str(),
              b.string_or("field", "?").c_str(), b.number_or("limit", 0.0),
              b.number_or("actual", 0.0));
    }
  }
  if (breaches == 0) out += "no budget breaches in window\n";
  return out;
}

std::string render_serve(const ParsedStream& stream,
                         const std::string& source, std::size_t last) {
  std::vector<const Value*> records;
  for (const Value& v : stream.records)
    if (v.string_or("kind", "") == "telemetry") records.push_back(&v);
  if (records.empty()) return {};

  const std::size_t begin = records.size() > last ? records.size() - last : 0;
  const std::vector<const Value*> window(
      records.begin() + static_cast<std::ptrdiff_t>(begin), records.end());
  const Value& newest = *window.back();
  double window_ms = 0.0;
  for (const Value* r : window) window_ms += r->number_or("dt_ms", 0.0);

  const auto is_serve = [](const std::string& name) {
    return name.rfind("serve/", 0) == 0;
  };

  // Stage windows restricted to the serving plane.
  std::map<std::string, StageWindow> stages;
  for (std::size_t i = 0; i < window.size(); ++i) {
    const Value* st = window[i]->find("stages");
    if (st == nullptr || !st->is_object()) continue;
    for (const auto& [name, h] : st->as_object()) {
      if (!is_serve(name)) continue;
      StageWindow& w = stages[name];
      w.p95_series.resize(window.size(), 0.0);
      w.p95_series[i] = h.number_or("p95_us", 0.0);
      w.count = h.number_or("count", 0.0);
      w.mean_us = h.number_or("mean_us", 0.0);
      w.p50_us = h.number_or("p50_us", 0.0);
      w.p95_us = h.number_or("p95_us", 0.0);
      w.p99_us = h.number_or("p99_us", 0.0);
      w.total_count += h.number_or("count", 0.0);
    }
  }

  std::map<std::string, std::pair<double, double>> counters;  // total, delta
  for (const Value* r : window) {
    const Value* cs = r->find("counters");
    if (cs == nullptr || !cs->is_object()) continue;
    for (const auto& [name, c] : cs->as_object()) {
      if (!is_serve(name)) continue;
      counters[name].first = c.number_or("total", 0.0);
      counters[name].second += c.number_or("delta", 0.0);
    }
  }

  std::map<std::string, double> gauges;
  if (const Value* gs = newest.find("gauges");
      gs != nullptr && gs->is_object())
    for (const auto& [name, gv] : gs->as_object())
      if (is_serve(name) && gv.is_number()) gauges[name] = gv.as_number();

  if (stages.empty() && counters.empty() && gauges.empty()) return {};

  std::string out;
  appendf(out, "%s — serving plane, interval %zu..%zu of %zu, "
               "window %.1f s\n",
          source.c_str(), begin + 1, records.size(), records.size(),
          window_ms / 1e3);
  if (stream.bad_lines > 0)
    appendf(out, "warning: %zu unparseable interior line%s skipped\n",
            stream.bad_lines, stream.bad_lines == 1 ? "" : "s");
  out += "\n";

  if (!gauges.empty()) {
    static const char* kTierNames[] = {"full", "no_mesh", "pose_only"};
    appendf(out, "%-28s %12s\n", "gauge", "now");
    for (const auto& [name, v] : gauges) {
      if (name == "serve/tier") {
        const int t = static_cast<int>(v);
        appendf(out, "%-28s %12s\n", name.c_str(),
                t >= 0 && t < 3 ? kTierNames[t] : "?");
      } else {
        appendf(out, "%-28s %12.0f\n", name.c_str(), v);
      }
    }
    out += "\n";
  }

  if (!counters.empty()) {
    appendf(out, "%-28s %12s %10s\n", "counter", "total", "per s");
    for (const auto& [name, tc] : counters)
      appendf(out, "%-28s %12.0f %10.1f\n", name.c_str(), tc.first,
              window_ms > 0.0 ? tc.second / (window_ms / 1e3) : 0.0);
    out += "\n";
  }

  if (!stages.empty()) {
    appendf(out, "%-28s %8s %9s %9s %9s %9s  %s\n", "latency", "ev/s",
            "mean us", "p50 us", "p95 us", "p99 us", "p95 trend");
    for (auto& [name, w] : stages) {
      w.p95_series.resize(window.size(), 0.0);
      const double rate =
          window_ms > 0.0 ? w.total_count / (window_ms / 1e3) : 0.0;
      appendf(out, "%-28s %8.1f %9.1f %9.1f %9.1f %9.1f  %s\n",
              name.c_str(), rate, w.mean_us, w.p50_us, w.p95_us, w.p99_us,
              sparkline(w.p95_series).c_str());
    }
    out += "\n";
  }
  return out;
}

std::string render_tail(const ParsedStream& stream,
                        const std::string& source) {
  // One frame record = {frame_id, label, total_us, stages:{name:{us}}}.
  struct Frame {
    double total_us = 0.0;
    const Value* stages = nullptr;
  };
  std::map<std::string, std::vector<Frame>> by_label;
  for (const Value& v : stream.records) {
    if (v.string_or("kind", "") != "frame") continue;
    by_label[v.string_or("label", "?")].push_back(
        {v.number_or("total_us", 0.0), v.find("stages")});
  }
  if (by_label.empty()) return {};

  std::string out;
  std::size_t total_frames = 0;
  for (const auto& [label, frames] : by_label) total_frames += frames.size();
  appendf(out, "%s — tail attribution over %zu frame record%s\n",
          source.c_str(), total_frames, total_frames == 1 ? "" : "s");
  if (stream.bad_lines > 0)
    appendf(out, "warning: %zu unparseable interior line%s skipped\n",
            stream.bad_lines, stream.bad_lines == 1 ? "" : "s");
  out += "\n";

  for (const auto& [label, frames] : by_label) {
    std::vector<double> totals;
    totals.reserve(frames.size());
    for (const Frame& f : frames) totals.push_back(f.total_us);
    std::sort(totals.begin(), totals.end());
    const double p50 = percentile(totals, 0.50);
    const double p95 = percentile(totals, 0.95);
    const double p99 = percentile(totals, 0.99);
    appendf(out,
            "%-28s %6zu frames  p50 %9.1f us  p95 %9.1f us  "
            "p99 %9.1f us\n",
            label.c_str(), frames.size(), p50, p95, p99);

    // Attribute the slow tail: for every frame at or beyond p95, which
    // stage took the largest share of its wall time?
    struct Attribution {
      std::size_t frames = 0;
      double share_sum = 0.0;  ///< dominant stage's fraction of the frame
    };
    std::map<std::string, Attribution> dominant;
    std::size_t tail_frames = 0;
    for (const Frame& f : frames) {
      if (f.total_us < p95 || f.stages == nullptr || !f.stages->is_object())
        continue;
      ++tail_frames;
      std::string worst;
      double worst_us = -1.0;
      for (const auto& [name, st] : f.stages->as_object()) {
        const double us = st.number_or("us", 0.0);
        if (us > worst_us) {
          worst_us = us;
          worst = name;
        }
      }
      if (worst.empty()) continue;
      Attribution& a = dominant[worst];
      ++a.frames;
      a.share_sum += f.total_us > 0.0 ? worst_us / f.total_us : 0.0;
    }
    // Most-frequent dominant stage first.
    std::vector<std::pair<std::string, Attribution>> ranked(
        dominant.begin(), dominant.end());
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      return a.second.frames != b.second.frames
                 ? a.second.frames > b.second.frames
                 : a.first < b.first;
    });
    for (const auto& [stage, a] : ranked)
      appendf(out,
              "  p95+ dominated by %-24s %4zu/%zu frames "
              "(avg %2.0f%% of frame)\n",
              stage.c_str(), a.frames, tail_frames,
              100.0 * a.share_sum / static_cast<double>(a.frames));
    out += "\n";
  }
  return out;
}

}  // namespace mmhand::top
