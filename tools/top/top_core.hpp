#pragma once

// Parsing and rendering core of mmhand_top, split out as a static
// library so tests can drive it on synthetic streams — torn tails from
// killed writers, interior corruption, tail-latency attribution —
// without spawning the CLI.
//
// The JSONL input is whatever the telemetry sampler streams via
// MMHAND_TELEMETRY's out= path; since a closing FrameScope appends
// per-frame records (kind "frame") to the same stream, the parser and
// the views here cover both record kinds.

#include <cstddef>
#include <string>
#include <vector>

#include "mmhand/common/json.hpp"

namespace mmhand::top {

struct ParsedStream {
  std::vector<json::Value> records;  ///< parsed JSONL objects, in order
  std::size_t bad_lines = 0;  ///< interior lines that failed to parse
  bool torn_tail = false;     ///< unterminated final line failed to parse
};

/// Splits a JSONL capture into parsed records.  A *final* line with no
/// trailing newline that fails to parse is the benign signature of a
/// writer killed mid-record: it sets `torn_tail` and is skipped.  An
/// unparseable line anywhere else (or a newline-terminated bad tail)
/// indicates real corruption and counts in `bad_lines`.
ParsedStream parse_jsonl(const std::string& text);

/// Renders the newest `last` sampler intervals (the classic top view):
/// per-stage rates and windowed percentiles with a p95 sparkline,
/// counter rates, fault activity, budget breaches.  `source` labels the
/// header.  Returns "" when the stream has no telemetry intervals.
std::string render_intervals(const ParsedStream& stream,
                             const std::string& source, std::size_t last);

/// Renders the serving-plane view: serve/* counters with window rates,
/// the serve gauges (live sessions, queue depth, inflight, degradation
/// tier by name), and the serve/* latency histograms — the cross-session
/// e2e plus the bounded per-session slots — with a p95 sparkline.
/// Returns "" when the window carries no serve/* records at all (the
/// stream came from a non-serving run).
std::string render_serve(const ParsedStream& stream,
                         const std::string& source, std::size_t last);

/// Renders tail-latency attribution over the per-frame records
/// (kind "frame"): per label, total-latency p50/p95/p99 plus which
/// stage dominates the frames at or beyond p95 — the "why are the slow
/// frames slow" view.  Returns "" when the stream has no frame records.
std::string render_tail(const ParsedStream& stream,
                        const std::string& source);

}  // namespace mmhand::top
