#pragma once

// Hot-path purity analyzer (`mmhand_lint --purity`).
//
// A token-level call-graph extractor over src/mmhand/**: it indexes
// every function definition (and function-like macro), finds the roots
// annotated MMHAND_REALTIME (common/realtime.hpp), walks the transitive
// closure of their call sites, and reports any reachable body that
// touches a deny class — heap allocation, locks, throws, stream I/O, or
// blocking syscalls — with the full call chain from the root.
//
// Deliberately libclang-free: a symbol table plus terminal-name
// resolution over stripped sources.  Resolution is over-approximate
// (a call `x.run()` reaches *every* definition named `run`), which is
// the sound direction for a safety gate — false edges only widen the
// audited surface, never hide a violation.  Two real blind spots
// remain, documented in DESIGN.md §12: allocation hidden behind value
// construction (`Tensor y({n, m})`) and calls through function
// pointers.  scripts/check_purity.sh closes both at runtime with the
// operator-new interposer (obs/alloc).
//
// Audited entries (scripts/purity_allowlist.json) mark functions whose
// bodies were reviewed by hand — grow-on-demand scratch, lock-free
// caches with a cold build path, cold failure paths.  An audited
// function is opaque: its body is neither scanned nor traversed.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace mmhand::lint {

struct PurityConfig {
  struct Audited {
    /// Qualified-name suffix, e.g. "radar::frame_workspace" or a macro
    /// name like "MMHAND_CHECK".  Matches any indexed function whose
    /// qualified name ends with this path.
    std::string function;
    /// Why this body is exempt — rendered in reports, required.
    std::string reason;
  };
  std::vector<Audited> audited;
};

/// One deny-class token found in a reachable function body.
struct PurityHit {
  std::string root;      ///< qualified name of the MMHAND_REALTIME root
  std::vector<std::string> chain;  ///< root -> ... -> offending function
  std::string function;  ///< qualified name of the offending function
  std::string file;      ///< repo-relative path of its definition
  int line = 0;          ///< 1-based line of the token
  std::string category;  ///< heap-alloc | lock | throw | io | syscall
  std::string token;     ///< the offending identifier
};

/// Closure summary for one annotated root.
struct PurityRoot {
  std::string name;  ///< qualified name
  std::string file;
  int line = 0;               ///< definition line
  std::size_t reachable = 0;  ///< functions in the closure (incl. root)
  std::size_t audited = 0;    ///< closure members pruned as audited
  std::vector<PurityHit> hits;
};

struct PurityReport {
  std::vector<PurityRoot> roots;
  std::size_t functions_indexed = 0;
  std::size_t files_scanned = 0;
  /// Call names that resolved to no definition (std::, libc, ...).
  /// Not findings — kept for --json consumers sizing the blind spot.
  std::size_t unresolved_calls = 0;
};

/// The audited set shipped in scripts/purity_allowlist.json, compiled
/// in as a fallback so the binary still runs without the file.
PurityConfig default_purity_config();

/// Merges scripts/purity_allowlist.json ({"audited": [{"function",
/// "reason"}, ...]}) into `cfg`.  Returns false and sets `*error` on
/// malformed input.
bool parse_purity_allowlist_json(const std::string& text, PurityConfig* cfg,
                                 std::string* error);

/// Runs the analysis over (path, content) pairs — the caller walks the
/// tree (or supplies fixtures in tests).
PurityReport analyze_purity(
    const std::vector<std::pair<std::string, std::string>>& files,
    const PurityConfig& cfg);

/// True when no root reaches any deny token.
bool purity_clean(const PurityReport& report);

/// Serializes the report for tooling (mmhand_report): an object with
/// "tool", per-root closures, and the hit list with chains.
std::string purity_to_json(const PurityReport& report);

}  // namespace mmhand::lint
