#include "lint/lint_core.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>

#include "mmhand/common/json.hpp"

namespace mmhand::lint {

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::char_traits<char>::length(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

bool contains(const std::vector<std::string>& list, const std::string& s) {
  return std::find(list.begin(), list.end(), s) != list.end();
}

int line_of(const std::string& text, std::size_t pos) {
  return 1 + static_cast<int>(std::count(text.begin(),
                                         text.begin() +
                                             static_cast<std::ptrdiff_t>(pos),
                                         '\n'));
}

/// Offset of the first whole-identifier occurrence of `token` at or
/// after `from`; npos when absent.
std::size_t find_ident(const std::string& text, const std::string& token,
                       std::size_t from) {
  std::size_t pos = from;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(text[pos - 1]);
    const std::size_t after = pos + token.size();
    const bool right_ok = after >= text.size() || !is_ident_char(text[after]);
    if (left_ok && right_ok) return pos;
    pos = after;
  }
  return std::string::npos;
}

/// The rest of the line starting at `pos` (for "does this call mention
/// stdout/stderr" style context checks).
std::string line_tail(const std::string& text, std::size_t pos) {
  const std::size_t nl = text.find('\n', pos);
  return text.substr(pos, nl == std::string::npos ? std::string::npos
                                                  : nl - pos);
}

void add(std::vector<Finding>& out, const std::string& file, int line,
         const char* rule, std::string message) {
  out.push_back(Finding{file, line, rule, std::move(message)});
}

/// Flags every whole-identifier occurrence of `token`.
void flag_all(std::vector<Finding>& out, const std::string& file,
              const std::string& text, const std::string& token,
              const char* rule, const std::string& message) {
  for (std::size_t pos = 0;
       (pos = find_ident(text, token, pos)) != std::string::npos;
       pos += token.size())
    add(out, file, line_of(text, pos), rule, message);
}

void check_getenv(const std::string& path, const std::string& stripped,
                  const Config& cfg, std::vector<Finding>& out) {
  if (contains(cfg.getenv_allow, path)) return;
  flag_all(out, path, stripped, "getenv", "getenv-allowlist",
           "getenv outside the allowlist; read env knobs through"
           " obs/state (or extend scripts/lint_allowlist.json)");
  flag_all(out, path, stripped, "secure_getenv", "getenv-allowlist",
           "secure_getenv outside the allowlist; read env knobs through"
           " obs/state (or extend scripts/lint_allowlist.json)");
}

void check_direct_io(const std::string& path, const std::string& stripped,
                     const Config& cfg, std::vector<Finding>& out) {
  if (starts_with(path, "src/mmhand/obs/")) return;
  if (contains(cfg.io_allow, path)) return;
  const char* rule = "no-direct-io";
  const std::string route = "; route output through obs/log (MMHAND_WARN/"
                            "MMHAND_INFO/MMHAND_DEBUG)";
  // Unconditional console writers.  Identifier matching keeps
  // snprintf/vsnprintf (buffer formatting) out of scope.
  for (const char* token : {"printf", "vprintf", "puts", "putchar"})
    flag_all(out, path, stripped, token, rule,
             std::string(token) + " writes to stdout" + route);
  for (const char* token : {"cout", "cerr", "clog"})
    flag_all(out, path, stripped, token, rule,
             std::string("std::") + token + " in library code" + route);
  // FILE*-targeted writers are fine for data files; only console
  // streams are violations.
  for (const char* token : {"fprintf", "vfprintf", "fputs", "fputc",
                            "fwrite"}) {
    for (std::size_t pos = 0;
         (pos = find_ident(stripped, token, pos)) != std::string::npos;
         pos += std::char_traits<char>::length(token)) {
      const std::string tail = line_tail(stripped, pos);
      if (tail.find("stdout") != std::string::npos ||
          tail.find("stderr") != std::string::npos)
        add(out, path, line_of(stripped, pos), rule,
            std::string(token) + " to stdout/stderr" + route);
    }
  }
}

void check_rng(const std::string& path, const std::string& stripped,
               const Config& cfg, std::vector<Finding>& out) {
  if (contains(cfg.rng_allow, path)) return;
  const char* rule = "no-unseeded-rng";
  const std::string route =
      "; draw from an explicitly seeded mmhand::Rng (common/rng)";
  for (const char* token : {"rand", "srand", "rand_r", "drand48",
                            "random_device"})
    flag_all(out, path, stripped, token, rule,
             std::string(token) + " is not reproducible" + route);
  // Wall-clock seeding: time(nullptr) / time(NULL) feeding an engine.
  for (std::size_t pos = 0;
       (pos = find_ident(stripped, "time", pos)) != std::string::npos;
       pos += 4) {
    std::size_t after = pos + 4;
    while (after < stripped.size() &&
           std::isspace(static_cast<unsigned char>(stripped[after])))
      ++after;
    if (after >= stripped.size() || stripped[after] != '(') continue;
    const std::string tail = line_tail(stripped, after);
    if (tail.find("nullptr") != std::string::npos ||
        tail.find("NULL") != std::string::npos)
      add(out, path, line_of(stripped, pos), rule,
          "time-seeded randomness is not reproducible" + route);
  }
}

void check_header_hygiene(const std::string& path, const std::string& raw,
                          const std::string& stripped,
                          std::vector<Finding>& out) {
  if (raw.find("#pragma once") == std::string::npos)
    add(out, path, 1, "pragma-once", "header is missing #pragma once");
  for (std::size_t pos = 0;
       (pos = find_ident(stripped, "using", pos)) != std::string::npos;
       pos += 5) {
    std::size_t after = pos + 5;
    while (after < stripped.size() &&
           std::isspace(static_cast<unsigned char>(stripped[after])))
      ++after;
    if (find_ident(stripped, "namespace", after) == after)
      add(out, path, line_of(stripped, pos), "no-using-namespace",
          "using-directive in a header leaks into every includer");
  }
}

void check_raw_alloc(const std::string& path, const std::string& stripped,
                     const Config& cfg, std::vector<Finding>& out) {
  const char* rule = "no-raw-alloc";
  if (contains(cfg.raw_alloc_allow, path)) return;
  for (const char* token : {"malloc", "calloc", "realloc"})
    flag_all(out, path, stripped, token, rule,
             std::string(token) + " in library code; use std::vector or"
                                  " std::unique_ptr");
  // `new <type...>[` — a naked array allocation.
  for (std::size_t pos = 0;
       (pos = find_ident(stripped, "new", pos)) != std::string::npos;
       pos += 3) {
    std::size_t i = pos + 3;
    bool saw_type = false;
    while (i < stripped.size()) {
      const char c = stripped[i];
      if (std::isspace(static_cast<unsigned char>(c)) || is_ident_char(c) ||
          c == ':' || c == '<' || c == '>') {
        saw_type = saw_type || is_ident_char(c);
        ++i;
        continue;
      }
      break;
    }
    if (saw_type && i < stripped.size() && stripped[i] == '[')
      add(out, path, line_of(stripped, pos), rule,
          "naked new[] in library code; use std::vector or"
          " std::make_unique");
  }
}

void check_simd_confinement(const std::string& path,
                            const std::string& stripped,
                            std::vector<Finding>& out) {
  if (starts_with(path, "src/mmhand/simd/")) return;
  const char* rule = "simd-confinement";
  const std::string route =
      "; raw SIMD lives under src/mmhand/simd/ — call through the"
      " simd::Kernels dispatch table instead";
  // Intrinsics headers.  Angle-bracket includes survive string stripping.
  for (const char* hdr : {"immintrin.h", "arm_neon.h", "emmintrin.h",
                          "xmmintrin.h"}) {
    const std::size_t len = std::char_traits<char>::length(hdr);
    for (std::size_t pos = 0;
         (pos = stripped.find(hdr, pos)) != std::string::npos; pos += len)
      add(out, path, line_of(stripped, pos), rule,
          std::string("#include of ") + hdr + " outside the simd layer" +
              route);
  }
  // Intrinsic identifiers, matched by prefix (the suffix encodes the
  // element type: _mm256_add_pd, vld1q_f64, ...).
  for (const char* prefix : {"_mm_", "_mm256_", "_mm512_", "vld1q_",
                             "vst1q_"}) {
    const std::size_t len = std::char_traits<char>::length(prefix);
    for (std::size_t pos = 0;
         (pos = stripped.find(prefix, pos)) != std::string::npos;
         pos += len) {
      if (pos > 0 && is_ident_char(stripped[pos - 1])) continue;
      add(out, path, line_of(stripped, pos), rule,
          std::string(prefix) + "* intrinsic outside the simd layer" + route);
    }
  }
}

void check_pmu_confinement(const std::string& path,
                           const std::string& stripped,
                           std::vector<Finding>& out) {
  // pmu.cpp (and its header) are the one sanctioned perf_event TU; a
  // second caller would duplicate the availability/fallback state and
  // could race the sticky "unavailable" latch.
  if (starts_with(path, "src/mmhand/obs/pmu")) return;
  const char* rule = "pmu-confinement";
  const std::string route =
      "; perf_event access lives in src/mmhand/obs/pmu.cpp — attach"
      " hardware counters to spans via MMHAND_PMU instead";
  for (const char* hdr : {"linux/perf_event.h", "sys/syscall.h"}) {
    const std::size_t len = std::char_traits<char>::length(hdr);
    for (std::size_t pos = 0;
         (pos = stripped.find(hdr, pos)) != std::string::npos; pos += len)
      add(out, path, line_of(stripped, pos), rule,
          std::string("#include of ") + hdr + " outside the pmu layer" +
              route);
  }
  for (const char* ident :
       {"perf_event_open", "perf_event_attr", "syscall"}) {
    const std::size_t len = std::char_traits<char>::length(ident);
    for (std::size_t pos = 0;
         (pos = find_ident(stripped, ident, pos)) != std::string::npos;
         pos += len)
      add(out, path, line_of(stripped, pos), rule,
          std::string(ident) + " outside the pmu layer" + route);
  }
}

void check_durable_write(const std::string& path, const std::string& raw,
                         const std::string& stripped, const Config& cfg,
                         std::vector<Finding>& out) {
  if (contains(cfg.durable_write_allow, path)) return;
  const char* rule = "durable-write";
  const std::string route =
      "; write binary artifacts through common/serialize (BinaryWriter)"
      " or common/io_safe so they land atomically with a validated"
      " envelope";
  // A binary ofstream bypasses the envelope and the atomic rename.
  for (std::size_t pos = 0;
       (pos = find_ident(stripped, "ofstream", pos)) != std::string::npos;
       pos += 8) {
    if (line_tail(stripped, pos).find("binary") != std::string::npos)
      add(out, path, line_of(stripped, pos), rule,
          "binary std::ofstream in library code" + route);
  }
  // fopen with a binary *write* mode; the mode literal lives in the RAW
  // text (stripping blanks string contents).  Read modes stay legal.
  for (std::size_t pos = 0;
       (pos = find_ident(stripped, "fopen", pos)) != std::string::npos;
       pos += 5) {
    const std::string tail = line_tail(raw, pos);
    for (const char* mode : {"\"wb\"", "\"w+b\"", "\"wb+\"", "\"ab\"",
                             "\"a+b\"", "\"ab+\""}) {
      if (tail.find(mode) != std::string::npos) {
        add(out, path, line_of(stripped, pos), rule,
            std::string("fopen(..., ") + mode +
                ") writes a binary file directly" + route);
        break;
      }
    }
  }
}

void check_env_docs(const std::string& path, const std::string& raw,
                    const Config& cfg, std::vector<Finding>& out) {
  // Scans the RAW text: the literals of interest live inside quotes.
  const std::string needle = "\"MMHAND_";
  for (std::size_t pos = 0; (pos = raw.find(needle, pos)) != std::string::npos;
       ++pos) {
    std::size_t start = pos + 1;  // past the opening quote
    std::size_t end = start;
    while (end < raw.size() &&
           (std::isupper(static_cast<unsigned char>(raw[end])) != 0 ||
            std::isdigit(static_cast<unsigned char>(raw[end])) != 0 ||
            raw[end] == '_'))
      ++end;
    // Require a closing quote right after the name and at least one
    // character beyond the MMHAND_ prefix, so partial prefixes (string
    // concatenation, this very scanner) don't count as env-var uses.
    if (end >= raw.size() || raw[end] != '"') continue;
    const std::string name = raw.substr(start, end - start);
    if (name.size() <= needle.size() - 1) continue;
    if (!contains(cfg.documented_env, name))
      add(out, path, line_of(raw, pos), "env-var-docs",
          name + " is not documented in the README environment-variable"
                 " table");
  }
}

}  // namespace

Config default_config() {
  Config cfg;
  cfg.getenv_allow = {
      "src/mmhand/obs/state.cpp",    "src/mmhand/common/parallel.cpp",
      "src/mmhand/obs/log.cpp",      "src/mmhand/obs/numeric.cpp",
      "src/mmhand/eval/model_cache.cpp", "src/mmhand/obs/pmu.cpp",
  };
  cfg.io_allow = {
      "src/mmhand/eval/table_printer.cpp",
      "src/mmhand/eval/csv_export.cpp",
  };
  cfg.rng_allow = {
      "src/mmhand/common/rng.hpp",
      "src/mmhand/common/rng.cpp",
  };
  cfg.durable_write_allow = {
      "src/mmhand/common/io_safe.cpp",
  };
  cfg.raw_alloc_allow = {
      "src/mmhand/obs/alloc.cpp",
  };
  return cfg;
}

bool parse_allowlist_json(const std::string& text, Config* cfg,
                          std::string* error) {
  std::string parse_error;
  const json::Value root = json::Value::parse(text, &parse_error);
  if (!parse_error.empty()) {
    if (error != nullptr) *error = "allowlist: " + parse_error;
    return false;
  }
  if (!root.is_object()) {
    if (error != nullptr) *error = "allowlist: top level must be an object";
    return false;
  }
  const auto load = [&](const char* key, std::vector<std::string>* dst,
                        std::string* err) {
    const json::Value* v = root.find(key);
    if (v == nullptr) return true;  // key optional; keep defaults
    if (!v->is_array()) {
      *err = std::string("allowlist: \"") + key + "\" must be an array";
      return false;
    }
    dst->clear();
    for (const json::Value& item : v->as_array()) {
      if (!item.is_string()) {
        *err = std::string("allowlist: \"") + key +
               "\" entries must be strings";
        return false;
      }
      dst->push_back(item.as_string());
    }
    return true;
  };
  std::string err;
  if (!load("getenv", &cfg->getenv_allow, &err) ||
      !load("direct_io", &cfg->io_allow, &err) ||
      !load("raw_rng", &cfg->rng_allow, &err) ||
      !load("durable_write", &cfg->durable_write_allow, &err) ||
      !load("raw_alloc", &cfg->raw_alloc_allow, &err)) {
    if (error != nullptr) *error = err;
    return false;
  }
  return true;
}

namespace {

/// True when the `"` at `i` opens a raw string literal: immediately
/// preceded by `R` with an optional `u8`/`u`/`U`/`L` encoding prefix,
/// and that prefix is not the tail of a longer identifier
/// (`FooR"..."` is not a raw string).
bool is_raw_string_quote(const std::string& src, std::size_t i) {
  if (i == 0 || src[i - 1] != 'R') return false;
  std::size_t p = i - 1;  // index of 'R'
  if (p >= 2 && src[p - 2] == 'u' && src[p - 1] == '8') {
    p -= 2;
  } else if (p >= 1 &&
             (src[p - 1] == 'u' || src[p - 1] == 'U' || src[p - 1] == 'L')) {
    p -= 1;
  }
  return p == 0 || !is_ident_char(src[p - 1]);
}

}  // namespace

std::string strip_comments_and_strings(const std::string& src) {
  std::string out = src;
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  };
  State state = State::kCode;
  std::string raw_close;  // ")delim\"" of the open raw string
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"' && is_raw_string_quote(src, i)) {
          // R"delim( ... )delim": no escapes inside; the literal ends
          // only at the matching close sequence.
          std::size_t open = src.find('(', i + 1);
          if (open == std::string::npos) break;  // ill-formed; give up
          raw_close = ")" + src.substr(i + 1, open - i - 1) + "\"";
          for (std::size_t j = i + 1; j <= open; ++j)
            if (src[j] != '\n') out[j] = ' ';
          i = open;
          state = State::kRawString;
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kRawString:
        if (c == ')' && src.compare(i, raw_close.size(), raw_close) == 0) {
          // Blank the close delimiter too, leaving only the final quote
          // so downstream scans still see a string ended here.
          for (std::size_t j = i; j + 1 < i + raw_close.size(); ++j)
            if (src[j] != '\n') out[j] = ' ';
          i += raw_close.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kLineComment:
        if (c == '\\' && next == '\n') {
          // Backslash-newline splices the next line into this comment
          // ([lex.phases]); the comment does not end at this newline.
          out[i] = ' ';
          ++i;  // keep the newline char, stay in the comment
        } else if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        const char close = state == State::kString ? '"' : '\'';
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == close) {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

std::vector<Finding> check_file(const std::string& path,
                                const std::string& content,
                                const Config& cfg) {
  std::vector<Finding> out;
  const bool is_header = ends_with(path, ".hpp") || ends_with(path, ".h");
  const bool in_library = starts_with(path, "src/mmhand/");
  const bool in_tools = starts_with(path, "tools/");
  const std::string stripped = strip_comments_and_strings(content);

  if (in_library) {
    check_getenv(path, stripped, cfg, out);
    check_direct_io(path, stripped, cfg, out);
    check_rng(path, stripped, cfg, out);
    check_raw_alloc(path, stripped, cfg, out);
    check_simd_confinement(path, stripped, out);
    check_pmu_confinement(path, stripped, out);
    check_durable_write(path, content, stripped, cfg, out);
  }
  if (is_header) check_header_hygiene(path, content, stripped, out);
  // Env-literal documentation applies to library and tool code; tests
  // and benches may mention made-up names in fixtures.
  if (in_library || in_tools) check_env_docs(path, content, cfg, out);

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return a.line != b.line ? a.line < b.line : a.rule < b.rule;
  });
  return out;
}

std::vector<std::string> extract_documented_env(const std::string& readme) {
  std::vector<std::string> names;
  const std::string prefix = "MMHAND_";
  for (std::size_t pos = 0;
       (pos = readme.find(prefix, pos)) != std::string::npos;) {
    std::size_t end = pos + prefix.size();
    while (end < readme.size() &&
           (std::isupper(static_cast<unsigned char>(readme[end])) != 0 ||
            std::isdigit(static_cast<unsigned char>(readme[end])) != 0 ||
            readme[end] == '_'))
      ++end;
    if (end > pos + prefix.size()) {
      const std::string name = readme.substr(pos, end - pos);
      if (!contains(names, name)) names.push_back(name);
    }
    pos = end;
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::string findings_to_json(const std::vector<Finding>& findings,
                             std::size_t files_scanned) {
  const auto escape = [](const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        out.push_back('\\');
        out.push_back(c);
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out.push_back(c);
      }
    }
    return out;
  };
  std::map<std::string, int> counts;
  for (const Finding& f : findings) ++counts[f.rule];
  std::ostringstream os;
  os << "{\n  \"tool\": \"mmhand_lint\",\n  \"files_scanned\": "
     << files_scanned << ",\n  \"counts\": {";
  bool first = true;
  for (const auto& [rule, n] : counts) {
    os << (first ? "" : ", ") << "\"" << escape(rule) << "\": " << n;
    first = false;
  }
  os << "},\n  \"findings\": [";
  first = true;
  for (const Finding& f : findings) {
    os << (first ? "\n" : ",\n")
       << "    {\"file\": \"" << escape(f.file) << "\", \"line\": " << f.line
       << ", \"rule\": \"" << escape(f.rule) << "\", \"message\": \""
       << escape(f.message) << "\"}";
    first = false;
  }
  os << (findings.empty() ? "" : "\n  ") << "]\n}\n";
  return os.str();
}

}  // namespace mmhand::lint
