#pragma once

// mmhand_lint rule engine.
//
// Enforces the repo-specific invariants the last few PRs established by
// convention: every env knob is read through obs/state (or one of the
// few allowlisted readers), all console output goes through obs/log,
// all randomness flows from common/rng, raw SIMD stays under
// src/mmhand/simd, perf_event access stays under src/mmhand/obs/pmu,
// headers are self-contained and guard-free, and every MMHAND_* env
// literal is documented in README.
// Generic tools (clang-tidy, -W flags) cannot know these rules; this
// engine does.
//
// The checks run on file *contents* passed in as strings, so tests can
// exercise each rule on small fixtures without touching the tree.  The
// CLI driver (tools/mmhand_lint.cpp) handles walking, allowlist
// loading, and README parsing.

#include <cstddef>
#include <string>
#include <vector>

namespace mmhand::lint {

struct Finding {
  std::string file;     ///< repo-relative path, forward slashes
  int line = 0;         ///< 1-based
  std::string rule;     ///< stable rule id, e.g. "no-direct-io"
  std::string message;
};

/// Allowlists and repo facts the rules consult.  Paths are
/// repo-relative with forward slashes, exactly as findings report them.
struct Config {
  /// Files permitted to call getenv (rule getenv-allowlist).
  std::vector<std::string> getenv_allow;
  /// Files under src/mmhand/ (beyond obs/) permitted direct console
  /// output (rule no-direct-io) — the sanctioned eval printers.
  std::vector<std::string> io_allow;
  /// Files permitted raw RNG sources (rule no-unseeded-rng).
  std::vector<std::string> rng_allow;
  /// Files permitted to open binary write streams directly (rule
  /// durable-write) — the durable-IO layer itself.
  std::vector<std::string> durable_write_allow;
  /// Files permitted raw malloc/free (rule no-raw-alloc) — the
  /// operator-new interposer, which must not allocate through itself.
  std::vector<std::string> raw_alloc_allow;
  /// MMHAND_* env-var names documented in the README table
  /// (rule env-var-docs).
  std::vector<std::string> documented_env;
};

/// The allowlist shipped in scripts/lint_allowlist.json, compiled in as
/// a fallback so the binary still runs without the file.
Config default_config();

/// Merges scripts/lint_allowlist.json (keys "getenv", "direct_io",
/// "raw_rng", "durable_write", "raw_alloc": arrays of paths) into
/// `cfg`.  Returns
/// false and sets `*error` on malformed input.
bool parse_allowlist_json(const std::string& text, Config* cfg,
                          std::string* error);

/// Replaces comments and string/char literal contents with spaces,
/// preserving line structure, so token scans don't fire inside them.
std::string strip_comments_and_strings(const std::string& src);

/// Runs every applicable rule on one file.  `path` decides which rules
/// apply (src/mmhand/ vs tests/ vs tools/, header vs source).
std::vector<Finding> check_file(const std::string& path,
                                const std::string& content,
                                const Config& cfg);

/// Extracts the MMHAND_* names mentioned anywhere in the README text —
/// the documented set rule env-var-docs checks literals against.
std::vector<std::string> extract_documented_env(const std::string& readme);

/// Serializes findings for tooling (mmhand_report): an object with
/// "tool", "files_scanned", per-rule "counts", and a "findings" array.
std::string findings_to_json(const std::vector<Finding>& findings,
                             std::size_t files_scanned);

}  // namespace mmhand::lint
