#include "lint/purity_core.hpp"

#include <algorithm>
#include <cctype>
#include <deque>
#include <map>
#include <set>
#include <sstream>

#include "lint/lint_core.hpp"
#include "mmhand/common/json.hpp"

namespace mmhand::lint {

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool space_char(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

int line_at(const std::string& text, std::size_t pos) {
  return 1 + static_cast<int>(std::count(text.begin(),
                                         text.begin() +
                                             static_cast<std::ptrdiff_t>(pos),
                                         '\n'));
}

std::size_t find_whole(const std::string& text, const std::string& token,
                       std::size_t from) {
  std::size_t pos = from;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !ident_char(text[pos - 1]);
    const std::size_t after = pos + token.size();
    const bool right_ok = after >= text.size() || !ident_char(text[after]);
    if (left_ok && right_ok) return pos;
    pos = after;
  }
  return std::string::npos;
}

bool has_whole(const std::string& text, const std::string& token) {
  return find_whole(text, token, 0) != std::string::npos;
}

// ---- deny classes ---------------------------------------------------

struct DenyClass {
  const char* category;
  std::vector<const char*> tokens;
};

const std::vector<DenyClass>& deny_classes() {
  // Whole-identifier tokens; snprintf/vsnprintf (buffer formatting, no
  // I/O) are deliberately absent from the io class.
  static const std::vector<DenyClass> classes = {
      {"heap-alloc",
       {"new", "delete", "malloc", "calloc", "realloc", "free", "push_back",
        "emplace_back", "emplace", "resize", "reserve", "insert", "append",
        "make_unique", "make_shared", "to_string", "stringstream",
        "ostringstream"}},
      {"lock",
       {"mutex", "lock_guard", "unique_lock", "scoped_lock", "shared_lock",
        "shared_mutex", "condition_variable", "condition_variable_any",
        "once_flag", "call_once", "timed_mutex", "recursive_mutex"}},
      {"throw", {"throw"}},
      {"io",
       {"printf", "vprintf", "fprintf", "vfprintf", "puts", "fputs",
        "putchar", "fputc", "fwrite", "fread", "fopen", "fclose", "fflush",
        "cout", "cerr", "clog", "ofstream", "ifstream", "fstream",
        "getline", "system"}},
      {"syscall",
       {"getenv", "setenv", "mmap", "munmap", "msync", "fsync", "fdatasync",
        "usleep", "nanosleep", "sleep_for", "sleep_until", "sleep", "poll",
        "select", "epoll_wait", "ioctl", "sched_yield", "open", "read",
        "write"}},
  };
  return classes;
}

// ---- preprocessor pass ----------------------------------------------

struct MacroDef {
  std::string name;
  std::string body;  ///< replacement text (continuations preserved)
  int line = 0;
};

/// Extracts function-like `#define NAME(...)` replacements as
/// pseudo-functions and blanks every preprocessor logical line (so
/// `#if`-unbalanced braces cannot derail the scope walk).  Newlines are
/// preserved throughout.
void blank_directives(std::string* text, std::vector<MacroDef>* macros) {
  std::string& s = *text;
  std::size_t i = 0;
  while (i < s.size()) {
    // Find start of line; check first non-space char.
    std::size_t line_start = i;
    std::size_t j = i;
    while (j < s.size() && (s[j] == ' ' || s[j] == '\t')) ++j;
    std::size_t line_end = s.find('\n', i);
    if (line_end == std::string::npos) line_end = s.size();
    if (j >= s.size() || s[j] != '#') {
      i = line_end + 1;
      continue;
    }
    // Extend over backslash continuations.
    std::size_t end = line_end;
    while (end < s.size()) {
      std::size_t k = end;
      while (k > line_start && space_char(s[k - 1]) && s[k - 1] != '\n') --k;
      if (k == line_start || s[k - 1] != '\\') break;
      end = s.find('\n', end + 1);
      if (end == std::string::npos) end = s.size();
    }
    const std::string directive = s.substr(line_start, end - line_start);
    // Function-like macro: "# define NAME(" with no space before '('.
    std::size_t d = directive.find('#');
    std::size_t p = d + 1;
    while (p < directive.size() && space_char(directive[p])) ++p;
    if (directive.compare(p, 6, "define") == 0) {
      p += 6;
      while (p < directive.size() && space_char(directive[p])) ++p;
      std::size_t name_end = p;
      while (name_end < directive.size() && ident_char(directive[name_end]))
        ++name_end;
      if (name_end > p && name_end < directive.size() &&
          directive[name_end] == '(') {
        std::size_t close = directive.find(')', name_end);
        if (close != std::string::npos) {
          MacroDef m;
          m.name = directive.substr(p, name_end - p);
          m.body = directive.substr(close + 1);
          m.line = line_at(s, line_start + p);
          macros->push_back(std::move(m));
        }
      }
    }
    for (std::size_t k = line_start; k < end && k < s.size(); ++k)
      if (s[k] != '\n') s[k] = ' ';
    i = end + 1;
  }
}

// ---- declaration-context classification -----------------------------

struct CtxInfo {
  enum Kind { kOther, kNamespace, kType, kFunction } kind = kOther;
  std::string name;      ///< scope or function name (may contain ::)
  bool realtime = false;  ///< MMHAND_REALTIME present in the context
};

/// Strips leading `template <...>` groups (balancing nested <>), so the
/// `class`/`typename` keywords inside them don't read as type scopes.
std::string strip_template_preamble(std::string ctx) {
  for (;;) {
    std::size_t t = 0;
    while (t < ctx.size() && space_char(ctx[t])) ++t;
    if (ctx.compare(t, 8, "template") != 0 ||
        (t + 8 < ctx.size() && ident_char(ctx[t + 8])))
      return ctx;
    std::size_t lt = ctx.find('<', t);
    if (lt == std::string::npos) return ctx;
    int depth = 0;
    std::size_t k = lt;
    for (; k < ctx.size(); ++k) {
      if (ctx[k] == '<') ++depth;
      if (ctx[k] == '>' && --depth == 0) break;
    }
    if (k >= ctx.size()) return ctx;
    ctx = ctx.substr(k + 1);
  }
}

const std::set<std::string>& non_call_keywords() {
  static const std::set<std::string> kw = {
      "if",       "for",        "while",      "switch",
      "catch",    "return",     "sizeof",     "alignof",
      "alignas",  "decltype",   "noexcept",   "static_assert",
      "defined",  "new",        "delete",     "static_cast",
      "dynamic_cast", "reinterpret_cast",     "const_cast",
      "co_await", "co_return",  "co_yield",   "throw",
      "int",      "char",       "bool",       "float",
      "double",   "long",       "short",      "unsigned",
      "signed",   "void",       "auto",       "typename",
      "typedef",  "using",      "operator",   "assert",
      "__builtin_expect",
  };
  return kw;
}

/// Atomic/metric vocabulary too generic to resolve by terminal name
/// alone: `g_active.load(...)`, `V::load(p)`, `frames.add(1)`, and
/// chrono's `.count()` would otherwise edge into every unrelated
/// `load`/`add`/`count` definition in the tree (Adam::load,
/// EvalAccumulator::add, ConfusionMatrix::count, ...).  Calls with
/// these terminals stay unresolved unless spelled with enough
/// qualification to match a definition exactly — the one place the
/// analyzer under-approximates instead of over; the runtime interposer
/// in scripts/check_purity.sh covers what this drops.
const std::set<std::string>& ambiguous_terminals() {
  static const std::set<std::string> names = {
      "load",      "store",      "exchange",
      "compare_exchange_weak",   "compare_exchange_strong",
      "test_and_set",            "fetch_add",
      "fetch_sub", "fetch_or",   "fetch_and",
      "fetch_xor", "wait",       "notify_one",
      "notify_all", "count",     "add",
  };
  return names;
}

CtxInfo classify_context(const std::string& raw_ctx) {
  CtxInfo info;
  info.realtime = has_whole(raw_ctx, "MMHAND_REALTIME");
  const std::string ctx = strip_template_preamble(raw_ctx);

  // Scan at paren depth 0 for structure: keywords, the first paren
  // group, and any top-level '='.
  int depth = 0;
  std::size_t first_open = std::string::npos, first_close = std::string::npos;
  bool top_level_eq = false;
  std::string first_kw;
  for (std::size_t i = 0; i < ctx.size(); ++i) {
    const char c = ctx[i];
    if (c == '(') {
      if (depth == 0 && first_open == std::string::npos) first_open = i;
      ++depth;
    } else if (c == ')') {
      --depth;
      if (depth == 0 && first_close == std::string::npos &&
          first_open != std::string::npos)
        first_close = i;
    } else if (depth == 0 && c == '=' &&
               first_close == std::string::npos) {
      // '=' before any parameter list: an initializer, not a function
      // ('=' after the list is caught by the qualifier check below).
      // Skip ==, !=, <=, >= comparisons.
      const char prev = i > 0 ? ctx[i - 1] : '\0';
      const char next = i + 1 < ctx.size() ? ctx[i + 1] : '\0';
      if (prev != '=' && prev != '!' && prev != '<' && prev != '>' &&
          next != '=')
        top_level_eq = true;
    } else if (depth == 0 && ident_char(c) && first_kw.empty() &&
               (i == 0 || !ident_char(ctx[i - 1]))) {
      std::size_t e = i;
      while (e < ctx.size() && ident_char(ctx[e])) ++e;
      const std::string word = ctx.substr(i, e - i);
      if (word == "namespace" || word == "class" || word == "struct" ||
          word == "union" || word == "enum")
        first_kw = word;
    }
  }

  if (has_whole(ctx, "namespace") && first_open == std::string::npos) {
    info.kind = CtxInfo::kNamespace;
    // Name = trailing ident path (empty for anonymous namespaces).
    std::size_t e = ctx.size();
    while (e > 0 && space_char(ctx[e - 1])) --e;
    std::size_t b = e;
    while (b > 0 && (ident_char(ctx[b - 1]) || ctx[b - 1] == ':')) --b;
    std::string name = ctx.substr(b, e - b);
    if (name == "namespace" || name == "inline") name.clear();
    info.name = name;
    return info;
  }

  if (!first_kw.empty() && first_kw != "namespace" &&
      first_open == std::string::npos) {
    info.kind = CtxInfo::kType;
    // Name = first ident after the keyword (skipping "class" of
    // `enum class` and attributes).
    std::size_t pos = find_whole(ctx, first_kw, 0) + first_kw.size();
    while (pos < ctx.size()) {
      while (pos < ctx.size() && !ident_char(ctx[pos])) ++pos;
      std::size_t e = pos;
      while (e < ctx.size() && ident_char(ctx[e])) ++e;
      const std::string word = ctx.substr(pos, e - pos);
      if (word.empty()) break;
      if (word != "class" && word != "struct" && word != "final" &&
          word != "alignas") {
        info.name = word;
        break;
      }
      pos = e;
    }
    return info;
  }

  if (first_open == std::string::npos || first_close == std::string::npos ||
      top_level_eq)
    return info;  // kOther

  // Candidate function: ident path immediately before the first group.
  std::size_t e = first_open;
  while (e > 0 && space_char(ctx[e - 1])) --e;
  std::size_t b = e;
  while (b > 0 && (ident_char(ctx[b - 1]) || ctx[b - 1] == ':')) --b;
  std::string name = ctx.substr(b, e - b);
  while (!name.empty() && name.front() == ':') name.erase(name.begin());
  if (name.empty()) return info;
  const std::size_t last_sep = name.rfind("::");
  const std::string terminal =
      last_sep == std::string::npos ? name : name.substr(last_sep + 2);
  if (non_call_keywords().count(terminal) != 0) return info;
  if (raw_ctx.find("operator") != std::string::npos) return info;

  // The remainder after the parameter list must look like function
  // qualifiers; a ':' (ctor initializer) or "->" (trailing return)
  // accepts the rest.
  static const std::set<std::string> quals = {
      "const", "noexcept", "override", "final", "try", "mutable",
      "volatile", "&&"};
  std::size_t i = first_close + 1;
  while (i < ctx.size()) {
    const char c = ctx[i];
    if (space_char(c) || c == '&') {
      ++i;
      continue;
    }
    if (c == ':') break;  // ctor initializer list
    if (c == '-' && i + 1 < ctx.size() && ctx[i + 1] == '>') break;
    if (c == '(') {  // noexcept(...) argument
      int d = 0;
      for (; i < ctx.size(); ++i) {
        if (ctx[i] == '(') ++d;
        if (ctx[i] == ')' && --d == 0) break;
      }
      ++i;
      continue;
    }
    if (!ident_char(c)) return info;
    std::size_t we = i;
    while (we < ctx.size() && ident_char(ctx[we])) ++we;
    if (quals.count(ctx.substr(i, we - i)) == 0) return info;
    i = we;
  }

  info.kind = CtxInfo::kFunction;
  info.name = name;
  return info;
}

// ---- function index -------------------------------------------------

struct FnDef {
  std::string qual;      ///< qualified name, :: separated
  std::string terminal;  ///< last path component
  int file = -1;         ///< index into the input file list
  std::size_t body_begin = 0, body_end = 0;  ///< into the stripped text
  int line = 0;
  bool realtime = false;
  bool is_macro = false;
};

/// Walks one stripped, directive-blanked file and appends its function
/// definitions.
void index_file(int file_idx, const std::string& text,
                std::vector<FnDef>* defs) {
  struct Open {
    CtxInfo::Kind kind;
    std::string name;
  };
  std::vector<Open> stack;
  std::string ctx;
  std::size_t ctx_start = 0;
  bool in_fn = false;
  int fn_depth = 0;
  FnDef cur;

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_fn) {
      if (c == '{') {
        ++fn_depth;
      } else if (c == '}') {
        if (--fn_depth == 0) {
          cur.body_end = i;
          defs->push_back(cur);
          in_fn = false;
          ctx.clear();
        }
      }
      continue;
    }
    if (c == '{') {
      const CtxInfo info = classify_context(ctx);
      if (info.kind == CtxInfo::kFunction) {
        cur = FnDef{};
        cur.file = file_idx;
        cur.line = line_at(text, ctx_start);
        cur.realtime = info.realtime;
        cur.body_begin = i + 1;
        std::string qual;
        for (const Open& o : stack)
          if (!o.name.empty()) qual += o.name + "::";
        qual += info.name;
        cur.qual = qual;
        const std::size_t sep = qual.rfind("::");
        cur.terminal = sep == std::string::npos ? qual : qual.substr(sep + 2);
        in_fn = true;
        fn_depth = 1;
      } else {
        stack.push_back(
            {info.kind, info.kind == CtxInfo::kOther ? "" : info.name});
      }
      ctx.clear();
    } else if (c == '}') {
      if (!stack.empty()) stack.pop_back();
      ctx.clear();
    } else if (c == ';') {
      ctx.clear();
    } else {
      if (ctx.empty()) {
        if (space_char(c)) continue;
        ctx_start = i;
      }
      ctx += c;
    }
  }
}

// ---- call extraction ------------------------------------------------

/// Identifier paths immediately followed by '(' — potential call
/// sites.  Returns full paths ("dsp::fft", "run"); member access is
/// reduced to the trailing path by construction.
std::vector<std::string> extract_calls(const std::string& body) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < body.size()) {
    if (!ident_char(body[i]) || (i > 0 && ident_char(body[i - 1]))) {
      ++i;
      continue;
    }
    // Read an ident path: ident (:: ident)*
    std::size_t start = i;
    for (;;) {
      while (i < body.size() && ident_char(body[i])) ++i;
      if (i + 1 < body.size() && body[i] == ':' && body[i + 1] == ':' &&
          i + 2 < body.size() && ident_char(body[i + 2]))
        i += 2;
      else
        break;
    }
    const std::string path = body.substr(start, i - start);
    std::size_t j = i;
    while (j < body.size() && space_char(body[j])) ++j;
    if (j < body.size() && body[j] == '(') {
      const std::size_t sep = path.rfind("::");
      const std::string terminal =
          sep == std::string::npos ? path : path.substr(sep + 2);
      if (non_call_keywords().count(terminal) == 0) out.push_back(path);
    }
  }
  return out;
}

/// True when `qual` ends with `suffix` at a :: boundary.
bool qual_suffix_match(const std::string& qual, const std::string& suffix) {
  if (suffix.size() > qual.size()) return false;
  if (qual.compare(qual.size() - suffix.size(), suffix.size(), suffix) != 0)
    return false;
  if (suffix.size() == qual.size()) return true;
  const std::size_t b = qual.size() - suffix.size();
  return b >= 2 && qual[b - 1] == ':' && qual[b - 2] == ':';
}

bool is_audited(const FnDef& def, const PurityConfig& cfg,
                std::string* reason) {
  for (const auto& a : cfg.audited) {
    if (qual_suffix_match(def.qual, a.function)) {
      if (reason != nullptr) *reason = a.reason;
      return true;
    }
  }
  return false;
}

}  // namespace

PurityConfig default_purity_config() {
  // Mirrors scripts/purity_allowlist.json; keep the two in sync.
  PurityConfig cfg;
  const auto add = [&](const char* fn, const char* why) {
    cfg.audited.push_back({fn, why});
  };
  add("mmhand::parallel_for",
      "fan-out primitive; pool internals are warm-up-only and share "
      "terminal names with hot-path methods");
  add("MMHAND_CHECK", "cold contract-failure path; throws by design");
  add("MMHAND_ASSERT", "cold contract-failure path; throws by design");
  add("MMHAND_SPAN", "obs span; inert two relaxed loads when disabled");
  add("obs::counter", "registry lookup bound to a function-local static");
  add("obs::histogram", "registry lookup bound to a function-local static");
  add("obs::metrics_enabled", "one relaxed load after first call");
  add("obs::FrameScope", "inert when observability is off; context "
      "allocation is the observability tax, measured by the interposer");
  add("simd::kernels", "dispatch table; init-once, then a relaxed load");
  add("simd::active_isa", "init-once env resolution, then a relaxed load");
  add("dsp::twiddle_table", "lock-free slot read; cold build path only");
  add("dsp::stage_twiddles", "lock-free slot read; cold build path only");
  add("dsp::zoom_plan", "lock-free list walk; cold build path only");
  add("dsp::czt_scratch", "grow-on-demand thread-local scratch");
  add("dsp::biquad_scratch", "grow-on-demand thread-local scratch");
  add("dsp::SosFilter::filtfilt",
      "scalar-ISA reference path; the vector path is allocation-free");
  add("radar::stage_scratch", "grow-on-demand thread-local scratch");
  add("radar::frame_workspace", "grow-on-demand thread-local workspace");
  add("radar::RadarCube::reset", "grow-only storage reuse");
  add("radar::RadarPipeline::range_fft_scalar",
      "scalar-ISA reference path (per-item dsp::fft vectors)");
  add("radar::RadarPipeline::doppler_fft_scalar",
      "scalar-ISA reference path (per-item dsp::fft vectors)");
  add("radar::RadarPipeline::angle_fft_scalar",
      "scalar-ISA reference path (per-item dsp::zoom_fft vectors)");
  add("nn::im2col_scratch", "grow-on-demand thread-local scratch");
  add("obs::site_name_id",
      "cold name-interning path; steady state is two atomic loads");
  return cfg;
}

bool parse_purity_allowlist_json(const std::string& text, PurityConfig* cfg,
                                 std::string* error) {
  std::string parse_error;
  const json::Value root = json::Value::parse(text, &parse_error);
  if (!parse_error.empty()) {
    if (error != nullptr) *error = "purity allowlist: " + parse_error;
    return false;
  }
  if (!root.is_object()) {
    if (error != nullptr)
      *error = "purity allowlist: top level must be an object";
    return false;
  }
  const json::Value* v = root.find("audited");
  if (v == nullptr) return true;
  if (!v->is_array()) {
    if (error != nullptr)
      *error = "purity allowlist: \"audited\" must be an array";
    return false;
  }
  std::vector<PurityConfig::Audited> audited;
  for (const json::Value& item : v->as_array()) {
    const json::Value* fn = item.is_object() ? item.find("function") : nullptr;
    const json::Value* why = item.is_object() ? item.find("reason") : nullptr;
    if (fn == nullptr || !fn->is_string() || why == nullptr ||
        !why->is_string()) {
      if (error != nullptr)
        *error = "purity allowlist: audited entries need string "
                 "\"function\" and \"reason\"";
      return false;
    }
    audited.push_back({fn->as_string(), why->as_string()});
  }
  cfg->audited = std::move(audited);
  return true;
}

PurityReport analyze_purity(
    const std::vector<std::pair<std::string, std::string>>& files,
    const PurityConfig& cfg) {
  PurityReport report;
  report.files_scanned = files.size();

  // Pass 1: strip + de-preprocess every file, index definitions.
  std::vector<std::string> stripped(files.size());
  std::vector<FnDef> defs;
  for (std::size_t f = 0; f < files.size(); ++f) {
    stripped[f] = strip_comments_and_strings(files[f].second);
    std::vector<MacroDef> macros;
    blank_directives(&stripped[f], &macros);
    index_file(static_cast<int>(f), stripped[f], &defs);
    for (MacroDef& m : macros) {
      FnDef def;
      def.qual = m.name;
      def.terminal = m.name;
      def.file = static_cast<int>(f);
      def.line = m.line;
      def.is_macro = true;
      // Macro bodies live outside the stripped text; stash the body in
      // a side table keyed by def index (body_begin/end unused).
      defs.push_back(def);
      // Reuse the stripped storage: append the body so offsets stay
      // valid (newlines inside keep line_at usable for the macro file).
      defs.back().body_begin = stripped[f].size();
      stripped[f] += m.body;
      defs.back().body_end = stripped[f].size();
      defs.back().line = m.line;
    }
  }
  report.functions_indexed = defs.size();

  // Terminal-name resolution index.
  std::map<std::string, std::vector<std::size_t>> by_terminal;
  for (std::size_t d = 0; d < defs.size(); ++d)
    by_terminal[defs[d].terminal].push_back(d);

  const auto resolve = [&](const std::string& path,
                           std::vector<std::size_t>* out) {
    if (path.compare(0, 5, "std::") == 0) return false;
    const std::size_t sep = path.rfind("::");
    const std::string terminal =
        sep == std::string::npos ? path : path.substr(sep + 2);
    const auto it = by_terminal.find(terminal);
    if (it == by_terminal.end()) return false;
    if (sep != std::string::npos) {
      // Qualified call: prefer definitions matching the full path.
      std::vector<std::size_t> exact;
      for (std::size_t d : it->second)
        if (qual_suffix_match(defs[d].qual, path)) exact.push_back(d);
      if (!exact.empty()) {
        *out = std::move(exact);
        return true;
      }
    }
    if (ambiguous_terminals().count(terminal) != 0) return false;
    *out = it->second;
    return true;
  };

  // Body deny-token scan, with line numbers from the stripped text.
  const auto scan_body = [&](const FnDef& def, const std::string& root,
                             const std::vector<std::string>& chain,
                             std::vector<PurityHit>* hits) {
    const std::string body = stripped[static_cast<std::size_t>(def.file)]
                                 .substr(def.body_begin,
                                         def.body_end - def.body_begin);
    for (const DenyClass& cls : deny_classes()) {
      for (const char* token : cls.tokens) {
        for (std::size_t pos = 0;
             (pos = find_whole(body, token, pos)) != std::string::npos;
             pos += std::char_traits<char>::length(token)) {
          PurityHit hit;
          hit.root = root;
          hit.chain = chain;
          hit.function = def.qual;
          hit.file = files[static_cast<std::size_t>(def.file)].first;
          hit.line = def.is_macro
                         ? def.line
                         : line_at(stripped[static_cast<std::size_t>(
                                       def.file)],
                                   def.body_begin + pos);
          hit.category = cls.category;
          hit.token = token;
          hits->push_back(std::move(hit));
        }
      }
    }
  };

  // Pass 2: BFS from each MMHAND_REALTIME root.
  for (std::size_t r = 0; r < defs.size(); ++r) {
    if (!defs[r].realtime) continue;
    PurityRoot root;
    root.name = defs[r].qual;
    root.file = files[static_cast<std::size_t>(defs[r].file)].first;
    root.line = defs[r].line;

    std::map<std::size_t, std::size_t> parent;  // def -> predecessor
    std::set<std::size_t> visited;
    std::deque<std::size_t> queue;
    visited.insert(r);
    queue.push_back(r);
    std::set<std::string> hit_keys;

    while (!queue.empty()) {
      const std::size_t d = queue.front();
      queue.pop_front();
      std::string why;
      if (d != r && is_audited(defs[d], cfg, &why)) {
        ++root.audited;
        continue;  // opaque: neither scanned nor traversed
      }
      ++root.reachable;

      // Reconstruct root -> ... -> d.
      std::vector<std::string> chain;
      for (std::size_t cur = d;;) {
        chain.push_back(defs[cur].qual);
        const auto it = parent.find(cur);
        if (it == parent.end()) break;
        cur = it->second;
      }
      std::reverse(chain.begin(), chain.end());

      std::vector<PurityHit> hits;
      scan_body(defs[d], root.name, chain, &hits);
      for (PurityHit& h : hits) {
        const std::string key =
            h.function + "#" + std::to_string(h.line) + "#" + h.token;
        if (hit_keys.insert(key).second) root.hits.push_back(std::move(h));
      }

      const std::string body =
          stripped[static_cast<std::size_t>(defs[d].file)].substr(
              defs[d].body_begin, defs[d].body_end - defs[d].body_begin);
      for (const std::string& call : extract_calls(body)) {
        std::vector<std::size_t> targets;
        if (!resolve(call, &targets)) {
          ++report.unresolved_calls;
          continue;
        }
        for (std::size_t t : targets) {
          if (visited.insert(t).second) {
            parent[t] = d;
            queue.push_back(t);
          }
        }
      }
    }

    std::sort(root.hits.begin(), root.hits.end(),
              [](const PurityHit& a, const PurityHit& b) {
                if (a.file != b.file) return a.file < b.file;
                if (a.line != b.line) return a.line < b.line;
                return a.token < b.token;
              });
    report.roots.push_back(std::move(root));
  }

  std::sort(report.roots.begin(), report.roots.end(),
            [](const PurityRoot& a, const PurityRoot& b) {
              return a.name < b.name;
            });
  return report;
}

bool purity_clean(const PurityReport& report) {
  for (const PurityRoot& r : report.roots)
    if (!r.hits.empty()) return false;
  return true;
}

std::string purity_to_json(const PurityReport& report) {
  const auto escape = [](const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        out.push_back('\\');
        out.push_back(c);
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out.push_back(c);
      }
    }
    return out;
  };
  std::ostringstream os;
  std::size_t total_hits = 0;
  for (const PurityRoot& r : report.roots) total_hits += r.hits.size();
  os << "{\n  \"tool\": \"mmhand_purity\",\n  \"files_scanned\": "
     << report.files_scanned
     << ",\n  \"functions_indexed\": " << report.functions_indexed
     << ",\n  \"unresolved_calls\": " << report.unresolved_calls
     << ",\n  \"clean\": " << (purity_clean(report) ? "true" : "false")
     << ",\n  \"total_hits\": " << total_hits << ",\n  \"roots\": [";
  bool first_root = true;
  for (const PurityRoot& r : report.roots) {
    os << (first_root ? "\n" : ",\n") << "    {\"root\": \""
       << escape(r.name) << "\", \"file\": \"" << escape(r.file)
       << "\", \"line\": " << r.line << ", \"reachable\": " << r.reachable
       << ", \"audited\": " << r.audited << ", \"hits\": [";
    bool first_hit = true;
    for (const PurityHit& h : r.hits) {
      os << (first_hit ? "\n" : ",\n") << "      {\"function\": \""
         << escape(h.function) << "\", \"file\": \"" << escape(h.file)
         << "\", \"line\": " << h.line << ", \"category\": \""
         << escape(h.category) << "\", \"token\": \"" << escape(h.token)
         << "\", \"chain\": [";
      for (std::size_t i = 0; i < h.chain.size(); ++i)
        os << (i == 0 ? "" : ", ") << '"' << escape(h.chain[i]) << '"';
      os << "]}";
      first_hit = false;
    }
    os << (first_hit ? "]}" : "\n    ]}");
    first_root = false;
  }
  os << (first_root ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

}  // namespace mmhand::lint
