// mmhand_report — merges the observability outputs of a run into one
// Markdown report:
//
//   mmhand_report [--runlog FILE] [--metrics FILE] [--bench FILE]...
//                 [--history FILE] [--lint FILE] [-o OUT.md]
//
//   --runlog   a JSONL run log written via MMHAND_RUN_LOG (manifest /
//              epoch / eval / anomaly records)
//   --metrics  a metrics snapshot written via MMHAND_METRICS
//   --roofline with --metrics: add a per-stage roofline table joining
//              span wall time with the `<stage>.flops`/`<stage>.bytes`
//              cost counters (GFLOP/s, arithmetic intensity) and, when
//              the run had MMHAND_PMU=1 on capable hardware, IPC and
//              cache-miss rates from the `pmu/*` counters; clock-only
//              otherwise (a note, never an error)
//   --bench    any BENCH_*.json (repeatable); bench_throughput's format
//              gets a per-op table, others a one-line summary
//   --history  a bench/history.jsonl appended by
//              `check_bench.py --append-history`; renders a per-op
//              latency trend across runs (oldest → newest)
//   --lint     a `mmhand_lint --json` report; renders a "Static
//              analysis" section (rule counts or a zero-findings badge)
//   -o         output path (default: stdout)
//
// Sections: run manifest, loss curve (per-epoch loss / lr / grad norm /
// throughput), evaluations, numerical anomalies, stage latency breakdown
// (from metrics histograms), bench results, bench trend, and static
// analysis.  Inputs are optional; absent ones are skipped, so the tool
// is usable after any subset of MMHAND_RUN_LOG / MMHAND_METRICS / bench
// / lint runs.

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "mmhand/common/json.hpp"

namespace {

using mmhand::json::Value;

std::string slurp(const std::string& path, bool* ok) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *ok = false;
    return {};
  }
  std::string out;
  char buf[65536];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  *ok = true;
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    if (nl > pos) lines.push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

std::string fmt(double v, int prec = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

/// Markdown-renders one parsed run log.
void report_runlog(const std::vector<Value>& records, std::ostream& os) {
  // Manifest(s).
  for (const Value& r : records) {
    if (r.string_or("kind", "") != "manifest") continue;
    os << "## Run manifest\n\n| field | value |\n|---|---|\n";
    for (const auto& [key, v] : r.as_object()) {
      if (key == "kind") continue;
      os << "| " << key << " | ";
      if (v.is_number())
        os << fmt(v.as_number(), v.as_number() == static_cast<long long>(
                                                      v.as_number())
                                     ? 0
                                     : 6);
      else if (v.is_string())
        os << v.as_string();
      else if (v.is_bool())
        os << (v.as_bool() ? "true" : "false");
      os << " |\n";
    }
    os << "\n";
  }

  // Loss curve.
  bool header = false;
  for (const Value& r : records) {
    if (r.string_or("kind", "") != "epoch") continue;
    if (!header) {
      os << "## Loss curve\n\n"
         << "| epoch | loss | lr_scale | grad L2 | wall s | samples/s |"
            " grad nan/inf |\n|---|---|---|---|---|---|---|\n";
      header = true;
    }
    std::size_t nan = 0, inf = 0;
    if (const Value* params = r.find("params"); params != nullptr &&
                                                params->is_object()) {
      for (const auto& [name, group] : params->as_object()) {
        if (const Value* g = group.find("grad"); g != nullptr) {
          nan += static_cast<std::size_t>(g->number_or("nan", 0.0));
          inf += static_cast<std::size_t>(g->number_or("inf", 0.0));
        }
      }
    }
    os << "| " << static_cast<int>(r.number_or("epoch", -1)) << " | "
       << fmt(r.number_or("loss", 0.0), 6) << " | "
       << fmt(r.number_or("lr_scale", 0.0), 4) << " | "
       << fmt(r.number_or("grad_norm", 0.0), 4) << " | "
       << fmt(r.number_or("wall_s", 0.0), 2) << " | "
       << fmt(r.number_or("samples_per_s", 0.0), 1) << " | " << nan << "/"
       << inf << " |\n";
  }
  if (header) os << "\n";

  // Evaluations.
  header = false;
  for (const Value& r : records) {
    if (r.string_or("kind", "") != "eval") continue;
    if (!header) {
      os << "## Evaluations\n\n"
         << "| label | user | frames | MPJPE mm | palm | fingers |"
            " PCK@40 |\n|---|---|---|---|---|---|---|\n";
      header = true;
    }
    double pck40 = 0.0;
    if (const Value* pck = r.find("pck"); pck != nullptr)
      pck40 = pck->number_or("40", 0.0);
    os << "| " << r.string_or("label", "?") << " | "
       << static_cast<int>(r.number_or("user", -1)) << " | "
       << static_cast<int>(r.number_or("frames", 0)) << " | "
       << fmt(r.number_or("mpjpe_mm", 0.0), 1) << " | "
       << fmt(r.number_or("mpjpe_palm_mm", 0.0), 1) << " | "
       << fmt(r.number_or("mpjpe_fingers_mm", 0.0), 1) << " | "
       << fmt(pck40, 1) << " |\n";
  }
  if (header) os << "\n";

  // Anomalies.
  std::size_t anomalies = 0;
  for (const Value& r : records)
    if (r.string_or("kind", "") == "anomaly") ++anomalies;
  os << "## Numerical anomalies\n\n";
  if (anomalies == 0) {
    os << "None recorded.\n\n";
  } else {
    os << anomalies << " anomalie(s):\n\n| t_ms | site | what | detail |\n"
       << "|---|---|---|---|\n";
    for (const Value& r : records) {
      if (r.string_or("kind", "") != "anomaly") continue;
      os << "| " << fmt(r.number_or("t_ms", 0.0), 1) << " | "
         << r.string_or("site", "?") << " | " << r.string_or("what", "?")
         << " | " << r.string_or("detail", "") << " |\n";
    }
    os << "\n";
  }
}

/// Stage latency / counter section from a metrics snapshot.
void report_metrics(const Value& snapshot, std::ostream& os) {
  os << "## Metrics snapshot\n\n";
  if (const Value* counters = snapshot.find("counters");
      counters != nullptr && counters->is_object() &&
      !counters->as_object().empty()) {
    os << "| counter | value |\n|---|---|\n";
    for (const auto& [name, v] : counters->as_object())
      os << "| " << name << " | " << fmt(v.as_number(), 0) << " |\n";
    os << "\n";
  }
  if (const Value* gauges = snapshot.find("gauges");
      gauges != nullptr && gauges->is_object() &&
      !gauges->as_object().empty()) {
    os << "| gauge | value |\n|---|---|\n";
    for (const auto& [name, v] : gauges->as_object())
      os << "| " << name << " | " << fmt(v.as_number(), 4) << " |\n";
    os << "\n";
  }
  if (const Value* hists = snapshot.find("histograms");
      hists != nullptr && hists->is_object() &&
      !hists->as_object().empty()) {
    os << "### Stage latency breakdown (span histograms, µs)\n\n"
       << "| stage | count | mean | p50 | p95 | p99 | max |\n"
       << "|---|---|---|---|---|---|---|\n";
    for (const auto& [name, h] : hists->as_object()) {
      os << "| " << name << " | " << fmt(h.number_or("count", 0), 0)
         << " | " << fmt(h.number_or("mean", 0.0), 1) << " | "
         << fmt(h.number_or("p50", 0.0), 1) << " | "
         << fmt(h.number_or("p95", 0.0), 1) << " | "
         << fmt(h.number_or("p99", 0.0), 1) << " | "
         << fmt(h.number_or("max", 0.0), 1) << " |\n";
    }
    os << "\n";
  }
}

/// Roofline / efficiency section: joins each stage's span histogram
/// (wall time) with its `<stage>.flops` / `<stage>.bytes` cost counters
/// and, when present, the `pmu/<stage>.*` hardware counters.  Without
/// PMU data (perf_event unavailable, or MMHAND_PMU unset) the table
/// degrades to the clock-only columns — a note, not an error.
void report_roofline(const Value& snapshot, std::ostream& os) {
  os << "## Roofline & efficiency\n\n";
  const Value* counters = snapshot.find("counters");
  const Value* hists = snapshot.find("histograms");
  if (counters == nullptr || !counters->is_object() || hists == nullptr ||
      !hists->is_object()) {
    os << "No counters/histograms in this snapshot; run with "
          "MMHAND_METRICS set.\n\n";
    return;
  }
  const auto counter_of = [&](const std::string& name) -> double {
    const Value* v = counters->find(name);
    return v != nullptr && v->is_number() ? v->as_number() : 0.0;
  };
  // Stages are whatever published a `<stage>.flops` counter.
  std::vector<std::string> stages;
  for (const auto& [name, v] : counters->as_object()) {
    const std::string suffix = ".flops";
    if (name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
            0)
      stages.push_back(name.substr(0, name.size() - suffix.size()));
  }
  if (stages.empty()) {
    os << "No `<stage>.flops` cost counters in this snapshot.\n\n";
    return;
  }
  bool any_pmu = false;
  for (const std::string& stage : stages)
    if (counter_of("pmu/" + stage + ".cycles") > 0.0) any_pmu = true;

  os << "| stage | wall s | GFLOP | GB | AI flop/B | GFLOP/s |";
  if (any_pmu) os << " IPC | miss/kI |";
  os << "\n|---|---|---|---|---|---|";
  if (any_pmu) os << "---|---|";
  os << "\n";
  for (const std::string& stage : stages) {
    const double flops = counter_of(stage + ".flops");
    const double bytes = counter_of(stage + ".bytes");
    double wall_s = 0.0;
    if (const Value* h = hists->find(stage);
        h != nullptr && h->is_object())
      wall_s = h->number_or("count", 0.0) * h->number_or("mean", 0.0) / 1e6;
    os << "| " << stage << " | " << fmt(wall_s, 3) << " | "
       << fmt(flops / 1e9, 3) << " | " << fmt(bytes / 1e9, 3) << " | "
       << (bytes > 0.0 ? fmt(flops / bytes, 2) : std::string("?")) << " | "
       << (wall_s > 0.0 ? fmt(flops / wall_s / 1e9, 2) : std::string("?"))
       << " |";
    if (any_pmu) {
      const double cycles = counter_of("pmu/" + stage + ".cycles");
      const double instr = counter_of("pmu/" + stage + ".instructions");
      const double misses = counter_of("pmu/" + stage + ".cache_misses");
      os << " "
         << (cycles > 0.0 ? fmt(instr / cycles, 2) : std::string("?"))
         << " | "
         << (instr > 0.0 ? fmt(misses / (instr / 1e3), 2)
                         : std::string("?"))
         << " |";
    }
    os << "\n";
  }
  os << "\n";
  if (!any_pmu)
    os << "_No `pmu/*` hardware counters in this snapshot (MMHAND_PMU "
          "unset, or perf_event unavailable on this host) — clock-only "
          "view._\n\n";
}

void report_bench(const std::string& path, const Value& bench,
                  std::ostream& os) {
  os << "## Bench: " << bench.string_or("bench", path) << "\n\n";
  if (const Value* results = bench.find("results");
      results != nullptr && results->is_array()) {
    os << "| op | threads | ms |\n|---|---|---|\n";
    for (const Value& r : results->as_array())
      os << "| " << r.string_or("op", "?") << " | "
         << static_cast<int>(r.number_or("threads", 0)) << " | "
         << fmt(r.number_or("ms", 0.0), 4) << " |\n";
    os << "\n";
    if (const Value* speedup = bench.find("speedup_4t");
        speedup != nullptr && speedup->is_object()) {
      os << "| op | speedup @4t |\n|---|---|\n";
      for (const auto& [op, s] : speedup->as_object())
        os << "| " << op << " | " << fmt(s.as_number(), 3) << "x |\n";
      os << "\n";
    }
  } else {
    os << "(no `results` array; keys:";
    if (bench.is_object())
      for (const auto& [key, v] : bench.as_object()) os << " " << key;
    os << ")\n\n";
  }
}

/// ASCII trend of `values` (oldest → newest), one glyph per run:
/// '_' bottom quartile of the observed range, '-' middle, '^' top.
std::string trend_glyphs(const std::vector<double>& values) {
  double lo = 1e300, hi = 0.0;
  for (const double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::string out;
  for (const double v : values) {
    if (hi <= lo) {
      out += '-';
      continue;
    }
    const double t = (v - lo) / (hi - lo);
    out += t < 0.25 ? '_' : (t > 0.75 ? '^' : '-');
  }
  return out;
}

/// "Bench trend" section from a history JSONL (one record per bench
/// run; see check_bench.py --append-history for the writer).
void report_history(const std::vector<Value>& records, std::ostream& os) {
  os << "## Bench trend\n\n";
  if (records.empty()) {
    os << "No history records.\n\n";
    return;
  }
  const auto day_of = [](const Value& r) -> std::string {
    const double ts = r.number_or("timestamp", 0.0);
    if (ts <= 0.0) return "?";
    const std::time_t t = static_cast<std::time_t>(ts);
    std::tm tm{};
    if (gmtime_r(&t, &tm) == nullptr) return "?";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", tm.tm_year + 1900,
                  tm.tm_mon + 1, tm.tm_mday);
    return buf;
  };
  os << records.size() << " run(s), " << day_of(records.front()) << " → "
     << day_of(records.back()) << ".\n\n";
  // Collect per-op series in first-seen order; ops are keyed
  // "op@threads" by the writer, and runs missing an op are skipped for
  // that series (ISA changes re-key via the simd suffix the writer
  // adds, so incompatible runs never merge into one series).
  std::vector<std::string> order;
  std::map<std::string, std::vector<double>> series;
  for (const Value& r : records) {
    const Value* ops = r.find("ops");
    if (ops == nullptr || !ops->is_object()) continue;
    for (const auto& [key, v] : ops->as_object()) {
      if (series.find(key) == series.end()) order.push_back(key);
      series[key].push_back(v.as_number());
    }
  }
  if (order.empty()) {
    os << "(no `ops` objects in history records)\n\n";
    return;
  }
  os << "| op | runs | oldest ms | newest ms | best ms | Δ newest/best |"
        " trend |\n|---|---|---|---|---|---|---|\n";
  for (const std::string& key : order) {
    const std::vector<double>& v = series[key];
    double best = 1e300;
    for (const double ms : v) best = std::min(best, ms);
    os << "| " << key << " | " << v.size() << " | " << fmt(v.front(), 4)
       << " | " << fmt(v.back(), 4) << " | " << fmt(best, 4) << " | "
       << (best > 0.0 ? fmt(v.back() / best, 2) + "x" : "?") << " | `"
       << trend_glyphs(v) << "` |\n";
  }
  os << "\n";
}

/// "Static analysis" section from a `mmhand_lint --json` report.
void report_lint(const Value& lint, std::ostream& os) {
  os << "## Static analysis\n\n";
  const int files = static_cast<int>(lint.number_or("files_scanned", 0));
  const Value* findings = lint.find("findings");
  const std::size_t total =
      findings != nullptr && findings->is_array()
          ? findings->as_array().size()
          : 0;
  if (total == 0) {
    os << "**mmhand_lint: clean** — 0 findings across " << files
       << " file(s).\n\n";
    return;
  }
  os << "mmhand_lint: **" << total << " finding(s)** across " << files
     << " file(s).\n\n";
  if (const Value* counts = lint.find("counts");
      counts != nullptr && counts->is_object()) {
    os << "| rule | findings |\n|---|---|\n";
    for (const auto& [rule, n] : counts->as_object())
      os << "| " << rule << " | " << fmt(n.as_number(), 0) << " |\n";
    os << "\n";
  }
  os << "| file | line | rule | message |\n|---|---|---|---|\n";
  for (const Value& f : findings->as_array())
    os << "| " << f.string_or("file", "?") << " | "
       << static_cast<int>(f.number_or("line", 0)) << " | "
       << f.string_or("rule", "?") << " | " << f.string_or("message", "")
       << " |\n";
  os << "\n";
}

/// "Hot-path purity" section from `mmhand_lint --purity --json` plus an
/// optional `mmhand_purity_probe --json` runtime figure.
void report_purity(const Value& purity, const Value* probe,
                   std::ostream& os) {
  os << "## Hot-path purity\n\n";
  const int hits = static_cast<int>(purity.number_or("total_hits", 0));
  const Value* roots = purity.find("roots");
  const std::size_t n_roots =
      roots != nullptr && roots->is_array() ? roots->as_array().size() : 0;
  if (hits == 0) {
    os << "**mmhand_lint --purity: clean** — no deny-class token reachable"
       << " from any of the " << n_roots << " MMHAND_REALTIME root(s).\n\n";
  } else {
    os << "mmhand_lint --purity: **" << hits << " deny hit(s)** across "
       << n_roots << " root(s).\n\n";
  }
  if (n_roots > 0) {
    os << "| root | file | reachable | audited | deny hits |\n"
       << "|---|---|---|---|---|\n";
    for (const Value& r : roots->as_array()) {
      const Value* rh = r.find("hits");
      const std::size_t nh =
          rh != nullptr && rh->is_array() ? rh->as_array().size() : 0;
      os << "| `" << r.string_or("root", "?") << "` | "
         << r.string_or("file", "?") << " | "
         << static_cast<int>(r.number_or("reachable", 0)) << " | "
         << static_cast<int>(r.number_or("audited", 0)) << " | " << nh
         << (nh == 0 ? " ✓" : " ✗") << " |\n";
    }
    os << "\n";
    for (const Value& r : roots->as_array()) {
      const Value* rh = r.find("hits");
      if (rh == nullptr || !rh->is_array()) continue;
      for (const Value& h : rh->as_array()) {
        os << "- `" << h.string_or("token", "?") << "` ("
           << h.string_or("category", "?") << ") at "
           << h.string_or("file", "?") << ":"
           << static_cast<int>(h.number_or("line", 0)) << " via `";
        if (const Value* chain = h.find("chain");
            chain != nullptr && chain->is_array()) {
          bool first = true;
          for (const Value& link : chain->as_array()) {
            if (!first) os << " -> ";
            os << link.string_or("", "?");
            first = false;
          }
        }
        os << "`\n";
      }
    }
    if (hits > 0) os << "\n";
  }
  if (probe != nullptr) {
    const Value* radar = probe->find("radar");
    const Value* pose = probe->find("pose");
    const int frames =
        std::max(1, static_cast<int>(probe->number_or("frames", 1)));
    os << "Runtime probe (`mmhand_purity_probe`, isa "
       << probe->string_or("isa", "?") << ", " << frames
       << " steady-state frame(s)): radar "
       << fmt(radar != nullptr ? radar->number_or("allocs", -1) /
                                     static_cast<double>(frames)
                               : -1.0,
              3)
       << " alloc(s)/frame, pose "
       << fmt(pose != nullptr ? pose->number_or("allocs", -1) /
                                    static_cast<double>(frames)
                              : -1.0,
              1)
       << " alloc(s)/forward (reported, not gated).\n\n";
  }
}

/// "Serving" section from mmhand_soak JSON reports (soak and/or parity
/// mode; scripts/check_serve.sh gates on the same fields).
void report_serve(const std::vector<std::pair<std::string, Value>>& runs,
                  std::ostream& os) {
  os << "## Serving\n\n";
  for (const auto& [path, r] : runs) {
    const Value* pv = r.find("pass");
    const bool pass = pv != nullptr && pv->is_bool() && pv->as_bool();
    const std::string mode = r.string_or("mode", "?");
    if (mode == "soak") {
      os << "**Chaos soak** (`" << path << "`): "
         << (pass ? "all invariants hold" : "**INVARIANT VIOLATION**")
         << "\n\n| field | value |\n|---|---|\n"
         << "| sessions x overload | "
         << static_cast<int>(r.number_or("sessions", 0)) << " x "
         << static_cast<int>(r.number_or("overload", 0)) << " |\n"
         << "| windows completed / shed / missed | "
         << static_cast<long long>(r.number_or("completed", 0)) << " / "
         << static_cast<long long>(r.number_or("shed", 0)) << " / "
         << static_cast<long long>(r.number_or("missed", 0)) << " |\n"
         << "| degraded drops / client retries | "
         << static_cast<long long>(r.number_or("degraded", 0)) << " / "
         << static_cast<long long>(r.number_or("retries", 0)) << " |\n"
         << "| faults (churn/burst/stall) | "
         << static_cast<long long>(r.number_or("churns", 0)) << " / "
         << static_cast<long long>(r.number_or("bursts", 0)) << " / "
         << static_cast<long long>(r.number_or("stalls", 0)) << " |\n"
         << "| deadline compliance | "
         << fmt(r.number_or("compliance", 0.0), 4) << " |\n"
         << "| e2e p50 / p95 / p99 (µs) | "
         << fmt(r.number_or("e2e_p50_us", 0.0), 1) << " / "
         << fmt(r.number_or("e2e_p95_us", 0.0), 1) << " / "
         << fmt(r.number_or("e2e_p99_us", 0.0), 1) << " |\n"
         << "| max ready depth / starved sessions | "
         << static_cast<long long>(r.number_or("max_ready_depth", 0))
         << " / "
         << static_cast<long long>(r.number_or("starved_sessions", 0))
         << " |\n\n";
    } else if (mode == "parity") {
      os << "**Drained parity** (`" << path << "`, "
         << static_cast<int>(r.number_or("threads", 0)) << " thread(s)): "
         << static_cast<long long>(r.number_or("compared", 0))
         << " floats compared, "
         << static_cast<long long>(r.number_or("mismatched", 0))
         << " mismatched — "
         << (pass ? "bitwise identical to the offline pipeline"
                  : "**PARITY BROKEN**")
         << "\n\n";
    } else {
      os << "(`" << path << "`: unknown mode \"" << mode << "\")\n\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string runlog_path, metrics_path, lint_path, history_path, out_path;
  std::string purity_path, probe_path;
  std::vector<std::string> bench_paths;
  std::vector<std::string> serve_paths;
  bool roofline = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--runlog") {
      if (const char* v = next()) runlog_path = v;
    } else if (arg == "--metrics") {
      if (const char* v = next()) metrics_path = v;
    } else if (arg == "--roofline") {
      roofline = true;
    } else if (arg == "--bench") {
      if (const char* v = next()) bench_paths.push_back(v);
    } else if (arg == "--serve") {
      if (const char* v = next()) serve_paths.push_back(v);
    } else if (arg == "--history") {
      if (const char* v = next()) history_path = v;
    } else if (arg == "--lint") {
      if (const char* v = next()) lint_path = v;
    } else if (arg == "--purity") {
      if (const char* v = next()) purity_path = v;
    } else if (arg == "--probe") {
      if (const char* v = next()) probe_path = v;
    } else if (arg == "-o" || arg == "--out") {
      if (const char* v = next()) out_path = v;
    } else {
      std::fprintf(stderr,
                   "usage: mmhand_report [--runlog FILE] [--metrics FILE]"
                   " [--roofline] [--bench FILE]... [--serve FILE]..."
                   " [--history FILE] [--lint FILE] [--purity FILE]"
                   " [--probe FILE] [-o OUT.md]\n");
      return arg == "-h" || arg == "--help" ? 0 : 2;
    }
  }

  std::ostringstream os;
  os << "# mmHand run report\n\n";
  int inputs = 0;

  if (!runlog_path.empty()) {
    bool ok = false;
    const std::string text = slurp(runlog_path, &ok);
    if (!ok) {
      std::fprintf(stderr, "cannot read run log %s\n", runlog_path.c_str());
      return 1;
    }
    std::vector<Value> records;
    int bad = 0;
    for (const std::string& line : split_lines(text)) {
      std::string err;
      Value v = Value::parse(line, &err);
      if (err.empty() && v.is_object())
        records.push_back(std::move(v));
      else
        ++bad;
    }
    if (bad > 0)
      std::fprintf(stderr, "warning: %d unparseable line(s) in %s\n", bad,
                   runlog_path.c_str());
    report_runlog(records, os);
    ++inputs;
  }

  if (!metrics_path.empty()) {
    bool ok = false;
    const std::string text = slurp(metrics_path, &ok);
    if (!ok) {
      std::fprintf(stderr, "cannot read metrics %s\n", metrics_path.c_str());
      return 1;
    }
    std::string err;
    const Value snapshot = Value::parse(text, &err);
    if (!err.empty()) {
      std::fprintf(stderr, "metrics %s: %s\n", metrics_path.c_str(),
                   err.c_str());
      return 1;
    }
    report_metrics(snapshot, os);
    if (roofline) report_roofline(snapshot, os);
    ++inputs;
  }
  if (roofline && metrics_path.empty()) {
    std::fprintf(stderr, "--roofline needs --metrics FILE\n");
    return 2;
  }

  for (const std::string& path : bench_paths) {
    bool ok = false;
    const std::string text = slurp(path, &ok);
    if (!ok) {
      std::fprintf(stderr, "cannot read bench %s\n", path.c_str());
      return 1;
    }
    std::string err;
    const Value bench = Value::parse(text, &err);
    if (!err.empty()) {
      std::fprintf(stderr, "bench %s: %s\n", path.c_str(), err.c_str());
      return 1;
    }
    report_bench(path, bench, os);
    ++inputs;
  }

  if (!serve_paths.empty()) {
    std::vector<std::pair<std::string, Value>> runs;
    for (const std::string& path : serve_paths) {
      bool ok = false;
      const std::string text = slurp(path, &ok);
      if (!ok) {
        std::fprintf(stderr, "cannot read serve report %s\n", path.c_str());
        return 1;
      }
      std::string err;
      Value v = Value::parse(text, &err);
      if (!err.empty()) {
        std::fprintf(stderr, "serve %s: %s\n", path.c_str(), err.c_str());
        return 1;
      }
      runs.emplace_back(path, std::move(v));
    }
    report_serve(runs, os);
    ++inputs;
  }

  if (!history_path.empty()) {
    bool ok = false;
    const std::string text = slurp(history_path, &ok);
    if (!ok) {
      std::fprintf(stderr, "cannot read history %s\n",
                   history_path.c_str());
      return 1;
    }
    std::vector<Value> records;
    int bad = 0;
    for (const std::string& line : split_lines(text)) {
      std::string err;
      Value v = Value::parse(line, &err);
      if (err.empty() && v.is_object())
        records.push_back(std::move(v));
      else
        ++bad;
    }
    if (bad > 0)
      std::fprintf(stderr, "warning: %d unparseable line(s) in %s\n", bad,
                   history_path.c_str());
    report_history(records, os);
    ++inputs;
  }

  if (!lint_path.empty()) {
    bool ok = false;
    const std::string text = slurp(lint_path, &ok);
    if (!ok) {
      std::fprintf(stderr, "cannot read lint report %s\n",
                   lint_path.c_str());
      return 1;
    }
    std::string err;
    const Value lint = Value::parse(text, &err);
    if (!err.empty()) {
      std::fprintf(stderr, "lint %s: %s\n", lint_path.c_str(), err.c_str());
      return 1;
    }
    report_lint(lint, os);
    ++inputs;
  }

  if (!purity_path.empty()) {
    bool ok = false;
    const std::string text = slurp(purity_path, &ok);
    if (!ok) {
      std::fprintf(stderr, "cannot read purity report %s\n",
                   purity_path.c_str());
      return 1;
    }
    std::string err;
    const Value purity = Value::parse(text, &err);
    if (!err.empty()) {
      std::fprintf(stderr, "purity %s: %s\n", purity_path.c_str(),
                   err.c_str());
      return 1;
    }
    Value probe;
    bool have_probe = false;
    if (!probe_path.empty()) {
      const std::string probe_text = slurp(probe_path, &ok);
      if (!ok) {
        std::fprintf(stderr, "cannot read probe report %s\n",
                     probe_path.c_str());
        return 1;
      }
      probe = Value::parse(probe_text, &err);
      if (!err.empty()) {
        std::fprintf(stderr, "probe %s: %s\n", probe_path.c_str(),
                     err.c_str());
        return 1;
      }
      have_probe = true;
    }
    report_purity(purity, have_probe ? &probe : nullptr, os);
    ++inputs;
  } else if (!probe_path.empty()) {
    std::fprintf(stderr, "--probe needs --purity FILE\n");
    return 2;
  }

  if (inputs == 0) {
    std::fprintf(stderr,
                 "nothing to report: pass --runlog, --metrics, --bench,"
                 " --lint, or --purity\n");
    return 2;
  }

  const std::string body = os.str();
  if (out_path.empty()) {
    std::fwrite(body.data(), 1, body.size(), stdout);
  } else {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  }
  return 0;
}
