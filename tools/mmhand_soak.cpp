// Serving-layer soak driver and drained-parity checker.
//
// Two modes, both exercised by scripts/check_serve.sh:
//
//   mmhand_soak soak [--sessions N] [--seconds S] [--overload F]
//                     [--deadline-ms D] [--threads T] [--json PATH]
//
//     Runs a chaos soak: N simulated clients stream a recording into a
//     live (threaded) server at F times the capture rate, with the
//     MMHAND_FAULT churn/burst/stall kinds injecting client chaos.  On
//     exit it drains the server and emits a JSON invariant report:
//     bounded queues, zero starved sessions, clean drain, and deadline
//     compliance.  Exit code 0 iff every invariant holds.
//
//   mmhand_soak parity [--sessions N] [--threads T] [--json PATH]
//
//     Streams one recording through the server as N concurrent
//     sessions (frames interleaved round-robin so windows coalesce
//     into cross-session batches), drains, and compares every
//     delivered pose bitwise against the offline pipeline
//     (make_pose_samples + predict_sample, the predict_recording
//     healthy path).  Exit code 0 iff every float matches.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "mmhand/common/parallel.hpp"
#include "mmhand/obs/obs.hpp"
#include "mmhand/pose/trainer.hpp"
#include "mmhand/serve/client.hpp"
#include "mmhand/serve/server.hpp"
#include "mmhand/sim/dataset.hpp"

using namespace mmhand;

namespace {

pose::PoseNetConfig serve_net_config() {
  pose::PoseNetConfig cfg;
  cfg.segment_frames = 2;
  cfg.sequence_segments = 2;
  cfg.velocity_bins = 4;
  cfg.range_bins = 8;
  cfg.angle_bins = 8;
  cfg.feature_dim = 24;
  cfg.lstm_hidden = 16;
  cfg.spacenet.stem_channels = 4;
  cfg.spacenet.block1_channels = 6;
  cfg.spacenet.block2_channels = 6;
  return cfg;
}

sim::Recording serve_recording(int frames) {
  radar::ChirpConfig chirp;
  chirp.chirps_per_frame = 4;
  chirp.samples_per_chirp = 16;
  chirp.frame_period_s = 0.05;
  radar::PipelineConfig pc;
  pc.cube.range_bins = 8;
  pc.cube.azimuth_bins = 6;
  pc.cube.elevation_bins = 2;
  const sim::DatasetBuilder builder(chirp, pc);
  sim::ScenarioConfig scenario;
  scenario.duration_s = frames * chirp.frame_period_s;
  return builder.record(scenario);
}

struct Args {
  std::string mode;
  int sessions = 8;
  double seconds = 2.0;
  int overload = 1;
  double deadline_ms = 250.0;
  int threads = 2;
  double min_compliance = 0.99;
  std::string policy = "drop_oldest";
  std::string json;
};

bool parse_args(int argc, char** argv, Args* args) {
  if (argc < 2) return false;
  args->mode = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](double* out) {
      if (i + 1 >= argc) return false;
      *out = std::atof(argv[++i]);
      return true;
    };
    double v = 0.0;
    if (a == "--sessions" && next(&v)) {
      args->sessions = static_cast<int>(v);
    } else if (a == "--seconds" && next(&v)) {
      args->seconds = v;
    } else if (a == "--overload" && next(&v)) {
      args->overload = static_cast<int>(v);
    } else if (a == "--deadline-ms" && next(&v)) {
      args->deadline_ms = v;
    } else if (a == "--threads" && next(&v)) {
      args->threads = static_cast<int>(v);
    } else if (a == "--min-compliance" && next(&v)) {
      args->min_compliance = v;
    } else if (a == "--policy" && i + 1 < argc) {
      args->policy = argv[++i];
    } else if (a == "--json" && i + 1 < argc) {
      args->json = argv[++i];
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      return false;
    }
  }
  return args->mode == "soak" || args->mode == "parity";
}

void write_json(const std::string& path, const std::string& body) {
  if (path.empty() || path == "-") {
    std::printf("%s\n", body.c_str());
    return;
  }
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "%s\n", body.c_str());
  std::fclose(f);
}

int run_soak(const Args& args) {
  obs::set_metrics_enabled(true);
  const auto net = serve_net_config();
  Rng rng(41);
  pose::HandJointRegressor model(net, rng);
  const sim::Recording recording = serve_recording(24);

  serve::ServeConfig cfg;
  cfg.deadline_ms = args.deadline_ms;
  cfg.max_sessions = args.sessions;
  cfg.max_inflight = 64;
  cfg.queue_cap = 4;
  cfg.batch_max = 8;
  cfg.policy = args.policy == "reject_new" ? serve::ShedPolicy::kRejectNew
                                           : serve::ShedPolicy::kDropOldest;
  serve::Server server(cfg, model);

  std::vector<std::unique_ptr<serve::SimClient>> clients;
  clients.reserve(static_cast<std::size_t>(args.sessions));
  for (int s = 0; s < args.sessions; ++s) {
    serve::ClientConfig cc;
    cc.frames_per_tick = args.overload;
    cc.seed = 7 + static_cast<std::uint64_t>(s);
    clients.push_back(
        std::make_unique<serve::SimClient>(server, recording, cc));
  }

  // T driver threads, each owning a disjoint client slice (a client is
  // only ever ticked by its owner, so client state needs no locking).
  const int drivers = std::max(1, std::min(args.threads, args.sessions));
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ticks{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < drivers; ++t) {
    pool.emplace_back([&, t] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (int c = t; c < args.sessions; c += drivers)
          clients[static_cast<std::size_t>(c)]->tick();
        ticks.fetch_add(1, std::memory_order_relaxed);
        // Pace at roughly one tick per millisecond so the soak models a
        // frame stream rather than a pure CPU spin.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<long>(args.seconds * 1000)));
  stop.store(true);
  for (auto& th : pool) th.join();
  server.drain();
  for (auto& c : clients) c->finish();

  const serve::ServerStats stats = server.stats();
  const obs::HistogramStats e2e = obs::histogram("serve/e2e").stats();

  int starved = 0;
  for (const auto& c : clients)
    if (c->stats().completed == 0) ++starved;
  std::uint64_t retries = 0, churns = 0, bursts = 0, stalls = 0;
  for (const auto& c : clients) {
    retries += c->stats().retries;
    churns += c->stats().churns;
    bursts += c->stats().bursts;
    stalls += c->stats().stalls;
  }

  const std::uint64_t resolved = stats.windows_completed +
                                 stats.windows_missed;
  const double compliance =
      resolved == 0 ? 1.0
                    : static_cast<double>(stats.windows_completed) /
                          static_cast<double>(resolved);
  const bool bounded =
      stats.max_ready_depth <= static_cast<std::uint64_t>(cfg.max_inflight);
  const bool drained = stats.ready_depth == 0 && stats.inflight == 0;
  const bool served = stats.windows_completed > 0;
  const bool pass = bounded && drained && served && starved == 0 &&
                    compliance >= args.min_compliance;

  char buf[2048];
  std::snprintf(
      buf, sizeof(buf),
      "{\"mode\": \"soak\", \"sessions\": %d, \"overload\": %d,"
      " \"deadline_ms\": %.1f, \"ticks\": %llu, \"completed\": %llu,"
      " \"shed\": %llu, \"missed\": %llu, \"degraded\": %llu,"
      " \"retries\": %llu, \"churns\": %llu, \"bursts\": %llu,"
      " \"stalls\": %llu, \"batches\": %llu, \"max_ready_depth\": %llu,"
      " \"starved_sessions\": %d, \"compliance\": %.4f,"
      " \"e2e_p50_us\": %.1f, \"e2e_p95_us\": %.1f, \"e2e_p99_us\": %.1f,"
      " \"bounded\": %s, \"drained\": %s, \"pass\": %s}",
      args.sessions, args.overload, args.deadline_ms,
      static_cast<unsigned long long>(ticks.load()),
      static_cast<unsigned long long>(stats.windows_completed),
      static_cast<unsigned long long>(stats.windows_shed),
      static_cast<unsigned long long>(stats.windows_missed),
      static_cast<unsigned long long>(stats.degraded_drops),
      static_cast<unsigned long long>(retries),
      static_cast<unsigned long long>(churns),
      static_cast<unsigned long long>(bursts),
      static_cast<unsigned long long>(stalls),
      static_cast<unsigned long long>(stats.batches),
      static_cast<unsigned long long>(stats.max_ready_depth), starved,
      compliance, e2e.p50, e2e.p95, e2e.p99, bounded ? "true" : "false",
      drained ? "true" : "false", pass ? "true" : "false");
  write_json(args.json, buf);
  return pass ? 0 : 1;
}

int run_parity(const Args& args) {
  set_num_threads(args.threads);
  const auto net = serve_net_config();
  Rng rng(41);
  pose::HandJointRegressor model(net, rng);
  const sim::Recording recording = serve_recording(40);

  // Offline reference: the exact non-overlapping windows the server
  // rebuilds, predicted one sample at a time.
  const auto samples = pose::make_pose_samples(recording, net);
  std::vector<nn::Tensor> expected;
  expected.reserve(samples.size());
  for (const auto& s : samples)
    expected.push_back(pose::predict_sample(model, s));

  serve::ServeConfig cfg;
  cfg.deadline_ms = 1e9;  // parity measures values, not latency
  cfg.max_sessions = args.sessions;
  cfg.max_inflight = args.sessions * 64;
  cfg.queue_cap = 64;
  cfg.batch_max = 6;  // odd size forces batches that span sessions
  serve::Server::Options opts;
  opts.manual_step = true;
  serve::Server server(cfg, model, opts);

  std::vector<serve::SessionId> ids;
  for (int s = 0; s < args.sessions; ++s) {
    const auto j = server.join();
    if (!j.admitted) {
      std::fprintf(stderr, "join %d refused\n", s);
      return 1;
    }
    ids.push_back(j.id);
  }
  // Round-robin interleave so ready windows from different sessions
  // land in the same batched NN step.
  for (const auto& frame : recording.frames)
    for (const auto id : ids)
      if (!server.submit(id, frame.cube).accepted) {
        std::fprintf(stderr, "submit rejected\n");
        return 1;
      }
  server.drain();

  std::uint64_t compared = 0, mismatched = 0;
  bool counts_ok = true;
  for (const auto id : ids) {
    std::vector<serve::WindowResult> results;
    server.poll(id, &results);
    if (results.size() != samples.size()) counts_ok = false;
    for (const auto& r : results) {
      if (r.disposition != serve::Disposition::kCompleted ||
          r.seq >= expected.size()) {
        counts_ok = false;
        continue;
      }
      const nn::Tensor& want = expected[static_cast<std::size_t>(r.seq)];
      for (std::size_t e = 0; e < want.numel(); ++e) {
        ++compared;
        if (r.pose[e] != want[e]) ++mismatched;
      }
    }
  }
  const bool pass = counts_ok && compared > 0 && mismatched == 0;
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"mode\": \"parity\", \"sessions\": %d, \"threads\": %d,"
                " \"windows\": %zu, \"compared\": %llu, \"mismatched\":"
                " %llu, \"counts_ok\": %s, \"pass\": %s}",
                args.sessions, args.threads, samples.size(),
                static_cast<unsigned long long>(compared),
                static_cast<unsigned long long>(mismatched),
                counts_ok ? "true" : "false", pass ? "true" : "false");
  write_json(args.json, buf);
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, &args)) {
    std::fprintf(stderr,
                 "usage: mmhand_soak soak [--sessions N] [--seconds S]"
                 " [--overload F] [--deadline-ms D] [--threads T]"
                 " [--min-compliance C] [--json PATH]\n"
                 "       mmhand_soak parity [--sessions N] [--threads T]"
                 " [--json PATH]\n");
    return 2;
  }
  try {
    return args.mode == "soak" ? run_soak(args) : run_parity(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mmhand_soak: %s\n", e.what());
    return 1;
  }
}
