file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_21_body.dir/bench_fig20_21_body.cpp.o"
  "CMakeFiles/bench_fig20_21_body.dir/bench_fig20_21_body.cpp.o.d"
  "bench_fig20_21_body"
  "bench_fig20_21_body.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_21_body.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
