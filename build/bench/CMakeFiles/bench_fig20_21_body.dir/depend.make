# Empty dependencies file for bench_fig20_21_body.
# This may be replaced when dependencies are built.
