# Empty compiler generated dependencies file for bench_ablation_zoomfft.
# This may be replaced when dependencies are built.
