file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_zoomfft.dir/bench_ablation_zoomfft.cpp.o"
  "CMakeFiles/bench_ablation_zoomfft.dir/bench_ablation_zoomfft.cpp.o.d"
  "bench_ablation_zoomfft"
  "bench_ablation_zoomfft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_zoomfft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
