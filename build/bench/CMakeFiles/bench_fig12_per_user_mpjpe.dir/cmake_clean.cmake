file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_per_user_mpjpe.dir/bench_fig12_per_user_mpjpe.cpp.o"
  "CMakeFiles/bench_fig12_per_user_mpjpe.dir/bench_fig12_per_user_mpjpe.cpp.o.d"
  "bench_fig12_per_user_mpjpe"
  "bench_fig12_per_user_mpjpe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_per_user_mpjpe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
