file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_pck_curve.dir/bench_fig14_pck_curve.cpp.o"
  "CMakeFiles/bench_fig14_pck_curve.dir/bench_fig14_pck_curve.cpp.o.d"
  "bench_fig14_pck_curve"
  "bench_fig14_pck_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_pck_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
