# Empty compiler generated dependencies file for bench_fig14_pck_curve.
# This may be replaced when dependencies are built.
