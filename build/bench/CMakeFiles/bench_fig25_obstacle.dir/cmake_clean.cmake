file(REMOVE_RECURSE
  "CMakeFiles/bench_fig25_obstacle.dir/bench_fig25_obstacle.cpp.o"
  "CMakeFiles/bench_fig25_obstacle.dir/bench_fig25_obstacle.cpp.o.d"
  "bench_fig25_obstacle"
  "bench_fig25_obstacle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig25_obstacle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
