# Empty compiler generated dependencies file for bench_fig19_angle.
# This may be replaced when dependencies are built.
