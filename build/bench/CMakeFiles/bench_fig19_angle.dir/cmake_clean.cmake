file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_angle.dir/bench_fig19_angle.cpp.o"
  "CMakeFiles/bench_fig19_angle.dir/bench_fig19_angle.cpp.o.d"
  "bench_fig19_angle"
  "bench_fig19_angle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_angle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
