# Empty compiler generated dependencies file for bench_ablation_segments.
# This may be replaced when dependencies are built.
