file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_17_distance.dir/bench_fig16_17_distance.cpp.o"
  "CMakeFiles/bench_fig16_17_distance.dir/bench_fig16_17_distance.cpp.o.d"
  "bench_fig16_17_distance"
  "bench_fig16_17_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_17_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
