# Empty dependencies file for bench_fig24_environment.
# This may be replaced when dependencies are built.
