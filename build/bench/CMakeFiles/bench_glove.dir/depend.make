# Empty dependencies file for bench_glove.
# This may be replaced when dependencies are built.
