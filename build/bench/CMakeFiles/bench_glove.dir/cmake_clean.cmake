file(REMOVE_RECURSE
  "CMakeFiles/bench_glove.dir/bench_glove.cpp.o"
  "CMakeFiles/bench_glove.dir/bench_glove.cpp.o.d"
  "bench_glove"
  "bench_glove.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_glove.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
