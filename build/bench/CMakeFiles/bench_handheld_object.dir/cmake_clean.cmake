file(REMOVE_RECURSE
  "CMakeFiles/bench_handheld_object.dir/bench_handheld_object.cpp.o"
  "CMakeFiles/bench_handheld_object.dir/bench_handheld_object.cpp.o.d"
  "bench_handheld_object"
  "bench_handheld_object.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_handheld_object.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
