# Empty dependencies file for bench_handheld_object.
# This may be replaced when dependencies are built.
