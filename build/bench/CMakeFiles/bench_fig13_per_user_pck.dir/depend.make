# Empty dependencies file for bench_fig13_per_user_pck.
# This may be replaced when dependencies are built.
