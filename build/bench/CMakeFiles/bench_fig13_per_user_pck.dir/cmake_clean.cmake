file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_per_user_pck.dir/bench_fig13_per_user_pck.cpp.o"
  "CMakeFiles/bench_fig13_per_user_pck.dir/bench_fig13_per_user_pck.cpp.o.d"
  "bench_fig13_per_user_pck"
  "bench_fig13_per_user_pck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_per_user_pck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
