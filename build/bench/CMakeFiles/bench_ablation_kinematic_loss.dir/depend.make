# Empty dependencies file for bench_ablation_kinematic_loss.
# This may be replaced when dependencies are built.
