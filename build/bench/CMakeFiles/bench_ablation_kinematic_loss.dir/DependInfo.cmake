
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_kinematic_loss.cpp" "bench/CMakeFiles/bench_ablation_kinematic_loss.dir/bench_ablation_kinematic_loss.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_kinematic_loss.dir/bench_ablation_kinematic_loss.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mmhand_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmhand_pose.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmhand_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmhand_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmhand_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmhand_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmhand_hand.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmhand_radar.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmhand_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmhand_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
