file(REMOVE_RECURSE
  "CMakeFiles/mesh_export.dir/mesh_export.cpp.o"
  "CMakeFiles/mesh_export.dir/mesh_export.cpp.o.d"
  "mesh_export"
  "mesh_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
