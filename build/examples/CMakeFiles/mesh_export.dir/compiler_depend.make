# Empty compiler generated dependencies file for mesh_export.
# This may be replaced when dependencies are built.
