file(REMOVE_RECURSE
  "CMakeFiles/occlusion_demo.dir/occlusion_demo.cpp.o"
  "CMakeFiles/occlusion_demo.dir/occlusion_demo.cpp.o.d"
  "occlusion_demo"
  "occlusion_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occlusion_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
