# Empty compiler generated dependencies file for occlusion_demo.
# This may be replaced when dependencies are built.
