# Empty dependencies file for occlusion_demo.
# This may be replaced when dependencies are built.
