file(REMOVE_RECURSE
  "CMakeFiles/point_cloud_viewer.dir/point_cloud_viewer.cpp.o"
  "CMakeFiles/point_cloud_viewer.dir/point_cloud_viewer.cpp.o.d"
  "point_cloud_viewer"
  "point_cloud_viewer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/point_cloud_viewer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
