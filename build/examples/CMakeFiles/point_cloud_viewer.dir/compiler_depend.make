# Empty compiler generated dependencies file for point_cloud_viewer.
# This may be replaced when dependencies are built.
