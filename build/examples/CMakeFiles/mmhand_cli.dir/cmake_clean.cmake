file(REMOVE_RECURSE
  "CMakeFiles/mmhand_cli.dir/mmhand_cli.cpp.o"
  "CMakeFiles/mmhand_cli.dir/mmhand_cli.cpp.o.d"
  "mmhand_cli"
  "mmhand_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmhand_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
