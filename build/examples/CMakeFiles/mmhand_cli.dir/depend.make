# Empty dependencies file for mmhand_cli.
# This may be replaced when dependencies are built.
