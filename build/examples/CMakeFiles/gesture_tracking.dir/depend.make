# Empty dependencies file for gesture_tracking.
# This may be replaced when dependencies are built.
