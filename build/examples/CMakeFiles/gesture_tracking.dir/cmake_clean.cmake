file(REMOVE_RECURSE
  "CMakeFiles/gesture_tracking.dir/gesture_tracking.cpp.o"
  "CMakeFiles/gesture_tracking.dir/gesture_tracking.cpp.o.d"
  "gesture_tracking"
  "gesture_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gesture_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
