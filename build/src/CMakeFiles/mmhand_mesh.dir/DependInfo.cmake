
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mmhand/mesh/hand_template.cpp" "src/CMakeFiles/mmhand_mesh.dir/mmhand/mesh/hand_template.cpp.o" "gcc" "src/CMakeFiles/mmhand_mesh.dir/mmhand/mesh/hand_template.cpp.o.d"
  "/root/repo/src/mmhand/mesh/mano_model.cpp" "src/CMakeFiles/mmhand_mesh.dir/mmhand/mesh/mano_model.cpp.o" "gcc" "src/CMakeFiles/mmhand_mesh.dir/mmhand/mesh/mano_model.cpp.o.d"
  "/root/repo/src/mmhand/mesh/obj_export.cpp" "src/CMakeFiles/mmhand_mesh.dir/mmhand/mesh/obj_export.cpp.o" "gcc" "src/CMakeFiles/mmhand_mesh.dir/mmhand/mesh/obj_export.cpp.o.d"
  "/root/repo/src/mmhand/mesh/reconstruction.cpp" "src/CMakeFiles/mmhand_mesh.dir/mmhand/mesh/reconstruction.cpp.o" "gcc" "src/CMakeFiles/mmhand_mesh.dir/mmhand/mesh/reconstruction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mmhand_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmhand_hand.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmhand_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
