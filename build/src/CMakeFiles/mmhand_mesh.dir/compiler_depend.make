# Empty compiler generated dependencies file for mmhand_mesh.
# This may be replaced when dependencies are built.
