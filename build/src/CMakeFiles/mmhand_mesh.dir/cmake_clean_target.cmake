file(REMOVE_RECURSE
  "libmmhand_mesh.a"
)
