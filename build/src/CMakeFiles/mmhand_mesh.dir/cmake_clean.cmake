file(REMOVE_RECURSE
  "CMakeFiles/mmhand_mesh.dir/mmhand/mesh/hand_template.cpp.o"
  "CMakeFiles/mmhand_mesh.dir/mmhand/mesh/hand_template.cpp.o.d"
  "CMakeFiles/mmhand_mesh.dir/mmhand/mesh/mano_model.cpp.o"
  "CMakeFiles/mmhand_mesh.dir/mmhand/mesh/mano_model.cpp.o.d"
  "CMakeFiles/mmhand_mesh.dir/mmhand/mesh/obj_export.cpp.o"
  "CMakeFiles/mmhand_mesh.dir/mmhand/mesh/obj_export.cpp.o.d"
  "CMakeFiles/mmhand_mesh.dir/mmhand/mesh/reconstruction.cpp.o"
  "CMakeFiles/mmhand_mesh.dir/mmhand/mesh/reconstruction.cpp.o.d"
  "libmmhand_mesh.a"
  "libmmhand_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmhand_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
