file(REMOVE_RECURSE
  "CMakeFiles/mmhand_baselines.dir/mmhand/baselines/cascade.cpp.o"
  "CMakeFiles/mmhand_baselines.dir/mmhand/baselines/cascade.cpp.o.d"
  "CMakeFiles/mmhand_baselines.dir/mmhand/baselines/datasets.cpp.o"
  "CMakeFiles/mmhand_baselines.dir/mmhand/baselines/datasets.cpp.o.d"
  "CMakeFiles/mmhand_baselines.dir/mmhand/baselines/deepprior.cpp.o"
  "CMakeFiles/mmhand_baselines.dir/mmhand/baselines/deepprior.cpp.o.d"
  "CMakeFiles/mmhand_baselines.dir/mmhand/baselines/depth_render.cpp.o"
  "CMakeFiles/mmhand_baselines.dir/mmhand/baselines/depth_render.cpp.o.d"
  "CMakeFiles/mmhand_baselines.dir/mmhand/baselines/handfi.cpp.o"
  "CMakeFiles/mmhand_baselines.dir/mmhand/baselines/handfi.cpp.o.d"
  "CMakeFiles/mmhand_baselines.dir/mmhand/baselines/mm4arm.cpp.o"
  "CMakeFiles/mmhand_baselines.dir/mmhand/baselines/mm4arm.cpp.o.d"
  "libmmhand_baselines.a"
  "libmmhand_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmhand_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
