file(REMOVE_RECURSE
  "libmmhand_baselines.a"
)
