
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mmhand/baselines/cascade.cpp" "src/CMakeFiles/mmhand_baselines.dir/mmhand/baselines/cascade.cpp.o" "gcc" "src/CMakeFiles/mmhand_baselines.dir/mmhand/baselines/cascade.cpp.o.d"
  "/root/repo/src/mmhand/baselines/datasets.cpp" "src/CMakeFiles/mmhand_baselines.dir/mmhand/baselines/datasets.cpp.o" "gcc" "src/CMakeFiles/mmhand_baselines.dir/mmhand/baselines/datasets.cpp.o.d"
  "/root/repo/src/mmhand/baselines/deepprior.cpp" "src/CMakeFiles/mmhand_baselines.dir/mmhand/baselines/deepprior.cpp.o" "gcc" "src/CMakeFiles/mmhand_baselines.dir/mmhand/baselines/deepprior.cpp.o.d"
  "/root/repo/src/mmhand/baselines/depth_render.cpp" "src/CMakeFiles/mmhand_baselines.dir/mmhand/baselines/depth_render.cpp.o" "gcc" "src/CMakeFiles/mmhand_baselines.dir/mmhand/baselines/depth_render.cpp.o.d"
  "/root/repo/src/mmhand/baselines/handfi.cpp" "src/CMakeFiles/mmhand_baselines.dir/mmhand/baselines/handfi.cpp.o" "gcc" "src/CMakeFiles/mmhand_baselines.dir/mmhand/baselines/handfi.cpp.o.d"
  "/root/repo/src/mmhand/baselines/mm4arm.cpp" "src/CMakeFiles/mmhand_baselines.dir/mmhand/baselines/mm4arm.cpp.o" "gcc" "src/CMakeFiles/mmhand_baselines.dir/mmhand/baselines/mm4arm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mmhand_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmhand_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmhand_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmhand_radar.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmhand_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmhand_hand.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmhand_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
