# Empty compiler generated dependencies file for mmhand_baselines.
# This may be replaced when dependencies are built.
