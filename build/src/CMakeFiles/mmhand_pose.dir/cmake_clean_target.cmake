file(REMOVE_RECURSE
  "libmmhand_pose.a"
)
