file(REMOVE_RECURSE
  "CMakeFiles/mmhand_pose.dir/mmhand/pose/gesture_classifier.cpp.o"
  "CMakeFiles/mmhand_pose.dir/mmhand/pose/gesture_classifier.cpp.o.d"
  "CMakeFiles/mmhand_pose.dir/mmhand/pose/inference.cpp.o"
  "CMakeFiles/mmhand_pose.dir/mmhand/pose/inference.cpp.o.d"
  "CMakeFiles/mmhand_pose.dir/mmhand/pose/joint_model.cpp.o"
  "CMakeFiles/mmhand_pose.dir/mmhand/pose/joint_model.cpp.o.d"
  "CMakeFiles/mmhand_pose.dir/mmhand/pose/kinematic_loss.cpp.o"
  "CMakeFiles/mmhand_pose.dir/mmhand/pose/kinematic_loss.cpp.o.d"
  "CMakeFiles/mmhand_pose.dir/mmhand/pose/mmspacenet.cpp.o"
  "CMakeFiles/mmhand_pose.dir/mmhand/pose/mmspacenet.cpp.o.d"
  "CMakeFiles/mmhand_pose.dir/mmhand/pose/samples.cpp.o"
  "CMakeFiles/mmhand_pose.dir/mmhand/pose/samples.cpp.o.d"
  "CMakeFiles/mmhand_pose.dir/mmhand/pose/sequence_matcher.cpp.o"
  "CMakeFiles/mmhand_pose.dir/mmhand/pose/sequence_matcher.cpp.o.d"
  "CMakeFiles/mmhand_pose.dir/mmhand/pose/smoothing.cpp.o"
  "CMakeFiles/mmhand_pose.dir/mmhand/pose/smoothing.cpp.o.d"
  "CMakeFiles/mmhand_pose.dir/mmhand/pose/trainer.cpp.o"
  "CMakeFiles/mmhand_pose.dir/mmhand/pose/trainer.cpp.o.d"
  "libmmhand_pose.a"
  "libmmhand_pose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmhand_pose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
