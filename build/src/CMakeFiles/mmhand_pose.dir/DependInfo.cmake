
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mmhand/pose/gesture_classifier.cpp" "src/CMakeFiles/mmhand_pose.dir/mmhand/pose/gesture_classifier.cpp.o" "gcc" "src/CMakeFiles/mmhand_pose.dir/mmhand/pose/gesture_classifier.cpp.o.d"
  "/root/repo/src/mmhand/pose/inference.cpp" "src/CMakeFiles/mmhand_pose.dir/mmhand/pose/inference.cpp.o" "gcc" "src/CMakeFiles/mmhand_pose.dir/mmhand/pose/inference.cpp.o.d"
  "/root/repo/src/mmhand/pose/joint_model.cpp" "src/CMakeFiles/mmhand_pose.dir/mmhand/pose/joint_model.cpp.o" "gcc" "src/CMakeFiles/mmhand_pose.dir/mmhand/pose/joint_model.cpp.o.d"
  "/root/repo/src/mmhand/pose/kinematic_loss.cpp" "src/CMakeFiles/mmhand_pose.dir/mmhand/pose/kinematic_loss.cpp.o" "gcc" "src/CMakeFiles/mmhand_pose.dir/mmhand/pose/kinematic_loss.cpp.o.d"
  "/root/repo/src/mmhand/pose/mmspacenet.cpp" "src/CMakeFiles/mmhand_pose.dir/mmhand/pose/mmspacenet.cpp.o" "gcc" "src/CMakeFiles/mmhand_pose.dir/mmhand/pose/mmspacenet.cpp.o.d"
  "/root/repo/src/mmhand/pose/samples.cpp" "src/CMakeFiles/mmhand_pose.dir/mmhand/pose/samples.cpp.o" "gcc" "src/CMakeFiles/mmhand_pose.dir/mmhand/pose/samples.cpp.o.d"
  "/root/repo/src/mmhand/pose/sequence_matcher.cpp" "src/CMakeFiles/mmhand_pose.dir/mmhand/pose/sequence_matcher.cpp.o" "gcc" "src/CMakeFiles/mmhand_pose.dir/mmhand/pose/sequence_matcher.cpp.o.d"
  "/root/repo/src/mmhand/pose/smoothing.cpp" "src/CMakeFiles/mmhand_pose.dir/mmhand/pose/smoothing.cpp.o" "gcc" "src/CMakeFiles/mmhand_pose.dir/mmhand/pose/smoothing.cpp.o.d"
  "/root/repo/src/mmhand/pose/trainer.cpp" "src/CMakeFiles/mmhand_pose.dir/mmhand/pose/trainer.cpp.o" "gcc" "src/CMakeFiles/mmhand_pose.dir/mmhand/pose/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mmhand_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmhand_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmhand_radar.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmhand_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmhand_hand.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmhand_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
