# Empty compiler generated dependencies file for mmhand_pose.
# This may be replaced when dependencies are built.
