file(REMOVE_RECURSE
  "CMakeFiles/mmhand_nn.dir/mmhand/nn/activations.cpp.o"
  "CMakeFiles/mmhand_nn.dir/mmhand/nn/activations.cpp.o.d"
  "CMakeFiles/mmhand_nn.dir/mmhand/nn/attention.cpp.o"
  "CMakeFiles/mmhand_nn.dir/mmhand/nn/attention.cpp.o.d"
  "CMakeFiles/mmhand_nn.dir/mmhand/nn/conv2d.cpp.o"
  "CMakeFiles/mmhand_nn.dir/mmhand/nn/conv2d.cpp.o.d"
  "CMakeFiles/mmhand_nn.dir/mmhand/nn/dropout.cpp.o"
  "CMakeFiles/mmhand_nn.dir/mmhand/nn/dropout.cpp.o.d"
  "CMakeFiles/mmhand_nn.dir/mmhand/nn/gradcheck.cpp.o"
  "CMakeFiles/mmhand_nn.dir/mmhand/nn/gradcheck.cpp.o.d"
  "CMakeFiles/mmhand_nn.dir/mmhand/nn/gru.cpp.o"
  "CMakeFiles/mmhand_nn.dir/mmhand/nn/gru.cpp.o.d"
  "CMakeFiles/mmhand_nn.dir/mmhand/nn/layer.cpp.o"
  "CMakeFiles/mmhand_nn.dir/mmhand/nn/layer.cpp.o.d"
  "CMakeFiles/mmhand_nn.dir/mmhand/nn/layer_norm.cpp.o"
  "CMakeFiles/mmhand_nn.dir/mmhand/nn/layer_norm.cpp.o.d"
  "CMakeFiles/mmhand_nn.dir/mmhand/nn/linear.cpp.o"
  "CMakeFiles/mmhand_nn.dir/mmhand/nn/linear.cpp.o.d"
  "CMakeFiles/mmhand_nn.dir/mmhand/nn/loss.cpp.o"
  "CMakeFiles/mmhand_nn.dir/mmhand/nn/loss.cpp.o.d"
  "CMakeFiles/mmhand_nn.dir/mmhand/nn/lstm.cpp.o"
  "CMakeFiles/mmhand_nn.dir/mmhand/nn/lstm.cpp.o.d"
  "CMakeFiles/mmhand_nn.dir/mmhand/nn/optimizer.cpp.o"
  "CMakeFiles/mmhand_nn.dir/mmhand/nn/optimizer.cpp.o.d"
  "CMakeFiles/mmhand_nn.dir/mmhand/nn/sequential.cpp.o"
  "CMakeFiles/mmhand_nn.dir/mmhand/nn/sequential.cpp.o.d"
  "CMakeFiles/mmhand_nn.dir/mmhand/nn/tensor.cpp.o"
  "CMakeFiles/mmhand_nn.dir/mmhand/nn/tensor.cpp.o.d"
  "libmmhand_nn.a"
  "libmmhand_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmhand_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
