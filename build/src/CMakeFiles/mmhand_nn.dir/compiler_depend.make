# Empty compiler generated dependencies file for mmhand_nn.
# This may be replaced when dependencies are built.
