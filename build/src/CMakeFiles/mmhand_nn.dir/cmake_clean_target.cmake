file(REMOVE_RECURSE
  "libmmhand_nn.a"
)
