
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mmhand/nn/activations.cpp" "src/CMakeFiles/mmhand_nn.dir/mmhand/nn/activations.cpp.o" "gcc" "src/CMakeFiles/mmhand_nn.dir/mmhand/nn/activations.cpp.o.d"
  "/root/repo/src/mmhand/nn/attention.cpp" "src/CMakeFiles/mmhand_nn.dir/mmhand/nn/attention.cpp.o" "gcc" "src/CMakeFiles/mmhand_nn.dir/mmhand/nn/attention.cpp.o.d"
  "/root/repo/src/mmhand/nn/conv2d.cpp" "src/CMakeFiles/mmhand_nn.dir/mmhand/nn/conv2d.cpp.o" "gcc" "src/CMakeFiles/mmhand_nn.dir/mmhand/nn/conv2d.cpp.o.d"
  "/root/repo/src/mmhand/nn/dropout.cpp" "src/CMakeFiles/mmhand_nn.dir/mmhand/nn/dropout.cpp.o" "gcc" "src/CMakeFiles/mmhand_nn.dir/mmhand/nn/dropout.cpp.o.d"
  "/root/repo/src/mmhand/nn/gradcheck.cpp" "src/CMakeFiles/mmhand_nn.dir/mmhand/nn/gradcheck.cpp.o" "gcc" "src/CMakeFiles/mmhand_nn.dir/mmhand/nn/gradcheck.cpp.o.d"
  "/root/repo/src/mmhand/nn/gru.cpp" "src/CMakeFiles/mmhand_nn.dir/mmhand/nn/gru.cpp.o" "gcc" "src/CMakeFiles/mmhand_nn.dir/mmhand/nn/gru.cpp.o.d"
  "/root/repo/src/mmhand/nn/layer.cpp" "src/CMakeFiles/mmhand_nn.dir/mmhand/nn/layer.cpp.o" "gcc" "src/CMakeFiles/mmhand_nn.dir/mmhand/nn/layer.cpp.o.d"
  "/root/repo/src/mmhand/nn/layer_norm.cpp" "src/CMakeFiles/mmhand_nn.dir/mmhand/nn/layer_norm.cpp.o" "gcc" "src/CMakeFiles/mmhand_nn.dir/mmhand/nn/layer_norm.cpp.o.d"
  "/root/repo/src/mmhand/nn/linear.cpp" "src/CMakeFiles/mmhand_nn.dir/mmhand/nn/linear.cpp.o" "gcc" "src/CMakeFiles/mmhand_nn.dir/mmhand/nn/linear.cpp.o.d"
  "/root/repo/src/mmhand/nn/loss.cpp" "src/CMakeFiles/mmhand_nn.dir/mmhand/nn/loss.cpp.o" "gcc" "src/CMakeFiles/mmhand_nn.dir/mmhand/nn/loss.cpp.o.d"
  "/root/repo/src/mmhand/nn/lstm.cpp" "src/CMakeFiles/mmhand_nn.dir/mmhand/nn/lstm.cpp.o" "gcc" "src/CMakeFiles/mmhand_nn.dir/mmhand/nn/lstm.cpp.o.d"
  "/root/repo/src/mmhand/nn/optimizer.cpp" "src/CMakeFiles/mmhand_nn.dir/mmhand/nn/optimizer.cpp.o" "gcc" "src/CMakeFiles/mmhand_nn.dir/mmhand/nn/optimizer.cpp.o.d"
  "/root/repo/src/mmhand/nn/sequential.cpp" "src/CMakeFiles/mmhand_nn.dir/mmhand/nn/sequential.cpp.o" "gcc" "src/CMakeFiles/mmhand_nn.dir/mmhand/nn/sequential.cpp.o.d"
  "/root/repo/src/mmhand/nn/tensor.cpp" "src/CMakeFiles/mmhand_nn.dir/mmhand/nn/tensor.cpp.o" "gcc" "src/CMakeFiles/mmhand_nn.dir/mmhand/nn/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mmhand_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
