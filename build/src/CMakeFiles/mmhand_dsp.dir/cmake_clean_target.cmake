file(REMOVE_RECURSE
  "libmmhand_dsp.a"
)
