
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mmhand/dsp/butterworth.cpp" "src/CMakeFiles/mmhand_dsp.dir/mmhand/dsp/butterworth.cpp.o" "gcc" "src/CMakeFiles/mmhand_dsp.dir/mmhand/dsp/butterworth.cpp.o.d"
  "/root/repo/src/mmhand/dsp/cfar.cpp" "src/CMakeFiles/mmhand_dsp.dir/mmhand/dsp/cfar.cpp.o" "gcc" "src/CMakeFiles/mmhand_dsp.dir/mmhand/dsp/cfar.cpp.o.d"
  "/root/repo/src/mmhand/dsp/fft.cpp" "src/CMakeFiles/mmhand_dsp.dir/mmhand/dsp/fft.cpp.o" "gcc" "src/CMakeFiles/mmhand_dsp.dir/mmhand/dsp/fft.cpp.o.d"
  "/root/repo/src/mmhand/dsp/spectrum.cpp" "src/CMakeFiles/mmhand_dsp.dir/mmhand/dsp/spectrum.cpp.o" "gcc" "src/CMakeFiles/mmhand_dsp.dir/mmhand/dsp/spectrum.cpp.o.d"
  "/root/repo/src/mmhand/dsp/window.cpp" "src/CMakeFiles/mmhand_dsp.dir/mmhand/dsp/window.cpp.o" "gcc" "src/CMakeFiles/mmhand_dsp.dir/mmhand/dsp/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mmhand_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
