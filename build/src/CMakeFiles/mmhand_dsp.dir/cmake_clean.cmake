file(REMOVE_RECURSE
  "CMakeFiles/mmhand_dsp.dir/mmhand/dsp/butterworth.cpp.o"
  "CMakeFiles/mmhand_dsp.dir/mmhand/dsp/butterworth.cpp.o.d"
  "CMakeFiles/mmhand_dsp.dir/mmhand/dsp/cfar.cpp.o"
  "CMakeFiles/mmhand_dsp.dir/mmhand/dsp/cfar.cpp.o.d"
  "CMakeFiles/mmhand_dsp.dir/mmhand/dsp/fft.cpp.o"
  "CMakeFiles/mmhand_dsp.dir/mmhand/dsp/fft.cpp.o.d"
  "CMakeFiles/mmhand_dsp.dir/mmhand/dsp/spectrum.cpp.o"
  "CMakeFiles/mmhand_dsp.dir/mmhand/dsp/spectrum.cpp.o.d"
  "CMakeFiles/mmhand_dsp.dir/mmhand/dsp/window.cpp.o"
  "CMakeFiles/mmhand_dsp.dir/mmhand/dsp/window.cpp.o.d"
  "libmmhand_dsp.a"
  "libmmhand_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmhand_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
