# Empty dependencies file for mmhand_dsp.
# This may be replaced when dependencies are built.
