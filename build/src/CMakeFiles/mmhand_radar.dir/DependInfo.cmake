
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mmhand/radar/antenna_array.cpp" "src/CMakeFiles/mmhand_radar.dir/mmhand/radar/antenna_array.cpp.o" "gcc" "src/CMakeFiles/mmhand_radar.dir/mmhand/radar/antenna_array.cpp.o.d"
  "/root/repo/src/mmhand/radar/if_simulator.cpp" "src/CMakeFiles/mmhand_radar.dir/mmhand/radar/if_simulator.cpp.o" "gcc" "src/CMakeFiles/mmhand_radar.dir/mmhand/radar/if_simulator.cpp.o.d"
  "/root/repo/src/mmhand/radar/pipeline.cpp" "src/CMakeFiles/mmhand_radar.dir/mmhand/radar/pipeline.cpp.o" "gcc" "src/CMakeFiles/mmhand_radar.dir/mmhand/radar/pipeline.cpp.o.d"
  "/root/repo/src/mmhand/radar/point_cloud.cpp" "src/CMakeFiles/mmhand_radar.dir/mmhand/radar/point_cloud.cpp.o" "gcc" "src/CMakeFiles/mmhand_radar.dir/mmhand/radar/point_cloud.cpp.o.d"
  "/root/repo/src/mmhand/radar/radar_cube.cpp" "src/CMakeFiles/mmhand_radar.dir/mmhand/radar/radar_cube.cpp.o" "gcc" "src/CMakeFiles/mmhand_radar.dir/mmhand/radar/radar_cube.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mmhand_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmhand_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
