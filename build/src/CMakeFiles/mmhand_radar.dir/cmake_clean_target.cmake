file(REMOVE_RECURSE
  "libmmhand_radar.a"
)
