file(REMOVE_RECURSE
  "CMakeFiles/mmhand_radar.dir/mmhand/radar/antenna_array.cpp.o"
  "CMakeFiles/mmhand_radar.dir/mmhand/radar/antenna_array.cpp.o.d"
  "CMakeFiles/mmhand_radar.dir/mmhand/radar/if_simulator.cpp.o"
  "CMakeFiles/mmhand_radar.dir/mmhand/radar/if_simulator.cpp.o.d"
  "CMakeFiles/mmhand_radar.dir/mmhand/radar/pipeline.cpp.o"
  "CMakeFiles/mmhand_radar.dir/mmhand/radar/pipeline.cpp.o.d"
  "CMakeFiles/mmhand_radar.dir/mmhand/radar/point_cloud.cpp.o"
  "CMakeFiles/mmhand_radar.dir/mmhand/radar/point_cloud.cpp.o.d"
  "CMakeFiles/mmhand_radar.dir/mmhand/radar/radar_cube.cpp.o"
  "CMakeFiles/mmhand_radar.dir/mmhand/radar/radar_cube.cpp.o.d"
  "libmmhand_radar.a"
  "libmmhand_radar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmhand_radar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
