# Empty dependencies file for mmhand_radar.
# This may be replaced when dependencies are built.
