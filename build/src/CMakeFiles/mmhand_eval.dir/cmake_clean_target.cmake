file(REMOVE_RECURSE
  "libmmhand_eval.a"
)
