
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mmhand/eval/csv_export.cpp" "src/CMakeFiles/mmhand_eval.dir/mmhand/eval/csv_export.cpp.o" "gcc" "src/CMakeFiles/mmhand_eval.dir/mmhand/eval/csv_export.cpp.o.d"
  "/root/repo/src/mmhand/eval/experiment.cpp" "src/CMakeFiles/mmhand_eval.dir/mmhand/eval/experiment.cpp.o" "gcc" "src/CMakeFiles/mmhand_eval.dir/mmhand/eval/experiment.cpp.o.d"
  "/root/repo/src/mmhand/eval/metrics.cpp" "src/CMakeFiles/mmhand_eval.dir/mmhand/eval/metrics.cpp.o" "gcc" "src/CMakeFiles/mmhand_eval.dir/mmhand/eval/metrics.cpp.o.d"
  "/root/repo/src/mmhand/eval/model_cache.cpp" "src/CMakeFiles/mmhand_eval.dir/mmhand/eval/model_cache.cpp.o" "gcc" "src/CMakeFiles/mmhand_eval.dir/mmhand/eval/model_cache.cpp.o.d"
  "/root/repo/src/mmhand/eval/table_printer.cpp" "src/CMakeFiles/mmhand_eval.dir/mmhand/eval/table_printer.cpp.o" "gcc" "src/CMakeFiles/mmhand_eval.dir/mmhand/eval/table_printer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mmhand_pose.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmhand_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmhand_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmhand_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmhand_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmhand_hand.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmhand_radar.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmhand_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmhand_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
