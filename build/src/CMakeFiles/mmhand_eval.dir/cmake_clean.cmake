file(REMOVE_RECURSE
  "CMakeFiles/mmhand_eval.dir/mmhand/eval/csv_export.cpp.o"
  "CMakeFiles/mmhand_eval.dir/mmhand/eval/csv_export.cpp.o.d"
  "CMakeFiles/mmhand_eval.dir/mmhand/eval/experiment.cpp.o"
  "CMakeFiles/mmhand_eval.dir/mmhand/eval/experiment.cpp.o.d"
  "CMakeFiles/mmhand_eval.dir/mmhand/eval/metrics.cpp.o"
  "CMakeFiles/mmhand_eval.dir/mmhand/eval/metrics.cpp.o.d"
  "CMakeFiles/mmhand_eval.dir/mmhand/eval/model_cache.cpp.o"
  "CMakeFiles/mmhand_eval.dir/mmhand/eval/model_cache.cpp.o.d"
  "CMakeFiles/mmhand_eval.dir/mmhand/eval/table_printer.cpp.o"
  "CMakeFiles/mmhand_eval.dir/mmhand/eval/table_printer.cpp.o.d"
  "libmmhand_eval.a"
  "libmmhand_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmhand_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
