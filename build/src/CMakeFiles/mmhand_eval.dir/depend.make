# Empty dependencies file for mmhand_eval.
# This may be replaced when dependencies are built.
