file(REMOVE_RECURSE
  "libmmhand_sim.a"
)
