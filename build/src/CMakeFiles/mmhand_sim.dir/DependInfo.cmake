
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mmhand/sim/clutter.cpp" "src/CMakeFiles/mmhand_sim.dir/mmhand/sim/clutter.cpp.o" "gcc" "src/CMakeFiles/mmhand_sim.dir/mmhand/sim/clutter.cpp.o.d"
  "/root/repo/src/mmhand/sim/dataset.cpp" "src/CMakeFiles/mmhand_sim.dir/mmhand/sim/dataset.cpp.o" "gcc" "src/CMakeFiles/mmhand_sim.dir/mmhand/sim/dataset.cpp.o.d"
  "/root/repo/src/mmhand/sim/effects.cpp" "src/CMakeFiles/mmhand_sim.dir/mmhand/sim/effects.cpp.o" "gcc" "src/CMakeFiles/mmhand_sim.dir/mmhand/sim/effects.cpp.o.d"
  "/root/repo/src/mmhand/sim/label_noise.cpp" "src/CMakeFiles/mmhand_sim.dir/mmhand/sim/label_noise.cpp.o" "gcc" "src/CMakeFiles/mmhand_sim.dir/mmhand/sim/label_noise.cpp.o.d"
  "/root/repo/src/mmhand/sim/scene.cpp" "src/CMakeFiles/mmhand_sim.dir/mmhand/sim/scene.cpp.o" "gcc" "src/CMakeFiles/mmhand_sim.dir/mmhand/sim/scene.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mmhand_radar.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmhand_hand.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmhand_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmhand_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
