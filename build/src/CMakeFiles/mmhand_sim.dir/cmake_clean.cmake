file(REMOVE_RECURSE
  "CMakeFiles/mmhand_sim.dir/mmhand/sim/clutter.cpp.o"
  "CMakeFiles/mmhand_sim.dir/mmhand/sim/clutter.cpp.o.d"
  "CMakeFiles/mmhand_sim.dir/mmhand/sim/dataset.cpp.o"
  "CMakeFiles/mmhand_sim.dir/mmhand/sim/dataset.cpp.o.d"
  "CMakeFiles/mmhand_sim.dir/mmhand/sim/effects.cpp.o"
  "CMakeFiles/mmhand_sim.dir/mmhand/sim/effects.cpp.o.d"
  "CMakeFiles/mmhand_sim.dir/mmhand/sim/label_noise.cpp.o"
  "CMakeFiles/mmhand_sim.dir/mmhand/sim/label_noise.cpp.o.d"
  "CMakeFiles/mmhand_sim.dir/mmhand/sim/scene.cpp.o"
  "CMakeFiles/mmhand_sim.dir/mmhand/sim/scene.cpp.o.d"
  "libmmhand_sim.a"
  "libmmhand_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmhand_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
