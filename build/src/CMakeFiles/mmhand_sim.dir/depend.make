# Empty dependencies file for mmhand_sim.
# This may be replaced when dependencies are built.
