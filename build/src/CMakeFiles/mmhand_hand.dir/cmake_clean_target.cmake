file(REMOVE_RECURSE
  "libmmhand_hand.a"
)
