# Empty dependencies file for mmhand_hand.
# This may be replaced when dependencies are built.
