file(REMOVE_RECURSE
  "CMakeFiles/mmhand_hand.dir/mmhand/hand/gesture.cpp.o"
  "CMakeFiles/mmhand_hand.dir/mmhand/hand/gesture.cpp.o.d"
  "CMakeFiles/mmhand_hand.dir/mmhand/hand/hand_profile.cpp.o"
  "CMakeFiles/mmhand_hand.dir/mmhand/hand/hand_profile.cpp.o.d"
  "CMakeFiles/mmhand_hand.dir/mmhand/hand/kinematics.cpp.o"
  "CMakeFiles/mmhand_hand.dir/mmhand/hand/kinematics.cpp.o.d"
  "CMakeFiles/mmhand_hand.dir/mmhand/hand/skeleton.cpp.o"
  "CMakeFiles/mmhand_hand.dir/mmhand/hand/skeleton.cpp.o.d"
  "libmmhand_hand.a"
  "libmmhand_hand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmhand_hand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
