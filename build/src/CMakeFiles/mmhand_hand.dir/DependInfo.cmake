
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mmhand/hand/gesture.cpp" "src/CMakeFiles/mmhand_hand.dir/mmhand/hand/gesture.cpp.o" "gcc" "src/CMakeFiles/mmhand_hand.dir/mmhand/hand/gesture.cpp.o.d"
  "/root/repo/src/mmhand/hand/hand_profile.cpp" "src/CMakeFiles/mmhand_hand.dir/mmhand/hand/hand_profile.cpp.o" "gcc" "src/CMakeFiles/mmhand_hand.dir/mmhand/hand/hand_profile.cpp.o.d"
  "/root/repo/src/mmhand/hand/kinematics.cpp" "src/CMakeFiles/mmhand_hand.dir/mmhand/hand/kinematics.cpp.o" "gcc" "src/CMakeFiles/mmhand_hand.dir/mmhand/hand/kinematics.cpp.o.d"
  "/root/repo/src/mmhand/hand/skeleton.cpp" "src/CMakeFiles/mmhand_hand.dir/mmhand/hand/skeleton.cpp.o" "gcc" "src/CMakeFiles/mmhand_hand.dir/mmhand/hand/skeleton.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mmhand_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
