# Empty compiler generated dependencies file for mmhand_common.
# This may be replaced when dependencies are built.
