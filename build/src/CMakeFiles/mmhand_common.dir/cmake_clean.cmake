file(REMOVE_RECURSE
  "CMakeFiles/mmhand_common.dir/mmhand/common/quaternion.cpp.o"
  "CMakeFiles/mmhand_common.dir/mmhand/common/quaternion.cpp.o.d"
  "CMakeFiles/mmhand_common.dir/mmhand/common/rng.cpp.o"
  "CMakeFiles/mmhand_common.dir/mmhand/common/rng.cpp.o.d"
  "CMakeFiles/mmhand_common.dir/mmhand/common/serialize.cpp.o"
  "CMakeFiles/mmhand_common.dir/mmhand/common/serialize.cpp.o.d"
  "CMakeFiles/mmhand_common.dir/mmhand/common/stats.cpp.o"
  "CMakeFiles/mmhand_common.dir/mmhand/common/stats.cpp.o.d"
  "libmmhand_common.a"
  "libmmhand_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmhand_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
