file(REMOVE_RECURSE
  "libmmhand_common.a"
)
