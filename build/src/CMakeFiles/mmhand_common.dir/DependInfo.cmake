
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mmhand/common/quaternion.cpp" "src/CMakeFiles/mmhand_common.dir/mmhand/common/quaternion.cpp.o" "gcc" "src/CMakeFiles/mmhand_common.dir/mmhand/common/quaternion.cpp.o.d"
  "/root/repo/src/mmhand/common/rng.cpp" "src/CMakeFiles/mmhand_common.dir/mmhand/common/rng.cpp.o" "gcc" "src/CMakeFiles/mmhand_common.dir/mmhand/common/rng.cpp.o.d"
  "/root/repo/src/mmhand/common/serialize.cpp" "src/CMakeFiles/mmhand_common.dir/mmhand/common/serialize.cpp.o" "gcc" "src/CMakeFiles/mmhand_common.dir/mmhand/common/serialize.cpp.o.d"
  "/root/repo/src/mmhand/common/stats.cpp" "src/CMakeFiles/mmhand_common.dir/mmhand/common/stats.cpp.o" "gcc" "src/CMakeFiles/mmhand_common.dir/mmhand/common/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
