# Empty dependencies file for test_hand.
# This may be replaced when dependencies are built.
