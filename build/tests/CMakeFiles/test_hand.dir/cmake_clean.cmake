file(REMOVE_RECURSE
  "CMakeFiles/test_hand.dir/test_hand.cpp.o"
  "CMakeFiles/test_hand.dir/test_hand.cpp.o.d"
  "test_hand"
  "test_hand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
