# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_common "/root/repo/build/tests/test_common")
set_tests_properties(test_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;10;mmhand_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_dsp "/root/repo/build/tests/test_dsp")
set_tests_properties(test_dsp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;11;mmhand_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_radar "/root/repo/build/tests/test_radar")
set_tests_properties(test_radar PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;12;mmhand_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_hand "/root/repo/build/tests/test_hand")
set_tests_properties(test_hand PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;13;mmhand_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_nn "/root/repo/build/tests/test_nn")
set_tests_properties(test_nn PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;14;mmhand_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sim "/root/repo/build/tests/test_sim")
set_tests_properties(test_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;15;mmhand_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_pose "/root/repo/build/tests/test_pose")
set_tests_properties(test_pose PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;16;mmhand_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_mesh "/root/repo/build/tests/test_mesh")
set_tests_properties(test_mesh PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;17;mmhand_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_baselines "/root/repo/build/tests/test_baselines")
set_tests_properties(test_baselines PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;18;mmhand_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_eval "/root/repo/build/tests/test_eval")
set_tests_properties(test_eval PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;19;mmhand_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_extensions "/root/repo/build/tests/test_extensions")
set_tests_properties(test_extensions PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;20;mmhand_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_detection "/root/repo/build/tests/test_detection")
set_tests_properties(test_detection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;21;mmhand_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_properties "/root/repo/build/tests/test_properties")
set_tests_properties(test_properties PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;22;mmhand_test;/root/repo/tests/CMakeLists.txt;0;")
