#!/usr/bin/env bash
# Telemetry gate: proves the continuous-telemetry subsystem end to end.
#
# Pass 1 runs `mmhand_cli predict` with the 50 ms sampler attached and
# asserts the stream is real: >= 2 interval records, each parseable JSON
# with windowed p50/p95/p99 stage stats, plus an OpenMetrics exposition
# that survives scripts/check_openmetrics.py and an mmhand_top render.
#
# Pass 2 is the crash story: a predict run with the flight recorder mapped
# is SIGKILLed mid-stream, and the binary ring it leaves in the page cache
# must render (via mmhand_top --flight) with the killed run's in-flight
# span visible.  The torn telemetry JSONL tail must not poison the
# parseable prefix.  The kill is retried a few times because a SIGKILL can
# in principle land in the microsecond gap between two spans.
#
# Usage: scripts/check_telemetry.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j --target mmhand_cli mmhand_top

CLI="$BUILD_DIR/examples/mmhand_cli"
TOP="$BUILD_DIR/tools/mmhand_top"
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

echo "== pass 1: sampled predict run (50 ms interval) =="
MMHAND_TELEMETRY="50,out=$WORK/tel.jsonl,om=$WORK/tel.om,budgets=scripts/latency_budgets.json" \
  "$CLI" predict --fast --cache "$WORK/cache" --seconds 1.0 --repeat 5

python3 - "$WORK/tel.jsonl" <<'PY'
import json, sys
intervals = 0
staged = 0
with open(sys.argv[1], encoding="utf-8") as f:
    for line in f:
        rec = json.loads(line)          # every line must parse: clean writer
        if rec.get("kind") != "telemetry":
            continue
        intervals += 1
        for name, h in rec.get("stages", {}).items():
            staged += 1
            for field in ("count", "mean_us", "p50_us", "p95_us", "p99_us"):
                assert field in h, f"stage {name} missing {field}"
            assert h["p50_us"] <= h["p95_us"] <= h["p99_us"], \
                f"stage {name}: percentiles not monotone"
assert intervals >= 2, f"expected >= 2 telemetry intervals, got {intervals}"
assert staged > 0, "no windowed stage stats in any interval"
print(f"telemetry stream ok: {intervals} intervals, {staged} stage windows")
PY

python3 scripts/check_openmetrics.py "$WORK/tel.om" \
  --require mmhand_events,mmhand_stage_latency_us,mmhand_telemetry_intervals

"$TOP" "$WORK/tel.jsonl" --last 20 > "$WORK/top.txt"
grep -q "p95 trend" "$WORK/top.txt"
echo "mmhand_top render ok"

echo "== pass 2: SIGKILL mid-stream, flight ring must tell the story =="
attempt=0
inflight=0
while [ "$attempt" -lt 3 ] && [ "$inflight" -eq 0 ]; do
  attempt=$((attempt + 1))
  rm -f "$WORK/tel2.jsonl" "$WORK/flight.ring"
  MMHAND_TELEMETRY="25,out=$WORK/tel2.jsonl" \
  MMHAND_FLIGHT="$WORK/flight.ring,slots=512" \
    "$CLI" predict --fast --cache "$WORK/cache" --seconds 1.0 --repeat 2000 &
  pid=$!
  for _ in $(seq 1 600); do
    lines=$(wc -l < "$WORK/tel2.jsonl" 2>/dev/null || echo 0)
    [ "$lines" -ge 3 ] && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.05
  done
  if ! kill -9 "$pid" 2>/dev/null; then
    echo "victim run exited before the kill landed; retrying" >&2
    wait "$pid" 2>/dev/null || true
    continue
  fi
  wait "$pid" 2>/dev/null || true
  "$TOP" --flight "$WORK/flight.ring" > "$WORK/flight.txt"
  grep -q "end of flight dump" "$WORK/flight.txt"
  if grep -q "in-flight:" "$WORK/flight.txt"; then inflight=1; fi
done
if [ "$inflight" -ne 1 ]; then
  echo "flight render never showed an in-flight span after $attempt kills" >&2
  exit 1
fi
echo "flight ring rendered with in-flight span (attempt $attempt)"

python3 - "$WORK/tel2.jsonl" <<'PY'
import json, sys
good = bad = 0
with open(sys.argv[1], encoding="utf-8") as f:
    for line in f:
        try:
            json.loads(line)
            good += 1
        except ValueError:
            bad += 1   # at most the torn final line from the kill
assert good >= 1, "no parseable telemetry lines survived the kill"
assert bad <= 1, f"{bad} unparseable lines: tearing beyond the final line"
print(f"killed-run stream ok: {good} parseable lines, {bad} torn tail")
PY

echo "Telemetry check clean."
