#!/usr/bin/env bash
# Shared driver behind the sanitizer gates.  check_asan.sh,
# check_tsan.sh, and check_ubsan.sh are thin wrappers over this; the
# only things that differ per sanitizer are the compile flags, which
# targets are worth building, and the ctest filter — so those live in
# one case table instead of three drifting copies.
#
# Usage: scripts/check_sanitizer.sh {asan|tsan|ubsan} [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

# No braces in the message: a literal `}` would terminate the ${1:?...}
# expansion early.
MODE=${1:?usage: check_sanitizer.sh asan|tsan|ubsan [build-dir]}
BUILD_DIR=${2:-build-$MODE}

# TARGETS/FILTER empty means "everything".
case "$MODE" in
  asan)
    SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
    TARGETS=""
    FILTER=""
    LABEL="ASan/UBSan"
    ;;
  tsan)
    # TSan's interest is the pool and the layers that share buffers
    # across it, so only the threaded suites are built and run.
    SAN_FLAGS="-fsanitize=thread"
    TARGETS="test_common test_parallel test_radar test_obs test_serve"
    FILTER="test_common|test_parallel|test_radar|test_obs|test_serve"
    LABEL="TSan"
    ;;
  ubsan)
    # UBSan alone (no ASan) keeps shadow-memory overhead out so this
    # gate stays fast enough to run the full suite on every PR.
    SAN_FLAGS="-fsanitize=undefined -fno-sanitize-recover=all"
    TARGETS=""
    FILTER=""
    LABEL="UBSan"
    ;;
  *)
    echo "check_sanitizer.sh: unknown mode '$MODE'" >&2
    exit 2
    ;;
esac

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="$SAN_FLAGS -O1 -g -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"
if [ -n "$TARGETS" ]; then
  # shellcheck disable=SC2086
  cmake --build "$BUILD_DIR" -j --target $TARGETS
else
  cmake --build "$BUILD_DIR" -j
fi

# MMHAND_THREADS forces real pool threads even on small CI boxes so the
# sanitizers see the same cross-thread buffer traffic production does.
if [ -n "$FILTER" ]; then
  (cd "$BUILD_DIR" && MMHAND_THREADS=4 ctest --output-on-failure -R "$FILTER")
else
  (cd "$BUILD_DIR" && MMHAND_THREADS=4 ctest --output-on-failure)
fi
echo "$LABEL run clean."
