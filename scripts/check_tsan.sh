#!/usr/bin/env bash
# Builds the threaded tests under ThreadSanitizer and runs them.
#
# The parallel execution layer (mmhand/common/parallel) promises data-race
# freedom: every parallel_for index writes a disjoint output slice.  TSan
# verifies that promise on the pool itself and on the radar/NN hot paths,
# plus the obs layer's concurrent metric recording (test_obs hammers one
# histogram from 8 threads while the telemetry sampler snapshots it).
#
# Usage: scripts/check_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build-tsan}

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -O1 -g -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build "$BUILD_DIR" -j --target test_common test_parallel \
  test_radar test_obs

# MMHAND_THREADS forces real pool threads even on small CI boxes so TSan
# actually sees cross-thread traffic.
(cd "$BUILD_DIR" &&
 MMHAND_THREADS=4 ctest --output-on-failure \
   -R 'test_common|test_parallel|test_radar|test_obs')
echo "TSan run clean."
