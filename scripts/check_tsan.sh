#!/usr/bin/env bash
# Builds the threaded tests under ThreadSanitizer and runs them.
#
# The parallel execution layer (mmhand/common/parallel) promises data-race
# freedom: every parallel_for index writes a disjoint output slice.  TSan
# verifies that promise on the pool itself and on the radar/NN hot paths,
# plus the obs layer's concurrent metric recording (test_obs hammers one
# histogram from 8 threads while the telemetry sampler snapshots it).
#
# Usage: scripts/check_tsan.sh [build-dir]   (default: build-tsan)
exec "$(dirname "$0")/check_sanitizer.sh" tsan "${1:-build-tsan}"
