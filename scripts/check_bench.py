#!/usr/bin/env python3
"""Bench regression gate: compare a fresh BENCH_throughput.json against the
committed baseline.

Usage:
    scripts/check_bench.py [--current BENCH_throughput.json]
                           [--baseline bench/baseline/BENCH_throughput.baseline.json]
                           [--tolerance 0.5] [--strict] [--ops a,b,...]

Compares per-op/per-thread-count timings from ``results[]`` and per-stage
mean latencies from ``stage_breakdown.histograms``.  A regression is a
current value more than ``(1 + tolerance)`` times the baseline.  The default
tolerance is deliberately generous (50%) because these are wall-clock
micro-benches on shared CI hardware; tighten it on a quiet box.

Both JSON files carry a ``simd`` field naming the vector ISA the run
dispatched to (scalar/avx2/neon).  When the two runs used different ISAs the
comparison is meaningless — a scalar run on an AVX2 baseline would "regress"
by design — so the script refuses it (exit 2).  Re-run the bench with
``MMHAND_SIMD=<baseline isa>`` or refresh the baseline instead.

``--ops`` restricts the comparison to a comma-separated set of names: op
rows whose op matches exactly, and stage histograms whose name starts with a
listed prefix (e.g. ``--ops process_frame,radar/``).

``--append-history bench/history.jsonl`` additionally appends one
``{"kind": "bench_history", ...}`` record summarizing the current run, so
trends survive baseline refreshes.  Ops are keyed ``op@<N>t+<isa>`` —  the
ISA suffix keeps scalar and vector runs as separate series, because merging
them would fabricate a trend.  ``--timestamp``/``--note`` stamp the record
(timestamp defaults to now; pass it explicitly for reproducible records).
``tools/mmhand_report --history bench/history.jsonl`` renders the trend.

Default mode only reports.  With ``--strict`` the exit code is non-zero when
any regression is found, so CI can gate on it.  Missing/extra ops are
reported but never fail the gate (benches evolve).
"""

import argparse
import json
import os
import sys
import time


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def results_table(doc):
    """{(op, threads): ms} from the results[] array."""
    table = {}
    for row in doc.get("results", []):
        key = (row.get("op", "?"), int(row.get("threads", 0)))
        table[key] = float(row["ms"])
    return table


def stage_table(doc):
    """{stage: mean_us} from stage_breakdown histograms."""
    hists = doc.get("stage_breakdown", {}).get("histograms", {})
    return {name: float(h["mean"]) for name, h in hists.items() if "mean" in h}


def filter_table(table, ops):
    """Keeps op rows matching a name exactly and stages matching a prefix."""
    if not ops:
        return table

    def keep(key):
        name = key[0] if isinstance(key, tuple) else key
        return any(name == f or name.startswith(f) for f in ops)

    return {k: v for k, v in table.items() if keep(k)}


def compare(kind, baseline, current, tolerance, report):
    """Appends (severity, message) rows to report; returns regression count."""
    regressions = 0
    for key in sorted(baseline):
        label = f"{key[0]} @{key[1]}t" if isinstance(key, tuple) else key
        if key not in current:
            report.append(("note", f"{kind} {label}: missing from current run"))
            continue
        base, cur = baseline[key], current[key]
        if base <= 0.0:
            continue
        ratio = cur / base
        line = f"{kind} {label}: {base:.4f} -> {cur:.4f} ({ratio:.2f}x)"
        if ratio > 1.0 + tolerance:
            regressions += 1
            report.append(("REGRESSION", line))
        elif ratio < 1.0 / (1.0 + tolerance):
            report.append(("improved", line))
        else:
            report.append(("ok", line))
    for key in sorted(set(current) - set(baseline)):
        label = f"{key[0]} @{key[1]}t" if isinstance(key, tuple) else key
        report.append(("note", f"{kind} {label}: new (no baseline)"))
    return regressions


def history_record(doc, timestamp, note):
    """One JSONL trend record from a bench run document."""
    isa = doc.get("simd")
    ops = {}
    for (op, threads), ms in sorted(results_table(doc).items()):
        key = f"{op}@{threads}t" + (f"+{isa}" if isa else "")
        ops[key] = ms
    record = {
        "kind": "bench_history",
        "timestamp": timestamp,
        "simd": isa,
        "hardware_concurrency": doc.get("hardware_concurrency"),
        "ops": ops,
    }
    # Provenance (git_sha / hostname / cpu_model) travels with every
    # history record: a trend mixing machines or commits is then visible
    # in the record itself instead of silently misleading.
    provenance = doc.get("provenance")
    if isinstance(provenance, dict):
        record["provenance"] = provenance
    if note:
        record["note"] = note
    overhead = doc.get("telemetry_overhead")
    if isinstance(overhead, dict) and "ratio" in overhead:
        record["telemetry_overhead_ratio"] = overhead["ratio"]
    return record


def append_history(path, doc, timestamp, note):
    record = history_record(doc, timestamp, note)
    with open(path, "a", encoding="utf-8") as f:
        f.write(json.dumps(record, sort_keys=True) + "\n")
    print(f"check_bench: appended {len(record['ops'])} op timings to {path}")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", default="BENCH_throughput.json")
    parser.add_argument(
        "--baseline",
        default=os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "bench", "baseline", "BENCH_throughput.baseline.json"),
    )
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="allowed fractional slowdown (default 0.5 = +50%%)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero when a regression is found")
    parser.add_argument("--ops", default="",
                        help="comma-separated op names / stage prefixes to"
                             " compare (default: everything)")
    parser.add_argument("--append-history", default="", metavar="JSONL",
                        help="append a bench_history record for the current"
                             " run to this JSONL file")
    parser.add_argument("--timestamp", type=int, default=None,
                        help="unix seconds to stamp the history record with"
                             " (default: current time)")
    parser.add_argument("--note", default="",
                        help="free-form annotation for the history record")
    args = parser.parse_args()
    ops = [o for o in (s.strip() for s in args.ops.split(",")) if o]

    try:
        baseline = load(args.baseline)
    except OSError as e:
        print(f"check_bench: cannot read baseline: {e}", file=sys.stderr)
        return 2
    try:
        current = load(args.current)
    except OSError as e:
        print(f"check_bench: cannot read current: {e}", file=sys.stderr)
        return 2

    base_isa = baseline.get("simd")
    cur_isa = current.get("simd")
    if base_isa is not None and cur_isa is not None and base_isa != cur_isa:
        print(f"check_bench: refusing cross-ISA comparison: baseline ran"
              f" simd={base_isa}, current ran simd={cur_isa}; rerun with"
              f" MMHAND_SIMD={base_isa} or refresh the baseline",
              file=sys.stderr)
        return 2
    if base_isa is None or cur_isa is None:
        print("check_bench: note: missing 'simd' field in"
              f" {'baseline' if base_isa is None else 'current'} run"
              " (pre-SIMD bench JSON); ISA match not verified")

    report = []
    regressions = 0
    regressions += compare("op",
                           filter_table(results_table(baseline), ops),
                           filter_table(results_table(current), ops),
                           args.tolerance, report)
    regressions += compare("stage",
                           filter_table(stage_table(baseline), ops),
                           filter_table(stage_table(current), ops),
                           args.tolerance, report)

    print(f"check_bench: baseline={args.baseline}")
    print(f"check_bench: current={args.current} tolerance=+{args.tolerance:.0%}")
    for severity, line in report:
        print(f"  [{severity}] {line}")
    if args.append_history:
        timestamp = args.timestamp if args.timestamp is not None \
            else int(time.time())
        try:
            append_history(args.append_history, current, timestamp, args.note)
        except OSError as e:
            print(f"check_bench: cannot append history: {e}", file=sys.stderr)
            return 2
    if regressions:
        print(f"check_bench: {regressions} regression(s) beyond tolerance")
        return 1 if args.strict else 0
    print("check_bench: no regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
