#!/usr/bin/env bash
# Full regeneration: build, test, and reproduce every table/figure.
# The first bench run trains the fold models into ./mmhand_cache (several
# minutes on one core); later runs load the cache.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/bench_*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "===== $(basename "$b") ====="
  "$b"
done 2>&1 | tee bench_output.txt
