#!/usr/bin/env bash
# Full regeneration: build, test, and reproduce every table/figure.
# The first bench run trains the fold models into ./mmhand_cache (several
# minutes on one core); later runs load the cache.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

echo "===== static analysis ====="
cmake --build build --target mmhand_lint lint_headers
build/tools/mmhand_lint --root .
build/tools/mmhand_lint --root . --json > mmhand_lint.json
build/tools/mmhand_lint --root . --purity --json > mmhand_purity.json
build/tools/mmhand_lint --root . --purity

ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/bench_*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "===== $(basename "$b") ====="
  if [ "$(basename "$b")" = bench_fig26_latency ]; then
    # Capture a per-stage Chrome trace from the latency bench and
    # sanity-check the JSON (see README "Observability").
    MMHAND_TRACE=mmhand_trace.json "$b"
  else
    "$b"
  fi
done 2>&1 | tee bench_output.txt

echo "===== trace sanity check ====="
if command -v python3 > /dev/null; then
  python3 - <<'EOF'
import json
with open("mmhand_trace.json") as f:
    trace = json.load(f)
names = {e["name"] for e in trace["traceEvents"]}
required = {"radar/bandpass", "radar/range_fft", "radar/doppler_fft",
            "radar/zoom_angle_fft", "pose/joint_regression",
            "mesh/reconstruct"}
missing = required - names
assert not missing, f"trace is missing spans: {sorted(missing)}"
print(f"mmhand_trace.json OK: {len(trace['traceEvents'])} events, "
      f"{len(names)} distinct spans")
EOF
else
  grep -q '"traceEvents"' mmhand_trace.json
  for span in radar/bandpass radar/range_fft radar/doppler_fft \
              radar/zoom_angle_fft pose/joint_regression mesh/reconstruct; do
    grep -q "\"$span\"" mmhand_trace.json || {
      echo "trace missing span $span" >&2
      exit 1
    }
  done
  echo "mmhand_trace.json OK (grep check; python3 unavailable)"
fi

echo "===== run-log capture ====="
# Benches above reuse ./mmhand_cache, so force a fresh (fast-protocol)
# training run into a throwaway cache to exercise MMHAND_RUN_LOG.
runlog_cache="$(mktemp -d)"
trap 'rm -rf "$runlog_cache"' EXIT
rm -f mmhand_runlog.jsonl
MMHAND_RUN_LOG=mmhand_runlog.jsonl MMHAND_NUMERIC_CHECK=warn \
  MMHAND_METRICS=mmhand_metrics.json \
  build/examples/mmhand_cli train --fast --cache "$runlog_cache"
if command -v python3 > /dev/null; then
  python3 - <<'EOF'
import json
records = []
with open("mmhand_runlog.jsonl") as f:
    for line in f:
        if line.strip():
            records.append(json.loads(line))
assert records, "run log is empty"
assert records[0]["kind"] == "manifest", f"first record: {records[0]['kind']}"
epochs = [r for r in records if r["kind"] == "epoch"]
assert epochs, "run log has no epoch records"
assert all("grad_norm" in r and "params" in r for r in epochs)
print(f"mmhand_runlog.jsonl OK: {len(records)} records, "
      f"{len(epochs)} epochs, final loss {epochs[-1]['loss']:.4f}")
EOF
else
  head -n 1 mmhand_runlog.jsonl | grep -q '"kind": "manifest"'
  grep -q '"kind": "epoch"' mmhand_runlog.jsonl
  echo "mmhand_runlog.jsonl OK (grep check; python3 unavailable)"
fi

echo "===== purity check ====="
# Static closure walk plus the runtime interposer probe at 1 and 4
# threads (see scripts/check_purity.sh and DESIGN.md §12).
scripts/check_purity.sh build
build/tools/mmhand_purity_probe --json > mmhand_probe.json

echo "===== serving check ====="
# Seeded chaos soak (32 sessions, churn+burst+stall, 2x overload),
# 40x overload shedding under both policies, drained-server bitwise
# parity at 1 and 4 threads, and a SIGKILL flight-ring render
# (see scripts/check_serve.sh and DESIGN.md §13).
scripts/check_serve.sh build
# Keep one soak + parity report for the merged markdown below.
build/tools/mmhand_soak soak --sessions 8 --overload 2 --seconds 1.0 \
  --json mmhand_soak.json
build/tools/mmhand_soak parity --threads 4 --json mmhand_parity.json

echo "===== merged report ====="
build/tools/mmhand_report --runlog mmhand_runlog.jsonl \
  --metrics mmhand_metrics.json --bench BENCH_throughput.json \
  --bench BENCH_serve.json \
  --serve mmhand_soak.json --serve mmhand_parity.json \
  --lint mmhand_lint.json --purity mmhand_purity.json \
  --probe mmhand_probe.json --history bench/history.jsonl -o mmhand_report.md

echo "===== telemetry check ====="
# Sampler stream + OpenMetrics export + SIGKILL-survivable flight ring
# (see scripts/check_telemetry.sh and README "Observability").
scripts/check_telemetry.sh build

echo "===== profiling check ====="
# Flow-linked Chrome trace at 4 threads (one frame record per anchor) and
# MMHAND_PMU graceful clock-only degradation + roofline report
# (see scripts/check_prof.sh).
scripts/check_prof.sh build

echo "===== crash recovery check ====="
# Kill a checkpointed fast training mid-epoch and require the resumed run
# to reproduce the uninterrupted fold models bit-for-bit.
scripts/check_recovery.sh build

echo "===== bench regression check (report-only) ====="
if command -v python3 > /dev/null; then
  python3 scripts/check_bench.py --append-history bench/history.jsonl \
    --note "run_all"
  python3 scripts/check_bench.py --current BENCH_serve.json \
    --baseline bench/baseline/BENCH_serve.baseline.json \
    --append-history bench/history.jsonl --note "run_all serve"
else
  echo "python3 unavailable; skipping check_bench"
fi
