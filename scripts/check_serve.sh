#!/usr/bin/env bash
# Serving gate: proves the streaming multi-session layer end to end.
#
# Leg 1 is the seeded chaos soak from the acceptance bar: 32 sessions at
# 2x the steady frame rate with MMHAND_FAULT churn/burst/stall injecting
# client chaos.  mmhand_soak exits non-zero unless every invariant holds
# (bounded queues, zero starved sessions, clean drain, p99 deadline
# compliance); the JSON is re-checked here so a silent driver bug can't
# fake a pass.
#
# Leg 2 pushes far past capacity (40x) under both shedding policies and
# requires the control plane to actually engage: drop_oldest must shed,
# reject_new must provoke client retries — while the invariants above
# still hold.
#
# Leg 3 is drained-server parity: every pose a drained server delivered
# must be bitwise identical to the offline pipeline at 1 thread and at 4
# threads (cross-session batching and the tensor pool must not perturb a
# single ULP).
#
# Leg 4 is the crash story: a long soak with the flight recorder mapped
# is SIGKILLed mid-batch and the binary ring it leaves behind must
# render (mmhand_top --flight) with serve-layer spans in the history.
#
# Usage: scripts/check_serve.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j --target mmhand_soak mmhand_top

SOAK="$BUILD_DIR/tools/mmhand_soak"
TOP="$BUILD_DIR/tools/mmhand_top"
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

FAULTS="churn=0.01,burst=0.05,stall=0.02,seed=9"

echo "== leg 1: seeded chaos soak (32 sessions, 2x overload) =="
MMHAND_FAULT="$FAULTS" \
  "$SOAK" soak --sessions 32 --overload 2 --seconds 2.0 \
  --json "$WORK/soak.json"
python3 - "$WORK/soak.json" <<'PY'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["pass"], f"soak invariants failed: {r}"
assert r["starved_sessions"] == 0, r
assert r["bounded"] and r["drained"], r
assert r["churns"] + r["bursts"] + r["stalls"] > 0, \
    f"fault injection never fired: {r}"
print(f"chaos soak ok: {r['completed']} windows, compliance "
      f"{r['compliance']:.4f}, p99 {r['e2e_p99_us']:.0f} us, "
      f"{r['churns']} churns / {r['bursts']} bursts / {r['stalls']} stalls")
PY

echo "== leg 2: overload control plane must engage (40x) =="
MMHAND_FAULT="$FAULTS" \
  "$SOAK" soak --sessions 8 --overload 40 --seconds 1.5 \
  --policy drop_oldest --json "$WORK/shed.json"
MMHAND_FAULT="$FAULTS" \
  "$SOAK" soak --sessions 8 --overload 40 --seconds 1.5 \
  --policy reject_new --json "$WORK/reject.json"
python3 - "$WORK/shed.json" "$WORK/reject.json" <<'PY'
import json, sys
shed = json.load(open(sys.argv[1]))
rej = json.load(open(sys.argv[2]))
assert shed["pass"], f"drop_oldest leg failed invariants: {shed}"
assert rej["pass"], f"reject_new leg failed invariants: {rej}"
assert shed["shed"] > 0, f"drop_oldest never shed at 40x: {shed}"
assert rej["retries"] > 0, f"reject_new never provoked a retry: {rej}"
print(f"overload ok: drop_oldest shed {shed['shed']} windows "
      f"(degraded {shed['degraded']}), reject_new drove "
      f"{rej['retries']} client retries")
PY

echo "== leg 3: drained-server bitwise parity (1 and 4 threads) =="
for t in 1 4; do
  "$SOAK" parity --sessions 3 --threads "$t" --json "$WORK/parity$t.json"
done
python3 - "$WORK/parity1.json" "$WORK/parity4.json" <<'PY'
import json, sys
for path in sys.argv[1:]:
    r = json.load(open(path))
    assert r["pass"] and r["mismatched"] == 0, f"parity broke: {r}"
    print(f"parity ok at {r['threads']} thread(s): {r['compared']} floats, "
          f"0 mismatches")
PY

echo "== leg 4: SIGKILL mid-soak, flight ring must tell the story =="
rendered=0
for attempt in 1 2 3; do
  rm -f "$WORK/flight.ring"
  MMHAND_FAULT="$FAULTS" MMHAND_FLIGHT="$WORK/flight.ring,slots=512" \
    "$SOAK" soak --sessions 8 --overload 4 --seconds 30 --json - &
  pid=$!
  sleep 1
  if ! kill -9 "$pid" 2>/dev/null; then
    echo "victim soak exited before the kill landed; retrying" >&2
    wait "$pid" 2>/dev/null || true
    continue
  fi
  wait "$pid" 2>/dev/null || true
  "$TOP" --flight "$WORK/flight.ring" > "$WORK/flight.txt" || continue
  if grep -q "end of flight dump" "$WORK/flight.txt" &&
     grep -q "serve/" "$WORK/flight.txt"; then
    rendered=1
    break
  fi
done
if [ "$rendered" -ne 1 ]; then
  echo "flight ring never rendered serve spans after a SIGKILL" >&2
  exit 1
fi
echo "flight ring rendered serve spans after SIGKILL (attempt $attempt)"

echo "Serve check clean."
