#!/usr/bin/env bash
# Static-analysis gate, exactly as the CI lint job runs it:
#
#   1. build tools/mmhand_lint and run it over src/ tests/ bench/ tools/
#   2. build the lint_headers target (every public header must compile
#      as its own translation unit)
#   3. run clang-tidy over src/mmhand/ when it is installed
#
# Usage: scripts/check_lint.sh [build-dir]   (default: build)
# Configures the build dir first if needed, so this works from a fresh
# checkout.  Exit status is non-zero on any lint finding.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}

[ -f "$BUILD_DIR/CMakeCache.txt" ] || cmake -B "$BUILD_DIR" -S . -G Ninja
cmake --build "$BUILD_DIR" -j --target mmhand_lint lint_headers

echo "===== mmhand_lint ====="
"$BUILD_DIR"/tools/mmhand_lint --root .

echo "===== mmhand_lint --purity ====="
"$BUILD_DIR"/tools/mmhand_lint --root . --purity

echo "===== clang-tidy ====="
if command -v clang-tidy > /dev/null; then
  # shellcheck disable=SC2046
  clang-tidy --quiet -p "$BUILD_DIR" $(find src/mmhand -name '*.cpp' | sort)
else
  echo "clang-tidy not found; skipping (install clang-tidy for the full gate)"
fi

echo "Lint gate clean."
