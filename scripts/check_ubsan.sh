#!/usr/bin/env bash
# Builds the full test suite under UndefinedBehaviorSanitizer and runs
# it, with every finding fatal (-fno-sanitize-recover=all).
#
# ASan already rides with UBSan in check_asan.sh; this standalone gate
# exists because UBSan without ASan's shadow memory is cheap enough to
# run the whole suite on every PR, and because signed-overflow /
# misaligned-load findings in the FFT and GEMM index arithmetic matter
# independently of memory safety.
#
# Usage: scripts/check_ubsan.sh [build-dir]   (default: build-ubsan)
exec "$(dirname "$0")/check_sanitizer.sh" ubsan "${1:-build-ubsan}"
