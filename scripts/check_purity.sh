#!/usr/bin/env bash
# Hot-path purity gate, both halves (DESIGN.md §12):
#
#   1. static:  mmhand_lint --purity walks the call graph from every
#      MMHAND_REALTIME root and fails on any reachable heap allocation,
#      lock, throw, stream I/O, or blocking syscall that is not on the
#      audited allowlist (scripts/purity_allowlist.json).
#   2. runtime: mmhand_purity_probe runs warmed-up steady-state radar
#      frames with the operator-new interposer (obs/alloc) counting and
#      fails if any frame allocates.  This closes the analyzer's blind
#      spots — value construction and function-pointer calls — and is
#      run at 1 and 4 pool threads so per-worker scratch warm-up is
#      covered both ways.
#
# Usage: scripts/check_purity.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}

[ -f "$BUILD_DIR/CMakeCache.txt" ] || cmake -B "$BUILD_DIR" -S . -G Ninja
cmake --build "$BUILD_DIR" -j --target mmhand_lint mmhand_purity_probe

echo "===== static purity (mmhand_lint --purity) ====="
"$BUILD_DIR"/tools/mmhand_lint --root . --purity

echo "===== runtime purity (interposer, 1 thread) ====="
MMHAND_THREADS=1 "$BUILD_DIR"/tools/mmhand_purity_probe

echo "===== runtime purity (interposer, 4 threads) ====="
MMHAND_THREADS=4 "$BUILD_DIR"/tools/mmhand_purity_probe

echo "Purity gate clean."
