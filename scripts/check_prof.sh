#!/usr/bin/env bash
# Profiling gate: proves the causal-tracing + PMU layer end to end.
#
# Pass 1 runs `mmhand_cli predict` at 4 threads with tracing and the
# telemetry sampler attached, then feeds the Chrome trace to
# scripts/check_trace.py: every cross-thread worker span must bind back
# to its frame's flow anchor, and the JSONL stream must carry exactly
# one kind:"frame" record per anchor.  The tail-attribution view
# (`mmhand_top --tail`) must render over those records.
#
# Pass 2 is the degradation story: MMHAND_PMU=1 must succeed whether or
# not the host lets us at perf_event_open (CI containers usually do
# not), and `mmhand_report --roofline` must render a per-stage table
# either way — with IPC columns when counters opened, with the
# clock-only note when they did not.  Unavailability is never an error.
#
# Usage: scripts/check_prof.sh [build-dir]   (default: build)
#
# Set PROF_ARTIFACTS=<dir> to keep the Chrome trace and roofline report
# after the run (CI uploads them); otherwise everything lives in a
# temporary directory and is removed on exit.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j --target mmhand_cli mmhand_top mmhand_report

CLI="$BUILD_DIR/examples/mmhand_cli"
TOP="$BUILD_DIR/tools/mmhand_top"
REPORT="$BUILD_DIR/tools/mmhand_report"
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

echo "== pass 1: traced 4-thread predict run, flow + frame records =="
MMHAND_THREADS=4 \
MMHAND_TRACE="$WORK/trace.json" \
MMHAND_TELEMETRY="50,out=$WORK/tel.jsonl" \
  "$CLI" predict --fast --cache "$WORK/cache" --seconds 1.0 --repeat 5

python3 scripts/check_trace.py "$WORK/trace.json" \
  --min-anchors 5 --min-bindings 4 --telemetry "$WORK/tel.jsonl"

"$TOP" "$WORK/tel.jsonl" --tail > "$WORK/tail.txt"
grep -q "frames" "$WORK/tail.txt"
grep -q "p95" "$WORK/tail.txt"
echo "tail attribution render ok"

echo "== pass 2: MMHAND_PMU=1 must degrade, never fail =="
MMHAND_PMU=1 \
MMHAND_METRICS="$WORK/metrics.json" \
  "$CLI" predict --fast --cache "$WORK/cache" --seconds 1.0 --repeat 5

"$REPORT" --metrics "$WORK/metrics.json" --roofline -o "$WORK/roofline.md"
grep -q "## Roofline" "$WORK/roofline.md"
if grep -q '"pmu/' "$WORK/metrics.json"; then
  grep -q "IPC" "$WORK/roofline.md"
  echo "roofline ok: hardware counters opened (IPC columns present)"
else
  grep -qi "clock-only" "$WORK/roofline.md"
  echo "roofline ok: perf_event unavailable, clock-only degradation"
fi

if [ -n "${PROF_ARTIFACTS:-}" ]; then
  mkdir -p "$PROF_ARTIFACTS"
  cp "$WORK/trace.json" "$WORK/tel.jsonl" "$WORK/tail.txt" \
     "$WORK/roofline.md" "$PROF_ARTIFACTS/"
  echo "artifacts kept in $PROF_ARTIFACTS"
fi

echo "Profiling check clean."
