#!/usr/bin/env bash
# Crash-recovery gate: trains the fast protocol once uninterrupted, then
# again with checkpointing enabled and a SIGKILL landed mid-training, then
# resumes the killed run and requires the fold models to come out bitwise
# identical to the uninterrupted reference.  This is the end-to-end proof
# behind DESIGN.md "Fault model & recovery": a dead training box costs the
# epochs since the last checkpoint, never correctness.
#
# Usage: scripts/check_recovery.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j --target mmhand_cli

CLI="$BUILD_DIR/examples/mmhand_cli"
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
REF="$WORK/ref"
KILLED="$WORK/killed"
CKPT="$WORK/ckpt"
mkdir -p "$REF" "$KILLED" "$CKPT"

echo "== reference run (uninterrupted, no checkpointing) =="
"$CLI" train --fast --cache "$REF"

echo "== victim run (SIGKILL once the first checkpoint lands) =="
MMHAND_CHECKPOINT_DIR="$CKPT" "$CLI" train --fast --cache "$KILLED" &
pid=$!
for _ in $(seq 1 600); do
  if compgen -G "$CKPT/*.ckpt" > /dev/null; then break; fi
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$pid" 2>/dev/null; then
  kill -9 "$pid"
  wait "$pid" 2>/dev/null || true
  echo "SIGKILL delivered mid-training (pid $pid)"
else
  wait "$pid" || true
  echo "warning: training finished before the kill landed;" \
       "the resume path was not exercised this run" >&2
fi

echo "== resume run =="
MMHAND_CHECKPOINT_DIR="$CKPT" "$CLI" train --fast --cache "$KILLED"

echo "== compare fold models against the reference =="
status=0
found=0
for ref_model in "$REF"/*.bin; do
  [ -f "$ref_model" ] || continue
  found=1
  name=$(basename "$ref_model")
  if cmp -s "$ref_model" "$KILLED/$name"; then
    echo "  $name: identical"
  else
    echo "  $name: DIFFERS (or missing) after kill-and-resume" >&2
    status=1
  fi
done
if [ "$found" -eq 0 ]; then
  echo "reference run produced no fold models" >&2
  status=1
fi
# A completed run must clean up its checkpoints.
if compgen -G "$CKPT/*.ckpt" > /dev/null; then
  echo "stale checkpoint left behind after a completed run" >&2
  status=1
fi
[ "$status" -eq 0 ] && echo "Recovery check clean."
exit "$status"
