#!/usr/bin/env python3
"""Validate the causal-flow structure of a Chrome trace written by
obs::write_trace.

Every frame context records one flow anchor (ph "s") inside its frame
slice, and every cross-thread worker span binds back with a ph "f"
("bp": "e") carrying the same id.  This gate asserts the linkage is
real, not decorative:

  * at least --min-anchors anchors and --min-bindings bindings exist;
  * every binding's id has an anchor, the anchor precedes it in time,
    and the binding landed on a different thread than the anchor
    (same-thread children are attributed via args, not flow events);
  * spans tagged with args.trace_id exist, and every tagged trace_id
    that bound a flow is one an anchor introduced.

With --telemetry, also cross-checks the run's JSONL stream: the number
of kind=="frame" records must equal the number of flow anchors (one
FrameScope == one anchor == one frame record).

Usage: check_trace.py TRACE.json [--min-anchors N] [--min-bindings N]
                      [--telemetry TEL.jsonl]
"""
import argparse
import json
import sys


def fail(msg: str) -> None:
    print(f"check_trace: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("trace")
    ap.add_argument("--min-anchors", type=int, default=1)
    ap.add_argument("--min-bindings", type=int, default=1)
    ap.add_argument("--telemetry")
    args = ap.parse_args()

    with open(args.trace, encoding="utf-8") as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("no traceEvents array")

    anchors = {}   # id -> (ts, tid)
    bindings = []  # (id, ts, tid)
    tagged = 0
    for e in events:
        ph = e.get("ph")
        if ph == "s":
            if e.get("cat") != "mmhand_flow":
                fail(f"flow anchor with cat {e.get('cat')!r}")
            anchors[e["id"]] = (e["ts"], e["tid"])
        elif ph == "f":
            if e.get("bp") != "e":
                fail("flow binding without bp:e (enclosing-slice binding)")
            bindings.append((e["id"], e["ts"], e["tid"]))
        if isinstance(e.get("args"), dict) and "trace_id" in e["args"]:
            tagged += 1

    if len(anchors) < args.min_anchors:
        fail(f"{len(anchors)} flow anchors, expected >= {args.min_anchors}")
    if len(bindings) < args.min_bindings:
        fail(f"{len(bindings)} flow bindings, expected >= {args.min_bindings}"
             " (is the run actually multi-threaded?)")
    if tagged == 0:
        fail("no spans tagged with args.trace_id")

    for fid, ts, tid in bindings:
        if fid not in anchors:
            fail(f"binding id {fid} has no anchor")
        a_ts, a_tid = anchors[fid]
        if ts < a_ts:
            fail(f"binding id {fid} at ts {ts} precedes its anchor at {a_ts}")
        if tid == a_tid:
            fail(f"binding id {fid} on the anchor's own thread {tid}")

    if args.telemetry:
        frames = 0
        with open(args.telemetry, encoding="utf-8") as f:
            for line in f:
                try:
                    rec = json.loads(line)
                except ValueError:
                    continue  # torn tail is the stream writer's contract
                if rec.get("kind") == "frame":
                    frames += 1
        if frames != len(anchors):
            fail(f"{frames} frame records vs {len(anchors)} flow anchors: "
                 "every FrameScope must emit exactly one of each")
        print(f"frame records consistent: {frames} == {len(anchors)} anchors")

    print(f"trace flow ok: {len(anchors)} anchors, {len(bindings)} bindings "
          f"across {len({t for _, _, t in bindings})} worker threads, "
          f"{tagged} tagged spans")


if __name__ == "__main__":
    main()
