#!/usr/bin/env bash
# Builds the full test suite under AddressSanitizer + UBSan and runs it.
#
# Complements scripts/check_tsan.sh: TSan proves the pool is race-free,
# ASan/UBSan prove the buffers it partitions are in bounds and that the
# FFT/GEMM index arithmetic never overflows or hits UB.  The obs layer's
# per-thread trace buffers and sharded metrics get exercised too (the
# obs tests force tracing/metrics on).
#
# Usage: scripts/check_asan.sh [build-dir]   (default: build-asan)
exec "$(dirname "$0")/check_sanitizer.sh" asan "${1:-build-asan}"
