#!/usr/bin/env bash
# Builds the full test suite under AddressSanitizer + UBSan and runs it.
#
# Complements scripts/check_tsan.sh: TSan proves the pool is race-free,
# ASan/UBSan prove the buffers it partitions are in bounds and that the
# FFT/GEMM index arithmetic never overflows or hits UB.  The obs layer's
# per-thread trace buffers and sharded metrics get exercised too (the
# obs tests force tracing/metrics on).
#
# Usage: scripts/check_asan.sh [build-dir]   (default: build-asan)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build-asan}

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -O1 -g -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
cmake --build "$BUILD_DIR" -j

# MMHAND_THREADS forces real pool threads so the sanitizers see the same
# cross-thread buffer traffic production does.
(cd "$BUILD_DIR" &&
 MMHAND_THREADS=4 ctest --output-on-failure)
echo "ASan/UBSan run clean."
