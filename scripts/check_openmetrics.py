#!/usr/bin/env python3
"""Validate an OpenMetrics text exposition produced by the telemetry sampler.

Usage:
    scripts/check_openmetrics.py FILE [--require fam1,fam2,...]

Checks the subset of the OpenMetrics 1.0 text format that
``src/mmhand/obs/telemetry.cpp`` emits:

  * every sample line parses as ``name{labels} value`` with a legal metric
    name, legal label names, and properly quoted/escaped label values;
  * every sample's family was declared by a preceding ``# TYPE`` line, and
    each family has at most one TYPE and one HELP line;
  * counter sample names end in ``_total``; summary samples are either the
    bare family with a ``quantile`` label or ``_count``/``_sum`` suffixed;
  * quantile labels parse as floats in [0, 1] and every value is a finite
    number (or the summary-quantile ``NaN`` for an empty window);
  * the file ends with exactly one ``# EOF`` line and nothing after it.

``--require`` additionally asserts the named families are present with at
least one sample each — CI uses this to prove the sampler actually exported
the mmhand metric families, not just a syntactically empty file.

Exit codes: 0 ok, 1 validation failure, 2 usage/IO error.
"""

import argparse
import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
TYPES = {"counter", "gauge", "summary", "histogram", "info", "unknown"}


def parse_labels(text, errors, where):
    """'k="v",k2="v2"' -> dict; appends to errors on malformed input."""
    labels = {}
    i = 0
    while i < len(text):
        m = re.match(r'([a-zA-Z_][a-zA-Z0-9_]*)="', text[i:])
        if not m:
            errors.append(f"{where}: bad label syntax at ...{text[i:]!r}")
            return labels
        name = m.group(1)
        i += m.end()
        value = []
        while i < len(text):
            c = text[i]
            if c == "\\":
                if i + 1 >= len(text) or text[i + 1] not in '\\"n':
                    errors.append(f"{where}: bad escape in label {name}")
                    return labels
                value.append({"\\": "\\", '"': '"', "n": "\n"}[text[i + 1]])
                i += 2
            elif c == '"':
                i += 1
                break
            else:
                value.append(c)
                i += 1
        else:
            errors.append(f"{where}: unterminated label value for {name}")
            return labels
        labels[name] = "".join(value)
        if i < len(text):
            if text[i] != ",":
                errors.append(f"{where}: expected ',' between labels")
                return labels
            i += 1
    return labels


def family_of(sample_name, declared):
    """Longest declared family the sample name belongs to, else None."""
    for suffix in ("", "_total", "_count", "_sum"):
        if suffix and sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
        elif suffix:
            continue
        else:
            base = sample_name
        if base in declared:
            return base
    return None


def validate(lines, require):
    errors = []
    declared = {}   # family -> type
    helped = set()
    samples = {}    # family -> count
    saw_eof = False
    for lineno, line in enumerate(lines, 1):
        where = f"line {lineno}"
        if saw_eof:
            errors.append(f"{where}: content after # EOF")
            break
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) != 4 or parts[3] not in TYPES:
                errors.append(f"{where}: malformed TYPE line")
                continue
            fam = parts[2]
            if not NAME_RE.match(fam):
                errors.append(f"{where}: bad family name {fam!r}")
            if fam in declared:
                errors.append(f"{where}: duplicate TYPE for {fam}")
            declared[fam] = parts[3]
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4:
                errors.append(f"{where}: malformed HELP line")
                continue
            if parts[2] in helped:
                errors.append(f"{where}: duplicate HELP for {parts[2]}")
            helped.add(parts[2])
            continue
        if line.startswith("#") or not line.strip():
            errors.append(f"{where}: unexpected comment/blank: {line!r}")
            continue

        m = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})? (\S+)$", line)
        if not m:
            errors.append(f"{where}: unparseable sample: {line!r}")
            continue
        name, label_text, value_text = m.group(1), m.group(2), m.group(3)
        labels = parse_labels(label_text, errors, where) if label_text else {}
        try:
            value = float(value_text)
        except ValueError:
            errors.append(f"{where}: non-numeric value {value_text!r}")
            continue
        for lname in labels:
            if not LABEL_NAME_RE.match(lname):
                errors.append(f"{where}: bad label name {lname!r}")

        fam = family_of(name, declared)
        if fam is None:
            errors.append(f"{where}: sample {name} has no preceding TYPE")
            continue
        samples[fam] = samples.get(fam, 0) + 1
        ftype = declared[fam]
        if ftype == "counter":
            if not name.endswith("_total"):
                errors.append(f"{where}: counter sample {name} lacks _total")
            if value < 0:
                errors.append(f"{where}: negative counter {name}")
        if ftype == "summary":
            if name == fam:
                if "quantile" not in labels:
                    errors.append(f"{where}: summary {name} lacks quantile")
                else:
                    try:
                        q = float(labels["quantile"])
                        if not 0.0 <= q <= 1.0:
                            raise ValueError
                    except ValueError:
                        errors.append(f"{where}: bad quantile "
                                      f"{labels['quantile']!r}")
            elif not (name.endswith("_count") or name.endswith("_sum")):
                errors.append(f"{where}: unexpected summary sample {name}")
        if not math.isfinite(value) and not (
                ftype == "summary" and name == fam):
            errors.append(f"{where}: non-finite value for {name}")

    if not saw_eof:
        errors.append("missing terminating # EOF line")
    for fam in require:
        if samples.get(fam, 0) < 1:
            errors.append(f"required family {fam} has no samples"
                          + ("" if fam in declared else " (and no TYPE)"))
    return errors, declared, samples


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("file")
    parser.add_argument("--require", default="",
                        help="comma-separated families that must have samples")
    args = parser.parse_args()
    require = [f for f in (s.strip() for s in args.require.split(",")) if f]
    try:
        with open(args.file, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        print(f"check_openmetrics: cannot read input: {e}", file=sys.stderr)
        return 2
    errors, declared, samples = validate(lines, require)
    total = sum(samples.values())
    print(f"check_openmetrics: {args.file}: {len(declared)} families,"
          f" {total} samples")
    for err in errors:
        print(f"  [FAIL] {err}")
    if errors:
        print(f"check_openmetrics: {len(errors)} error(s)")
        return 1
    print("check_openmetrics: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
