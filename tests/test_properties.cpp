// Property-style parameterized sweeps across modules: invariants that must
// hold over whole parameter ranges rather than single examples.

#include <gtest/gtest.h>

#include <cmath>

#include "mmhand/common/stats.hpp"
#include "mmhand/dsp/butterworth.hpp"
#include "mmhand/dsp/fft.hpp"
#include "mmhand/hand/gesture.hpp"
#include "mmhand/hand/kinematics.hpp"
#include "mmhand/nn/optimizer.hpp"
#include "mmhand/pose/kinematic_loss.hpp"
#include "mmhand/radar/if_simulator.hpp"
#include "mmhand/radar/pipeline.hpp"

namespace mmhand {
namespace {

// ---------- DSP properties ----------

class FftShiftProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftShiftProperty, DoubleShiftIsIdentityForEvenSizes) {
  const std::size_t n = GetParam();
  if (n % 2 != 0) GTEST_SKIP();
  Rng rng(n);
  std::vector<dsp::Complex> x(n);
  for (auto& v : x) v = {rng.normal(), rng.normal()};
  const auto twice = dsp::fft_shift(dsp::fft_shift(x));
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(twice[i] - x[i]), 0.0, 1e-15);
}

TEST_P(FftShiftProperty, ShiftIsAPermutation) {
  const std::size_t n = GetParam();
  std::vector<dsp::Complex> x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = {static_cast<double>(i), 0.0};
  const auto s = dsp::fft_shift(x);
  std::vector<bool> seen(n, false);
  for (const auto& v : s) {
    const auto idx = static_cast<std::size_t>(v.real());
    ASSERT_LT(idx, n);
    EXPECT_FALSE(seen[idx]);
    seen[idx] = true;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftShiftProperty,
                         ::testing::Values(2, 4, 5, 8, 9, 16, 31, 64));

struct BandpassCase {
  int order;
  double lo, hi, fs;
};

class BandpassProperty : public ::testing::TestWithParam<BandpassCase> {};

TEST_P(BandpassProperty, PassbandAboveStopband) {
  const auto c = GetParam();
  const auto f = dsp::butterworth_bandpass(c.order, c.lo, c.hi, c.fs);
  const double center = std::sqrt(c.lo * c.hi);
  const double pass = std::abs(f.response(center / c.fs));
  const double stop_low = std::abs(f.response(0.2 * c.lo / c.fs));
  const double stop_high =
      std::abs(f.response(std::min(3.0 * c.hi, 0.49 * c.fs) / c.fs));
  EXPECT_GT(pass, 0.9);
  EXPECT_LT(stop_low, 0.3 * pass);
  EXPECT_LT(stop_high, 0.5 * pass);
}

TEST_P(BandpassProperty, FilterIsStable) {
  // All poles inside the unit circle: a long impulse response must decay.
  const auto c = GetParam();
  const auto f = dsp::butterworth_bandpass(c.order, c.lo, c.hi, c.fs);
  std::vector<double> impulse(2048, 0.0);
  impulse[0] = 1.0;
  const auto h = f.filter(impulse);
  double head = 0.0, tail = 0.0;
  for (std::size_t i = 0; i < 256; ++i) head += std::abs(h[i]);
  for (std::size_t i = h.size() - 256; i < h.size(); ++i)
    tail += std::abs(h[i]);
  EXPECT_LT(tail, 1e-3 * (head + 1e-12));
}

INSTANTIATE_TEST_SUITE_P(
    Bands, BandpassProperty,
    ::testing::Values(BandpassCase{4, 50, 150, 1000},
                      BandpassCase{8, 30e3, 200e3, 800e3},
                      BandpassCase{6, 10, 40, 200},
                      BandpassCase{2, 100, 300, 2000}));

// ---------- Radar properties ----------

class VelocityAliasing : public ::testing::TestWithParam<double> {};

TEST_P(VelocityAliasing, VelocityWrapsModuloUnambiguousRange) {
  // A target faster than v_max must alias to v - 2*v_max — the classic
  // Doppler ambiguity of a TDM chirp train.
  radar::ChirpConfig c;
  c.noise_stddev = 0.0;
  const radar::AntennaArray arr(c);
  const radar::IfSimulator sim(c, arr);
  radar::PipelineConfig pc;
  const radar::RadarPipeline pipe(c, arr, pc);

  const double v_true = GetParam();
  const double v_max = c.max_velocity_mps();
  double expected = v_true;
  while (expected >= v_max) expected -= 2.0 * v_max;
  while (expected < -v_max) expected += 2.0 * v_max;

  radar::Scene scene{{Vec3{0.0, 0.30, 0.0}, Vec3{0.0, v_true, 0.0}, 1.0}};
  Rng rng(1);
  const auto cube = pipe.process_frame(sim.simulate_frame(scene, 0.0, rng));
  int best_v = 0, best_d = 0;
  float best = -1.0f;
  for (int v = 0; v < cube.velocity_bins(); ++v)
    for (int d = 0; d < cube.range_bins(); ++d)
      for (int a = 0; a < pc.cube.azimuth_bins; ++a)
        if (cube.at(v, d, a) > best) {
          best = cube.at(v, d, a);
          best_v = v;
          best_d = d;
        }
  (void)best_d;
  const double bin_width = 2.0 * v_max / c.chirps_per_frame;
  EXPECT_NEAR(pipe.velocity_for_bin(best_v), expected, 1.5 * bin_width)
      << "true " << v_true << " expected alias " << expected;
}

INSTANTIATE_TEST_SUITE_P(Velocities, VelocityAliasing,
                         ::testing::Values(1.0, 5.0, 7.5, -6.0));

TEST(RadarProperty, TwoTargetsSeparatedInRangeResolve) {
  radar::ChirpConfig c;
  c.noise_stddev = 0.0;
  const radar::AntennaArray arr(c);
  const radar::IfSimulator sim(c, arr);
  radar::PipelineConfig pc;
  const radar::RadarPipeline pipe(c, arr, pc);

  radar::Scene scene{{Vec3{0.0, 0.25, 0.0}, Vec3{}, 1.0},
                     {Vec3{0.0, 0.55, 0.0}, Vec3{}, 1.0}};
  Rng rng(2);
  const auto cube = pipe.process_frame(sim.simulate_frame(scene, 0.0, rng));
  // Range profile at zero Doppler: energy peaks near both targets.
  const int v0 = c.chirps_per_frame / 2;
  std::vector<double> profile(static_cast<std::size_t>(cube.range_bins()));
  for (int d = 0; d < cube.range_bins(); ++d) {
    double e = 0.0;
    for (int a = 0; a < pc.cube.azimuth_bins; ++a) e += cube.at(v0, d, a);
    profile[static_cast<std::size_t>(d)] = e;
  }
  const int bin1 = static_cast<int>(0.25 / c.range_resolution_m() + 0.5);
  const int bin2 = static_cast<int>(0.55 / c.range_resolution_m() + 0.5);
  const double valley = profile[static_cast<std::size_t>((bin1 + bin2) / 2)];
  EXPECT_GT(profile[static_cast<std::size_t>(bin1)], 1.1 * valley);
  EXPECT_GT(profile[static_cast<std::size_t>(bin2)], 1.1 * valley);
}

// ---------- Hand / kinematic-loss properties ----------

class GestureKinematics : public ::testing::TestWithParam<int> {};

TEST_P(GestureKinematics, KinematicLossOfTruthIsSmallForEveryGestureAndUser) {
  const auto g = static_cast<hand::Gesture>(GetParam() % hand::kNumGestures);
  const int user = GetParam() / hand::kNumGestures;
  const auto profile = hand::HandProfile::for_user(user);
  hand::HandPose pose;
  pose.fingers = hand::gesture_articulation(g);
  const auto joints = hand::forward_kinematics(profile, pose);
  nn::Tensor row({63});
  for (int j = 0; j < hand::kNumJoints; ++j) {
    row[static_cast<std::size_t>(3 * j)] =
        static_cast<float>(joints[static_cast<std::size_t>(j)].x);
    row[static_cast<std::size_t>(3 * j + 1)] =
        static_cast<float>(joints[static_cast<std::size_t>(j)].y);
    row[static_cast<std::size_t>(3 * j + 2)] =
        static_cast<float>(joints[static_cast<std::size_t>(j)].z);
  }
  EXPECT_LT(pose::kinematic_loss(row, row).value, 0.06)
      << hand::gesture_name(g) << " user " << user;
}

INSTANTIATE_TEST_SUITE_P(GesturesAndUsers, GestureKinematics,
                         ::testing::Range(0, 4 * hand::kNumGestures));

class ScriptBoneLengths : public ::testing::TestWithParam<int> {};

TEST_P(ScriptBoneLengths, ContinuousScriptsPreservePhalangeLengths) {
  const int user = GetParam();
  const auto profile = hand::HandProfile::for_user(user);
  hand::GestureScriptConfig cfg;
  hand::GestureScript script(cfg, Rng(100 + user), 3.0);
  for (double t = 0.0; t < 3.0; t += 0.31) {
    const auto joints =
        hand::forward_kinematics(profile, script.pose_at(t));
    for (int f = 0; f < hand::kNumFingers; ++f)
      for (int k = 0; k < 3; ++k) {
        const int child = hand::finger_joint(static_cast<hand::Finger>(f),
                                             k + 1);
        EXPECT_NEAR(
            hand::bone_length(joints, child),
            profile.phalange_lengths[static_cast<std::size_t>(f)]
                                    [static_cast<std::size_t>(k)],
            1e-9);
      }
  }
}

INSTANTIATE_TEST_SUITE_P(Users, ScriptBoneLengths, ::testing::Range(0, 6));

// ---------- Optimizer properties ----------

class CosineDecayProperty : public ::testing::TestWithParam<int> {};

TEST_P(CosineDecayProperty, MonotoneNonIncreasingOverSchedule) {
  const int total = GetParam();
  double prev = 1.1;
  for (int e = 0; e < total; ++e) {
    const double v = nn::cosine_decay(e, total);
    EXPECT_LE(v, prev + 1e-12);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, CosineDecayProperty,
                         ::testing::Values(1, 2, 10, 100, 500));

// ---------- Stats properties ----------

class PercentileProperty : public ::testing::TestWithParam<int> {};

TEST_P(PercentileProperty, PercentilesAreMonotoneAndBounded) {
  Rng rng(GetParam());
  std::vector<double> xs(200);
  for (auto& x : xs) x = rng.normal(5.0, 2.0);
  double prev = -1e18;
  for (double p : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0}) {
    const double v = percentile(xs, p);
    EXPECT_GE(v, prev);
    EXPECT_GE(v, min_value(xs));
    EXPECT_LE(v, max_value(xs));
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileProperty, ::testing::Range(1, 6));

}  // namespace
}  // namespace mmhand
