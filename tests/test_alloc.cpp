// Tests for the obs/alloc operator-new interposer: exact deterministic
// counts for every new/delete form, counter silence while tracking is
// disabled, and the runtime half of the purity gate — steady-state
// radar frames allocate nothing at 1 and at 4 pool threads.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#include "mmhand/common/parallel.hpp"
#include "mmhand/common/rng.hpp"
#include "mmhand/obs/alloc.hpp"
#include "mmhand/radar/antenna_array.hpp"
#include "mmhand/radar/chirp_config.hpp"
#include "mmhand/radar/if_simulator.hpp"
#include "mmhand/radar/pipeline.hpp"
#include "mmhand/simd/simd.hpp"

namespace mmhand::obs {
namespace {

/// RAII tracking toggle so a failed EXPECT can't leave tracking on for
/// the rest of the binary.
struct TrackScope {
  TrackScope() { set_alloc_tracking(true); }
  ~TrackScope() { set_alloc_tracking(false); }
};

/// Defeats allocation elision ([expr.new]/10): without an observable
/// escape the optimizer may satisfy a new-expression on the stack and
/// the interposer never sees it.
void escape(void* p) { asm volatile("" : : "g"(p) : "memory"); }

TEST(AllocInterposer, DisabledByDefaultAndSilentWhenOff) {
  ASSERT_FALSE(alloc_tracking_enabled());
  const AllocCounts before = alloc_counts();
  auto* p = new std::vector<int>(64);
  delete p;
  const AllocCounts after = alloc_counts();
  EXPECT_EQ(after.allocs, before.allocs);
  EXPECT_EQ(after.frees, before.frees);
  EXPECT_EQ(after.bytes, before.bytes);
}

TEST(AllocInterposer, CountsScalarNewDeleteExactly) {
  TrackScope track;
  const AllocCounts before = alloc_counts();
  int* p = new int(7);
  escape(p);
  const AllocCounts mid = alloc_counts();
  delete p;
  const AllocCounts after = alloc_counts();
  EXPECT_EQ(mid.allocs - before.allocs, 1);
  EXPECT_EQ(mid.frees - before.frees, 0);
  EXPECT_GE(mid.bytes - before.bytes, static_cast<std::int64_t>(sizeof(int)));
  EXPECT_EQ(after.frees - before.frees, 1);
}

TEST(AllocInterposer, CountsContainerGrowthDeterministically) {
  TrackScope track;
  const AllocCounts before = alloc_counts();
  {
    std::vector<int> v;
    v.reserve(100);  // exactly one allocation of >= 400 bytes
  }
  const AllocCounts after = alloc_counts();
  EXPECT_EQ(after.allocs - before.allocs, 1);
  EXPECT_EQ(after.frees - before.frees, 1);
  EXPECT_GE(after.bytes - before.bytes, 400);
}

TEST(AllocInterposer, CountsArrayAlignedAndNothrowForms) {
  TrackScope track;
  const AllocCounts before = alloc_counts();
  auto* arr = new char[256];
  escape(arr);
  delete[] arr;

  struct alignas(64) Wide {
    double d[8];
  };
  auto* w = new Wide;
  escape(w);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w) % 64, 0u);
  delete w;

  int* nt = new (std::nothrow) int;
  escape(nt);
  ASSERT_NE(nt, nullptr);
  delete nt;

  const AllocCounts after = alloc_counts();
  EXPECT_EQ(after.allocs - before.allocs, 3);
  EXPECT_EQ(after.frees - before.frees, 3);
  EXPECT_GE(after.bytes - before.bytes,
            static_cast<std::int64_t>(256 + sizeof(Wide) + sizeof(int)));
}

TEST(AllocInterposer, SteadyStateRadarFramesAreAllocationFree) {
  if (simd::active_isa() == simd::Isa::kScalar)
    GTEST_SKIP() << "scalar reference path allocates by design "
                    "(audited in scripts/purity_allowlist.json)";

  radar::ChirpConfig chirp;
  chirp.noise_stddev = 0.0;
  const radar::AntennaArray array(chirp);
  const radar::IfSimulator sim(chirp, array);
  const radar::PipelineConfig pc;
  const radar::RadarPipeline pipe(chirp, array, pc);
  radar::Scene scene{
      {Vec3{0.05, 0.30, 0.02}, Vec3{0.0, 0.4, 0.0}, 1.0},
  };
  Rng rng(1);
  const auto frame = sim.simulate_frame(scene, 0.0, rng);
  radar::RadarCube cube;

  const int saved_threads = num_threads();
  for (const int threads : {1, 4}) {
    set_num_threads(threads);
    // Settle: which worker first touches a stage's grow-on-demand
    // scratch is a chunk-claiming race, so early batches may grow; a
    // batch with zero allocations proves steady state (and a real
    // per-frame leak never produces one).
    std::int64_t batch_allocs = -1;
    for (int batch = 0; batch < 8 && batch_allocs != 0; ++batch) {
      TrackScope track;
      const AllocCounts before = alloc_counts();
      for (int i = 0; i < 10; ++i) pipe.process_frame_into(frame, &cube);
      batch_allocs = alloc_counts().allocs - before.allocs;
    }
    EXPECT_EQ(batch_allocs, 0)
        << "steady-state frames allocate at " << threads << " thread(s)";
  }
  set_num_threads(saved_threads);
}

}  // namespace
}  // namespace mmhand::obs
