// Tests for mmhand/radar: config math, antenna geometry, IF synthesis and
// the full radar-cube pipeline's range/velocity/angle localization.

#include <gtest/gtest.h>

#include <cmath>

#include "mmhand/common/error.hpp"
#include "mmhand/common/rng.hpp"
#include "mmhand/radar/antenna_array.hpp"
#include "mmhand/radar/chirp_config.hpp"
#include "mmhand/dsp/fft.hpp"
#include "mmhand/radar/if_simulator.hpp"
#include "mmhand/radar/pipeline.hpp"

namespace mmhand::radar {
namespace {

ChirpConfig paper_chirp() {
  ChirpConfig c;  // defaults mirror the paper's IWR1443 setup
  c.noise_stddev = 0.0;
  return c;
}

struct CubePeak {
  int v = 0, d = 0, a = 0;
  float value = 0.0f;
};

CubePeak find_cube_peak(const RadarCube& cube, int angle_lo, int angle_hi) {
  CubePeak best;
  best.value = -1.0f;
  for (int v = 0; v < cube.velocity_bins(); ++v)
    for (int d = 0; d < cube.range_bins(); ++d)
      for (int a = angle_lo; a < angle_hi; ++a)
        if (cube.at(v, d, a) > best.value)
          best = {v, d, a, cube.at(v, d, a)};
  return best;
}

TEST(ChirpConfig, DerivedQuantitiesMatchPaperSetup) {
  const ChirpConfig c = paper_chirp();
  // 64 samples over 80 us -> 800 kHz ADC rate.
  EXPECT_NEAR(c.sample_rate_hz(), 800e3, 1e-6);
  // 4 GHz sweep -> 3.75 cm range resolution.
  EXPECT_NEAR(c.range_resolution_m(), 0.0375, 1e-4);
  // 77 GHz -> ~3.9 mm wavelength.
  EXPECT_NEAR(c.wavelength_m(), 3.893e-3, 1e-5);
  // Max range with complex sampling: fs/2 beat Nyquist -> 1.2 m.
  EXPECT_NEAR(c.max_range_m(), 1.199, 2e-2);
  // TDM with 3 TX: 240 us per-TX period -> ~4.06 m/s unambiguous velocity.
  EXPECT_NEAR(c.max_velocity_mps(), 4.055, 0.05);
}

TEST(ChirpConfig, BeatRangeRoundTrip) {
  const ChirpConfig c = paper_chirp();
  for (double r : {0.1, 0.25, 0.4, 0.8}) {
    EXPECT_NEAR(c.range_for_beat(c.beat_frequency_hz(r)), r, 1e-12);
  }
}

TEST(ChirpConfig, ValidateRejectsBadFramePeriod) {
  ChirpConfig c = paper_chirp();
  c.frame_period_s = 1e-6;
  EXPECT_THROW(c.validate(), Error);
}

TEST(AntennaArray, VirtualAzimuthRowIsUniformLambdaHalf) {
  const ChirpConfig c = paper_chirp();
  const AntennaArray arr(c);
  EXPECT_EQ(arr.num_virtual(), 12);
  const auto& row = arr.azimuth_row();
  ASSERT_EQ(row.size(), 8u);
  const double d = arr.azimuth_spacing_m();
  for (std::size_t i = 0; i + 1 < row.size(); ++i) {
    const Vec3 a = arr.virtual_position(row[i].first, row[i].second);
    const Vec3 b = arr.virtual_position(row[i + 1].first, row[i + 1].second);
    EXPECT_NEAR(b.x - a.x, d, 1e-12);
    EXPECT_NEAR(a.z, 0.0, 1e-12);
  }
}

TEST(AntennaArray, ElevationRowIsRaisedLambdaHalf) {
  const ChirpConfig c = paper_chirp();
  const AntennaArray arr(c);
  for (const auto& [tx, rx] : arr.elevation_row()) {
    EXPECT_NEAR(arr.virtual_position(tx, rx).z, arr.elevation_offset_m(),
                1e-12);
  }
}

TEST(AntennaArray, RejectsNonIwr1443Layout) {
  ChirpConfig c = paper_chirp();
  c.num_tx = 2;
  EXPECT_THROW(AntennaArray{c}, Error);
}

TEST(IfFrame, IndexingIsExact) {
  IfFrame f(2, 3, 4, 5);
  f.at(1, 2, 3, 4) = {7.0, -7.0};
  EXPECT_EQ(f.chirp_data(1, 2, 3)[4], (std::complex<double>{7.0, -7.0}));
  EXPECT_EQ(f.at(0, 0, 0, 0), (std::complex<double>{0.0, 0.0}));
}

TEST(IfSimulator, BeatFrequencyMatchesRange) {
  // A static scatterer's IF tone must land at the theoretical beat
  // frequency — this validates Eq.(1)'s implementation end to end.
  const ChirpConfig c = paper_chirp();
  const AntennaArray arr(c);
  const IfSimulator sim(c, arr);
  const double range = 0.30;
  Scene scene{{Vec3{0.0, range, 0.0}, Vec3{}, 1.0}};
  Rng rng(1);
  const IfFrame frame = sim.simulate_frame(scene, 0.0, rng);

  // FFT of one chirp: peak bin * bin_hz ~= beat frequency.
  std::vector<std::complex<double>> chirp(
      frame.chirp_data(0, 0, 0), frame.chirp_data(0, 0, 0) + c.samples_per_chirp);
  const auto spec = dsp::fft(chirp);
  std::size_t best = 0;
  for (std::size_t i = 1; i < spec.size() / 2; ++i)
    if (std::abs(spec[i]) > std::abs(spec[best])) best = i;
  const double bin_hz = c.sample_rate_hz() / c.samples_per_chirp;
  const double measured = static_cast<double>(best) * bin_hz;
  EXPECT_NEAR(measured, c.beat_frequency_hz(range), bin_hz);
}

class PipelineRangeTest : public ::testing::TestWithParam<double> {};

TEST_P(PipelineRangeTest, PeakAtExpectedRangeBin) {
  const ChirpConfig c = paper_chirp();
  const AntennaArray arr(c);
  const IfSimulator sim(c, arr);
  PipelineConfig pc;
  const RadarPipeline pipe(c, arr, pc);

  const double range = GetParam();
  Scene scene{{Vec3{0.0, range, 0.0}, Vec3{}, 1.0}};
  Rng rng(2);
  const auto cube = pipe.process_frame(sim.simulate_frame(scene, 0.0, rng));
  const auto peak = find_cube_peak(cube, 0, pc.cube.azimuth_bins);
  EXPECT_NEAR(pipe.range_for_bin(peak.d), range, 1.5 * c.range_resolution_m())
      << "peak bin " << peak.d;
  // Static target: Doppler peak at the zero-velocity bin.
  EXPECT_EQ(peak.v, c.chirps_per_frame / 2);
}

INSTANTIATE_TEST_SUITE_P(Ranges, PipelineRangeTest,
                         ::testing::Values(0.20, 0.30, 0.40, 0.60, 0.80));

class PipelineVelocityTest : public ::testing::TestWithParam<double> {};

TEST_P(PipelineVelocityTest, PeakAtExpectedDopplerBin) {
  const ChirpConfig c = paper_chirp();
  const AntennaArray arr(c);
  const IfSimulator sim(c, arr);
  PipelineConfig pc;
  const RadarPipeline pipe(c, arr, pc);

  const double vel = GetParam();  // radial velocity, +away from radar
  Scene scene{{Vec3{0.0, 0.30, 0.0}, Vec3{0.0, vel, 0.0}, 1.0}};
  Rng rng(3);
  const auto cube = pipe.process_frame(sim.simulate_frame(scene, 0.0, rng));
  const auto peak = find_cube_peak(cube, 0, pc.cube.azimuth_bins);
  EXPECT_NEAR(pipe.velocity_for_bin(peak.v), vel,
              1.5 * (2.0 * c.max_velocity_mps() / c.chirps_per_frame))
      << "doppler bin " << peak.v;
}

INSTANTIATE_TEST_SUITE_P(Velocities, PipelineVelocityTest,
                         ::testing::Values(-2.0, -0.8, 0.8, 2.0));

class PipelineAzimuthTest : public ::testing::TestWithParam<double> {};

TEST_P(PipelineAzimuthTest, PeakAtExpectedAzimuthBin) {
  const ChirpConfig c = paper_chirp();
  const AntennaArray arr(c);
  const IfSimulator sim(c, arr);
  PipelineConfig pc;
  const RadarPipeline pipe(c, arr, pc);

  const double az_deg = GetParam();
  const double az = az_deg * M_PI / 180.0;
  const double range = 0.30;
  Scene scene{
      {Vec3{range * std::sin(az), range * std::cos(az), 0.0}, Vec3{}, 1.0}};
  Rng rng(4);
  const auto cube = pipe.process_frame(sim.simulate_frame(scene, 0.0, rng));
  const auto peak = find_cube_peak(cube, 0, pc.cube.azimuth_bins);
  const double bin_width =
      2.0 * std::sin(pc.cube.angle_span_rad()) / pc.cube.azimuth_bins;
  EXPECT_NEAR(std::sin(pipe.azimuth_for_bin(peak.a)), std::sin(az),
              1.5 * bin_width)
      << "azimuth bin " << peak.a << " at " << az_deg << " deg";
}

INSTANTIATE_TEST_SUITE_P(Azimuths, PipelineAzimuthTest,
                         ::testing::Values(-25.0, -12.0, 0.0, 12.0, 25.0));

TEST(Pipeline, MovingOffAxisTargetStaysLocalizedUnderTdm) {
  // TDM phase compensation: a moving target must still localize at the
  // correct azimuth (an uncompensated pipeline smears it).
  const ChirpConfig c = paper_chirp();
  const AntennaArray arr(c);
  const IfSimulator sim(c, arr);
  PipelineConfig pc;
  const RadarPipeline pipe(c, arr, pc);

  const double az = 15.0 * M_PI / 180.0;
  Scene scene{{Vec3{0.30 * std::sin(az), 0.30 * std::cos(az), 0.0},
               Vec3{0.0, 1.2, 0.0}, 1.0}};
  Rng rng(5);
  const auto cube = pipe.process_frame(sim.simulate_frame(scene, 0.0, rng));
  const auto peak = find_cube_peak(cube, 0, pc.cube.azimuth_bins);
  const double bin_width =
      2.0 * std::sin(pc.cube.angle_span_rad()) / pc.cube.azimuth_bins;
  EXPECT_NEAR(std::sin(pipe.azimuth_for_bin(peak.a)), std::sin(az),
              2.0 * bin_width);
  EXPECT_NE(peak.v, c.chirps_per_frame / 2);  // moving: off the zero bin
}

TEST(Pipeline, ElevationSpectrumDistinguishesUpFromDown) {
  const ChirpConfig c = paper_chirp();
  const AntennaArray arr(c);
  const IfSimulator sim(c, arr);
  PipelineConfig pc;
  const RadarPipeline pipe(c, arr, pc);
  const int n_az = pc.cube.azimuth_bins;
  const int n_el = pc.cube.elevation_bins;

  auto elevation_peak_bin = [&](double el_deg) {
    const double el = el_deg * M_PI / 180.0;
    Scene scene{{Vec3{0.0, 0.30 * std::cos(el), 0.30 * std::sin(el)},
                 Vec3{}, 1.0}};
    Rng rng(6);
    const auto cube =
        pipe.process_frame(sim.simulate_frame(scene, 0.0, rng));
    // Strongest elevation bin at the peak range-Doppler cell.
    const auto peak = find_cube_peak(cube, 0, n_az);
    int best = 0;
    for (int e = 1; e < n_el; ++e)
      if (cube.at(peak.v, peak.d, n_az + e) >
          cube.at(peak.v, peak.d, n_az + best))
        best = e;
    return best;
  };

  const int up = elevation_peak_bin(20.0);
  const int level = elevation_peak_bin(0.0);
  const int down = elevation_peak_bin(-20.0);
  EXPECT_GT(up, level);
  EXPECT_LT(down, level);
  // Boresight lands near the center of the elevation spectrum.
  EXPECT_NEAR(level, n_el / 2, 1.5);
}

TEST(Pipeline, BandpassSuppressesBodyClutter) {
  // The hand (30 cm) and a strong body reflector (1.05 m, outside the
  // passband) — the Butterworth bandpass should suppress the body's range
  // response relative to an unfiltered pipeline.
  ChirpConfig c = paper_chirp();
  const AntennaArray arr(c);
  const IfSimulator sim(c, arr);

  PipelineConfig with_bp;
  with_bp.cube.range_bins = 32;  // keep bins past 1 m visible for the test
  PipelineConfig no_bp = with_bp;
  no_bp.enable_bandpass = false;
  const RadarPipeline pipe_bp(c, arr, with_bp);
  const RadarPipeline pipe_raw(c, arr, no_bp);

  Scene scene{{Vec3{0.0, 0.30, 0.0}, Vec3{}, 1.0},
              {Vec3{0.0, 1.05, 0.0}, Vec3{}, 8.0}};
  Rng rng(7);
  const IfFrame frame = sim.simulate_frame(scene, 0.0, rng);
  const auto cube_bp = pipe_bp.process_frame(frame);
  const auto cube_raw = pipe_raw.process_frame(frame);

  // Energy near the body's range bin (1.05 m / 3.75 cm = bin 28).
  auto energy_at_range = [&](const RadarCube& cube, int d) {
    double e = 0.0;
    for (int v = 0; v < cube.velocity_bins(); ++v)
      for (int a = 0; a < cube.angle_bins(); ++a)
        e += std::expm1(cube.at(v, d, a));  // undo log1p
    return e;
  };
  const double body_bp = energy_at_range(cube_bp, 28);
  const double body_raw = energy_at_range(cube_raw, 28);
  EXPECT_LT(body_bp, 0.15 * body_raw);
  // The hand's bin (8) survives filtering.
  const double hand_bp = energy_at_range(cube_bp, 8);
  const double hand_raw = energy_at_range(cube_raw, 8);
  EXPECT_GT(hand_bp, 0.4 * hand_raw);
}

TEST(Pipeline, StrongerScattererYieldsLargerPeak) {
  const ChirpConfig c = paper_chirp();
  const AntennaArray arr(c);
  const IfSimulator sim(c, arr);
  PipelineConfig pc;
  const RadarPipeline pipe(c, arr, pc);

  auto peak_for_amp = [&](double amp) {
    Scene scene{{Vec3{0.0, 0.30, 0.0}, Vec3{}, amp}};
    Rng rng(8);
    const auto cube =
        pipe.process_frame(sim.simulate_frame(scene, 0.0, rng));
    return find_cube_peak(cube, 0, pc.cube.azimuth_bins).value;
  };
  EXPECT_GT(peak_for_amp(2.0), peak_for_amp(0.5));
}

TEST(Pipeline, RangeAmplitudeFallsWithDistance) {
  // Two-way propagation loss: the same reflector looks weaker farther out.
  const ChirpConfig c = paper_chirp();
  const AntennaArray arr(c);
  const IfSimulator sim(c, arr);
  PipelineConfig pc;
  const RadarPipeline pipe(c, arr, pc);

  auto peak_at = [&](double range) {
    Scene scene{{Vec3{0.0, range, 0.0}, Vec3{}, 1.0}};
    Rng rng(9);
    const auto cube =
        pipe.process_frame(sim.simulate_frame(scene, 0.0, rng));
    return find_cube_peak(cube, 0, pc.cube.azimuth_bins).value;
  };
  EXPECT_GT(peak_at(0.25), peak_at(0.70));
}

TEST(Pipeline, ZoomFftSharpensAngleLocalization) {
  // Ablation hook: with zoom disabled the band covers +-90 deg at the same
  // bin count, so the hand's energy concentrates in fewer bins near
  // boresight and neighbouring-angle contrast drops.
  const ChirpConfig c = paper_chirp();
  const AntennaArray arr(c);
  const IfSimulator sim(c, arr);
  PipelineConfig zoom_on;
  PipelineConfig zoom_off = zoom_on;
  zoom_off.enable_zoom_fft = false;
  const RadarPipeline pipe_on(c, arr, zoom_on);
  const RadarPipeline pipe_off(c, arr, zoom_off);

  // Two scatterers 12 degrees apart.
  const double a1 = -6.0 * M_PI / 180.0, a2 = 6.0 * M_PI / 180.0;
  Scene scene{
      {Vec3{0.30 * std::sin(a1), 0.30 * std::cos(a1), 0.0}, Vec3{}, 1.0},
      {Vec3{0.30 * std::sin(a2), 0.30 * std::cos(a2), 0.0}, Vec3{}, 1.0}};
  Rng rng(10);
  const IfFrame frame = sim.simulate_frame(scene, 0.0, rng);
  const auto cube_on = pipe_on.process_frame(frame);
  const auto cube_off = pipe_off.process_frame(frame);

  // Count azimuth bins above half the peak in the strongest range row.
  auto active_bins = [&](const RadarCube& cube) {
    const auto peak = find_cube_peak(cube, 0, zoom_on.cube.azimuth_bins);
    int n = 0;
    for (int a = 0; a < zoom_on.cube.azimuth_bins; ++a)
      if (cube.at(peak.v, peak.d, a) > 0.5f * peak.value) ++n;
    return n;
  };
  // The zoomed grid spreads the two targets over more distinct bins.
  EXPECT_GE(active_bins(cube_on), active_bins(cube_off));
}

TEST(Pipeline, BinMappingsAreMonotone) {
  const ChirpConfig c = paper_chirp();
  const AntennaArray arr(c);
  PipelineConfig pc;
  const RadarPipeline pipe(c, arr, pc);
  for (int d = 1; d < pc.cube.range_bins; ++d)
    EXPECT_GT(pipe.range_for_bin(d), pipe.range_for_bin(d - 1));
  for (int a = 1; a < pc.cube.azimuth_bins; ++a)
    EXPECT_GT(pipe.azimuth_for_bin(a), pipe.azimuth_for_bin(a - 1));
  for (int v = 1; v < c.chirps_per_frame; ++v)
    EXPECT_GT(pipe.velocity_for_bin(v), pipe.velocity_for_bin(v - 1));
  EXPECT_NEAR(pipe.velocity_for_bin(c.chirps_per_frame / 2), 0.0, 1e-12);
}

TEST(Pipeline, RejectsTooManyRangeBins) {
  const ChirpConfig c = paper_chirp();
  const AntennaArray arr(c);
  PipelineConfig pc;
  pc.cube.range_bins = c.samples_per_chirp + 1;
  EXPECT_THROW(RadarPipeline(c, arr, pc), Error);
}

}  // namespace
}  // namespace mmhand::radar
