// Serving-layer tests: config grammar, deterministic backoff, batched
// forward parity, admission/shedding/deadline semantics, degradation
// hysteresis, join/leave races (the TSan job runs this binary), and
// drained-server bitwise parity with the offline pipeline.

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mmhand/common/parallel.hpp"
#include "mmhand/fault/fault.hpp"
#include "mmhand/nn/lstm.hpp"
#include "mmhand/obs/alloc.hpp"
#include "mmhand/pose/inference.hpp"
#include "mmhand/pose/samples.hpp"
#include "mmhand/pose/trainer.hpp"
#include "mmhand/serve/backoff.hpp"
#include "mmhand/serve/client.hpp"
#include "mmhand/serve/server.hpp"
#include "mmhand/sim/dataset.hpp"

namespace mmhand {
namespace {

using serve::Disposition;
using serve::ServeConfig;
using serve::Server;
using serve::ShedPolicy;
using serve::Tier;

// ---------------------------------------------------------------------------
// Config grammar

TEST(ServeConfig, DefaultsAreValid) {
  ServeConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
  EXPECT_EQ(cfg.policy, ShedPolicy::kDropOldest);
}

TEST(ServeConfig, ParsesFullSpec) {
  const auto cfg = serve::parse_serve_spec(
      "deadline_ms=12.5,max_sessions=4,max_inflight=9,queue_cap=2,"
      "batch_max=3,policy=reject_new,shed_hi=0.9,shed_lo=0.1,hold=5,"
      "retry_ms=2.5,seed=77");
  EXPECT_DOUBLE_EQ(cfg.deadline_ms, 12.5);
  EXPECT_EQ(cfg.max_sessions, 4);
  EXPECT_EQ(cfg.max_inflight, 9);
  EXPECT_EQ(cfg.queue_cap, 2);
  EXPECT_EQ(cfg.batch_max, 3);
  EXPECT_EQ(cfg.policy, ShedPolicy::kRejectNew);
  EXPECT_DOUBLE_EQ(cfg.shed_hi, 0.9);
  EXPECT_DOUBLE_EQ(cfg.shed_lo, 0.1);
  EXPECT_EQ(cfg.hold_ticks, 5);
  EXPECT_DOUBLE_EQ(cfg.retry_ms, 2.5);
  EXPECT_EQ(cfg.seed, 77u);
}

TEST(ServeConfig, RejectsMalformedSpecs) {
  EXPECT_THROW(serve::parse_serve_spec("bogus_key=1"), Error);
  EXPECT_THROW(serve::parse_serve_spec("deadline_ms=abc"), Error);
  EXPECT_THROW(serve::parse_serve_spec("policy=sometimes"), Error);
  EXPECT_THROW(serve::parse_serve_spec("deadline_ms"), Error);
  EXPECT_THROW(serve::parse_serve_spec("deadline_ms=0"), Error);
  EXPECT_THROW(serve::parse_serve_spec("shed_lo=0.8,shed_hi=0.2"), Error);
}

TEST(ServeConfig, TierNamesAreStable) {
  EXPECT_STREQ(serve::tier_name(Tier::kFull), "full");
  EXPECT_STREQ(serve::tier_name(Tier::kNoMesh), "no_mesh");
  EXPECT_STREQ(serve::tier_name(Tier::kPoseOnly), "pose_only");
}

// ---------------------------------------------------------------------------
// Backoff

TEST(Backoff, DeterministicInItsInputs) {
  const double a = serve::backoff_delay_ms(1, 2, 3, 5.0, 80.0, 0.0);
  const double b = serve::backoff_delay_ms(1, 2, 3, 5.0, 80.0, 0.0);
  EXPECT_DOUBLE_EQ(a, b);
  // Distinct sessions draw distinct jitter.
  const double c = serve::backoff_delay_ms(1, 9, 3, 5.0, 80.0, 0.0);
  EXPECT_NE(a, c);
}

TEST(Backoff, WindowGrowsAndCaps) {
  // Every delay lies in [window/2, window) for window = min(base*2^n, cap).
  for (int attempt = 0; attempt < 12; ++attempt) {
    double window = 5.0;
    for (int a = 0; a < attempt && window < 80.0; ++a) window *= 2.0;
    if (window > 80.0) window = 80.0;
    const double d = serve::backoff_delay_ms(42, 7, attempt, 5.0, 80.0, 0.0);
    EXPECT_GE(d, window / 2.0);
    EXPECT_LT(d, window);
  }
}

TEST(Backoff, HonorsRetryAfterHint) {
  const double d = serve::backoff_delay_ms(1, 2, 0, 5.0, 80.0, 500.0);
  EXPECT_GE(d, 500.0);
}

// ---------------------------------------------------------------------------
// Batched forward parity

nn::Tensor random_tensor(const nn::Shape& shape, Rng& rng) {
  return nn::Tensor::randn(shape, rng, 1.0);
}

TEST(ForwardSequences, LstmBatchedPathMatchesPerSample) {
  Rng rng(3);
  nn::Lstm lstm(6, 8, rng);
  const int t_len = 5;
  Rng xrng(4);
  std::vector<nn::Tensor> xs;
  for (int b = 0; b < 3; ++b) xs.push_back(random_tensor({t_len, 6}, xrng));
  nn::Tensor stacked({3 * t_len, 6});
  for (int b = 0; b < 3; ++b)
    std::copy(xs[static_cast<std::size_t>(b)].data(),
              xs[static_cast<std::size_t>(b)].data() + t_len * 6,
              stacked.data() + static_cast<std::size_t>(b) * t_len * 6);
  const nn::Tensor batched = lstm.forward_sequences(stacked, 3);
  for (int b = 0; b < 3; ++b) {
    const nn::Tensor solo =
        lstm.forward(xs[static_cast<std::size_t>(b)], false);
    for (int t = 0; t < t_len; ++t)
      for (int h = 0; h < 8; ++h)
        EXPECT_EQ(batched.at(b * t_len + t, h), solo.at(t, h))
            << "sample " << b << " t " << t << " h " << h;
  }
}

TEST(ForwardSequences, DefaultSlicePathMatchesPerSample) {
  Rng rng(5);
  nn::Linear fc(6, 4, rng);
  Rng xrng(6);
  const nn::Tensor x = random_tensor({8, 6}, xrng);
  const nn::Tensor batched = fc.forward_sequences(x, 2);
  const nn::Tensor whole = fc.forward(x, false);
  ASSERT_EQ(batched.numel(), whole.numel());
  for (std::size_t e = 0; e < whole.numel(); ++e)
    EXPECT_EQ(batched[e], whole[e]);
}

pose::PoseNetConfig tiny_net() {
  pose::PoseNetConfig cfg;
  cfg.segment_frames = 2;
  cfg.sequence_segments = 2;
  cfg.velocity_bins = 4;
  cfg.range_bins = 8;
  cfg.angle_bins = 8;
  cfg.feature_dim = 24;
  cfg.lstm_hidden = 16;
  cfg.spacenet.stem_channels = 4;
  cfg.spacenet.block1_channels = 6;
  cfg.spacenet.block2_channels = 6;
  return cfg;
}

TEST(ForwardBatch, MatchesPerSampleForwardBitwise) {
  const auto cfg = tiny_net();
  Rng rng(7);
  pose::HandJointRegressor model(cfg, rng);
  Rng xrng(8);
  const int frames = cfg.frames_per_sample();
  std::vector<nn::Tensor> xs;
  for (int b = 0; b < 3; ++b)
    xs.push_back(random_tensor(
        {frames, cfg.velocity_bins, cfg.range_bins, cfg.angle_bins}, xrng));
  nn::Tensor stacked({3 * frames, cfg.velocity_bins, cfg.range_bins,
                      cfg.angle_bins});
  const std::size_t per = xs[0].numel();
  for (int b = 0; b < 3; ++b)
    std::copy(xs[static_cast<std::size_t>(b)].data(),
              xs[static_cast<std::size_t>(b)].data() + per,
              stacked.data() + static_cast<std::size_t>(b) * per);
  const nn::Tensor batched = model.forward_batch(stacked, 3);
  ASSERT_EQ(batched.dim(0), 3 * cfg.sequence_segments);
  for (int b = 0; b < 3; ++b) {
    const nn::Tensor solo =
        model.forward(xs[static_cast<std::size_t>(b)], false);
    for (int s = 0; s < cfg.sequence_segments; ++s)
      for (int j = 0; j < 63; ++j)
        EXPECT_EQ(batched.at(b * cfg.sequence_segments + s, j),
                  solo.at(s, j));
  }
}

// ---------------------------------------------------------------------------
// Server fixtures

sim::Recording tiny_recording(int frames) {
  radar::ChirpConfig chirp;
  chirp.chirps_per_frame = 4;
  chirp.samples_per_chirp = 16;
  chirp.frame_period_s = 0.05;
  radar::PipelineConfig pc;
  pc.cube.range_bins = 8;
  pc.cube.azimuth_bins = 6;
  pc.cube.elevation_bins = 2;
  const sim::DatasetBuilder builder(chirp, pc);
  sim::ScenarioConfig scenario;
  scenario.duration_s = frames * chirp.frame_period_s;
  return builder.record(scenario);
}

/// Manually stepped fake clock (nanoseconds).
std::atomic<std::uint64_t> g_fake_now{0};
std::uint64_t fake_clock() {
  return g_fake_now.load(std::memory_order_relaxed);
}

/// Clock that advances 10 ms on every read: the batch that dispatches
/// just inside its deadline completes just outside it.
std::atomic<std::uint64_t> g_adv_now{0};
std::uint64_t advancing_clock() {
  return g_adv_now.fetch_add(10'000'000ull, std::memory_order_relaxed);
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_fake_now.store(0);
    g_adv_now.store(0);
    rng_ = std::make_unique<Rng>(11);
    model_ = std::make_unique<pose::HandJointRegressor>(tiny_net(), *rng_);
    recording_ = tiny_recording(12);
  }

  Server make_server(ServeConfig cfg, serve::ClockFn clock = fake_clock) {
    Server::Options opts;
    opts.manual_step = true;
    opts.clock = clock;
    return Server(cfg, *model_, opts);
  }

  /// Submits one full window (frames cycled from the recording).
  void submit_window(Server& server, serve::SessionId id) {
    const int frames = tiny_net().frames_per_sample();
    for (int f = 0; f < frames; ++f) {
      const auto& cube =
          recording_.frames[cursor_++ % recording_.frames.size()].cube;
      ASSERT_TRUE(server.submit(id, cube).accepted);
    }
  }

  std::unique_ptr<Rng> rng_;
  std::unique_ptr<pose::HandJointRegressor> model_;
  sim::Recording recording_;
  std::size_t cursor_ = 0;
};

TEST_F(ServerTest, AdmissionControlCapsSessions) {
  ServeConfig cfg;
  cfg.max_sessions = 2;
  Server server = make_server(cfg);
  const auto a = server.join();
  const auto b = server.join();
  EXPECT_TRUE(a.admitted);
  EXPECT_TRUE(b.admitted);
  EXPECT_NE(a.id, b.id);
  const auto c = server.join();
  EXPECT_FALSE(c.admitted);
  EXPECT_GT(c.retry_after_ms, 0.0);
  // leave() frees the slot; a rejoin gets a fresh id.
  server.leave(a.id);
  const auto d = server.join();
  EXPECT_TRUE(d.admitted);
  EXPECT_NE(d.id, a.id);
}

TEST_F(ServerTest, SubmitToUnknownSessionIsFlagged) {
  ServeConfig cfg;
  Server server = make_server(cfg);
  const auto r = server.submit(12345, recording_.frames[0].cube);
  EXPECT_FALSE(r.accepted);
  EXPECT_TRUE(r.session_unknown);
}

TEST_F(ServerTest, CompletedWindowMatchesOfflinePredictionBitwise) {
  ServeConfig cfg;
  Server server = make_server(cfg);
  const auto j = server.join();
  ASSERT_TRUE(j.admitted);
  submit_window(server, j.id);
  server.drain();
  std::vector<serve::WindowResult> results;
  ASSERT_EQ(server.poll(j.id, &results), 1u);
  EXPECT_EQ(results[0].disposition, Disposition::kCompleted);
  EXPECT_EQ(results[0].seq, 0u);
  EXPECT_EQ(results[0].first_frame, 0);
  EXPECT_EQ(results[0].last_frame, tiny_net().frames_per_sample() - 1);

  const auto samples = pose::make_pose_samples(recording_, tiny_net());
  ASSERT_GE(samples.size(), 1u);
  const nn::Tensor want = pose::predict_sample(*model_, samples[0]);
  ASSERT_EQ(results[0].pose.numel(), want.numel());
  for (std::size_t e = 0; e < want.numel(); ++e)
    EXPECT_EQ(results[0].pose[e], want[e]);
}

TEST_F(ServerTest, CrossSessionBatchingPreservesPerSessionResults) {
  ServeConfig cfg;
  cfg.batch_max = 8;
  Server server = make_server(cfg);
  const auto a = server.join();
  const auto b = server.join();
  ASSERT_TRUE(a.admitted && b.admitted);
  // Both windows carry the same frames, so both sessions must receive
  // bitwise-identical poses out of one coalesced batch.
  cursor_ = 0;
  submit_window(server, a.id);
  cursor_ = 0;
  submit_window(server, b.id);
  EXPECT_EQ(server.step(), 2);
  EXPECT_EQ(server.stats().batches, 1u);
  std::vector<serve::WindowResult> ra, rb;
  ASSERT_EQ(server.poll(a.id, &ra), 1u);
  ASSERT_EQ(server.poll(b.id, &rb), 1u);
  for (std::size_t e = 0; e < ra[0].pose.numel(); ++e)
    EXPECT_EQ(ra[0].pose[e], rb[0].pose[e]);
}

TEST_F(ServerTest, QueuedWindowPastDeadlineIsCancelled) {
  ServeConfig cfg;
  cfg.deadline_ms = 5.0;
  Server server = make_server(cfg);
  const auto j = server.join();
  ASSERT_TRUE(j.admitted);
  submit_window(server, j.id);
  g_fake_now.store(6'000'000);  // 6 ms later: past the 5 ms deadline
  EXPECT_EQ(server.step(), 1);
  std::vector<serve::WindowResult> results;
  ASSERT_EQ(server.poll(j.id, &results), 1u);
  EXPECT_EQ(results[0].disposition, Disposition::kDeadlineMissed);
  EXPECT_EQ(server.stats().windows_missed, 1u);
  EXPECT_EQ(server.stats().windows_completed, 0u);
}

TEST_F(ServerTest, DeadlineExpiryMidBatchIsDetected) {
  ServeConfig cfg;
  cfg.deadline_ms = 15.0;  // the advancing clock moves 10 ms per read
  Server server = make_server(cfg, advancing_clock);
  const auto j = server.join();
  ASSERT_TRUE(j.admitted);
  submit_window(server, j.id);  // ready at t=0, deadline 15 ms
  // step(): expiry check reads t=10 ms (inside), completion reads
  // t=20 ms (outside) — the window went stale while the batch ran.
  EXPECT_EQ(server.step(), 1);
  std::vector<serve::WindowResult> results;
  ASSERT_EQ(server.poll(j.id, &results), 1u);
  EXPECT_EQ(results[0].disposition, Disposition::kDeadlineMissed);
  EXPECT_FALSE(results[0].pose.empty());  // late work is still delivered
}

TEST_F(ServerTest, DropOldestShedsTheStalestWindow) {
  ServeConfig cfg;
  cfg.queue_cap = 1;
  cfg.policy = ShedPolicy::kDropOldest;
  Server server = make_server(cfg);
  const auto j = server.join();
  ASSERT_TRUE(j.admitted);
  submit_window(server, j.id);  // seq 0 queues
  submit_window(server, j.id);  // seq 1 evicts seq 0
  std::vector<serve::WindowResult> results;
  ASSERT_EQ(server.poll(j.id, &results), 1u);
  EXPECT_EQ(results[0].disposition, Disposition::kShed);
  EXPECT_EQ(results[0].seq, 0u);
  server.drain();
  results.clear();
  ASSERT_EQ(server.poll(j.id, &results), 1u);
  EXPECT_EQ(results[0].disposition, Disposition::kCompleted);
  EXPECT_EQ(results[0].seq, 1u);
  EXPECT_EQ(server.stats().windows_shed, 1u);
}

TEST_F(ServerTest, RejectNewRefusesTheCompletingFrame) {
  ServeConfig cfg;
  cfg.queue_cap = 1;
  cfg.policy = ShedPolicy::kRejectNew;
  Server server = make_server(cfg);
  const auto j = server.join();
  ASSERT_TRUE(j.admitted);
  submit_window(server, j.id);  // seq 0 queues, queue now full
  const int frames = tiny_net().frames_per_sample();
  for (int f = 0; f < frames - 1; ++f)
    ASSERT_TRUE(
        server.submit(j.id, recording_.frames[static_cast<std::size_t>(f)]
                                .cube)
            .accepted);
  const auto r =
      server.submit(j.id,
                    recording_.frames[static_cast<std::size_t>(frames - 1)]
                        .cube);
  EXPECT_FALSE(r.accepted);
  EXPECT_FALSE(r.session_unknown);
  EXPECT_GT(r.retry_after_ms, 0.0);
  // The queued window is untouched and completes normally.
  server.drain();
  std::vector<serve::WindowResult> results;
  ASSERT_EQ(server.poll(j.id, &results), 1u);
  EXPECT_EQ(results[0].disposition, Disposition::kCompleted);
  // After the drain frees the queue, the retried frame is accepted.
  const auto retry =
      server.submit(j.id,
                    recording_.frames[static_cast<std::size_t>(frames - 1)]
                        .cube);
  EXPECT_TRUE(retry.accepted);
}

TEST_F(ServerTest, TierEscalatesWithHysteresisAndRecovers) {
  ServeConfig cfg;
  cfg.queue_cap = 2;
  cfg.batch_max = 1;
  cfg.max_inflight = 64;
  cfg.hold_ticks = 3;
  cfg.shed_hi = 0.75;
  cfg.shed_lo = 0.25;
  cfg.deadline_ms = 1e9;
  Server server = make_server(cfg);
  const auto j = server.join();
  ASSERT_TRUE(j.admitted);
  // Pressure 1.0 (2 queued / 1 session * cap 2).  Each step drains one
  // window but we refill, so pressure stays above shed_hi.
  submit_window(server, j.id);
  submit_window(server, j.id);
  EXPECT_EQ(server.tier(), Tier::kFull);
  server.step();  // hi streak 1
  submit_window(server, j.id);
  EXPECT_EQ(server.tier(), Tier::kFull);  // hysteresis holds
  server.step();  // hi streak 2
  submit_window(server, j.id);
  EXPECT_EQ(server.tier(), Tier::kFull);
  server.step();  // hi streak 3 -> escalate
  EXPECT_EQ(server.tier(), Tier::kNoMesh);
  // Pressure drops to zero: recovery needs hold_ticks quiet steps too.
  server.drain();
  server.step();
  EXPECT_EQ(server.tier(), Tier::kNoMesh);  // no flapping
  server.step();
  EXPECT_EQ(server.tier(), Tier::kNoMesh);
  server.step();
  EXPECT_EQ(server.tier(), Tier::kFull);
}

TEST_F(ServerTest, PoseOnlyTierHalvesWindowDensity) {
  ServeConfig cfg;
  cfg.queue_cap = 2;
  cfg.batch_max = 1;
  cfg.hold_ticks = 1;
  cfg.deadline_ms = 1e9;
  Server server = make_server(cfg);
  const auto j = server.join();
  ASSERT_TRUE(j.admitted);
  // Two escalations with hold 1: kFull -> kNoMesh -> kPoseOnly.
  submit_window(server, j.id);
  submit_window(server, j.id);
  server.step();
  submit_window(server, j.id);
  server.step();
  EXPECT_EQ(server.tier(), Tier::kPoseOnly);
  // Under kPoseOnly every other completed window is shed pre-queue.
  const auto before = server.stats();
  submit_window(server, j.id);
  submit_window(server, j.id);
  const auto after = server.stats();
  EXPECT_EQ(after.degraded_drops - before.degraded_drops, 1u);
  server.drain();
}

TEST_F(ServerTest, StatsAccountForEveryWindow) {
  ServeConfig cfg;
  Server server = make_server(cfg);
  const auto j = server.join();
  ASSERT_TRUE(j.admitted);
  for (int w = 0; w < 3; ++w) submit_window(server, j.id);
  server.drain();
  const auto stats = server.stats();
  EXPECT_EQ(stats.windows_completed + stats.windows_shed +
                stats.windows_missed,
            3u);
  EXPECT_EQ(stats.ready_depth, 0);
  EXPECT_EQ(stats.inflight, 0);
  EXPECT_LE(stats.max_ready_depth,
            static_cast<std::uint64_t>(cfg.max_inflight));
}

// ---------------------------------------------------------------------------
// Chaos client

TEST_F(ServerTest, SimClientConsumesServingFaultKinds) {
  fault::set_spec("stall=1,seed=5");
  ServeConfig cfg;
  Server server = make_server(cfg);
  serve::ClientConfig cc;
  serve::SimClient client(server, recording_, cc);
  for (int t = 0; t < 10; ++t) client.tick();
  EXPECT_GT(client.stats().stalls, 0u);
  fault::set_spec("churn=1,seed=5");
  // A stall armed under the previous spec can linger for up to
  // stall_ticks_max ticks; give the churn phase room to drain it.
  for (int t = 0; t < 12; ++t) client.tick();
  EXPECT_GT(client.stats().churns, 0u);
  fault::set_spec("");
  client.finish();
  server.drain();
}

TEST(ServeFaults, NewKindsParseAndInjectDeterministically) {
  fault::set_spec("churn=0.5,burst=0.25,stall=1,seed=42");
  EXPECT_DOUBLE_EQ(fault::rate(fault::Kind::kChurn), 0.5);
  EXPECT_DOUBLE_EQ(fault::rate(fault::Kind::kBurst), 0.25);
  EXPECT_DOUBLE_EQ(fault::rate(fault::Kind::kStall), 1.0);
  std::vector<bool> first;
  for (int i = 0; i < 32; ++i)
    first.push_back(fault::should_inject(fault::Kind::kChurn));
  fault::set_spec("churn=0.5,burst=0.25,stall=1,seed=42");
  for (int i = 0; i < 32; ++i)
    EXPECT_EQ(fault::should_inject(fault::Kind::kChurn),
              first[static_cast<std::size_t>(i)]);
  fault::set_spec("");
}

// ---------------------------------------------------------------------------
// Concurrency (exercised under TSan by scripts/check_sanitizer.sh)

TEST_F(ServerTest, JoinLeaveSubmitRacesAreClean) {
  ServeConfig cfg;
  cfg.max_sessions = 8;
  cfg.deadline_ms = 1e9;
  Server::Options opts;  // threaded scheduler, real clock
  Server server(cfg, *model_, opts);
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      Rng trng(static_cast<std::uint64_t>(100 + t));
      while (!stop.load(std::memory_order_relaxed)) {
        const auto j = server.join();
        if (!j.admitted) continue;
        const int frames = 1 + static_cast<int>(trng.uniform() * 6);
        for (int f = 0; f < frames; ++f)
          server.submit(
              j.id,
              recording_.frames[static_cast<std::size_t>(f) %
                                recording_.frames.size()]
                  .cube);
        std::vector<serve::WindowResult> results;
        server.poll(j.id, &results);
        server.leave(j.id);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (auto& w : workers) w.join();
  server.drain();
  const auto stats = server.stats();
  EXPECT_EQ(stats.ready_depth, 0);
  EXPECT_EQ(stats.inflight, 0);
}

// ---------------------------------------------------------------------------
// Drained parity with the offline pipeline

void expect_drained_parity(int threads) {
  const int prev_threads = num_threads();
  set_num_threads(threads);
  Rng rng(11);
  pose::HandJointRegressor model(tiny_net(), rng);
  const sim::Recording recording = tiny_recording(16);

  ServeConfig cfg;
  cfg.deadline_ms = 1e9;
  cfg.queue_cap = 64;
  cfg.max_inflight = 256;
  cfg.batch_max = 3;
  Server::Options opts;
  opts.manual_step = true;
  opts.clock = fake_clock;
  Server server(cfg, model, opts);
  const auto a = server.join();
  const auto b = server.join();
  ASSERT_TRUE(a.admitted && b.admitted);
  for (const auto& frame : recording.frames) {
    ASSERT_TRUE(server.submit(a.id, frame.cube).accepted);
    ASSERT_TRUE(server.submit(b.id, frame.cube).accepted);
  }
  server.drain();

  // Reference: predict_recording's healthy path over the same windows.
  const auto predictions = pose::predict_recording(model, recording);
  const auto cfg_net = tiny_net();
  const int segments = cfg_net.sequence_segments;
  for (const auto id : {a.id, b.id}) {
    std::vector<serve::WindowResult> results;
    server.poll(id, &results);
    ASSERT_EQ(results.size(),
              predictions.size() / static_cast<std::size_t>(segments));
    for (const auto& r : results) {
      ASSERT_EQ(r.disposition, Disposition::kCompleted);
      for (int s = 0; s < segments; ++s) {
        const auto& pred =
            predictions[r.seq * static_cast<std::size_t>(segments) +
                        static_cast<std::size_t>(s)];
        const auto got = pose::row_to_joints(r.pose, s);
        for (int joint = 0; joint < hand::kNumJoints; ++joint) {
          EXPECT_EQ(got[static_cast<std::size_t>(joint)].x,
                    pred.joints[static_cast<std::size_t>(joint)].x);
          EXPECT_EQ(got[static_cast<std::size_t>(joint)].y,
                    pred.joints[static_cast<std::size_t>(joint)].y);
          EXPECT_EQ(got[static_cast<std::size_t>(joint)].z,
                    pred.joints[static_cast<std::size_t>(joint)].z);
        }
      }
    }
  }
  set_num_threads(prev_threads);
}

TEST(ServeParity, DrainedServerMatchesOfflinePipelineOneThread) {
  expect_drained_parity(1);
}

TEST(ServeParity, DrainedServerMatchesOfflinePipelineFourThreads) {
  expect_drained_parity(4);
}

// ---------------------------------------------------------------------------
// Tensor pool (the allocation-free serving substrate)

TEST(TensorPool, SteadyStateForwardRecyclesBuffers) {
  nn::set_tensor_pool_enabled(true);
  Rng rng(13);
  pose::HandJointRegressor model(tiny_net(), rng);
  Rng xrng(14);
  const auto cfg = tiny_net();
  const nn::Tensor x = random_tensor(
      {cfg.frames_per_sample(), cfg.velocity_bins, cfg.range_bins,
       cfg.angle_bins},
      xrng);
  nn::Tensor warm = model.forward(x, false);  // parks the activations
  const auto before = nn::tensor_pool_stats();
  nn::Tensor out = model.forward(x, false);
  const auto after = nn::tensor_pool_stats();
  EXPECT_GT(after.hits, before.hits);
  // Values are unchanged by pooling.
  for (std::size_t e = 0; e < out.numel(); ++e)
    EXPECT_EQ(out[e], warm[e]);
  nn::set_tensor_pool_enabled(false);
  nn::tensor_pool_clear();
}

}  // namespace
}  // namespace mmhand
