// Tests for tools/lint: every mmhand_lint rule against violation and
// clean fixtures, allowlist handling, the --json report shape, and the
// common/json error paths the linter's config loading leans on.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint/lint_core.hpp"
#include "lint/purity_core.hpp"
#include "mmhand/common/json.hpp"

namespace mmhand::lint {
namespace {

/// True when some finding carries `rule`.
bool has_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

std::vector<Finding> lint_src(const std::string& content,
                              const std::string& path = "src/mmhand/x/f.cpp") {
  return check_file(path, content, default_config());
}

// --- getenv-allowlist ---------------------------------------------------

TEST(LintGetenv, FlagsGetenvOutsideAllowlist) {
  const auto findings =
      lint_src("const char* e = std::getenv(\"PATH\");\n");
  ASSERT_TRUE(has_rule(findings, "getenv-allowlist"));
  EXPECT_EQ(findings[0].line, 1);
}

TEST(LintGetenv, AllowsAllowlistedFile) {
  const auto findings = check_file("src/mmhand/obs/state.cpp",
                                   "std::getenv(\"X\");\n",
                                   default_config());
  EXPECT_FALSE(has_rule(findings, "getenv-allowlist"));
}

TEST(LintGetenv, IgnoresCommentsAndStrings) {
  EXPECT_TRUE(lint_src("// getenv here\n"
                       "const char* s = \"getenv\";\n")
                  .empty());
}

TEST(LintGetenv, DoesNotApplyOutsideLibrary) {
  EXPECT_TRUE(check_file("tests/test_x.cpp", "std::getenv(\"X\");\n",
                         default_config())
                  .empty());
}

// --- no-direct-io -------------------------------------------------------

TEST(LintDirectIo, FlagsPrintfCoutCerr) {
  EXPECT_TRUE(has_rule(lint_src("std::printf(\"x\");\n"), "no-direct-io"));
  EXPECT_TRUE(has_rule(lint_src("std::cout << 1;\n"), "no-direct-io"));
  EXPECT_TRUE(has_rule(lint_src("std::cerr << 1;\n"), "no-direct-io"));
  EXPECT_TRUE(
      has_rule(lint_src("std::fprintf(stderr, \"x\");\n"), "no-direct-io"));
}

TEST(LintDirectIo, AllowsBufferFormattingAndFileIo) {
  // snprintf/vsnprintf format into buffers; fprintf to a data FILE* is
  // legitimate output, only console streams are banned.
  EXPECT_TRUE(lint_src("std::snprintf(buf, sizeof(buf), \"%d\", 1);\n"
                       "std::vsnprintf(buf, sizeof(buf), fmt, args);\n"
                       "std::fprintf(file, \"%d\", 1);\n"
                       "std::fwrite(data, 1, n, file);\n")
                  .empty());
}

TEST(LintDirectIo, ExemptsObsAndSanctionedPrinters) {
  const std::string io = "std::fprintf(stderr, \"x\");\n";
  EXPECT_FALSE(has_rule(
      check_file("src/mmhand/obs/log.cpp", io, default_config()),
      "no-direct-io"));
  EXPECT_FALSE(has_rule(check_file("src/mmhand/eval/table_printer.cpp",
                                   "std::printf(\"x\");\n",
                                   default_config()),
                        "no-direct-io"));
}

// --- no-unseeded-rng ----------------------------------------------------

TEST(LintRng, FlagsRawRandomSources) {
  EXPECT_TRUE(has_rule(lint_src("int r = rand();\n"), "no-unseeded-rng"));
  EXPECT_TRUE(has_rule(lint_src("std::random_device rd;\n"),
                       "no-unseeded-rng"));
  EXPECT_TRUE(has_rule(lint_src("srand(time(nullptr));\n"),
                       "no-unseeded-rng"));
  EXPECT_TRUE(has_rule(lint_src("auto seed = std::time(NULL);\n"),
                       "no-unseeded-rng"));
}

TEST(LintRng, CleanOnSeededRngAndSimilarNames) {
  EXPECT_TRUE(lint_src("mmhand::Rng rng(42);\n"
                       "double x = rng.uniform(0.0, 1.0);\n"
                       "int operand = 3;\n"   // "rand" inside identifiers
                       "double wall_time = t1 - t0;\n")
                  .empty());
}

TEST(LintRng, ExemptsRngImplementation) {
  EXPECT_TRUE(check_file("src/mmhand/common/rng.cpp",
                         "std::random_device rd;\n", default_config())
                  .empty());
}

// --- header hygiene -----------------------------------------------------

TEST(LintHeader, FlagsMissingPragmaOnce) {
  const auto findings =
      check_file("src/mmhand/x/f.hpp", "int f();\n", default_config());
  EXPECT_TRUE(has_rule(findings, "pragma-once"));
}

TEST(LintHeader, FlagsUsingNamespace) {
  const auto findings = check_file(
      "src/mmhand/x/f.hpp", "#pragma once\nusing namespace std;\n",
      default_config());
  EXPECT_TRUE(has_rule(findings, "no-using-namespace"));
  EXPECT_EQ(findings[0].line, 2);
}

TEST(LintHeader, CleanHeaderPasses) {
  EXPECT_TRUE(check_file("src/mmhand/x/f.hpp",
                         "#pragma once\n"
                         "// using namespace in a comment is fine\n"
                         "using Alias = int;\n"
                         "int f();\n",
                         default_config())
                  .empty());
}

TEST(LintHeader, SourceFilesNeedNoPragma) {
  EXPECT_TRUE(check_file("src/mmhand/x/f.cpp", "int f() { return 1; }\n",
                         default_config())
                  .empty());
}

// --- no-raw-alloc -------------------------------------------------------

TEST(LintAlloc, FlagsNakedArrayNewAndMalloc) {
  EXPECT_TRUE(has_rule(lint_src("float* xs = new float[n];\n"),
                       "no-raw-alloc"));
  EXPECT_TRUE(has_rule(lint_src("auto* p = new std::uint8_t[64];\n"),
                       "no-raw-alloc"));
  EXPECT_TRUE(has_rule(lint_src("void* p = malloc(64);\n"), "no-raw-alloc"));
}

TEST(LintAlloc, AllowsContainersAndScalarNew) {
  EXPECT_TRUE(lint_src("std::vector<float> xs(n);\n"
                       "auto p = std::make_unique<Foo>();\n"
                       "auto* q = new Foo(1, 2);\n")
                  .empty());
}

// --- simd-confinement ---------------------------------------------------

TEST(LintSimd, FlagsIntrinsicsHeaderOutsideSimdLayer) {
  EXPECT_TRUE(has_rule(lint_src("#include <immintrin.h>\n"),
                       "simd-confinement"));
  EXPECT_TRUE(has_rule(lint_src("#include <arm_neon.h>\n",
                                "src/mmhand/dsp/fft.cpp"),
                       "simd-confinement"));
}

TEST(LintSimd, FlagsIntrinsicIdentifiersOutsideSimdLayer) {
  EXPECT_TRUE(has_rule(
      lint_src("__m256d v = _mm256_loadu_pd(p);\n"), "simd-confinement"));
  EXPECT_TRUE(has_rule(lint_src("auto v = vld1q_f64(p);\n"),
                       "simd-confinement"));
  EXPECT_TRUE(has_rule(lint_src("_mm_prefetch(p, _MM_HINT_T0);\n"),
                       "simd-confinement"));
}

TEST(LintSimd, AllowsIntrinsicsUnderSimdLayer) {
  const auto findings = check_file(
      "src/mmhand/simd/vec_avx2.hpp",
      "#pragma once\n#include <immintrin.h>\n"
      "inline __m256d f(const double* p) { return _mm256_loadu_pd(p); }\n",
      default_config());
  EXPECT_FALSE(has_rule(findings, "simd-confinement"));
}

TEST(LintSimd, CleanOnDispatchTableCalls) {
  EXPECT_TRUE(lint_src("const auto& k = simd::kernels();\n"
                       "k.vmag(re.data(), im.data(), out.data(), n);\n")
                  .empty());
}

// --- pmu-confinement ----------------------------------------------------

TEST(LintPmu, FlagsPerfEventHeadersOutsidePmuLayer) {
  EXPECT_TRUE(has_rule(lint_src("#include <linux/perf_event.h>\n"),
                       "pmu-confinement"));
  EXPECT_TRUE(has_rule(lint_src("#include <sys/syscall.h>\n",
                                "src/mmhand/obs/trace.cpp"),
                       "pmu-confinement"));
}

TEST(LintPmu, FlagsPerfEventIdentifiersOutsidePmuLayer) {
  EXPECT_TRUE(has_rule(
      lint_src("struct perf_event_attr attr = {};\n"), "pmu-confinement"));
  EXPECT_TRUE(has_rule(
      lint_src("long fd = syscall(SYS_perf_event_open, &a, 0, -1, g, 0);\n"),
      "pmu-confinement"));
}

TEST(LintPmu, AllowsPerfEventUnderPmuLayer) {
  const auto findings = check_file(
      "src/mmhand/obs/pmu.cpp",
      "#include <linux/perf_event.h>\n#include <sys/syscall.h>\n"
      "long open_leader(perf_event_attr* a) {\n"
      "  return syscall(SYS_perf_event_open, a, 0, -1, -1, 0);\n"
      "}\n",
      default_config());
  EXPECT_FALSE(has_rule(findings, "pmu-confinement"));
}

TEST(LintPmu, CleanOnCommentsAndSubstrings) {
  // Comments are stripped before the rules run, and `syscall` must match
  // as a whole token, not inside another identifier.
  EXPECT_TRUE(lint_src("// perf_event_open is confined to obs/pmu\n"
                       "int raw_syscall_count = 0;\n")
                  .empty());
}

// --- durable-write ------------------------------------------------------

TEST(LintDurableWrite, FlagsBinaryWritersOutsideIoSafe) {
  EXPECT_TRUE(has_rule(
      lint_src("std::ofstream out(path, std::ios::binary);\n"),
      "durable-write"));
  EXPECT_TRUE(has_rule(
      lint_src("std::FILE* f = std::fopen(path.c_str(), \"wb\");\n"),
      "durable-write"));
  EXPECT_TRUE(has_rule(lint_src("auto* f = fopen(p, \"ab\");\n"),
                       "durable-write"));
}

TEST(LintDurableWrite, AllowsReadsTextAndIoSafeItself) {
  // Binary reads, text writes, and the durable layer itself stay legal.
  EXPECT_TRUE(lint_src("std::ifstream in(path, std::ios::binary);\n"
                       "std::ofstream log(path);\n"
                       "std::FILE* f = std::fopen(path.c_str(), \"rb\");\n"
                       "std::FILE* g = std::fopen(path.c_str(), \"a\");\n")
                  .empty());
  EXPECT_FALSE(has_rule(
      check_file("src/mmhand/common/io_safe.cpp",
                 "std::FILE* f = std::fopen(tmp.c_str(), \"wb\");\n",
                 default_config()),
      "durable-write"));
}

TEST(LintDurableWrite, AllowlistExtendsViaJson) {
  Config cfg = default_config();
  std::string error;
  ASSERT_TRUE(parse_allowlist_json(
      "{\"durable_write\": [\"src/mmhand/x/f.cpp\"]}", &cfg, &error))
      << error;
  EXPECT_FALSE(has_rule(
      check_file("src/mmhand/x/f.cpp",
                 "std::FILE* f = std::fopen(p, \"wb\");\n", cfg),
      "durable-write"));
}

// --- env-var-docs -------------------------------------------------------

TEST(LintEnvDocs, FlagsUndocumentedLiteral) {
  Config cfg = default_config();
  cfg.documented_env = {"MMHAND_THREADS"};
  const auto findings = check_file(
      "src/mmhand/x/f.cpp", "std::string k = \"MMHAND_NOT_IN_README\";\n",
      cfg);
  ASSERT_TRUE(has_rule(findings, "env-var-docs"));
  EXPECT_NE(findings[0].message.find("MMHAND_NOT_IN_README"),
            std::string::npos);
}

TEST(LintEnvDocs, DocumentedLiteralPasses) {
  Config cfg = default_config();
  cfg.documented_env = {"MMHAND_THREADS"};
  EXPECT_TRUE(check_file("src/mmhand/x/f.cpp",
                         "const char* k = \"MMHAND_THREADS\";\n", cfg)
                  .empty());
}

TEST(LintEnvDocs, ExtractsNamesFromReadme) {
  const auto names = extract_documented_env(
      "| `MMHAND_THREADS` | integer | pool size |\n"
      "Set MMHAND_FAST=1 while iterating.\n");
  EXPECT_EQ(names, (std::vector<std::string>{"MMHAND_FAST",
                                             "MMHAND_THREADS"}));
}

// --- allowlist config ---------------------------------------------------

TEST(LintAllowlist, JsonOverridesDefaults) {
  Config cfg = default_config();
  std::string error;
  ASSERT_TRUE(parse_allowlist_json(
      "{\"getenv\": [\"src/mmhand/x/custom.cpp\"]}", &cfg, &error))
      << error;
  EXPECT_EQ(cfg.getenv_allow,
            (std::vector<std::string>{"src/mmhand/x/custom.cpp"}));
  // Untouched keys keep their defaults.
  EXPECT_FALSE(cfg.io_allow.empty());
  EXPECT_TRUE(
      check_file("src/mmhand/x/custom.cpp", "std::getenv(\"X\");\n", cfg)
          .empty());
  EXPECT_TRUE(has_rule(check_file("src/mmhand/obs/state.cpp",
                                  "std::getenv(\"X\");\n", cfg),
                       "getenv-allowlist"));
}

TEST(LintAllowlist, RejectsMalformedConfig) {
  Config cfg = default_config();
  std::string error;
  EXPECT_FALSE(parse_allowlist_json("{\"getenv\": 3}", &cfg, &error));
  EXPECT_NE(error.find("getenv"), std::string::npos);
  EXPECT_FALSE(parse_allowlist_json("not json", &cfg, &error));
  EXPECT_FALSE(parse_allowlist_json("{\"direct_io\": [1]}", &cfg, &error));
}

// --- --json report shape ------------------------------------------------

TEST(LintJsonReport, ShapeRoundTripsThroughParser) {
  const std::vector<Finding> findings{
      {"src/mmhand/x/f.cpp", 3, "no-direct-io", "printf \"quoted\""},
      {"src/mmhand/x/f.cpp", 9, "no-direct-io", "cout"},
      {"src/mmhand/y/g.hpp", 1, "pragma-once", "missing"},
  };
  std::string error;
  const json::Value v =
      json::Value::parse(findings_to_json(findings, 42), &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(v.string_or("tool", ""), "mmhand_lint");
  EXPECT_EQ(v.number_or("files_scanned", 0), 42.0);
  const json::Value* counts = v.find("counts");
  ASSERT_NE(counts, nullptr);
  EXPECT_EQ(counts->number_or("no-direct-io", 0), 2.0);
  EXPECT_EQ(counts->number_or("pragma-once", 0), 1.0);
  const json::Value* arr = v.find("findings");
  ASSERT_NE(arr, nullptr);
  ASSERT_EQ(arr->as_array().size(), 3u);
  const json::Value& first = arr->as_array()[0];
  EXPECT_EQ(first.string_or("file", ""), "src/mmhand/x/f.cpp");
  EXPECT_EQ(first.number_or("line", 0), 3.0);
  EXPECT_EQ(first.string_or("message", ""), "printf \"quoted\"");
}

TEST(LintJsonReport, EmptyFindingsStillValid) {
  std::string error;
  const json::Value v = json::Value::parse(findings_to_json({}, 7), &error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_NE(v.find("findings"), nullptr);
  EXPECT_TRUE(v.find("findings")->as_array().empty());
}

// --- comment/string stripping -------------------------------------------

TEST(LintStrip, PreservesLineStructure) {
  const std::string src = "int a; // getenv\n/* rand\n rand */ int b;\n";
  const std::string stripped = strip_comments_and_strings(src);
  EXPECT_EQ(std::count(src.begin(), src.end(), '\n'),
            std::count(stripped.begin(), stripped.end(), '\n'));
  EXPECT_EQ(stripped.find("getenv"), std::string::npos);
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_NE(stripped.find("int b;"), std::string::npos);
}

TEST(LintStrip, HandlesEscapedQuotes) {
  const std::string stripped = strip_comments_and_strings(
      "const char* s = \"a \\\" getenv\"; int rand_site;\n");
  EXPECT_EQ(stripped.find("getenv"), std::string::npos);
  EXPECT_NE(stripped.find("rand_site"), std::string::npos);
}

// --- common/json error paths (the linter's config dependency) -----------

TEST(JsonErrors, TruncatedInput) {
  for (const char* bad : {"{\"a\": ", "[1, 2", "\"unterminated", "{", "nul"}) {
    std::string error;
    const json::Value v = json::Value::parse(bad, &error);
    EXPECT_FALSE(error.empty()) << "input: " << bad;
    EXPECT_TRUE(v.is_null()) << "input: " << bad;
  }
}

TEST(JsonErrors, BadEscape) {
  std::string error;
  json::Value::parse("\"bad \\q escape\"", &error);
  EXPECT_NE(error.find("escape"), std::string::npos);
  json::Value::parse("\"short \\u12\"", &error);
  EXPECT_FALSE(error.empty());
  json::Value::parse("\"bad hex \\uZZZZ\"", &error);
  EXPECT_FALSE(error.empty());
}

TEST(JsonErrors, TrailingGarbage) {
  std::string error;
  json::Value::parse("{\"a\": 1} extra", &error);
  EXPECT_NE(error.find("trailing"), std::string::npos);
  // Trailing whitespace is fine.
  const json::Value v = json::Value::parse("{\"a\": 1}  \n", &error);
  EXPECT_TRUE(error.empty()) << error;
  EXPECT_EQ(v.number_or("a", 0), 1.0);
}

TEST(JsonErrors, ErrorReportsOffset) {
  std::string error;
  json::Value::parse("{\"a\": @}", &error);
  EXPECT_NE(error.find("offset"), std::string::npos);
}

// --- tokenizer: raw strings ---------------------------------------------

TEST(LintStrip, BlanksRawStringContents) {
  const std::string stripped = strip_comments_and_strings(
      "const char* s = R\"(std::getenv(\"PATH\") and rand())\";\n"
      "int keep_me;\n");
  EXPECT_EQ(stripped.find("getenv"), std::string::npos);
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_NE(stripped.find("keep_me"), std::string::npos);
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'), 2);
}

TEST(LintStrip, RawStringQuoteDoesNotDesyncLexer) {
  // The classic raw-string trap: `R"(")"` holds a lone quote.  A lexer
  // without raw-string states pairs that inner quote with the closing
  // one and swallows the *next* statement as string text — hiding the
  // getenv call below from every rule.
  const std::string src =
      "const char* s = R\"(\")\";\n"
      "std::getenv(\"PATH\");\n";
  EXPECT_NE(strip_comments_and_strings(src).find("getenv"),
            std::string::npos);
  EXPECT_TRUE(has_rule(lint_src(src), "getenv-allowlist"));
}

TEST(LintStrip, RawStringDelimitersAndPrefixes) {
  // Custom delimiter: an embedded `)"` is content, not a terminator.
  const std::string custom = strip_comments_and_strings(
      "auto s = R\"x(inner )\" quote rand())x\"; int after;\n");
  EXPECT_EQ(custom.find("rand"), std::string::npos);
  EXPECT_NE(custom.find("after"), std::string::npos);
  // Encoding prefixes reach the same state.
  EXPECT_EQ(strip_comments_and_strings("auto s = u8R\"(rand())\";\n")
                .find("rand"),
            std::string::npos);
  // An identifier merely ending in R is not a raw-string prefix.
  EXPECT_NE(strip_comments_and_strings("int VAR = f(\"x\");\n").find("VAR"),
            std::string::npos);
}

TEST(LintStrip, MultiLineRawStringKeepsLineNumbers) {
  const std::string src =
      "auto s = R\"(line one\nline two rand())\";\nstd::getenv(\"P\");\n";
  const auto findings = lint_src(src);
  ASSERT_TRUE(has_rule(findings, "getenv-allowlist"));
  EXPECT_EQ(findings[0].line, 3);
}

// --- tokenizer: line-continuation comments ------------------------------

TEST(LintStrip, BackslashContinuationExtendsLineComment) {
  // A trailing backslash splices the next line into the comment
  // (translation phase 2 runs before comment removal), so the getenv
  // "call" below is comment text, not code.
  EXPECT_TRUE(lint_src("// disabled: \\\nstd::getenv(\"PATH\");\n").empty());
  // Without the backslash the same layout is a real call.
  EXPECT_TRUE(has_rule(lint_src("// disabled:\nstd::getenv(\"PATH\");\n"),
                       "getenv-allowlist"));
}

TEST(LintStrip, ContinuationChainsAcrossLines) {
  EXPECT_TRUE(
      lint_src("// a \\\n b \\\n std::system(\"rm\");\nint ok;\n").empty());
}

// --- raw-alloc allowlist ------------------------------------------------

TEST(LintAlloc, InterposerFileIsExemptFromRawAlloc) {
  const std::string src = "void* p = std::malloc(n);\n";
  EXPECT_TRUE(has_rule(lint_src(src), "no-raw-alloc"));
  EXPECT_FALSE(has_rule(
      check_file("src/mmhand/obs/alloc.cpp", src, default_config()),
      "no-raw-alloc"));
}

TEST(LintAlloc, RawAllocAllowlistExtendsViaJson) {
  Config cfg = default_config();
  std::string error;
  ASSERT_TRUE(parse_allowlist_json(
      "{\"raw_alloc\": [\"src/mmhand/x/pool.cpp\"]}", &cfg, &error))
      << error;
  EXPECT_FALSE(has_rule(
      check_file("src/mmhand/x/pool.cpp", "std::malloc(8);\n", cfg),
      "no-raw-alloc"));
}

// --- purity analyzer ----------------------------------------------------

using Files = std::vector<std::pair<std::string, std::string>>;

PurityReport purity(const Files& files, PurityConfig cfg = {}) {
  return analyze_purity(files, cfg);
}

/// The single root of a one-root report.
const PurityRoot& only_root(const PurityReport& r) {
  EXPECT_EQ(r.roots.size(), 1u);
  return r.roots.front();
}

TEST(Purity, FlagsHeapAllocWithCallChain) {
  const auto report = purity({{"src/mmhand/x/a.cpp",
                               "namespace mmhand::x {\n"
                               "void helper(std::vector<int>& v) {\n"
                               "  v.push_back(1);\n"
                               "}\n"
                               "MMHAND_REALTIME void hot() {\n"
                               "  std::vector<int> v;\n"
                               "  helper(v);\n"
                               "}\n"
                               "}\n"}});
  const PurityRoot& root = only_root(report);
  EXPECT_EQ(root.name, "mmhand::x::hot");
  ASSERT_FALSE(root.hits.empty());
  const PurityHit& hit = root.hits.front();
  EXPECT_EQ(hit.category, "heap-alloc");
  EXPECT_EQ(hit.token, "push_back");
  EXPECT_EQ(hit.function, "mmhand::x::helper");
  EXPECT_EQ(hit.line, 3);
  ASSERT_EQ(hit.chain.size(), 2u);
  EXPECT_EQ(hit.chain[0], "mmhand::x::hot");
  EXPECT_EQ(hit.chain[1], "mmhand::x::helper");
  EXPECT_FALSE(purity_clean(report));
}

TEST(Purity, FlagsNewExpressionInRootItself) {
  const auto report = purity(
      {{"src/mmhand/x/a.cpp",
        "MMHAND_REALTIME int* hot() { return new int(3); }\n"}});
  const PurityRoot& root = only_root(report);
  ASSERT_EQ(root.hits.size(), 1u);
  EXPECT_EQ(root.hits[0].category, "heap-alloc");
  EXPECT_EQ(root.hits[0].token, "new");
  EXPECT_EQ(root.hits[0].chain.size(), 1u);
}

TEST(Purity, FlagsLocks) {
  const auto report = purity({{"src/mmhand/x/a.cpp",
                               "void guard() {\n"
                               "  std::lock_guard<std::mutex> lk(mu);\n"
                               "}\n"
                               "MMHAND_REALTIME void hot() { guard(); }\n"}});
  const PurityRoot& root = only_root(report);
  ASSERT_FALSE(root.hits.empty());
  EXPECT_EQ(root.hits[0].category, "lock");
  EXPECT_EQ(root.hits[0].function, "guard");
}

TEST(Purity, FlagsThrow) {
  const auto report = purity(
      {{"src/mmhand/x/a.cpp",
        "void fail() { throw std::runtime_error(\"x\"); }\n"
        "MMHAND_REALTIME void hot() { fail(); }\n"}});
  ASSERT_FALSE(only_root(report).hits.empty());
  EXPECT_EQ(only_root(report).hits[0].category, "throw");
  EXPECT_EQ(only_root(report).hits[0].token, "throw");
}

TEST(Purity, FlagsIoAndSyscalls) {
  const auto io = purity(
      {{"src/mmhand/x/a.cpp",
        "void log_it() { std::fprintf(stderr, \"x\"); }\n"
        "MMHAND_REALTIME void hot() { log_it(); }\n"}});
  ASSERT_FALSE(only_root(io).hits.empty());
  EXPECT_EQ(only_root(io).hits[0].category, "io");

  const auto sys = purity(
      {{"src/mmhand/x/a.cpp",
        "void pause_it() { std::this_thread::sleep_for(ms); }\n"
        "MMHAND_REALTIME void hot() { pause_it(); }\n"}});
  ASSERT_FALSE(only_root(sys).hits.empty());
  EXPECT_EQ(only_root(sys).hits[0].category, "syscall");
  EXPECT_EQ(only_root(sys).hits[0].token, "sleep_for");
}

TEST(Purity, ChainsSpanFiles) {
  const auto report = purity(
      {{"src/mmhand/x/a.cpp",
        "MMHAND_REALTIME void hot() { mid(); }\n"},
       {"src/mmhand/x/b.cpp", "void mid() { deep(); }\n"},
       {"src/mmhand/x/c.cpp", "void deep() { malloc(8); }\n"}});
  const PurityRoot& root = only_root(report);
  ASSERT_FALSE(root.hits.empty());
  const PurityHit& hit = root.hits.front();
  EXPECT_EQ(hit.file, "src/mmhand/x/c.cpp");
  ASSERT_EQ(hit.chain.size(), 3u);
  EXPECT_EQ(hit.chain[1], "mid");
  EXPECT_EQ(hit.chain[2], "deep");
}

TEST(Purity, AuditedFunctionsAreOpaque) {
  const Files files = {{"src/mmhand/x/a.cpp",
                        "namespace mmhand::x {\n"
                        "float* scratch(std::size_t n) {\n"
                        "  static thread_local std::vector<float> v;\n"
                        "  if (v.size() < n) v.resize(n);\n"
                        "  return v.data();\n"
                        "}\n"
                        "MMHAND_REALTIME void hot() { scratch(16); }\n"
                        "}\n"}};
  EXPECT_FALSE(purity_clean(purity(files)));

  PurityConfig cfg;
  cfg.audited.push_back({"x::scratch", "grow-on-demand scratch"});
  const auto report = purity(files, cfg);
  EXPECT_TRUE(purity_clean(report));
  EXPECT_EQ(only_root(report).audited, 1u);
}

TEST(Purity, AuditedRootIsStillScanned) {
  // Auditing prunes traversal *into* a function reached from a root; a
  // root's own body is always scanned.
  PurityConfig cfg;
  cfg.audited.push_back({"hot", "should not exempt the root itself"});
  const auto report = purity(
      {{"src/mmhand/x/a.cpp",
        "MMHAND_REALTIME void hot() { malloc(8); }\n"}},
      cfg);
  EXPECT_FALSE(purity_clean(report));
}

TEST(Purity, AmbiguousTerminalsDoNotResolve) {
  // `state.load(...)` must not edge into an unrelated impure `load`.
  const auto report = purity(
      {{"src/mmhand/x/a.cpp",
        "MMHAND_REALTIME int hot() { return g_state.load(); }\n"},
       {"src/mmhand/x/b.cpp",
        "void CheckpointReader::load() { std::fopen(\"f\", \"r\"); }\n"}});
  EXPECT_TRUE(purity_clean(report));
  EXPECT_GE(report.unresolved_calls, 1u);
}

TEST(Purity, QualifiedCallsPreferExactMatch) {
  // Two `init` definitions; the qualified call resolves to ns_b only,
  // so ns_a's impure body stays out of the closure.
  const auto report = purity(
      {{"src/mmhand/x/a.cpp",
        "namespace ns_a { void init() { malloc(8); } }\n"
        "namespace ns_b { void init() { } }\n"
        "MMHAND_REALTIME void hot() { ns_b::init(); }\n"}});
  EXPECT_TRUE(purity_clean(report));
}

TEST(Purity, MacroBodiesJoinTheGraph) {
  const auto report = purity(
      {{"src/mmhand/x/a.hpp",
        "#define X_FAIL(msg) \\\n"
        "  do { throw std::runtime_error(msg); } while (0)\n"},
       {"src/mmhand/x/a.cpp",
        "MMHAND_REALTIME void hot() { X_FAIL(\"boom\"); }\n"}});
  const PurityRoot& root = only_root(report);
  ASSERT_FALSE(root.hits.empty());
  EXPECT_EQ(root.hits[0].category, "throw");
  EXPECT_EQ(root.hits[0].function, "X_FAIL");
  EXPECT_EQ(root.hits[0].file, "src/mmhand/x/a.hpp");
}

TEST(Purity, CommentsStringsAndRawStringsAreInvisible) {
  const auto report = purity(
      {{"src/mmhand/x/a.cpp",
        "MMHAND_REALTIME void hot() {\n"
        "  // malloc(8) would be bad here\n"
        "  const char* s = \"malloc\";\n"
        "  const char* r = R\"(throw new std::mutex)\";\n"
        "  use(s, r);\n"
        "}\n"}});
  EXPECT_TRUE(purity_clean(report));
}

TEST(Purity, CleanTreeReportsRootsAndCounts) {
  const auto report = purity(
      {{"src/mmhand/x/a.cpp",
        "int square(int v) { return v * v; }\n"
        "MMHAND_REALTIME int hot(int v) { return square(v); }\n"}});
  EXPECT_TRUE(purity_clean(report));
  const PurityRoot& root = only_root(report);
  EXPECT_EQ(root.reachable, 2u);
  EXPECT_EQ(root.line, 2);
  EXPECT_EQ(report.functions_indexed, 2u);
  EXPECT_EQ(report.files_scanned, 1u);
}

TEST(Purity, DefaultConfigAndJsonParsing) {
  EXPECT_FALSE(default_purity_config().audited.empty());

  PurityConfig cfg;
  std::string error;
  ASSERT_TRUE(parse_purity_allowlist_json(
      "{\"audited\": [{\"function\": \"x::f\", \"reason\": \"why\"}]}",
      &cfg, &error))
      << error;
  ASSERT_EQ(cfg.audited.size(), 1u);
  EXPECT_EQ(cfg.audited[0].function, "x::f");
  EXPECT_EQ(cfg.audited[0].reason, "why");

  EXPECT_FALSE(parse_purity_allowlist_json("{\"audited\": [{}]}",
                                           &cfg, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(parse_purity_allowlist_json("not json", &cfg, &error));
}

TEST(Purity, JsonReportShape) {
  const auto report = purity(
      {{"src/mmhand/x/a.cpp",
        "void leak() { malloc(8); }\n"
        "MMHAND_REALTIME void hot() { leak(); }\n"}});
  std::string error;
  const json::Value v = json::Value::parse(purity_to_json(report), &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(v.string_or("tool", ""), "mmhand_purity");
  EXPECT_EQ(v.number_or("total_hits", 0), 1.0);
  const json::Value* roots = v.find("roots");
  ASSERT_NE(roots, nullptr);
  ASSERT_TRUE(roots->is_array());
  ASSERT_EQ(roots->as_array().size(), 1u);
  const json::Value& root = roots->as_array()[0];
  EXPECT_EQ(root.string_or("root", ""), "hot");
  const json::Value* hits = root.find("hits");
  ASSERT_NE(hits, nullptr);
  ASSERT_EQ(hits->as_array().size(), 1u);
  EXPECT_EQ(hits->as_array()[0].string_or("category", ""), "heap-alloc");
}

}  // namespace
}  // namespace mmhand::lint
