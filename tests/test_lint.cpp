// Tests for tools/lint: every mmhand_lint rule against violation and
// clean fixtures, allowlist handling, the --json report shape, and the
// common/json error paths the linter's config loading leans on.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint/lint_core.hpp"
#include "mmhand/common/json.hpp"

namespace mmhand::lint {
namespace {

/// True when some finding carries `rule`.
bool has_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

std::vector<Finding> lint_src(const std::string& content,
                              const std::string& path = "src/mmhand/x/f.cpp") {
  return check_file(path, content, default_config());
}

// --- getenv-allowlist ---------------------------------------------------

TEST(LintGetenv, FlagsGetenvOutsideAllowlist) {
  const auto findings =
      lint_src("const char* e = std::getenv(\"PATH\");\n");
  ASSERT_TRUE(has_rule(findings, "getenv-allowlist"));
  EXPECT_EQ(findings[0].line, 1);
}

TEST(LintGetenv, AllowsAllowlistedFile) {
  const auto findings = check_file("src/mmhand/obs/state.cpp",
                                   "std::getenv(\"X\");\n",
                                   default_config());
  EXPECT_FALSE(has_rule(findings, "getenv-allowlist"));
}

TEST(LintGetenv, IgnoresCommentsAndStrings) {
  EXPECT_TRUE(lint_src("// getenv here\n"
                       "const char* s = \"getenv\";\n")
                  .empty());
}

TEST(LintGetenv, DoesNotApplyOutsideLibrary) {
  EXPECT_TRUE(check_file("tests/test_x.cpp", "std::getenv(\"X\");\n",
                         default_config())
                  .empty());
}

// --- no-direct-io -------------------------------------------------------

TEST(LintDirectIo, FlagsPrintfCoutCerr) {
  EXPECT_TRUE(has_rule(lint_src("std::printf(\"x\");\n"), "no-direct-io"));
  EXPECT_TRUE(has_rule(lint_src("std::cout << 1;\n"), "no-direct-io"));
  EXPECT_TRUE(has_rule(lint_src("std::cerr << 1;\n"), "no-direct-io"));
  EXPECT_TRUE(
      has_rule(lint_src("std::fprintf(stderr, \"x\");\n"), "no-direct-io"));
}

TEST(LintDirectIo, AllowsBufferFormattingAndFileIo) {
  // snprintf/vsnprintf format into buffers; fprintf to a data FILE* is
  // legitimate output, only console streams are banned.
  EXPECT_TRUE(lint_src("std::snprintf(buf, sizeof(buf), \"%d\", 1);\n"
                       "std::vsnprintf(buf, sizeof(buf), fmt, args);\n"
                       "std::fprintf(file, \"%d\", 1);\n"
                       "std::fwrite(data, 1, n, file);\n")
                  .empty());
}

TEST(LintDirectIo, ExemptsObsAndSanctionedPrinters) {
  const std::string io = "std::fprintf(stderr, \"x\");\n";
  EXPECT_FALSE(has_rule(
      check_file("src/mmhand/obs/log.cpp", io, default_config()),
      "no-direct-io"));
  EXPECT_FALSE(has_rule(check_file("src/mmhand/eval/table_printer.cpp",
                                   "std::printf(\"x\");\n",
                                   default_config()),
                        "no-direct-io"));
}

// --- no-unseeded-rng ----------------------------------------------------

TEST(LintRng, FlagsRawRandomSources) {
  EXPECT_TRUE(has_rule(lint_src("int r = rand();\n"), "no-unseeded-rng"));
  EXPECT_TRUE(has_rule(lint_src("std::random_device rd;\n"),
                       "no-unseeded-rng"));
  EXPECT_TRUE(has_rule(lint_src("srand(time(nullptr));\n"),
                       "no-unseeded-rng"));
  EXPECT_TRUE(has_rule(lint_src("auto seed = std::time(NULL);\n"),
                       "no-unseeded-rng"));
}

TEST(LintRng, CleanOnSeededRngAndSimilarNames) {
  EXPECT_TRUE(lint_src("mmhand::Rng rng(42);\n"
                       "double x = rng.uniform(0.0, 1.0);\n"
                       "int operand = 3;\n"   // "rand" inside identifiers
                       "double wall_time = t1 - t0;\n")
                  .empty());
}

TEST(LintRng, ExemptsRngImplementation) {
  EXPECT_TRUE(check_file("src/mmhand/common/rng.cpp",
                         "std::random_device rd;\n", default_config())
                  .empty());
}

// --- header hygiene -----------------------------------------------------

TEST(LintHeader, FlagsMissingPragmaOnce) {
  const auto findings =
      check_file("src/mmhand/x/f.hpp", "int f();\n", default_config());
  EXPECT_TRUE(has_rule(findings, "pragma-once"));
}

TEST(LintHeader, FlagsUsingNamespace) {
  const auto findings = check_file(
      "src/mmhand/x/f.hpp", "#pragma once\nusing namespace std;\n",
      default_config());
  EXPECT_TRUE(has_rule(findings, "no-using-namespace"));
  EXPECT_EQ(findings[0].line, 2);
}

TEST(LintHeader, CleanHeaderPasses) {
  EXPECT_TRUE(check_file("src/mmhand/x/f.hpp",
                         "#pragma once\n"
                         "// using namespace in a comment is fine\n"
                         "using Alias = int;\n"
                         "int f();\n",
                         default_config())
                  .empty());
}

TEST(LintHeader, SourceFilesNeedNoPragma) {
  EXPECT_TRUE(check_file("src/mmhand/x/f.cpp", "int f() { return 1; }\n",
                         default_config())
                  .empty());
}

// --- no-raw-alloc -------------------------------------------------------

TEST(LintAlloc, FlagsNakedArrayNewAndMalloc) {
  EXPECT_TRUE(has_rule(lint_src("float* xs = new float[n];\n"),
                       "no-raw-alloc"));
  EXPECT_TRUE(has_rule(lint_src("auto* p = new std::uint8_t[64];\n"),
                       "no-raw-alloc"));
  EXPECT_TRUE(has_rule(lint_src("void* p = malloc(64);\n"), "no-raw-alloc"));
}

TEST(LintAlloc, AllowsContainersAndScalarNew) {
  EXPECT_TRUE(lint_src("std::vector<float> xs(n);\n"
                       "auto p = std::make_unique<Foo>();\n"
                       "auto* q = new Foo(1, 2);\n")
                  .empty());
}

// --- simd-confinement ---------------------------------------------------

TEST(LintSimd, FlagsIntrinsicsHeaderOutsideSimdLayer) {
  EXPECT_TRUE(has_rule(lint_src("#include <immintrin.h>\n"),
                       "simd-confinement"));
  EXPECT_TRUE(has_rule(lint_src("#include <arm_neon.h>\n",
                                "src/mmhand/dsp/fft.cpp"),
                       "simd-confinement"));
}

TEST(LintSimd, FlagsIntrinsicIdentifiersOutsideSimdLayer) {
  EXPECT_TRUE(has_rule(
      lint_src("__m256d v = _mm256_loadu_pd(p);\n"), "simd-confinement"));
  EXPECT_TRUE(has_rule(lint_src("auto v = vld1q_f64(p);\n"),
                       "simd-confinement"));
  EXPECT_TRUE(has_rule(lint_src("_mm_prefetch(p, _MM_HINT_T0);\n"),
                       "simd-confinement"));
}

TEST(LintSimd, AllowsIntrinsicsUnderSimdLayer) {
  const auto findings = check_file(
      "src/mmhand/simd/vec_avx2.hpp",
      "#pragma once\n#include <immintrin.h>\n"
      "inline __m256d f(const double* p) { return _mm256_loadu_pd(p); }\n",
      default_config());
  EXPECT_FALSE(has_rule(findings, "simd-confinement"));
}

TEST(LintSimd, CleanOnDispatchTableCalls) {
  EXPECT_TRUE(lint_src("const auto& k = simd::kernels();\n"
                       "k.vmag(re.data(), im.data(), out.data(), n);\n")
                  .empty());
}

// --- pmu-confinement ----------------------------------------------------

TEST(LintPmu, FlagsPerfEventHeadersOutsidePmuLayer) {
  EXPECT_TRUE(has_rule(lint_src("#include <linux/perf_event.h>\n"),
                       "pmu-confinement"));
  EXPECT_TRUE(has_rule(lint_src("#include <sys/syscall.h>\n",
                                "src/mmhand/obs/trace.cpp"),
                       "pmu-confinement"));
}

TEST(LintPmu, FlagsPerfEventIdentifiersOutsidePmuLayer) {
  EXPECT_TRUE(has_rule(
      lint_src("struct perf_event_attr attr = {};\n"), "pmu-confinement"));
  EXPECT_TRUE(has_rule(
      lint_src("long fd = syscall(SYS_perf_event_open, &a, 0, -1, g, 0);\n"),
      "pmu-confinement"));
}

TEST(LintPmu, AllowsPerfEventUnderPmuLayer) {
  const auto findings = check_file(
      "src/mmhand/obs/pmu.cpp",
      "#include <linux/perf_event.h>\n#include <sys/syscall.h>\n"
      "long open_leader(perf_event_attr* a) {\n"
      "  return syscall(SYS_perf_event_open, a, 0, -1, -1, 0);\n"
      "}\n",
      default_config());
  EXPECT_FALSE(has_rule(findings, "pmu-confinement"));
}

TEST(LintPmu, CleanOnCommentsAndSubstrings) {
  // Comments are stripped before the rules run, and `syscall` must match
  // as a whole token, not inside another identifier.
  EXPECT_TRUE(lint_src("// perf_event_open is confined to obs/pmu\n"
                       "int raw_syscall_count = 0;\n")
                  .empty());
}

// --- durable-write ------------------------------------------------------

TEST(LintDurableWrite, FlagsBinaryWritersOutsideIoSafe) {
  EXPECT_TRUE(has_rule(
      lint_src("std::ofstream out(path, std::ios::binary);\n"),
      "durable-write"));
  EXPECT_TRUE(has_rule(
      lint_src("std::FILE* f = std::fopen(path.c_str(), \"wb\");\n"),
      "durable-write"));
  EXPECT_TRUE(has_rule(lint_src("auto* f = fopen(p, \"ab\");\n"),
                       "durable-write"));
}

TEST(LintDurableWrite, AllowsReadsTextAndIoSafeItself) {
  // Binary reads, text writes, and the durable layer itself stay legal.
  EXPECT_TRUE(lint_src("std::ifstream in(path, std::ios::binary);\n"
                       "std::ofstream log(path);\n"
                       "std::FILE* f = std::fopen(path.c_str(), \"rb\");\n"
                       "std::FILE* g = std::fopen(path.c_str(), \"a\");\n")
                  .empty());
  EXPECT_FALSE(has_rule(
      check_file("src/mmhand/common/io_safe.cpp",
                 "std::FILE* f = std::fopen(tmp.c_str(), \"wb\");\n",
                 default_config()),
      "durable-write"));
}

TEST(LintDurableWrite, AllowlistExtendsViaJson) {
  Config cfg = default_config();
  std::string error;
  ASSERT_TRUE(parse_allowlist_json(
      "{\"durable_write\": [\"src/mmhand/x/f.cpp\"]}", &cfg, &error))
      << error;
  EXPECT_FALSE(has_rule(
      check_file("src/mmhand/x/f.cpp",
                 "std::FILE* f = std::fopen(p, \"wb\");\n", cfg),
      "durable-write"));
}

// --- env-var-docs -------------------------------------------------------

TEST(LintEnvDocs, FlagsUndocumentedLiteral) {
  Config cfg = default_config();
  cfg.documented_env = {"MMHAND_THREADS"};
  const auto findings = check_file(
      "src/mmhand/x/f.cpp", "std::string k = \"MMHAND_NOT_IN_README\";\n",
      cfg);
  ASSERT_TRUE(has_rule(findings, "env-var-docs"));
  EXPECT_NE(findings[0].message.find("MMHAND_NOT_IN_README"),
            std::string::npos);
}

TEST(LintEnvDocs, DocumentedLiteralPasses) {
  Config cfg = default_config();
  cfg.documented_env = {"MMHAND_THREADS"};
  EXPECT_TRUE(check_file("src/mmhand/x/f.cpp",
                         "const char* k = \"MMHAND_THREADS\";\n", cfg)
                  .empty());
}

TEST(LintEnvDocs, ExtractsNamesFromReadme) {
  const auto names = extract_documented_env(
      "| `MMHAND_THREADS` | integer | pool size |\n"
      "Set MMHAND_FAST=1 while iterating.\n");
  EXPECT_EQ(names, (std::vector<std::string>{"MMHAND_FAST",
                                             "MMHAND_THREADS"}));
}

// --- allowlist config ---------------------------------------------------

TEST(LintAllowlist, JsonOverridesDefaults) {
  Config cfg = default_config();
  std::string error;
  ASSERT_TRUE(parse_allowlist_json(
      "{\"getenv\": [\"src/mmhand/x/custom.cpp\"]}", &cfg, &error))
      << error;
  EXPECT_EQ(cfg.getenv_allow,
            (std::vector<std::string>{"src/mmhand/x/custom.cpp"}));
  // Untouched keys keep their defaults.
  EXPECT_FALSE(cfg.io_allow.empty());
  EXPECT_TRUE(
      check_file("src/mmhand/x/custom.cpp", "std::getenv(\"X\");\n", cfg)
          .empty());
  EXPECT_TRUE(has_rule(check_file("src/mmhand/obs/state.cpp",
                                  "std::getenv(\"X\");\n", cfg),
                       "getenv-allowlist"));
}

TEST(LintAllowlist, RejectsMalformedConfig) {
  Config cfg = default_config();
  std::string error;
  EXPECT_FALSE(parse_allowlist_json("{\"getenv\": 3}", &cfg, &error));
  EXPECT_NE(error.find("getenv"), std::string::npos);
  EXPECT_FALSE(parse_allowlist_json("not json", &cfg, &error));
  EXPECT_FALSE(parse_allowlist_json("{\"direct_io\": [1]}", &cfg, &error));
}

// --- --json report shape ------------------------------------------------

TEST(LintJsonReport, ShapeRoundTripsThroughParser) {
  const std::vector<Finding> findings{
      {"src/mmhand/x/f.cpp", 3, "no-direct-io", "printf \"quoted\""},
      {"src/mmhand/x/f.cpp", 9, "no-direct-io", "cout"},
      {"src/mmhand/y/g.hpp", 1, "pragma-once", "missing"},
  };
  std::string error;
  const json::Value v =
      json::Value::parse(findings_to_json(findings, 42), &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(v.string_or("tool", ""), "mmhand_lint");
  EXPECT_EQ(v.number_or("files_scanned", 0), 42.0);
  const json::Value* counts = v.find("counts");
  ASSERT_NE(counts, nullptr);
  EXPECT_EQ(counts->number_or("no-direct-io", 0), 2.0);
  EXPECT_EQ(counts->number_or("pragma-once", 0), 1.0);
  const json::Value* arr = v.find("findings");
  ASSERT_NE(arr, nullptr);
  ASSERT_EQ(arr->as_array().size(), 3u);
  const json::Value& first = arr->as_array()[0];
  EXPECT_EQ(first.string_or("file", ""), "src/mmhand/x/f.cpp");
  EXPECT_EQ(first.number_or("line", 0), 3.0);
  EXPECT_EQ(first.string_or("message", ""), "printf \"quoted\"");
}

TEST(LintJsonReport, EmptyFindingsStillValid) {
  std::string error;
  const json::Value v = json::Value::parse(findings_to_json({}, 7), &error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_NE(v.find("findings"), nullptr);
  EXPECT_TRUE(v.find("findings")->as_array().empty());
}

// --- comment/string stripping -------------------------------------------

TEST(LintStrip, PreservesLineStructure) {
  const std::string src = "int a; // getenv\n/* rand\n rand */ int b;\n";
  const std::string stripped = strip_comments_and_strings(src);
  EXPECT_EQ(std::count(src.begin(), src.end(), '\n'),
            std::count(stripped.begin(), stripped.end(), '\n'));
  EXPECT_EQ(stripped.find("getenv"), std::string::npos);
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_NE(stripped.find("int b;"), std::string::npos);
}

TEST(LintStrip, HandlesEscapedQuotes) {
  const std::string stripped = strip_comments_and_strings(
      "const char* s = \"a \\\" getenv\"; int rand_site;\n");
  EXPECT_EQ(stripped.find("getenv"), std::string::npos);
  EXPECT_NE(stripped.find("rand_site"), std::string::npos);
}

// --- common/json error paths (the linter's config dependency) -----------

TEST(JsonErrors, TruncatedInput) {
  for (const char* bad : {"{\"a\": ", "[1, 2", "\"unterminated", "{", "nul"}) {
    std::string error;
    const json::Value v = json::Value::parse(bad, &error);
    EXPECT_FALSE(error.empty()) << "input: " << bad;
    EXPECT_TRUE(v.is_null()) << "input: " << bad;
  }
}

TEST(JsonErrors, BadEscape) {
  std::string error;
  json::Value::parse("\"bad \\q escape\"", &error);
  EXPECT_NE(error.find("escape"), std::string::npos);
  json::Value::parse("\"short \\u12\"", &error);
  EXPECT_FALSE(error.empty());
  json::Value::parse("\"bad hex \\uZZZZ\"", &error);
  EXPECT_FALSE(error.empty());
}

TEST(JsonErrors, TrailingGarbage) {
  std::string error;
  json::Value::parse("{\"a\": 1} extra", &error);
  EXPECT_NE(error.find("trailing"), std::string::npos);
  // Trailing whitespace is fine.
  const json::Value v = json::Value::parse("{\"a\": 1}  \n", &error);
  EXPECT_TRUE(error.empty()) << error;
  EXPECT_EQ(v.number_or("a", 0), 1.0);
}

TEST(JsonErrors, ErrorReportsOffset) {
  std::string error;
  json::Value::parse("{\"a\": @}", &error);
  EXPECT_NE(error.find("offset"), std::string::npos);
}

}  // namespace
}  // namespace mmhand::lint
