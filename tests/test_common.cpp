// Tests for mmhand/common: errors, rng, vec3, quaternion, stats, serialize,
// parallel_for, and the append-only line sink.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numbers>
#include <stdexcept>
#include <thread>
#include <vector>

#include "mmhand/common/error.hpp"
#include "mmhand/common/io_safe.hpp"
#include "mmhand/common/parallel.hpp"
#include "mmhand/common/quaternion.hpp"
#include "mmhand/common/ring.hpp"
#include "mmhand/common/rng.hpp"
#include "mmhand/common/serialize.hpp"
#include "mmhand/common/stats.hpp"
#include "mmhand/common/vec3.hpp"

namespace mmhand {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Error, CheckThrowsWithMessage) {
  try {
    MMHAND_CHECK(1 == 2, "custom detail " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("custom detail 42"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Error, AssertThrows) {
  EXPECT_THROW(MMHAND_ASSERT(false), Error);
  EXPECT_NO_THROW(MMHAND_ASSERT(true));
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i)
    if (a.uniform() == b.uniform()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.uniform_int(0, 5);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 5);
    saw_lo |= v == 0;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.normal(1.5, 2.0);
  EXPECT_NEAR(mean(xs), 1.5, 0.05);
  EXPECT_NEAR(stddev(xs), 2.0, 0.05);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(3);
  auto p = rng.permutation(50);
  std::vector<bool> seen(50, false);
  for (int v : p) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 50);
    EXPECT_FALSE(seen[static_cast<std::size_t>(v)]);
    seen[static_cast<std::size_t>(v)] = true;
  }
}

TEST(Rng, ForkIndependentButDeterministic) {
  Rng a(5), b(5);
  Rng fa = a.fork(), fb = b.fork();
  for (int i = 0; i < 10; ++i)
    EXPECT_DOUBLE_EQ(fa.uniform(), fb.uniform());
}

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, Vec3(5, 7, 9));
  EXPECT_EQ(b - a, Vec3(3, 3, 3));
  EXPECT_EQ(a * 2.0, Vec3(2, 4, 6));
  EXPECT_EQ(2.0 * a, Vec3(2, 4, 6));
  EXPECT_EQ(-a, Vec3(-1, -2, -3));
}

TEST(Vec3, DotCrossNorm) {
  const Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
  EXPECT_DOUBLE_EQ(x.dot(y), 0.0);
  EXPECT_EQ(x.cross(y), z);
  EXPECT_EQ(y.cross(z), x);
  EXPECT_EQ(z.cross(x), y);
  EXPECT_DOUBLE_EQ(Vec3(3, 4, 0).norm(), 5.0);
  EXPECT_DOUBLE_EQ(Vec3(3, 4, 0).norm2(), 25.0);
}

TEST(Vec3, Normalized) {
  EXPECT_NEAR(Vec3(2, -1, 5).normalized().norm(), 1.0, 1e-12);
  EXPECT_EQ(Vec3(0, 0, 0).normalized(), Vec3(0, 0, 0));
}

TEST(Quaternion, IdentityRotation) {
  const Vec3 v{1, 2, 3};
  const Vec3 r = Quaternion::identity().rotate(v);
  EXPECT_NEAR(distance(r, v), 0.0, 1e-12);
}

TEST(Quaternion, AxisAngle90Deg) {
  const auto q = Quaternion::from_axis_angle({0, 0, 1}, kPi / 2);
  const Vec3 r = q.rotate({1, 0, 0});
  EXPECT_NEAR(r.x, 0.0, 1e-12);
  EXPECT_NEAR(r.y, 1.0, 1e-12);
  EXPECT_NEAR(r.z, 0.0, 1e-12);
}

TEST(Quaternion, CompositionMatchesSequentialRotation) {
  const auto qa = Quaternion::from_axis_angle({0, 0, 1}, 0.7);
  const auto qb = Quaternion::from_axis_angle({1, 0, 0}, -0.4);
  const Vec3 v{0.3, -1.2, 2.0};
  const Vec3 seq = qa.rotate(qb.rotate(v));
  const Vec3 composed = (qa * qb).rotate(v);
  EXPECT_NEAR(distance(seq, composed), 0.0, 1e-12);
}

TEST(Quaternion, RotationVectorRoundTrip) {
  const Vec3 rv{0.3, -0.8, 0.5};
  const auto q = Quaternion::from_rotation_vector(rv);
  const Vec3 back = q.to_rotation_vector();
  EXPECT_NEAR(distance(back, rv), 0.0, 1e-10);
}

TEST(Quaternion, RotationVectorRoundTripNearIdentity) {
  const Vec3 rv{1e-9, -2e-9, 3e-9};
  const auto q = Quaternion::from_rotation_vector(rv);
  EXPECT_NEAR(q.w, 1.0, 1e-12);
  const Vec3 back = q.to_rotation_vector();
  EXPECT_NEAR(back.x, rv.x, 1e-12);
}

TEST(Quaternion, RotationPreservesLengthAndAngles) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    const auto q = Quaternion::from_axis_angle(
        {rng.normal(), rng.normal(), rng.normal()}, rng.uniform(-3, 3));
    const Vec3 a{rng.normal(), rng.normal(), rng.normal()};
    const Vec3 b{rng.normal(), rng.normal(), rng.normal()};
    EXPECT_NEAR(q.rotate(a).norm(), a.norm(), 1e-10);
    EXPECT_NEAR(q.rotate(a).dot(q.rotate(b)), a.dot(b), 1e-9);
  }
}

TEST(Quaternion, MatrixMatchesRotate) {
  const auto q = Quaternion::from_axis_angle({0.2, -0.5, 0.8}, 1.1);
  double m[3][3];
  q.to_matrix(m);
  const Vec3 v{0.4, 1.0, -2.0};
  const Vec3 via_q = q.rotate(v);
  const Vec3 via_m{m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z,
                   m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z,
                   m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z};
  EXPECT_NEAR(distance(via_q, via_m), 0.0, 1e-10);
}

TEST(Quaternion, SlerpEndpointsAndMidpoint) {
  const auto a = Quaternion::identity();
  const auto b = Quaternion::from_axis_angle({0, 0, 1}, kPi / 2);
  EXPECT_NEAR(Quaternion::angle_between(Quaternion::slerp(a, b, 0.0), a),
              0.0, 1e-9);
  EXPECT_NEAR(Quaternion::angle_between(Quaternion::slerp(a, b, 1.0), b),
              0.0, 1e-9);
  const auto mid = Quaternion::slerp(a, b, 0.5);
  const auto expect = Quaternion::from_axis_angle({0, 0, 1}, kPi / 4);
  EXPECT_NEAR(Quaternion::angle_between(mid, expect), 0.0, 1e-9);
}

TEST(Quaternion, AngleBetweenHandlesDoubleCover) {
  const auto q = Quaternion::from_axis_angle({0, 1, 0}, 0.8);
  const Quaternion neg{-q.w, -q.x, -q.y, -q.z};
  EXPECT_NEAR(Quaternion::angle_between(q, neg), 0.0, 1e-9);
}

TEST(Stats, MeanStd) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(stddev(xs), 2.138, 1e-3);
}

TEST(Stats, MinMaxPercentile) {
  const std::vector<double> xs{5, 1, 9, 3, 7};
  EXPECT_DOUBLE_EQ(min_value(xs), 1.0);
  EXPECT_DOUBLE_EQ(max_value(xs), 9.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 9.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 5.0);
}

TEST(Stats, FractionBelow) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(fraction_below(xs, 2.5), 0.5);
  EXPECT_DOUBLE_EQ(fraction_below(xs, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(fraction_below(xs, 10.0), 1.0);
}

TEST(Stats, EmpiricalCdfMonotone) {
  Rng rng(4);
  std::vector<double> xs(500);
  for (auto& x : xs) x = rng.uniform(0, 10);
  const auto cdf = empirical_cdf(xs, 20);
  EXPECT_DOUBLE_EQ(cdf.front().value, 0.0);
  EXPECT_NEAR(cdf.back().cumulative, 1.0, 1e-12);
  for (std::size_t i = 1; i < cdf.size(); ++i)
    EXPECT_GE(cdf[i].cumulative, cdf[i - 1].cumulative);
}

TEST(Stats, NormalizedAucOfConstantOne) {
  const std::vector<double> xs{0, 1, 2, 3}, ys{1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(normalized_auc(xs, ys), 1.0);
}

TEST(Stats, NormalizedAucOfLinearRamp) {
  const std::vector<double> xs{0, 1}, ys{0, 1};
  EXPECT_DOUBLE_EQ(normalized_auc(xs, ys), 0.5);
}

TEST(Stats, ErrorsOnEmpty) {
  const std::vector<double> empty;
  EXPECT_THROW(mean(empty), Error);
  EXPECT_THROW(percentile(empty, 50), Error);
}

// RingBuffer wraparound at exact-capacity boundaries: the eviction and
// age-order arithmetic both hinge on the `size_ == capacity` transition.
TEST(RingBuffer, ExactCapacityBoundaryKeepsAgeOrder) {
  RingBuffer<int> ring(4);
  EXPECT_TRUE(ring.empty());
  // Fill to exactly capacity: nothing evicted, order preserved.
  for (int i = 0; i < 4; ++i) ring.push(i);
  ASSERT_EQ(ring.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(ring[i], static_cast<int>(i));
  EXPECT_EQ(ring.newest(), 3);
  // One past capacity: exactly the oldest is gone.
  ring.push(4);
  ASSERT_EQ(ring.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(ring[i], static_cast<int>(i + 1));
  // A full extra lap lands back on the same slot layout.
  for (int i = 5; i < 9; ++i) ring.push(i);
  ASSERT_EQ(ring.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(ring[i], static_cast<int>(i + 5));
  EXPECT_EQ(ring.newest(), 8);
}

TEST(RingBuffer, CapacityOneAlwaysHoldsNewest) {
  RingBuffer<int> ring(1);
  for (int i = 0; i < 3; ++i) {
    ring.push(i);
    ASSERT_EQ(ring.size(), 1u);
    EXPECT_EQ(ring[0], i);
    EXPECT_EQ(ring.newest(), i);
  }
}

TEST(RingBuffer, ClearResetsToEmptyAndRefills) {
  RingBuffer<int> ring(3);
  for (int i = 0; i < 5; ++i) ring.push(i);
  ring.clear();
  EXPECT_TRUE(ring.empty());
  ring.push(7);
  ASSERT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring[0], 7);
}

TEST(Serialize, RoundTrip) {
  const std::string path = ::testing::TempDir() + "/ser_roundtrip.bin";
  {
    BinaryWriter w(path);
    w.write_u32(0xdeadbeef);
    w.write_u64(1234567890123ull);
    w.write_f32(1.5f);
    w.write_f64(-2.25);
    w.write_string("mmhand");
    w.write_f32_vector({1.0f, 2.0f, 3.0f});
    w.write_i32_vector({-1, 0, 7});
    w.close();
  }
  BinaryReader r(path);
  EXPECT_EQ(r.read_u32(), 0xdeadbeef);
  EXPECT_EQ(r.read_u64(), 1234567890123ull);
  EXPECT_FLOAT_EQ(r.read_f32(), 1.5f);
  EXPECT_DOUBLE_EQ(r.read_f64(), -2.25);
  EXPECT_EQ(r.read_string(), "mmhand");
  EXPECT_EQ(r.read_f32_vector(), (std::vector<float>{1.0f, 2.0f, 3.0f}));
  EXPECT_EQ(r.read_i32_vector(), (std::vector<int>{-1, 0, 7}));
  EXPECT_TRUE(r.eof());
  std::remove(path.c_str());
}

TEST(Serialize, TruncatedReadThrows) {
  const std::string path = ::testing::TempDir() + "/ser_trunc.bin";
  {
    BinaryWriter w(path);
    w.write_u32(1);
    w.close();
  }
  BinaryReader r(path);
  EXPECT_EQ(r.read_u32(), 1u);
  EXPECT_THROW(r.read_u64(), Error);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(BinaryReader("/nonexistent/path/file.bin"), Error);
  EXPECT_FALSE(file_exists("/nonexistent/path/file.bin"));
}

TEST(ParallelFor, EmptyRangeCallsNothing) {
  std::atomic<int> calls{0};
  parallel_for(5, 5, 1, [&](std::int64_t) { ++calls; });
  parallel_for(7, 3, 1, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, RangeSmallerThanGrainRunsSeriallyInOrder) {
  const auto caller = std::this_thread::get_id();
  std::vector<std::int64_t> seen;
  parallel_for(2, 6, 100, [&](std::int64_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    seen.push_back(i);
  });
  EXPECT_EQ(seen, (std::vector<std::int64_t>{2, 3, 4, 5}));
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  const int prev = num_threads();
  set_num_threads(4);
  constexpr int kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(0, kN, 7, [&](std::int64_t i) {
    ++hits[static_cast<std::size_t>(i)];
  });
  set_num_threads(prev);
  for (int i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, WorkerExceptionPropagatesToCaller) {
  const int prev = num_threads();
  set_num_threads(4);
  EXPECT_THROW(parallel_for(0, 64, 1,
                            [&](std::int64_t i) {
                              if (i == 13)
                                throw std::runtime_error("boom 13");
                            }),
               std::runtime_error);
  set_num_threads(prev);
}

TEST(ParallelFor, NestedCallsFallBackToSerial) {
  const int prev = num_threads();
  set_num_threads(4);
  std::atomic<int> inner_total{0};
  std::atomic<bool> saw_region_flag{true};
  parallel_for(0, 8, 1, [&](std::int64_t) {
    if (!in_parallel_region()) saw_region_flag = false;
    const auto inner_thread = std::this_thread::get_id();
    parallel_for(0, 16, 1, [&](std::int64_t) {
      // Serial fallback: the nested body stays on the outer worker.
      if (std::this_thread::get_id() != inner_thread) saw_region_flag = false;
      ++inner_total;
    });
  });
  set_num_threads(prev);
  EXPECT_TRUE(saw_region_flag.load());
  EXPECT_EQ(inner_total.load(), 8 * 16);
  EXPECT_FALSE(in_parallel_region());
}

TEST(ParallelFor, RejectsNonPositiveGrain) {
  EXPECT_THROW(parallel_for(0, 4, 0, [](std::int64_t) {}), Error);
}

// ---------------------------------------------------------------------
// Append-only line sink (run log / telemetry streams).

TEST(LineWriter, OpenRepairsTornTailAndAppendsStayParseable) {
  namespace fs = std::filesystem;
  const std::string path =
      (fs::temp_directory_path() / "mmhand_linewriter_torn.jsonl").string();
  fs::remove(path);
  {
    std::ofstream f(path, std::ios::binary);
    f << "{\"seq\": 1}\n{\"seq\": 2}\n{\"seq\": 3, \"partial";  // no newline
  }
  EXPECT_GT(io_safe::repair_torn_line_tail(path), 0u);
  io_safe::LineWriter writer;
  ASSERT_TRUE(writer.open(path));
  EXPECT_TRUE(writer.append("{\"seq\": 4}"));
  writer.close();
  std::ifstream f(path, std::ios::binary);
  std::vector<std::string> lines;
  for (std::string line; std::getline(f, line);) lines.push_back(line);
  // The torn record is gone; the intact prefix and the new line remain.
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "{\"seq\": 1}");
  EXPECT_EQ(lines[1], "{\"seq\": 2}");
  EXPECT_EQ(lines[2], "{\"seq\": 4}");
  fs::remove(path);
}

TEST(LineWriter, RepairIsANoOpOnAnIntactFile) {
  namespace fs = std::filesystem;
  const std::string path =
      (fs::temp_directory_path() / "mmhand_linewriter_intact.jsonl").string();
  fs::remove(path);
  {
    std::ofstream f(path, std::ios::binary);
    f << "{\"seq\": 1}\n";
  }
  EXPECT_EQ(io_safe::repair_torn_line_tail(path), 0u);
  EXPECT_EQ(fs::file_size(path), 11u);
  fs::remove(path);
}

}  // namespace
}  // namespace mmhand
