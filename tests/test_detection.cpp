// Tests for the detection path: CA-CFAR and radar point-cloud extraction.

#include <gtest/gtest.h>

#include <cmath>

#include "mmhand/dsp/cfar.hpp"
#include "mmhand/radar/if_simulator.hpp"
#include "mmhand/radar/point_cloud.hpp"

namespace mmhand {
namespace {

TEST(Cfar, DetectsPeakAboveNoise) {
  Rng rng(1);
  std::vector<double> mag(128);
  for (auto& v : mag) v = 1.0 + 0.1 * rng.uniform();
  mag[64] = 8.0;
  const auto detections = dsp::cfar_1d(mag);
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_EQ(detections[0].index, 64u);
  EXPECT_NEAR(detections[0].noise_estimate, 1.05, 0.1);
}

TEST(Cfar, NoFalseAlarmsOnFlatNoise) {
  Rng rng(2);
  std::vector<double> mag(256);
  for (auto& v : mag) v = 1.0 + 0.05 * rng.uniform();
  EXPECT_TRUE(dsp::cfar_1d(mag).empty());
}

TEST(Cfar, GuardCellsProtectWidePeaks) {
  // A 3-cell-wide target: without guard cells its shoulders would inflate
  // the noise estimate and mask the peak.
  std::vector<double> mag(64, 1.0);
  mag[30] = 4.0;
  mag[31] = 6.0;
  mag[32] = 4.0;
  dsp::CfarConfig tight;
  tight.guard_cells = 0;
  tight.threshold_factor = 4.0;
  dsp::CfarConfig guarded;
  guarded.guard_cells = 2;
  guarded.threshold_factor = 4.0;
  const auto without = dsp::cfar_1d(mag, tight);
  const auto with = dsp::cfar_1d(mag, guarded);
  EXPECT_GE(with.size(), without.size());
  bool found = false;
  for (const auto& d : with) found |= d.index == 31;
  EXPECT_TRUE(found);
}

TEST(Cfar, DetectsMultipleSeparatedTargets) {
  std::vector<double> mag(200, 1.0);
  mag[40] = 10.0;
  mag[120] = 7.0;
  const auto detections = dsp::cfar_1d(mag);
  ASSERT_EQ(detections.size(), 2u);
  EXPECT_EQ(detections[0].index, 40u);
  EXPECT_EQ(detections[1].index, 120u);
}

TEST(Cfar, RejectsBadConfig) {
  std::vector<double> mag(16, 1.0);
  dsp::CfarConfig bad;
  bad.training_cells = 0;
  EXPECT_THROW(dsp::cfar_1d(mag, bad), Error);
  bad = {};
  bad.threshold_factor = 0.0;
  EXPECT_THROW(dsp::cfar_1d(mag, bad), Error);
}

class PointCloudTest : public ::testing::Test {
 protected:
  PointCloudTest()
      : chirp_([] {
          radar::ChirpConfig c;
          c.noise_stddev = 0.005;
          return c;
        }()),
        array_(chirp_),
        sim_(chirp_, array_),
        pipeline_(chirp_, array_, radar::PipelineConfig{}) {}

  radar::RadarCube cube_for(const radar::Scene& scene) {
    Rng rng(3);
    return pipeline_.process_frame(sim_.simulate_frame(scene, 0.0, rng));
  }

  radar::ChirpConfig chirp_;
  radar::AntennaArray array_;
  radar::IfSimulator sim_;
  radar::RadarPipeline pipeline_;
};

TEST_F(PointCloudTest, SingleTargetYieldsLocalizedCloud) {
  const Vec3 target{0.05, 0.30, 0.02};
  const auto cube = cube_for({{target, Vec3{}, 1.5}});
  const auto points = radar::extract_point_cloud(cube, pipeline_);
  ASSERT_FALSE(points.empty());
  const Vec3 centroid = radar::point_cloud_centroid(points);
  EXPECT_LT(distance(centroid, target), 0.08)
      << "centroid " << centroid.x << "," << centroid.y << "," << centroid.z;
}

TEST_F(PointCloudTest, CloudIsSortedByIntensityAndBounded) {
  const auto cube = cube_for({{Vec3{0.0, 0.30, 0.0}, Vec3{}, 1.0},
                              {Vec3{-0.08, 0.45, 0.0}, Vec3{}, 0.8}});
  radar::PointCloudConfig cfg;
  cfg.max_points = 10;
  const auto points = radar::extract_point_cloud(cube, pipeline_, cfg);
  EXPECT_LE(points.size(), 10u);
  for (std::size_t i = 1; i < points.size(); ++i)
    EXPECT_GE(points[i - 1].intensity, points[i].intensity);
}

TEST_F(PointCloudTest, MovingTargetCarriesVelocity) {
  const auto cube =
      cube_for({{Vec3{0.0, 0.30, 0.0}, Vec3{0.0, 1.0, 0.0}, 1.5}});
  const auto points = radar::extract_point_cloud(cube, pipeline_);
  ASSERT_FALSE(points.empty());
  // The strongest points should carry a positive radial velocity.
  double weighted_v = 0.0, total = 0.0;
  for (const auto& p : points) {
    weighted_v += p.velocity * p.intensity;
    total += p.intensity;
  }
  EXPECT_GT(weighted_v / total, 0.3);
}

TEST_F(PointCloudTest, EmptyCentroidIsZero) {
  EXPECT_EQ(radar::point_cloud_centroid({}), (Vec3{0, 0, 0}));
}

}  // namespace
}  // namespace mmhand
