// Tests for mmhand/hand: skeleton topology, profiles, forward kinematics
// invariants (bone lengths, finger planarity), gestures and scripts.

#include <gtest/gtest.h>

#include <cmath>

#include "mmhand/common/error.hpp"
#include "mmhand/hand/gesture.hpp"
#include "mmhand/hand/hand_profile.hpp"
#include "mmhand/hand/kinematics.hpp"
#include "mmhand/hand/skeleton.hpp"

namespace mmhand::hand {
namespace {

TEST(Skeleton, JointTopology) {
  EXPECT_EQ(kNumJoints, 21);
  EXPECT_EQ(joint_parent(kWrist), -1);
  // MCPs attach to the wrist.
  for (int f = 0; f < kNumFingers; ++f)
    EXPECT_EQ(joint_parent(finger_base(static_cast<Finger>(f))), kWrist);
  // Chain within a finger.
  EXPECT_EQ(joint_parent(finger_joint(Finger::kIndex, 2)),
            finger_joint(Finger::kIndex, 1));
  EXPECT_EQ(joint_parent(finger_joint(Finger::kIndex, 3)),
            finger_joint(Finger::kIndex, 2));
}

TEST(Skeleton, FingertipAndPalmPartition) {
  int tips = 0, palm = 0;
  for (int j = 0; j < kNumJoints; ++j) {
    if (is_fingertip(j)) ++tips;
    if (is_palm_joint(j)) ++palm;
    EXPECT_FALSE(is_fingertip(j) && is_palm_joint(j)) << "joint " << j;
  }
  EXPECT_EQ(tips, 5);  // 4 fingertips + thumb tip
  EXPECT_EQ(palm, 6);  // wrist + 5 MCP
}

TEST(Skeleton, JointNamesAreUniqueAndMediaPipeOrdered) {
  EXPECT_EQ(joint_name(0), "wrist");
  EXPECT_EQ(joint_name(4), "thumb_tip");
  EXPECT_EQ(joint_name(8), "index_tip");
  EXPECT_EQ(joint_name(20), "pinky_tip");
  for (int i = 0; i < kNumJoints; ++i)
    for (int j = i + 1; j < kNumJoints; ++j)
      EXPECT_NE(joint_name(i), joint_name(j));
  EXPECT_THROW(joint_name(21), Error);
}

TEST(HandProfile, ReferenceIsPlausiblySized) {
  const auto p = HandProfile::reference();
  // Wrist to middle fingertip in the open pose: 16-21 cm.
  const double reach = p.mcp_offsets[2].norm() +
                       p.phalange_lengths[2][0] + p.phalange_lengths[2][1] +
                       p.phalange_lengths[2][2];
  EXPECT_GT(reach, 0.16);
  EXPECT_LT(reach, 0.21);
}

TEST(HandProfile, UsersAreDeterministicAndDistinct) {
  const auto a1 = HandProfile::for_user(3);
  const auto a2 = HandProfile::for_user(3);
  EXPECT_DOUBLE_EQ(a1.scale, a2.scale);
  EXPECT_EQ(a1.mcp_offsets[0], a2.mcp_offsets[0]);

  const auto b = HandProfile::for_user(4);
  EXPECT_NE(a1.scale, b.scale);
}

TEST(HandProfile, MaleLargerThanFemaleOnAverage) {
  double male = 0.0, female = 0.0;
  for (int u = 0; u < 10; u += 2) male += HandProfile::for_user(u).scale;
  for (int u = 1; u < 10; u += 2) female += HandProfile::for_user(u).scale;
  EXPECT_GT(male / 5.0, female / 5.0);
}

TEST(HandProfile, ScaledScalesEverything) {
  const auto p = HandProfile::reference();
  const auto s = p.scaled(2.0);
  EXPECT_DOUBLE_EQ(s.scale, 2.0);
  EXPECT_NEAR(s.mcp_offsets[1].norm(), 2.0 * p.mcp_offsets[1].norm(), 1e-12);
  EXPECT_NEAR(s.phalange_lengths[2][0], 2.0 * p.phalange_lengths[2][0],
              1e-12);
  EXPECT_THROW(p.scaled(0.0), Error);
}

TEST(Kinematics, WristAtOriginInLocalFrame) {
  const auto joints =
      local_kinematics(HandProfile::reference(), HandPose{});
  EXPECT_NEAR(joints[kWrist].norm(), 0.0, 1e-12);
}

TEST(Kinematics, BoneLengthsMatchProfileForAnyArticulation) {
  // FK must preserve phalange lengths regardless of flexion — the rigidity
  // property §IV's kinematic loss builds on.
  const auto profile = HandProfile::for_user(1);
  for (Gesture g : all_gestures()) {
    HandPose pose;
    pose.fingers = gesture_articulation(g);
    const auto joints = forward_kinematics(profile, pose);
    for (int f = 0; f < kNumFingers; ++f) {
      const auto fi = static_cast<std::size_t>(f);
      for (int k = 0; k < 3; ++k) {
        const int child = finger_joint(static_cast<Finger>(f), k + 1);
        EXPECT_NEAR(bone_length(joints, child),
                    profile.phalange_lengths[fi][static_cast<std::size_t>(k)],
                    1e-10)
            << gesture_name(g) << " finger " << f << " bone " << k;
      }
    }
  }
}

TEST(Kinematics, FingerJointsAreCoplanar) {
  // The generator articulates each finger about one lateral axis, so the
  // MCP/PIP/DIP/TIP joints must be exactly coplanar (Fig. 7's assumption).
  const auto profile = HandProfile::reference();
  for (Gesture g : all_gestures()) {
    HandPose pose;
    pose.fingers = gesture_articulation(g);
    const auto joints = forward_kinematics(profile, pose);
    for (int f = 0; f < kNumFingers; ++f) {
      const Vec3 a = joints[static_cast<std::size_t>(
          finger_joint(static_cast<Finger>(f), 0))];
      const Vec3 b = joints[static_cast<std::size_t>(
          finger_joint(static_cast<Finger>(f), 1))];
      const Vec3 c = joints[static_cast<std::size_t>(
          finger_joint(static_cast<Finger>(f), 2))];
      const Vec3 d = joints[static_cast<std::size_t>(
          finger_joint(static_cast<Finger>(f), 3))];
      const Vec3 n = (b - a).cross(c - a);
      if (n.norm() < 1e-9) continue;  // collinear: trivially coplanar
      EXPECT_NEAR(n.normalized().dot(d - a), 0.0, 1e-9)
          << gesture_name(g) << " finger " << f;
    }
  }
}

TEST(Kinematics, StraightFingerIsCollinear) {
  const auto profile = HandProfile::reference();
  HandPose pose;  // all articulations zero: fingers straight
  const auto joints = forward_kinematics(profile, pose);
  // Index finger: |AB|+|BC|+|CD| ~ |AD| (the paper's collinear criterion
  // with phi = 0.01).
  const Vec3 a = joints[5], b = joints[6], c = joints[7], d = joints[8];
  const double chain = distance(a, b) + distance(b, c) + distance(c, d);
  EXPECT_LT(chain, 1.01 * distance(a, d));
}

TEST(Kinematics, FlexionCurlsTowardPalm) {
  const auto profile = HandProfile::reference();
  HandPose straight, curled;
  curled.fingers[1] = {1.2, 1.2, 0.8, 0.0};  // index
  const auto js = local_kinematics(profile, straight);
  const auto jc = local_kinematics(profile, curled);
  // Palm normal is +z in the hand frame; curling moves the tip to -z.
  EXPECT_LT(jc[8].z, js[8].z - 0.03);
  // And shortens the wrist-to-tip distance.
  EXPECT_LT(jc[8].norm(), js[8].norm() - 0.02);
}

TEST(Kinematics, GlobalTransformAppliesRigidly) {
  const auto profile = HandProfile::reference();
  HandPose pose;
  pose.fingers = gesture_articulation(Gesture::kPinch);
  const auto local = local_kinematics(profile, pose);

  pose.wrist_position = Vec3{0.1, 0.4, -0.05};
  pose.orientation = Quaternion::from_axis_angle({0, 0, 1}, 0.8);
  const auto world = forward_kinematics(profile, pose);
  for (int j = 0; j < kNumJoints; ++j) {
    const Vec3 expected = pose.wrist_position +
                          pose.orientation.rotate(local[static_cast<std::size_t>(j)]);
    EXPECT_NEAR(distance(world[static_cast<std::size_t>(j)], expected), 0.0,
                1e-12);
  }
}

TEST(Kinematics, ClampArticulationBounds) {
  HandPose pose;
  pose.fingers[2] = {9.0, -3.0, 9.0, 2.0};
  const auto clamped = clamp_articulation(pose);
  EXPECT_LE(clamped.fingers[2].mcp, kMaxFlexion);
  EXPECT_GE(clamped.fingers[2].pip, -0.10);
  EXPECT_LE(clamped.fingers[2].dip, 1.2);
  EXPECT_LE(std::abs(clamped.fingers[2].splay), 0.35);
}

TEST(Kinematics, PoseLerpEndpoints) {
  HandPose a, b;
  b.fingers[1].mcp = 1.0;
  b.wrist_position = Vec3{0.1, 0.2, 0.3};
  const auto at0 = HandPose::lerp(a, b, 0.0);
  const auto at1 = HandPose::lerp(a, b, 1.0);
  EXPECT_DOUBLE_EQ(at0.fingers[1].mcp, 0.0);
  EXPECT_DOUBLE_EQ(at1.fingers[1].mcp, 1.0);
  EXPECT_NEAR(distance(at1.wrist_position, b.wrist_position), 0.0, 1e-12);
  const auto mid = HandPose::lerp(a, b, 0.5);
  EXPECT_DOUBLE_EQ(mid.fingers[1].mcp, 0.5);
}

TEST(Gesture, NamesAreUnique) {
  const auto gs = all_gestures();
  EXPECT_EQ(gs.size(), static_cast<std::size_t>(kNumGestures));
  for (std::size_t i = 0; i < gs.size(); ++i)
    for (std::size_t j = i + 1; j < gs.size(); ++j)
      EXPECT_NE(gesture_name(gs[i]), gesture_name(gs[j]));
}

class GestureDistinctness
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GestureDistinctness, DistinctGesturesYieldDistinctFingertips) {
  const auto [gi, gj] = GetParam();
  if (gi >= gj) GTEST_SKIP();
  // Count4 and OpenPalm intentionally share articulations except thumb.
  const auto profile = HandProfile::reference();
  HandPose pa, pb;
  pa.fingers = gesture_articulation(static_cast<Gesture>(gi));
  pb.fingers = gesture_articulation(static_cast<Gesture>(gj));
  const auto ja = forward_kinematics(profile, pa);
  const auto jb = forward_kinematics(profile, pb);
  double total = 0.0;
  for (int j = 0; j < kNumJoints; ++j)
    total += distance(ja[static_cast<std::size_t>(j)],
                      jb[static_cast<std::size_t>(j)]);
  EXPECT_GT(total, 0.01) << gesture_name(static_cast<Gesture>(gi)) << " vs "
                         << gesture_name(static_cast<Gesture>(gj));
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, GestureDistinctness,
    ::testing::Combine(::testing::Range(0, kNumGestures),
                       ::testing::Range(0, kNumGestures)));

TEST(GestureScript, DeterministicGivenSeed) {
  GestureScriptConfig cfg;
  GestureScript s1(cfg, Rng(9), 10.0);
  GestureScript s2(cfg, Rng(9), 10.0);
  for (double t = 0.0; t < 10.0; t += 0.37) {
    const auto p1 = s1.pose_at(t);
    const auto p2 = s2.pose_at(t);
    EXPECT_NEAR(distance(p1.wrist_position, p2.wrist_position), 0.0, 1e-12);
    EXPECT_DOUBLE_EQ(p1.fingers[1].mcp, p2.fingers[1].mcp);
  }
}

TEST(GestureScript, PosesAreContinuousInTime) {
  GestureScriptConfig cfg;
  GestureScript script(cfg, Rng(5), 8.0);
  const auto profile = HandProfile::reference();
  const double dt = 0.01;
  for (double t = 0.0; t < 7.9; t += dt) {
    const auto ja = forward_kinematics(profile, script.pose_at(t));
    const auto jb = forward_kinematics(profile, script.pose_at(t + dt));
    for (int j = 0; j < kNumJoints; ++j) {
      // No joint moves faster than ~3 m/s during daily gestures.
      EXPECT_LT(distance(ja[static_cast<std::size_t>(j)],
                         jb[static_cast<std::size_t>(j)]),
                3.0 * dt)
          << "t=" << t << " joint " << j;
    }
  }
}

TEST(GestureScript, WristStaysNearBase) {
  GestureScriptConfig cfg;
  cfg.base_wrist = Vec3{0.0, 0.30, 0.0};
  GestureScript script(cfg, Rng(2), 20.0);
  for (double t = 0.0; t < 20.0; t += 0.25) {
    const auto pose = script.pose_at(t);
    EXPECT_LT(distance(pose.wrist_position, cfg.base_wrist),
              3.0 * cfg.wrist_drift_m + 1e-9);
  }
}

TEST(GestureScript, VocabularyIsRespected) {
  GestureScriptConfig cfg;
  cfg.vocabulary = {Gesture::kFist, Gesture::kOpenPalm};
  GestureScript script(cfg, Rng(4), 15.0);
  for (double t = 0.0; t < 15.0; t += 0.2) {
    const Gesture g = script.gesture_at(t);
    EXPECT_TRUE(g == Gesture::kFist || g == Gesture::kOpenPalm);
  }
}

TEST(GestureScript, PalmFacesRadarByDefault) {
  // With the default base orientation, fingers point up (+z world) and the
  // palm normal (hand -z... the palm side) faces the radar at -y.
  GestureScriptConfig cfg;
  cfg.orientation_wobble_rad = 0.0;
  cfg.wrist_drift_m = 0.0;
  GestureScript script(cfg, Rng(1), 4.0);
  const auto pose = script.pose_at(0.0);
  const auto profile = HandProfile::reference();
  const auto joints = forward_kinematics(profile, pose);
  // Middle fingertip is above the wrist in world z when the hand is open;
  // at minimum the MCP (rigid palm) must be.
  EXPECT_GT(joints[9].z, joints[kWrist].z);
  // Hand-frame back normal (+z) maps to +y world (away from radar).
  const Vec3 back = pose.orientation.rotate(Vec3{0, 0, 1});
  EXPECT_GT(back.y, 0.9);
}

}  // namespace
}  // namespace mmhand::hand
