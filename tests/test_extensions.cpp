// Tests for the library extensions: the GRU layer, temporal-model
// variants, trajectory smoothing, and the gesture classifier.

#include <gtest/gtest.h>

#include <cmath>

#include "mmhand/nn/gradcheck.hpp"
#include "mmhand/nn/dropout.hpp"
#include "mmhand/nn/gru.hpp"
#include "mmhand/pose/gesture_classifier.hpp"
#include "mmhand/pose/joint_model.hpp"
#include "mmhand/pose/smoothing.hpp"
#include "mmhand/pose/sequence_matcher.hpp"
#include "mmhand/eval/csv_export.hpp"
#include <fstream>

namespace mmhand {
namespace {

nn::Tensor random_tensor(std::vector<int> shape, Rng& rng,
                         double scale = 1.0) {
  nn::Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.uniform(-scale, scale));
  return t;
}

TEST(Gru, OutputShapeAndBoundedness) {
  Rng rng(1);
  nn::Gru gru(4, 6, rng);
  const nn::Tensor x = random_tensor({5, 4}, rng, 2.0);
  const nn::Tensor y = gru.forward(x, false);
  EXPECT_EQ(y.dim(0), 5);
  EXPECT_EQ(y.dim(1), 6);
  // GRU hidden states are convex blends of tanh outputs: within (-1, 1).
  for (std::size_t i = 0; i < y.numel(); ++i) {
    EXPECT_GT(y[i], -1.0f);
    EXPECT_LT(y[i], 1.0f);
  }
}

TEST(Gru, GradCheck) {
  Rng rng(2);
  nn::Gru gru(3, 4, rng);
  const nn::Tensor x = random_tensor({4, 3}, rng);
  Rng check_rng(3);
  const auto in_res = nn::check_input_gradient(gru, x, check_rng);
  EXPECT_LT(in_res.max_rel_error, 5e-2);
  EXPECT_LT(in_res.max_abs_error, 1e-2);
  Rng check_rng2(4);
  const auto par_res = nn::check_parameter_gradients(gru, x, check_rng2);
  EXPECT_LT(par_res.max_rel_error, 5e-2);
  EXPECT_LT(par_res.max_abs_error, 1e-2);
}

TEST(Gru, StateResetsBetweenSequences) {
  Rng rng(5);
  nn::Gru gru(2, 3, rng);
  const nn::Tensor x = random_tensor({3, 2}, rng);
  const nn::Tensor y1 = gru.forward(x, false);
  const nn::Tensor y2 = gru.forward(x, false);
  for (std::size_t i = 0; i < y1.numel(); ++i) EXPECT_EQ(y1[i], y2[i]);
}

TEST(TemporalVariants, AllKindsForwardAndTrain) {
  pose::PoseNetConfig cfg;
  cfg.segment_frames = 1;
  cfg.sequence_segments = 2;
  cfg.velocity_bins = 4;
  cfg.range_bins = 8;
  cfg.angle_bins = 8;
  cfg.feature_dim = 24;
  cfg.lstm_hidden = 16;
  cfg.spacenet.stem_channels = 4;
  cfg.spacenet.block1_channels = 6;
  cfg.spacenet.block2_channels = 6;

  for (pose::TemporalKind kind :
       {pose::TemporalKind::kLstm, pose::TemporalKind::kGru,
        pose::TemporalKind::kNone}) {
    cfg.temporal = kind;
    Rng rng(6);
    pose::HandJointRegressor model(cfg, rng);
    Rng xrng(7);
    const nn::Tensor x = random_tensor(
        {cfg.frames_per_sample(), cfg.velocity_bins, cfg.range_bins,
         cfg.angle_bins},
        xrng);
    const nn::Tensor y = model.forward(x, true);
    EXPECT_EQ(y.dim(0), cfg.sequence_segments);
    EXPECT_EQ(y.dim(1), 63);
    nn::Tensor g({cfg.sequence_segments, 63});
    g.fill(0.01f);
    EXPECT_NO_THROW(model.backward(g));
    EXPECT_FALSE(model.parameters().empty());
  }
}

TEST(TemporalVariants, CheckpointRejectsKindMismatch) {
  const std::string path = ::testing::TempDir() + "/temporal_kind.bin";
  pose::PoseNetConfig cfg;
  cfg.segment_frames = 1;
  cfg.sequence_segments = 2;
  cfg.velocity_bins = 4;
  cfg.range_bins = 8;
  cfg.angle_bins = 8;
  cfg.feature_dim = 24;
  cfg.lstm_hidden = 16;
  cfg.spacenet.stem_channels = 4;
  cfg.spacenet.block1_channels = 6;
  cfg.spacenet.block2_channels = 6;

  Rng rng(8);
  pose::HandJointRegressor lstm_model(cfg, rng);
  lstm_model.save(path);
  cfg.temporal = pose::TemporalKind::kGru;
  Rng rng2(9);
  pose::HandJointRegressor gru_model(cfg, rng2);
  EXPECT_THROW(gru_model.load(path), Error);
  std::remove(path.c_str());
}

hand::JointSet joints_at(double y) {
  hand::HandPose pose;
  pose.wrist_position = Vec3{0.0, y, 0.0};
  return hand::forward_kinematics(hand::HandProfile::reference(), pose);
}

TEST(EmaSmoother, FirstObservationPassesThrough) {
  pose::EmaSmoother ema(0.3);
  const auto j = joints_at(0.3);
  const auto out = ema.filter(j);
  EXPECT_NEAR(distance(out[0], j[0]), 0.0, 1e-12);
}

TEST(EmaSmoother, ConvergesToConstantInput) {
  pose::EmaSmoother ema(0.4);
  const auto target = joints_at(0.35);
  (void)ema.filter(joints_at(0.25));
  hand::JointSet out{};
  for (int i = 0; i < 40; ++i) out = ema.filter(target);
  EXPECT_LT(distance(out[0], target[0]), 1e-4);
}

TEST(EmaSmoother, RejectsBadAlpha) {
  EXPECT_THROW(pose::EmaSmoother(0.0), Error);
  EXPECT_THROW(pose::EmaSmoother(1.5), Error);
}

TEST(KalmanSmoother, ReducesNoiseOnStaticHand) {
  pose::JointKalmanSmoother kalman;
  const auto truth = joints_at(0.3);
  Rng rng(10);
  double raw_err = 0.0, filtered_err = 0.0;
  int n = 0;
  for (int i = 0; i < 100; ++i) {
    hand::JointSet noisy = truth;
    for (auto& j : noisy)
      j += Vec3{rng.normal(0, 0.01), rng.normal(0, 0.01),
                rng.normal(0, 0.01)};
    const auto filtered = kalman.filter(noisy);
    if (i < 10) continue;  // let the filter settle
    for (int k = 0; k < hand::kNumJoints; ++k) {
      raw_err += distance(noisy[static_cast<std::size_t>(k)],
                          truth[static_cast<std::size_t>(k)]);
      filtered_err += distance(filtered[static_cast<std::size_t>(k)],
                               truth[static_cast<std::size_t>(k)]);
      ++n;
    }
  }
  EXPECT_LT(filtered_err, 0.6 * raw_err);
}

TEST(KalmanSmoother, TracksConstantVelocityWithoutLag) {
  pose::KalmanConfig cfg;
  cfg.dt = 0.04;
  pose::JointKalmanSmoother kalman(cfg);
  // Hand gliding at 0.25 m/s along x.
  double final_err = 0.0;
  for (int i = 0; i < 80; ++i) {
    hand::JointSet truth = joints_at(0.3);
    for (auto& j : truth) j += Vec3{0.25 * cfg.dt * i, 0.0, 0.0};
    const auto filtered = kalman.filter(truth);
    if (i == 79) final_err = distance(filtered[0], truth[0]);
  }
  // A constant-velocity model converges to near-zero steady-state lag.
  EXPECT_LT(final_err, 0.004);
}

TEST(KalmanSmoother, SmoothPredictionsSortsByFrame) {
  std::vector<pose::FramePrediction> preds(3);
  preds[0].frame_index = 9;
  preds[1].frame_index = 3;
  preds[2].frame_index = 6;
  for (auto& p : preds) p.joints = joints_at(0.3);
  const auto smoothed = pose::smooth_predictions(preds);
  EXPECT_EQ(smoothed[0].frame_index, 3);
  EXPECT_EQ(smoothed[2].frame_index, 9);
}

TEST(GestureClassifier, PerfectSkeletonsClassifyCorrectly) {
  // Distinguishable subset (open_palm/count4/count5 intentionally overlap).
  const std::vector<hand::Gesture> vocab{
      hand::Gesture::kFist, hand::Gesture::kPoint, hand::Gesture::kCount2,
      hand::Gesture::kCount3, hand::Gesture::kOpenPalm,
      hand::Gesture::kPinch};
  pose::GestureClassifier classifier(vocab);
  const auto profile = hand::HandProfile::reference();
  for (hand::Gesture g : vocab) {
    hand::HandPose pose;
    pose.fingers = hand::gesture_articulation(g);
    pose.orientation = Quaternion::from_axis_angle({0, 0, 1}, 0.4);
    pose.wrist_position = Vec3{0.05, 0.28, 0.1};
    const auto joints = hand::forward_kinematics(profile, pose);
    EXPECT_EQ(classifier.classify(joints), g)
        << hand::gesture_name(g) << " misclassified";
  }
}

TEST(GestureClassifier, RobustToModerateJointNoise) {
  const std::vector<hand::Gesture> vocab{hand::Gesture::kFist,
                                         hand::Gesture::kOpenPalm,
                                         hand::Gesture::kPoint};
  pose::GestureClassifier classifier(vocab);
  const auto profile = hand::HandProfile::reference();
  Rng rng(11);
  int correct = 0, total = 0;
  for (hand::Gesture g : vocab)
    for (int trial = 0; trial < 20; ++trial) {
      hand::HandPose pose;
      pose.fingers = hand::gesture_articulation(g);
      auto joints = hand::forward_kinematics(profile, pose);
      for (auto& j : joints)
        j += Vec3{rng.normal(0, 0.008), rng.normal(0, 0.008),
                  rng.normal(0, 0.008)};
      if (classifier.classify(joints) == g) ++correct;
      ++total;
    }
  EXPECT_GT(correct, total * 8 / 10);
}

TEST(GestureClassifier, CostIsLowerForTheTrueGesture) {
  pose::GestureClassifier classifier;
  const auto profile = hand::HandProfile::reference();
  hand::HandPose pose;
  pose.fingers = hand::gesture_articulation(hand::Gesture::kFist);
  const auto joints = hand::forward_kinematics(profile, pose);
  EXPECT_LT(classifier.cost(joints, hand::Gesture::kFist),
            classifier.cost(joints, hand::Gesture::kOpenPalm));
}

TEST(ConfusionMatrix, AccuracyAndCounts) {
  const std::vector<hand::Gesture> vocab{hand::Gesture::kFist,
                                         hand::Gesture::kOpenPalm};
  pose::ConfusionMatrix cm(vocab);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
  cm.add(hand::Gesture::kFist, hand::Gesture::kFist);
  cm.add(hand::Gesture::kFist, hand::Gesture::kOpenPalm);
  cm.add(hand::Gesture::kOpenPalm, hand::Gesture::kOpenPalm);
  EXPECT_EQ(cm.count(hand::Gesture::kFist, hand::Gesture::kFist), 1);
  EXPECT_EQ(cm.count(hand::Gesture::kFist, hand::Gesture::kOpenPalm), 1);
  EXPECT_NEAR(cm.accuracy(), 2.0 / 3.0, 1e-12);
  EXPECT_THROW(cm.add(hand::Gesture::kPinch, hand::Gesture::kFist), Error);
}


TEST(Dropout, InferenceIsIdentity) {
  Rng rng(20);
  nn::Dropout drop(0.5, rng);
  const nn::Tensor x = random_tensor({3, 8}, rng);
  const nn::Tensor y = drop.forward(x, /*training=*/false);
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_EQ(y[i], x[i]);
}

TEST(Dropout, TrainingDropsAndRescales) {
  Rng rng(21);
  nn::Dropout drop(0.5, rng);
  const nn::Tensor x = nn::Tensor::full({1, 2000}, 1.0f);
  const nn::Tensor y = drop.forward(x, true);
  std::size_t zeros = 0;
  double sum = 0.0;
  for (std::size_t i = 0; i < y.numel(); ++i) {
    if (y[i] == 0.0f)
      ++zeros;
    else
      EXPECT_FLOAT_EQ(y[i], 2.0f);  // 1/(1-0.5)
    sum += y[i];
  }
  EXPECT_NEAR(static_cast<double>(zeros) / y.numel(), 0.5, 0.05);
  EXPECT_NEAR(sum / y.numel(), 1.0, 0.1);  // expectation preserved
}

TEST(Dropout, BackwardMasksGradients) {
  Rng rng(22);
  nn::Dropout drop(0.3, rng);
  const nn::Tensor x = random_tensor({2, 16}, rng);
  const nn::Tensor y = drop.forward(x, true);
  const nn::Tensor g = drop.backward(nn::Tensor::full({2, 16}, 1.0f));
  for (std::size_t i = 0; i < y.numel(); ++i) {
    if (y[i] == 0.0f)
      EXPECT_EQ(g[i], 0.0f);
    else
      EXPECT_GT(g[i], 1.0f);
  }
}

TEST(Dropout, RejectsBadRateAndUntrainedBackward) {
  Rng rng(23);
  EXPECT_THROW(nn::Dropout(1.0, rng), Error);
  EXPECT_THROW(nn::Dropout(-0.1, rng), Error);
  nn::Dropout drop(0.5, rng);
  (void)drop.forward(random_tensor({1, 4}, rng), false);
  EXPECT_THROW(drop.backward(nn::Tensor::full({1, 4}, 1.0f)), Error);
}


TEST(SequenceMatcher, DtwOfIdenticalSequencesIsZero) {
  const auto joints = joints_at(0.3);
  pose::DescriptorSequence seq(5, pose::skeleton_descriptor(joints));
  EXPECT_NEAR(pose::dtw_distance(seq, seq), 0.0, 1e-12);
}

TEST(SequenceMatcher, DtwToleratesTimeWarping) {
  // The same gesture chain at 1x and 2x speed should match closely, and
  // far better than a different chain.
  const auto profile = hand::HandProfile::reference();
  auto chain_frames = [&](const std::vector<hand::Gesture>& chain,
                          int hold) {
    pose::DescriptorSequence seq;
    for (hand::Gesture g : chain) {
      hand::HandPose pose;
      pose.fingers = hand::gesture_articulation(g);
      const auto d = pose::skeleton_descriptor(
          hand::forward_kinematics(profile, pose));
      for (int f = 0; f < hold; ++f) seq.push_back(d);
    }
    return seq;
  };
  const std::vector<hand::Gesture> count_up{hand::Gesture::kPoint,
                                            hand::Gesture::kCount2,
                                            hand::Gesture::kCount3};
  const std::vector<hand::Gesture> fist_open{hand::Gesture::kFist,
                                             hand::Gesture::kOpenPalm,
                                             hand::Gesture::kFist};
  const auto slow = chain_frames(count_up, 6);
  const auto fast = chain_frames(count_up, 3);
  const auto other = chain_frames(fist_open, 4);
  EXPECT_LT(pose::dtw_distance(slow, fast),
            0.3 * pose::dtw_distance(slow, other));
}

TEST(SequenceMatcher, MatchesNoisyGestureChains) {
  pose::SequenceMatcher matcher;
  matcher.add_template("count-1-2-3",
                       {hand::Gesture::kPoint, hand::Gesture::kCount2,
                        hand::Gesture::kCount3});
  matcher.add_template("pump",
                       {hand::Gesture::kFist, hand::Gesture::kOpenPalm,
                        hand::Gesture::kFist});
  matcher.add_template("pinch-release",
                       {hand::Gesture::kOpenPalm, hand::Gesture::kPinch,
                        hand::Gesture::kOpenPalm});

  const auto profile = hand::HandProfile::for_user(2);
  Rng rng(33);
  std::vector<hand::JointSet> stream;
  for (hand::Gesture g : {hand::Gesture::kPoint, hand::Gesture::kCount2,
                          hand::Gesture::kCount3}) {
    hand::HandPose pose;
    pose.fingers = hand::gesture_articulation(g);
    for (int f = 0; f < 5; ++f) {
      auto joints = hand::forward_kinematics(profile, pose);
      for (auto& j : joints)
        j += Vec3{rng.normal(0, 0.004), rng.normal(0, 0.004),
                  rng.normal(0, 0.004)};
      stream.push_back(joints);
    }
  }
  const auto match = matcher.match(stream);
  EXPECT_EQ(match.name, "count-1-2-3") << "distance " << match.distance;
}

TEST(SequenceMatcher, RejectsEmptyInputs) {
  pose::SequenceMatcher matcher;
  EXPECT_THROW(matcher.match({joints_at(0.3)}), Error);  // no templates
  matcher.add_template("x", {hand::Gesture::kFist});
  EXPECT_THROW(matcher.match({}), Error);
  EXPECT_THROW(matcher.add_template("bad", {}), Error);
}

TEST(CsvExport, WritesEscapedTable) {
  const std::string path = ::testing::TempDir() + "/table.csv";
  eval::CsvWriter csv({"name", "value"});
  csv.add_row({std::string("plain"), std::string("1.0")});
  csv.add_row({std::string("with,comma"), std::string("quote\"inside")});
  csv.add_row(std::vector<double>{3.14159, 2.5}, 2);
  csv.write(path);

  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "name,value");
  std::getline(in, line);
  EXPECT_EQ(line, "plain,1.0");
  std::getline(in, line);
  EXPECT_EQ(line, "\"with,comma\",\"quote\"\"inside\"");
  std::getline(in, line);
  EXPECT_EQ(line, "3.14,2.50");
  std::remove(path.c_str());
}

TEST(CsvExport, RejectsMismatchedRows) {
  eval::CsvWriter csv({"a", "b"});
  EXPECT_THROW(csv.add_row({std::string("only-one")}), Error);
}

}  // namespace
}  // namespace mmhand
