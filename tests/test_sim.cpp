// Tests for mmhand/sim: hand scatterer scenes, clutter, effect models,
// label noise, and the end-to-end dataset builder.

#include <gtest/gtest.h>

#include <cmath>

#include "mmhand/hand/kinematics.hpp"
#include "mmhand/sim/clutter.hpp"
#include "mmhand/sim/dataset.hpp"
#include "mmhand/sim/effects.hpp"
#include "mmhand/sim/label_noise.hpp"
#include "mmhand/common/stats.hpp"
#include "mmhand/sim/scene.hpp"

namespace mmhand::sim {
namespace {

hand::JointSet posed_joints(double wrist_y = 0.30) {
  hand::HandPose pose;
  pose.wrist_position = Vec3{0.0, wrist_y, 0.0};
  return hand::forward_kinematics(hand::HandProfile::reference(), pose);
}

TEST(HandScene, ScattererCountMatchesConfig) {
  const auto joints = posed_joints();
  HandSceneConfig cfg;
  Rng rng(1);
  const auto scene = build_hand_scene(joints, joints, 0.02, cfg, rng);
  EXPECT_EQ(scene.size(),
            static_cast<std::size_t>(hand::kNumBones * cfg.points_per_bone +
                                     cfg.palm_points));
}

TEST(HandScene, ScatterersLieNearTheHand) {
  const auto joints = posed_joints();
  HandSceneConfig cfg;
  Rng rng(2);
  const auto scene = build_hand_scene(joints, joints, 0.02, cfg, rng);
  const Vec3 wrist = joints[hand::kWrist];
  for (const auto& s : scene) {
    EXPECT_LT(distance(s.position, wrist), 0.25) << "scatterer far from hand";
    EXPECT_GT(s.amplitude, 0.0);
  }
}

TEST(HandScene, StaticHandHasZeroVelocity) {
  const auto joints = posed_joints();
  HandSceneConfig cfg;
  Rng rng(3);
  const auto scene = build_hand_scene(joints, joints, 0.02, cfg, rng);
  for (const auto& s : scene) EXPECT_NEAR(s.velocity.norm(), 0.0, 1e-12);
}

TEST(HandScene, MovingHandHasFiniteDifferenceVelocity) {
  const auto j0 = posed_joints(0.30);
  const auto j1 = posed_joints(0.32);  // hand moved 2 cm away
  HandSceneConfig cfg;
  Rng rng(4);
  const double dt = 0.02;
  const auto scene = build_hand_scene(j1, j0, dt, cfg, rng);
  for (const auto& s : scene) {
    EXPECT_NEAR(s.velocity.y, 0.02 / dt, 1e-9);
    EXPECT_NEAR(s.velocity.x, 0.0, 1e-9);
  }
}

TEST(HandScene, PalmReflectsMoreThanFingersInTotal) {
  const auto joints = posed_joints();
  HandSceneConfig cfg;
  Rng rng(5);
  const auto scene = build_hand_scene(joints, joints, 0.02, cfg, rng);
  double palm = 0.0, fingers = 0.0;
  for (std::size_t i = 0; i < scene.size(); ++i) {
    if (i < static_cast<std::size_t>(cfg.palm_points))
      palm += scene[i].amplitude;
    else
      fingers += scene[i].amplitude;
  }
  EXPECT_GT(palm, fingers);
}

TEST(HandScene, RejectsBadArguments) {
  const auto joints = posed_joints();
  HandSceneConfig cfg;
  Rng rng(6);
  EXPECT_THROW(build_hand_scene(joints, joints, 0.0, cfg, rng), Error);
  cfg.points_per_bone = 0;
  EXPECT_THROW(build_hand_scene(joints, joints, 0.02, cfg, rng), Error);
}

TEST(Clutter, PlaygroundIsEmptyWithoutBody) {
  ClutterConfig cfg;
  cfg.environment = Environment::kPlayground;
  cfg.body = BodyPosition::kNone;
  Rng rng(7);
  EXPECT_TRUE(build_clutter(cfg, rng).empty());
}

TEST(Clutter, ClassroomDenserThanCorridor) {
  Rng rng1(8), rng2(8);
  ClutterConfig corridor{Environment::kCorridor, BodyPosition::kNone, 0.65};
  ClutterConfig classroom{Environment::kClassroom, BodyPosition::kNone, 0.65};
  EXPECT_GT(build_clutter(classroom, rng1).size(),
            build_clutter(corridor, rng2).size());
}

TEST(Clutter, BodyFrontSitsBehindHandOnBoresight) {
  ClutterConfig cfg{Environment::kPlayground, BodyPosition::kFront, 0.65};
  Rng rng(9);
  const auto scene = build_clutter(cfg, rng);
  ASSERT_FALSE(scene.empty());
  for (const auto& s : scene) {
    EXPECT_NEAR(s.position.y, 0.65, 0.15);
    EXPECT_LT(std::abs(s.position.x), 0.25);
  }
}

TEST(Clutter, BodySideSitsOffBoresight) {
  ClutterConfig cfg{Environment::kPlayground, BodyPosition::kSide, 0.65};
  Rng rng(10);
  const auto scene = build_clutter(cfg, rng);
  ASSERT_FALSE(scene.empty());
  double mean_x = 0.0;
  for (const auto& s : scene) mean_x += s.position.x;
  mean_x /= static_cast<double>(scene.size());
  EXPECT_GT(mean_x, 0.3);
}

TEST(Clutter, EnvironmentNamesResolve) {
  EXPECT_EQ(environment_name(Environment::kPlayground), "playground");
  EXPECT_EQ(environment_name(Environment::kClassroom), "classroom");
  EXPECT_EQ(body_position_name(BodyPosition::kSide), "side");
}

TEST(Effects, GloveAddsMaterialScatterersAndFuzz) {
  const auto joints = posed_joints();
  HandSceneConfig cfg;
  Rng rng(11);
  auto clean = build_hand_scene(joints, joints, 0.02, cfg, rng);
  auto gloved = clean;
  Rng glove_rng(12);
  apply_glove(gloved, GloveType::kCotton, glove_rng);
  EXPECT_GT(gloved.size(), clean.size());
  // Positions shifted by the fabric.
  double total_shift = 0.0;
  for (std::size_t i = 0; i < clean.size(); ++i)
    total_shift += distance(gloved[i].position, clean[i].position);
  EXPECT_GT(total_shift / static_cast<double>(clean.size()), 0.002);
}

TEST(Effects, CottonDistortsMoreThanSilk) {
  const auto joints = posed_joints();
  HandSceneConfig cfg;
  Rng rng(13);
  const auto clean = build_hand_scene(joints, joints, 0.02, cfg, rng);
  auto silk = clean, cotton = clean;
  Rng r1(14), r2(14);
  apply_glove(silk, GloveType::kSilk, r1);
  apply_glove(cotton, GloveType::kCotton, r2);
  auto mean_shift = [&](const radar::Scene& s) {
    double total = 0.0;
    for (std::size_t i = 0; i < clean.size(); ++i)
      total += distance(s[i].position, clean[i].position);
    return total / static_cast<double>(clean.size());
  };
  EXPECT_GT(mean_shift(cotton), mean_shift(silk));
}

TEST(Effects, NoGloveIsNoOp) {
  const auto joints = posed_joints();
  HandSceneConfig cfg;
  Rng rng(15);
  auto scene = build_hand_scene(joints, joints, 0.02, cfg, rng);
  const auto before = scene.size();
  Rng glove_rng(16);
  apply_glove(scene, GloveType::kNone, glove_rng);
  EXPECT_EQ(scene.size(), before);
}

TEST(Effects, PenExtendsPastFingertips) {
  const auto joints = posed_joints();
  radar::Scene scene;
  Rng rng(17);
  apply_handheld_object(scene, joints, HandheldObject::kPen, rng);
  ASSERT_FALSE(scene.empty());
  // At least one pen scatterer reaches beyond the index fingertip along
  // the finger direction.
  const Vec3 tip = joints[8];
  const Vec3 dir = (joints[9] - joints[hand::kWrist]).normalized();
  bool beyond = false;
  for (const auto& s : scene)
    if ((s.position - tip).dot(dir) > 0.03) beyond = true;
  EXPECT_TRUE(beyond);
}

TEST(Effects, PowerBankShadowsHand) {
  const auto joints = posed_joints();
  HandSceneConfig cfg;
  Rng rng(18);
  auto scene = build_hand_scene(joints, joints, 0.02, cfg, rng);
  double hand_amp_before = 0.0;
  for (const auto& s : scene) hand_amp_before += s.amplitude;
  const std::size_t hand_count = scene.size();
  Rng obj_rng(19);
  apply_handheld_object(scene, joints, HandheldObject::kPowerBank, obj_rng);
  double hand_amp_after = 0.0;
  for (std::size_t i = 0; i < hand_count; ++i)
    hand_amp_after += scene[i].amplitude;
  EXPECT_LT(hand_amp_after, 0.6 * hand_amp_before);
  EXPECT_GT(scene.size(), hand_count);
}

TEST(Effects, BallInterferesLessThanPowerBank) {
  const auto joints = posed_joints();
  radar::Scene ball, bank;
  Rng r1(20), r2(20);
  apply_handheld_object(ball, joints, HandheldObject::kTableTennisBall, r1);
  apply_handheld_object(bank, joints, HandheldObject::kPowerBank, r2);
  auto total_amp = [](const radar::Scene& s) {
    double a = 0.0;
    for (const auto& x : s) a += x.amplitude;
    return a;
  };
  EXPECT_LT(total_amp(ball), 0.3 * total_amp(bank));
}

class ObstacleAttenuation : public ::testing::TestWithParam<Obstacle> {};

TEST_P(ObstacleAttenuation, AttenuatesSceneAndAddsSelfReflection) {
  const auto joints = posed_joints();
  HandSceneConfig cfg;
  Rng rng(21);
  auto scene = build_hand_scene(joints, joints, 0.02, cfg, rng);
  double before = 0.0;
  for (const auto& s : scene) before += s.amplitude;
  const std::size_t n_before = scene.size();
  Rng orng(22);
  apply_obstacle(scene, GetParam(), orng);
  double after = 0.0;
  for (std::size_t i = 0; i < n_before; ++i) after += scene[i].amplitude;
  EXPECT_LT(after, before);
  EXPECT_GT(scene.size(), n_before);  // obstacle's own reflection
}

INSTANTIATE_TEST_SUITE_P(Materials, ObstacleAttenuation,
                         ::testing::Values(Obstacle::kPaper, Obstacle::kCloth,
                                           Obstacle::kBoard));

TEST(Effects, BoardAttenuatesMostPaperLeast) {
  const auto joints = posed_joints();
  HandSceneConfig cfg;
  Rng rng(23);
  const auto clean = build_hand_scene(joints, joints, 0.02, cfg, rng);
  auto attenuated_total = [&](Obstacle o) {
    auto scene = clean;
    Rng orng(24);
    apply_obstacle(scene, o, orng);
    double total = 0.0;
    for (std::size_t i = 0; i < clean.size(); ++i)
      total += scene[i].amplitude;
    return total;
  };
  const double paper = attenuated_total(Obstacle::kPaper);
  const double cloth = attenuated_total(Obstacle::kCloth);
  const double board = attenuated_total(Obstacle::kBoard);
  EXPECT_GT(paper, cloth);
  EXPECT_GT(cloth, board);
}

TEST(LabelNoise, JitterHasConfiguredScale) {
  const auto joints = posed_joints();
  LabelNoiseConfig cfg{0.003};
  Rng rng(25);
  std::vector<double> errors;
  for (int trial = 0; trial < 200; ++trial) {
    const auto noisy = apply_label_noise(joints, cfg, rng);
    for (int j = 0; j < hand::kNumJoints; ++j)
      errors.push_back(
          distance(noisy[static_cast<std::size_t>(j)],
                   joints[static_cast<std::size_t>(j)]));
  }
  // Mean norm of a 3-D gaussian with sigma=3 mm is sigma*sqrt(8/pi)=4.8 mm.
  EXPECT_NEAR(mean(errors), 0.0048, 0.0008);
}

TEST(LabelNoise, ZeroSigmaIsIdentity) {
  const auto joints = posed_joints();
  Rng rng(26);
  const auto noisy = apply_label_noise(joints, {0.0}, rng);
  for (int j = 0; j < hand::kNumJoints; ++j)
    EXPECT_EQ(noisy[static_cast<std::size_t>(j)],
              joints[static_cast<std::size_t>(j)]);
}

class DatasetBuilderTest : public ::testing::Test {
 protected:
  static radar::ChirpConfig fast_chirp() {
    radar::ChirpConfig c;
    c.chirps_per_frame = 8;
    c.samples_per_chirp = 32;
    c.frame_period_s = 0.05;
    return c;
  }
  static radar::PipelineConfig fast_pipeline() {
    radar::PipelineConfig pc;
    pc.cube.range_bins = 12;
    pc.cube.azimuth_bins = 8;
    pc.cube.elevation_bins = 4;
    return pc;
  }
};

TEST_F(DatasetBuilderTest, ProducesExpectedFrameCountAndShapes) {
  const DatasetBuilder builder(fast_chirp(), fast_pipeline());
  ScenarioConfig scenario;
  scenario.duration_s = 0.5;
  const auto rec = builder.record(scenario);
  EXPECT_EQ(rec.frames.size(), 10u);  // 0.5 s at 20 fps
  for (const auto& f : rec.frames) {
    EXPECT_EQ(f.cube.velocity_bins(), 8);
    EXPECT_EQ(f.cube.range_bins(), 12);
    EXPECT_EQ(f.cube.angle_bins(), 12);  // 8 azimuth + 4 elevation
    EXPECT_GT(f.cube.max_value(), 0.0f);
  }
}

TEST_F(DatasetBuilderTest, LabelsTrackTheScenarioPlacement) {
  const DatasetBuilder builder(fast_chirp(), fast_pipeline());
  ScenarioConfig scenario;
  scenario.hand_distance_m = 0.35;
  scenario.duration_s = 0.3;
  const auto rec = builder.record(scenario);
  for (const auto& f : rec.frames) {
    const Vec3 wrist = f.true_joints[hand::kWrist];
    EXPECT_NEAR(wrist.norm(), 0.35, 0.08);  // within drift of the base
  }
}

TEST_F(DatasetBuilderTest, AzimuthPlacementRotatesTheHand) {
  const DatasetBuilder builder(fast_chirp(), fast_pipeline());
  ScenarioConfig scenario;
  scenario.hand_azimuth_deg = 30.0;
  scenario.duration_s = 0.2;
  const auto rec = builder.record(scenario);
  const Vec3 wrist = rec.frames.front().true_joints[hand::kWrist];
  EXPECT_GT(wrist.x, 0.10);  // well off boresight
}

TEST_F(DatasetBuilderTest, DeterministicForFixedSeed) {
  const DatasetBuilder builder(fast_chirp(), fast_pipeline());
  ScenarioConfig scenario;
  scenario.duration_s = 0.2;
  scenario.seed = 99;
  const auto r1 = builder.record(scenario);
  const auto r2 = builder.record(scenario);
  ASSERT_EQ(r1.frames.size(), r2.frames.size());
  for (std::size_t i = 0; i < r1.frames.size(); ++i) {
    EXPECT_EQ(r1.frames[i].cube.data(), r2.frames[i].cube.data());
    EXPECT_EQ(r1.frames[i].joints[0], r2.frames[i].joints[0]);
  }
}

TEST_F(DatasetBuilderTest, DifferentUsersDiffer) {
  const DatasetBuilder builder(fast_chirp(), fast_pipeline());
  ScenarioConfig a, b;
  a.duration_s = b.duration_s = 0.2;
  a.user_id = 0;
  b.user_id = 1;
  const auto ra = builder.record(a);
  const auto rb = builder.record(b);
  EXPECT_NE(ra.frames[0].joints[8], rb.frames[0].joints[8]);
}

TEST_F(DatasetBuilderTest, NoisyLabelsStayCloseToTruth) {
  const DatasetBuilder builder(fast_chirp(), fast_pipeline());
  ScenarioConfig scenario;
  scenario.duration_s = 0.2;
  const auto rec = builder.record(scenario);
  for (const auto& f : rec.frames)
    for (int j = 0; j < hand::kNumJoints; ++j)
      EXPECT_LT(distance(f.joints[static_cast<std::size_t>(j)],
                         f.true_joints[static_cast<std::size_t>(j)]),
                0.02);
}

TEST_F(DatasetBuilderTest, RejectsBadScenario) {
  const DatasetBuilder builder(fast_chirp(), fast_pipeline());
  ScenarioConfig scenario;
  scenario.duration_s = -1.0;
  EXPECT_THROW(builder.record(scenario), Error);
  scenario.duration_s = 0.2;
  scenario.hand_distance_m = 2.0;
  EXPECT_THROW(builder.record(scenario), Error);
}

TEST_F(DatasetBuilderTest, HandEnergyAppearsNearTheHandRangeBin) {
  const DatasetBuilder builder(fast_chirp(), fast_pipeline());
  ScenarioConfig scenario;
  scenario.duration_s = 0.2;
  scenario.hand_distance_m = 0.30;
  scenario.clutter.body = BodyPosition::kNone;
  scenario.clutter.environment = Environment::kPlayground;
  const auto rec = builder.record(scenario);
  const auto& cube = rec.frames.back().cube;
  // Strongest range response within a couple of bins of 30 cm (bin width
  // = c/(2B) * 64/32 = 7.5 cm at 32 samples ... compute from pipeline).
  const auto& pipe = builder.pipeline();
  int best_d = 0;
  double best_e = -1.0;
  for (int d = 0; d < cube.range_bins(); ++d) {
    double e = 0.0;
    for (int v = 0; v < cube.velocity_bins(); ++v)
      for (int a = 0; a < cube.angle_bins(); ++a) e += cube.at(v, d, a);
    if (e > best_e) {
      best_e = e;
      best_d = d;
    }
  }
  EXPECT_NEAR(pipe.range_for_bin(best_d), 0.30, 0.12);
}

}  // namespace
}  // namespace mmhand::sim
