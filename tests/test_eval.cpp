// Tests for mmhand/eval: metric math, the cross-validation experiment
// harness (fast protocol), model caching, and the table printer.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "mmhand/eval/experiment.hpp"
#include "mmhand/eval/metrics.hpp"
#include "mmhand/eval/table_printer.hpp"
#include "mmhand/hand/kinematics.hpp"

namespace mmhand::eval {
namespace {

hand::JointSet shifted(const hand::JointSet& joints, const Vec3& d) {
  hand::JointSet out = joints;
  for (auto& j : out) j += d;
  return out;
}

hand::JointSet base_joints() {
  hand::HandPose pose;
  pose.wrist_position = Vec3{0, 0.3, 0};
  return hand::forward_kinematics(hand::HandProfile::reference(), pose);
}

TEST(Metrics, MpjpeOfKnownShift) {
  EvalAccumulator acc;
  const auto gt = base_joints();
  acc.add(shifted(gt, {0.01, 0.0, 0.0}), gt);  // 10 mm everywhere
  EXPECT_NEAR(acc.mpjpe_mm(), 10.0, 1e-9);
  EXPECT_NEAR(acc.mpjpe_mm(JointSubset::kPalm), 10.0, 1e-9);
  EXPECT_NEAR(acc.mpjpe_mm(JointSubset::kFingers), 10.0, 1e-9);
}

TEST(Metrics, PckThresholds) {
  EvalAccumulator acc;
  const auto gt = base_joints();
  acc.add(shifted(gt, {0.02, 0.0, 0.0}), gt);  // all at 20 mm
  EXPECT_NEAR(acc.pck(40.0), 100.0, 1e-9);
  EXPECT_NEAR(acc.pck(10.0), 0.0, 1e-9);
  EXPECT_NEAR(acc.pck(19.9), 0.0, 1e-9);
  EXPECT_NEAR(acc.pck(20.1), 100.0, 1e-9);
}

TEST(Metrics, PckCurveIsMonotone) {
  EvalAccumulator acc;
  const auto gt = base_joints();
  Rng rng(1);
  for (int i = 0; i < 30; ++i) {
    hand::JointSet noisy = gt;
    for (auto& j : noisy)
      j += Vec3{rng.normal(0, 0.01), rng.normal(0, 0.01),
                rng.normal(0, 0.01)};
    acc.add(noisy, gt);
  }
  const auto curve = acc.pck_curve(60.0, 30);
  for (std::size_t i = 1; i < curve.size(); ++i)
    EXPECT_GE(curve[i].pck, curve[i - 1].pck);
  EXPECT_NEAR(curve.front().pck, 0.0, 1e-9);
  EXPECT_NEAR(curve.back().pck, 100.0, 1.0);
}

TEST(Metrics, AucBounds) {
  EvalAccumulator perfect, poor;
  const auto gt = base_joints();
  perfect.add(gt, gt);
  poor.add(shifted(gt, {0.055, 0.0, 0.0}), gt);
  EXPECT_GT(perfect.auc(60.0, 61), 0.97);
  EXPECT_LT(poor.auc(60.0, 61), 0.15);
}

TEST(Metrics, MergeCombines) {
  EvalAccumulator a, b;
  const auto gt = base_joints();
  a.add(shifted(gt, {0.01, 0, 0}), gt);
  b.add(shifted(gt, {0.03, 0, 0}), gt);
  a.merge(b);
  EXPECT_EQ(a.frames(), 2u);
  EXPECT_NEAR(a.mpjpe_mm(), 20.0, 1e-9);
  EXPECT_EQ(a.frame_mpjpe_mm().size(), 2u);
}

TEST(Metrics, EmptyAccumulatorThrows) {
  EvalAccumulator acc;
  EXPECT_TRUE(acc.empty());
  EXPECT_THROW(acc.mpjpe_mm(), Error);
  EXPECT_THROW(acc.pck(40.0), Error);
}

TEST(Protocol, FingerprintTracksConfig) {
  const auto a = ProtocolConfig::fast();
  auto b = a;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.train.epochs += 1;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  auto c = a;
  c.posenet.spacenet.attention.spatial = false;
  EXPECT_NE(a.fingerprint(), c.fingerprint());
}

TEST(Protocol, StandardGeometryIsConsistent) {
  const auto cfg = ProtocolConfig::standard();
  EXPECT_EQ(cfg.posenet.velocity_bins, cfg.chirp.chirps_per_frame);
  EXPECT_EQ(cfg.posenet.range_bins, cfg.pipeline.cube.range_bins);
  EXPECT_EQ(cfg.posenet.angle_bins, cfg.pipeline.cube.total_angle_bins());
  EXPECT_NO_THROW(cfg.posenet.validate());
}

class ExperimentTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cache_dir_ = ::testing::TempDir() + "/mmhand_test_cache";
    experiment_ = new Experiment(ProtocolConfig::fast());
    experiment_->prepare(cache_dir_);
  }
  static void TearDownTestSuite() {
    delete experiment_;
    experiment_ = nullptr;
    std::filesystem::remove_all(cache_dir_);
  }
  static Experiment* experiment_;
  static std::string cache_dir_;
};

Experiment* ExperimentTest::experiment_ = nullptr;
std::string ExperimentTest::cache_dir_;

TEST_F(ExperimentTest, EvaluatesEveryUser) {
  const auto& cfg = experiment_->config();
  for (int user = 0; user < cfg.num_users; ++user) {
    const auto acc = experiment_->evaluate_user(user);
    EXPECT_FALSE(acc.empty()) << "user " << user;
    // Sanity range: better than chance (hand spans ~20 cm) even at the
    // fast protocol's tiny training budget.
    EXPECT_LT(acc.mpjpe_mm(), 150.0) << "user " << user;
    EXPECT_GT(acc.mpjpe_mm(), 0.1) << "user " << user;
  }
}

TEST_F(ExperimentTest, ModelsAreCachedAndReloadable) {
  // A second experiment over the same protocol must load, not retrain:
  // verify by timing-free check that cache files exist.
  int checkpoints = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(cache_dir_)) {
    if (entry.path().extension() == ".bin") ++checkpoints;
  }
  EXPECT_EQ(checkpoints, experiment_->config().folds);

  Experiment reloaded(experiment_->config());
  reloaded.prepare(cache_dir_);
  const auto a = experiment_->evaluate_user(0);
  auto b = reloaded.evaluate_user(0);
  EXPECT_NEAR(a.mpjpe_mm(), b.mpjpe_mm(), 1e-9);
}

TEST_F(ExperimentTest, ScenarioOverridesApply) {
  auto scenario = experiment_->default_scenario(1);
  scenario.glove = sim::GloveType::kCotton;
  const auto acc = experiment_->evaluate_scenario(scenario);
  EXPECT_FALSE(acc.empty());
}

TEST_F(ExperimentTest, ModelForUserRespectsFolds) {
  const auto& cfg = experiment_->config();
  // Users in different folds get different models.
  auto& m0 = experiment_->model_for_user(0);
  auto& m1 = experiment_->model_for_user(1);
  EXPECT_NE(&m0, &m1);
  auto& m2 = experiment_->model_for_user(cfg.folds);
  EXPECT_EQ(&m0, &m2);  // same fold as user 0
}

TEST(Protocol, TrainingScenariosCoverThePlacementEnvelope) {
  Experiment experiment(ProtocolConfig::fast());
  double d_min = 1e9, d_max = -1e9, a_min = 1e9, a_max = -1e9;
  for (int user = 0; user < ProtocolConfig::fast().num_users; ++user) {
    const auto scenarios = experiment.training_scenarios(user);
    EXPECT_EQ(scenarios.size(), 3u);
    for (const auto& s : scenarios) {
      EXPECT_EQ(s.user_id, user);
      EXPECT_GE(s.hand_distance_m, 0.20);
      EXPECT_LE(s.hand_distance_m, 0.40);  // the paper's envelope
      d_min = std::min(d_min, s.hand_distance_m);
      d_max = std::max(d_max, s.hand_distance_m);
      a_min = std::min(a_min, s.hand_azimuth_deg);
      a_max = std::max(a_max, s.hand_azimuth_deg);
    }
  }
  // The pooled training set spans distance and bearing, not one spot.
  EXPECT_GT(d_max - d_min, 0.08);
  EXPECT_GT(a_max - a_min, 10.0);
}

TEST(Protocol, TestPlacementIsUniformAcrossUsers) {
  Experiment experiment(ProtocolConfig::fast());
  const auto a = experiment.default_scenario(0);
  const auto b = experiment.default_scenario(3);
  EXPECT_DOUBLE_EQ(a.hand_distance_m, b.hand_distance_m);
  EXPECT_DOUBLE_EQ(a.hand_azimuth_deg, b.hand_azimuth_deg);
  EXPECT_NE(a.user_id, b.user_id);
}

TEST(TablePrinter, FormatsNumbers) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(10.0, 0), "10");
}

}  // namespace
}  // namespace mmhand::eval
