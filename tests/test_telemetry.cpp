// Continuous-telemetry subsystem: MMHAND_TELEMETRY/MMHAND_FLIGHT spec
// parsing, deterministic manual-mode sampling, windowed counter/stage
// deltas, budget breaches, OpenMetrics output shape, flight-recorder
// rendering (including crash persistence via a death test), and the
// contract everything hangs on — bitwise-identical pipeline outputs
// with telemetry on or off, at 1 and 4 threads.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "mmhand/common/json.hpp"
#include "mmhand/common/parallel.hpp"
#include "mmhand/common/rng.hpp"
#include "mmhand/obs/obs.hpp"
#include "mmhand/radar/antenna_array.hpp"
#include "mmhand/radar/chirp_config.hpp"
#include "mmhand/radar/if_simulator.hpp"
#include "mmhand/radar/pipeline.hpp"

namespace mmhand {
namespace {

namespace fs = std::filesystem;
using json::Value;

std::string temp_path(const std::string& name) {
  return (fs::temp_directory_path() / ("mmhand_telemetry_" + name)).string();
}

/// Every test leaves the obs layer exactly as it found it: sampler off,
/// metrics off, registry empty (handles stay valid).
struct TelemetryGuard {
  TelemetryGuard() { obs::reset_metrics(); }
  ~TelemetryGuard() {
    obs::stop_telemetry();
    obs::stop_flight();
    obs::set_metrics_enabled(false);
    obs::reset_metrics();
  }
};

/// Parses the newest in-memory telemetry record, failing the test on a
/// malformed line.
Value newest_record() {
  const std::vector<std::string> tail = obs::telemetry_ring_tail(1);
  EXPECT_EQ(tail.size(), 1u);
  std::string err;
  Value v = Value::parse(tail.empty() ? "" : tail.back(), &err);
  EXPECT_TRUE(err.empty()) << err;
  return v;
}

/// Manual-mode sampler config: no thread, in-memory ring only.
obs::TelemetryConfig manual_config() {
  obs::TelemetryConfig config;
  config.interval_ms = 0;
  config.ring_capacity = 64;
  return config;
}

// ---------------------------------------------------------------------
// Spec parsing.

TEST(TelemetrySpec, ParsesFullGrammar) {
  obs::TelemetryConfig config;
  std::string error;
  ASSERT_TRUE(obs::parse_telemetry_spec(
      "250,out=/tmp/t.jsonl,om=/tmp/t.om,budgets=b.json,ring=64", &config,
      &error))
      << error;
  EXPECT_EQ(config.interval_ms, 250);
  EXPECT_EQ(config.out_path, "/tmp/t.jsonl");
  EXPECT_EQ(config.openmetrics_path, "/tmp/t.om");
  EXPECT_EQ(config.budgets_path, "b.json");
  EXPECT_EQ(config.ring_capacity, 64);
}

TEST(TelemetrySpec, IntervalAloneSuffices) {
  obs::TelemetryConfig config;
  std::string error;
  ASSERT_TRUE(obs::parse_telemetry_spec("50", &config, &error)) << error;
  EXPECT_EQ(config.interval_ms, 50);
  EXPECT_TRUE(config.out_path.empty());
}

TEST(TelemetrySpec, RejectsMalformedSpecs) {
  obs::TelemetryConfig config;
  std::string error;
  for (const char* bad : {"", "abc", "0", "-5", "100000", "50,bogus=1",
                          "50,ring=1", "50,ring=abc"}) {
    error.clear();
    EXPECT_FALSE(obs::parse_telemetry_spec(bad, &config, &error))
        << "accepted: " << bad;
    EXPECT_FALSE(error.empty()) << "no diagnostic for: " << bad;
  }
}

TEST(FlightSpec, ParsesPathAndSlots) {
  obs::FlightConfig config;
  std::string error;
  ASSERT_TRUE(obs::parse_flight_spec("/tmp/f.ring,slots=128", &config,
                                     &error))
      << error;
  EXPECT_EQ(config.path, "/tmp/f.ring");
  EXPECT_EQ(config.slots_per_thread, 128);
  ASSERT_TRUE(obs::parse_flight_spec("ring.bin", &config, &error));
  EXPECT_EQ(config.path, "ring.bin");
}

TEST(FlightSpec, RejectsMalformedSpecs) {
  obs::FlightConfig config;
  std::string error;
  for (const char* bad : {"", "p,slots=1", "p,slots=abc", "p,bogus=3"}) {
    EXPECT_FALSE(obs::parse_flight_spec(bad, &config, &error))
        << "accepted: " << bad;
  }
}

// ---------------------------------------------------------------------
// Manual-mode sampling: deterministic intervals, windowed deltas.

TEST(TelemetryManual, EachSampleCallEmitsOneInterval) {
  TelemetryGuard guard;
  ASSERT_TRUE(obs::set_telemetry(manual_config()));
  EXPECT_TRUE(obs::telemetry_enabled());
  EXPECT_TRUE(obs::metrics_enabled()) << "telemetry must imply metrics";
  EXPECT_EQ(obs::telemetry_intervals(), 0u);
  EXPECT_FALSE(obs::telemetry_sample_now().empty());
  EXPECT_FALSE(obs::telemetry_sample_now().empty());
  EXPECT_EQ(obs::telemetry_intervals(), 2u);
  // The ring holds the manifest record plus one record per interval.
  const std::vector<std::string> tail = obs::telemetry_ring_tail(8);
  ASSERT_EQ(tail.size(), 3u);
  std::string err;
  const Value manifest = Value::parse(tail.front(), &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(manifest.string_or("kind", ""), "telemetry_start");
  const Value first = Value::parse(tail[1], &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(first.string_or("kind", ""), "telemetry");
  EXPECT_EQ(first.number_or("seq", -1), 1.0);
}

TEST(TelemetryManual, SampleReturnsEmptyWhenOff) {
  EXPECT_FALSE(obs::telemetry_enabled());
  EXPECT_TRUE(obs::telemetry_sample_now().empty());
  EXPECT_TRUE(obs::telemetry_ring_tail(4).empty());
}

TEST(TelemetryWindow, CounterDeltasCoverOnlyTheInterval) {
  TelemetryGuard guard;
  ASSERT_TRUE(obs::set_telemetry(manual_config()));
  obs::counter("test/tel.counter").add(5);
  obs::telemetry_sample_now();
  {
    const Value v = newest_record();
    const Value* c = v.find("counters");
    ASSERT_NE(c, nullptr);
    const Value* mine = c->find("test/tel.counter");
    ASSERT_NE(mine, nullptr);
    EXPECT_EQ(mine->number_or("total", -1), 5.0);
    EXPECT_EQ(mine->number_or("delta", -1), 5.0);
  }
  obs::counter("test/tel.counter").add(3);
  obs::telemetry_sample_now();
  {
    const Value v = newest_record();
    const Value* mine = v.find("counters")->find("test/tel.counter");
    ASSERT_NE(mine, nullptr);
    EXPECT_EQ(mine->number_or("total", -1), 8.0);
    EXPECT_EQ(mine->number_or("delta", -1), 3.0);
  }
}

TEST(TelemetryWindow, StageStatsAreWindowedAndMonotone) {
  TelemetryGuard guard;
  ASSERT_TRUE(obs::set_telemetry(manual_config()));
  obs::Histogram& h = obs::histogram("test/tel.stage");
  h.record(100.0);
  h.record(200.0);
  h.record(300.0);
  obs::telemetry_sample_now();
  {
    const Value v = newest_record();
    const Value* st = v.find("stages");
    ASSERT_NE(st, nullptr);
    const Value* mine = st->find("test/tel.stage");
    ASSERT_NE(mine, nullptr);
    EXPECT_EQ(mine->number_or("count", -1), 3.0);
    const double p50 = mine->number_or("p50_us", -1);
    const double p95 = mine->number_or("p95_us", -1);
    const double p99 = mine->number_or("p99_us", -1);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_NEAR(mine->number_or("mean_us", -1), 200.0, 20.0);
  }
  // An idle interval omits the stage entirely: the window saw nothing.
  obs::telemetry_sample_now();
  {
    const Value v = newest_record();
    const Value* st = v.find("stages");
    ASSERT_NE(st, nullptr);
    EXPECT_EQ(st->find("test/tel.stage"), nullptr);
  }
  // The next interval windows only the new sample, not the lifetime.
  h.record(50.0);
  obs::telemetry_sample_now();
  {
    const Value* mine = newest_record().find("stages")->find("test/tel.stage");
    ASSERT_NE(mine, nullptr);
    EXPECT_EQ(mine->number_or("count", -1), 1.0);
  }
}

// ---------------------------------------------------------------------
// Budgets.

TEST(TelemetryBudget, BreachIsCountedAndNamed) {
  TelemetryGuard guard;
  const std::string budgets = temp_path("budgets.json");
  {
    std::ofstream f(budgets);
    f << "{\"budgets\": [{\"stage\": \"test/breach.stage\","
         " \"max_mean_us\": 1}]}";
  }
  obs::TelemetryConfig config = manual_config();
  config.budgets_path = budgets;
  ASSERT_TRUE(obs::set_telemetry(config));
  obs::histogram("test/breach.stage").record(10000.0);
  obs::telemetry_sample_now();
  EXPECT_GE(obs::telemetry_breach_total(), 1u);
  const Value v = newest_record();
  const Value* breaches = v.find("breaches");
  ASSERT_NE(breaches, nullptr);
  ASSERT_TRUE(breaches->is_array());
  ASSERT_FALSE(breaches->as_array().empty());
  const Value& b = breaches->as_array().front();
  EXPECT_EQ(b.string_or("stage", ""), "test/breach.stage");
  EXPECT_EQ(b.string_or("field", ""), "mean_us");
  EXPECT_GT(b.number_or("actual", 0), b.number_or("limit", 1e18));
  fs::remove(budgets);
}

TEST(TelemetryBudget, MissingBudgetFileDegradesGracefully) {
  TelemetryGuard guard;
  obs::TelemetryConfig config = manual_config();
  config.budgets_path = temp_path("no_such_budgets.json");
  ASSERT_TRUE(obs::set_telemetry(config)) << "must degrade, not fail";
  obs::histogram("test/nobudget.stage").record(1e9);
  obs::telemetry_sample_now();
  EXPECT_EQ(obs::telemetry_breach_total(), 0u);
}

// ---------------------------------------------------------------------
// Outputs: JSONL stream shape, OpenMetrics exposition.

TEST(TelemetryOutput, JsonlStreamStartsWithManifestRecord) {
  TelemetryGuard guard;
  const std::string out = temp_path("stream.jsonl");
  fs::remove(out);
  obs::TelemetryConfig config = manual_config();
  config.out_path = out;
  ASSERT_TRUE(obs::set_telemetry(config));
  obs::counter("test/tel.stream").add(1);
  obs::telemetry_sample_now();
  obs::stop_telemetry();

  std::ifstream f(out);
  ASSERT_TRUE(f.is_open());
  std::string line;
  std::vector<Value> records;
  while (std::getline(f, line)) {
    std::string err;
    records.push_back(Value::parse(line, &err));
    ASSERT_TRUE(err.empty()) << err << ": " << line;
  }
  // Manifest + explicit sample + the final flush from stop_telemetry.
  ASSERT_GE(records.size(), 3u);
  EXPECT_EQ(records.front().string_or("kind", ""), "telemetry_start");
  EXPECT_GT(records.front().number_or("unix_ms", 0), 0.0);
  EXPECT_EQ(records[1].string_or("kind", ""), "telemetry");
  fs::remove(out);
}

TEST(TelemetryOutput, OpenMetricsExpositionIsWellFormed) {
  TelemetryGuard guard;
  const std::string om = temp_path("metrics.om");
  fs::remove(om);
  obs::TelemetryConfig config = manual_config();
  config.openmetrics_path = om;
  ASSERT_TRUE(obs::set_telemetry(config));
  obs::counter("test/tel.om_counter").add(2);
  obs::histogram("test/tel.om_stage").record(10.0);
  obs::telemetry_sample_now();
  obs::telemetry_sample_now();
  obs::stop_telemetry();

  std::ifstream f(om);
  ASSERT_TRUE(f.is_open());
  std::vector<std::string> lines;
  for (std::string line; std::getline(f, line);) lines.push_back(line);
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines.back(), "# EOF");
  std::string text;
  for (const std::string& l : lines) text += l + "\n";
  EXPECT_NE(text.find("# TYPE mmhand_events counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE mmhand_stage_latency_us summary"),
            std::string::npos);
  EXPECT_NE(text.find("mmhand_events_total{name=\"test/tel.om_counter\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.95\""), std::string::npos);
  EXPECT_NE(text.find("mmhand_stage_latency_us_count"), std::string::npos);
  EXPECT_NE(text.find("mmhand_telemetry_intervals_total"), std::string::npos);
  // Exactly one EOF, and nothing after it.
  std::size_t eofs = 0;
  for (const std::string& l : lines) eofs += (l == "# EOF") ? 1 : 0;
  EXPECT_EQ(eofs, 1u);
  fs::remove(om);
}

// ---------------------------------------------------------------------
// Flight recorder.

TEST(FlightRecorder, RendersEventsAndInFlightSpans) {
  TelemetryGuard guard;
  const std::string ring = temp_path("render.ring");
  fs::remove(ring);
  obs::FlightConfig config;
  config.path = ring;
  config.slots_per_thread = 64;
  ASSERT_TRUE(obs::set_flight(config));
  EXPECT_TRUE(obs::flight_enabled());
  EXPECT_EQ(obs::flight_path(), ring);
  {
    MMHAND_SPAN("test/flight.outer");
    { MMHAND_SPAN("test/flight.inner"); }
    // Render while `outer` is still open: it must show as in-flight.
    std::string error;
    const std::string rendered = obs::flight_render_file(ring, &error);
    ASSERT_FALSE(rendered.empty()) << error;
    EXPECT_NE(rendered.find("test/flight.inner"), std::string::npos);
    EXPECT_NE(rendered.find("in-flight:"), std::string::npos);
    EXPECT_NE(rendered.find("test/flight.outer"), std::string::npos);
    EXPECT_NE(rendered.find("end of flight dump"), std::string::npos);
  }
  fs::remove(ring);
}

TEST(FlightRecorder, RenderRejectsGarbageFiles) {
  const std::string bogus = temp_path("bogus.ring");
  {
    std::ofstream f(bogus, std::ios::binary);
    f << "this is not a flight ring";
  }
  std::string error;
  EXPECT_TRUE(obs::flight_render_file(bogus, &error).empty());
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_TRUE(
      obs::flight_render_file(temp_path("missing.ring"), &error).empty());
  EXPECT_FALSE(error.empty());
  fs::remove(bogus);
}

TEST(FlightRecorderDeathTest, RingSurvivesAbruptProcessExit) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const std::string ring = temp_path("death.ring");
  fs::remove(ring);
  // The child maps the ring, leaves a span open, and exits without any
  // flush or cleanup — the mmap page cache is the only survivor, which
  // is exactly the SIGKILL story.
  EXPECT_EXIT(
      {
        obs::FlightConfig config;
        config.path = ring;
        config.slots_per_thread = 32;
        if (!obs::set_flight(config)) std::_Exit(1);
        MMHAND_SPAN("test/flight.doomed");
        std::_Exit(86);
      },
      ::testing::ExitedWithCode(86), "");
  std::string error;
  const std::string rendered = obs::flight_render_file(ring, &error);
  ASSERT_FALSE(rendered.empty()) << error;
  EXPECT_NE(rendered.find("test/flight.doomed"), std::string::npos);
  EXPECT_NE(rendered.find("in-flight:"), std::string::npos);
  fs::remove(ring);
}

// ---------------------------------------------------------------------
// The contract: telemetry must not perturb numeric outputs.

std::vector<float> run_process_frame() {
  radar::ChirpConfig chirp;
  chirp.noise_stddev = 0.0;
  const radar::AntennaArray array(chirp);
  const radar::IfSimulator sim(chirp, array);
  const radar::PipelineConfig pc;
  const radar::RadarPipeline pipe(chirp, array, pc);
  radar::Scene scene{
      {Vec3{0.05, 0.30, 0.02}, Vec3{0.0, 0.4, 0.0}, 1.0},
      {Vec3{-0.08, 0.45, -0.01}, Vec3{0.0, -0.2, 0.0}, 0.7},
  };
  Rng rng(11);
  const auto frame = sim.simulate_frame(scene, 0.0, rng);
  return pipe.process_frame(frame).data();
}

template <typename Fn>
auto with_threads(int threads, Fn&& fn) {
  const int prev = num_threads();
  set_num_threads(threads);
  auto result = fn();
  set_num_threads(prev);
  return result;
}

TEST(TelemetryDeterminism, ProcessFrameBitwiseEqualWithTelemetryOnOff) {
  for (const int threads : {1, 4}) {
    const auto plain = with_threads(threads, run_process_frame);
    std::vector<float> sampled;
    {
      TelemetryGuard guard;
      const std::string ring = temp_path("determinism.ring");
      fs::remove(ring);
      obs::FlightConfig fc;
      fc.path = ring;
      ASSERT_TRUE(obs::set_flight(fc));
      ASSERT_TRUE(obs::set_telemetry(manual_config()));
      sampled = with_threads(threads, run_process_frame);
      obs::telemetry_sample_now();
      fs::remove(ring);
    }
    ASSERT_EQ(plain.size(), sampled.size());
    for (std::size_t i = 0; i < plain.size(); ++i)
      ASSERT_EQ(plain[i], sampled[i])
          << "cube cell " << i << " at " << threads << " threads";
  }
}

}  // namespace
}  // namespace mmhand
