// Tests for mmhand/dsp: FFT family, windows, Butterworth, spectrum utils.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "mmhand/common/error.hpp"
#include "mmhand/common/rng.hpp"
#include "mmhand/dsp/butterworth.hpp"
#include "mmhand/dsp/fft.hpp"
#include "mmhand/dsp/spectrum.hpp"
#include "mmhand/dsp/window.hpp"

namespace mmhand::dsp {
namespace {

constexpr double kPi = std::numbers::pi;

/// Brute-force DFT used as the reference implementation.
std::vector<Complex> dft_reference(std::span<const Complex> x) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc{};
    for (std::size_t i = 0; i < n; ++i)
      acc += x[i] * std::polar(1.0, -2.0 * kPi * static_cast<double>(k * i) /
                                        static_cast<double>(n));
    out[k] = acc;
  }
  return out;
}

std::vector<Complex> random_signal(std::size_t n, Rng& rng) {
  std::vector<Complex> x(n);
  for (auto& v : x) v = Complex{rng.normal(), rng.normal()};
  return x;
}

TEST(Fft, IsPowerOfTwo) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_FALSE(is_power_of_two(63));
}

class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, MatchesReferenceDft) {
  Rng rng(42 + GetParam());
  const auto x = random_signal(GetParam(), rng);
  const auto fast = fft(x);
  const auto ref = dft_reference(x);
  ASSERT_EQ(fast.size(), ref.size());
  for (std::size_t i = 0; i < fast.size(); ++i)
    EXPECT_NEAR(std::abs(fast[i] - ref[i]), 0.0, 1e-8) << "bin " << i;
}

TEST_P(FftSizes, InverseRoundTrip) {
  Rng rng(7 + GetParam());
  const auto x = random_signal(GetParam(), rng);
  const auto back = ifft(fft(x));
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(std::abs(back[i] - x[i]), 0.0, 1e-9) << "sample " << i;
}

TEST_P(FftSizes, ParsevalHolds) {
  Rng rng(99 + GetParam());
  const auto x = random_signal(GetParam(), rng);
  const auto spec = fft(x);
  double e_time = 0.0, e_freq = 0.0;
  for (const auto& v : x) e_time += std::norm(v);
  for (const auto& v : spec) e_freq += std::norm(v);
  EXPECT_NEAR(e_freq / static_cast<double>(x.size()), e_time,
              1e-8 * e_time + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(PowerOfTwoAndOddSizes, FftSizes,
                         ::testing::Values(1, 2, 4, 8, 16, 64, 128, 3, 5, 7,
                                           12, 17, 60, 100));

TEST(Fft, PureToneLandsInCorrectBin) {
  const std::size_t n = 64;
  const std::size_t tone = 5;
  std::vector<Complex> x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = std::polar(1.0, 2.0 * kPi * static_cast<double>(tone * i) /
                               static_cast<double>(n));
  const auto spec = fft(x);
  const auto mags = magnitude(spec);
  EXPECT_EQ(argmax(mags), tone);
  EXPECT_NEAR(mags[tone], static_cast<double>(n), 1e-9);
}

TEST(Fft, LinearityHolds) {
  Rng rng(13);
  const auto a = random_signal(32, rng);
  const auto b = random_signal(32, rng);
  std::vector<Complex> sum(32);
  for (std::size_t i = 0; i < 32; ++i) sum[i] = 2.0 * a[i] + 3.0 * b[i];
  const auto fs = fft(sum);
  const auto fa = fft(a);
  const auto fb = fft(b);
  for (std::size_t i = 0; i < 32; ++i)
    EXPECT_NEAR(std::abs(fs[i] - (2.0 * fa[i] + 3.0 * fb[i])), 0.0, 1e-9);
}

TEST(Fft, ShiftCentersDc) {
  std::vector<Complex> x(8, Complex{1.0, 0.0});
  const auto spec = fft(x);           // impulse at bin 0
  const auto shifted = fft_shift(spec);
  const auto mags = magnitude(shifted);
  EXPECT_EQ(argmax(mags), 4u);  // center for even n
}

TEST(Fft, ShiftOddLength) {
  std::vector<Complex> x{{1, 0}, {2, 0}, {3, 0}, {4, 0}, {5, 0}};
  const auto s = fft_shift(x);
  // Halves swap: [4,5,1,2,3].
  EXPECT_DOUBLE_EQ(s[0].real(), 4.0);
  EXPECT_DOUBLE_EQ(s[2].real(), 1.0);
  EXPECT_DOUBLE_EQ(s[4].real(), 3.0);
}

TEST(Fft, RealSignalSpectrumIsConjugateSymmetric) {
  Rng rng(5);
  std::vector<double> x(32);
  for (auto& v : x) v = rng.normal();
  const auto spec = fft_real(x);
  for (std::size_t k = 1; k < 32; ++k)
    EXPECT_NEAR(std::abs(spec[k] - std::conj(spec[32 - k])), 0.0, 1e-9);
}

TEST(ZoomFft, MatchesDenseDftOnBand) {
  // A zoomed band must equal direct evaluation of the DTFT on that band.
  Rng rng(21);
  const auto x = random_signal(16, rng);
  const double f_lo = -0.2, f_hi = 0.2;
  const std::size_t bins = 10;
  const auto zoom = zoom_fft(x, f_lo, f_hi, bins);
  for (std::size_t k = 0; k < bins; ++k) {
    const double f = f_lo + (f_hi - f_lo) * static_cast<double>(k) /
                                static_cast<double>(bins);
    Complex ref{};
    for (std::size_t i = 0; i < x.size(); ++i)
      ref += x[i] * std::polar(1.0, -2.0 * kPi * f * static_cast<double>(i));
    EXPECT_NEAR(std::abs(zoom[k] - ref), 0.0, 1e-8) << "bin " << k;
  }
}

TEST(ZoomFft, RefinementResolvesCloseTones) {
  // Two tones 0.7 bins apart are unresolvable by the plain 8-point FFT but
  // separate under a finer zoom grid — the reason §III applies zoom-FFT to
  // the angle spectra.
  const std::size_t n = 8;
  std::vector<Complex> x(n);
  const double f1 = 0.10, f2 = 0.19;
  for (std::size_t i = 0; i < n; ++i)
    x[i] = std::polar(1.0, 2.0 * kPi * f1 * static_cast<double>(i)) +
           std::polar(1.0, 2.0 * kPi * f2 * static_cast<double>(i));
  const auto fine = zoom_fft(x, 0.05, 0.25, 32);
  const auto mags = magnitude(fine);
  const auto peaks = find_peaks(mags, 0.5 * mags[argmax(mags)], 4);
  EXPECT_GE(peaks.size(), 2u);
}

TEST(ZoomFft, FullBandEqualsFft) {
  Rng rng(31);
  const auto x = random_signal(8, rng);
  const auto spec = fft(x);
  const auto zoom = zoom_fft(x, 0.0, 1.0, 8);  // same grid as the DFT
  for (std::size_t k = 0; k < 8; ++k)
    EXPECT_NEAR(std::abs(zoom[k] - spec[k]), 0.0, 1e-8);
}

TEST(Czt, DegenerateSingleBin) {
  const std::vector<Complex> x{{1, 0}, {1, 0}};
  const auto out = czt(x, 1, Complex{1, 0}, Complex{1, 0});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(std::abs(out[0] - Complex{2.0, 0.0}), 0.0, 1e-10);
}

TEST(Window, RectIsAllOnes) {
  const auto w = make_window(WindowType::kRect, 16);
  for (double v : w) EXPECT_DOUBLE_EQ(v, 1.0);
  EXPECT_DOUBLE_EQ(coherent_gain(w), 1.0);
}

class WindowTypes : public ::testing::TestWithParam<WindowType> {};

TEST_P(WindowTypes, SymmetricAndBounded) {
  const auto w = make_window(GetParam(), 33);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_GE(w[i], -1e-12);
    EXPECT_LE(w[i], 1.0 + 1e-12);
    EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-12);
  }
}

TEST_P(WindowTypes, PeaksAtCenter) {
  const auto w = make_window(GetParam(), 33);
  const std::size_t mid = 16;
  for (std::size_t i = 0; i < w.size(); ++i) EXPECT_LE(w[i], w[mid] + 1e-12);
}

TEST_P(WindowTypes, ReducesLeakage) {
  // An off-grid tone leaks less energy into far bins when windowed.
  const std::size_t n = 64;
  std::vector<Complex> raw(n), win(n);
  const auto w = make_window(GetParam(), n);
  for (std::size_t i = 0; i < n; ++i) {
    const Complex tone =
        std::polar(1.0, 2.0 * kPi * 10.37 * static_cast<double>(i) /
                            static_cast<double>(n));
    raw[i] = tone;
    win[i] = tone * w[i];
  }
  const auto raw_mag = magnitude(fft(raw));
  const auto win_mag = magnitude(fft(win));
  // Compare leakage 12 bins away from the tone, normalized by the peak.
  const double raw_leak = raw_mag[30] / raw_mag[10];
  const double win_leak = win_mag[30] / win_mag[10];
  if (GetParam() == WindowType::kRect) {
    SUCCEED();
  } else {
    EXPECT_LT(win_leak, raw_leak);
  }
}

INSTANTIATE_TEST_SUITE_P(AllWindows, WindowTypes,
                         ::testing::Values(WindowType::kRect,
                                           WindowType::kHann,
                                           WindowType::kHamming,
                                           WindowType::kBlackman));

TEST(Window, SingleElement) {
  EXPECT_EQ(make_window(WindowType::kHann, 1).size(), 1u);
  EXPECT_DOUBLE_EQ(make_window(WindowType::kHann, 1)[0], 1.0);
}

TEST(Butterworth, PassbandIsFlatStopbandRejects) {
  // The paper's configuration: 8th-order bandpass.
  const double fs = 800e3;
  const auto f = butterworth_bandpass(8, 30e3, 200e3, fs);
  // Passband center ~ unity.
  EXPECT_NEAR(std::abs(f.response(80e3 / fs)), 1.0, 0.05);
  EXPECT_GT(std::abs(f.response(50e3 / fs)), 0.7);
  EXPECT_GT(std::abs(f.response(150e3 / fs)), 0.7);
  // Deep stopband.
  EXPECT_LT(std::abs(f.response(1e3 / fs)), 0.02);
  EXPECT_LT(std::abs(f.response(350e3 / fs)), 0.05);
}

TEST(Butterworth, EdgeAttenuationNear3Db) {
  const double fs = 1000.0;
  const auto f = butterworth_bandpass(8, 100.0, 200.0, fs);
  EXPECT_NEAR(std::abs(f.response(100.0 / fs)), std::sqrt(0.5), 0.08);
  EXPECT_NEAR(std::abs(f.response(200.0 / fs)), std::sqrt(0.5), 0.08);
}

TEST(Butterworth, MonotoneStopbandDecay) {
  const double fs = 1000.0;
  const auto f = butterworth_bandpass(4, 100.0, 200.0, fs);
  double prev = std::abs(f.response(90.0 / fs));
  for (double freq = 80.0; freq >= 20.0; freq -= 10.0) {
    const double cur = std::abs(f.response(freq / fs));
    EXPECT_LT(cur, prev + 1e-9);
    prev = cur;
  }
}

TEST(Butterworth, FilterSuppressesOutOfBandTone) {
  const double fs = 800e3;
  const auto f = butterworth_bandpass(8, 30e3, 200e3, fs);
  std::vector<double> in_band(256), out_band(256);
  for (std::size_t i = 0; i < 256; ++i) {
    const double t = static_cast<double>(i) / fs;
    in_band[i] = std::sin(2.0 * kPi * 100e3 * t);
    out_band[i] = std::sin(2.0 * kPi * 5e3 * t);
  }
  auto rms = [](const std::vector<double>& v) {
    double s = 0;
    for (double x : v) s += x * x;
    return std::sqrt(s / static_cast<double>(v.size()));
  };
  EXPECT_GT(rms(f.filtfilt(in_band)), 0.5);
  EXPECT_LT(rms(f.filtfilt(out_band)), 0.05);
}

TEST(Butterworth, FiltFiltIsZeroPhase) {
  // A zero-phase filter must not shift a passband tone.
  const double fs = 1000.0;
  const auto f = butterworth_bandpass(4, 50.0, 150.0, fs);
  std::vector<double> x(512);
  for (std::size_t i = 0; i < 512; ++i)
    x[i] = std::sin(2.0 * kPi * 100.0 * static_cast<double>(i) / fs);
  const auto y = f.filtfilt(x);
  // Compare against the input away from the edges; amplitude ~1, phase ~0.
  double dot = 0.0, xx = 0.0, yy = 0.0;
  for (std::size_t i = 100; i < 412; ++i) {
    dot += x[i] * y[i];
    xx += x[i] * x[i];
    yy += y[i] * y[i];
  }
  const double corr = dot / std::sqrt(xx * yy);
  EXPECT_GT(corr, 0.999);
}

TEST(Butterworth, ComplexFiltFiltMatchesComponents) {
  const double fs = 1000.0;
  const auto f = butterworth_bandpass(4, 50.0, 150.0, fs);
  Rng rng(2);
  std::vector<std::complex<double>> x(128);
  std::vector<double> re(128), im(128);
  for (std::size_t i = 0; i < 128; ++i) {
    re[i] = rng.normal();
    im[i] = rng.normal();
    x[i] = {re[i], im[i]};
  }
  const auto y = f.filtfilt(std::span<const std::complex<double>>(x));
  const auto yr = f.filtfilt(std::span<const double>(re));
  const auto yi = f.filtfilt(std::span<const double>(im));
  for (std::size_t i = 0; i < 128; ++i) {
    EXPECT_DOUBLE_EQ(y[i].real(), yr[i]);
    EXPECT_DOUBLE_EQ(y[i].imag(), yi[i]);
  }
}

TEST(Butterworth, RejectsBadArguments) {
  EXPECT_THROW(butterworth_bandpass(7, 10, 20, 100), Error);   // odd order
  EXPECT_THROW(butterworth_bandpass(4, 30, 20, 100), Error);   // lo > hi
  EXPECT_THROW(butterworth_bandpass(4, 10, 60, 100), Error);   // hi > fs/2
  EXPECT_THROW(butterworth_bandpass(4, 0.0, 20, 100), Error);  // lo == 0
}

TEST(Spectrum, FindPeaksOrdersByMagnitude) {
  const std::vector<double> mag{0, 1, 0, 5, 0, 3, 0};
  const auto peaks = find_peaks(mag, 0.5, 10);
  ASSERT_EQ(peaks.size(), 3u);
  EXPECT_EQ(peaks[0].bin, 3u);
  EXPECT_EQ(peaks[1].bin, 5u);
  EXPECT_EQ(peaks[2].bin, 1u);
}

TEST(Spectrum, FindPeaksRespectsThresholdAndLimit) {
  const std::vector<double> mag{0, 1, 0, 5, 0, 3, 0};
  EXPECT_EQ(find_peaks(mag, 2.0, 10).size(), 2u);
  EXPECT_EQ(find_peaks(mag, 0.5, 1).size(), 1u);
}

TEST(Spectrum, MagnitudeDb) {
  const std::vector<std::complex<double>> x{{10.0, 0.0}};
  EXPECT_NEAR(magnitude_db(x)[0], 20.0, 1e-9);
}

}  // namespace
}  // namespace mmhand::dsp
