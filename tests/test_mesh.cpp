// Tests for mmhand/mesh: template geometry, blend shapes, LBS posing,
// rig/FK agreement, IK reconstruction, and OBJ export.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>

#include "mmhand/hand/gesture.hpp"
#include "mmhand/hand/kinematics.hpp"
#include "mmhand/mesh/hand_template.hpp"
#include "mmhand/mesh/mano_model.hpp"
#include "mmhand/mesh/obj_export.hpp"
#include "mmhand/mesh/reconstruction.hpp"

namespace mmhand::mesh {
namespace {

const HandTemplate& reference_template() {
  static const HandTemplate tmpl =
      HandTemplate::create(hand::HandProfile::reference());
  return tmpl;
}

TEST(HandTemplate, GeometryBudget) {
  const auto& t = reference_template();
  EXPECT_GT(t.vertex_count(), 250u);
  EXPECT_GT(t.face_count(), 450u);
  EXPECT_EQ(t.skinning().size(), t.vertex_count());
}

TEST(HandTemplate, FacesReferenceValidVertices) {
  const auto& t = reference_template();
  for (const auto& f : t.faces())
    for (int idx : f) {
      EXPECT_GE(idx, 0);
      EXPECT_LT(idx, static_cast<int>(t.vertex_count()));
    }
}

TEST(HandTemplate, SkinWeightsNormalizedAndValid) {
  const auto& t = reference_template();
  for (const auto& weights : t.skinning()) {
    ASSERT_FALSE(weights.empty());
    double total = 0.0;
    for (const auto& [joint, w] : weights) {
      EXPECT_GE(joint, 0);
      EXPECT_LT(joint, hand::kNumJoints);
      EXPECT_GT(w, 0.0);
      total += w;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(HandTemplate, VerticesHugTheSkeleton) {
  const auto& t = reference_template();
  const auto& joints = t.rest_joints();
  for (const Vec3& v : t.vertices()) {
    double best = 1e9;
    for (const Vec3& j : joints) best = std::min(best, distance(v, j));
    EXPECT_LT(best, 0.06) << "vertex far from every joint";
  }
}

TEST(HandTemplate, EveryJointDrivesSomeVertex) {
  const auto& t = reference_template();
  std::set<int> used;
  for (const auto& weights : t.skinning())
    for (const auto& [joint, w] : weights) used.insert(joint);
  // All joints except possibly fingertips must appear; fingertips do too
  // via the tip rings.
  EXPECT_EQ(used.size(), static_cast<std::size_t>(hand::kNumJoints));
}

TEST(ManoModel, ZeroParamsReproduceTemplate) {
  const ManoHandModel model(reference_template());
  const HandMesh mesh = model.pose(ShapeParams{}, PoseParams{});
  const auto& t = reference_template();
  ASSERT_EQ(mesh.vertices.size(), t.vertex_count());
  for (std::size_t v = 0; v < mesh.vertices.size(); ++v)
    EXPECT_NEAR(distance(mesh.vertices[v], t.vertices()[v]), 0.0, 1e-12);
}

TEST(ManoModel, GlobalScaleBasisGrowsTheHand) {
  const ManoHandModel model(reference_template());
  ShapeParams beta{};
  beta[0] = 0.2;  // +20%
  const auto joints = model.shaped_joints(beta);
  const auto& rest = reference_template().rest_joints();
  EXPECT_NEAR(joints[12].norm(), 1.2 * rest[12].norm(), 1e-9);
}

TEST(ManoModel, FingerLengthBasisOnlyMovesFingers) {
  const ManoHandModel model(reference_template());
  ShapeParams beta{};
  beta[1] = 0.3;
  const auto joints = model.shaped_joints(beta);
  const auto& rest = reference_template().rest_joints();
  // Wrist untouched, middle fingertip longer.
  EXPECT_NEAR(distance(joints[0], rest[0]), 0.0, 1e-12);
  EXPECT_GT(joints[12].y, rest[12].y + 0.005);
}

TEST(ManoModel, PoseBlendShapesAreSmall) {
  const ManoHandModel model(reference_template());
  PoseParams theta{};
  theta[6] = Vec3{1.0, 0.0, 0.0};  // bend the index PIP hard
  const auto deformed = model.deformed_template(ShapeParams{}, theta);
  const auto& rest = reference_template().vertices();
  double max_shift = 0.0;
  for (std::size_t v = 0; v < deformed.size(); ++v)
    max_shift = std::max(max_shift, distance(deformed[v], rest[v]));
  EXPECT_GT(max_shift, 0.0);
  EXPECT_LT(max_shift, 0.003);  // correctives are millimeter-scale
}

TEST(ManoModel, RigFkMatchesHandKinematics) {
  // The analytic rig pose must reproduce hand::forward_kinematics joints
  // exactly — the property that lets IK training transfer to predicted
  // skeletons (see mano_model.cpp).
  const auto profile = hand::HandProfile::reference();
  const ManoHandModel model(HandTemplate::create(profile));
  for (hand::Gesture g : hand::all_gestures()) {
    hand::HandPose pose;
    pose.fingers = hand::gesture_articulation(g);
    pose.wrist_position = Vec3{0.05, 0.31, -0.02};
    pose.orientation = Quaternion::from_axis_angle({0.3, 0.2, 0.9}, 0.7);
    const auto fk = hand::forward_kinematics(profile, pose);
    const auto rig = model.posed_joints(
        ShapeParams{}, pose_from_articulation(profile, pose),
        pose.wrist_position);
    for (int j = 0; j < hand::kNumJoints; ++j)
      EXPECT_NEAR(distance(fk[static_cast<std::size_t>(j)],
                           rig[static_cast<std::size_t>(j)]),
                  0.0, 1e-9)
          << hand::gesture_name(g) << " joint " << j;
  }
}

TEST(ManoModel, PosingPreservesPhalangeLengths) {
  const auto profile = hand::HandProfile::reference();
  const ManoHandModel model(HandTemplate::create(profile));
  hand::HandPose pose;
  pose.fingers = hand::gesture_articulation(hand::Gesture::kPinch);
  const auto rig = model.posed_joints(
      ShapeParams{}, pose_from_articulation(profile, pose));
  const auto& rest = reference_template().rest_joints();
  for (int child = 1; child < hand::kNumJoints; ++child) {
    const int parent = hand::joint_parent(child);
    EXPECT_NEAR(distance(rig[static_cast<std::size_t>(child)],
                         rig[static_cast<std::size_t>(parent)]),
                distance(rest[static_cast<std::size_t>(child)],
                         rest[static_cast<std::size_t>(parent)]),
                1e-9);
  }
}

TEST(ManoModel, FistPoseCurlsMeshVertices) {
  const ManoHandModel model(reference_template());
  const auto profile = hand::HandProfile::reference();
  hand::HandPose fist;
  fist.fingers = hand::gesture_articulation(hand::Gesture::kFist);
  const HandMesh curled =
      model.pose(ShapeParams{}, pose_from_articulation(profile, fist));
  const HandMesh open = model.pose(ShapeParams{}, PoseParams{});
  // Bounding box along y shrinks substantially when the fist closes.
  auto max_y = [](const HandMesh& m) {
    double best = -1e9;
    for (const auto& v : m.vertices) best = std::max(best, v.y);
    return best;
  };
  EXPECT_LT(max_y(curled), max_y(open) - 0.04);
}

TEST(ManoModel, RootTranslationIsRigid) {
  const ManoHandModel model(reference_template());
  const Vec3 root{0.1, 0.3, -0.05};
  const HandMesh at_origin = model.pose(ShapeParams{}, PoseParams{});
  const HandMesh moved = model.pose(ShapeParams{}, PoseParams{}, root);
  for (std::size_t v = 0; v < moved.vertices.size(); ++v)
    EXPECT_NEAR(
        distance(moved.vertices[v], at_origin.vertices[v] + root), 0.0,
        1e-12);
}

TEST(Reconstruction, TrainedIkRecoversRigPoses) {
  Rng rng(1);
  MeshReconstructor recon(reference_template(), rng);
  ReconstructorTrainConfig cfg;
  cfg.samples = 800;
  cfg.epochs = 20;
  const double holdout_err = recon.train(cfg);
  // Held-out joint reconstruction around a centimeter on average (the
  // full default budget reaches ~1.2 cm; this test uses a reduced one).
  EXPECT_LT(holdout_err, 0.022) << "held-out error " << holdout_err;
}

TEST(Reconstruction, ReconstructPlacesMeshAtTheWrist) {
  Rng rng(2);
  MeshReconstructor recon(reference_template(), rng);
  ReconstructorTrainConfig cfg;
  cfg.samples = 200;
  cfg.epochs = 5;
  (void)recon.train(cfg);

  const auto profile = hand::HandProfile::reference();
  hand::HandPose pose;
  pose.wrist_position = Vec3{0.02, 0.33, 0.05};
  pose.orientation = Quaternion{0.0, 0.0, 0.7071, 0.7071}.normalized();
  const auto joints = hand::forward_kinematics(profile, pose);
  auto result = recon.reconstruct(joints);
  EXPECT_NEAR(distance(result.joints[hand::kWrist], joints[hand::kWrist]),
              0.0, 1e-6);
  // The mesh sits around the hand, not at the origin.
  Vec3 centroid;
  for (const auto& v : result.mesh.vertices) centroid += v;
  centroid = centroid / static_cast<double>(result.mesh.vertices.size());
  EXPECT_LT(distance(centroid, joints[9]), 0.12);
}

TEST(Reconstruction, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/recon.bin";
  Rng rng(3);
  MeshReconstructor a(reference_template(), rng);
  Rng rng2(4);
  MeshReconstructor b(reference_template(), rng2);
  a.save(path);
  b.load(path);
  const auto joints = hand::forward_kinematics(
      hand::HandProfile::reference(), hand::HandPose{});
  const auto ra = a.reconstruct(joints);
  const auto rb = b.reconstruct(joints);
  for (int j = 0; j < hand::kNumJoints; ++j)
    EXPECT_NEAR(distance(ra.joints[static_cast<std::size_t>(j)],
                         rb.joints[static_cast<std::size_t>(j)]),
                0.0, 1e-9);
  std::remove(path.c_str());
}

TEST(ObjExport, WritesValidObj) {
  const std::string path = ::testing::TempDir() + "/hand.obj";
  const ManoHandModel model(reference_template());
  const HandMesh mesh = model.pose(ShapeParams{}, PoseParams{});
  write_obj(path, mesh);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t v_count = 0, f_count = 0;
  while (std::getline(in, line)) {
    if (line.rfind("v ", 0) == 0) ++v_count;
    if (line.rfind("f ", 0) == 0) ++f_count;
  }
  EXPECT_EQ(v_count, mesh.vertices.size());
  EXPECT_EQ(f_count, mesh.faces.size());
  std::remove(path.c_str());
}

TEST(ObjExport, SkeletonObjHasBones) {
  const std::string path = ::testing::TempDir() + "/skel.obj";
  const auto joints = hand::forward_kinematics(
      hand::HandProfile::reference(), hand::HandPose{});
  write_skeleton_obj(path, joints);
  std::ifstream in(path);
  std::string line;
  std::size_t l_count = 0;
  while (std::getline(in, line))
    if (line.rfind("l ", 0) == 0) ++l_count;
  EXPECT_EQ(l_count, static_cast<std::size_t>(hand::kNumBones));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mmhand::mesh
