// Tests for mmhand/pose: mmSpaceNet gradients, the kinematic loss, sample
// assembly, training convergence on a tiny problem, and checkpointing.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "mmhand/hand/kinematics.hpp"
#include "mmhand/nn/gradcheck.hpp"
#include "mmhand/pose/inference.hpp"
#include "mmhand/pose/joint_model.hpp"
#include "mmhand/pose/kinematic_loss.hpp"
#include "mmhand/pose/mmspacenet.hpp"
#include "mmhand/pose/samples.hpp"
#include "mmhand/pose/trainer.hpp"

namespace mmhand::pose {
namespace {

nn::Tensor random_tensor(std::vector<int> shape, Rng& rng,
                         double scale = 1.0) {
  nn::Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.uniform(-scale, scale));
  return t;
}

/// Tiny network geometry so tests run in milliseconds.
PoseNetConfig tiny_config() {
  PoseNetConfig cfg;
  cfg.segment_frames = 1;
  cfg.sequence_segments = 2;
  cfg.velocity_bins = 4;
  cfg.range_bins = 8;
  cfg.angle_bins = 8;
  cfg.feature_dim = 24;
  cfg.lstm_hidden = 16;
  cfg.spacenet.stem_channels = 4;
  cfg.spacenet.block1_channels = 6;
  cfg.spacenet.block2_channels = 6;
  return cfg;
}

nn::Tensor joints_to_row63(const hand::JointSet& joints) {
  nn::Tensor t({63});
  for (int j = 0; j < hand::kNumJoints; ++j) {
    t[static_cast<std::size_t>(3 * j)] =
        static_cast<float>(joints[static_cast<std::size_t>(j)].x);
    t[static_cast<std::size_t>(3 * j + 1)] =
        static_cast<float>(joints[static_cast<std::size_t>(j)].y);
    t[static_cast<std::size_t>(3 * j + 2)] =
        static_cast<float>(joints[static_cast<std::size_t>(j)].z);
  }
  return t;
}

TEST(ResidualAttentionBlock, PreservesSpatialExtent) {
  Rng rng(1);
  ResidualAttentionBlock block(3, 5, rng);
  const nn::Tensor x = random_tensor({2, 3, 8, 8}, rng);
  const nn::Tensor y = block.forward(x, false);
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 5);
  EXPECT_EQ(y.dim(2), 8);
  EXPECT_EQ(y.dim(3), 8);
}

TEST(ResidualAttentionBlock, GradCheck) {
  Rng rng(2);
  ResidualAttentionBlock block(2, 3, rng);
  const nn::Tensor x = random_tensor({2, 2, 4, 4}, rng);
  Rng check_rng(3);
  const auto res = nn::check_input_gradient(block, x, check_rng);
  EXPECT_LT(res.max_rel_error, 5e-2);
  EXPECT_LT(res.max_abs_error, 1e-2);
}

TEST(ResidualAttentionBlock, AttentionSwitchesDisablePaths) {
  Rng rng(4);
  AttentionSwitches off{false, false, false};
  ResidualAttentionBlock plain(2, 3, rng, off);
  const nn::Tensor x = random_tensor({1, 2, 4, 4}, rng);
  EXPECT_NO_THROW(plain.forward(x, false));
  // Fewer parameters without the attention stack... parameters are still
  // constructed but unused; the forward path must differ from the
  // attention-enabled block given identical weights is impractical to set
  // up, so we simply check both run and produce the right shape.
  Rng rng2(4);
  ResidualAttentionBlock withatt(2, 3, rng2);
  const nn::Tensor ya = plain.forward(x, false);
  const nn::Tensor yb = withatt.forward(x, false);
  EXPECT_TRUE(ya.same_shape(yb));
}

TEST(ResidualAttentionBlock, RejectsIndivisibleExtents) {
  Rng rng(5);
  ResidualAttentionBlock block(2, 3, rng);
  const nn::Tensor x = random_tensor({1, 2, 6, 6}, rng);
  EXPECT_THROW(block.forward(x, false), Error);
}

TEST(MmSpaceNet, OutputGeometry) {
  Rng rng(6);
  MmSpaceNetConfig cfg;
  cfg.input_channels = 4;
  cfg.stem_channels = 4;
  cfg.block1_channels = 6;
  cfg.block2_channels = 8;
  MmSpaceNet net(cfg, rng);
  const nn::Tensor x = random_tensor({3, 4, 16, 16}, rng);
  const nn::Tensor y = net.forward(x, false);
  EXPECT_EQ(y.dim(0), 3);
  EXPECT_EQ(y.dim(1), 8);
  EXPECT_EQ(y.dim(2), 4);  // 16 / kSpatialReduction
  EXPECT_EQ(y.dim(3), 4);
}

TEST(KinematicLoss, StraightGtFingerSelectsCollinear) {
  hand::HandPose straight;
  const auto joints =
      hand::forward_kinematics(hand::HandProfile::reference(), straight);
  const auto gt = joints_to_row63(joints);
  for (int f = 1; f < hand::kNumFingers; ++f)  // thumb is pre-bent
    EXPECT_TRUE(finger_is_collinear(gt, f)) << "finger " << f;
}

TEST(KinematicLoss, CurledGtFingerSelectsCoplanar) {
  hand::HandPose fist;
  fist.fingers = hand::gesture_articulation(hand::Gesture::kFist);
  const auto joints =
      hand::forward_kinematics(hand::HandProfile::reference(), fist);
  const auto gt = joints_to_row63(joints);
  for (int f = 1; f < hand::kNumFingers; ++f)
    EXPECT_FALSE(finger_is_collinear(gt, f)) << "finger " << f;
}

TEST(KinematicLoss, PerfectPredictionHasNearZeroLoss) {
  hand::HandPose pose;
  pose.fingers = hand::gesture_articulation(hand::Gesture::kCount3);
  const auto joints =
      hand::forward_kinematics(hand::HandProfile::reference(), pose);
  const auto gt = joints_to_row63(joints);
  const auto res = kinematic_loss(gt, gt);
  // The FK generator produces exactly collinear/coplanar fingers, so a
  // perfect prediction violates nothing (tiny numerical slack allowed).
  EXPECT_LT(res.value, 0.05);
}

TEST(KinematicLoss, PerturbedPredictionIsPenalized) {
  hand::HandPose pose;
  const auto joints =
      hand::forward_kinematics(hand::HandProfile::reference(), pose);
  const auto gt = joints_to_row63(joints);
  nn::Tensor pred = gt;
  // Push the index PIP joint out of the finger line.
  pred[static_cast<std::size_t>(3 * 6 + 2)] += 0.03f;
  const auto clean = kinematic_loss(gt, gt);
  const auto bent = kinematic_loss(pred, gt);
  EXPECT_GT(bent.value, clean.value + 0.01);
}

TEST(KinematicLoss, NumericGradient) {
  hand::HandPose pose;
  pose.fingers = hand::gesture_articulation(hand::Gesture::kPinch);
  const auto joints =
      hand::forward_kinematics(hand::HandProfile::reference(), pose);
  const auto gt = joints_to_row63(joints);
  Rng rng(7);
  nn::Tensor pred = gt;
  for (std::size_t i = 0; i < pred.numel(); ++i)
    pred[i] += static_cast<float>(rng.uniform(-0.02, 0.02));

  const auto res = kinematic_loss(pred, gt);
  const double eps = 1e-4;
  for (std::size_t i = 0; i < pred.numel(); i += 5) {
    const float orig = pred[i];
    pred[i] = orig + static_cast<float>(eps);
    const double plus = kinematic_loss(pred, gt).value;
    pred[i] = orig - static_cast<float>(eps);
    const double minus = kinematic_loss(pred, gt).value;
    pred[i] = orig;
    EXPECT_NEAR(res.grad[i], (plus - minus) / (2 * eps), 5e-3)
        << "coordinate " << i;
  }
}

TEST(CombinedLoss, WeightsBlendBothTerms) {
  hand::HandPose pose;
  const auto joints =
      hand::forward_kinematics(hand::HandProfile::reference(), pose);
  const auto gt = joints_to_row63(joints);
  nn::Tensor pred = gt;
  pred[0] += 0.05f;
  pred[20] += 0.04f;

  CombinedLossConfig only_3d{1.0, 0.0, {}};
  CombinedLossConfig both{1.0, 0.5, {}};
  const auto a = combined_pose_loss(pred, gt, only_3d);
  const auto b = combined_pose_loss(pred, gt, both);
  const auto l3d = nn::joint_l2_loss(pred, gt);
  EXPECT_NEAR(a.value, l3d.value, 1e-9);
  EXPECT_GE(b.value, a.value);
}

TEST(PoseNetConfig, ValidateCatchesBadGeometry) {
  PoseNetConfig cfg = tiny_config();
  cfg.range_bins = 10;  // not divisible by 4
  EXPECT_THROW(cfg.validate(), Error);
  cfg = tiny_config();
  cfg.segment_frames = 0;
  EXPECT_THROW(cfg.validate(), Error);
}

TEST(HandJointRegressor, ForwardShapeAndDeterminism) {
  Rng rng(8);
  const auto cfg = tiny_config();
  HandJointRegressor model(cfg, rng);
  Rng xrng(9);
  const nn::Tensor x = random_tensor(
      {cfg.frames_per_sample(), cfg.velocity_bins, cfg.range_bins,
       cfg.angle_bins},
      xrng);
  const nn::Tensor y1 = model.forward(x, false);
  const nn::Tensor y2 = model.forward(x, false);
  EXPECT_EQ(y1.dim(0), cfg.sequence_segments);
  EXPECT_EQ(y1.dim(1), 63);
  for (std::size_t i = 0; i < y1.numel(); ++i) EXPECT_EQ(y1[i], y2[i]);
}

TEST(HandJointRegressor, RejectsWrongInputShape) {
  Rng rng(10);
  HandJointRegressor model(tiny_config(), rng);
  Rng xrng(11);
  const nn::Tensor bad = random_tensor({1, 4, 8, 8}, xrng);
  EXPECT_THROW(model.forward(bad, false), Error);
}

TEST(HandJointRegressor, OverfitsATinyDataset) {
  // End-to-end learning check: with a handful of samples the full model
  // (hourglass + attention + LSTM + combined loss) must drive the training
  // loss down substantially.
  Rng rng(12);
  const auto cfg = tiny_config();
  HandJointRegressor model(cfg, rng);

  hand::HandPose pose;
  const auto base_joints =
      hand::forward_kinematics(hand::HandProfile::reference(), pose);
  Rng data_rng(13);
  std::vector<PoseSample> samples;
  for (int k = 0; k < 4; ++k) {
    PoseSample s;
    s.input = random_tensor({cfg.frames_per_sample(), cfg.velocity_bins,
                             cfg.range_bins, cfg.angle_bins},
                            data_rng);
    s.labels = nn::Tensor({cfg.sequence_segments, 63});
    for (int row = 0; row < cfg.sequence_segments; ++row)
      for (int j = 0; j < hand::kNumJoints; ++j) {
        const Vec3 p = base_joints[static_cast<std::size_t>(j)] +
                       Vec3{0.01 * k, 0.005 * k, -0.004 * k};
        s.labels.at(row, 3 * j) = static_cast<float>(p.x);
        s.labels.at(row, 3 * j + 1) = static_cast<float>(p.y);
        s.labels.at(row, 3 * j + 2) = static_cast<float>(p.z);
      }
    s.oracle = s.labels;
    samples.push_back(std::move(s));
  }

  TrainConfig tc;
  tc.epochs = 60;
  tc.batch_size = 2;
  tc.lr = 2e-3;
  const auto stats = train_pose_model(model, samples, tc);
  ASSERT_EQ(stats.epoch_loss.size(), 60u);
  EXPECT_LT(stats.epoch_loss.back(), 0.55 * stats.epoch_loss.front())
      << "first=" << stats.epoch_loss.front()
      << " last=" << stats.epoch_loss.back();
}

TEST(HandJointRegressor, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/pose_model.bin";
  Rng rng(14);
  const auto cfg = tiny_config();
  HandJointRegressor a(cfg, rng);
  Rng rng2(15);
  HandJointRegressor b(cfg, rng2);
  a.save(path);
  b.load(path);
  Rng xrng(16);
  const nn::Tensor x = random_tensor(
      {cfg.frames_per_sample(), cfg.velocity_bins, cfg.range_bins,
       cfg.angle_bins},
      xrng);
  const nn::Tensor ya = a.forward(x, false);
  const nn::Tensor yb = b.forward(x, false);
  for (std::size_t i = 0; i < ya.numel(); ++i) EXPECT_EQ(ya[i], yb[i]);
  std::remove(path.c_str());
}

TEST(HandJointRegressor, LoadRejectsGeometryMismatch) {
  const std::string path = ::testing::TempDir() + "/pose_model_bad.bin";
  Rng rng(17);
  HandJointRegressor a(tiny_config(), rng);
  a.save(path);
  auto other = tiny_config();
  other.sequence_segments = 3;
  Rng rng2(18);
  HandJointRegressor b(other, rng2);
  EXPECT_THROW(b.load(path), Error);
  std::remove(path.c_str());
}

class SampleBuildingTest : public ::testing::Test {
 protected:
  static sim::Recording tiny_recording(int frames) {
    radar::ChirpConfig chirp;
    chirp.chirps_per_frame = 4;
    chirp.samples_per_chirp = 16;
    chirp.frame_period_s = 0.05;
    radar::PipelineConfig pc;
    pc.cube.range_bins = 8;
    pc.cube.azimuth_bins = 6;
    pc.cube.elevation_bins = 2;
    const sim::DatasetBuilder builder(chirp, pc);
    sim::ScenarioConfig scenario;
    scenario.duration_s = frames * chirp.frame_period_s;
    return builder.record(scenario);
  }
  static PoseNetConfig matching_config() {
    PoseNetConfig cfg = tiny_config();
    cfg.velocity_bins = 4;
    cfg.range_bins = 8;
    cfg.angle_bins = 8;
    cfg.segment_frames = 2;
    cfg.sequence_segments = 2;
    return cfg;
  }
};

TEST_F(SampleBuildingTest, WindowsAndLabelsAlign) {
  const auto rec = tiny_recording(10);
  const auto cfg = matching_config();
  const auto samples = make_pose_samples(rec, cfg);
  ASSERT_EQ(samples.size(), 2u);  // 10 frames / window of 4 -> 2 windows
  // Labels map to the last frame of each segment.
  EXPECT_EQ(samples[0].label_frames, (std::vector<int>{1, 3}));
  EXPECT_EQ(samples[1].label_frames, (std::vector<int>{5, 7}));
  // Label contents match the recording.
  const auto joints = row_to_joints(samples[0].labels, 1);
  EXPECT_NEAR(distance(joints[0], rec.frames[3].joints[0]), 0.0, 1e-6);
}

TEST_F(SampleBuildingTest, StrideControlsOverlap) {
  const auto rec = tiny_recording(10);
  const auto cfg = matching_config();
  const auto dense = make_pose_samples(rec, cfg, 1);
  EXPECT_EQ(dense.size(), 7u);  // 10 - 4 + 1
}

TEST_F(SampleBuildingTest, LabelMeanIsReasonable) {
  const auto rec = tiny_recording(8);
  const auto cfg = matching_config();
  const auto samples = make_pose_samples(rec, cfg);
  const auto mean = label_mean(samples);
  // The hand is around y = 0.3 m; the mean y coordinate must reflect that.
  double mean_y = 0.0;
  for (int j = 0; j < 21; ++j) mean_y += mean[static_cast<std::size_t>(3 * j + 1)];
  mean_y /= 21.0;
  EXPECT_NEAR(mean_y, 0.3, 0.1);
}

TEST_F(SampleBuildingTest, PredictRecordingCoversSegmentEnds) {
  const auto rec = tiny_recording(10);
  const auto cfg = matching_config();
  Rng rng(19);
  HandJointRegressor model(cfg, rng);
  const auto preds = predict_recording(model, rec);
  ASSERT_EQ(preds.size(), 4u);  // 2 windows x 2 segments
  EXPECT_EQ(preds[0].frame_index, 1);
  EXPECT_EQ(preds[3].frame_index, 7);
  for (const auto& p : preds) {
    // Ground truth carried through for evaluation.
    EXPECT_NEAR(
        distance(p.ground_truth[0],
                 rec.frames[static_cast<std::size_t>(p.frame_index)].joints[0]),
        0.0, 1e-6);
  }
}

}  // namespace
}  // namespace mmhand::pose
