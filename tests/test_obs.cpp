// Observability layer: histogram percentile edge cases, thread safety of
// counters/spans under the pool, trace JSON validity, and — the invariant
// the instrumentation must never break — bitwise-identical numeric
// outputs with observability on vs off.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "mmhand/common/parallel.hpp"
#include "mmhand/common/rng.hpp"
#include "mmhand/nn/conv2d.hpp"
#include "mmhand/obs/obs.hpp"
#include "mmhand/radar/antenna_array.hpp"
#include "mmhand/radar/chirp_config.hpp"
#include "mmhand/radar/if_simulator.hpp"
#include "mmhand/radar/pipeline.hpp"

namespace mmhand {
namespace {

/// Runs `fn` with the pool pinned to `threads`, restoring the previous
/// setting afterwards.
template <typename Fn>
auto with_threads(int threads, Fn&& fn) {
  const int prev = num_threads();
  set_num_threads(threads);
  auto result = fn();
  set_num_threads(prev);
  return result;
}

/// Scoped metrics enable; restores the disabled state afterwards.
struct MetricsOn {
  MetricsOn() { obs::set_metrics_enabled(true); }
  ~MetricsOn() { obs::set_metrics_enabled(false); }
};

// ---------------------------------------------------------------------
// Histogram percentile edge cases.

TEST(ObsHistogram, EmptyIsAllZero) {
  obs::Histogram h;
  const obs::HistogramStats s = h.stats();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0.0);
  EXPECT_EQ(s.min, 0.0);
  EXPECT_EQ(s.max, 0.0);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.p99, 0.0);
}

TEST(ObsHistogram, SingleSampleIsExactAtEveryPercentile) {
  obs::Histogram h;
  h.record(123.5);
  const obs::HistogramStats s = h.stats();
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.min, 123.5);
  EXPECT_DOUBLE_EQ(s.max, 123.5);
  EXPECT_DOUBLE_EQ(s.mean, 123.5);
  EXPECT_DOUBLE_EQ(s.p50, 123.5);
  EXPECT_DOUBLE_EQ(s.p95, 123.5);
  EXPECT_DOUBLE_EQ(s.p99, 123.5);
}

TEST(ObsHistogram, AllEqualSamplesAreExact) {
  obs::Histogram h;
  for (int i = 0; i < 1000; ++i) h.record(42.0);
  const obs::HistogramStats s = h.stats();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_DOUBLE_EQ(s.p50, 42.0);
  EXPECT_DOUBLE_EQ(s.p95, 42.0);
  EXPECT_DOUBLE_EQ(s.p99, 42.0);
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
}

TEST(ObsHistogram, PercentilesAreMonotonicAndBracketed) {
  obs::Histogram h;
  for (int i = 1; i <= 10000; ++i) h.record(static_cast<double>(i));
  const obs::HistogramStats s = h.stats();
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_GE(s.p50, s.min);
  EXPECT_LE(s.p99, s.max);
  // Geometric buckets at ratio sqrt(2) bound the relative error.
  EXPECT_NEAR(s.p50, 5000.0, 5000.0 * 0.5);
  EXPECT_GT(s.p99, 8000.0);
}

TEST(ObsHistogram, SubUnitAndNegativeValuesLandInBucketZero) {
  obs::Histogram h;
  h.record(0.25);
  h.record(-3.0);
  const obs::HistogramStats s = h.stats();
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.min, -3.0);
  EXPECT_DOUBLE_EQ(s.max, 0.25);
  EXPECT_LE(s.p99, 0.25);
}

// snapshot_delta across an intervening reset: the "previous" snapshot
// then has higher counts than the current one.  The telemetry sampler
// hits this when reset_metrics() runs mid-stream; the delta must clamp
// to empty-ish, never underflow to huge unsigned counts.
TEST(ObsHistogram, SnapshotDeltaAcrossResetClampsToZero) {
  obs::Histogram h;
  for (int i = 0; i < 100; ++i) h.record(50.0);
  const obs::HistogramSnapshot before = h.snapshot();
  ASSERT_EQ(before.count, 100u);
  h.reset();
  h.record(25.0);
  const obs::HistogramSnapshot after = h.snapshot();
  ASSERT_EQ(after.count, 1u);

  const obs::HistogramSnapshot d = obs::snapshot_delta(after, before);
  // count clamps to 0 rather than wrapping to ~2^64.
  EXPECT_EQ(d.count, 0u);
  // Every bucket clamps as well: the 50 µs bucket went 100 -> 0.
  for (const std::uint64_t b : d.buckets) EXPECT_LE(b, 1u);
  // A clamped delta must stay renderable: stats on it cannot blow up.
  const obs::HistogramStats s = obs::snapshot_stats(d);
  EXPECT_EQ(s.count, 0u);
}

// The ordinary windowed path right after a reset: prev taken at the
// reset point, so the delta is exactly the new samples.
TEST(ObsHistogram, SnapshotDeltaFromPostResetBaselineIsExact) {
  obs::Histogram h;
  for (int i = 0; i < 10; ++i) h.record(100.0);
  h.reset();
  const obs::HistogramSnapshot base = h.snapshot();
  for (int i = 0; i < 5; ++i) h.record(200.0);
  const obs::HistogramSnapshot d = obs::snapshot_delta(h.snapshot(), base);
  EXPECT_EQ(d.count, 5u);
  const obs::HistogramStats s = obs::snapshot_stats(d);
  EXPECT_EQ(s.count, 5u);
  EXPECT_GT(s.p50, 100.0);
}

// ---------------------------------------------------------------------
// Concurrent recording from inside the pool.

TEST(ObsConcurrency, CounterFromParallelForIsExact) {
  MetricsOn on;
  obs::Counter& c = obs::counter("test/obs.concurrent_counter");
  c.reset();
  constexpr int kIters = 100000;
  with_threads(8, [&] {
    parallel_for(0, kIters, 64, [&](std::int64_t) { c.add(1); });
    return 0;
  });
  EXPECT_EQ(c.value(), kIters);
}

TEST(ObsConcurrency, SpansFromParallelForAreAllRecorded) {
  MetricsOn on;
  obs::Histogram& h = obs::histogram("test/obs.concurrent_span");
  h.reset();
  constexpr int kIters = 5000;
  with_threads(8, [&] {
    parallel_for(0, kIters, 16, [&](std::int64_t) { h.record(3.0); });
    return 0;
  });
  const obs::HistogramStats s = h.stats();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kIters));
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
}

TEST(ObsConcurrency, HistogramHammeredFromEightRawThreadsStaysExact) {
  // The telemetry sampler reads histograms while worker threads record
  // into them; this is the TSan target for that pairing.  Eight raw
  // threads (not the pool, so there is no grain-level serialization)
  // each record a distinct value 10000 times while the main thread
  // concurrently snapshots stats.  Count and sum must come out exact —
  // every per-value sum here is integral, so floating-point accumulation
  // has no excuse — and every concurrent snapshot must be internally
  // monotone.
  MetricsOn on;
  obs::Histogram& h = obs::histogram("test/obs.hammer");
  h.reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::atomic<int> done{0};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i)
        h.record(static_cast<double>(t + 1));
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  while (done.load(std::memory_order_relaxed) < kThreads) {
    const obs::HistogramStats s = h.stats();
    EXPECT_LE(s.p50, s.p95);
    EXPECT_LE(s.p95, s.p99);
    EXPECT_LE(s.count, static_cast<std::uint64_t>(kThreads * kPerThread));
  }
  for (std::thread& w : writers) w.join();
  const obs::HistogramStats s = h.stats();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads * kPerThread));
  // sum of t in 1..8, 10000 each: 10000 * 36.
  EXPECT_DOUBLE_EQ(s.sum, 360000.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 8.0);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
}

TEST(ObsConcurrency, SpanSitesFromEightThreadsCount) {
  MetricsOn on;
  static obs::SpanSite site{"test/obs.pool_span"};
  obs::Histogram& h = site.hist();
  h.reset();
  constexpr int kIters = 2000;
  with_threads(8, [&] {
    parallel_for(0, kIters, 16,
                 [&](std::int64_t) { obs::Span span(site); });
    return 0;
  });
  EXPECT_EQ(h.stats().count, static_cast<std::uint64_t>(kIters));
}

// ---------------------------------------------------------------------
// Trace JSON.

/// Minimal structural JSON validator: balanced braces/brackets outside
/// strings, and a final parse position at end of input.
bool json_balanced(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (const char ch : text) {
    if (in_string) {
      if (escaped)
        escaped = false;
      else if (ch == '\\')
        escaped = true;
      else if (ch == '"')
        in_string = false;
      continue;
    }
    switch (ch) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(ch);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return !in_string && stack.empty();
}

std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

TEST(ObsTrace, WritesValidChromeTraceJson) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mmhand_test_trace.json")
          .string();
  obs::clear_trace();
  obs::set_tracing_enabled(true);
  {
    MMHAND_SPAN("test/outer");
    MMHAND_SPAN("test/inner");
  }
  with_threads(4, [&] {
    parallel_for(0, 64, 1,
                 [&](std::int64_t) { MMHAND_SPAN("test/pooled"); });
    return 0;
  });
  obs::set_tracing_enabled(false);
  ASSERT_TRUE(obs::write_trace(path));

  const std::string text = slurp(path);
  ASSERT_FALSE(text.empty());
  EXPECT_TRUE(json_balanced(text)) << text.substr(0, 200);
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"test/outer\""), std::string::npos);
  EXPECT_NE(text.find("\"test/inner\""), std::string::npos);
  EXPECT_NE(text.find("\"test/pooled\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
  obs::clear_trace();
  std::filesystem::remove(path);
}

TEST(ObsTrace, ClearDropsCapturedSpans) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mmhand_test_trace2.json")
          .string();
  obs::clear_trace();
  obs::set_tracing_enabled(true);
  { MMHAND_SPAN("test/ephemeral"); }
  obs::clear_trace();
  { MMHAND_SPAN("test/survivor"); }
  obs::set_tracing_enabled(false);
  ASSERT_TRUE(obs::write_trace(path));
  const std::string text = slurp(path);
  EXPECT_EQ(text.find("\"test/ephemeral\""), std::string::npos);
  EXPECT_NE(text.find("\"test/survivor\""), std::string::npos);
  obs::clear_trace();
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------
// Logger.

TEST(ObsLog, LevelGatesEvaluation) {
  const obs::LogLevel prev = obs::log_level();
  obs::set_log_level(obs::LogLevel::kSilent);
  int evaluated = 0;
  auto bump = [&] {
    ++evaluated;
    return 0;
  };
  MMHAND_WARN("should not evaluate %d", bump());
  MMHAND_INFO("should not evaluate %d", bump());
  MMHAND_DEBUG("should not evaluate %d", bump());
  EXPECT_EQ(evaluated, 0);
  obs::set_log_level(obs::LogLevel::kDebug);
  EXPECT_TRUE(obs::log_enabled(obs::LogLevel::kDebug));
  obs::set_log_level(prev);
}

// ---------------------------------------------------------------------
// Determinism: observability must not perturb numeric outputs.

std::vector<float> run_process_frame() {
  radar::ChirpConfig chirp;
  chirp.noise_stddev = 0.0;
  const radar::AntennaArray array(chirp);
  const radar::IfSimulator sim(chirp, array);
  const radar::PipelineConfig pc;
  const radar::RadarPipeline pipe(chirp, array, pc);
  radar::Scene scene{
      {Vec3{0.05, 0.30, 0.02}, Vec3{0.0, 0.4, 0.0}, 1.0},
      {Vec3{-0.08, 0.45, -0.01}, Vec3{0.0, -0.2, 0.0}, 0.7},
  };
  Rng rng(11);
  const auto frame = sim.simulate_frame(scene, 0.0, rng);
  return pipe.process_frame(frame).data();
}

std::vector<float> run_conv() {
  Rng rng(42);
  nn::Conv2d conv(3, 8, 3, 1, 1, rng);
  const nn::Tensor x = nn::Tensor::randn({2, 3, 16, 16}, rng, 1.0);
  return conv.forward(x, /*training=*/false).vec();
}

template <typename Fn>
auto with_obs(bool on, Fn&& fn) {
  obs::set_tracing_enabled(on);
  obs::set_metrics_enabled(on);
  auto result = fn();
  obs::set_tracing_enabled(false);
  obs::set_metrics_enabled(false);
  if (on) obs::clear_trace();
  return result;
}

TEST(ObsDeterminism, ProcessFrameBitwiseEqualWithTracingOnOff) {
  for (const int threads : {1, 4}) {
    const auto plain =
        with_threads(threads, [&] { return with_obs(false, run_process_frame); });
    const auto traced =
        with_threads(threads, [&] { return with_obs(true, run_process_frame); });
    ASSERT_EQ(plain.size(), traced.size());
    for (std::size_t i = 0; i < plain.size(); ++i)
      ASSERT_EQ(plain[i], traced[i])
          << "cube cell " << i << " at " << threads << " threads";
  }
}

TEST(ObsDeterminism, Conv2dBitwiseEqualWithTracingOnOff) {
  for (const int threads : {1, 4}) {
    const auto plain =
        with_threads(threads, [&] { return with_obs(false, run_conv); });
    const auto traced =
        with_threads(threads, [&] { return with_obs(true, run_conv); });
    EXPECT_EQ(plain, traced) << "at " << threads << " threads";
  }
}

// ---------------------------------------------------------------------
// Metrics JSON snapshot.

TEST(ObsMetrics, JsonSnapshotIsBalancedAndNamesMetrics) {
  MetricsOn on;
  obs::counter("test/obs.snapshot_counter").add(7);
  obs::gauge("test/obs.snapshot_gauge").set(1.5);
  obs::histogram("test/obs.snapshot_hist").record(10.0);
  const std::string json = obs::metrics_json();
  EXPECT_TRUE(json_balanced(json)) << json.substr(0, 200);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test/obs.snapshot_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"test/obs.snapshot_gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"test/obs.snapshot_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(ObsMetrics, ResetZeroesButKeepsHandles) {
  MetricsOn on;
  obs::Counter& c = obs::counter("test/obs.reset_counter");
  c.add(5);
  obs::reset_metrics();
  EXPECT_EQ(c.value(), 0);
  c.add(2);
  EXPECT_EQ(c.value(), 2);
}

}  // namespace
}  // namespace mmhand
