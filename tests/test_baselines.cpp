// Tests for mmhand/baselines: depth rendering, the pose prior, the four
// comparison methods of Table I, and their expected orderings.

#include <gtest/gtest.h>

#include <cmath>

#include "mmhand/baselines/cascade.hpp"
#include "mmhand/baselines/datasets.hpp"
#include "mmhand/baselines/deepprior.hpp"
#include "mmhand/baselines/handfi.hpp"
#include "mmhand/baselines/mm4arm.hpp"
#include "mmhand/hand/kinematics.hpp"

namespace mmhand::baselines {
namespace {

hand::JointSet posed_joints() {
  hand::HandPose pose;
  pose.wrist_position = Vec3{0.0, 0.30, 0.0};
  return hand::forward_kinematics(hand::HandProfile::reference(), pose);
}

TEST(DepthRender, HandPixelsAreCloserThanBackground) {
  const auto joints = posed_joints();
  DepthCameraConfig cam;
  const auto img = render_depth(joints, cam);
  EXPECT_EQ(img.dim(1), cam.height);
  EXPECT_EQ(img.dim(2), cam.width);
  int hand_pixels = 0;
  for (std::size_t i = 0; i < img.numel(); ++i)
    if (img[i] < cam.background - 0.1f) ++hand_pixels;
  // A hand at 30 cm covers a reasonable share of the 32x32 image.
  EXPECT_GT(hand_pixels, 15);
  EXPECT_LT(hand_pixels, 700);
}

TEST(DepthRender, DistinguishesFistFromOpenHand) {
  hand::HandPose open_pose, fist_pose;
  open_pose.wrist_position = fist_pose.wrist_position = Vec3{0, 0.3, 0};
  fist_pose.fingers = hand::gesture_articulation(hand::Gesture::kFist);
  const auto profile = hand::HandProfile::reference();
  const auto img_open = render_depth(
      hand::forward_kinematics(profile, open_pose), {});
  const auto img_fist = render_depth(
      hand::forward_kinematics(profile, fist_pose), {});
  double diff = 0.0;
  for (std::size_t i = 0; i < img_open.numel(); ++i)
    diff += std::abs(img_open[i] - img_fist[i]);
  EXPECT_GT(diff, 5.0);
}

TEST(DepthRender, ProjectionIsMonotone) {
  DepthCameraConfig cam;
  int x1, y1, x2, y2;
  project_to_pixel(Vec3{-0.1, 0.3, 0.0}, cam, x1, y1);
  project_to_pixel(Vec3{0.1, 0.3, 0.0}, cam, x2, y2);
  EXPECT_LT(x1, x2);
  project_to_pixel(Vec3{0.0, 0.3, -0.05}, cam, x1, y1);
  project_to_pixel(Vec3{0.0, 0.3, 0.15}, cam, x2, y2);
  EXPECT_GT(y1, y2);  // higher z maps to a smaller row index
}

TEST(Datasets, VariantsDiffer) {
  DepthDatasetConfig msra;
  msra.variant = VisionDataset::kMsraLike;
  msra.samples = 20;
  DepthDatasetConfig icvl = msra;
  icvl.variant = VisionDataset::kIcvlLike;
  const auto a = make_depth_dataset(msra);
  const auto b = make_depth_dataset(icvl);
  ASSERT_EQ(a.size(), 20u);
  ASSERT_EQ(b.size(), 20u);
  // Not byte-identical.
  EXPECT_NE(a[0].depth[0], b[0].depth[0]);
}

TEST(Datasets, LabelsMatchJoints) {
  DepthDatasetConfig cfg;
  cfg.samples = 5;
  const auto data = make_depth_dataset(cfg);
  for (const auto& s : data) {
    // Labels are noisy copies of the joints: within a centimeter.
    for (int j = 0; j < hand::kNumJoints; ++j) {
      const Vec3 label{s.label.at(0, 3 * j), s.label.at(0, 3 * j + 1),
                       s.label.at(0, 3 * j + 2)};
      EXPECT_LT(distance(label, s.joints[static_cast<std::size_t>(j)]),
                0.02);
    }
  }
}

TEST(PosePrior, ComponentsAreOrthonormal) {
  DepthDatasetConfig cfg;
  cfg.samples = 120;
  const auto data = make_depth_dataset(cfg);
  const auto prior = fit_pose_prior(data, 8);
  for (int a = 0; a < 8; ++a)
    for (int b = 0; b < 8; ++b) {
      double dot = 0.0;
      for (int c = 0; c < 63; ++c)
        dot += prior.components.at(a, c) * prior.components.at(b, c);
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-3) << a << "," << b;
    }
}

TEST(PosePrior, ReconstructionBeatsMeanPose) {
  DepthDatasetConfig cfg;
  cfg.samples = 150;
  const auto data = make_depth_dataset(cfg);
  const auto prior = fit_pose_prior(data, 20);
  double mean_err = 0.0, pca_err = 0.0;
  for (const auto& s : data) {
    for (int c = 0; c < 63; ++c) {
      const double centered =
          s.label.at(0, c) - prior.mean[static_cast<std::size_t>(c)];
      mean_err += centered * centered;
    }
    // Project then reconstruct.
    double recon[63] = {};
    for (int k = 0; k < 20; ++k) {
      double coeff = 0.0;
      for (int c = 0; c < 63; ++c)
        coeff += (s.label.at(0, c) -
                  prior.mean[static_cast<std::size_t>(c)]) *
                 prior.components.at(k, c);
      for (int c = 0; c < 63; ++c)
        recon[c] += coeff * prior.components.at(k, c);
    }
    for (int c = 0; c < 63; ++c) {
      const double centered =
          s.label.at(0, c) - prior.mean[static_cast<std::size_t>(c)];
      pca_err += (centered - recon[c]) * (centered - recon[c]);
    }
  }
  EXPECT_LT(pca_err, 0.10 * mean_err);
}

TEST(Cascade, LearnsToBeatTheMeanPose) {
  DepthDatasetConfig cfg;
  cfg.samples = 150;
  auto train_set = make_depth_dataset(cfg);
  cfg.seed = 77;
  cfg.samples = 60;
  const auto test_set = make_depth_dataset(cfg);

  CascadeConfig ccfg;
  ccfg.stages = 3;
  ccfg.epochs_per_stage = 8;
  CascadeRegressor cascade(ccfg, cfg.camera);
  cascade.train(train_set);
  const double mpjpe = cascade.evaluate_mpjpe_mm(test_set);

  // Mean-pose reference error.
  CascadeConfig zero_cfg;
  zero_cfg.stages = 1;
  zero_cfg.epochs_per_stage = 0;
  CascadeRegressor untrained(zero_cfg, cfg.camera);
  untrained.train(train_set);  // trains a no-op stage but fits the mean
  const double mean_mpjpe = untrained.evaluate_mpjpe_mm(test_set);

  EXPECT_LT(mpjpe, 0.85 * mean_mpjpe)
      << "cascade " << mpjpe << " vs mean " << mean_mpjpe;
}

TEST(DeepPrior, LearnsToBeatTheMeanPose) {
  DepthDatasetConfig cfg;
  cfg.samples = 300;
  auto train_set = make_depth_dataset(cfg);
  cfg.seed = 78;
  cfg.samples = 60;
  const auto test_set = make_depth_dataset(cfg);

  DeepPriorConfig dcfg;
  dcfg.epochs = 15;
  DeepPriorRegressor dp(dcfg, cfg.camera);
  dp.train(train_set);
  const double mpjpe = dp.evaluate_mpjpe_mm(test_set);

  // Mean-pose error of the same test set.
  hand::JointSet mean_pose{};
  for (const auto& s : train_set)
    for (int j = 0; j < hand::kNumJoints; ++j)
      mean_pose[static_cast<std::size_t>(j)] +=
          s.joints[static_cast<std::size_t>(j)];
  for (auto& p : mean_pose) p = p / static_cast<double>(train_set.size());
  double mean_total = 0.0;
  for (const auto& s : test_set)
    for (int j = 0; j < hand::kNumJoints; ++j)
      mean_total += 1000.0 *
                    distance(mean_pose[static_cast<std::size_t>(j)],
                             s.joints[static_cast<std::size_t>(j)]);
  const double mean_mpjpe =
      mean_total / (static_cast<double>(test_set.size()) * hand::kNumJoints);

  EXPECT_LT(mpjpe, 0.92 * mean_mpjpe)
      << "deepprior " << mpjpe << " vs mean " << mean_mpjpe;
}

TEST(Mm4Arm, RestrictedSetupIsAccurateRotationDegrades) {
  radar::ChirpConfig chirp;
  chirp.chirps_per_frame = 8;
  chirp.samples_per_chirp = 32;
  chirp.frame_period_s = 0.05;
  radar::PipelineConfig pipeline;
  pipeline.cube.range_bins = 12;
  pipeline.cube.azimuth_bins = 8;
  pipeline.cube.elevation_bins = 4;

  Mm4ArmConfig cfg;
  cfg.train_seconds = 15;
  cfg.test_seconds = 4;
  cfg.epochs = 15;
  Mm4ArmBaseline mm4arm(cfg, chirp, pipeline);
  mm4arm.train();
  const double restricted = mm4arm.evaluate_restricted_mpjpe_mm();
  const double rotated = mm4arm.evaluate_rotated_mpjpe_mm();
  EXPECT_LT(restricted, 45.0) << "restricted " << restricted;
  EXPECT_GT(rotated, 1.3 * restricted)
      << "restricted " << restricted << " rotated " << rotated;
}

TEST(HandFi, CsiRespondsToHandPose) {
  WifiConfig wifi;
  Rng rng(1);
  const auto joints_open = posed_joints();
  hand::HandPose fist;
  fist.wrist_position = Vec3{0, 0.3, 0};
  fist.fingers = hand::gesture_articulation(hand::Gesture::kFist);
  const auto joints_fist =
      hand::forward_kinematics(hand::HandProfile::reference(), fist);

  sim::HandSceneConfig scfg;
  Rng srng(2);
  const auto scene_open =
      sim::build_hand_scene(joints_open, joints_open, 0.05, scfg, srng);
  const auto scene_fist =
      sim::build_hand_scene(joints_fist, joints_fist, 0.05, scfg, srng);
  wifi.noise_stddev = 0.0;
  Rng r1(3), r2(3);
  const auto csi_open = simulate_csi(scene_open, wifi, r1);
  const auto csi_fist = simulate_csi(scene_fist, wifi, r2);
  double diff = 0.0;
  for (std::size_t i = 0; i < csi_open.size(); ++i)
    diff += std::abs(csi_open[i] - csi_fist[i]);
  EXPECT_GT(diff, 0.1);
}

TEST(HandFi, LearnsCoarseSkeletons) {
  HandFiConfig cfg;
  cfg.train_frames = 600;
  cfg.test_frames = 80;
  cfg.epochs = 12;
  HandFiBaseline handfi(cfg);
  handfi.train();
  const double mpjpe = handfi.evaluate_mpjpe_mm();
  // Coarse (WiFi cannot resolve fingers the way a 4 GHz mmWave sweep can)
  // but structured: well below a collapsed/unstable regressor.
  EXPECT_LT(mpjpe, 70.0) << "handfi " << mpjpe;
  EXPECT_GT(mpjpe, 5.0);
}

}  // namespace
}  // namespace mmhand::baselines
