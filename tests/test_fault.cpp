// Tests for the robustness layer: the MMHAND_FAULT injection subsystem,
// the crash-safe durable-IO envelope, checkpoint/resume bitwise
// determinism, cache quarantine-and-rebuild, the corrupted-artifact
// fuzz matrix, and graceful degradation in predict_recording.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iterator>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "mmhand/common/io_safe.hpp"
#include "mmhand/common/serialize.hpp"
#include "mmhand/eval/experiment.hpp"
#include "mmhand/fault/fault.hpp"
#include "mmhand/hand/kinematics.hpp"
#include "mmhand/mesh/reconstruction.hpp"
#include "mmhand/nn/optimizer.hpp"
#include "mmhand/obs/obs.hpp"
#include "mmhand/pose/checkpoint.hpp"
#include "mmhand/pose/inference.hpp"

namespace mmhand {
namespace {

namespace fs = std::filesystem;

/// Restores fault-injection and crash-hook globals on scope exit so no
/// test can leak an armed fault stream into another.
struct FaultGuard {
  ~FaultGuard() {
    fault::set_spec("");
    io_safe::set_crash_after_bytes(-1);
    obs::set_metrics_enabled(false);
  }
};

std::string temp_path(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

std::vector<unsigned char> read_raw(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_raw(const std::string& path,
               const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Tiny network geometry so training tests run in milliseconds (mirrors
/// tests/test_pose.cpp).
pose::PoseNetConfig tiny_config() {
  pose::PoseNetConfig cfg;
  cfg.segment_frames = 1;
  cfg.sequence_segments = 2;
  cfg.velocity_bins = 4;
  cfg.range_bins = 8;
  cfg.angle_bins = 8;
  cfg.feature_dim = 24;
  cfg.lstm_hidden = 16;
  cfg.spacenet.stem_channels = 4;
  cfg.spacenet.block1_channels = 6;
  cfg.spacenet.block2_channels = 6;
  return cfg;
}

nn::Tensor random_tensor(std::vector<int> shape, Rng& rng) {
  nn::Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

std::vector<pose::PoseSample> tiny_samples(const pose::PoseNetConfig& cfg,
                                           std::uint64_t seed) {
  hand::HandPose pose;
  const auto base_joints =
      hand::forward_kinematics(hand::HandProfile::reference(), pose);
  Rng rng(seed);
  std::vector<pose::PoseSample> samples;
  for (int k = 0; k < 3; ++k) {
    pose::PoseSample s;
    s.input = random_tensor({cfg.frames_per_sample(), cfg.velocity_bins,
                             cfg.range_bins, cfg.angle_bins},
                            rng);
    s.labels = nn::Tensor({cfg.sequence_segments, 63});
    for (int row = 0; row < cfg.sequence_segments; ++row)
      for (int j = 0; j < hand::kNumJoints; ++j) {
        const Vec3 p = base_joints[static_cast<std::size_t>(j)];
        s.labels.at(row, 3 * j) = static_cast<float>(p.x + 0.01 * k);
        s.labels.at(row, 3 * j + 1) = static_cast<float>(p.y);
        s.labels.at(row, 3 * j + 2) = static_cast<float>(p.z);
      }
    s.oracle = s.labels;
    samples.push_back(std::move(s));
  }
  return samples;
}

/// A synthetic recording whose cubes match tiny_config's geometry.
sim::Recording tiny_recording(int n_frames, std::uint64_t seed) {
  const auto joints =
      hand::forward_kinematics(hand::HandProfile::reference(), {});
  Rng rng(seed);
  sim::Recording rec;
  for (int f = 0; f < n_frames; ++f) {
    sim::FrameRecord frame;
    frame.cube = radar::RadarCube(4, 8, 8);
    for (float& v : frame.cube.data())
      v = static_cast<float>(rng.uniform(0.1, 1.0));
    frame.joints = joints;
    frame.true_joints = joints;
    frame.time_s = 0.02 * f;
    rec.frames.push_back(std::move(frame));
  }
  return rec;
}

bool params_equal(pose::HandJointRegressor& a, pose::HandJointRegressor& b) {
  auto pa = a.parameters();
  auto pb = b.parameters();
  if (pa.size() != pb.size()) return false;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    if (pa[i]->value.numel() != pb[i]->value.numel()) return false;
    for (std::size_t e = 0; e < pa[i]->value.numel(); ++e)
      if (pa[i]->value[e] != pb[i]->value[e]) return false;
  }
  return true;
}

bool recordings_equal(const sim::Recording& a, const sim::Recording& b) {
  if (a.frames.size() != b.frames.size()) return false;
  for (std::size_t f = 0; f < a.frames.size(); ++f)
    if (a.frames[f].cube.data() != b.frames[f].cube.data()) return false;
  return true;
}

// --- spec parsing -------------------------------------------------------

TEST(FaultSpec, ParsesRatesAndSeed) {
  const fault::Spec s =
      fault::parse_spec("drop_frame=0.05,nan_burst=0.02,seed=42");
  EXPECT_DOUBLE_EQ(s.rate[static_cast<int>(fault::Kind::kDropFrame)], 0.05);
  EXPECT_DOUBLE_EQ(s.rate[static_cast<int>(fault::Kind::kNanBurst)], 0.02);
  EXPECT_DOUBLE_EQ(s.rate[static_cast<int>(fault::Kind::kGap)], 0.0);
  EXPECT_EQ(s.seed, 42u);
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(fault::parse_spec("typo_kind=0.5"), Error);
  EXPECT_THROW(fault::parse_spec("drop_frame=1.5"), Error);
  EXPECT_THROW(fault::parse_spec("drop_frame=-0.1"), Error);
  EXPECT_THROW(fault::parse_spec("drop_frame=abc"), Error);
  EXPECT_THROW(fault::parse_spec("drop_frame"), Error);
  EXPECT_THROW(fault::parse_spec("seed=xyz"), Error);
}

TEST(FaultSpec, KindNamesRoundTripThroughParser) {
  for (int k = 0; k < fault::kNumKinds; ++k) {
    const std::string spec =
        std::string(fault::kind_name(static_cast<fault::Kind>(k))) + "=1";
    EXPECT_DOUBLE_EQ(fault::parse_spec(spec).rate[k], 1.0) << spec;
  }
}

// --- event streams ------------------------------------------------------

TEST(FaultStream, OffByDefaultAndAfterClearing) {
  FaultGuard guard;
  fault::set_spec("");
  EXPECT_FALSE(fault::enabled());
  for (int i = 0; i < 32; ++i)
    EXPECT_FALSE(fault::should_inject(fault::Kind::kDropFrame));
  EXPECT_EQ(fault::injected_count(fault::Kind::kDropFrame), 0u);
}

TEST(FaultStream, DeterministicInSeedAndEventIndex) {
  FaultGuard guard;
  const auto pattern = [](const char* spec) {
    fault::set_spec(spec);
    std::vector<bool> p;
    for (int i = 0; i < 200; ++i)
      p.push_back(fault::should_inject(fault::Kind::kDropFrame));
    return p;
  };
  const auto a = pattern("drop_frame=0.5,seed=7");
  const auto b = pattern("drop_frame=0.5,seed=7");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, pattern("drop_frame=0.5,seed=8"));
  // Extremes behave exactly.
  fault::set_spec("drop_frame=1");
  EXPECT_TRUE(fault::should_inject(fault::Kind::kDropFrame));
  fault::set_spec("drop_frame=0,gap=1");
  EXPECT_FALSE(fault::should_inject(fault::Kind::kDropFrame));
  EXPECT_TRUE(fault::should_inject(fault::Kind::kGap));
}

// --- durable IO ---------------------------------------------------------

TEST(IoSafe, RoundTripAndNoTempLeftBehind) {
  const std::string path = temp_path("io_roundtrip.bin");
  const std::vector<unsigned char> payload{1, 2, 3, 250, 0, 7};
  io_safe::write_file_durable(path, payload);
  EXPECT_EQ(io_safe::read_file_validated(path), payload);
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  // Overwrite with new content atomically.
  const std::vector<unsigned char> v2{9, 9};
  io_safe::write_file_durable(path, v2);
  EXPECT_EQ(io_safe::read_file_validated(path), v2);
}

TEST(IoSafe, RejectsDamagedFiles) {
  const std::string path = temp_path("io_damaged.bin");
  io_safe::write_file_durable(path, {10, 20, 30, 40, 50});
  const auto good = read_raw(path);

  auto flipped = good;
  flipped[good.size() - 2] ^= 0x40;  // payload byte
  write_raw(path, flipped);
  EXPECT_THROW(io_safe::read_file_validated(path), Error);

  write_raw(path, {good.begin(), good.begin() + 10});  // inside the header
  EXPECT_THROW(io_safe::read_file_validated(path), Error);

  write_raw(path, {'n', 'o', 't', ' ', 'a', 'n', ' ', 'e', 'n', 'v', 'e',
                   'l', 'o', 'p', 'e', '!', '!', '!', '!', '!', '!'});
  EXPECT_THROW(io_safe::read_file_validated(path), Error);

  EXPECT_THROW(io_safe::read_file_validated(temp_path("io_missing.bin")),
               Error);
}

TEST(IoSafe, InjectedWriteFaultsNeverDamageTheOldArtifact) {
  FaultGuard guard;
  const std::string path = temp_path("io_write_faults.bin");
  const std::vector<unsigned char> v1{1, 1, 2, 3, 5, 8};
  io_safe::write_file_durable(path, v1);

  fault::set_spec("short_write=1");
  EXPECT_THROW(io_safe::write_file_durable(path, {42}), Error);
  fault::set_spec("fsync_fail=1");
  EXPECT_THROW(io_safe::write_file_durable(path, {43}), Error);
  fault::set_spec("");

  EXPECT_FALSE(fs::exists(path + ".tmp"));
  EXPECT_EQ(io_safe::read_file_validated(path), v1);
}

TEST(IoSafe, InjectedBitFlipIsCaughtByValidation) {
  FaultGuard guard;
  const std::string path = temp_path("io_bitflip.bin");
  const std::vector<unsigned char> payload(64, 0xAB);
  io_safe::write_file_durable(path, payload);
  fault::set_spec("bit_flip=1");
  EXPECT_THROW(io_safe::read_file_validated(path), Error);
  EXPECT_GE(fault::injected_count(fault::Kind::kBitFlip), 1u);
  fault::set_spec("");
  // The flip happened in memory; the file itself is intact.
  EXPECT_EQ(io_safe::read_file_validated(path), payload);
}

TEST(IoSafe, QuarantineMovesTheFileAside) {
  const std::string path = temp_path("io_quarantine.bin");
  io_safe::write_file_durable(path, {1});
  const std::string moved = io_safe::quarantine(path);
  EXPECT_EQ(moved, path + ".corrupt");
  EXPECT_FALSE(fs::exists(path));
  EXPECT_TRUE(fs::exists(moved));
  fs::remove(moved);
}

TEST(IoSafeDeathTest, KillMidWriteLeavesOldArtifactReadable) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const std::string path = temp_path("io_crash.bin");
  const std::vector<unsigned char> v1{7, 7, 7, 7};
  io_safe::write_file_durable(path, v1);
  // The writer dies after 10 bytes of the temp file — a SIGKILL between
  // two write calls.  The real artifact must be untouched.
  EXPECT_EXIT(
      {
        io_safe::set_crash_after_bytes(10);
        io_safe::write_file_durable(path, std::vector<unsigned char>(256, 5));
      },
      ::testing::ExitedWithCode(io_safe::kCrashExitCode), "");
  EXPECT_EQ(io_safe::read_file_validated(path), v1);
  // A later write recovers, replacing any leftover temp file.
  const std::vector<unsigned char> v2{8, 8};
  io_safe::write_file_durable(path, v2);
  EXPECT_EQ(io_safe::read_file_validated(path), v2);
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(IoSafe, StalePreEnvelopeFilesAreRejected) {
  // Serialized artifacts written before the envelope era (or by foreign
  // tools) must fail loudly, not parse as garbage.
  const std::string path = temp_path("io_stale.bin");
  write_raw(path, {0x01, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00,
                   0x03, 0x00, 0x00, 0x00, 0x04, 0x00, 0x00, 0x00,
                   0x05, 0x00, 0x00, 0x00, 0x06, 0x00, 0x00, 0x00});
  EXPECT_THROW(BinaryReader reader(path), Error);
}

// --- corrupted-artifact fuzz matrix -------------------------------------

/// Truncates at every quarter boundary and flips bits in the envelope
/// header, payload body, and CRC field; every variant must raise Error
/// through `load`.
void fuzz_artifact(const std::string& path,
                   const std::function<void(const std::string&)>& load,
                   const char* label) {
  const auto good = read_raw(path);
  ASSERT_GT(good.size(), 20u) << label;
  const std::string mutant = path + ".fuzz";
  for (const double frac : {0.25, 0.5, 0.75}) {
    const auto n = static_cast<std::size_t>(
        static_cast<double>(good.size()) * frac);
    write_raw(mutant, {good.begin(),
                       good.begin() + static_cast<std::ptrdiff_t>(n)});
    EXPECT_THROW(load(mutant), Error)
        << label << " truncated to " << frac;
  }
  write_raw(mutant, {good.begin(), good.begin() + 8});  // below header size
  EXPECT_THROW(load(mutant), Error) << label << " truncated below header";
  const std::size_t flip_sites[] = {5,                // header: version
                                    16,               // header: CRC field
                                    good.size() / 2,  // payload body
                                    good.size() - 1};
  for (const std::size_t site : flip_sites) {
    auto bytes = good;
    bytes[site] ^= 0x10;
    write_raw(mutant, bytes);
    EXPECT_THROW(load(mutant), Error) << label << " bit flip at " << site;
  }
  write_raw(mutant, good);  // pristine copy still loads
  EXPECT_NO_THROW(load(mutant)) << label;
  fs::remove(mutant);
}

TEST(FuzzMatrix, PoseModelArtifact) {
  const auto cfg = tiny_config();
  Rng rng(11);
  pose::HandJointRegressor model(cfg, rng);
  const std::string path = temp_path("fuzz_pose.bin");
  model.save(path);
  fuzz_artifact(path,
                [&](const std::string& p) {
                  Rng r2(12);
                  pose::HandJointRegressor fresh(cfg, r2);
                  fresh.load(p);
                },
                "pose model");
}

TEST(FuzzMatrix, MeshReconstructorArtifact) {
  Rng rng(13);
  mesh::MeshReconstructor recon(
      mesh::HandTemplate::create(hand::HandProfile::reference()), rng);
  const std::string path = temp_path("fuzz_mesh.bin");
  recon.save(path);
  fuzz_artifact(path,
                [&](const std::string& p) {
                  Rng r2(14);
                  mesh::MeshReconstructor fresh(
                      mesh::HandTemplate::create(
                          hand::HandProfile::reference()),
                      r2);
                  fresh.load(p);
                },
                "mesh reconstructor");
}

TEST(FuzzMatrix, GenericSerializedArtifact) {
  const std::string path = temp_path("fuzz_generic.bin");
  BinaryWriter w(path);
  w.write_u32(0xCAFE);
  w.write_string("payload");
  w.write_f32_vector(std::vector<float>(64, 1.5f));
  w.close();
  fuzz_artifact(path,
                [](const std::string& p) {
                  BinaryReader r(p);
                  (void)r.read_u32();
                  (void)r.read_string();
                  (void)r.read_f32_vector();
                },
                "generic artifact");
}

TEST(FuzzMatrix, TrainingCheckpointArtifact) {
  const auto cfg = tiny_config();
  Rng rng(15);
  pose::HandJointRegressor model(cfg, rng);
  nn::Adam optimizer(model.parameters(), {.lr = 1e-3});
  pose::TrainConfig tc;
  tc.epochs = 4;
  const std::string path = temp_path("fuzz_ckpt.ckpt");
  pose::save_checkpoint(path, model, optimizer, rng, tc, 1, {0.5});
  // The raw envelope read throws for every mutant...
  fuzz_artifact(
      path,
      [](const std::string& p) { (void)io_safe::read_file_validated(p); },
      "training checkpoint");
  // ...and the checkpoint loader converts that into quarantine +
  // restart-from-scratch rather than a crash.
  auto corrupt = read_raw(path);
  corrupt[corrupt.size() / 2] ^= 0x01;
  write_raw(path, corrupt);
  int next_epoch = -1;
  std::vector<double> losses;
  EXPECT_FALSE(pose::load_checkpoint(path, model, optimizer, rng, tc,
                                     &next_epoch, &losses));
  EXPECT_FALSE(fs::exists(path));
  EXPECT_TRUE(fs::exists(path + ".corrupt"));
  fs::remove(path + ".corrupt");
}

// --- checkpoint / resume ------------------------------------------------

TEST(Checkpoint, KillAndResumeIsBitwiseIdentical) {
  const auto cfg = tiny_config();
  const auto samples = tiny_samples(cfg, 21);
  pose::TrainConfig tc;
  tc.epochs = 4;
  tc.batch_size = 2;
  tc.seed = 77;

  // Reference: one uninterrupted run, no checkpointing.
  Rng rng_ref(5);
  pose::HandJointRegressor reference(cfg, rng_ref);
  const auto ref_stats = pose::train_pose_model(reference, samples, tc);

  // Interrupted run: die (via a throwing epoch callback, which fires
  // after the epoch's checkpoint is saved) at the end of epoch 1.
  const std::string dir = temp_path("ckpt_resume");
  fs::remove_all(dir);
  pose::TrainConfig tc_ckpt = tc;
  tc_ckpt.checkpoint_dir = dir;
  tc_ckpt.on_epoch = [](int epoch, double) {
    if (epoch == 1) throw std::runtime_error("simulated crash");
  };
  {
    Rng rng(5);
    pose::HandJointRegressor victim(cfg, rng);
    EXPECT_THROW(pose::train_pose_model(victim, samples, tc_ckpt),
                 std::runtime_error);
  }
  EXPECT_TRUE(fs::exists(pose::checkpoint_path(dir, tc.seed)));

  // Resume in a fresh process-equivalent: new model, same config.
  Rng rng2(5);
  pose::HandJointRegressor resumed(cfg, rng2);
  pose::TrainConfig tc_resume = tc;
  tc_resume.checkpoint_dir = dir;
  const auto res_stats = pose::train_pose_model(resumed, samples, tc_resume);

  EXPECT_TRUE(params_equal(reference, resumed));
  ASSERT_EQ(res_stats.epoch_loss.size(), ref_stats.epoch_loss.size());
  for (std::size_t e = 0; e < ref_stats.epoch_loss.size(); ++e)
    EXPECT_EQ(res_stats.epoch_loss[e], ref_stats.epoch_loss[e]) << e;
  // The checkpoint is cleaned up after a completed run.
  EXPECT_FALSE(fs::exists(pose::checkpoint_path(dir, tc.seed)));
  fs::remove_all(dir);
}

TEST(Checkpoint, CorruptCheckpointRestartsFromScratch) {
  const auto cfg = tiny_config();
  const auto samples = tiny_samples(cfg, 22);
  pose::TrainConfig tc;
  tc.epochs = 2;
  tc.seed = 78;

  Rng rng_ref(6);
  pose::HandJointRegressor reference(cfg, rng_ref);
  const auto ref_stats = pose::train_pose_model(reference, samples, tc);

  const std::string dir = temp_path("ckpt_corrupt");
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = pose::checkpoint_path(dir, tc.seed);
  write_raw(path, std::vector<unsigned char>(128, 0x5A));

  Rng rng(6);
  pose::HandJointRegressor restarted(cfg, rng);
  pose::TrainConfig tc_ckpt = tc;
  tc_ckpt.checkpoint_dir = dir;
  const auto stats = pose::train_pose_model(restarted, samples, tc_ckpt);

  EXPECT_TRUE(fs::exists(path + ".corrupt"));
  EXPECT_EQ(stats.epoch_loss.size(), static_cast<std::size_t>(tc.epochs));
  EXPECT_TRUE(params_equal(reference, restarted));
  for (std::size_t e = 0; e < ref_stats.epoch_loss.size(); ++e)
    EXPECT_EQ(stats.epoch_loss[e], ref_stats.epoch_loss[e]) << e;
  fs::remove_all(dir);
}

TEST(Checkpoint, StaleGeometryIsRejectedNotResumed) {
  const auto cfg = tiny_config();
  const auto samples = tiny_samples(cfg, 23);
  const std::string dir = temp_path("ckpt_stale");
  fs::remove_all(dir);
  pose::TrainConfig tc;
  tc.epochs = 2;
  tc.seed = 79;
  tc.checkpoint_dir = dir;
  tc.on_epoch = [](int, double) { throw std::runtime_error("die"); };
  {
    Rng rng(7);
    pose::HandJointRegressor victim(cfg, rng);
    EXPECT_THROW(pose::train_pose_model(victim, samples, tc),
                 std::runtime_error);
  }
  // Same seed, different geometry: the checkpoint must be treated as
  // stale (quarantined), and training restarts clean.
  pose::PoseNetConfig other = cfg;
  other.lstm_hidden = 24;
  Rng rng(7);
  pose::HandJointRegressor model(other, rng);
  pose::TrainConfig tc2 = tc;
  tc2.on_epoch = nullptr;
  const auto stats = pose::train_pose_model(model, samples, tc2);
  EXPECT_EQ(stats.epoch_loss.size(), 2u);
  EXPECT_TRUE(fs::exists(pose::checkpoint_path(dir, tc.seed) + ".corrupt"));
  fs::remove_all(dir);
}

// --- cache quarantine + rebuild -----------------------------------------

eval::ProtocolConfig micro_protocol() {
  eval::ProtocolConfig c = eval::ProtocolConfig::fast();
  c.num_users = 2;
  c.folds = 2;
  c.train_duration_s = 2.0;
  c.test_duration_s = 1.0;
  c.train.epochs = 1;
  return c;
}

TEST(CacheQuarantine, CorruptFoldModelIsQuarantinedAndRebuiltIdentically) {
  FaultGuard guard;
  obs::set_metrics_enabled(true);
  const std::string dir = temp_path("cache_quarantine");
  fs::remove_all(dir);
  const auto config = micro_protocol();
  {
    eval::Experiment experiment(config);
    experiment.prepare(dir);
  }
  // Find a fold-model artifact and poison a payload byte.
  std::string victim;
  for (const auto& entry : fs::directory_iterator(dir))
    if (entry.path().extension() == ".bin") {
      victim = entry.path().string();
      break;
    }
  ASSERT_FALSE(victim.empty());
  const auto pristine = read_raw(victim);
  auto poisoned = pristine;
  poisoned[poisoned.size() / 2] ^= 0x08;
  write_raw(victim, poisoned);

  const std::int64_t quarantined_before =
      obs::counter("eval/model_cache.quarantined").value();
  {
    eval::Experiment experiment(config);
    experiment.prepare(dir);  // must not throw
  }
  EXPECT_EQ(obs::counter("eval/model_cache.quarantined").value(),
            quarantined_before + 1);
  EXPECT_TRUE(fs::exists(victim + ".corrupt"));
  // The rebuilt artifact is bitwise identical to the original training
  // product: quarantine + retrain behaves exactly like a cache miss.
  EXPECT_EQ(read_raw(victim), pristine);
  fs::remove_all(dir);
}

// --- graceful degradation in predict_recording --------------------------

TEST(Degradation, ScanClassifiesFrameHealth) {
  auto rec = tiny_recording(4, 31);
  std::fill(rec.frames[1].cube.data().begin(),
            rec.frames[1].cube.data().end(), 0.0f);
  rec.frames[2].cube.data()[17] = std::numeric_limits<float>::quiet_NaN();
  std::fill(rec.frames[3].cube.data().begin(),
            rec.frames[3].cube.data().end(), 2.5f);
  const auto health = pose::scan_frame_health(rec);
  ASSERT_EQ(health.size(), 4u);
  EXPECT_EQ(health[0], pose::FrameHealth::kHealthy);
  EXPECT_EQ(health[1], pose::FrameHealth::kDropped);
  EXPECT_EQ(health[2], pose::FrameHealth::kNonFinite);
  EXPECT_EQ(health[3], pose::FrameHealth::kSaturated);
}

TEST(Degradation, DamagedRecordingPredictsWithStatusesInsteadOfThrowing) {
  FaultGuard guard;
  const auto cfg = tiny_config();
  Rng rng(41);
  pose::HandJointRegressor model(cfg, rng);

  const auto clean = tiny_recording(8, 32);
  const auto clean_preds = pose::predict_recording(model, clean);
  ASSERT_EQ(clean_preds.size(), 8u);
  for (const auto& p : clean_preds)
    EXPECT_EQ(p.status, pose::FrameStatus::kOk);

  auto damaged = clean;
  // Frame 2: isolated NaN frame, healthy neighbors -> repairable.
  damaged.frames[2].cube.data()[5] =
      std::numeric_limits<float>::quiet_NaN();
  // Frames 5-6: a dropped-frame run -> unrepairable, degraded.
  std::fill(damaged.frames[5].cube.data().begin(),
            damaged.frames[5].cube.data().end(), 0.0f);
  std::fill(damaged.frames[6].cube.data().begin(),
            damaged.frames[6].cube.data().end(), 0.0f);

  obs::set_metrics_enabled(true);
  const std::int64_t degraded_before =
      obs::counter("fault.degraded_segments").value();
  const std::int64_t repaired_before =
      obs::counter("fault.repaired_frames").value();

  const auto preds = pose::predict_recording(model, damaged);
  ASSERT_EQ(preds.size(), 8u);
  for (const auto& p : preds) {
    for (const Vec3& joint : p.joints) {
      EXPECT_TRUE(std::isfinite(joint.x) && std::isfinite(joint.y) &&
                  std::isfinite(joint.z));
    }
  }
  // With segment_frames = 1, each prediction's status is its own frame's
  // post-repair state.
  EXPECT_EQ(preds[2].status, pose::FrameStatus::kRepaired);
  EXPECT_EQ(preds[5].status, pose::FrameStatus::kDegraded);
  EXPECT_EQ(preds[6].status, pose::FrameStatus::kDegraded);
  for (const std::size_t i : {0u, 1u, 3u, 4u, 7u})
    EXPECT_EQ(preds[i].status, pose::FrameStatus::kOk) << i;

  // The degraded-segment counter advances by exactly the damaged-run
  // size; the repair counter by the one interpolated frame.
  EXPECT_EQ(obs::counter("fault.degraded_segments").value(),
            degraded_before + 2);
  EXPECT_EQ(obs::counter("fault.repaired_frames").value(),
            repaired_before + 1);

  // Windows that never touch a damaged frame are bitwise unaffected.
  for (const std::size_t i : {0u, 1u}) {
    for (int j = 0; j < hand::kNumJoints; ++j) {
      EXPECT_EQ(preds[i].joints[static_cast<std::size_t>(j)].x,
                clean_preds[i].joints[static_cast<std::size_t>(j)].x);
    }
  }
}

// --- input-layer injection + bitwise-off guarantee ----------------------

radar::ChirpConfig micro_chirp() {
  radar::ChirpConfig chirp;
  chirp.chirps_per_frame = 8;
  chirp.samples_per_chirp = 32;
  chirp.frame_period_s = 0.05;
  return chirp;
}

TEST(InputFaults, DisabledInjectionIsBitwiseIdentical) {
  FaultGuard guard;
  const eval::ProtocolConfig fast = eval::ProtocolConfig::fast();
  sim::DatasetBuilder builder(fast.chirp, fast.pipeline);
  sim::ScenarioConfig scenario;
  scenario.duration_s = 0.4;
  scenario.seed = 99;

  fault::set_spec("");
  const auto baseline = builder.record(scenario);
  // Running with a spec enabled, then disabling, must return to the
  // exact baseline: injection may never leak into the simulation RNG.
  fault::set_spec("drop_frame=0.5,seed=3");
  const auto faulted = builder.record(scenario);
  fault::set_spec("");
  const auto again = builder.record(scenario);
  EXPECT_TRUE(recordings_equal(baseline, again));
  EXPECT_FALSE(recordings_equal(baseline, faulted));
}

TEST(InputFaults, InjectionIsDeterministicAndScannable) {
  FaultGuard guard;
  const eval::ProtocolConfig fast = eval::ProtocolConfig::fast();
  sim::DatasetBuilder builder(fast.chirp, fast.pipeline);
  sim::ScenarioConfig scenario;
  scenario.duration_s = 0.4;
  scenario.seed = 99;

  fault::set_spec("drop_frame=0.5,seed=3");
  const auto rec_a = builder.record(scenario);
  const std::uint64_t injected =
      fault::injected_count(fault::Kind::kDropFrame);
  EXPECT_GE(injected, 1u);
  fault::set_spec("drop_frame=0.5,seed=3");  // resets the event streams
  const auto rec_b = builder.record(scenario);
  EXPECT_TRUE(recordings_equal(rec_a, rec_b));

  // Every injected drop shows up in the health scan.
  const auto health = pose::scan_frame_health(rec_a);
  std::uint64_t dropped = 0;
  for (const auto h : health)
    if (h == pose::FrameHealth::kDropped) ++dropped;
  EXPECT_EQ(dropped, injected);

  // NaN bursts surface as non-finite frames.
  fault::set_spec("nan_burst=1,seed=3");
  const auto rec_nan = builder.record(scenario);
  for (const auto h : pose::scan_frame_health(rec_nan))
    EXPECT_EQ(h, pose::FrameHealth::kNonFinite);

  // Saturation rails every cell at the frame maximum.
  fault::set_spec("saturate=1,seed=3");
  const auto rec_sat = builder.record(scenario);
  for (const auto h : pose::scan_frame_health(rec_sat))
    EXPECT_EQ(h, pose::FrameHealth::kSaturated);

  // Gaps drop runs of at least two consecutive frames.
  fault::set_spec("gap=1,seed=3");
  const auto rec_gap = builder.record(scenario);
  for (const auto h : pose::scan_frame_health(rec_gap))
    EXPECT_EQ(h, pose::FrameHealth::kDropped);
}

// --- config validation --------------------------------------------------

TEST(ConfigValidation, RejectsNonFiniteChirpFields) {
  radar::ChirpConfig chirp;
  chirp.bandwidth_hz = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(chirp.validate(), Error);
  chirp = radar::ChirpConfig{};
  chirp.frame_period_s = std::numeric_limits<double>::infinity();
  EXPECT_THROW(chirp.validate(), Error);
  chirp = radar::ChirpConfig{};
  chirp.noise_stddev = -0.1;
  EXPECT_THROW(chirp.validate(), Error);
  EXPECT_NO_THROW(radar::ChirpConfig{}.validate());
}

TEST(ConfigValidation, RejectsBadCubeAndPoseNetFields) {
  radar::CubeConfig cube;
  cube.zoom_factor = 0;
  EXPECT_THROW(cube.validate(), Error);
  cube = radar::CubeConfig{};
  cube.angle_span_deg = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(cube.validate(), Error);

  pose::PoseNetConfig net = tiny_config();
  net.cube_scale = std::numeric_limits<float>::quiet_NaN();
  EXPECT_THROW(net.validate(), Error);
  net = tiny_config();
  net.noise_floor_scale = -1.0f;
  EXPECT_THROW(net.validate(), Error);
  EXPECT_NO_THROW(tiny_config().validate());
}

TEST(ConfigValidation, DatasetBuilderValidatesOnConstruction) {
  radar::ChirpConfig chirp = micro_chirp();
  chirp.bandwidth_hz = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(sim::DatasetBuilder(chirp, radar::PipelineConfig{}), Error);
  radar::PipelineConfig pipeline;
  pipeline.cube.zoom_factor = -1;
  EXPECT_THROW(sim::DatasetBuilder(micro_chirp(), pipeline), Error);
}

}  // namespace
}  // namespace mmhand
