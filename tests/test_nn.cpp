// Tests for mmhand/nn: every layer's backward pass is validated against
// central-difference numerical gradients, plus optimizer, loss, and
// serialization behaviour.

#include <gtest/gtest.h>

#include <cmath>

#include "mmhand/nn/activations.hpp"
#include "mmhand/nn/attention.hpp"
#include "mmhand/nn/conv2d.hpp"
#include "mmhand/nn/gradcheck.hpp"
#include "mmhand/nn/layer_norm.hpp"
#include "mmhand/nn/linear.hpp"
#include "mmhand/nn/loss.hpp"
#include "mmhand/nn/lstm.hpp"
#include "mmhand/nn/optimizer.hpp"
#include "mmhand/nn/sequential.hpp"

namespace mmhand::nn {
namespace {

constexpr double kRelTol = 5e-2;
constexpr double kAbsTol = 1e-2;

Tensor random_tensor(std::vector<int> shape, Rng& rng, double scale = 1.0) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.uniform(-scale, scale));
  return t;
}

void expect_gradients_ok(const GradCheckResult& res) {
  EXPECT_GT(res.checked, 0u);
  EXPECT_LT(res.max_rel_error, kRelTol) << "abs=" << res.max_abs_error;
  EXPECT_LT(res.max_abs_error, kAbsTol) << "rel=" << res.max_rel_error;
}

TEST(Tensor, ShapeAndIndexing) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.rank(), 3);
  EXPECT_EQ(t.numel(), 24u);
  t.at(1, 2, 3) = 7.0f;
  EXPECT_FLOAT_EQ(t[23], 7.0f);
  EXPECT_THROW(Tensor({2, 0}), Error);
}

TEST(Tensor, ReshapePreservesData) {
  Rng rng(1);
  const Tensor t = random_tensor({3, 4}, rng);
  const Tensor r = t.reshaped({2, 6});
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], r[i]);
  EXPECT_THROW(t.reshaped({5, 5}), Error);
}

TEST(Tensor, Arithmetic) {
  Tensor a = Tensor::full({4}, 2.0f);
  const Tensor b = Tensor::full({4}, 3.0f);
  a.add_(b);
  EXPECT_FLOAT_EQ(a[0], 5.0f);
  a.axpy_(2.0f, b);
  EXPECT_FLOAT_EQ(a[0], 11.0f);
  a.scale_(0.5f);
  EXPECT_FLOAT_EQ(a[0], 5.5f);
}

TEST(Linear, ForwardMatchesManual) {
  Rng rng(2);
  Linear fc(3, 2, rng);
  fc.weight().value = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  fc.bias().value = Tensor::from_vector({2}, {0.5f, -0.5f});
  const Tensor x = Tensor::from_vector({1, 3}, {1, 1, 1});
  const Tensor y = fc.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 6.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 14.5f);
}

TEST(Linear, GradCheck) {
  Rng rng(3);
  Linear fc(5, 4, rng);
  const Tensor x = random_tensor({3, 5}, rng);
  Rng check_rng(4);
  expect_gradients_ok(check_input_gradient(fc, x, check_rng));
  Rng check_rng2(5);
  expect_gradients_ok(check_parameter_gradients(fc, x, check_rng2));
}

struct ConvCase {
  int in_ch, out_ch, k, stride, pad, h, w;
};

class ConvGeometry : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGeometry, GradCheck) {
  const auto c = GetParam();
  Rng rng(6);
  Conv2d conv(c.in_ch, c.out_ch, c.k, c.stride, c.pad, rng);
  const Tensor x = random_tensor({2, c.in_ch, c.h, c.w}, rng);
  Rng check_rng(7);
  expect_gradients_ok(check_input_gradient(conv, x, check_rng));
  Rng check_rng2(8);
  expect_gradients_ok(check_parameter_gradients(conv, x, check_rng2));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvGeometry,
    ::testing::Values(ConvCase{1, 1, 3, 1, 1, 5, 5},
                      ConvCase{2, 3, 3, 2, 1, 6, 6},
                      ConvCase{3, 2, 1, 1, 0, 4, 4},
                      ConvCase{2, 2, 5, 1, 2, 7, 7},
                      ConvCase{2, 4, 3, 2, 1, 5, 7}));

TEST(Conv2d, IdentityKernelPassesThrough) {
  Rng rng(9);
  Conv2d conv(1, 1, 1, 1, 0, rng);
  conv.parameters()[0]->value = Tensor::from_vector({1, 1, 1, 1}, {1.0f});
  conv.parameters()[1]->value = Tensor::from_vector({1}, {0.0f});
  const Tensor x = random_tensor({1, 1, 3, 3}, rng);
  const Tensor y = conv.forward(x, false);
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Conv2d, OutputExtent) {
  Rng rng(10);
  Conv2d conv(1, 1, 3, 2, 1, rng);
  EXPECT_EQ(conv.out_extent(12), 6);
  EXPECT_EQ(conv.out_extent(6), 3);
  EXPECT_EQ(conv.out_extent(24), 12);
}

class DeconvGeometry : public ::testing::TestWithParam<ConvCase> {};

TEST_P(DeconvGeometry, GradCheck) {
  const auto c = GetParam();
  Rng rng(11);
  ConvTranspose2d deconv(c.in_ch, c.out_ch, c.k, c.stride, c.pad, rng);
  const Tensor x = random_tensor({2, c.in_ch, c.h, c.w}, rng);
  Rng check_rng(12);
  expect_gradients_ok(check_input_gradient(deconv, x, check_rng));
  Rng check_rng2(13);
  expect_gradients_ok(check_parameter_gradients(deconv, x, check_rng2));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, DeconvGeometry,
    ::testing::Values(ConvCase{1, 1, 4, 2, 1, 3, 3},
                      ConvCase{2, 2, 4, 2, 1, 4, 4},
                      ConvCase{3, 1, 3, 1, 1, 4, 4}));

TEST(ConvTranspose2d, DoublesSpatialExtent) {
  Rng rng(14);
  ConvTranspose2d deconv(1, 1, 4, 2, 1, rng);
  EXPECT_EQ(deconv.out_extent(3), 6);
  EXPECT_EQ(deconv.out_extent(6), 12);
  const Tensor x = random_tensor({1, 1, 3, 3}, rng);
  const Tensor y = deconv.forward(x, false);
  EXPECT_EQ(y.dim(2), 6);
  EXPECT_EQ(y.dim(3), 6);
}

TEST(Activations, ReluForwardAndGrad) {
  Rng rng(15);
  ReLU relu;
  const Tensor x = Tensor::from_vector({1, 4}, {-1.0f, 0.0f, 2.0f, -3.0f});
  const Tensor y = relu.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
  const Tensor g = relu.backward(Tensor::full({1, 4}, 1.0f));
  EXPECT_FLOAT_EQ(g[0], 0.0f);
  EXPECT_FLOAT_EQ(g[2], 1.0f);
}

TEST(Activations, SigmoidGradCheck) {
  Rng rng(16);
  Sigmoid s;
  const Tensor x = random_tensor({2, 6}, rng, 2.0);
  Rng check_rng(17);
  expect_gradients_ok(check_input_gradient(s, x, check_rng));
}

TEST(Activations, TanhGradCheck) {
  Rng rng(18);
  Tanh t;
  const Tensor x = random_tensor({2, 6}, rng, 2.0);
  Rng check_rng(19);
  expect_gradients_ok(check_input_gradient(t, x, check_rng));
}

TEST(LayerNorm, NormalizesRows) {
  LayerNorm ln(8);
  Rng rng(20);
  const Tensor x = random_tensor({3, 8}, rng, 5.0);
  const Tensor y = ln.forward(x, false);
  for (int i = 0; i < 3; ++i) {
    double mean = 0.0, var = 0.0;
    for (int f = 0; f < 8; ++f) mean += y.at(i, f);
    mean /= 8.0;
    for (int f = 0; f < 8; ++f) var += (y.at(i, f) - mean) * (y.at(i, f) - mean);
    var /= 8.0;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(LayerNorm, GradCheck) {
  LayerNorm ln(6);
  Rng rng(21);
  const Tensor x = random_tensor({4, 6}, rng, 2.0);
  Rng check_rng(22);
  expect_gradients_ok(check_input_gradient(ln, x, check_rng));
  Rng check_rng2(23);
  expect_gradients_ok(check_parameter_gradients(ln, x, check_rng2));
}

TEST(Lstm, OutputShapeAndBoundedness) {
  Rng rng(24);
  Lstm lstm(4, 6, rng);
  const Tensor x = random_tensor({5, 4}, rng, 2.0);
  const Tensor y = lstm.forward(x, false);
  EXPECT_EQ(y.dim(0), 5);
  EXPECT_EQ(y.dim(1), 6);
  for (std::size_t i = 0; i < y.numel(); ++i) {
    EXPECT_GT(y[i], -1.0f);
    EXPECT_LT(y[i], 1.0f);
  }
}

TEST(Lstm, GradCheck) {
  Rng rng(25);
  Lstm lstm(3, 4, rng);
  const Tensor x = random_tensor({4, 3}, rng);
  Rng check_rng(26);
  expect_gradients_ok(check_input_gradient(lstm, x, check_rng));
  Rng check_rng2(27);
  expect_gradients_ok(check_parameter_gradients(lstm, x, check_rng2));
}

TEST(Lstm, StateResetsBetweenSequences) {
  Rng rng(28);
  Lstm lstm(2, 3, rng);
  const Tensor x = random_tensor({3, 2}, rng);
  const Tensor y1 = lstm.forward(x, false);
  const Tensor y2 = lstm.forward(x, false);
  for (std::size_t i = 0; i < y1.numel(); ++i) EXPECT_EQ(y1[i], y2[i]);
}

TEST(FrameChannelAttention, WeightsInUnitInterval) {
  Rng rng(29);
  FrameChannelAttention att(rng);
  const Tensor x = random_tensor({3, 4, 5, 5}, rng);
  (void)att.forward(x, false);
  const Tensor& w = att.last_weights();
  ASSERT_EQ(w.numel(), 3u);
  for (std::size_t i = 0; i < w.numel(); ++i) {
    EXPECT_GT(w[i], 0.0f);
    EXPECT_LT(w[i], 1.0f);
  }
}

TEST(FrameChannelAttention, GradCheck) {
  Rng rng(30);
  FrameChannelAttention att(rng);
  const Tensor x = random_tensor({2, 3, 4, 4}, rng);
  Rng check_rng(31);
  expect_gradients_ok(check_input_gradient(att, x, check_rng));
  Rng check_rng2(32);
  expect_gradients_ok(check_parameter_gradients(att, x, check_rng2));
}

TEST(ChannelAttention, GradCheck) {
  Rng rng(33);
  ChannelAttention att(3, rng);
  const Tensor x = random_tensor({2, 3, 4, 4}, rng);
  Rng check_rng(34);
  expect_gradients_ok(check_input_gradient(att, x, check_rng));
  Rng check_rng2(35);
  expect_gradients_ok(check_parameter_gradients(att, x, check_rng2));
}

TEST(SpatialAttention, GradCheck) {
  Rng rng(36);
  SpatialAttention att(rng, 3);
  const Tensor x = random_tensor({2, 3, 5, 5}, rng);
  Rng check_rng(37);
  expect_gradients_ok(check_input_gradient(att, x, check_rng));
  Rng check_rng2(38);
  expect_gradients_ok(check_parameter_gradients(att, x, check_rng2));
}

TEST(SpatialAttention, AttenuatesButPreservesShape) {
  Rng rng(39);
  SpatialAttention att(rng, 5);
  const Tensor x = random_tensor({1, 4, 6, 6}, rng);
  const Tensor y = att.forward(x, false);
  EXPECT_TRUE(y.same_shape(x));
}

TEST(Sequential, ChainsLayersAndGradChecks) {
  Rng rng(40);
  Sequential seq;
  seq.emplace<Linear>(6, 8, rng);
  seq.emplace<ReLU>();
  seq.emplace<Linear>(8, 4, rng);
  seq.emplace<Tanh>();
  const Tensor x = random_tensor({3, 6}, rng);
  EXPECT_EQ(seq.forward(x, false).dim(1), 4);
  EXPECT_EQ(seq.parameters().size(), 4u);
  Rng check_rng(41);
  expect_gradients_ok(check_input_gradient(seq, x, check_rng));
}

TEST(Loss, JointL2MatchesManual) {
  const Tensor pred = Tensor::from_vector({6}, {0, 0, 0, 1, 1, 1});
  const Tensor gt = Tensor::from_vector({6}, {3, 4, 0, 1, 1, 1});
  const auto res = joint_l2_loss(pred, gt);
  EXPECT_NEAR(res.value, 5.0, 1e-6);  // sqrt(9+16) + 0
  EXPECT_NEAR(res.grad[0], -0.6, 1e-5);
  EXPECT_NEAR(res.grad[1], -0.8, 1e-5);
  EXPECT_NEAR(res.grad[3], 0.0, 1e-6);
}

TEST(Loss, JointL2GradNumeric) {
  Rng rng(42);
  Tensor pred = random_tensor({9}, rng);
  const Tensor gt = random_tensor({9}, rng);
  const auto res = joint_l2_loss(pred, gt);
  const double eps = 1e-4;
  for (std::size_t i = 0; i < pred.numel(); ++i) {
    const float orig = pred[i];
    pred[i] = orig + static_cast<float>(eps);
    const double plus = joint_l2_loss(pred, gt).value;
    pred[i] = orig - static_cast<float>(eps);
    const double minus = joint_l2_loss(pred, gt).value;
    pred[i] = orig;
    EXPECT_NEAR(res.grad[i], (plus - minus) / (2 * eps), 1e-3);
  }
}

TEST(Loss, MseBasics) {
  const Tensor pred = Tensor::from_vector({2}, {1.0f, 3.0f});
  const Tensor gt = Tensor::from_vector({2}, {0.0f, 1.0f});
  const auto res = mse_loss(pred, gt);
  EXPECT_NEAR(res.value, (1.0 + 4.0) / 2.0, 1e-6);
  EXPECT_NEAR(res.grad[1], 2.0, 1e-6);
}

TEST(Adam, ConvergesOnLinearRegression) {
  // y = 2x + 1 learned from noisy samples.
  Rng rng(43);
  Linear fc(1, 1, rng);
  Adam opt(fc.parameters(), {.lr = 0.05});
  for (int step = 0; step < 400; ++step) {
    Tensor x({8, 1}), t({8, 1});
    for (int i = 0; i < 8; ++i) {
      const double xv = rng.uniform(-1.0, 1.0);
      x.at(i, 0) = static_cast<float>(xv);
      t.at(i, 0) = static_cast<float>(2.0 * xv + 1.0 + rng.normal(0, 0.01));
    }
    const Tensor y = fc.forward(x, true);
    const auto loss = mse_loss(y, t);
    opt.zero_grad();
    (void)fc.backward(loss.grad);
    opt.step();
  }
  EXPECT_NEAR(fc.weight().value[0], 2.0f, 0.1f);
  EXPECT_NEAR(fc.bias().value[0], 1.0f, 0.1f);
}

TEST(Adam, CosineDecaySchedule) {
  EXPECT_NEAR(cosine_decay(0, 100), 1.0, 1e-12);
  EXPECT_NEAR(cosine_decay(50, 100), 0.5, 1e-12);
  EXPECT_NEAR(cosine_decay(100, 100), 0.0, 1e-12);
  EXPECT_GT(cosine_decay(10, 100), cosine_decay(90, 100));
}

TEST(Parameters, CountAndZero) {
  Rng rng(44);
  Linear fc(3, 2, rng);
  auto params = fc.parameters();
  EXPECT_EQ(parameter_count(params), 8u);  // 6 weights + 2 biases
  params[0]->grad.fill(5.0f);
  zero_grads(params);
  EXPECT_FLOAT_EQ(params[0]->grad[0], 0.0f);
}

TEST(Parameters, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/params.bin";
  Rng rng(45);
  Linear a(4, 3, rng), b(4, 3, rng);
  {
    BinaryWriter w(path);
    save_parameters(a.parameters(), w);
    w.close();
  }
  BinaryReader r(path);
  load_parameters(b.parameters(), r);
  const Tensor x = random_tensor({2, 4}, rng);
  const Tensor ya = a.forward(x, false);
  const Tensor yb = b.forward(x, false);
  for (std::size_t i = 0; i < ya.numel(); ++i) EXPECT_EQ(ya[i], yb[i]);
  std::remove(path.c_str());
}

TEST(Parameters, LoadRejectsShapeMismatch) {
  const std::string path = ::testing::TempDir() + "/params_bad.bin";
  Rng rng(46);
  Linear a(4, 3, rng);
  Linear c(5, 3, rng);
  {
    BinaryWriter w(path);
    save_parameters(a.parameters(), w);
    w.close();
  }
  BinaryReader r(path);
  EXPECT_THROW(load_parameters(c.parameters(), r), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mmhand::nn
