// Causal tracing + PMU profiling: FrameScope identity and nesting,
// cross-thread flow events in the Chrome trace, per-frame records in
// the telemetry stream and flight ring, PMU graceful degradation, the
// torn-tail/corruption semantics of mmhand_top's stream parser, tail
// attribution — and the contract underneath all of it: bitwise-identical
// pipeline outputs with tracing + PMU on vs fully off, at 1 and 4
// threads.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "mmhand/common/json.hpp"
#include "mmhand/common/parallel.hpp"
#include "mmhand/common/rng.hpp"
#include "mmhand/obs/obs.hpp"
#include "mmhand/radar/antenna_array.hpp"
#include "mmhand/radar/chirp_config.hpp"
#include "mmhand/radar/if_simulator.hpp"
#include "mmhand/radar/pipeline.hpp"
#include "top/top_core.hpp"

namespace mmhand {
namespace {

namespace fs = std::filesystem;
using json::Value;

std::string temp_path(const std::string& name) {
  return (fs::temp_directory_path() / ("mmhand_prof_" + name)).string();
}

/// Every test leaves the obs layer exactly as it found it.
struct ObsGuard {
  ObsGuard() { obs::reset_metrics(); }
  ~ObsGuard() {
    obs::stop_telemetry();
    obs::stop_flight();
    obs::set_tracing_enabled(false);
    obs::set_pmu_enabled(false);
    obs::set_metrics_enabled(false);
    obs::clear_trace();
    obs::reset_metrics();
  }
};

/// Runs `fn` with the pool pinned to `threads`, restoring afterwards.
template <typename Fn>
auto with_threads(int threads, Fn&& fn) {
  const int prev = num_threads();
  set_num_threads(threads);
  auto result = fn();
  set_num_threads(prev);
  return result;
}

/// The deterministic pipeline workload the determinism tests compare.
std::vector<float> run_process_frame() {
  radar::ChirpConfig chirp;
  chirp.noise_stddev = 0.0;
  const radar::AntennaArray array(chirp);
  const radar::IfSimulator sim(chirp, array);
  const radar::PipelineConfig pc;
  const radar::RadarPipeline pipe(chirp, array, pc);
  radar::Scene scene{
      {Vec3{0.05, 0.30, 0.02}, Vec3{0.0, 0.4, 0.0}, 1.0},
      {Vec3{-0.08, 0.45, -0.01}, Vec3{0.0, -0.2, 0.0}, 0.7},
  };
  Rng rng(11);
  const auto frame = sim.simulate_frame(scene, 0.0, rng);
  return pipe.process_frame(frame).data();
}

/// Manual-mode sampler: no thread, in-memory ring only, so frame
/// records land in `telemetry_ring_tail` deterministically.
obs::TelemetryConfig manual_config() {
  obs::TelemetryConfig config;
  config.interval_ms = 0;
  config.ring_capacity = 64;
  return config;
}

// ---------------------------------------------------------------------
// FrameScope identity.

TEST(FrameScope, InactiveWhenObservabilityFullyOff) {
  ObsGuard guard;
  obs::FrameScope scope("test/off");
  EXPECT_EQ(scope.trace_id(), 0u);
  EXPECT_EQ(obs::current_trace_id(), 0u);
}

TEST(FrameScope, NestingRestoresOuterContext) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  EXPECT_EQ(obs::current_trace_id(), 0u);
  obs::FrameScope outer("test/outer");
  ASSERT_NE(outer.trace_id(), 0u);
  EXPECT_EQ(obs::current_trace_id(), outer.trace_id());
  {
    obs::FrameScope inner("test/inner");
    ASSERT_NE(inner.trace_id(), 0u);
    EXPECT_NE(inner.trace_id(), outer.trace_id());
    EXPECT_EQ(obs::current_trace_id(), inner.trace_id());
  }
  EXPECT_EQ(obs::current_trace_id(), outer.trace_id());
}

TEST(FrameScope, TraceIdsAreUniqueAcrossScopes) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 16; ++i) {
    obs::FrameScope scope("test/unique");
    seen.insert(scope.trace_id());
  }
  EXPECT_EQ(seen.size(), 16u);
}

// ---------------------------------------------------------------------
// Flow events: every cross-thread child span links to its frame.

TEST(FrameTrace, FlowEventsLinkWorkerSpansAtFourThreads) {
  ObsGuard guard;
  obs::clear_trace();
  obs::set_tracing_enabled(true);
  with_threads(4, run_process_frame);
  obs::set_tracing_enabled(false);

  const std::string path = temp_path("flow_trace.json");
  ASSERT_TRUE(obs::write_trace(path));
  std::ifstream in(path);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  fs::remove(path);
  std::string err;
  const Value doc = Value::parse(text, &err);
  ASSERT_TRUE(err.empty()) << err;
  const Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);

  struct Anchor {
    double ts = 0.0;
    double tid = -1.0;
  };
  std::map<std::uint64_t, Anchor> sources;
  struct Binding {
    std::uint64_t id;
    double ts;
    double tid;
  };
  std::vector<Binding> bindings;
  std::size_t tagged = 0;
  for (const Value& e : events->as_array()) {
    const std::string ph = e.string_or("ph", "");
    if (ph == "s") {
      EXPECT_EQ(e.string_or("cat", ""), "mmhand_flow");
      sources[static_cast<std::uint64_t>(e.number_or("id", 0))] = {
          e.number_or("ts", 0.0), e.number_or("tid", -1.0)};
    } else if (ph == "f") {
      EXPECT_EQ(e.string_or("bp", ""), "e");
      bindings.push_back({static_cast<std::uint64_t>(e.number_or("id", 0)),
                          e.number_or("ts", 0.0),
                          e.number_or("tid", -1.0)});
    }
    if (const Value* args = e.find("args");
        args != nullptr && args->find("trace_id") != nullptr)
      ++tagged;
  }
  ASSERT_FALSE(sources.empty()) << "no flow anchors recorded";
  // 4-thread parallel_for fans the radar stages out, so at least one
  // worker span must have bound back to a frame.
  ASSERT_FALSE(bindings.empty()) << "no cross-thread flow bindings";
  EXPECT_GT(tagged, 0u);
  for (const Binding& b : bindings) {
    const auto it = sources.find(b.id);
    ASSERT_NE(it, sources.end()) << "f event without s anchor, id " << b.id;
    EXPECT_LE(it->second.ts, b.ts) << "flow binds before its anchor";
    EXPECT_NE(it->second.tid, b.tid)
        << "flow target on the origin thread should not be cross-thread";
  }
}

// ---------------------------------------------------------------------
// Per-frame records.

TEST(FrameRecords, OneRecordPerFrameInTelemetryRing) {
  ObsGuard guard;
  ASSERT_TRUE(obs::set_telemetry(manual_config()));
  const std::uint64_t before = obs::frame_records_emitted();
  constexpr int kFrames = 3;
  for (int i = 0; i < kFrames; ++i) with_threads(2, run_process_frame);
  EXPECT_EQ(obs::frame_records_emitted() - before,
            static_cast<std::uint64_t>(kFrames));

  std::vector<std::string> tail = obs::telemetry_ring_tail(64);
  std::vector<Value> frames;
  for (const std::string& line : tail) {
    std::string err;
    Value v = Value::parse(line, &err);
    ASSERT_TRUE(err.empty()) << err;
    if (v.string_or("kind", "") == "frame") frames.push_back(std::move(v));
  }
  ASSERT_EQ(frames.size(), static_cast<std::size_t>(kFrames));
  std::int64_t prev_id = -1;
  for (const Value& f : frames) {
    EXPECT_EQ(f.string_or("label", ""), "radar/process_frame");
    EXPECT_GT(f.number_or("total_us", 0.0), 0.0);
    EXPECT_GT(f.number_or("trace_id", 0.0), 0.0);
    const std::int64_t id =
        static_cast<std::int64_t>(f.number_or("frame_id", -1));
    EXPECT_GT(id, prev_id) << "frame ids must increase";
    prev_id = id;
    const Value* stages = f.find("stages");
    ASSERT_NE(stages, nullptr);
    ASSERT_TRUE(stages->is_object());
    EXPECT_NE(stages->find("radar/range_fft"), nullptr);
    EXPECT_NE(stages->find("radar/doppler_fft"), nullptr);
    double stage_us = 0.0;
    for (const auto& [name, s] : stages->as_object()) {
      EXPECT_GE(s.number_or("count", 0.0), 1.0) << name;
      stage_us += s.number_or("us", 0.0);
    }
    EXPECT_GT(stage_us, 0.0);
  }
}

TEST(FrameRecords, FlightRingCarriesFrameNotes) {
  ObsGuard guard;
  const std::string ring = temp_path("frame_notes.ring");
  fs::remove(ring);
  obs::FlightConfig fc;
  fc.path = ring;
  ASSERT_TRUE(obs::set_flight(fc));
  with_threads(1, run_process_frame);
  obs::stop_flight();
  std::string error;
  const std::string rendered = obs::flight_render_file(ring, &error);
  fs::remove(ring);
  ASSERT_FALSE(rendered.empty()) << error;
  EXPECT_NE(rendered.find("frame "), std::string::npos)
      << "no per-frame note in flight ring";
  EXPECT_NE(rendered.find("worst="), std::string::npos);
}

// ---------------------------------------------------------------------
// PMU: whichever way perf_event resolves on this host, the run works.

TEST(Pmu, EnabledRunWorksWithOrWithoutHardwareCounters) {
  ObsGuard guard;
  obs::set_pmu_enabled(true);
  EXPECT_TRUE(obs::pmu_enabled());
  EXPECT_TRUE(obs::metrics_enabled()) << "MMHAND_PMU implies metrics";
  with_threads(2, run_process_frame);
  const std::string snapshot = obs::metrics_json();
  if (obs::pmu_available()) {
    // Hardware counters opened: per-stage aggregates must exist.
    EXPECT_NE(snapshot.find("pmu/"), std::string::npos);
    EXPECT_NE(snapshot.find(".cycles"), std::string::npos);
  } else {
    // Graceful clock-only degradation: no partial pmu counters, and the
    // wall-clock histograms are still there.
    EXPECT_EQ(snapshot.find("pmu/"), std::string::npos);
    EXPECT_NE(snapshot.find("radar/range_fft"), std::string::npos);
  }
}

TEST(Pmu, EventNamesAreStable) {
  ASSERT_EQ(obs::kPmuEvents, 5);
  EXPECT_STREQ(obs::pmu_event_name(0), "cycles");
  EXPECT_STREQ(obs::pmu_event_name(1), "instructions");
  EXPECT_STREQ(obs::pmu_event_name(4), "branch_misses");
  EXPECT_STREQ(obs::pmu_event_name(5), "");
  EXPECT_STREQ(obs::pmu_event_name(-1), "");
}

// ---------------------------------------------------------------------
// The load-bearing contract: tracing + PMU change nothing numerically.

TEST(ProfDeterminism, BitwiseIdenticalWithTracingAndPmuOnVsOff) {
  for (const int threads : {1, 4}) {
    const auto plain = with_threads(threads, run_process_frame);
    std::vector<float> profiled;
    {
      ObsGuard guard;
      obs::set_tracing_enabled(true);
      obs::set_pmu_enabled(true);
      ASSERT_TRUE(obs::set_telemetry(manual_config()));
      profiled = with_threads(threads, run_process_frame);
      obs::clear_trace();
    }
    ASSERT_EQ(plain.size(), profiled.size());
    for (std::size_t i = 0; i < plain.size(); ++i)
      ASSERT_EQ(plain[i], profiled[i])
          << "cube cell " << i << " at " << threads << " threads";
  }
}

// ---------------------------------------------------------------------
// mmhand_top's stream parser: torn tails are benign, interior
// corruption is counted, tail attribution names the dominant stage.

TEST(TopCore, TornFinalLineIsBenign) {
  const std::string text =
      "{\"kind\": \"telemetry\", \"dt_ms\": 100}\n"
      "{\"kind\": \"telemetry\", \"dt_ms\": 100}\n"
      "{\"kind\": \"telemetry\", \"dt_";  // killed writer, no newline
  const top::ParsedStream s = top::parse_jsonl(text);
  EXPECT_EQ(s.records.size(), 2u);
  EXPECT_TRUE(s.torn_tail);
  EXPECT_EQ(s.bad_lines, 0u);
  EXPECT_FALSE(top::render_intervals(s, "t", 30).empty());
}

TEST(TopCore, InteriorCorruptionIsCountedNotFatal) {
  const std::string text =
      "{\"kind\": \"telemetry\", \"dt_ms\": 100}\n"
      "garbage not json\n"
      "{\"kind\": \"telemetry\", \"dt_ms\": 100}\n";
  const top::ParsedStream s = top::parse_jsonl(text);
  EXPECT_EQ(s.records.size(), 2u);
  EXPECT_FALSE(s.torn_tail);
  EXPECT_EQ(s.bad_lines, 1u);
  const std::string rendered = top::render_intervals(s, "t", 30);
  EXPECT_NE(rendered.find("1 unparseable interior line"),
            std::string::npos);
}

TEST(TopCore, TerminatedBadTailCountsAsCorruption) {
  const std::string text =
      "{\"kind\": \"telemetry\", \"dt_ms\": 100}\n"
      "{\"kind\": \"telemetry\", \"dt_\n";  // bad but newline-terminated
  const top::ParsedStream s = top::parse_jsonl(text);
  EXPECT_EQ(s.records.size(), 1u);
  EXPECT_FALSE(s.torn_tail);
  EXPECT_EQ(s.bad_lines, 1u);
}

TEST(TopCore, TailAttributionNamesTheDominantStage) {
  // 18 fast frames dominated by stage a, two huge frames dominated by
  // stage b: nearest-rank p95 of 20 samples is the 19th, so the p95+
  // set is exactly the two slow frames.
  std::string text;
  for (int i = 0; i < 18; ++i)
    text += "{\"kind\": \"frame\", \"frame_id\": " + std::to_string(i) +
            ", \"label\": \"radar/process_frame\", \"total_us\": 100, "
            "\"stages\": {\"a\": {\"us\": 80, \"count\": 1}, "
            "\"b\": {\"us\": 20, \"count\": 1}}}\n";
  for (int i = 18; i < 20; ++i)
    text += "{\"kind\": \"frame\", \"frame_id\": " + std::to_string(i) +
            ", \"label\": \"radar/process_frame\", \"total_us\": 1000, "
            "\"stages\": {\"a\": {\"us\": 100, \"count\": 1}, "
            "\"b\": {\"us\": 900, \"count\": 1}}}\n";
  const top::ParsedStream s = top::parse_jsonl(text);
  ASSERT_EQ(s.records.size(), 20u);
  const std::string rendered = top::render_tail(s, "t");
  EXPECT_NE(rendered.find("radar/process_frame"), std::string::npos);
  EXPECT_NE(rendered.find("20 frames"), std::string::npos);
  // The dominant-stage attribution of the p95+ tail names b, not a.
  EXPECT_NE(rendered.find("p95+ dominated by b"), std::string::npos);
  EXPECT_EQ(rendered.find("p95+ dominated by a"), std::string::npos);
}

TEST(TopCore, NoFrameRecordsRendersEmptyTailView) {
  const top::ParsedStream s =
      top::parse_jsonl("{\"kind\": \"telemetry\", \"dt_ms\": 100}\n");
  EXPECT_TRUE(top::render_tail(s, "t").empty());
}

}  // namespace
}  // namespace mmhand
