// Tests for the SIMD layer: ISA dispatch, scalar-vs-vector parity of
// every vectorized DSP entry point (fft/ifft/fft_real/zoom_fft/
// filtfilt_batch/magnitude) over randomized sizes, and the bitwise
// golden pin of the forced-scalar radar pipeline (DESIGN §9).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdint>
#include <cstring>
#include <vector>

#include "mmhand/common/rng.hpp"
#include "mmhand/dsp/butterworth.hpp"
#include "mmhand/dsp/fft.hpp"
#include "mmhand/dsp/spectrum.hpp"
#include "mmhand/radar/antenna_array.hpp"
#include "mmhand/radar/chirp_config.hpp"
#include "mmhand/radar/if_simulator.hpp"
#include "mmhand/radar/pipeline.hpp"
#include "mmhand/simd/simd.hpp"

namespace mmhand {
namespace {

using dsp::Complex;
using simd::Isa;

/// Restores the active ISA on scope exit so test order cannot leak a
/// forced ISA into later suites.
class IsaGuard {
 public:
  IsaGuard() : saved_(simd::active_isa()) {}
  ~IsaGuard() { simd::set_isa(saved_); }

 private:
  Isa saved_;
};

/// Best vector (non-scalar) ISA, or kScalar when the host has none.
Isa vector_isa() { return simd::best_supported_isa(); }

std::vector<Complex> random_signal(std::size_t n, Rng& rng) {
  std::vector<Complex> x(n);
  for (auto& v : x) v = Complex{rng.normal(), rng.normal()};
  return x;
}

/// Max elementwise |a-b| relative to the reference's L-inf norm.
double rel_error(const std::vector<Complex>& ref,
                 const std::vector<Complex>& got) {
  EXPECT_EQ(ref.size(), got.size());
  double scale = 0.0, err = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    scale = std::max(scale, std::abs(ref[i]));
    err = std::max(err, std::abs(ref[i] - got[i]));
  }
  return err / std::max(scale, 1e-300);
}

constexpr double kParityTol = 1e-9;

// --- dispatch -----------------------------------------------------------

TEST(SimdDispatch, ScalarAlwaysSupported) {
  EXPECT_TRUE(simd::isa_supported(Isa::kScalar));
  EXPECT_NE(simd::kernels_for(Isa::kScalar), nullptr);
  EXPECT_EQ(simd::kernels_for(Isa::kScalar)->width, 1);
}

TEST(SimdDispatch, SetIsaRoundTripsAndRejectsUnsupported) {
  IsaGuard guard;
  ASSERT_TRUE(simd::set_isa(Isa::kScalar));
  EXPECT_EQ(simd::active_isa(), Isa::kScalar);
  EXPECT_EQ(simd::kernels().width, 1);
  for (const Isa isa : {Isa::kAvx2, Isa::kNeon}) {
    if (simd::isa_supported(isa)) {
      EXPECT_TRUE(simd::set_isa(isa));
      EXPECT_EQ(simd::active_isa(), isa);
      EXPECT_GT(simd::kernels().width, 1);
    } else {
      EXPECT_FALSE(simd::set_isa(isa));
      EXPECT_NE(simd::active_isa(), isa);
    }
  }
}

TEST(SimdDispatch, BestSupportedIsSupported) {
  EXPECT_TRUE(simd::isa_supported(simd::best_supported_isa()));
}

TEST(SimdDispatch, IsaNamesAreStable) {
  EXPECT_STREQ(simd::isa_name(Isa::kScalar), "scalar");
  EXPECT_STREQ(simd::isa_name(Isa::kAvx2), "avx2");
  EXPECT_STREQ(simd::isa_name(Isa::kNeon), "neon");
}

// --- scalar-vs-vector parity --------------------------------------------

TEST(ScalarSimdParity, FftAndInverseOverPowerOfTwoSizes) {
  if (vector_isa() == Isa::kScalar) GTEST_SKIP() << "no vector ISA";
  IsaGuard guard;
  Rng rng(101);
  for (const std::size_t n : {2u, 4u, 8u, 16u, 64u, 128u, 512u}) {
    const auto x = random_signal(n, rng);
    ASSERT_TRUE(simd::set_isa(Isa::kScalar));
    const auto ref_f = dsp::fft(x);
    const auto ref_i = dsp::ifft(x);
    ASSERT_TRUE(simd::set_isa(vector_isa()));
    EXPECT_LT(rel_error(ref_f, dsp::fft(x)), kParityTol) << "fft n=" << n;
    EXPECT_LT(rel_error(ref_i, dsp::ifft(x)), kParityTol) << "ifft n=" << n;
  }
}

TEST(ScalarSimdParity, RealInputFft) {
  if (vector_isa() == Isa::kScalar) GTEST_SKIP() << "no vector ISA";
  IsaGuard guard;
  Rng rng(102);
  // Power-of-two sizes hit the packed real-FFT specialization; 6 and 12
  // exercise the generic fallback under a vector ISA.
  for (const std::size_t n : {4u, 6u, 8u, 12u, 64u, 256u}) {
    std::vector<double> x(n);
    for (auto& v : x) v = rng.normal();
    ASSERT_TRUE(simd::set_isa(Isa::kScalar));
    const auto ref = dsp::fft_real(x);
    ASSERT_TRUE(simd::set_isa(vector_isa()));
    EXPECT_LT(rel_error(ref, dsp::fft_real(x)), kParityTol) << "n=" << n;
  }
}

TEST(ScalarSimdParity, ZoomFftNonPowerOfTwoBins) {
  if (vector_isa() == Isa::kScalar) GTEST_SKIP() << "no vector ISA";
  IsaGuard guard;
  Rng rng(103);
  const struct {
    std::size_t n, bins;
    double f_lo, f_hi;
  } cases[] = {
      {5, 7, -0.2, 0.2},   {16, 16, 0.05, 0.25}, {60, 24, -0.4, 0.4},
      {64, 33, 0.0, 0.5},  {64, 16, -0.083, 0.083},
  };
  for (const auto& c : cases) {
    const auto x = random_signal(c.n, rng);
    ASSERT_TRUE(simd::set_isa(Isa::kScalar));
    const auto ref = dsp::zoom_fft(x, c.f_lo, c.f_hi, c.bins);
    ASSERT_TRUE(simd::set_isa(vector_isa()));
    EXPECT_LT(rel_error(ref, dsp::zoom_fft(x, c.f_lo, c.f_hi, c.bins)),
              kParityTol)
        << "n=" << c.n << " bins=" << c.bins;
  }
}

TEST(ScalarSimdParity, FiltfiltBatchOddChannelCounts) {
  if (vector_isa() == Isa::kScalar) GTEST_SKIP() << "no vector ISA";
  IsaGuard guard;
  const auto filt = dsp::butterworth_bandpass(4, 0.05, 0.35, 1.0);
  Rng rng(104);
  // Odd counts leave partially-filled lane blocks; len 9 forces the
  // pad < 3*(2*nsec+1) clamp.
  for (const std::size_t count : {1u, 3u, 5u, 12u}) {
    for (const std::size_t len : {9u, 64u}) {
      const auto orig = random_signal(len * count, rng);
      auto scalar_out = orig;
      ASSERT_TRUE(simd::set_isa(Isa::kScalar));
      filt.filtfilt_batch(scalar_out.data(), len, count);
      auto simd_out = orig;
      ASSERT_TRUE(simd::set_isa(vector_isa()));
      filt.filtfilt_batch(simd_out.data(), len, count);
      EXPECT_LT(rel_error(scalar_out, simd_out), kParityTol)
          << "count=" << count << " len=" << len;
    }
  }
}

TEST(ScalarSimdParity, FiltfiltBatchScalarMatchesPerSignalFiltfilt) {
  // The scalar batch path must be the literal per-signal loop: bitwise.
  IsaGuard guard;
  ASSERT_TRUE(simd::set_isa(Isa::kScalar));
  const auto filt = dsp::butterworth_bandpass(4, 0.05, 0.35, 1.0);
  Rng rng(105);
  const std::size_t len = 64, count = 12;
  const auto orig = random_signal(len * count, rng);
  auto batch = orig;
  filt.filtfilt_batch(batch.data(), len, count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto ref = filt.filtfilt(
        std::span<const Complex>(orig.data() + i * len, len));
    for (std::size_t t = 0; t < len; ++t) {
      EXPECT_EQ(ref[t].real(), batch[i * len + t].real());
      EXPECT_EQ(ref[t].imag(), batch[i * len + t].imag());
    }
  }
}

TEST(ScalarSimdParity, MagnitudeMatchesStdAbs) {
  if (vector_isa() == Isa::kScalar) GTEST_SKIP() << "no vector ISA";
  IsaGuard guard;
  Rng rng(106);
  const auto x = random_signal(37, rng);  // odd: exercises the tail loop
  ASSERT_TRUE(simd::set_isa(vector_isa()));
  const auto mags = dsp::magnitude(x);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(mags[i], std::abs(x[i]), 1e-12 + 1e-9 * std::abs(x[i]));
}

// --- forced-scalar pipeline golden --------------------------------------

/// FNV-1a over the float bit patterns of the radar cube.
std::uint64_t cube_hash(const std::vector<float>& data) {
  std::uint64_t h = 1469598103934665603ull;
  for (const float v : data) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int b = 0; b < 4; ++b) {
      h ^= (bits >> (8 * b)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  return h;
}

TEST(ScalarGolden, PipelineCubeIsBitwiseIdenticalToPreSimd) {
  // Hash captured from the pre-SIMD implementation on this exact scene
  // (commit before the simd/ layer landed).  MMHAND_SIMD=scalar promises
  // bitwise identity with that build — any drift here is a contract
  // violation, not a tolerance issue.
  IsaGuard guard;
  ASSERT_TRUE(simd::set_isa(Isa::kScalar));
  radar::ChirpConfig chirp;
  chirp.noise_stddev = 0.0;
  const radar::AntennaArray array(chirp);
  const radar::IfSimulator sim(chirp, array);
  const radar::RadarPipeline pipe(chirp, array, radar::PipelineConfig{});
  radar::Scene scene{
      {Vec3{0.05, 0.30, 0.02}, Vec3{0.0, 0.4, 0.0}, 1.0},
      {Vec3{-0.08, 0.45, -0.01}, Vec3{0.0, -0.2, 0.0}, 0.7},
  };
  Rng rng(11);
  const auto frame = sim.simulate_frame(scene, 0.0, rng);
  const auto cube = pipe.process_frame(frame);
  ASSERT_EQ(cube.data().size(), 9216u);
  EXPECT_EQ(cube_hash(cube.data()), 0x110a873cc75a1e10ull);
}

TEST(VectorPipeline, CubeMatchesScalarWithinTolerance) {
  if (vector_isa() == Isa::kScalar) GTEST_SKIP() << "no vector ISA";
  IsaGuard guard;
  radar::ChirpConfig chirp;
  chirp.noise_stddev = 0.0;
  const radar::AntennaArray array(chirp);
  const radar::IfSimulator sim(chirp, array);
  const radar::RadarPipeline pipe(chirp, array, radar::PipelineConfig{});
  radar::Scene scene{
      {Vec3{0.05, 0.30, 0.02}, Vec3{0.0, 0.4, 0.0}, 1.0},
      {Vec3{-0.08, 0.45, -0.01}, Vec3{0.0, -0.2, 0.0}, 0.7},
  };
  Rng rng(11);
  const auto frame = sim.simulate_frame(scene, 0.0, rng);
  ASSERT_TRUE(simd::set_isa(Isa::kScalar));
  const auto ref = pipe.process_frame(frame);
  ASSERT_TRUE(simd::set_isa(vector_isa()));
  const auto got = pipe.process_frame(frame);
  ASSERT_EQ(ref.data().size(), got.data().size());
  float scale = 0.0f;
  for (const float v : ref.data()) scale = std::max(scale, std::abs(v));
  for (std::size_t i = 0; i < ref.data().size(); ++i)
    EXPECT_NEAR(ref.data()[i], got.data()[i], 1e-6f * scale) << "cell " << i;
}

}  // namespace
}  // namespace mmhand
