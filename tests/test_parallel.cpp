// Determinism of the parallel execution layer: the radar pipeline and the
// GEMM-backed NN layers must produce bitwise-identical results at any
// thread count, because parallel_for only partitions disjoint output
// slices and never reorders a reduction.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "mmhand/common/parallel.hpp"
#include "mmhand/common/rng.hpp"
#include "mmhand/nn/conv2d.hpp"
#include "mmhand/nn/linear.hpp"
#include "mmhand/nn/lstm.hpp"
#include "mmhand/radar/antenna_array.hpp"
#include "mmhand/radar/chirp_config.hpp"
#include "mmhand/radar/if_simulator.hpp"
#include "mmhand/radar/pipeline.hpp"

namespace mmhand {
namespace {

/// Runs `fn` with the pool pinned to `threads`, restoring the previous
/// setting afterwards.
template <typename Fn>
auto with_threads(int threads, Fn&& fn) {
  const int prev = num_threads();
  set_num_threads(threads);
  auto result = fn();
  set_num_threads(prev);
  return result;
}

std::vector<float> run_process_frame() {
  radar::ChirpConfig chirp;
  chirp.noise_stddev = 0.0;
  const radar::AntennaArray array(chirp);
  const radar::IfSimulator sim(chirp, array);
  const radar::PipelineConfig pc;
  const radar::RadarPipeline pipe(chirp, array, pc);

  radar::Scene scene{
      {Vec3{0.05, 0.30, 0.02}, Vec3{0.0, 0.4, 0.0}, 1.0},
      {Vec3{-0.08, 0.45, -0.01}, Vec3{0.0, -0.2, 0.0}, 0.7},
  };
  Rng rng(11);
  const auto frame = sim.simulate_frame(scene, 0.0, rng);
  return pipe.process_frame(frame).data();
}

TEST(ParallelDeterminism, ProcessFrameBitwiseEqualAcrossThreadCounts) {
  const auto serial = with_threads(1, run_process_frame);
  const auto threaded = with_threads(4, run_process_frame);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    ASSERT_EQ(serial[i], threaded[i]) << "cube cell " << i;
}

struct ConvResult {
  std::vector<float> y, grad_in, dw, db;
};

ConvResult run_conv() {
  Rng rng(42);
  nn::Conv2d conv(3, 8, 3, 1, 1, rng);
  const nn::Tensor x = nn::Tensor::randn({2, 3, 16, 16}, rng, 1.0);
  const nn::Tensor y = conv.forward(x, /*training=*/true);
  const nn::Tensor g = nn::Tensor::randn(y.shape(), rng, 1.0);
  const nn::Tensor grad_in = conv.backward(g);
  const auto params = conv.parameters();
  return {y.vec(), grad_in.vec(), params[0]->grad.vec(),
          params[1]->grad.vec()};
}

TEST(ParallelDeterminism, Conv2dForwardBackwardBitwiseEqual) {
  const ConvResult serial = with_threads(1, run_conv);
  const ConvResult threaded = with_threads(4, run_conv);
  EXPECT_EQ(serial.y, threaded.y);
  EXPECT_EQ(serial.grad_in, threaded.grad_in);
  EXPECT_EQ(serial.dw, threaded.dw);
  EXPECT_EQ(serial.db, threaded.db);
}

std::tuple<std::vector<float>, std::vector<float>> run_linear() {
  Rng rng(7);
  nn::Linear fc(64, 48, rng);
  const nn::Tensor x = nn::Tensor::randn({32, 64}, rng, 1.0);
  const nn::Tensor y = fc.forward(x, /*training=*/true);
  const nn::Tensor grad_in = fc.backward(y);
  return {y.vec(), grad_in.vec()};
}

TEST(ParallelDeterminism, LinearBitwiseEqual) {
  EXPECT_EQ(with_threads(1, run_linear), with_threads(4, run_linear));
}

std::vector<float> run_lstm() {
  Rng rng(9);
  nn::Lstm lstm(24, 32, rng);
  const nn::Tensor x = nn::Tensor::randn({16, 24}, rng, 1.0);
  return lstm.forward(x, /*training=*/false).vec();
}

TEST(ParallelDeterminism, LstmForwardBitwiseEqual) {
  EXPECT_EQ(with_threads(1, run_lstm), with_threads(4, run_lstm));
}

}  // namespace
}  // namespace mmhand
