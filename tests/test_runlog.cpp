// Tests for the run-record subsystem: JSONL validity of what the trainer
// emits, the numerical-health watchdog (warn counts, fatal throws), and
// the bitwise-noninterference guarantee (training outputs identical with
// the run log on or off).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "mmhand/common/json.hpp"
#include "mmhand/hand/kinematics.hpp"
#include "mmhand/nn/optimizer.hpp"
#include "mmhand/nn/tensor_stats.hpp"
#include "mmhand/obs/obs.hpp"
#include "mmhand/pose/trainer.hpp"

namespace mmhand {
namespace {

/// Restores run-log and watchdog globals on scope exit so tests cannot
/// leak state into each other.
struct ObsStateGuard {
  ~ObsStateGuard() {
    obs::set_run_log_enabled(false);
    obs::reset_run_log();
    obs::set_numeric_check_mode(obs::NumericCheckMode::kOff);
  }
};

nn::Tensor random_tensor(std::vector<int> shape, Rng& rng) {
  nn::Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

/// Tiny network geometry so training tests run in milliseconds (mirrors
/// tests/test_pose.cpp).
pose::PoseNetConfig tiny_config() {
  pose::PoseNetConfig cfg;
  cfg.segment_frames = 1;
  cfg.sequence_segments = 2;
  cfg.velocity_bins = 4;
  cfg.range_bins = 8;
  cfg.angle_bins = 8;
  cfg.feature_dim = 24;
  cfg.lstm_hidden = 16;
  cfg.spacenet.stem_channels = 4;
  cfg.spacenet.block1_channels = 6;
  cfg.spacenet.block2_channels = 6;
  return cfg;
}

std::vector<pose::PoseSample> tiny_samples(const pose::PoseNetConfig& cfg,
                                           std::uint64_t seed) {
  hand::HandPose pose;
  const auto base_joints =
      hand::forward_kinematics(hand::HandProfile::reference(), pose);
  Rng rng(seed);
  std::vector<pose::PoseSample> samples;
  for (int k = 0; k < 3; ++k) {
    pose::PoseSample s;
    s.input = random_tensor({cfg.frames_per_sample(), cfg.velocity_bins,
                             cfg.range_bins, cfg.angle_bins},
                            rng);
    s.labels = nn::Tensor({cfg.sequence_segments, 63});
    for (int row = 0; row < cfg.sequence_segments; ++row)
      for (int j = 0; j < hand::kNumJoints; ++j) {
        const Vec3 p = base_joints[static_cast<std::size_t>(j)];
        s.labels.at(row, 3 * j) = static_cast<float>(p.x + 0.01 * k);
        s.labels.at(row, 3 * j + 1) = static_cast<float>(p.y);
        s.labels.at(row, 3 * j + 2) = static_cast<float>(p.z);
      }
    s.oracle = s.labels;
    samples.push_back(std::move(s));
  }
  return samples;
}

std::vector<json::Value> parse_jsonl_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::vector<json::Value> records;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::string error;
    json::Value v = json::Value::parse(line, &error);
    EXPECT_TRUE(error.empty()) << error << " in line: " << line;
    EXPECT_TRUE(v.is_object()) << line;
    records.push_back(std::move(v));
  }
  return records;
}

TEST(Json, ParsesEmittedRecordShapes) {
  std::string error;
  const json::Value v = json::Value::parse(
      R"({"kind": "epoch", "loss": 0.5, "nested": {"a": [1, -2.5e3, true]},)"
      R"( "name": "linéar \"w\""})",
      &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(v.string_or("kind", ""), "epoch");
  EXPECT_DOUBLE_EQ(v.number_or("loss", 0.0), 0.5);
  const json::Value* nested = v.find("nested");
  ASSERT_NE(nested, nullptr);
  const json::Value* arr = nested->find("a");
  ASSERT_NE(arr, nullptr);
  ASSERT_EQ(arr->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(arr->as_array()[1].as_number(), -2500.0);
  EXPECT_TRUE(arr->as_array()[2].as_bool());
  EXPECT_EQ(v.string_or("name", ""), "lin\xC3\xA9"
                                     "ar \"w\"");
}

TEST(Json, RejectsMalformedInput) {
  for (const char* bad : {"{", "[1,]", "{\"a\": }", "tru", "1 2", ""}) {
    std::string error;
    json::Value::parse(bad, &error);
    EXPECT_FALSE(error.empty()) << "accepted: " << bad;
  }
}

TEST(RunRecord, EmitsParseableJsonIncludingNonFinite) {
  obs::RunRecord rec("unit");
  rec.field("i", 42)
      .field("pi", 3.25)
      .field("flag", true)
      .field("bad", std::nan(""))
      .field("big", std::numeric_limits<double>::infinity())
      .field("text", "quote \" backslash \\ newline \n done")
      .raw("vec", "[1, 2, 3]");
  std::string error;
  const json::Value v = json::Value::parse(rec.json(), &error);
  ASSERT_TRUE(error.empty()) << error << ": " << rec.json();
  EXPECT_EQ(v.string_or("kind", ""), "unit");
  EXPECT_DOUBLE_EQ(v.number_or("i", 0.0), 42.0);
  EXPECT_DOUBLE_EQ(v.number_or("pi", 0.0), 3.25);
  // Non-finite numbers are encoded as strings so lines stay legal JSON.
  EXPECT_EQ(v.string_or("bad", ""), "NaN");
  EXPECT_EQ(v.string_or("big", ""), "Inf");
  EXPECT_EQ(v.string_or("text", ""), "quote \" backslash \\ newline \n done");
  const json::Value* vec = v.find("vec");
  ASSERT_NE(vec, nullptr);
  ASSERT_TRUE(vec->is_array());
  EXPECT_EQ(vec->as_array().size(), 3u);
  EXPECT_TRUE(v.find("t_ms") != nullptr);
}

TEST(RunLog, TrainingEmitsManifestEpochsAndStats) {
  ObsStateGuard guard;
  const std::string path = ::testing::TempDir() + "/runlog_train.jsonl";
  std::remove(path.c_str());
  obs::reset_run_log();
  obs::set_run_log_path(path);
  ASSERT_TRUE(obs::runlog_enabled());

  const auto cfg = tiny_config();
  Rng rng(21);
  pose::HandJointRegressor model(cfg, rng);
  pose::TrainConfig tc;
  tc.epochs = 3;
  tc.batch_size = 2;
  const auto samples = tiny_samples(cfg, 22);
  pose::train_pose_model(model, samples, tc);

  obs::set_run_log_enabled(false);
  const auto records = parse_jsonl_file(path);
  ASSERT_GE(records.size(), 4u);  // manifest + 3 epochs

  const json::Value& manifest = records.front();
  EXPECT_EQ(manifest.string_or("kind", ""), "manifest");
  EXPECT_EQ(manifest.string_or("run", ""), "train_pose_model");
  EXPECT_DOUBLE_EQ(manifest.number_or("epochs", 0.0), 3.0);
  EXPECT_DOUBLE_EQ(manifest.number_or("samples", 0.0), 3.0);
  EXPECT_GT(manifest.number_or("param_count", 0.0), 0.0);
  EXPECT_GE(manifest.number_or("threads", -1.0), 1.0);

  int epochs_seen = 0;
  for (const json::Value& r : records) {
    if (r.string_or("kind", "") != "epoch") continue;
    EXPECT_DOUBLE_EQ(r.number_or("epoch", -1.0), epochs_seen);
    ++epochs_seen;
    EXPECT_GT(r.number_or("loss", -1.0), 0.0);
    EXPECT_GT(r.number_or("lr_scale", -1.0), 0.0);
    // Gradient norm of the final accumulated batch must be present and
    // finite on a healthy run.
    EXPECT_GT(r.number_or("grad_norm", -1.0), 0.0);
    // Per-parameter-group stats with nan/inf counts.
    const json::Value* params = r.find("params");
    ASSERT_NE(params, nullptr);
    ASSERT_TRUE(params->is_object());
    EXPECT_FALSE(params->as_object().empty());
    for (const auto& [name, group] : params->as_object()) {
      for (const char* which : {"weight", "grad"}) {
        const json::Value* stats = group.find(which);
        ASSERT_NE(stats, nullptr) << name << "." << which;
        EXPECT_DOUBLE_EQ(stats->number_or("nan", -1.0), 0.0);
        EXPECT_DOUBLE_EQ(stats->number_or("inf", -1.0), 0.0);
        EXPECT_GT(stats->number_or("count", 0.0), 0.0);
        EXPECT_GE(stats->number_or("rms", -1.0), 0.0);
      }
    }
  }
  EXPECT_EQ(epochs_seen, 3);
}

TEST(NumericWatchdog, WarnModeCountsNanGradients) {
  ObsStateGuard guard;
  obs::set_numeric_check_mode(obs::NumericCheckMode::kWarn);
  ASSERT_TRUE(obs::numeric_check_enabled());

  nn::Parameter p(nn::Tensor::zeros({4}), "unit.weight");
  p.grad[0] = std::numeric_limits<float>::quiet_NaN();
  p.grad[1] = 1.0f;
  nn::Adam opt({&p});

  const std::int64_t before = obs::numeric_anomaly_count();
  EXPECT_NO_THROW(opt.step());
  EXPECT_GT(obs::numeric_anomaly_count(), before);
}

TEST(NumericWatchdog, WarnModeCountsInfParameters) {
  ObsStateGuard guard;
  obs::set_numeric_check_mode(obs::NumericCheckMode::kWarn);

  nn::Parameter p(nn::Tensor::zeros({4}), "unit.weight");
  p.value[2] = std::numeric_limits<float>::infinity();
  p.grad[0] = 0.5f;
  nn::Adam opt({&p});

  const std::int64_t before = obs::numeric_anomaly_count();
  EXPECT_NO_THROW(opt.step());
  EXPECT_GT(obs::numeric_anomaly_count(), before);
}

TEST(NumericWatchdog, FatalModeThrowsOnNanGradient) {
  ObsStateGuard guard;
  obs::set_numeric_check_mode(obs::NumericCheckMode::kFatal);

  nn::Parameter p(nn::Tensor::zeros({4}), "unit.weight");
  p.grad[0] = std::numeric_limits<float>::quiet_NaN();
  nn::Adam opt({&p});
  EXPECT_THROW(opt.step(), Error);
}

TEST(NumericWatchdog, OffModeIgnoresNan) {
  ObsStateGuard guard;
  obs::set_numeric_check_mode(obs::NumericCheckMode::kOff);

  nn::Parameter p(nn::Tensor::zeros({4}), "unit.weight");
  p.grad[0] = std::numeric_limits<float>::quiet_NaN();
  nn::Adam opt({&p});
  const std::int64_t before = obs::numeric_anomaly_count();
  EXPECT_NO_THROW(opt.step());
  EXPECT_EQ(obs::numeric_anomaly_count(), before);
}

TEST(NumericWatchdog, CheckFiniteScalar) {
  ObsStateGuard guard;
  obs::set_numeric_check_mode(obs::NumericCheckMode::kWarn);
  EXPECT_TRUE(obs::check_finite_scalar("unit/test", 1.5, "ok"));
  const std::int64_t before = obs::numeric_anomaly_count();
  EXPECT_FALSE(obs::check_finite_scalar("unit/test", std::nan(""), "bad"));
  EXPECT_FALSE(obs::check_finite_scalar(
      "unit/test", std::numeric_limits<double>::infinity(), "bad"));
  EXPECT_EQ(obs::numeric_anomaly_count(), before + 2);
}

TEST(TensorStats, CountsAndMoments) {
  nn::Tensor t({6});
  t[0] = 1.0f;
  t[1] = -3.0f;
  t[2] = std::numeric_limits<float>::quiet_NaN();
  t[3] = std::numeric_limits<float>::infinity();
  t[4] = 2.0f;
  t[5] = 0.0f;
  const auto s = nn::tensor_stats(t);
  EXPECT_EQ(s.count, 6u);
  EXPECT_EQ(s.nan_count, 1u);
  EXPECT_EQ(s.inf_count, 1u);
  EXPECT_FALSE(s.all_finite());
  EXPECT_DOUBLE_EQ(s.min, -3.0);
  EXPECT_DOUBLE_EQ(s.max, 2.0);
  // rms over the 4 finite values: sqrt((1+9+4+0)/4)
  EXPECT_NEAR(s.rms, std::sqrt(14.0 / 4.0), 1e-12);
}

TEST(RunLog, DoesNotPerturbTraining) {
  // The acceptance bar for the whole subsystem: a run with MMHAND_RUN_LOG
  // and the watchdog on must be bitwise identical to a run without.
  ObsStateGuard guard;
  const auto cfg = tiny_config();
  const auto samples = tiny_samples(cfg, 31);
  pose::TrainConfig tc;
  tc.epochs = 4;
  tc.batch_size = 2;

  obs::set_run_log_enabled(false);
  obs::set_numeric_check_mode(obs::NumericCheckMode::kOff);
  Rng rng_off(30);
  pose::HandJointRegressor plain(cfg, rng_off);
  const auto stats_off = pose::train_pose_model(plain, samples, tc);

  const std::string path = ::testing::TempDir() + "/runlog_determinism.jsonl";
  std::remove(path.c_str());
  obs::reset_run_log();
  obs::set_run_log_path(path);
  obs::set_numeric_check_mode(obs::NumericCheckMode::kWarn);
  Rng rng_on(30);
  pose::HandJointRegressor logged(cfg, rng_on);
  const auto stats_on = pose::train_pose_model(logged, samples, tc);
  obs::set_run_log_enabled(false);
  obs::set_numeric_check_mode(obs::NumericCheckMode::kOff);

  ASSERT_EQ(stats_off.epoch_loss.size(), stats_on.epoch_loss.size());
  for (std::size_t e = 0; e < stats_off.epoch_loss.size(); ++e)
    EXPECT_EQ(stats_off.epoch_loss[e], stats_on.epoch_loss[e]) << "epoch " << e;

  for (const auto& sample : samples) {
    const nn::Tensor a = pose::predict_sample(plain, sample);
    const nn::Tensor b = pose::predict_sample(logged, sample);
    ASSERT_EQ(a.numel(), b.numel());
    for (std::size_t i = 0; i < a.numel(); ++i)
      EXPECT_EQ(a[i], b[i]) << "prediction diverged at " << i;
  }

  // And the instrumented run really did log.
  const auto records = parse_jsonl_file(path);
  ASSERT_FALSE(records.empty());
  EXPECT_EQ(records.front().string_or("kind", ""), "manifest");
}

}  // namespace
}  // namespace mmhand
