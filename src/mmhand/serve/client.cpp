#include "mmhand/serve/client.hpp"

#include "mmhand/fault/fault.hpp"
#include "mmhand/serve/backoff.hpp"

namespace mmhand::serve {

SimClient::SimClient(Server& server, const sim::Recording& recording,
                     ClientConfig config)
    : server_(server), recording_(recording), config_(config) {
  MMHAND_CHECK(!recording_.frames.empty(), "SimClient needs frames");
  MMHAND_CHECK(config_.frames_per_tick >= 1 && config_.tick_ms > 0.0,
               "SimClient config");
  (void)try_join();
}

void SimClient::poll_results() {
  if (!have_session_) return;
  static thread_local std::vector<WindowResult> results;
  results.clear();
  server_.poll(id_, &results);
  for (const WindowResult& r : results) {
    switch (r.disposition) {
      case Disposition::kCompleted:
        ++stats_.completed;
        break;
      case Disposition::kShed:
        ++stats_.shed;
        break;
      case Disposition::kDeadlineMissed:
        ++stats_.missed;
        break;
    }
  }
}

bool SimClient::try_join() {
  const JoinResult j = server_.join();
  if (j.admitted) {
    id_ = j.id;
    have_session_ = true;
    attempt_ = 0;
    next_try_ms_ = now_ms_;
    return true;
  }
  ++stats_.join_failures;
  next_try_ms_ =
      now_ms_ + backoff_delay_ms(config_.seed, id_ + 1, attempt_,
                                 config_.base_ms, config_.cap_ms,
                                 j.retry_after_ms);
  ++attempt_;
  return false;
}

bool SimClient::offer_frame() {
  const radar::RadarCube& cube =
      recording_.frames[cursor_ % recording_.frames.size()].cube;
  ++stats_.submitted;
  if (attempt_ > 0) ++stats_.retries;
  const SubmitResult r = server_.submit(id_, cube);
  if (r.accepted) {
    ++cursor_;
    ++stats_.accepted;
    attempt_ = 0;
    return true;
  }
  if (r.session_unknown) {
    // The server forgot us (e.g. it was torn down and rebuilt around a
    // live client): rejoin on a later tick.
    have_session_ = false;
    return false;
  }
  ++stats_.rejected;
  next_try_ms_ =
      now_ms_ + backoff_delay_ms(config_.seed, id_, attempt_,
                                 config_.base_ms, config_.cap_ms,
                                 r.retry_after_ms);
  ++attempt_;
  return false;
}

void SimClient::tick() {
  now_ms_ += config_.tick_ms;
  poll_results();

  if (stall_left_ > 0) {
    --stall_left_;
    return;
  }
  if (fault::should_inject(fault::Kind::kStall)) {
    stall_left_ = 1 + static_cast<int>(
                          fault::draw_u64(fault::Kind::kStall) %
                          static_cast<std::uint64_t>(
                              config_.stall_ticks_max));
    ++stats_.stalls;
    return;
  }
  if (have_session_ && fault::should_inject(fault::Kind::kChurn)) {
    server_.leave(id_);
    have_session_ = false;
    ++stats_.churns;
    // Partial-window frames died with the session; rejoin below starts
    // a fresh window, exactly like a reconnecting capture rig.
  }
  if (now_ms_ < next_try_ms_) return;  // backing off
  if (!have_session_ && !try_join()) return;

  int frames = config_.frames_per_tick;
  if (fault::should_inject(fault::Kind::kBurst)) {
    frames += config_.burst_frames;
    ++stats_.bursts;
  }
  for (int f = 0; f < frames; ++f)
    if (!offer_frame()) break;
}

void SimClient::finish() {
  poll_results();
  if (have_session_) {
    server_.leave(id_);
    have_session_ = false;
  }
}

}  // namespace mmhand::serve
