#include "mmhand/serve/server.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <string>
#include <utility>

#include "mmhand/obs/obs.hpp"
#include "mmhand/pose/samples.hpp"

namespace mmhand::serve {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Per-session latency histograms, folded onto a bounded set of slots
/// so session churn cannot grow the metrics registry without bound.
constexpr int kSessionSlots = 32;

obs::Histogram& slot_histogram(SessionId id) {
  static std::array<obs::Histogram*, kSessionSlots> slots = [] {
    std::array<obs::Histogram*, kSessionSlots> a{};
    for (int i = 0; i < kSessionSlots; ++i) {
      a[static_cast<std::size_t>(i)] = &obs::histogram(
          "serve/e2e/s" + std::to_string(i / 10) + std::to_string(i % 10));
    }
    return a;
  }();
  return *slots[id % kSessionSlots];
}

struct ServeCounters {
  obs::Counter& admitted = obs::counter("serve/admitted");
  obs::Counter& rejected = obs::counter("serve/rejected");
  obs::Counter& shed = obs::counter("serve/shed");
  obs::Counter& deadline_missed = obs::counter("serve/deadline_missed");
  obs::Counter& degraded = obs::counter("serve/degraded");
  obs::Counter& completed = obs::counter("serve/completed");
  obs::Counter& batches = obs::counter("serve/batches");
  obs::Gauge& sessions = obs::gauge("serve/sessions");
  obs::Gauge& queue_depth = obs::gauge("serve/queue_depth");
  obs::Gauge& inflight = obs::gauge("serve/inflight");
  obs::Gauge& tier = obs::gauge("serve/tier");
  obs::Histogram& e2e = obs::histogram("serve/e2e");
};

ServeCounters& counters() {
  static ServeCounters c;
  return c;
}

}  // namespace

Server::Server(const ServeConfig& config, pose::HandJointRegressor& model,
               Options options)
    : config_([&] {
        config.validate();
        return config;
      }()),
      model_(model),
      options_(options),
      frames_per_window_(model.config().frames_per_sample()),
      frame_elems_(static_cast<std::size_t>(model.config().velocity_bins) *
                   static_cast<std::size_t>(model.config().range_bins) *
                   static_cast<std::size_t>(model.config().angle_bins)) {
  // Serving mode is steady-state by definition: with the tensor pool
  // on, every per-batch activation tensor recycles a parked buffer, so
  // the batched NN step settles to zero allocations (gated by
  // mmhand_purity_probe).  The pool is process-global and sticky —
  // values are unchanged either way.
  nn::set_tensor_pool_enabled(true);
  if (!options_.manual_step)
    scheduler_ = std::thread([this] { scheduler_loop(); });
}

Server::~Server() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  if (scheduler_.joinable()) scheduler_.join();
}

std::uint64_t Server::now_ns() const {
  return options_.clock != nullptr ? options_.clock() : steady_now_ns();
}

double Server::pressure_locked() const {
  const std::size_t capacity =
      std::max<std::size_t>(1, sessions_.size() *
                                   static_cast<std::size_t>(config_.queue_cap));
  return static_cast<double>(ready_.size()) / static_cast<double>(capacity);
}

JoinResult Server::join() {
  std::lock_guard<std::mutex> lk(mu_);
  if (static_cast<int>(sessions_.size()) >= config_.max_sessions) {
    ++stats_.sessions_rejected;
    if (obs::metrics_enabled()) counters().rejected.add(1);
    return {false, 0, config_.retry_ms * (1.0 + pressure_locked())};
  }
  auto session = std::make_unique<Session>();
  session->id = next_id_++;
  session->window = nn::Tensor({frames_per_window_,
                                model_.config().velocity_bins,
                                model_.config().range_bins,
                                model_.config().angle_bins});
  const SessionId id = session->id;
  sessions_.emplace(id, std::move(session));
  ++stats_.sessions_admitted;
  if (obs::metrics_enabled()) {
    counters().admitted.add(1);
    counters().sessions.set(static_cast<double>(sessions_.size()));
  }
  return {true, id, 0.0};
}

void Server::leave(SessionId id) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  // Abandon the session's queued windows: nobody is left to poll them.
  ready_.erase(std::remove_if(ready_.begin(), ready_.end(),
                              [id](const ReadyWindow& w) {
                                return w.session == id;
                              }),
               ready_.end());
  sessions_.erase(it);
  ++stats_.sessions_left;
  if (obs::metrics_enabled())
    counters().sessions.set(static_cast<double>(sessions_.size()));
}

void Server::resolve_locked(Session* session, WindowResult result) {
  switch (result.disposition) {
    case Disposition::kCompleted:
      ++stats_.windows_completed;
      if (obs::metrics_enabled()) counters().completed.add(1);
      break;
    case Disposition::kShed:
      ++stats_.windows_shed;
      if (obs::metrics_enabled()) counters().shed.add(1);
      break;
    case Disposition::kDeadlineMissed:
      ++stats_.windows_missed;
      if (obs::metrics_enabled()) counters().deadline_missed.add(1);
      break;
  }
  if (result.disposition != Disposition::kShed && obs::metrics_enabled()) {
    const double us = result.e2e_ms * 1000.0;
    counters().e2e.record(us);
    if (session != nullptr) slot_histogram(session->id).record(us);
  }
  if (session != nullptr)
    session->delivered.push_back(std::move(result));
}

void Server::shed_ready_locked(std::size_t index, bool degraded) {
  ReadyWindow w = std::move(ready_[index]);
  ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(index));
  auto it = sessions_.find(w.session);
  Session* s = it == sessions_.end() ? nullptr : it->second.get();
  if (s != nullptr) --s->queued;
  if (degraded) {
    ++stats_.degraded_drops;
    if (obs::metrics_enabled()) counters().degraded.add(1);
  }
  WindowResult r;
  r.seq = w.seq;
  r.disposition = Disposition::kShed;
  r.tier = tier_;
  r.first_frame = w.first_frame;
  r.last_frame = w.last_frame;
  resolve_locked(s, std::move(r));
}

SubmitResult Server::submit(SessionId id, const radar::RadarCube& cube) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return {false, true, 0.0};
  Session& s = *it->second;

  const bool completes = s.frames_filled + 1 == frames_per_window_;
  const bool session_full = s.queued >= config_.queue_cap;
  const bool global_full =
      static_cast<int>(ready_.size()) + inflight_ >= config_.max_inflight;
  if (completes && (session_full || global_full) &&
      config_.policy == ShedPolicy::kRejectNew) {
    ++stats_.frames_rejected;
    if (obs::metrics_enabled()) counters().rejected.add(1);
    return {false, false, config_.retry_ms * (1.0 + pressure_locked())};
  }

  if (s.frames_filled == 0) s.first_frame = s.next_frame;
  write_cube_frame(cube, model_.config(),
                   s.window.data() +
                       static_cast<std::size_t>(s.frames_filled) *
                           frame_elems_);
  ++s.frames_filled;
  ++s.next_frame;
  ++stats_.frames_accepted;
  if (!completes) return {true, false, 0.0};

  // A full window.  Under the kPoseOnly tier every other window per
  // session is shed before it ever queues (half window density).
  s.frames_filled = 0;
  const std::uint64_t seq = s.next_seq++;
  if (tier_ == Tier::kPoseOnly) {
    s.drop_toggle = !s.drop_toggle;
    if (s.drop_toggle) {
      ++stats_.degraded_drops;
      if (obs::metrics_enabled()) counters().degraded.add(1);
      WindowResult r;
      r.seq = seq;
      r.disposition = Disposition::kShed;
      r.tier = tier_;
      r.first_frame = s.first_frame;
      r.last_frame = s.next_frame - 1;
      resolve_locked(&s, std::move(r));
      return {true, false, 0.0};
    }
  }

  // Bounds: shed the stalest queued window (own session first, then the
  // global head) to make room under kDropOldest.
  if (session_full || global_full) {
    std::size_t victim = ready_.size();
    if (session_full) {
      for (std::size_t i = 0; i < ready_.size(); ++i)
        if (ready_[i].session == id) {
          victim = i;
          break;
        }
    }
    if (victim == ready_.size() && !ready_.empty()) victim = 0;
    if (victim < ready_.size()) shed_ready_locked(victim, false);
  }

  ReadyWindow w;
  w.session = id;
  w.seq = seq;
  w.ready_ns = now_ns();
  w.deadline_ns =
      w.ready_ns + static_cast<std::uint64_t>(config_.deadline_ms * 1e6);
  w.first_frame = s.first_frame;
  w.last_frame = s.next_frame - 1;
  w.input = s.window;
  ready_.push_back(std::move(w));
  ++s.queued;
  stats_.max_ready_depth =
      std::max<std::uint64_t>(stats_.max_ready_depth, ready_.size());
  if (obs::metrics_enabled())
    counters().queue_depth.set(static_cast<double>(ready_.size()));
  work_cv_.notify_one();
  return {true, false, 0.0};
}

std::size_t Server::poll(SessionId id, std::vector<WindowResult>* out) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return 0;
  Session& s = *it->second;
  const std::size_t n = s.delivered.size();
  if (out != nullptr)
    for (auto& r : s.delivered) out->push_back(std::move(r));
  s.delivered.clear();
  return n;
}

void Server::tier_tick_locked() {
  const double p = pressure_locked();
  if (p > config_.shed_hi) {
    ++hi_streak_;
    lo_streak_ = 0;
    if (hi_streak_ >= config_.hold_ticks && tier_ != Tier::kPoseOnly) {
      tier_ = static_cast<Tier>(static_cast<int>(tier_) + 1);
      hi_streak_ = 0;
    }
  } else if (p < config_.shed_lo) {
    ++lo_streak_;
    hi_streak_ = 0;
    if (lo_streak_ >= config_.hold_ticks && tier_ != Tier::kFull) {
      tier_ = static_cast<Tier>(static_cast<int>(tier_) - 1);
      lo_streak_ = 0;
    }
  } else {
    hi_streak_ = 0;
    lo_streak_ = 0;
  }
  if (obs::metrics_enabled()) {
    counters().tier.set(static_cast<double>(tier_));
    counters().queue_depth.set(static_cast<double>(ready_.size()));
    counters().inflight.set(static_cast<double>(inflight_));
  }
}

int Server::expire_deadlines_locked(std::uint64_t now) {
  int expired = 0;
  // Windows enter in ready order and share one deadline offset, so the
  // expired set is always a prefix of the FIFO.
  while (!ready_.empty() && ready_.front().deadline_ns <= now) {
    ReadyWindow w = std::move(ready_.front());
    ready_.pop_front();
    auto it = sessions_.find(w.session);
    Session* s = it == sessions_.end() ? nullptr : it->second.get();
    if (s != nullptr) --s->queued;
    WindowResult r;
    r.seq = w.seq;
    r.disposition = Disposition::kDeadlineMissed;
    r.tier = tier_;
    r.e2e_ms = static_cast<double>(now - w.ready_ns) / 1e6;
    r.first_frame = w.first_frame;
    r.last_frame = w.last_frame;
    resolve_locked(s, std::move(r));
    ++expired;
  }
  return expired;
}

int Server::step() {
  std::vector<ReadyWindow> batch;
  Tier batch_tier = Tier::kFull;
  int resolved = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const std::uint64_t now = now_ns();
    tier_tick_locked();
    resolved += expire_deadlines_locked(now);
    const int take = std::min<int>(config_.batch_max,
                                   static_cast<int>(ready_.size()));
    batch.reserve(static_cast<std::size_t>(take));
    for (int i = 0; i < take; ++i) {
      ReadyWindow w = std::move(ready_.front());
      ready_.pop_front();
      auto it = sessions_.find(w.session);
      if (it != sessions_.end()) --it->second->queued;
      batch.push_back(std::move(w));
    }
    inflight_ += static_cast<int>(batch.size());
    batch_tier = tier_;
  }
  if (batch.empty()) {
    if (resolved > 0) drain_cv_.notify_all();
    return resolved;
  }

  // The batched NN step runs outside the lock: submissions keep landing
  // while the model executes.
  const int b_count = static_cast<int>(batch.size());
  const auto& pc = model_.config();
  const int segments = pc.sequence_segments;
  nn::Tensor out;
  std::vector<mesh::ReconstructionResult> meshes(
      static_cast<std::size_t>(b_count));
  std::vector<char> mesh_done(static_cast<std::size_t>(b_count), 0);
  {
    obs::FrameScope frame("serve/batch");
    MMHAND_SPAN("serve/forward_batch");
    nn::Tensor input({b_count * frames_per_window_, pc.velocity_bins,
                      pc.range_bins, pc.angle_bins});
    const std::size_t window_floats =
        static_cast<std::size_t>(frames_per_window_) * frame_elems_;
    for (int b = 0; b < b_count; ++b)
      std::copy(batch[static_cast<std::size_t>(b)].input.data(),
                batch[static_cast<std::size_t>(b)].input.data() +
                    window_floats,
                input.data() + static_cast<std::size_t>(b) * window_floats);
    out = model_.forward_batch(input, b_count);
    if (batch_tier == Tier::kFull && options_.mesh != nullptr) {
      MMHAND_SPAN("serve/mesh");
      for (int b = 0; b < b_count; ++b) {
        meshes[static_cast<std::size_t>(b)] = options_.mesh->reconstruct(
            pose::row_to_joints(out, (b + 1) * segments - 1));
        mesh_done[static_cast<std::size_t>(b)] = 1;
      }
    }
  }

  const std::uint64_t done = now_ns();
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (int b = 0; b < b_count; ++b) {
      ReadyWindow& w = batch[static_cast<std::size_t>(b)];
      WindowResult r;
      r.seq = w.seq;
      r.disposition = done > w.deadline_ns ? Disposition::kDeadlineMissed
                                           : Disposition::kCompleted;
      r.tier = batch_tier;
      nn::Tensor pose({segments, 63});
      std::copy(out.data() + static_cast<std::size_t>(b) * segments * 63,
                out.data() +
                    static_cast<std::size_t>(b + 1) * segments * 63,
                pose.data());
      r.pose = std::move(pose);
      r.mesh_done = mesh_done[static_cast<std::size_t>(b)] != 0;
      if (r.mesh_done) r.mesh = std::move(meshes[static_cast<std::size_t>(b)]);
      r.e2e_ms = static_cast<double>(done - w.ready_ns) / 1e6;
      r.first_frame = w.first_frame;
      r.last_frame = w.last_frame;
      auto it = sessions_.find(w.session);
      resolve_locked(it == sessions_.end() ? nullptr : it->second.get(),
                     std::move(r));
    }
    inflight_ -= b_count;
    ++stats_.batches;
    if (obs::metrics_enabled()) counters().batches.add(1);
    resolved += b_count;
  }
  drain_cv_.notify_all();
  return resolved;
}

void Server::drain() {
  if (options_.manual_step) {
    while (true) {
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (ready_.empty() && inflight_ == 0) return;
      }
      step();
    }
  }
  std::unique_lock<std::mutex> lk(mu_);
  work_cv_.notify_all();
  drain_cv_.wait(lk, [this] { return ready_.empty() && inflight_ == 0; });
}

void Server::scheduler_loop() {
  while (true) {
    step();
    std::unique_lock<std::mutex> lk(mu_);
    if (stop_) break;
    if (ready_.empty())
      work_cv_.wait_for(lk, std::chrono::microseconds(200));
  }
}

Tier Server::tier() const {
  std::lock_guard<std::mutex> lk(mu_);
  return tier_;
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  ServerStats s = stats_;
  s.live_sessions = static_cast<int>(sessions_.size());
  s.ready_depth = static_cast<int>(ready_.size());
  s.inflight = inflight_;
  s.tier = tier_;
  return s;
}

}  // namespace mmhand::serve
