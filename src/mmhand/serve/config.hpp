#pragma once

// Serving-layer configuration (MMHAND_SERVE=<spec>).
//
// The streaming server's overload behavior is entirely data-driven so a
// deployment can tune admission, deadlines, and shedding without a
// rebuild.  Spec grammar (comma-separated key=value pairs, any order):
//
//   MMHAND_SERVE="deadline_ms=50,max_sessions=32,queue_cap=4,policy=drop_oldest"
//
// Keys:
//   deadline_ms   per-window end-to-end deadline in milliseconds; a
//                 window still queued (or finishing) past its deadline
//                 is delivered as kDeadlineMissed (> 0)
//   max_sessions  admission watermark: join() beyond this is rejected
//                 with a RetryAfter hint (>= 1)
//   max_inflight  global cap on ready-plus-executing windows (>= 1)
//   queue_cap     per-session bound on queued ready windows (>= 1)
//   batch_max     max windows coalesced into one batched NN step (>= 1)
//   policy        load-shedding policy when a bound is hit:
//                 drop_oldest (evict the stalest queued window) or
//                 reject_new (refuse the incoming frame with RetryAfter)
//   shed_hi       queue-pressure fraction above which the degradation
//                 tier escalates (0..1, > shed_lo)
//   shed_lo       pressure below which the tier de-escalates (0..1)
//   hold          hysteresis: consecutive scheduler ticks the pressure
//                 must stay past a threshold before the tier moves
//                 (>= 1; prevents tier flapping)
//   retry_ms      base RetryAfter hint handed to rejected clients (> 0)
//   seed          u64 stream seed for client backoff jitter
//
// Unknown keys and malformed values throw mmhand::Error at parse time,
// so typos fail loudly (same contract as MMHAND_FAULT).

#include <cstdint>
#include <string>

#include "mmhand/common/error.hpp"

namespace mmhand::serve {

/// What to do with new work when a queue bound is hit.
enum class ShedPolicy {
  kDropOldest,  ///< evict the stalest queued window, accept the new one
  kRejectNew,   ///< refuse the incoming frame with a RetryAfter hint
};

/// Graceful-degradation tiers, ordered by increasing shed severity.
/// The serving layer sits downstream of the DSP pipeline, so the
/// paper-style "reduce zoom-FFT resolution" knob lives with the client
/// that produces cubes; the server-side ladder degrades what it owns:
/// first the mesh stage, then window density.
enum class Tier {
  kFull = 0,   ///< pose + mesh reconstruction per window
  kNoMesh,     ///< pose only: mesh reconstruction skipped
  kPoseOnly,   ///< pose only at half window density (every other
               ///< window per session is shed before dispatch)
};
inline constexpr int kNumTiers = 3;

/// Stable display name of a tier ("full", "no_mesh", "pose_only").
const char* tier_name(Tier tier);

struct ServeConfig {
  double deadline_ms = 50.0;
  int max_sessions = 32;
  int max_inflight = 64;
  int queue_cap = 4;
  int batch_max = 8;
  ShedPolicy policy = ShedPolicy::kDropOldest;
  double shed_hi = 0.75;
  double shed_lo = 0.25;
  int hold_ticks = 3;
  double retry_ms = 5.0;
  std::uint64_t seed = 0x5E12;

  /// Throws mmhand::Error on out-of-range or inconsistent fields.
  void validate() const;
};

/// Parses the MMHAND_SERVE grammar; throws mmhand::Error on unknown
/// keys or malformed values.
ServeConfig parse_serve_spec(const std::string& text);

/// Config from the MMHAND_SERVE environment variable (defaults when
/// unset or empty).  Reads the environment on every call; the server
/// snapshots the config at construction.
ServeConfig config_from_env();

}  // namespace mmhand::serve
