#pragma once

// Deterministic client-side retry backoff.
//
// Rejected submissions (admission, reject_new shedding) carry a
// RetryAfter hint from the server; clients wait at least that long and
// add jittered exponential backoff on consecutive rejections so a
// thundering herd of synchronized retries cannot re-overload the
// server the instant pressure clears.
//
// The jitter stream is a pure function of (seed, session, attempt) —
// no global state, no wall clock — so every retry schedule is
// reproducible and tests can assert exact delays.

#include <cstdint>

namespace mmhand::serve {

namespace detail {

/// splitmix64 mixer: stateless, full-period.  Same construction as the
/// fault-injection streams so serving jitter never perturbs any
/// simulation RNG stream.
inline std::uint64_t backoff_mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace detail

/// Delay in milliseconds before retry number `attempt` (0-based count
/// of consecutive rejections) for a session's jitter stream.
///
/// The backoff window doubles per attempt from `base_ms` up to
/// `cap_ms`; the delay is drawn uniformly from the window's upper half
/// [window/2, window) — "equal jitter", which decorrelates clients
/// while keeping a floor of half the window.  The result never drops
/// below `retry_after_ms`, the server's hint.
inline double backoff_delay_ms(std::uint64_t seed, std::uint64_t session,
                               int attempt, double base_ms, double cap_ms,
                               double retry_after_ms) {
  if (attempt < 0) attempt = 0;
  double window = base_ms;
  for (int a = 0; a < attempt && window < cap_ms; ++a) window *= 2.0;
  if (window > cap_ms) window = cap_ms;
  const std::uint64_t draw = detail::backoff_mix64(
      seed ^ (session * 0x9E3779B97F4A7C15ull) ^
      (static_cast<std::uint64_t>(attempt) << 48));
  // Top 53 bits -> uniform double in [0, 1).
  const double u = static_cast<double>(draw >> 11) * 0x1.0p-53;
  double delay = window * (0.5 + 0.5 * u);
  if (delay < retry_after_ms) delay = retry_after_ms;
  return delay;
}

}  // namespace mmhand::serve
