#pragma once

// Streaming multi-session inference server.
//
// Many concurrent clients stream radar cube frames; the server
// assembles each session's frames into non-overlapping pose windows
// (exactly the `make_pose_samples` convention, so a drained server is
// bitwise identical to the offline pipeline), coalesces ready windows
// across sessions into one batched network step
// (`HandJointRegressor::forward_batch`), and degrades gracefully under
// overload instead of collapsing:
//
//   - admission control: at most max_sessions concurrent sessions and
//     max_inflight queued windows; excess joins/frames are refused
//     with a RetryAfter hint;
//   - bounded queues: each session holds at most queue_cap ready
//     windows; overflow is shed per the configured policy
//     (drop-oldest or reject-new), so memory is bounded by
//     construction;
//   - deadlines: a window unresolved past deadline_ms is delivered as
//     kDeadlineMissed rather than serving stale poses;
//   - degradation tiers: sustained queue pressure above shed_hi for
//     hold consecutive scheduler ticks escalates kFull -> kNoMesh ->
//     kPoseOnly (half window density); sustained pressure below
//     shed_lo de-escalates.  The hold hysteresis prevents flapping.
//
// Fairness: ready windows dispatch strictly oldest-first across
// sessions (one global FIFO), so no session can be starved while the
// server makes progress.
//
// Threading: one mutex guards all queue state; the batched NN step
// runs outside the lock (only the scheduler executes it).  With
// Options.manual_step the server runs no thread and tests drive
// `step()` with an injected clock for full determinism.

#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include <condition_variable>
#include <mutex>

#include "mmhand/mesh/reconstruction.hpp"
#include "mmhand/pose/joint_model.hpp"
#include "mmhand/serve/config.hpp"

namespace mmhand::serve {

using SessionId = std::uint64_t;

/// Terminal disposition of one pose window.
enum class Disposition {
  kCompleted = 0,   ///< pose delivered within deadline
  kShed,            ///< dropped by load shedding / tier degradation
  kDeadlineMissed,  ///< resolved after its deadline (stale)
};

/// One resolved window, delivered via poll().
struct WindowResult {
  std::uint64_t seq = 0;  ///< per-session window index (0, 1, ...)
  Disposition disposition = Disposition::kCompleted;
  Tier tier = Tier::kFull;   ///< tier the window was served at
  nn::Tensor pose;           ///< [S, 63] joints (completed windows)
  bool mesh_done = false;    ///< mesh reconstructed (kFull tier only)
  mesh::ReconstructionResult mesh;  ///< valid when mesh_done
  double e2e_ms = 0.0;       ///< window-ready -> resolution latency
  int first_frame = 0;       ///< first recording frame of the window
  int last_frame = 0;        ///< last recording frame of the window
};

struct JoinResult {
  bool admitted = false;
  SessionId id = 0;           ///< valid when admitted
  double retry_after_ms = 0.0;  ///< backoff hint when refused
};

struct SubmitResult {
  bool accepted = false;
  bool session_unknown = false;  ///< id never joined or already left
  double retry_after_ms = 0.0;   ///< backoff hint when rejected
};

/// Monotonic counters and instantaneous state, snapshotted under the
/// server lock.
struct ServerStats {
  std::uint64_t sessions_admitted = 0;
  std::uint64_t sessions_rejected = 0;
  std::uint64_t sessions_left = 0;
  std::uint64_t frames_accepted = 0;
  std::uint64_t frames_rejected = 0;
  std::uint64_t windows_completed = 0;
  std::uint64_t windows_shed = 0;
  std::uint64_t windows_missed = 0;     ///< deadline missed
  std::uint64_t degraded_drops = 0;     ///< shed by the kPoseOnly tier
  std::uint64_t batches = 0;
  std::uint64_t max_ready_depth = 0;    ///< high-water mark (bound proof)
  int live_sessions = 0;
  int ready_depth = 0;
  int inflight = 0;
  Tier tier = Tier::kFull;
};

/// Injectable monotonic clock (nanoseconds).  Tests install a fake.
using ClockFn = std::uint64_t (*)();

struct ServerOptions {
  bool manual_step = false;  ///< no scheduler thread; tests call step()
  ClockFn clock = nullptr;   ///< defaults to steady_clock
  /// Trained reconstructor for the kFull tier; nullptr serves
  /// pose-only at every tier.
  mesh::MeshReconstructor* mesh = nullptr;
};

class Server {
 public:
  using Options = ServerOptions;

  /// The model reference must outlive the server.  Only the scheduler
  /// (or the single step() caller in manual mode) runs the model.
  Server(const ServeConfig& config, pose::HandJointRegressor& model,
         Options options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admission control.  Session ids are unique for the life of the
  /// server (a churned client that rejoins gets a fresh id).
  JoinResult join();

  /// Ends a session: its queued windows and undelivered results are
  /// discarded.  Unknown ids are ignored (idempotent).
  void leave(SessionId id);

  /// Streams one radar cube frame into a session's current window.
  /// When the frame completes a window, the window enters the ready
  /// queue (or is shed per policy if bounds are hit).
  SubmitResult submit(SessionId id, const radar::RadarCube& cube);

  /// Moves all resolved windows for a session into `out` (appended in
  /// resolution order).  Returns the number delivered.
  std::size_t poll(SessionId id, std::vector<WindowResult>* out);

  /// One scheduler pass: expire deadlines, run the tier state machine,
  /// dispatch one batched NN step.  Returns the number of windows
  /// resolved.  Called internally by the scheduler thread; call it
  /// directly only with Options.manual_step.
  int step();

  /// Blocks until every queued and inflight window is resolved.  In
  /// manual mode this steps inline.
  void drain();

  Tier tier() const;
  ServerStats stats() const;
  const ServeConfig& config() const { return config_; }

 private:
  struct ReadyWindow {
    SessionId session = 0;
    std::uint64_t seq = 0;
    std::uint64_t ready_ns = 0;
    std::uint64_t deadline_ns = 0;
    int first_frame = 0;
    int last_frame = 0;
    nn::Tensor input;  ///< [S*st, V, D, A]
  };

  struct Session {
    SessionId id = 0;
    int frames_filled = 0;       ///< partial-window fill level
    int first_frame = 0;         ///< recording index of the fill start
    int next_frame = 0;          ///< frames submitted so far
    std::uint64_t next_seq = 0;
    int queued = 0;              ///< this session's ready-queue share
    bool drop_toggle = false;    ///< kPoseOnly half-density alternator
    nn::Tensor window;           ///< fill buffer [S*st, V, D, A]
    std::vector<WindowResult> delivered;
  };

  std::uint64_t now_ns() const;
  double pressure_locked() const;
  void tier_tick_locked();
  void resolve_locked(Session* session, WindowResult result);
  void shed_ready_locked(std::size_t index, bool degraded);
  void scheduler_loop();
  int expire_deadlines_locked(std::uint64_t now);

  const ServeConfig config_;
  pose::HandJointRegressor& model_;
  const Options options_;
  const int frames_per_window_;
  const std::size_t frame_elems_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;    ///< signals the scheduler
  std::condition_variable drain_cv_;   ///< signals drain() waiters
  std::unordered_map<SessionId, std::unique_ptr<Session>> sessions_;
  std::deque<ReadyWindow> ready_;      ///< global FIFO across sessions
  SessionId next_id_ = 1;
  int inflight_ = 0;
  bool stop_ = false;
  Tier tier_ = Tier::kFull;
  int hi_streak_ = 0;
  int lo_streak_ = 0;
  ServerStats stats_;

  std::thread scheduler_;  ///< absent under Options.manual_step
};

}  // namespace mmhand::serve
