#include "mmhand/serve/config.hpp"

#include <cstdlib>

namespace mmhand::serve {

const char* tier_name(Tier tier) {
  switch (tier) {
    case Tier::kFull:
      return "full";
    case Tier::kNoMesh:
      return "no_mesh";
    case Tier::kPoseOnly:
      return "pose_only";
  }
  return "?";
}

void ServeConfig::validate() const {
  MMHAND_CHECK(deadline_ms > 0.0, "MMHAND_SERVE deadline_ms must be > 0");
  MMHAND_CHECK(max_sessions >= 1, "MMHAND_SERVE max_sessions must be >= 1");
  MMHAND_CHECK(max_inflight >= 1, "MMHAND_SERVE max_inflight must be >= 1");
  MMHAND_CHECK(queue_cap >= 1, "MMHAND_SERVE queue_cap must be >= 1");
  MMHAND_CHECK(batch_max >= 1, "MMHAND_SERVE batch_max must be >= 1");
  MMHAND_CHECK(shed_lo >= 0.0 && shed_hi <= 1.0 && shed_lo < shed_hi,
               "MMHAND_SERVE shed thresholds need 0 <= shed_lo < shed_hi"
               " <= 1");
  MMHAND_CHECK(hold_ticks >= 1, "MMHAND_SERVE hold must be >= 1");
  MMHAND_CHECK(retry_ms > 0.0, "MMHAND_SERVE retry_ms must be > 0");
}

namespace {

double parse_double(const std::string& key, const std::string& value) {
  std::size_t consumed = 0;
  double v = 0.0;
  try {
    v = std::stod(value, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  MMHAND_CHECK(consumed == value.size(),
               "MMHAND_SERVE " << key << " '" << value
                               << "' is not a number");
  return v;
}

int parse_int(const std::string& key, const std::string& value) {
  std::size_t consumed = 0;
  long v = 0;
  try {
    v = std::stol(value, &consumed, 0);
  } catch (const std::exception&) {
    consumed = 0;
  }
  MMHAND_CHECK(consumed == value.size(),
               "MMHAND_SERVE " << key << " '" << value
                               << "' is not an integer");
  return static_cast<int>(v);
}

}  // namespace

ServeConfig parse_serve_spec(const std::string& text) {
  ServeConfig config;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(',', pos);
    if (end == std::string::npos) end = text.size();
    const std::string pair = text.substr(pos, end - pos);
    pos = end + 1;
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    MMHAND_CHECK(eq != std::string::npos && eq > 0 && eq + 1 < pair.size(),
                 "MMHAND_SERVE entry '" << pair << "' is not key=value");
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    if (key == "deadline_ms") {
      config.deadline_ms = parse_double(key, value);
    } else if (key == "max_sessions") {
      config.max_sessions = parse_int(key, value);
    } else if (key == "max_inflight") {
      config.max_inflight = parse_int(key, value);
    } else if (key == "queue_cap") {
      config.queue_cap = parse_int(key, value);
    } else if (key == "batch_max") {
      config.batch_max = parse_int(key, value);
    } else if (key == "policy") {
      if (value == "drop_oldest") {
        config.policy = ShedPolicy::kDropOldest;
      } else if (value == "reject_new") {
        config.policy = ShedPolicy::kRejectNew;
      } else {
        throw Error("MMHAND_SERVE policy '" + value +
                    "' is not drop_oldest or reject_new");
      }
    } else if (key == "shed_hi") {
      config.shed_hi = parse_double(key, value);
    } else if (key == "shed_lo") {
      config.shed_lo = parse_double(key, value);
    } else if (key == "hold") {
      config.hold_ticks = parse_int(key, value);
    } else if (key == "retry_ms") {
      config.retry_ms = parse_double(key, value);
    } else if (key == "seed") {
      std::size_t consumed = 0;
      std::uint64_t seed = 0;
      try {
        seed = std::stoull(value, &consumed, 0);
      } catch (const std::exception&) {
        consumed = 0;
      }
      MMHAND_CHECK(consumed == value.size(), "MMHAND_SERVE seed '"
                                                 << value
                                                 << "' is not an integer");
      config.seed = seed;
    } else {
      throw Error("MMHAND_SERVE key '" + key +
                  "' is not one of deadline_ms, max_sessions, max_inflight,"
                  " queue_cap, batch_max, policy, shed_hi, shed_lo, hold,"
                  " retry_ms, seed");
    }
  }
  config.validate();
  return config;
}

ServeConfig config_from_env() {
  const char* spec = std::getenv("MMHAND_SERVE");
  if (spec == nullptr || *spec == '\0') return ServeConfig{};
  return parse_serve_spec(spec);
}

}  // namespace mmhand::serve
