#pragma once

// Simulated streaming client for soaks, benchmarks, and chaos tests.
//
// A SimClient replays one recording's radar cubes into a Server as if
// it were a live capture session, driven by virtual ticks (one tick ~
// one frame period).  It honors the server's control plane the way a
// well-behaved production client would:
//
//   - rejected submissions and refused joins are retried with
//     jittered exponential backoff (serve/backoff.hpp), never before
//     the server's RetryAfter hint;
//   - rejected frames are buffered and re-sent, so a survivable
//     overload sheds work by server policy, not by client data loss.
//
// Chaos hooks: each tick consults the fault plane (MMHAND_FAULT) for
// the serving fault kinds — churn= (leave and rejoin mid-stream),
// burst= (a flood of extra frames in one tick), stall= (a run of
// silent ticks).  All three draw from the deterministic per-kind
// fault streams, so a soak replays bit-for-bit under a fixed seed and
// single-threaded driving.

#include <cstdint>

#include "mmhand/serve/server.hpp"
#include "mmhand/sim/dataset.hpp"

namespace mmhand::serve {

struct ClientConfig {
  /// Frames offered per tick.  1 matches the capture rate; 2 models a
  /// 2x overload (every client offering double-rate traffic).
  int frames_per_tick = 1;
  double tick_ms = 10.0;   ///< virtual tick duration for backoff math
  double base_ms = 5.0;    ///< backoff window floor
  double cap_ms = 80.0;    ///< backoff window ceiling
  std::uint64_t seed = 1;  ///< jitter stream seed (shared per fleet)
  int burst_frames = 4;    ///< extra frames injected by a burst fault
  int stall_ticks_max = 8; ///< stall run length upper bound
};

struct ClientStats {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t retries = 0;
  std::uint64_t completed = 0;  ///< windows with a delivered pose
  std::uint64_t shed = 0;
  std::uint64_t missed = 0;     ///< deadline-missed windows
  std::uint64_t churns = 0;
  std::uint64_t bursts = 0;
  std::uint64_t stalls = 0;
  std::uint64_t join_failures = 0;
};

class SimClient {
 public:
  /// The server and recording must outlive the client.  Joins
  /// immediately; a refused join is retried with backoff on later
  /// ticks.
  SimClient(Server& server, const sim::Recording& recording,
            ClientConfig config = {});

  /// One virtual tick: poll results, consume chaos faults, offer
  /// frames (cycling through the recording), retrying per backoff.
  void tick();

  /// Final poll + leave.  Safe to call once after the driving loop.
  void finish();

  const ClientStats& stats() const { return stats_; }
  bool session_live() const { return have_session_; }
  SessionId session() const { return id_; }

 private:
  void poll_results();
  bool try_join();
  /// Submits the cursor frame; advances on accept.  Returns false on a
  /// rejection (backoff armed, stop offering this tick).
  bool offer_frame();

  Server& server_;
  const sim::Recording& recording_;
  const ClientConfig config_;
  ClientStats stats_;
  SessionId id_ = 0;
  bool have_session_ = false;
  std::size_t cursor_ = 0;   ///< next recording frame to stream
  double now_ms_ = 0.0;      ///< virtual clock
  double next_try_ms_ = 0.0; ///< earliest retry time (backoff)
  int attempt_ = 0;          ///< consecutive rejections
  int stall_left_ = 0;       ///< remaining silent ticks
};

}  // namespace mmhand::serve
