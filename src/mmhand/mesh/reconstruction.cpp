#include "mmhand/mesh/reconstruction.hpp"

#include <cmath>

#include "mmhand/nn/activations.hpp"
#include "mmhand/obs/trace.hpp"
#include "mmhand/nn/loss.hpp"
#include "mmhand/nn/optimizer.hpp"

namespace mmhand::mesh {

namespace {

constexpr int kQuatOutputs = hand::kNumJoints * 4;  // 84

/// Random but anatomically plausible articulation + orientation.
hand::HandPose sample_pose(Rng& rng) {
  hand::HandPose pose;
  for (auto& f : pose.fingers) {
    f.mcp = rng.uniform(-0.2, 1.5);
    f.pip = rng.uniform(-0.1, 1.5);
    f.dip = rng.uniform(-0.1, 1.2);
    f.splay = rng.uniform(-0.3, 0.3);
  }
  // Any global orientation: the IK features are canonicalized to the hand
  // frame, so the sampler can cover the full rotation group.
  const Vec3 axis{rng.normal(), rng.normal(), rng.normal()};
  pose.orientation = Quaternion::from_axis_angle(axis, rng.uniform(0.0, 3.1));
  return pose;
}

ShapeParams sample_shape(Rng& rng) {
  ShapeParams beta{};
  for (auto& b : beta) b = rng.uniform(-0.12, 0.12);
  return beta;
}

/// Orthonormal palm frame columns (a, b, n) from wrist + MCP joints.
void palm_frame(const hand::JointSet& joints, Vec3& a, Vec3& b, Vec3& n) {
  const Vec3 wrist = joints[hand::kWrist];
  a = (joints[9] - wrist).normalized();                       // middle MCP
  const Vec3 raw_n = (joints[5] - wrist).cross(joints[17] - wrist);
  b = raw_n.normalized().cross(a).normalized();
  n = a.cross(b);
}

/// Unit quaternions of a rig pose as a [1, 84] target row; fingers and the
/// wrist residual are all near the identity, so the w >= 0 hemisphere is
/// continuous over the sampling distribution.
nn::Tensor pose_to_quat_row(const std::array<Quaternion,
                                             hand::kNumJoints>& quats) {
  nn::Tensor row({1, kQuatOutputs});
  for (int j = 0; j < hand::kNumJoints; ++j) {
    Quaternion q = quats[static_cast<std::size_t>(j)].normalized();
    if (q.w < 0.0) q = {-q.w, -q.x, -q.y, -q.z};
    row.at(0, 4 * j) = static_cast<float>(q.w);
    row.at(0, 4 * j + 1) = static_cast<float>(q.x);
    row.at(0, 4 * j + 2) = static_cast<float>(q.y);
    row.at(0, 4 * j + 3) = static_cast<float>(q.z);
  }
  return row;
}

}  // namespace

MeshReconstructor::MeshReconstructor(const HandTemplate& tmpl, Rng& rng)
    : model_(tmpl) {
  // Shape net: three FC layers with layer normalization (§V).
  shape_net_.emplace<nn::Linear>(63, 64, rng);
  shape_net_.emplace<nn::LayerNorm>(64);
  shape_net_.emplace<nn::ReLU>();
  shape_net_.emplace<nn::Linear>(64, 64, rng);
  shape_net_.emplace<nn::LayerNorm>(64);
  shape_net_.emplace<nn::ReLU>();
  shape_net_.emplace<nn::Linear>(64, kShapeParams, rng);

  // IK net: joints + phalange directions -> quaternions.
  ik_net_.emplace<nn::Linear>(63 + 60, 128, rng);
  ik_net_.emplace<nn::LayerNorm>(128);
  ik_net_.emplace<nn::ReLU>();
  ik_net_.emplace<nn::Linear>(128, 128, rng);
  ik_net_.emplace<nn::LayerNorm>(128);
  ik_net_.emplace<nn::ReLU>();
  ik_net_.emplace<nn::Linear>(128, kQuatOutputs, rng);
}

Quaternion MeshReconstructor::estimate_global_orientation(
    const hand::JointSet& joints) const {
  Vec3 ar, br, nr;
  palm_frame(model_.hand_template().rest_joints(), ar, br, nr);
  Vec3 ao, bo, no;
  palm_frame(joints, ao, bo, no);
  // R maps the rest frame onto the observed frame: R = O_obs * O_rest^T.
  const Vec3 rest_cols[3] = {ar, br, nr};
  const Vec3 obs_cols[3] = {ao, bo, no};
  auto comp = [](const Vec3& v, int i) {
    return i == 0 ? v.x : (i == 1 ? v.y : v.z);
  };
  double m[3][3];
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 3; ++c) {
      m[r][c] = 0.0;
      for (int k = 0; k < 3; ++k)
        m[r][c] += comp(obs_cols[k], r) * comp(rest_cols[k], c);
    }
  return Quaternion::from_matrix(m);
}

nn::Tensor MeshReconstructor::canonical_row(const hand::JointSet& joints,
                                            const Quaternion& orientation) {
  nn::Tensor row({1, 63});
  const Vec3 wrist = joints[hand::kWrist];
  const Quaternion inv = orientation.conjugate();
  for (int j = 0; j < hand::kNumJoints; ++j) {
    const Vec3 p = inv.rotate(joints[static_cast<std::size_t>(j)] - wrist);
    row.at(0, 3 * j) = static_cast<float>(p.x);
    row.at(0, 3 * j + 1) = static_cast<float>(p.y);
    row.at(0, 3 * j + 2) = static_cast<float>(p.z);
  }
  return row;
}

nn::Tensor MeshReconstructor::phalange_directions(
    const hand::JointSet& joints, const Quaternion& orientation) {
  nn::Tensor row({1, 60});
  const Quaternion inv = orientation.conjugate();
  int k = 0;
  for (int child = 1; child < hand::kNumJoints; ++child) {
    const Vec3 d = inv.rotate(
        (joints[static_cast<std::size_t>(child)] -
         joints[static_cast<std::size_t>(hand::joint_parent(child))])
            .normalized());
    row.at(0, 3 * k) = static_cast<float>(d.x);
    row.at(0, 3 * k + 1) = static_cast<float>(d.y);
    row.at(0, 3 * k + 2) = static_cast<float>(d.z);
    ++k;
  }
  return row;
}

nn::Tensor MeshReconstructor::ik_features(const hand::JointSet& joints,
                                          const Quaternion& orientation)
    const {
  const nn::Tensor joints_row = canonical_row(joints, orientation);
  const nn::Tensor dp = phalange_directions(joints, orientation);
  nn::Tensor input({1, 123});
  for (int c = 0; c < 63; ++c) input.at(0, c) = joints_row.at(0, c);
  for (int c = 0; c < 60; ++c) input.at(0, 63 + c) = dp.at(0, c);
  return input;
}

double MeshReconstructor::train(const ReconstructorTrainConfig& config) {
  MMHAND_SPAN("mesh/train_reconstructor");
  MMHAND_CHECK(config.samples >= 8 && config.epochs >= 1, "train config");
  Rng rng(config.seed);
  const auto& profile = model_.hand_template().profile();

  struct Pair {
    nn::Tensor joints_row;  // [1, 63] canonical
    nn::Tensor ik_input;    // [1, 123]
    nn::Tensor beta_row;    // [1, 10]
    nn::Tensor quat_row;    // [1, 84]
    hand::JointSet joints;  // absolute, for the holdout evaluation
  };
  std::vector<Pair> pairs;
  pairs.reserve(static_cast<std::size_t>(config.samples));
  for (int i = 0; i < config.samples; ++i) {
    const ShapeParams beta = sample_shape(rng);
    const hand::HandPose pose = sample_pose(rng);
    const PoseParams theta = pose_from_articulation(profile, pose);
    const hand::JointSet joints = model_.posed_joints(beta, theta);

    const Quaternion est = estimate_global_orientation(joints);
    std::array<Quaternion, hand::kNumJoints> targets;
    for (int j = 0; j < hand::kNumJoints; ++j)
      targets[static_cast<std::size_t>(j)] = Quaternion::from_rotation_vector(
          theta[static_cast<std::size_t>(j)]);
    // Wrist target: the residual after the analytic orientation estimate
    // (near identity — exactly identity when beta leaves the palm rigid).
    targets[hand::kWrist] = est.conjugate() * targets[hand::kWrist];

    Pair p;
    p.joints = joints;
    p.joints_row = canonical_row(joints, est);
    p.ik_input = ik_features(joints, est);
    p.beta_row = nn::Tensor({1, kShapeParams});
    for (int c = 0; c < kShapeParams; ++c)
      p.beta_row.at(0, c) =
          static_cast<float>(beta[static_cast<std::size_t>(c)]);
    p.quat_row = pose_to_quat_row(targets);
    pairs.push_back(std::move(p));
  }

  nn::Adam shape_opt(shape_net_.parameters(), {.lr = config.lr});
  nn::Adam ik_opt(ik_net_.parameters(), {.lr = config.lr});
  const int holdout = std::max(4, config.samples / 10);

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    const double lr_scale = nn::cosine_decay(epoch, config.epochs);
    const auto order = rng.permutation(config.samples - holdout);
    int since_step = 0;
    shape_opt.zero_grad();
    ik_opt.zero_grad();
    for (int idx : order) {
      const Pair& p = pairs[static_cast<std::size_t>(idx)];
      const nn::Tensor beta_pred = shape_net_.forward(p.joints_row, true);
      (void)shape_net_.backward(nn::mse_loss(beta_pred, p.beta_row).grad);
      const nn::Tensor quat_pred = ik_net_.forward(p.ik_input, true);
      (void)ik_net_.backward(nn::mse_loss(quat_pred, p.quat_row).grad);
      if (++since_step >= config.batch_size) {
        shape_opt.step(lr_scale);
        ik_opt.step(lr_scale);
        shape_opt.zero_grad();
        ik_opt.zero_grad();
        since_step = 0;
      }
    }
    if (since_step > 0) {
      shape_opt.step(lr_scale);
      ik_opt.step(lr_scale);
      shape_opt.zero_grad();
      ik_opt.zero_grad();
    }
  }

  // Held-out joint reconstruction error.
  double total_err = 0.0;
  int joints_count = 0;
  for (int i = config.samples - holdout; i < config.samples; ++i) {
    const Pair& p = pairs[static_cast<std::size_t>(i)];
    const auto result = reconstruct(p.joints);
    for (int j = 0; j < hand::kNumJoints; ++j) {
      total_err += distance(result.joints[static_cast<std::size_t>(j)],
                            p.joints[static_cast<std::size_t>(j)]);
      ++joints_count;
    }
  }
  return total_err / joints_count;
}

ReconstructionResult MeshReconstructor::reconstruct(
    const hand::JointSet& joints) {
  MMHAND_SPAN("mesh/reconstruct");
  const Quaternion est = estimate_global_orientation(joints);
  const nn::Tensor joints_row = canonical_row(joints, est);
  const nn::Tensor ik_input = ik_features(joints, est);

  const nn::Tensor beta_row = shape_net_.forward(joints_row, false);
  const nn::Tensor quat_row = ik_net_.forward(ik_input, false);

  ReconstructionResult out;
  for (int c = 0; c < kShapeParams; ++c)
    out.beta[static_cast<std::size_t>(c)] = beta_row.at(0, c);

  std::array<Quaternion, hand::kNumJoints> quats;
  for (int j = 0; j < hand::kNumJoints; ++j) {
    quats[static_cast<std::size_t>(j)] =
        Quaternion{quat_row.at(0, 4 * j), quat_row.at(0, 4 * j + 1),
                   quat_row.at(0, 4 * j + 2), quat_row.at(0, 4 * j + 3)}
            .normalized();
  }
  // Compose the analytic global orientation with the learned residual.
  quats[hand::kWrist] = est * quats[hand::kWrist];
  out.theta = quaternions_to_pose(quats);

  const Vec3 root = joints[hand::kWrist];
  out.joints = model_.posed_joints(out.beta, out.theta, root);
  out.mesh = model_.pose(out.beta, out.theta, root);
  return out;
}

void MeshReconstructor::save(const std::string& path) {
  BinaryWriter w(path);
  w.write_u32(0x6d6d4d31);  // "mmM1"
  w.write_u32(1);           // format version
  nn::save_parameters(shape_net_.parameters(), w);
  nn::save_parameters(ik_net_.parameters(), w);
  w.close();
}

void MeshReconstructor::load(const std::string& path) {
  BinaryReader r(path);
  MMHAND_CHECK(r.read_u32() == 0x6d6d4d31,
               "not a mesh reconstructor checkpoint: " << path);
  const std::uint32_t version = r.read_u32();
  MMHAND_CHECK(version == 1,
               "mesh reconstructor format version " << version << " in "
                                                    << path);
  nn::load_parameters(shape_net_.parameters(), r);
  nn::load_parameters(ik_net_.parameters(), r);
}

}  // namespace mmhand::mesh
