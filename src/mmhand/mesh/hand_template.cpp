#include "mmhand/mesh/hand_template.hpp"

#include <cmath>
#include <numbers>

#include "mmhand/common/error.hpp"
#include "mmhand/hand/kinematics.hpp"

namespace mmhand::mesh {

namespace {

constexpr int kRingResolution = 8;  ///< vertices per finger cross-section

/// Orthonormal ring basis perpendicular to a bone direction.
void ring_basis(const Vec3& dir, Vec3& u, Vec3& v) {
  const Vec3 n{0.0, 0.0, 1.0};
  u = dir.cross(n);
  if (u.norm() < 1e-6) u = dir.cross(Vec3{1.0, 0.0, 0.0});
  u = u.normalized();
  v = u.cross(dir).normalized();
}

/// Base cross-section radius per finger (meters, before profile scale).
double finger_radius(int finger) {
  switch (finger) {
    case 0: return 0.0105;  // thumb
    case 1: return 0.0085;  // index
    case 2: return 0.0085;  // middle
    case 3: return 0.0080;  // ring
    default: return 0.0070; // pinky
  }
}

}  // namespace

HandTemplate HandTemplate::create(const hand::HandProfile& profile) {
  HandTemplate t;
  t.profile_ = profile;
  t.rest_joints_ = hand::local_kinematics(profile, hand::HandPose{});
  const auto& joints = t.rest_joints_;

  auto add_vertex = [&](const Vec3& p,
                        std::vector<std::pair<int, double>> weights) {
    t.vertices_.push_back(p);
    t.skinning_.push_back(std::move(weights));
    return static_cast<int>(t.vertices_.size()) - 1;
  };
  auto add_face = [&](int a, int b, int c) {
    t.faces_.push_back({a, b, c});
  };

  // ---- Finger tubes. ----
  for (int f = 0; f < hand::kNumFingers; ++f) {
    const int j0 = hand::finger_joint(static_cast<hand::Finger>(f), 0);
    const double r_base = finger_radius(f) * profile.scale;

    // Stations along the chain: joint / midpoint / joint / ... / tip.
    struct Station {
      Vec3 position;
      Vec3 direction;
      double radius;
      std::vector<std::pair<int, double>> weights;
    };
    std::vector<Station> stations;
    for (int seg = 0; seg < 3; ++seg) {
      const int ja = j0 + seg, jb = j0 + seg + 1;
      const Vec3 a = joints[static_cast<std::size_t>(ja)];
      const Vec3 b = joints[static_cast<std::size_t>(jb)];
      const Vec3 dir = (b - a).normalized();
      const double taper0 = 1.0 - 0.12 * seg;
      const double taper_mid = 1.0 - 0.12 * (seg + 0.5);
      if (seg == 0)
        stations.push_back({a, dir, r_base * taper0,
                            {{hand::kWrist, 0.3}, {ja, 0.7}}});
      stations.push_back({(a + b) * 0.5, dir, r_base * taper_mid,
                          {{ja, 1.0}}});
      const std::vector<std::pair<int, double>> joint_w =
          seg < 2 ? std::vector<std::pair<int, double>>{{ja, 0.5},
                                                        {jb, 0.5}}
                  : std::vector<std::pair<int, double>>{{ja, 0.7},
                                                        {jb, 0.3}};
      stations.push_back(
          {b, dir, r_base * (1.0 - 0.12 * (seg + 1.0)), joint_w});
    }

    // Rings.
    std::vector<std::vector<int>> rings;
    for (const Station& st : stations) {
      Vec3 u, v;
      ring_basis(st.direction, u, v);
      std::vector<int> ring;
      for (int k = 0; k < kRingResolution; ++k) {
        const double phi = 2.0 * std::numbers::pi * k / kRingResolution;
        ring.push_back(add_vertex(
            st.position + (u * std::cos(phi) + v * std::sin(phi)) * st.radius,
            st.weights));
      }
      rings.push_back(std::move(ring));
    }
    // Tube walls.
    for (std::size_t s = 0; s + 1 < rings.size(); ++s)
      for (int k = 0; k < kRingResolution; ++k) {
        const int k2 = (k + 1) % kRingResolution;
        add_face(rings[s][static_cast<std::size_t>(k)],
                 rings[s + 1][static_cast<std::size_t>(k)],
                 rings[s][static_cast<std::size_t>(k2)]);
        add_face(rings[s][static_cast<std::size_t>(k2)],
                 rings[s + 1][static_cast<std::size_t>(k)],
                 rings[s + 1][static_cast<std::size_t>(k2)]);
      }
    // Tip cap: a fan to a point just past the fingertip.
    const int tip_joint = j0 + 3;
    const Vec3 tip = joints[static_cast<std::size_t>(tip_joint)];
    const Vec3 tip_dir = stations.back().direction;
    const int cap = add_vertex(tip + tip_dir * (0.4 * r_base),
                               {{tip_joint - 1, 0.7}, {tip_joint, 0.3}});
    const auto& last = rings.back();
    for (int k = 0; k < kRingResolution; ++k)
      add_face(last[static_cast<std::size_t>(k)],
               last[static_cast<std::size_t>((k + 1) % kRingResolution)],
               cap);
  }

  // ---- Palm slab. ----
  const double s = profile.scale;
  const double half_thick = 0.009 * s;
  std::vector<Vec3> boundary{
      Vec3{0.045 * s, -0.012 * s, 0.0},             // thumb-side wrist corner
      Vec3{profile.mcp_offsets[0].x, profile.mcp_offsets[0].y, 0.0},
      Vec3{profile.mcp_offsets[1].x, profile.mcp_offsets[1].y, 0.0},
      Vec3{profile.mcp_offsets[2].x, profile.mcp_offsets[2].y, 0.0},
      Vec3{profile.mcp_offsets[3].x, profile.mcp_offsets[3].y, 0.0},
      Vec3{profile.mcp_offsets[4].x, profile.mcp_offsets[4].y, 0.0},
      Vec3{-0.048 * s, -0.012 * s, 0.0},            // pinky-side wrist corner
  };
  // Skinning for boundary points: corners follow the wrist, MCP points
  // blend with their finger's base joint.
  auto boundary_weights = [&](std::size_t i)
      -> std::vector<std::pair<int, double>> {
    if (i == 0 || i == boundary.size() - 1) return {{hand::kWrist, 1.0}};
    const int finger = static_cast<int>(i) - 1;
    return {{hand::kWrist, 0.5},
            {hand::finger_base(static_cast<hand::Finger>(finger)), 0.5}};
  };

  std::vector<int> top, bottom;
  for (std::size_t i = 0; i < boundary.size(); ++i) {
    top.push_back(add_vertex(boundary[i] + Vec3{0.0, 0.0, half_thick},
                             boundary_weights(i)));
    bottom.push_back(add_vertex(boundary[i] - Vec3{0.0, 0.0, half_thick},
                                boundary_weights(i)));
  }
  const Vec3 center{-0.003 * s, 0.038 * s, 0.0};
  const int top_c = add_vertex(center + Vec3{0.0, 0.0, half_thick},
                               {{hand::kWrist, 1.0}});
  const int bottom_c = add_vertex(center - Vec3{0.0, 0.0, half_thick},
                                  {{hand::kWrist, 1.0}});
  const int nb = static_cast<int>(boundary.size());
  for (int i = 0; i < nb; ++i) {
    const int j = (i + 1) % nb;
    // Top fan (facing +z) and bottom fan (facing -z).
    add_face(top[static_cast<std::size_t>(i)],
             top[static_cast<std::size_t>(j)], top_c);
    add_face(bottom[static_cast<std::size_t>(j)],
             bottom[static_cast<std::size_t>(i)], bottom_c);
    // Side walls.
    add_face(top[static_cast<std::size_t>(i)],
             bottom[static_cast<std::size_t>(i)],
             top[static_cast<std::size_t>(j)]);
    add_face(top[static_cast<std::size_t>(j)],
             bottom[static_cast<std::size_t>(i)],
             bottom[static_cast<std::size_t>(j)]);
  }

  // Normalize skinning weights defensively.
  for (auto& weights : t.skinning_) {
    double total = 0.0;
    for (const auto& [joint, w] : weights) total += w;
    MMHAND_ASSERT(total > 0.0);
    for (auto& [joint, w] : weights) w /= total;
  }
  return t;
}

}  // namespace mmhand::mesh
