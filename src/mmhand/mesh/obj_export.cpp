#include "mmhand/mesh/obj_export.hpp"

#include <fstream>

#include "mmhand/common/error.hpp"

namespace mmhand::mesh {

void write_obj(const std::string& path, const HandMesh& mesh) {
  std::ofstream out(path);
  MMHAND_CHECK(out.good(), "cannot open " << path);
  out << "# mmHand reconstructed hand mesh\n";
  for (const Vec3& v : mesh.vertices)
    out << "v " << v.x << " " << v.y << " " << v.z << "\n";
  for (const auto& f : mesh.faces)
    out << "f " << f[0] + 1 << " " << f[1] + 1 << " " << f[2] + 1 << "\n";
  out.flush();
  MMHAND_CHECK(out.good(), "write failure on " << path);
}

void write_skeleton_obj(const std::string& path,
                        const hand::JointSet& joints) {
  std::ofstream out(path);
  MMHAND_CHECK(out.good(), "cannot open " << path);
  out << "# mmHand 21-joint skeleton\n";
  for (const Vec3& j : joints)
    out << "v " << j.x << " " << j.y << " " << j.z << "\n";
  for (int child = 1; child < hand::kNumJoints; ++child)
    out << "l " << hand::joint_parent(child) + 1 << " " << child + 1 << "\n";
  out.flush();
  MMHAND_CHECK(out.good(), "write failure on " << path);
}

}  // namespace mmhand::mesh
