#pragma once

// MANO-style parametric hand model (§V, Eq. 10/11):
//   M(beta, theta) = W(Tp(beta, theta), J(beta), theta, W)
//   Tp(beta, theta) = T + Bs(beta) + Bp(theta)
// with beta in R^10 controlling shape (PCA-like procedural bases), theta in
// R^{21x3} the joint rotations in axis-angle, W(.) linear blend skinning,
// and J(beta) the shaped joint locations.
//
// The shape basis is hand-crafted rather than learned from scans (no MANO
// asset offline — DESIGN.md §2): each basis vector is a smooth displacement
// field over the template (global scale, finger lengths, palm width,
// thickness, ...).  Pose blend shapes are small per-joint bulge fields
// scaled by rotation magnitude, a simplification of MANO's linear-in-R
// correctives.

#include <array>

#include "mmhand/common/quaternion.hpp"
#include "mmhand/hand/kinematics.hpp"
#include "mmhand/mesh/hand_template.hpp"

namespace mmhand::mesh {

inline constexpr int kShapeParams = 10;

using ShapeParams = std::array<double, kShapeParams>;
/// Axis-angle rotation per joint (theta in R^{21x3}).
using PoseParams = std::array<Vec3, hand::kNumJoints>;

class ManoHandModel {
 public:
  explicit ManoHandModel(const HandTemplate& tmpl);

  /// Shaped rest joints J(beta).
  hand::JointSet shaped_joints(const ShapeParams& beta) const;

  /// Deformed template Tp(beta, theta) before skinning (Eq. 11).
  std::vector<Vec3> deformed_template(const ShapeParams& beta,
                                      const PoseParams& theta) const;

  /// Full model M(beta, theta) with the wrist translated to `root`.
  HandMesh pose(const ShapeParams& beta, const PoseParams& theta,
                const Vec3& root = {}) const;

  /// Joint positions under the same posing (for IK supervision and eval).
  hand::JointSet posed_joints(const ShapeParams& beta,
                              const PoseParams& theta,
                              const Vec3& root = {}) const;

  const HandTemplate& hand_template() const { return template_; }

  /// Displacement field of one shape basis (unit beta), for diagnostics.
  const std::vector<Vec3>& shape_basis(int index) const;

 private:
  HandTemplate template_;
  /// Bs: kShapeParams displacement fields over template vertices.
  std::array<std::vector<Vec3>, kShapeParams> shape_bases_;
  /// Same bases evaluated at the rest joints (keeps J(beta) consistent
  /// with the shaped surface).
  std::array<std::array<Vec3, hand::kNumJoints>, kShapeParams> joint_bases_;
};

/// Converts per-joint quaternions (the IK net's output, R^{21x4}) to the
/// axis-angle PoseParams MANO consumes.
PoseParams quaternions_to_pose(
    const std::array<Quaternion, hand::kNumJoints>& q);

/// Analytic rig pose for a hand articulation: the exact local joint
/// rotations that reproduce hand::forward_kinematics' segment orientations
/// on the LBS rig.  Used to generate IK training pairs.
PoseParams pose_from_articulation(const hand::HandProfile& profile,
                                  const hand::HandPose& pose);

}  // namespace mmhand::mesh
