#pragma once

// Wavefront OBJ export for reconstructed hand meshes (used by the examples
// to dump viewable animation frames).

#include <string>

#include "mmhand/mesh/hand_template.hpp"

namespace mmhand::mesh {

/// Writes the mesh as an OBJ file (v/f records); throws on I/O failure.
void write_obj(const std::string& path, const HandMesh& mesh);

/// Appends a skeleton as an OBJ polyline set (l records) for debugging.
void write_skeleton_obj(const std::string& path,
                        const hand::JointSet& joints);

}  // namespace mmhand::mesh
