#pragma once

// Procedural hand template mesh — the substitute for the licensed MANO
// asset (DESIGN.md §2).  The template is generated from a HandProfile in
// its rest (T-)pose: finger tubes with rings at each joint station and a
// closed palm slab, plus per-vertex linear-blend-skinning weights tied to
// the 21-joint rig.  The functional form of MANO (Eq. 10/11) runs on this
// template unmodified.

#include <array>
#include <utility>
#include <vector>

#include "mmhand/common/vec3.hpp"
#include "mmhand/hand/hand_profile.hpp"
#include "mmhand/hand/skeleton.hpp"

namespace mmhand::mesh {

struct HandMesh {
  std::vector<Vec3> vertices;
  std::vector<std::array<int, 3>> faces;
};

/// Per-vertex skinning weights: (joint index, weight) pairs summing to 1.
using SkinWeights = std::vector<std::vector<std::pair<int, double>>>;

class HandTemplate {
 public:
  /// Builds the template for a profile (rest articulation, hand frame).
  static HandTemplate create(const hand::HandProfile& profile);

  const std::vector<Vec3>& vertices() const { return vertices_; }
  const std::vector<std::array<int, 3>>& faces() const { return faces_; }
  const SkinWeights& skinning() const { return skinning_; }
  /// Rest-pose joint locations of the rig (hand frame).
  const hand::JointSet& rest_joints() const { return rest_joints_; }
  const hand::HandProfile& profile() const { return profile_; }

  std::size_t vertex_count() const { return vertices_.size(); }
  std::size_t face_count() const { return faces_.size(); }

 private:
  std::vector<Vec3> vertices_;
  std::vector<std::array<int, 3>> faces_;
  SkinWeights skinning_;
  hand::JointSet rest_joints_;
  hand::HandProfile profile_;
};

}  // namespace mmhand::mesh
