#pragma once

// Mesh reconstruction (§V, Fig. 8): from a regressed 21-joint skeleton,
// infer the MANO shape parameters beta (shape net: three FC layers with
// layer normalization) and the joint rotations theta (IK net: FC layers
// with layer normalization, inputs J3D + phalange directions Dp, outputs
// rotation quaternions Q in R^{21x4} converted to axis-angle), then deform
// the template to produce the final 3-D hand mesh.
//
// The global (wrist) orientation is recovered analytically from the rigid
// palm: the wrist and the five MCP joints form a rigid triad, so frame
// alignment against the rest pose yields the wrist rotation in closed
// form.  The IK net then works in the canonicalized hand frame, where all
// remaining rotations are small and continuous — predicting the raw wrist
// quaternion instead would put its targets on the w~0 hemisphere boundary
// where the sign flips discontinuously (see tests).
//
// Both networks are trained self-supervised on the parametric model
// itself: sample (beta, theta), run the rig's forward kinematics, and
// learn the inverse maps — this mirrors the paper's end-to-end learned
// inverse-kinematics solution without requiring mocap data.

#include <string>

#include "mmhand/nn/layer_norm.hpp"
#include "mmhand/nn/linear.hpp"
#include "mmhand/nn/sequential.hpp"
#include "mmhand/mesh/mano_model.hpp"

namespace mmhand::mesh {

struct ReconstructorTrainConfig {
  int samples = 1500;     ///< synthetic (pose, joints) pairs
  int epochs = 25;
  int batch_size = 16;
  double lr = 1e-3;
  std::uint64_t seed = 11;
};

struct ReconstructionResult {
  ShapeParams beta{};
  PoseParams theta{};
  hand::JointSet joints{};  ///< rig joints after reposing (self-check)
  HandMesh mesh;
};

class MeshReconstructor {
 public:
  explicit MeshReconstructor(const HandTemplate& tmpl, Rng& rng);

  /// Trains the shape and IK networks on rig-generated pairs.  Returns the
  /// final mean joint reconstruction error (meters) on a held-out batch.
  double train(const ReconstructorTrainConfig& config);

  /// Reconstructs the mesh for a skeleton (absolute coordinates, meters).
  ReconstructionResult reconstruct(const hand::JointSet& joints);

  /// Closed-form wrist orientation from the rigid palm joints.
  Quaternion estimate_global_orientation(const hand::JointSet& joints) const;

  const ManoHandModel& model() const { return model_; }

  void save(const std::string& path);
  void load(const std::string& path);

 private:
  /// 63-vector of wrist-centered joints rotated into the hand frame.
  static nn::Tensor canonical_row(const hand::JointSet& joints,
                                  const Quaternion& orientation);
  /// Phalange direction features Dp (20 x 3, unit, hand frame).
  static nn::Tensor phalange_directions(const hand::JointSet& joints,
                                        const Quaternion& orientation);
  /// Assembles the IK net input [1, 123] for a skeleton.
  nn::Tensor ik_features(const hand::JointSet& joints,
                         const Quaternion& orientation) const;

  ManoHandModel model_;
  nn::Sequential shape_net_;  ///< 63 -> 10
  nn::Sequential ik_net_;     ///< 63 + 60 -> 84 (21 quaternions)
};

}  // namespace mmhand::mesh
