#include "mmhand/mesh/mano_model.hpp"

#include <algorithm>
#include <cmath>

#include "mmhand/common/error.hpp"
#include "mmhand/hand/kinematics.hpp"

namespace mmhand::mesh {

namespace {

/// Rigid transform x -> q(x) + t.
struct Affine {
  Quaternion q = Quaternion::identity();
  Vec3 t;

  Vec3 apply(const Vec3& x) const { return q.rotate(x) + t; }
};

Affine compose(const Affine& a, const Affine& b) {
  return {a.q * b.q, a.q.rotate(b.t) + a.t};
}

/// Rotation about a pivot point.
Affine about_pivot(const Quaternion& q, const Vec3& pivot) {
  return {q, pivot - q.rotate(pivot)};
}

}  // namespace

ManoHandModel::ManoHandModel(const HandTemplate& tmpl) : template_(tmpl) {
  const double s = template_.profile().scale;
  const double finger_y = 0.06 * s;  // y above which vertices are "fingers"
  const Vec3 thumb_root = template_.rest_joints()[1];

  // Procedural shape displacement fields.  Each returns the displacement of
  // a point p under a unit coefficient of basis b.
  auto field = [&](int b, const Vec3& p) -> Vec3 {
    switch (b) {
      case 0:  // global scale
        return p;
      case 1:  // finger length
        return {0.0, std::max(0.0, p.y - finger_y), 0.0};
      case 2:  // palm width
        return {0.6 * p.x, 0.0, 0.0};
      case 3:  // overall thickness
        return {0.0, 0.0, p.z};
      case 4:  // finger thickness
        return p.y > finger_y ? Vec3{0.0, 0.0, 1.5 * p.z} : Vec3{};
      case 5: {  // thumb size
        const Vec3 d = p - thumb_root;
        return (p.x > 0.02 * s && p.y < 0.13 * s) ? d * 0.5 : Vec3{};
      }
      case 6:  // pinky length
        return (p.x < -0.02 * s)
                   ? Vec3{0.0, std::max(0.0, p.y - finger_y), 0.0}
                   : Vec3{};
      case 7:  // palm length
        return {0.0, std::clamp(p.y, 0.0, finger_y), 0.0};
      case 8:  // finger splay spread
        return {0.5 * (p.x >= 0 ? 1.0 : -1.0) *
                    std::max(0.0, p.y - finger_y),
                0.0, 0.0};
      default:  // 9: tip taper (thinner distal segments)
        return p.y > 0.13 * s ? Vec3{0.0, 0.0, -p.z} : Vec3{};
    }
  };

  for (int b = 0; b < kShapeParams; ++b) {
    auto& basis = shape_bases_[static_cast<std::size_t>(b)];
    basis.reserve(template_.vertex_count());
    for (const Vec3& v : template_.vertices()) basis.push_back(field(b, v));
    for (int j = 0; j < hand::kNumJoints; ++j)
      joint_bases_[static_cast<std::size_t>(b)][static_cast<std::size_t>(j)] =
          field(b, template_.rest_joints()[static_cast<std::size_t>(j)]);
  }
}

const std::vector<Vec3>& ManoHandModel::shape_basis(int index) const {
  MMHAND_CHECK(index >= 0 && index < kShapeParams, "shape basis " << index);
  return shape_bases_[static_cast<std::size_t>(index)];
}

hand::JointSet ManoHandModel::shaped_joints(const ShapeParams& beta) const {
  hand::JointSet joints = template_.rest_joints();
  for (int b = 0; b < kShapeParams; ++b) {
    const double c = beta[static_cast<std::size_t>(b)];
    if (c == 0.0) continue;
    for (int j = 0; j < hand::kNumJoints; ++j)
      joints[static_cast<std::size_t>(j)] +=
          joint_bases_[static_cast<std::size_t>(b)]
                      [static_cast<std::size_t>(j)] *
          c;
  }
  return joints;
}

std::vector<Vec3> ManoHandModel::deformed_template(
    const ShapeParams& beta, const PoseParams& theta) const {
  std::vector<Vec3> verts = template_.vertices();
  // Bs(beta): shape blend shapes.
  for (int b = 0; b < kShapeParams; ++b) {
    const double c = beta[static_cast<std::size_t>(b)];
    if (c == 0.0) continue;
    const auto& basis = shape_bases_[static_cast<std::size_t>(b)];
    for (std::size_t v = 0; v < verts.size(); ++v) verts[v] += basis[v] * c;
  }
  // Bp(theta): pose correctives — a small bulge around each bending joint,
  // scaled by the joint's rotation magnitude.
  const auto& rest = template_.rest_joints();
  constexpr double kBulge = 0.0006;    // meters per radian
  constexpr double kRadius = 0.015;    // influence radius
  for (int j = 1; j < hand::kNumJoints; ++j) {
    const double angle = theta[static_cast<std::size_t>(j)].norm();
    if (angle < 1e-6) continue;
    const Vec3 center = rest[static_cast<std::size_t>(j)];
    for (std::size_t v = 0; v < verts.size(); ++v) {
      const Vec3 d = verts[v] - center;
      const double r = d.norm();
      if (r > kRadius || r < 1e-9) continue;
      const double falloff = 1.0 - r / kRadius;
      verts[v] += d * (kBulge * angle * falloff / r);
    }
  }
  return verts;
}

hand::JointSet ManoHandModel::posed_joints(const ShapeParams& beta,
                                           const PoseParams& theta,
                                           const Vec3& root) const {
  const hand::JointSet rest = shaped_joints(beta);
  std::array<Affine, hand::kNumJoints> global;
  for (int j = 0; j < hand::kNumJoints; ++j) {
    const Affine local = about_pivot(
        Quaternion::from_rotation_vector(theta[static_cast<std::size_t>(j)]),
        rest[static_cast<std::size_t>(j)]);
    const int parent = hand::joint_parent(j);
    global[static_cast<std::size_t>(j)] =
        parent < 0 ? local
                   : compose(global[static_cast<std::size_t>(parent)], local);
  }
  hand::JointSet out;
  for (int j = 0; j < hand::kNumJoints; ++j)
    out[static_cast<std::size_t>(j)] =
        global[static_cast<std::size_t>(j)].apply(
            rest[static_cast<std::size_t>(j)]) +
        root;
  return out;
}

HandMesh ManoHandModel::pose(const ShapeParams& beta, const PoseParams& theta,
                             const Vec3& root) const {
  const hand::JointSet rest = shaped_joints(beta);
  std::array<Affine, hand::kNumJoints> global;
  for (int j = 0; j < hand::kNumJoints; ++j) {
    const Affine local = about_pivot(
        Quaternion::from_rotation_vector(theta[static_cast<std::size_t>(j)]),
        rest[static_cast<std::size_t>(j)]);
    const int parent = hand::joint_parent(j);
    global[static_cast<std::size_t>(j)] =
        parent < 0 ? local
                   : compose(global[static_cast<std::size_t>(parent)], local);
  }

  const std::vector<Vec3> tp = deformed_template(beta, theta);
  HandMesh mesh;
  mesh.faces = template_.faces();
  mesh.vertices.resize(tp.size());
  const auto& skinning = template_.skinning();
  for (std::size_t v = 0; v < tp.size(); ++v) {
    Vec3 acc;
    for (const auto& [joint, weight] : skinning[v])
      acc += global[static_cast<std::size_t>(joint)].apply(tp[v]) * weight;
    mesh.vertices[v] = acc + root;
  }
  return mesh;
}

PoseParams quaternions_to_pose(
    const std::array<Quaternion, hand::kNumJoints>& q) {
  PoseParams theta;
  for (int j = 0; j < hand::kNumJoints; ++j)
    theta[static_cast<std::size_t>(j)] =
        q[static_cast<std::size_t>(j)].to_rotation_vector();
  return theta;
}

PoseParams pose_from_articulation(const hand::HandProfile& profile,
                                  const hand::HandPose& pose) {
  std::array<Quaternion, hand::kNumJoints> q;
  q.fill(Quaternion::identity());
  q[hand::kWrist] = pose.orientation;

  const Vec3 z{0.0, 0.0, 1.0};
  for (int f = 0; f < hand::kNumFingers; ++f) {
    const auto fi = static_cast<std::size_t>(f);
    const auto& art = pose.fingers[fi];
    // Rest lateral axis of the finger (same construction as the FK).
    const Quaternion rz_rest =
        Quaternion::from_axis_angle(z, profile.rest_splay[fi]);
    const Vec3 dir_rest = rz_rest.rotate(Vec3{0.0, 1.0, 0.0});
    const Vec3 lateral = z.cross(dir_rest).normalized();

    const int base = hand::finger_base(static_cast<hand::Finger>(f));
    // Local rotations expressed in rest coordinates: flexions about the
    // shared lateral axis compose additively down the chain, which makes
    // the rig's forward kinematics agree exactly with
    // hand::forward_kinematics (see tests).
    q[static_cast<std::size_t>(base)] =
        Quaternion::from_axis_angle(z, art.splay) *
        Quaternion::from_axis_angle(lateral, art.mcp);
    q[static_cast<std::size_t>(base + 1)] =
        Quaternion::from_axis_angle(lateral, art.pip);
    q[static_cast<std::size_t>(base + 2)] =
        Quaternion::from_axis_angle(lateral, art.dip);
  }
  return quaternions_to_pose(q);
}

}  // namespace mmhand::mesh
