#include "mmhand/pose/mmspacenet.hpp"

#include "mmhand/obs/trace.hpp"

namespace mmhand::pose {

ResidualAttentionBlock::ResidualAttentionBlock(
    int in_channels, int out_channels, Rng& rng,
    const AttentionSwitches& attention)
    : attention_(attention),
      skip_(in_channels, out_channels, 1, 1, 0, rng),
      down1_(in_channels, out_channels, 3, 2, 1, rng),
      down2_(out_channels, out_channels, 3, 2, 1, rng),
      up1_(out_channels, out_channels, 4, 2, 1, rng),
      up2_(out_channels, out_channels, 4, 2, 1, rng),
      frame_att_(rng),
      channel_att_(out_channels, rng),
      spatial_att_(rng, 5) {}

nn::Tensor ResidualAttentionBlock::forward(const nn::Tensor& x,
                                           bool training) {
  MMHAND_CHECK(x.rank() == 4, "block expects [N, C, H, W]");
  MMHAND_CHECK(x.dim(2) % 4 == 0 && x.dim(3) % 4 == 0,
               "block needs extents divisible by 4, got " << x.dim(2) << "x"
                                                          << x.dim(3));
  // Branch 1: 1x1 channel adjustment at full resolution.
  nn::Tensor skip = skip_.forward(x, training);
  // Branch 2: hourglass (down x2, up x2) for fine-grained deep features.
  nn::Tensor h = down1_.forward(x, training);
  h = down1_act_.forward(h, training);
  h = down2_.forward(h, training);
  h = down2_act_.forward(h, training);
  h = up1_.forward(h, training);
  h = up1_act_.forward(h, training);
  h = up2_.forward(h, training);
  MMHAND_ASSERT(h.same_shape(skip));
  h.add_(skip);

  if (attention_.frame) h = frame_att_.forward(h, training);
  if (attention_.channel) h = channel_att_.forward(h, training);
  if (attention_.spatial) h = spatial_att_.forward(h, training);
  return out_act_.forward(h, training);
}

nn::Tensor ResidualAttentionBlock::backward(const nn::Tensor& grad_out) {
  nn::Tensor g = out_act_.backward(grad_out);
  if (attention_.spatial) g = spatial_att_.backward(g);
  if (attention_.channel) g = channel_att_.backward(g);
  if (attention_.frame) g = frame_att_.backward(g);

  // The merge point: gradient flows into both branches.
  nn::Tensor g_skip = skip_.backward(g);
  nn::Tensor g_main = up2_.backward(g);
  g_main = up1_act_.backward(g_main);
  g_main = up1_.backward(g_main);
  g_main = down2_act_.backward(g_main);
  g_main = down2_.backward(g_main);
  g_main = down1_act_.backward(g_main);
  g_main = down1_.backward(g_main);
  g_skip.add_(g_main);
  return g_skip;
}

std::vector<nn::Parameter*> ResidualAttentionBlock::parameters() {
  std::vector<nn::Parameter*> out;
  for (nn::Layer* l :
       std::initializer_list<nn::Layer*>{&skip_, &down1_, &down2_, &up1_,
                                         &up2_, &frame_att_, &channel_att_,
                                         &spatial_att_}) {
    const auto p = l->parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

MmSpaceNet::MmSpaceNet(const MmSpaceNetConfig& config, Rng& rng)
    : config_(config),
      stem_(config.input_channels, config.stem_channels, 3, 2, 1, rng),
      block1_(config.stem_channels, config.block1_channels, rng,
              config.attention),
      block2_(config.block1_channels, config.block2_channels, rng,
              config.attention),
      reduce_(config.block2_channels, config.block2_channels, 3, 2, 1, rng) {}

nn::Tensor MmSpaceNet::forward(const nn::Tensor& x, bool training) {
  MMHAND_SPAN("pose/spacenet_forward");
  nn::Tensor h = stem_.forward(x, training);
  h = stem_act_.forward(h, training);
  h = block1_.forward(h, training);
  h = block2_.forward(h, training);
  h = reduce_.forward(h, training);
  return reduce_act_.forward(h, training);
}

nn::Tensor MmSpaceNet::backward(const nn::Tensor& grad_out) {
  MMHAND_SPAN("pose/spacenet_backward");
  nn::Tensor g = reduce_act_.backward(grad_out);
  g = reduce_.backward(g);
  g = block2_.backward(g);
  g = block1_.backward(g);
  g = stem_act_.backward(g);
  return stem_.backward(g);
}

std::vector<nn::Parameter*> MmSpaceNet::parameters() {
  std::vector<nn::Parameter*> out;
  for (nn::Layer* l : std::initializer_list<nn::Layer*>{&stem_, &block1_,
                                                        &block2_, &reduce_}) {
    const auto p = l->parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

}  // namespace mmhand::pose
