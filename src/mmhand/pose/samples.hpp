#pragma once

// Converts recordings into network samples: sliding windows of
// S segments x st frames with one 63-D joint label per segment.

#include <vector>

#include "mmhand/pose/joint_model.hpp"
#include "mmhand/sim/dataset.hpp"

namespace mmhand::pose {

struct PoseSample {
  nn::Tensor input;   ///< [S*st, V, D, A], normalized
  nn::Tensor labels;  ///< [S, 63] noisy ground-truth joints (meters)
  nn::Tensor oracle;  ///< [S, 63] noise-free joints (evaluation reference)
  std::vector<int> label_frames;  ///< recording frame index per segment
  int user_id = 0;
};

/// Cuts a recording into samples.  `stride` is the window hop in frames
/// (defaults to a full non-overlapping window).
std::vector<PoseSample> make_pose_samples(const sim::Recording& recording,
                                          const PoseNetConfig& config,
                                          int stride = 0);

/// Mean of all labels, used to center the regression head.
nn::Tensor label_mean(const std::vector<PoseSample>& samples);

/// Converts one 63-float row into a JointSet.
hand::JointSet row_to_joints(const nn::Tensor& rows, int row);

}  // namespace mmhand::pose
