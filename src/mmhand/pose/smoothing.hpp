#pragma once

// Temporal smoothing of predicted skeletons.
//
// The network predicts each window independently; real interactive
// deployments (§I's UI-control use case) smooth the stream.  Two filters
// are provided: an exponential moving average and a per-coordinate
// constant-velocity Kalman filter.  bench-free extension; evaluated by
// tests and usable from the examples.

#include <vector>

#include "mmhand/pose/inference.hpp"

namespace mmhand::pose {

/// Exponential moving average over joint positions.
class EmaSmoother {
 public:
  /// alpha in (0, 1]: weight of the newest observation (1 = passthrough).
  explicit EmaSmoother(double alpha);

  hand::JointSet filter(const hand::JointSet& observation);
  void reset() { initialized_ = false; }

 private:
  double alpha_;
  bool initialized_ = false;
  hand::JointSet state_{};
};

/// Constant-velocity Kalman filter applied independently per joint
/// coordinate: state [position, velocity], scalar measurements.
struct KalmanConfig {
  double dt = 0.04;                ///< seconds between observations
  double process_noise = 4.0;     ///< acceleration spectral density (m/s^2)^2
  double measurement_noise = 4e-4; ///< observation variance (m^2)
};

class JointKalmanSmoother {
 public:
  explicit JointKalmanSmoother(const KalmanConfig& config = {});

  hand::JointSet filter(const hand::JointSet& observation);
  void reset();

 private:
  struct Track {
    double pos = 0.0, vel = 0.0;
    // Covariance [p, v].
    double p00 = 1.0, p01 = 0.0, p11 = 1.0;
  };
  KalmanConfig config_;
  bool initialized_ = false;
  std::array<std::array<Track, 3>, hand::kNumJoints> tracks_{};
};

/// Applies a smoother over a prediction stream (sorted by frame index).
std::vector<FramePrediction> smooth_predictions(
    const std::vector<FramePrediction>& predictions,
    const KalmanConfig& config = {});

}  // namespace mmhand::pose
