#pragma once

// Dynamic-time-warping sequence matching over skeleton streams.
//
// The paper motivates mmHand with sign-language understanding (§I), which
// needs more than per-frame gesture labels: a *sequence* of hand shapes
// forms the sign.  This module matches a stream of predicted skeletons
// against reference gesture sequences under DTW, tolerating the timing
// variation of natural signing.

#include <string>
#include <vector>

#include "mmhand/hand/gesture.hpp"
#include "mmhand/hand/skeleton.hpp"

namespace mmhand::pose {

/// A skeleton descriptor sequence (one descriptor per frame).
using DescriptorSequence = std::vector<std::vector<double>>;

/// Rotation/translation-invariant per-frame descriptor (shared with the
/// GestureClassifier's feature design).
std::vector<double> skeleton_descriptor(const hand::JointSet& joints);

/// Classic DTW distance between two descriptor sequences under the L1
/// ground metric, normalized by the warping-path length.
double dtw_distance(const DescriptorSequence& a, const DescriptorSequence& b);

/// A named reference sequence (e.g. the sign "1-2-3" as a gesture chain).
struct SequenceTemplate {
  std::string name;
  DescriptorSequence frames;
};

class SequenceMatcher {
 public:
  /// Registers a template built from a gesture chain: each gesture is held
  /// for `hold_frames` with linear transitions of `blend_frames` between
  /// consecutive gestures (reference profile kinematics).
  void add_template(const std::string& name,
                    const std::vector<hand::Gesture>& chain,
                    int hold_frames = 4, int blend_frames = 3);

  /// Registers a raw descriptor sequence.
  void add_template(SequenceTemplate tmpl);

  /// Name and DTW distance of the best-matching template.
  struct Match {
    std::string name;
    double distance = 0.0;
  };
  Match match(const std::vector<hand::JointSet>& skeletons) const;

  std::size_t size() const { return templates_.size(); }

 private:
  std::vector<SequenceTemplate> templates_;
};

}  // namespace mmhand::pose
