#include "mmhand/pose/checkpoint.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "mmhand/common/io_safe.hpp"
#include "mmhand/obs/log.hpp"

namespace mmhand::pose {

namespace {

constexpr std::uint32_t kCheckpointMagic = 0x6d6d4b31;  // "mmK1"
constexpr std::uint32_t kCheckpointVersion = 1;

/// Geometry fields a checkpoint must agree on before any state is
/// restored; a mismatch means the caller changed the protocol and the
/// checkpoint is stale, not resumable.
void write_geometry(BinaryWriter& w, const PoseNetConfig& net) {
  w.write_u32(static_cast<std::uint32_t>(net.segment_frames));
  w.write_u32(static_cast<std::uint32_t>(net.sequence_segments));
  w.write_u32(static_cast<std::uint32_t>(net.velocity_bins));
  w.write_u32(static_cast<std::uint32_t>(net.range_bins));
  w.write_u32(static_cast<std::uint32_t>(net.angle_bins));
  w.write_u32(static_cast<std::uint32_t>(net.temporal));
}

bool geometry_matches(BinaryReader& r, const PoseNetConfig& net) {
  return r.read_u32() == static_cast<std::uint32_t>(net.segment_frames) &&
         r.read_u32() == static_cast<std::uint32_t>(net.sequence_segments) &&
         r.read_u32() == static_cast<std::uint32_t>(net.velocity_bins) &&
         r.read_u32() == static_cast<std::uint32_t>(net.range_bins) &&
         r.read_u32() == static_cast<std::uint32_t>(net.angle_bins) &&
         r.read_u32() == static_cast<std::uint32_t>(net.temporal);
}

}  // namespace

std::string checkpoint_directory() {
  if (const char* env = std::getenv("MMHAND_CHECKPOINT_DIR"); env && *env)
    return env;
  return "";
}

std::string checkpoint_path(const std::string& dir, std::uint64_t seed) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "train_%016llx.ckpt",
                static_cast<unsigned long long>(seed));
  return (std::filesystem::path(dir) / buf).string();
}

void save_checkpoint(const std::string& path, HandJointRegressor& model,
                     const nn::Adam& optimizer, Rng& rng,
                     const TrainConfig& config, int next_epoch,
                     const std::vector<double>& epoch_loss) {
  BinaryWriter w(path);
  w.write_u32(kCheckpointMagic);
  w.write_u32(kCheckpointVersion);
  w.write_u64(config.seed);
  w.write_u32(static_cast<std::uint32_t>(config.epochs));
  write_geometry(w, model.config());
  w.write_u32(static_cast<std::uint32_t>(next_epoch));
  w.write_u64(epoch_loss.size());
  for (const double loss : epoch_loss) w.write_f64(loss);
  // mt19937_64 serializes its full 312-word state as text; restoring it
  // makes the resumed permutation stream identical to the uninterrupted
  // one.
  std::ostringstream engine_state;
  engine_state << rng.engine();
  w.write_string(engine_state.str());
  nn::save_parameters(model.parameters(), w);
  optimizer.save(w);
  w.close();
}

bool load_checkpoint(const std::string& path, HandJointRegressor& model,
                     nn::Adam& optimizer, Rng& rng,
                     const TrainConfig& config, int* next_epoch,
                     std::vector<double>* epoch_loss) {
  if (!file_exists(path)) return false;
  try {
    BinaryReader r(path);
    MMHAND_CHECK(r.read_u32() == kCheckpointMagic,
                 "not an mmHand training checkpoint: " << path);
    MMHAND_CHECK(r.read_u32() == kCheckpointVersion,
                 "unsupported checkpoint version in " << path);
    MMHAND_CHECK(r.read_u64() == config.seed,
                 "checkpoint seed differs from the training config");
    MMHAND_CHECK(r.read_u32() == static_cast<std::uint32_t>(config.epochs),
                 "checkpoint epoch budget differs from the training config");
    MMHAND_CHECK(geometry_matches(r, model.config()),
                 "checkpoint geometry differs from the model config");
    const int resume_epoch = static_cast<int>(r.read_u32());
    MMHAND_CHECK(resume_epoch >= 0 && resume_epoch <= config.epochs,
                 "checkpoint epoch index " << resume_epoch
                                           << " out of range");
    const auto n_losses = r.read_u64();
    MMHAND_CHECK(n_losses == static_cast<std::uint64_t>(resume_epoch),
                 "checkpoint loss history length mismatch");
    std::vector<double> losses;
    losses.reserve(n_losses);
    for (std::uint64_t i = 0; i < n_losses; ++i)
      losses.push_back(r.read_f64());
    std::istringstream engine_state(r.read_string());
    std::mt19937_64 engine;
    engine_state >> engine;
    MMHAND_CHECK(!engine_state.fail(), "corrupt RNG state in " << path);

    // Parse the parameter section into temporaries before assigning
    // anything, so a structural mismatch leaves the caller's state
    // untouched (the envelope CRC already rules out bit rot).
    auto params = model.parameters();
    const auto n_params = r.read_u64();
    MMHAND_CHECK(n_params == params.size(),
                 "checkpoint has " << n_params << " parameters, model"
                                   << " expects " << params.size());
    std::vector<std::vector<float>> values;
    values.reserve(params.size());
    for (nn::Parameter* p : params) {
      (void)r.read_string();  // parameter name, informational
      const auto shape = r.read_i32_vector();
      auto v = r.read_f32_vector();
      MMHAND_CHECK(nn::Shape(shape) == p->value.shape(),
                   "checkpoint parameter shape mismatch");
      values.push_back(std::move(v));
    }
    optimizer.load(r);  // validates geometry before assigning
    for (std::size_t i = 0; i < params.size(); ++i)
      params[i]->value = nn::Tensor::from_vector(params[i]->value.shape(),
                                                 std::move(values[i]));
    rng.engine() = engine;
    *next_epoch = resume_epoch;
    *epoch_loss = std::move(losses);
    return true;
  } catch (const Error& e) {
    const std::string moved = io_safe::quarantine(path);
    MMHAND_WARN("checkpoint %s is unusable (%s); quarantined%s%s — "
                "restarting training from scratch",
                path.c_str(), e.what(), moved.empty() ? "" : " to ",
                moved.c_str());
    return false;
  }
}

}  // namespace mmhand::pose
