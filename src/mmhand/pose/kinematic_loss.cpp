#include "mmhand/pose/kinematic_loss.hpp"

#include <cmath>

#include "mmhand/common/vec3.hpp"

namespace mmhand::pose {

namespace {

Vec3 joint_of(const nn::Tensor& t, int joint) {
  const std::size_t b = static_cast<std::size_t>(3 * joint);
  return Vec3{t[b], t[b + 1], t[b + 2]};
}

void add_grad(nn::Tensor& grad, int joint, const Vec3& g) {
  const std::size_t b = static_cast<std::size_t>(3 * joint);
  grad[b] += static_cast<float>(g.x);
  grad[b + 1] += static_cast<float>(g.y);
  grad[b + 2] += static_cast<float>(g.z);
}

/// d|b - a| contribution: returns unit vector from a to b (grad w.r.t. b;
/// negate for a).  Zero-safe.
Vec3 unit_or_zero(const Vec3& v) {
  const double n = v.norm();
  return n > 1e-9 ? v / n : Vec3{};
}

}  // namespace

bool finger_is_collinear(const nn::Tensor& gt, int finger,
                         const KinematicLossConfig& config) {
  MMHAND_CHECK(finger >= 0 && finger < hand::kNumFingers, "finger index");
  const int base = 1 + 4 * finger;
  const Vec3 a = joint_of(gt, base), b = joint_of(gt, base + 1),
             c = joint_of(gt, base + 2), d = joint_of(gt, base + 3);
  const double chain = distance(a, b) + distance(b, c) + distance(c, d);
  const double direct = distance(a, d);
  return direct > 1e-9 && chain < (1.0 + config.phi) * direct;
}

nn::LossResult kinematic_loss(const nn::Tensor& pred, const nn::Tensor& gt,
                              const KinematicLossConfig& config) {
  MMHAND_CHECK(pred.numel() == 63 && gt.numel() == 63,
               "kinematic_loss expects 21x3 joints");
  nn::LossResult out;
  out.grad = nn::Tensor::zeros(pred.shape());

  for (int f = 0; f < hand::kNumFingers; ++f) {
    const int base = 1 + 4 * f;
    const Vec3 a = joint_of(pred, base), b = joint_of(pred, base + 1),
               c = joint_of(pred, base + 2), d = joint_of(pred, base + 3);
    const Vec3 a_gt = joint_of(gt, base), b_gt = joint_of(gt, base + 1),
               d_gt = joint_of(gt, base + 3);

    if (finger_is_collinear(gt, f, config)) {
      // --- Collinear case (Eq. 9). ---
      const Vec3 e_d = unit_or_zero(d_gt - a_gt);
      // Chain-length slack.
      const double chain =
          distance(a, b) + distance(b, c) + distance(c, d);
      const double slack = chain - (1.0 + config.phi) * distance(a, d);
      if (slack > 0.0) {
        out.value += slack;
        const Vec3 uab = unit_or_zero(b - a), ubc = unit_or_zero(c - b),
                   ucd = unit_or_zero(d - c), uad = unit_or_zero(d - a);
        add_grad(out.grad, base, -uab + (1.0 + config.phi) * uad);
        add_grad(out.grad, base + 1, uab - ubc);
        add_grad(out.grad, base + 2, ubc - ucd);
        add_grad(out.grad, base + 3, ucd - (1.0 + config.phi) * uad);
      }
      // Per-phalange alignment hinges.
      const std::array<std::pair<int, int>, 3> bones{
          std::pair{base, base + 1}, std::pair{base + 1, base + 2},
          std::pair{base + 2, base + 3}};
      for (const auto& [ja, jb] : bones) {
        const Vec3 v = joint_of(pred, jb) - joint_of(pred, ja);
        const double n = v.norm();
        if (n < 1e-9) continue;
        const double cosang = v.dot(e_d) / n;
        const double hinge = config.t - cosang;
        if (hinge > 0.0) {
          out.value += hinge;
          // d(cos)/dv = e/|v| - (v.e) v / |v|^3; loss grad is its negation.
          const Vec3 dcos = e_d / n - v * (v.dot(e_d) / (n * n * n));
          add_grad(out.grad, ja, dcos);
          add_grad(out.grad, jb, -dcos);
        }
      }
    } else {
      // --- Coplanar case: phalanges orthogonal to the plane normal. ---
      const Vec3 n_raw = (b_gt - a_gt).cross(d_gt - a_gt);
      const Vec3 e_n = unit_or_zero(n_raw);
      if (e_n.norm() < 0.5) continue;  // degenerate ground truth
      const std::array<std::pair<int, int>, 3> bones{
          std::pair{base, base + 1}, std::pair{base + 1, base + 2},
          std::pair{base + 2, base + 3}};
      for (const auto& [ja, jb] : bones) {
        const Vec3 v = joint_of(pred, jb) - joint_of(pred, ja);
        const double dot = v.dot(e_n);
        out.value += std::abs(dot);
        const Vec3 g = (dot >= 0.0 ? e_n : -e_n);
        add_grad(out.grad, ja, -g);
        add_grad(out.grad, jb, g);
      }
    }
  }
  return out;
}

nn::LossResult combined_pose_loss(const nn::Tensor& pred,
                                  const nn::Tensor& gt,
                                  const CombinedLossConfig& config) {
  auto l3d = nn::joint_l2_loss(pred, gt);
  const auto kine = kinematic_loss(pred, gt, config.kine);
  nn::LossResult out;
  out.value = config.beta * l3d.value + config.gamma * kine.value;
  out.grad = std::move(l3d.grad);
  out.grad.scale_(static_cast<float>(config.beta));
  out.grad.axpy_(static_cast<float>(config.gamma), kine.grad);
  return out;
}

}  // namespace mmhand::pose
