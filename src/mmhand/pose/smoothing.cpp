#include "mmhand/pose/smoothing.hpp"

#include <algorithm>

namespace mmhand::pose {

EmaSmoother::EmaSmoother(double alpha) : alpha_(alpha) {
  MMHAND_CHECK(alpha > 0.0 && alpha <= 1.0, "EMA alpha " << alpha);
}

hand::JointSet EmaSmoother::filter(const hand::JointSet& observation) {
  if (!initialized_) {
    state_ = observation;
    initialized_ = true;
    return state_;
  }
  for (int j = 0; j < hand::kNumJoints; ++j) {
    auto& s = state_[static_cast<std::size_t>(j)];
    const auto& o = observation[static_cast<std::size_t>(j)];
    s = s * (1.0 - alpha_) + o * alpha_;
  }
  return state_;
}

JointKalmanSmoother::JointKalmanSmoother(const KalmanConfig& config)
    : config_(config) {
  MMHAND_CHECK(config.dt > 0.0 && config.process_noise > 0.0 &&
                   config.measurement_noise > 0.0,
               "Kalman config");
}

void JointKalmanSmoother::reset() {
  initialized_ = false;
  tracks_ = {};
}

hand::JointSet JointKalmanSmoother::filter(
    const hand::JointSet& observation) {
  const double dt = config_.dt;
  const double q = config_.process_noise;
  const double r = config_.measurement_noise;

  hand::JointSet out{};
  for (int j = 0; j < hand::kNumJoints; ++j) {
    const Vec3& obs = observation[static_cast<std::size_t>(j)];
    const double coords[3] = {obs.x, obs.y, obs.z};
    double filtered[3];
    for (int c = 0; c < 3; ++c) {
      Track& t = tracks_[static_cast<std::size_t>(j)]
                        [static_cast<std::size_t>(c)];
      if (!initialized_) {
        t.pos = coords[c];
        t.vel = 0.0;
        t.p00 = r;
        t.p01 = 0.0;
        t.p11 = 1.0;
        filtered[c] = coords[c];
        continue;
      }
      // Predict: x' = F x, P' = F P F^T + Q (white-acceleration model).
      const double pos_pred = t.pos + dt * t.vel;
      const double p00 = t.p00 + dt * (t.p01 + t.p01 + dt * t.p11) +
                         q * dt * dt * dt * dt / 4.0;
      const double p01 = t.p01 + dt * t.p11 + q * dt * dt * dt / 2.0;
      const double p11 = t.p11 + q * dt * dt;
      // Update with the scalar position measurement.
      const double innovation = coords[c] - pos_pred;
      const double s_cov = p00 + r;
      const double k0 = p00 / s_cov;
      const double k1 = p01 / s_cov;
      t.pos = pos_pred + k0 * innovation;
      t.vel = t.vel + k1 * innovation;
      t.p00 = (1.0 - k0) * p00;
      t.p01 = (1.0 - k0) * p01;
      t.p11 = p11 - k1 * p01;
      filtered[c] = t.pos;
    }
    out[static_cast<std::size_t>(j)] =
        Vec3{filtered[0], filtered[1], filtered[2]};
  }
  initialized_ = true;
  return out;
}

std::vector<FramePrediction> smooth_predictions(
    const std::vector<FramePrediction>& predictions,
    const KalmanConfig& config) {
  std::vector<FramePrediction> sorted = predictions;
  std::sort(sorted.begin(), sorted.end(),
            [](const FramePrediction& a, const FramePrediction& b) {
              return a.frame_index < b.frame_index;
            });
  JointKalmanSmoother smoother(config);
  for (auto& p : sorted) p.joints = smoother.filter(p.joints);
  return sorted;
}

}  // namespace mmhand::pose
