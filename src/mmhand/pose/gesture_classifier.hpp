#pragma once

// Gesture classification from predicted skeletons — the downstream
// application the paper's introduction motivates (UI control, sign
// language).  Matches wrist-centered joint geometry against the gesture
// vocabulary's kinematic templates using rotation-invariant features.

#include <vector>

#include "mmhand/hand/gesture.hpp"
#include "mmhand/hand/kinematics.hpp"

namespace mmhand::pose {

class GestureClassifier {
 public:
  /// Builds templates from a vocabulary (empty = all gestures) using the
  /// reference profile.
  explicit GestureClassifier(std::vector<hand::Gesture> vocabulary = {});

  /// Nearest-template gesture for a skeleton.
  hand::Gesture classify(const hand::JointSet& joints) const;

  /// Matching cost against a specific gesture (lower = closer).
  double cost(const hand::JointSet& joints, hand::Gesture gesture) const;

  const std::vector<hand::Gesture>& vocabulary() const { return vocab_; }

 private:
  /// Rotation/translation-invariant descriptor: fingertip-to-wrist and
  /// fingertip-to-fingertip distances.
  static std::vector<double> descriptor(const hand::JointSet& joints);

  std::vector<hand::Gesture> vocab_;
  std::vector<std::vector<double>> templates_;
};

/// Row-normalized confusion matrix over (truth, prediction) pairs.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::vector<hand::Gesture> vocabulary);

  void add(hand::Gesture truth, hand::Gesture predicted);
  /// Overall accuracy in [0, 1]; 0 when empty.
  double accuracy() const;
  /// Count of (truth, predicted) cell.
  int count(hand::Gesture truth, hand::Gesture predicted) const;
  std::size_t total() const { return total_; }

 private:
  int index_of(hand::Gesture g) const;

  std::vector<hand::Gesture> vocab_;
  std::vector<int> counts_;  ///< row-major [truth][predicted]
  std::size_t total_ = 0;
};

}  // namespace mmhand::pose
