#include "mmhand/pose/trainer.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <map>
#include <sstream>

#include "mmhand/common/parallel.hpp"
#include "mmhand/common/realtime.hpp"
#include "mmhand/nn/optimizer.hpp"
#include "mmhand/nn/tensor_stats.hpp"
#include "mmhand/obs/obs.hpp"
#include "mmhand/pose/checkpoint.hpp"

namespace mmhand::pose {

namespace {

/// Per-epoch training metrics; gated on `metrics_enabled` so the default
/// path never reads a clock or touches the registry.
void note_epoch(int epoch, double loss, double lr_scale,
                std::size_t samples, double seconds) {
  if (!obs::metrics_enabled()) return;
  static obs::Counter& epochs = obs::counter("pose/train.epochs");
  static obs::Counter& seen = obs::counter("pose/train.samples");
  static obs::Gauge& g_loss = obs::gauge("pose/train.loss");
  static obs::Gauge& g_lr = obs::gauge("pose/train.lr_scale");
  static obs::Gauge& g_rate = obs::gauge("pose/train.samples_per_s");
  epochs.add(1);
  seen.add(static_cast<std::int64_t>(samples));
  g_loss.set(loss);
  g_lr.set(lr_scale);
  if (seconds > 0.0) g_rate.set(static_cast<double>(samples) / seconds);
  MMHAND_DEBUG("train epoch %d loss %.6f lr_scale %.4f (%.1f samples/s)",
               epoch, loss, lr_scale,
               seconds > 0.0 ? static_cast<double>(samples) / seconds : 0.0);
}

const char* temporal_name(TemporalKind kind) {
  switch (kind) {
    case TemporalKind::kLstm:
      return "lstm";
    case TemporalKind::kGru:
      return "gru";
    case TemporalKind::kNone:
      return "none";
  }
  return "?";
}

const char* numeric_mode_name(obs::NumericCheckMode mode) {
  switch (mode) {
    case obs::NumericCheckMode::kOff:
      return "off";
    case obs::NumericCheckMode::kWarn:
      return "warn";
    case obs::NumericCheckMode::kFatal:
      return "fatal";
  }
  return "?";
}

/// Opening record of a training run: everything needed to re-run or
/// attribute it — config, model geometry, environment, build.
void append_manifest(const HandJointRegressor& model,
                     const TrainConfig& config, std::size_t samples,
                     std::size_t param_count) {
  const PoseNetConfig& net = model.config();
  obs::RunRecord rec("manifest");
  rec.field("run", "train_pose_model")
      .field("seed", static_cast<std::int64_t>(config.seed))
      .field("epochs", config.epochs)
      .field("batch_size", config.batch_size)
      .field("lr", config.lr)
      .field("loss_beta", config.loss.beta)
      .field("loss_gamma", config.loss.gamma)
      .field("samples", samples)
      .field("param_count", param_count)
      .field("segment_frames", net.segment_frames)
      .field("sequence_segments", net.sequence_segments)
      .field("velocity_bins", net.velocity_bins)
      .field("range_bins", net.range_bins)
      .field("angle_bins", net.angle_bins)
      .field("feature_dim", net.feature_dim)
      .field("lstm_hidden", net.lstm_hidden)
      .field("temporal", temporal_name(net.temporal))
      .field("threads", num_threads())
      .field("log_level", static_cast<int>(obs::log_level()))
      .field("trace", obs::tracing_enabled())
      .field("metrics", obs::metrics_enabled())
      .field("numeric_check", numeric_mode_name(obs::numeric_check_mode()))
#if defined(__VERSION__)
      .field("compiler", __VERSION__)
#endif
#if defined(NDEBUG)
      .field("assertions", false);
#else
      .field("assertions", true);
#endif
  obs::append_run_record(rec);
}

/// Tensor stats as a compact JSON object for a run record.
std::string stats_json(const nn::TensorStats& s) {
  std::ostringstream os;
  os << "{\"min\": " << obs::detail::json_number(s.min)
     << ", \"max\": " << obs::detail::json_number(s.max)
     << ", \"rms\": " << obs::detail::json_number(s.rms)
     << ", \"nan\": " << s.nan_count << ", \"inf\": " << s.inf_count
     << ", \"count\": " << s.count << "}";
  return os.str();
}

/// Folds `s` into the running group stats `into`.  Min/max merge
/// exactly; the merged "rms" keeps the worst member RMS, which preserves
/// the is-anything-blowing-up signal the record exists for without
/// carrying per-member finite counts.
void merge_stats(nn::TensorStats& into, const nn::TensorStats& s) {
  const bool into_empty = into.count == into.nan_count + into.inf_count;
  const bool s_empty = s.count == s.nan_count + s.inf_count;
  into.nan_count += s.nan_count;
  into.inf_count += s.inf_count;
  into.count += s.count;
  if (s_empty) return;
  if (into_empty) {
    into.min = s.min;
    into.max = s.max;
    into.rms = s.rms;
  } else {
    into.min = std::min(into.min, s.min);
    into.max = std::max(into.max, s.max);
    into.rms = std::max(into.rms, s.rms);
  }
}

/// Weight/grad health per parameter group, where a "group" is every
/// parameter sharing a name ("linear.weight", "conv.bias", ...): the
/// model reuses layer types many times and per-tensor rows would bloat
/// each epoch record ~10x without aiding diagnosis.
std::string param_group_stats_json(
    const std::vector<nn::Parameter*>& params) {
  struct Group {
    nn::TensorStats w, g;
    int tensors = 0;
  };
  std::map<std::string, Group> groups;
  for (const nn::Parameter* p : params) {
    Group& group = groups[p->name.empty() ? "unnamed" : p->name];
    ++group.tensors;
    merge_stats(group.w, nn::tensor_stats(p->value));
    merge_stats(group.g, nn::tensor_stats(p->grad));
  }
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (const auto& [name, group] : groups) {
    os << (first ? "" : ", ") << '"' << obs::detail::json_escape(name)
       << "\": {\"tensors\": " << group.tensors
       << ", \"weight\": " << stats_json(group.w)
       << ", \"grad\": " << stats_json(group.g) << '}';
    first = false;
  }
  os << '}';
  return os.str();
}

}  // namespace

TrainStats train_pose_model(HandJointRegressor& model,
                            const std::vector<PoseSample>& samples,
                            const TrainConfig& config) {
  MMHAND_CHECK(!samples.empty(), "training needs samples");
  MMHAND_CHECK(config.epochs >= 1 && config.batch_size >= 1, "train config");

  // Center the regression: start the head at the label mean.
  model.set_output_bias(label_mean(samples));

  nn::Adam optimizer(model.parameters(), {.lr = config.lr});
  Rng rng(config.seed);
  const int s_rows = model.config().sequence_segments;

  const bool record_run = obs::runlog_enabled();
  if (record_run)
    append_manifest(model, config, samples.size(),
                    nn::parameter_count(model.parameters()));

  TrainStats stats;
  int start_epoch = 0;
  std::string ckpt_path;
  const std::string ckpt_dir = config.checkpoint_dir.empty()
                                   ? checkpoint_directory()
                                   : config.checkpoint_dir;
  if (!ckpt_dir.empty()) {
    std::filesystem::create_directories(ckpt_dir);
    ckpt_path = checkpoint_path(ckpt_dir, config.seed);
    if (load_checkpoint(ckpt_path, model, optimizer, rng, config,
                        &start_epoch, &stats.epoch_loss))
      MMHAND_INFO("resuming training from %s at epoch %d",
                  ckpt_path.c_str(), start_epoch);
  }
  for (int epoch = start_epoch; epoch < config.epochs; ++epoch) {
    MMHAND_SPAN("pose/train_epoch");
    const bool timed = obs::metrics_enabled() || record_run;
    const std::chrono::steady_clock::time_point epoch_start =
        timed ? std::chrono::steady_clock::now()
              : std::chrono::steady_clock::time_point{};
    const double lr_scale = nn::cosine_decay(epoch, config.epochs);
    const auto order = rng.permutation(static_cast<int>(samples.size()));
    double epoch_loss = 0.0;
    double grad_norm = 0.0;          // captured at the epoch's last step
    std::string param_stats_json;    // likewise
    int since_step = 0;
    optimizer.zero_grad();
    for (std::size_t k = 0; k < order.size(); ++k) {
      const PoseSample& sample =
          samples[static_cast<std::size_t>(order[k])];
      nn::Tensor pred = model.forward(sample.input, /*training=*/true);
      // Per-segment combined loss, averaged over the sequence.
      nn::Tensor grad = nn::Tensor::zeros({s_rows, 63});
      double sample_loss = 0.0;
      for (int s = 0; s < s_rows; ++s) {
        nn::Tensor pred_row({63}), gt_row({63});
        for (int c = 0; c < 63; ++c) {
          pred_row[static_cast<std::size_t>(c)] = pred.at(s, c);
          gt_row[static_cast<std::size_t>(c)] = sample.labels.at(s, c);
        }
        const auto loss = combined_pose_loss(pred_row, gt_row, config.loss);
        sample_loss += loss.value;
        const float inv_rows = 1.0f / static_cast<float>(s_rows);
        for (int c = 0; c < 63; ++c)
          grad.at(s, c) = loss.grad[static_cast<std::size_t>(c)] * inv_rows;
      }
      if (obs::numeric_check_enabled()) {
        std::ostringstream detail;
        detail << "epoch " << epoch << " sample " << k;
        obs::check_finite_scalar("pose/train.loss", sample_loss,
                                 detail.str());
      }
      epoch_loss += sample_loss / s_rows;
      model.backward(grad);
      if (++since_step >= config.batch_size || k + 1 == order.size()) {
        if (record_run && k + 1 == order.size()) {
          // Snapshot gradient health at the epoch's final accumulated
          // batch, before step() consumes and zero_grad() clears it.
          grad_norm = nn::grad_l2_norm(model.parameters());
          param_stats_json = param_group_stats_json(model.parameters());
        }
        optimizer.step(lr_scale);
        optimizer.zero_grad();
        since_step = 0;
        if (obs::metrics_enabled()) {
          static obs::Counter& batches = obs::counter("pose/train.batches");
          batches.add(1);
        }
      }
    }
    epoch_loss /= static_cast<double>(samples.size());
    stats.epoch_loss.push_back(epoch_loss);
    const double seconds =
        timed ? std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - epoch_start)
                    .count()
              : 0.0;
    if (obs::metrics_enabled())
      note_epoch(epoch, epoch_loss, lr_scale, samples.size(), seconds);
    if (record_run) {
      obs::RunRecord rec("epoch");
      rec.field("epoch", epoch)
          .field("loss", epoch_loss)
          .field("lr_scale", lr_scale)
          .field("grad_norm", grad_norm)
          .field("wall_s", seconds)
          .field("samples_per_s",
                 seconds > 0.0
                     ? static_cast<double>(samples.size()) / seconds
                     : 0.0)
          .raw("params", param_stats_json);
      obs::append_run_record(rec);
    }
    if (obs::numeric_check_enabled()) {
      std::ostringstream detail;
      detail << "epoch " << epoch << " mean";
      obs::check_finite_scalar("pose/train.loss", epoch_loss, detail.str());
    }
    // Persist before the user callback: whatever that callback does
    // (logging, aborting the process), the epoch it reports is already
    // durable and the run can resume right after it.
    if (!ckpt_path.empty())
      save_checkpoint(ckpt_path, model, optimizer, rng, config, epoch + 1,
                      stats.epoch_loss);
    if (config.on_epoch) config.on_epoch(epoch, epoch_loss);
  }
  if (!ckpt_path.empty()) {
    std::error_code ec;
    std::filesystem::remove(ckpt_path, ec);
  }
  return stats;
}

MMHAND_REALTIME
nn::Tensor predict_sample(HandJointRegressor& model,
                          const PoseSample& sample) {
  MMHAND_SPAN("pose/joint_regression");
  return model.forward(sample.input, /*training=*/false);
}

}  // namespace mmhand::pose
