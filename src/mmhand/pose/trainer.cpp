#include "mmhand/pose/trainer.hpp"

#include <chrono>

#include "mmhand/nn/optimizer.hpp"
#include "mmhand/obs/obs.hpp"

namespace mmhand::pose {

namespace {

/// Per-epoch training metrics; gated on `metrics_enabled` so the default
/// path never reads a clock or touches the registry.
void note_epoch(int epoch, double loss, double lr_scale,
                std::size_t samples, double seconds) {
  if (!obs::metrics_enabled()) return;
  static obs::Counter& epochs = obs::counter("pose/train.epochs");
  static obs::Counter& seen = obs::counter("pose/train.samples");
  static obs::Gauge& g_loss = obs::gauge("pose/train.loss");
  static obs::Gauge& g_lr = obs::gauge("pose/train.lr_scale");
  static obs::Gauge& g_rate = obs::gauge("pose/train.samples_per_s");
  epochs.add(1);
  seen.add(static_cast<std::int64_t>(samples));
  g_loss.set(loss);
  g_lr.set(lr_scale);
  if (seconds > 0.0) g_rate.set(static_cast<double>(samples) / seconds);
  MMHAND_DEBUG("train epoch %d loss %.6f lr_scale %.4f (%.1f samples/s)",
               epoch, loss, lr_scale,
               seconds > 0.0 ? static_cast<double>(samples) / seconds : 0.0);
}

}  // namespace

TrainStats train_pose_model(HandJointRegressor& model,
                            const std::vector<PoseSample>& samples,
                            const TrainConfig& config) {
  MMHAND_CHECK(!samples.empty(), "training needs samples");
  MMHAND_CHECK(config.epochs >= 1 && config.batch_size >= 1, "train config");

  // Center the regression: start the head at the label mean.
  model.set_output_bias(label_mean(samples));

  nn::Adam optimizer(model.parameters(), {.lr = config.lr});
  Rng rng(config.seed);
  const int s_rows = model.config().sequence_segments;

  TrainStats stats;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    MMHAND_SPAN("pose/train_epoch");
    const std::chrono::steady_clock::time_point epoch_start =
        obs::metrics_enabled() ? std::chrono::steady_clock::now()
                               : std::chrono::steady_clock::time_point{};
    const double lr_scale = nn::cosine_decay(epoch, config.epochs);
    const auto order = rng.permutation(static_cast<int>(samples.size()));
    double epoch_loss = 0.0;
    int since_step = 0;
    optimizer.zero_grad();
    for (std::size_t k = 0; k < order.size(); ++k) {
      const PoseSample& sample =
          samples[static_cast<std::size_t>(order[k])];
      nn::Tensor pred = model.forward(sample.input, /*training=*/true);
      // Per-segment combined loss, averaged over the sequence.
      nn::Tensor grad = nn::Tensor::zeros({s_rows, 63});
      double sample_loss = 0.0;
      for (int s = 0; s < s_rows; ++s) {
        nn::Tensor pred_row({63}), gt_row({63});
        for (int c = 0; c < 63; ++c) {
          pred_row[static_cast<std::size_t>(c)] = pred.at(s, c);
          gt_row[static_cast<std::size_t>(c)] = sample.labels.at(s, c);
        }
        const auto loss = combined_pose_loss(pred_row, gt_row, config.loss);
        sample_loss += loss.value;
        const float inv_rows = 1.0f / static_cast<float>(s_rows);
        for (int c = 0; c < 63; ++c)
          grad.at(s, c) = loss.grad[static_cast<std::size_t>(c)] * inv_rows;
      }
      epoch_loss += sample_loss / s_rows;
      model.backward(grad);
      if (++since_step >= config.batch_size || k + 1 == order.size()) {
        optimizer.step(lr_scale);
        optimizer.zero_grad();
        since_step = 0;
      }
    }
    epoch_loss /= static_cast<double>(samples.size());
    stats.epoch_loss.push_back(epoch_loss);
    if (obs::metrics_enabled())
      note_epoch(epoch, epoch_loss, lr_scale, samples.size(),
                 std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - epoch_start)
                     .count());
    if (config.on_epoch) config.on_epoch(epoch, epoch_loss);
  }
  return stats;
}

nn::Tensor predict_sample(HandJointRegressor& model,
                          const PoseSample& sample) {
  MMHAND_SPAN("pose/joint_regression");
  return model.forward(sample.input, /*training=*/false);
}

}  // namespace mmhand::pose
