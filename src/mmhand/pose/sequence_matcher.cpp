#include "mmhand/pose/sequence_matcher.hpp"

#include <cmath>
#include <limits>

#include "mmhand/common/error.hpp"
#include "mmhand/hand/kinematics.hpp"

namespace mmhand::pose {

std::vector<double> skeleton_descriptor(const hand::JointSet& joints) {
  static constexpr int kTips[5] = {4, 8, 12, 16, 20};
  const Vec3 wrist = joints[hand::kWrist];
  std::vector<double> d;
  d.reserve(15);
  for (int tip : kTips)
    d.push_back(distance(joints[static_cast<std::size_t>(tip)], wrist));
  for (int a = 0; a < 5; ++a)
    for (int b = a + 1; b < 5; ++b)
      d.push_back(distance(joints[static_cast<std::size_t>(kTips[a])],
                           joints[static_cast<std::size_t>(kTips[b])]));
  return d;
}

namespace {

double l1(const std::vector<double>& a, const std::vector<double>& b) {
  MMHAND_CHECK(a.size() == b.size(), "descriptor size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += std::abs(a[i] - b[i]);
  return s;
}

}  // namespace

double dtw_distance(const DescriptorSequence& a,
                    const DescriptorSequence& b) {
  MMHAND_CHECK(!a.empty() && !b.empty(), "DTW over an empty sequence");
  const std::size_t n = a.size(), m = b.size();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // Rolling two-row DP over the accumulated-cost matrix; a parallel table
  // tracks path lengths for the normalized distance.
  std::vector<double> prev(m + 1, kInf), cur(m + 1, kInf);
  std::vector<double> prev_len(m + 1, 0.0), cur_len(m + 1, 0.0);
  prev[0] = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    cur[0] = kInf;
    for (std::size_t j = 1; j <= m; ++j) {
      const double cost = l1(a[i - 1], b[j - 1]);
      double best = prev[j - 1];
      double best_len = prev_len[j - 1];
      if (prev[j] < best) {
        best = prev[j];
        best_len = prev_len[j];
      }
      if (cur[j - 1] < best) {
        best = cur[j - 1];
        best_len = cur_len[j - 1];
      }
      cur[j] = cost + best;
      cur_len[j] = best_len + 1.0;
    }
    std::swap(prev, cur);
    std::swap(prev_len, cur_len);
  }
  return prev[m] / prev_len[m];
}

void SequenceMatcher::add_template(SequenceTemplate tmpl) {
  MMHAND_CHECK(!tmpl.frames.empty(), "empty sequence template");
  templates_.push_back(std::move(tmpl));
}

void SequenceMatcher::add_template(const std::string& name,
                                   const std::vector<hand::Gesture>& chain,
                                   int hold_frames, int blend_frames) {
  MMHAND_CHECK(!chain.empty(), "empty gesture chain");
  MMHAND_CHECK(hold_frames >= 1 && blend_frames >= 0, "template timing");
  const auto profile = hand::HandProfile::reference();

  auto pose_of = [&](hand::Gesture g) {
    hand::HandPose pose;
    pose.fingers = hand::gesture_articulation(g);
    return pose;
  };

  SequenceTemplate tmpl;
  tmpl.name = name;
  for (std::size_t k = 0; k < chain.size(); ++k) {
    const hand::HandPose held = pose_of(chain[k]);
    for (int f = 0; f < hold_frames; ++f)
      tmpl.frames.push_back(skeleton_descriptor(
          hand::forward_kinematics(profile, held)));
    if (k + 1 < chain.size()) {
      const hand::HandPose next = pose_of(chain[k + 1]);
      for (int f = 1; f <= blend_frames; ++f) {
        const double t = static_cast<double>(f) / (blend_frames + 1);
        tmpl.frames.push_back(skeleton_descriptor(hand::forward_kinematics(
            profile, hand::HandPose::lerp(held, next, t))));
      }
    }
  }
  add_template(std::move(tmpl));
}

SequenceMatcher::Match SequenceMatcher::match(
    const std::vector<hand::JointSet>& skeletons) const {
  MMHAND_CHECK(!templates_.empty(), "matcher has no templates");
  MMHAND_CHECK(!skeletons.empty(), "matching an empty skeleton stream");
  DescriptorSequence query;
  query.reserve(skeletons.size());
  for (const auto& joints : skeletons)
    query.push_back(skeleton_descriptor(joints));

  Match best{templates_.front().name,
             std::numeric_limits<double>::infinity()};
  for (const auto& tmpl : templates_) {
    const double d = dtw_distance(query, tmpl.frames);
    if (d < best.distance) best = {tmpl.name, d};
  }
  return best;
}

}  // namespace mmhand::pose
