#pragma once

// The full 3-D hand joint regression network (§IV, Fig. 5): mmSpaceNet
// spatial features per frame, a per-segment feature projection, an LSTM
// over the segment sequence, and a fully-connected head that regresses the
// 21 joints' 3-D positions per segment.

#include <memory>
#include <string>

#include "mmhand/nn/gru.hpp"
#include "mmhand/nn/linear.hpp"
#include "mmhand/nn/lstm.hpp"
#include "mmhand/pose/mmspacenet.hpp"
#include "mmhand/radar/radar_cube.hpp"

namespace mmhand::pose {

/// Temporal feature extractor choice.  The paper uses an LSTM (§IV-A);
/// the alternatives exist for the temporal-model ablation.
enum class TemporalKind { kLstm, kGru, kNone };

struct PoseNetConfig {
  int segment_frames = 2;     ///< st: consecutive frames per segment
  int sequence_segments = 4;  ///< S: segments per LSTM sequence
  int velocity_bins = 16;     ///< V of the radar cube
  int range_bins = 24;        ///< D of the radar cube
  int angle_bins = 24;        ///< A of the radar cube (azimuth + elevation)
  int feature_dim = 160;      ///< per-segment feature vector
  int lstm_hidden = 96;
  TemporalKind temporal = TemporalKind::kLstm;
  MmSpaceNetConfig spacenet;
  /// Input normalization applied to the log1p cube values: a per-frame
  /// median noise floor (scaled by noise_floor_scale) is subtracted and
  /// clamped at zero, then affine-mapped by scale/offset.
  float noise_floor_scale = 1.3f;
  float cube_scale = 0.4f;
  float cube_offset = -0.5f;

  int frames_per_sample() const {
    return segment_frames * sequence_segments;
  }
  void validate() const;
};

class HandJointRegressor {
 public:
  HandJointRegressor(const PoseNetConfig& config, Rng& rng);

  /// x: [S*st, V, D, A] normalized cube frames of one sample.
  /// Returns [S, 63]: 21 joints x (x, y, z) meters per segment.
  nn::Tensor forward(const nn::Tensor& x, bool training);

  /// Cross-session batched inference: x is [B*S*st, V, D, A] with sample
  /// b owning frame rows [b*S*st, (b+1)*S*st).  Returns [B*S, 63].  The
  /// conv trunk treats frames independently, the per-segment projection
  /// and head treat rows independently, and the temporal layer runs its
  /// batched-sequence path, so each sample's output rows are bitwise
  /// identical to forward() on that sample alone — the invariant behind
  /// the serving layer's drained-parity guarantee.
  nn::Tensor forward_batch(const nn::Tensor& x, int batch);

  /// grad: [S, 63].  Accumulates parameter gradients.
  void backward(const nn::Tensor& grad);

  std::vector<nn::Parameter*> parameters();

  const PoseNetConfig& config() const { return config_; }

  /// Initializes the head bias so the network starts predicting `mean`
  /// (the training labels' mean), which centers the regression problem.
  void set_output_bias(const nn::Tensor& mean63);

  void save(const std::string& path);
  void load(const std::string& path);

 private:
  PoseNetConfig config_;
  MmSpaceNet spacenet_;
  nn::Linear segment_fc_;
  nn::ReLU segment_act_;
  std::unique_ptr<nn::Layer> temporal_;  ///< LSTM / GRU / null (ablation)
  nn::Linear head_;
  int flat_features_ = 0;
};

/// Converts a radar cube into a normalized [V, D, A] tensor slice laid out
/// for the network (the frame dimension is stacked by the sample builder).
void write_cube_frame(const radar::RadarCube& cube,
                      const PoseNetConfig& config, float* dst);

}  // namespace mmhand::pose
