#pragma once

// mmSpaceNet (§IV-A, Fig. 5): an attention-based hourglass network that
// extracts multi-scale spatial features of the hand from Radar Cube frames.
//
// Each residual block has two branches: a 1x1 convolution that preserves
// the current level's features, and an hourglass branch that downsamples
// with strided convolutions and upsamples with deconvolutions to capture
// fine-grained high-dimensional features.  Every block applies the
// two-stage channel attention and the 3-D spatial attention.
//
// Frames are independent through the convolutional trunk (the frame
// attention weighs each frame by its own pooled descriptor), so a whole
// sequence of segments is batched as [S*st, V, D, A].

#include <memory>

#include "mmhand/nn/activations.hpp"
#include "mmhand/nn/attention.hpp"
#include "mmhand/nn/conv2d.hpp"
#include "mmhand/nn/linear.hpp"

namespace mmhand::pose {

struct AttentionSwitches {
  bool frame = true;    ///< stage-1 channel attention (frame channels)
  bool channel = true;  ///< stage-2 channel attention (velocity channels)
  bool spatial = true;  ///< 3-D spatial attention
};

/// One attention residual block of mmSpaceNet.
class ResidualAttentionBlock : public nn::Layer {
 public:
  ResidualAttentionBlock(int in_channels, int out_channels, Rng& rng,
                         const AttentionSwitches& attention = {});

  nn::Tensor forward(const nn::Tensor& x, bool training) override;
  nn::Tensor backward(const nn::Tensor& grad_out) override;
  std::vector<nn::Parameter*> parameters() override;
  std::string name() const override { return "ResidualAttentionBlock"; }

 private:
  AttentionSwitches attention_;
  // Skip branch: preserves the current level.
  nn::Conv2d skip_;
  // Hourglass branch: down twice, up twice.
  nn::Conv2d down1_;
  nn::ReLU down1_act_;
  nn::Conv2d down2_;
  nn::ReLU down2_act_;
  nn::ConvTranspose2d up1_;
  nn::ReLU up1_act_;
  nn::ConvTranspose2d up2_;
  // Attention stack on the merged features.
  nn::FrameChannelAttention frame_att_;
  nn::ChannelAttention channel_att_;
  nn::SpatialAttention spatial_att_;
  nn::ReLU out_act_;
};

struct MmSpaceNetConfig {
  int input_channels = 16;  ///< velocity bins V of the cube
  int stem_channels = 12;
  int block1_channels = 16;
  int block2_channels = 20;
  AttentionSwitches attention;
};

/// The full spatial feature extractor: stem conv, two attention residual
/// blocks, and a final strided reduction.  Input [N, V, D, A]; output
/// [N, C2, D/4, A/4].
class MmSpaceNet : public nn::Layer {
 public:
  MmSpaceNet(const MmSpaceNetConfig& config, Rng& rng);

  nn::Tensor forward(const nn::Tensor& x, bool training) override;
  nn::Tensor backward(const nn::Tensor& grad_out) override;
  std::vector<nn::Parameter*> parameters() override;
  std::string name() const override { return "MmSpaceNet"; }

  const MmSpaceNetConfig& config() const { return config_; }
  /// Channels of the output feature map.
  int out_channels() const { return config_.block2_channels; }
  /// Spatial reduction factor (input extent / output extent).
  static constexpr int kSpatialReduction = 4;

 private:
  MmSpaceNetConfig config_;
  nn::Conv2d stem_;
  nn::ReLU stem_act_;
  ResidualAttentionBlock block1_;
  ResidualAttentionBlock block2_;
  nn::Conv2d reduce_;
  nn::ReLU reduce_act_;
};

}  // namespace mmhand::pose
