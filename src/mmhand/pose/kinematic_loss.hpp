#pragma once

// The hand kinematic loss L_kine (§IV-B, Eq. 9 and Fig. 7).
//
// Fingers are chains of rigid phalanges: when straight, the four joints
// A, B, C, D are collinear; when bent, they remain coplanar.  The loss
// selects the case per finger from the ground-truth geometry (lambda in the
// paper) and penalizes predictions that violate it:
//   collinear: chain-length slack  max(|AB|+|BC|+|CD| - (1+phi)|AD|, 0)
//              plus alignment hinges max(t - cos(bone, e_d), 0),
//   coplanar:  |AB.e_n| + |BC.e_n| + |CD.e_n|.
// The finger direction e_d and plane normal e_n come from the ground truth
// (constants w.r.t. the prediction), which keeps the gradient exact; the
// magnitudes in the coplanar term are absolute values so the loss stays
// non-negative (the paper's signed form assumes an orientation convention).

#include "mmhand/hand/skeleton.hpp"
#include "mmhand/nn/loss.hpp"

namespace mmhand::pose {

struct KinematicLossConfig {
  double phi = 0.01;  ///< chain-length slack (paper: 0.01)
  double t = 0.99;    ///< alignment threshold cos (paper: 0.99)
};

/// Computes L_kine and its gradient for one frame.  `pred` and `gt` are
/// 63-element tensors of 21 (x, y, z) joints in meters.
nn::LossResult kinematic_loss(const nn::Tensor& pred, const nn::Tensor& gt,
                              const KinematicLossConfig& config = {});

/// True when the ground-truth finger is straight enough for the collinear
/// case (the paper's lambda selector).
bool finger_is_collinear(const nn::Tensor& gt, int finger,
                         const KinematicLossConfig& config = {});

/// Combined loss L_total = beta * L3D + gamma * L_kine (§IV-B, Eq. 8).
struct CombinedLossConfig {
  double beta = 1.0;
  double gamma = 0.1;
  KinematicLossConfig kine;
};

nn::LossResult combined_pose_loss(const nn::Tensor& pred,
                                  const nn::Tensor& gt,
                                  const CombinedLossConfig& config = {});

}  // namespace mmhand::pose
