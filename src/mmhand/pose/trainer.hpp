#pragma once

// Training loop for the hand joint regressor: Adam, cosine learning-rate
// decay, gradient accumulation over mini-batches, and the combined
// L3D + L_kine supervision (§IV-B, §VI-A).

#include <functional>

#include "mmhand/pose/kinematic_loss.hpp"
#include "mmhand/pose/samples.hpp"

namespace mmhand::pose {

struct TrainConfig {
  int epochs = 10;
  int batch_size = 8;      ///< samples per optimizer step (grad accumulation)
  double lr = 1e-3;        ///< initial rate (paper: 0.001, cosine decay)
  CombinedLossConfig loss;
  std::uint64_t seed = 7;
  /// Checkpoint/resume directory; "" defers to MMHAND_CHECKPOINT_DIR
  /// (and checkpointing stays off when that is unset too).  With a
  /// directory set, every finished epoch durably persists model + Adam
  /// moments + RNG state, a killed run resumes from the last checkpoint
  /// bit-for-bit, and the checkpoint is removed on completion.
  std::string checkpoint_dir;
  /// Optional per-epoch callback (epoch index, mean training loss).
  std::function<void(int, double)> on_epoch;
};

struct TrainStats {
  std::vector<double> epoch_loss;  ///< mean per-sample loss per epoch
};

/// Trains the model in place on `samples`.
TrainStats train_pose_model(HandJointRegressor& model,
                            const std::vector<PoseSample>& samples,
                            const TrainConfig& config);

/// Runs inference on one sample; returns [S, 63].
nn::Tensor predict_sample(HandJointRegressor& model, const PoseSample& sample);

}  // namespace mmhand::pose
