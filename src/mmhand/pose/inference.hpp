#pragma once

// Inference over continuous recordings: sliding-window prediction of 3-D
// hand skeletons, the "3D hand skeleton generation" output of mmHand.
//
// Real captures carry real damage — dropped frames from DCA1000 packet
// loss, ADC-saturated frames, NaN bursts — so prediction treats degraded
// input as the normal case: a frame-health scan classifies every frame,
// isolated bad frames are repaired by interpolating their healthy
// neighbors, and segments whose frames could not be repaired are still
// predicted but flagged with a per-segment status instead of throwing.

#include "mmhand/pose/samples.hpp"
#include "mmhand/pose/trainer.hpp"

namespace mmhand::pose {

/// Health of the input frames behind one predicted segment.
enum class FrameStatus {
  kOk = 0,    ///< all input frames healthy
  kRepaired,  ///< >=1 frame repaired by neighbor interpolation
  kDegraded,  ///< >=1 frame unrepairable (sanitized); treat with caution
};

struct FramePrediction {
  int frame_index = 0;
  hand::JointSet joints;        ///< predicted skeleton
  hand::JointSet ground_truth;  ///< noisy label at that frame
  hand::JointSet oracle;        ///< noise-free FK joints
  FrameStatus status = FrameStatus::kOk;  ///< input health of the segment
};

/// Per-frame input damage classification (see scan_frame_health).
enum class FrameHealth {
  kHealthy = 0,
  kDropped,    ///< all-zero cube: lost frame / packet-loss gap
  kNonFinite,  ///< NaN/Inf cells
  kSaturated,  ///< flat-topped cube: ADC rail clipping
};

/// Classifies every frame of a recording.  A frame is dropped when all
/// cells are zero, non-finite when any cell is NaN/Inf, and saturated
/// when at least a quarter of its cells sit exactly at the frame
/// maximum (a flat top no real scene produces).
std::vector<FrameHealth> scan_frame_health(const sim::Recording& recording);

/// Predicts skeletons for every segment-end frame of a recording.
///
/// `stride` is the sliding-window hop in frames between consecutive
/// samples.  `0` (the default) means "one full window"
/// (`config.frames_per_sample()`): back-to-back, non-overlapping windows
/// — the same convention as `make_pose_samples`.  Smaller positive
/// values overlap windows for denser predictions.  Negative strides are
/// rejected with an error.
///
/// Damaged frames never abort the call: isolated bad frames (healthy on
/// both sides) are repaired by interpolation before prediction, runs of
/// bad frames are sanitized (non-finite cells zeroed) and their
/// segments flagged kDegraded.  With healthy input the output is
/// bitwise identical to a scan-free implementation.
std::vector<FramePrediction> predict_recording(
    HandJointRegressor& model, const sim::Recording& recording,
    int stride = 0);

}  // namespace mmhand::pose
