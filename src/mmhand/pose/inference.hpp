#pragma once

// Inference over continuous recordings: sliding-window prediction of 3-D
// hand skeletons, the "3D hand skeleton generation" output of mmHand.

#include "mmhand/pose/samples.hpp"
#include "mmhand/pose/trainer.hpp"

namespace mmhand::pose {

struct FramePrediction {
  int frame_index = 0;
  hand::JointSet joints;        ///< predicted skeleton
  hand::JointSet ground_truth;  ///< noisy label at that frame
  hand::JointSet oracle;        ///< noise-free FK joints
};

/// Predicts skeletons for every segment-end frame of a recording.
///
/// `stride` is the sliding-window hop in frames between consecutive
/// samples.  `0` (the default) means "one full window"
/// (`config.frames_per_sample()`): back-to-back, non-overlapping windows
/// — the same convention as `make_pose_samples`.  Smaller positive
/// values overlap windows for denser predictions.  Negative strides are
/// rejected with an error.
std::vector<FramePrediction> predict_recording(
    HandJointRegressor& model, const sim::Recording& recording,
    int stride = 0);

}  // namespace mmhand::pose
