#pragma once

// Trainer checkpoint/resume: everything `train_pose_model` needs to
// continue an interrupted run bit-for-bit — model parameters, Adam step
// count and moments, the training Rng's engine state, the epoch index,
// and the loss history.  Checkpoints ride the common/io_safe durable
// envelope, so a run killed mid-write leaves either the previous
// checkpoint or none, never a torn one; a corrupt checkpoint is
// quarantined (renamed to `.corrupt`) and training restarts cleanly.
//
// Enabled by MMHAND_CHECKPOINT_DIR (or TrainConfig::checkpoint_dir,
// which wins).  The file name embeds the training seed, so concurrent
// fold trainings under one directory never collide.

#include <string>
#include <vector>

#include "mmhand/nn/optimizer.hpp"
#include "mmhand/pose/trainer.hpp"

namespace mmhand::pose {

/// Checkpoint directory from MMHAND_CHECKPOINT_DIR ("" when unset,
/// meaning checkpointing is off).
std::string checkpoint_directory();

/// Checkpoint file path for a training run identified by its seed.
std::string checkpoint_path(const std::string& dir, std::uint64_t seed);

/// Durably writes a checkpoint capturing the state *after*
/// `next_epoch - 1` finished: resuming runs epochs [next_epoch, epochs).
void save_checkpoint(const std::string& path, HandJointRegressor& model,
                     const nn::Adam& optimizer, Rng& rng,
                     const TrainConfig& config, int next_epoch,
                     const std::vector<double>& epoch_loss);

/// Restores a checkpoint into the given training state.  Returns false
/// when no checkpoint exists.  A corrupt, truncated, or mismatched
/// (different seed/epochs/geometry) checkpoint is quarantined and
/// reported as absent — nothing is mutated in that case.
bool load_checkpoint(const std::string& path, HandJointRegressor& model,
                     nn::Adam& optimizer, Rng& rng,
                     const TrainConfig& config, int* next_epoch,
                     std::vector<double>* epoch_loss);

}  // namespace mmhand::pose
