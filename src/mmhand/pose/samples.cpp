#include "mmhand/pose/samples.hpp"

namespace mmhand::pose {

namespace {

void write_joints_row(const hand::JointSet& joints, nn::Tensor& rows,
                      int row) {
  for (int j = 0; j < hand::kNumJoints; ++j) {
    rows.at(row, 3 * j) = static_cast<float>(joints[static_cast<std::size_t>(j)].x);
    rows.at(row, 3 * j + 1) =
        static_cast<float>(joints[static_cast<std::size_t>(j)].y);
    rows.at(row, 3 * j + 2) =
        static_cast<float>(joints[static_cast<std::size_t>(j)].z);
  }
}

}  // namespace

std::vector<PoseSample> make_pose_samples(const sim::Recording& recording,
                                          const PoseNetConfig& config,
                                          int stride) {
  config.validate();
  MMHAND_CHECK(stride >= 0,
               "stride " << stride << " (0 means one window)");
  const int window = config.frames_per_sample();
  if (stride == 0) stride = window;
  const int n_frames = static_cast<int>(recording.frames.size());

  std::vector<PoseSample> samples;
  const std::size_t frame_elems =
      static_cast<std::size_t>(config.velocity_bins) * config.range_bins *
      config.angle_bins;
  for (int start = 0; start + window <= n_frames; start += stride) {
    PoseSample sample;
    sample.user_id = recording.user_id;
    sample.input = nn::Tensor({window, config.velocity_bins,
                               config.range_bins, config.angle_bins});
    sample.labels = nn::Tensor({config.sequence_segments, 63});
    sample.oracle = nn::Tensor({config.sequence_segments, 63});
    for (int f = 0; f < window; ++f) {
      const auto& rec = recording.frames[static_cast<std::size_t>(start + f)];
      write_cube_frame(rec.cube, config,
                       sample.input.data() +
                           static_cast<std::size_t>(f) * frame_elems);
    }
    for (int s = 0; s < config.sequence_segments; ++s) {
      const int label_frame = start + (s + 1) * config.segment_frames - 1;
      const auto& rec =
          recording.frames[static_cast<std::size_t>(label_frame)];
      write_joints_row(rec.joints, sample.labels, s);
      write_joints_row(rec.true_joints, sample.oracle, s);
      sample.label_frames.push_back(label_frame);
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

nn::Tensor label_mean(const std::vector<PoseSample>& samples) {
  MMHAND_CHECK(!samples.empty(), "label_mean of empty sample set");
  nn::Tensor mean = nn::Tensor::zeros({63});
  std::size_t rows = 0;
  for (const auto& s : samples) {
    for (int r = 0; r < s.labels.dim(0); ++r) {
      for (int c = 0; c < 63; ++c) mean[static_cast<std::size_t>(c)] +=
          s.labels.at(r, c);
      ++rows;
    }
  }
  mean.scale_(1.0f / static_cast<float>(rows));
  return mean;
}

hand::JointSet row_to_joints(const nn::Tensor& rows, int row) {
  MMHAND_CHECK(rows.rank() == 2 && rows.dim(1) == 63, "row_to_joints shape");
  hand::JointSet joints;
  for (int j = 0; j < hand::kNumJoints; ++j)
    joints[static_cast<std::size_t>(j)] =
        Vec3{rows.at(row, 3 * j), rows.at(row, 3 * j + 1),
             rows.at(row, 3 * j + 2)};
  return joints;
}

}  // namespace mmhand::pose
