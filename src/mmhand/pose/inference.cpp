#include "mmhand/pose/inference.hpp"

#include <algorithm>
#include <chrono>

#include "mmhand/obs/obs.hpp"

namespace mmhand::pose {

std::vector<FramePrediction> predict_recording(
    HandJointRegressor& model, const sim::Recording& recording, int stride) {
  MMHAND_CHECK(stride >= 0,
               "predict_recording stride " << stride
                                           << " (0 means one window)");
  MMHAND_SPAN("pose/predict_recording");
  const auto samples = make_pose_samples(recording, model.config(), stride);
  std::vector<FramePrediction> out;
  out.reserve(samples.size() *
              static_cast<std::size_t>(model.config().sequence_segments));
  for (const auto& sample : samples) {
    // Per-segment inference latency: a sample predicts
    // `sequence_segments` skeletons in one forward pass, so each
    // segment's share is the pass time divided by the segment count.
    const bool timed = obs::metrics_enabled();
    const std::chrono::steady_clock::time_point t0 =
        timed ? std::chrono::steady_clock::now()
              : std::chrono::steady_clock::time_point{};
    const nn::Tensor pred = predict_sample(model, sample);
    if (timed) {
      static obs::Histogram& seg_us =
          obs::histogram("pose/predict_segment");
      const double us = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      seg_us.record(us / std::max(1, pred.dim(0)));
    }
    for (int s = 0; s < pred.dim(0); ++s) {
      FramePrediction fp;
      fp.frame_index = sample.label_frames[static_cast<std::size_t>(s)];
      fp.joints = row_to_joints(pred, s);
      fp.ground_truth = row_to_joints(sample.labels, s);
      fp.oracle = row_to_joints(sample.oracle, s);
      out.push_back(fp);
    }
  }
  return out;
}

}  // namespace mmhand::pose
