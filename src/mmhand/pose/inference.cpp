#include "mmhand/pose/inference.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "mmhand/obs/obs.hpp"

namespace mmhand::pose {

namespace {

/// Post-repair frame state, ordered by severity so a segment's status
/// is the max over its frames.
enum FrameState : int { kStateOk = 0, kStateRepaired = 1, kStateDegraded = 2 };

/// Damage tallies from one health scan (for the obs/fault.* counters).
struct HealthCounts {
  std::int64_t dropped = 0;
  std::int64_t non_finite = 0;
  std::int64_t saturated = 0;
};

HealthCounts tally(const std::vector<FrameHealth>& health) {
  HealthCounts c;
  for (const FrameHealth h : health) {
    if (h == FrameHealth::kDropped) ++c.dropped;
    if (h == FrameHealth::kNonFinite) ++c.non_finite;
    if (h == FrameHealth::kSaturated) ++c.saturated;
  }
  return c;
}

/// Cell-wise midpoint of the two healthy neighbor cubes.
void interpolate_cube(const radar::RadarCube& prev,
                      const radar::RadarCube& next, radar::RadarCube* dst) {
  auto& out = dst->data();
  const auto& a = prev.data();
  const auto& b = next.data();
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = 0.5f * (a[i] + b[i]);
}

/// Replaces non-finite cells with zero so the network forward pass
/// stays finite even for unrepairable frames.
void sanitize_cube(radar::RadarCube* cube) {
  for (float& v : cube->data())
    if (!std::isfinite(v)) v = 0.0f;
}

}  // namespace

std::vector<FrameHealth> scan_frame_health(const sim::Recording& recording) {
  std::vector<FrameHealth> health(recording.frames.size(),
                                  FrameHealth::kHealthy);
  for (std::size_t f = 0; f < recording.frames.size(); ++f) {
    const auto& data = recording.frames[f].cube.data();
    if (data.empty()) {
      health[f] = FrameHealth::kDropped;
      continue;
    }
    bool any_non_finite = false;
    bool all_zero = true;
    float max_value = 0.0f;
    for (const float v : data) {
      if (!std::isfinite(v)) {
        any_non_finite = true;
        break;
      }
      if (v != 0.0f) all_zero = false;
      max_value = std::max(max_value, v);
    }
    if (any_non_finite) {
      health[f] = FrameHealth::kNonFinite;
      continue;
    }
    if (all_zero) {
      health[f] = FrameHealth::kDropped;
      continue;
    }
    // Flat-top detection: a hand scene has one smooth peak, so a quarter
    // of the cells pinned exactly at the maximum means the ADC railed.
    std::size_t at_max = 0;
    for (const float v : data)
      if (v == max_value) ++at_max;
    if (max_value > 0.0f && 4 * at_max >= data.size())
      health[f] = FrameHealth::kSaturated;
  }
  return health;
}

std::vector<FramePrediction> predict_recording(
    HandJointRegressor& model, const sim::Recording& recording, int stride) {
  MMHAND_CHECK(stride >= 0,
               "predict_recording stride " << stride
                                           << " (0 means one window)");
  MMHAND_SPAN("pose/predict_recording");

  // Frame-health scan + repair.  The repaired copy is made lazily, so a
  // healthy recording takes the exact pre-existing path (bitwise
  // identical outputs, zero extra allocation).
  const auto health = scan_frame_health(recording);
  const bool any_bad =
      std::any_of(health.begin(), health.end(), [](FrameHealth h) {
        return h != FrameHealth::kHealthy;
      });
  sim::Recording repaired_storage;
  const sim::Recording* input = &recording;
  std::vector<int> state(health.size(), kStateOk);
  std::int64_t repaired_frames = 0;
  if (any_bad) {
    repaired_storage = recording;
    for (std::size_t f = 0; f < health.size(); ++f) {
      if (health[f] == FrameHealth::kHealthy) continue;
      const bool left_ok = f > 0 && health[f - 1] == FrameHealth::kHealthy;
      const bool right_ok = f + 1 < health.size() &&
                            health[f + 1] == FrameHealth::kHealthy;
      auto& cube = repaired_storage.frames[f].cube;
      if (left_ok && right_ok && !cube.data().empty()) {
        interpolate_cube(recording.frames[f - 1].cube,
                         recording.frames[f + 1].cube, &cube);
        state[f] = kStateRepaired;
        ++repaired_frames;
      } else {
        sanitize_cube(&cube);
        state[f] = kStateDegraded;
      }
    }
    input = &repaired_storage;
    if (obs::metrics_enabled()) {
      const HealthCounts c = tally(health);
      static obs::Counter& dropped = obs::counter("fault.dropped_frames");
      static obs::Counter& nans = obs::counter("fault.nan_frames");
      static obs::Counter& saturated =
          obs::counter("fault.saturated_frames");
      static obs::Counter& repaired = obs::counter("fault.repaired_frames");
      dropped.add(c.dropped);
      nans.add(c.non_finite);
      saturated.add(c.saturated);
      repaired.add(repaired_frames);
    }
    MMHAND_WARN("predict_recording: %zu damaged frames (%lld repaired)",
                static_cast<std::size_t>(std::count_if(
                    state.begin(), state.end(),
                    [](int s) { return s != kStateOk; })),
                static_cast<long long>(repaired_frames));
  }

  const auto samples = make_pose_samples(*input, model.config(), stride);
  const int segment_frames = model.config().segment_frames;
  std::vector<FramePrediction> out;
  out.reserve(samples.size() *
              static_cast<std::size_t>(model.config().sequence_segments));
  std::int64_t degraded_segments = 0;
  for (const auto& sample : samples) {
    // One frame context per forward pass: every nn span (and any
    // parallel_for worker it fans out to) is attributed to this
    // sample's per-frame record and linked by flow events in the trace.
    obs::FrameScope segment_scope("pose/segment");
    // Per-segment inference latency: a sample predicts
    // `sequence_segments` skeletons in one forward pass, so each
    // segment's share is the pass time divided by the segment count.
    const bool timed = obs::metrics_enabled();
    const std::chrono::steady_clock::time_point t0 =
        timed ? std::chrono::steady_clock::now()
              : std::chrono::steady_clock::time_point{};
    const nn::Tensor pred = predict_sample(model, sample);
    if (timed) {
      static obs::Histogram& seg_us =
          obs::histogram("pose/predict_segment");
      const double us = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      seg_us.record(us / std::max(1, pred.dim(0)));
    }
    for (int s = 0; s < pred.dim(0); ++s) {
      FramePrediction fp;
      fp.frame_index = sample.label_frames[static_cast<std::size_t>(s)];
      fp.joints = row_to_joints(pred, s);
      fp.ground_truth = row_to_joints(sample.labels, s);
      fp.oracle = row_to_joints(sample.oracle, s);
      // The segment behind this prediction covers the `segment_frames`
      // frames ending at its label frame; its status is the worst of
      // their post-repair states.
      int worst = kStateOk;
      const int last = fp.frame_index;
      for (int f = last - segment_frames + 1; f <= last; ++f)
        if (f >= 0 && static_cast<std::size_t>(f) < state.size())
          worst = std::max(worst, state[static_cast<std::size_t>(f)]);
      fp.status = static_cast<FrameStatus>(worst);
      if (fp.status == FrameStatus::kDegraded) ++degraded_segments;
      out.push_back(fp);
    }
  }
  if (degraded_segments > 0 && obs::metrics_enabled()) {
    static obs::Counter& degraded = obs::counter("fault.degraded_segments");
    degraded.add(degraded_segments);
  }
  if (obs::metrics_enabled()) {
    static obs::Counter& segments = obs::counter("pose/predict.segments");
    segments.add(static_cast<std::int64_t>(out.size()));
  }
  return out;
}

}  // namespace mmhand::pose
