#include "mmhand/pose/inference.hpp"

namespace mmhand::pose {

std::vector<FramePrediction> predict_recording(
    HandJointRegressor& model, const sim::Recording& recording, int stride) {
  const auto samples = make_pose_samples(recording, model.config(), stride);
  std::vector<FramePrediction> out;
  out.reserve(samples.size() *
              static_cast<std::size_t>(model.config().sequence_segments));
  for (const auto& sample : samples) {
    const nn::Tensor pred = predict_sample(model, sample);
    for (int s = 0; s < pred.dim(0); ++s) {
      FramePrediction fp;
      fp.frame_index = sample.label_frames[static_cast<std::size_t>(s)];
      fp.joints = row_to_joints(pred, s);
      fp.ground_truth = row_to_joints(sample.labels, s);
      fp.oracle = row_to_joints(sample.oracle, s);
      out.push_back(fp);
    }
  }
  return out;
}

}  // namespace mmhand::pose
