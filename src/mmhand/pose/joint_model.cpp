#include "mmhand/pose/joint_model.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "mmhand/common/realtime.hpp"

namespace mmhand::pose {

namespace {

constexpr std::uint32_t kModelMagic = 0x6d6d4831;  // "mmH1"

MmSpaceNetConfig resolve_spacenet(const PoseNetConfig& config) {
  MmSpaceNetConfig sn = config.spacenet;
  sn.input_channels = config.velocity_bins;
  return sn;
}

/// Per-thread staging for the per-frame median (nth_element mutates its
/// input).  Grown on demand; capacity is retained so steady-state frame
/// normalization never allocates.
std::vector<float>& cube_median_scratch(std::size_t floats) {
  thread_local std::vector<float> buf;
  if (buf.capacity() < floats) buf.reserve(floats);
  return buf;
}

}  // namespace

void PoseNetConfig::validate() const {
  MMHAND_CHECK(segment_frames >= 1 && sequence_segments >= 1,
               "segment geometry");
  MMHAND_CHECK(velocity_bins >= 1 && range_bins >= 4 && angle_bins >= 4,
               "cube dims");
  // The stem halves the extents, then each residual block's hourglass
  // needs another factor of 4: inputs must divide by 8.
  MMHAND_CHECK(range_bins % (2 * MmSpaceNet::kSpatialReduction) == 0 &&
                   angle_bins % (2 * MmSpaceNet::kSpatialReduction) == 0,
               "cube extents must divide by "
                   << 2 * MmSpaceNet::kSpatialReduction);
  MMHAND_CHECK(feature_dim >= 8 && lstm_hidden >= 8, "head dims");
  // Normalization constants: NaN/Inf here silently poisons every input
  // tensor, so reject up front; the noise-floor scale must also be
  // non-negative (a negative scale adds noise back in).
  MMHAND_CHECK(std::isfinite(noise_floor_scale) && noise_floor_scale >= 0.0f,
               "noise_floor_scale " << noise_floor_scale);
  MMHAND_CHECK(std::isfinite(cube_scale) && std::isfinite(cube_offset),
               "cube normalization must be finite");
}

namespace {

std::unique_ptr<nn::Layer> make_temporal(const PoseNetConfig& config,
                                         Rng& rng) {
  switch (config.temporal) {
    case TemporalKind::kLstm:
      return std::make_unique<nn::Lstm>(config.feature_dim,
                                        config.lstm_hidden, rng);
    case TemporalKind::kGru:
      return std::make_unique<nn::Gru>(config.feature_dim,
                                       config.lstm_hidden, rng);
    case TemporalKind::kNone:
      return nullptr;
  }
  throw Error("unknown temporal kind");
}

}  // namespace

HandJointRegressor::HandJointRegressor(const PoseNetConfig& config, Rng& rng)
    : config_([&] {
        config.validate();
        return config;
      }()),
      spacenet_(resolve_spacenet(config_), rng),
      segment_fc_(
          config_.segment_frames * config_.spacenet.block2_channels *
              (config_.range_bins / MmSpaceNet::kSpatialReduction) *
              (config_.angle_bins / MmSpaceNet::kSpatialReduction),
          config_.feature_dim, rng),
      temporal_(make_temporal(config_, rng)),
      head_(config_.temporal == TemporalKind::kNone ? config_.feature_dim
                                                    : config_.lstm_hidden,
            63, rng),
      flat_features_(segment_fc_.in_features()) {}

MMHAND_REALTIME
nn::Tensor HandJointRegressor::forward(const nn::Tensor& x, bool training) {
  const int frames = config_.frames_per_sample();
  MMHAND_CHECK(x.rank() == 4 && x.dim(0) == frames &&
                   x.dim(1) == config_.velocity_bins &&
                   x.dim(2) == config_.range_bins &&
                   x.dim(3) == config_.angle_bins,
               "pose input shape mismatch");
  // Spatial features for every frame (frames are independent through the
  // conv trunk, so the sequence is processed as one batch).
  nn::Tensor feat = spacenet_.forward(x, training);
  // Group frames into segments: [S, st * C2 * H' * W'].
  nn::Tensor grouped =
      feat.reshaped({config_.sequence_segments, flat_features_});
  nn::Tensor seg = segment_fc_.forward(grouped, training);
  seg = segment_act_.forward(seg, training);
  // Temporal features over the segment sequence (identity under the
  // no-temporal ablation).
  if (temporal_) seg = temporal_->forward(seg, training);
  return head_.forward(seg, training);
}

MMHAND_REALTIME
nn::Tensor HandJointRegressor::forward_batch(const nn::Tensor& x,
                                             int batch) {
  const int frames = config_.frames_per_sample();
  MMHAND_CHECK(batch >= 1, "forward_batch batch " << batch);
  MMHAND_CHECK(x.rank() == 4 && x.dim(0) == batch * frames &&
                   x.dim(1) == config_.velocity_bins &&
                   x.dim(2) == config_.range_bins &&
                   x.dim(3) == config_.angle_bins,
               "pose batch input shape mismatch");
  // One conv-trunk pass over every frame of every sample: frames are
  // independent through mmSpaceNet (per-frame attention pooling, per-
  // sample conv batch loop), so the stacked pass equals per-sample
  // passes bitwise.
  nn::Tensor feat = spacenet_.forward(x, false);
  nn::Tensor grouped = feat.reshaped(
      {batch * config_.sequence_segments, flat_features_});
  nn::Tensor seg = segment_fc_.forward(grouped, false);
  seg = segment_act_.forward(seg, false);
  if (temporal_) seg = temporal_->forward_sequences(seg, batch);
  return head_.forward(seg, false);
}

void HandJointRegressor::backward(const nn::Tensor& grad) {
  MMHAND_CHECK(grad.rank() == 2 && grad.dim(0) == config_.sequence_segments &&
                   grad.dim(1) == 63,
               "pose grad shape");
  nn::Tensor g = head_.backward(grad);
  if (temporal_) g = temporal_->backward(g);
  g = segment_act_.backward(g);
  g = segment_fc_.backward(g);
  g = g.reshaped({config_.frames_per_sample(),
                  config_.spacenet.block2_channels,
                  config_.range_bins / MmSpaceNet::kSpatialReduction,
                  config_.angle_bins / MmSpaceNet::kSpatialReduction});
  (void)spacenet_.backward(g);
}

std::vector<nn::Parameter*> HandJointRegressor::parameters() {
  std::vector<nn::Parameter*> out = spacenet_.parameters();
  std::vector<nn::Layer*> layers{&segment_fc_, &head_};
  if (temporal_) layers.insert(layers.begin() + 1, temporal_.get());
  for (nn::Layer* l : layers) {
    const auto p = l->parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

void HandJointRegressor::set_output_bias(const nn::Tensor& mean63) {
  MMHAND_CHECK(mean63.numel() == 63, "output bias needs 63 values");
  head_.bias().value = mean63.reshaped({63});
}

void HandJointRegressor::save(const std::string& path) {
  BinaryWriter w(path);
  w.write_u32(kModelMagic);
  w.write_u32(1);  // version
  w.write_u32(static_cast<std::uint32_t>(config_.segment_frames));
  w.write_u32(static_cast<std::uint32_t>(config_.sequence_segments));
  w.write_u32(static_cast<std::uint32_t>(config_.velocity_bins));
  w.write_u32(static_cast<std::uint32_t>(config_.range_bins));
  w.write_u32(static_cast<std::uint32_t>(config_.angle_bins));
  w.write_u32(static_cast<std::uint32_t>(config_.temporal));
  nn::save_parameters(parameters(), w);
  w.close();
}

void HandJointRegressor::load(const std::string& path) {
  BinaryReader r(path);
  MMHAND_CHECK(r.read_u32() == kModelMagic, "not an mmHand model: " << path);
  MMHAND_CHECK(r.read_u32() == 1, "unsupported model version in " << path);
  MMHAND_CHECK(r.read_u32() == static_cast<std::uint32_t>(
                                   config_.segment_frames) &&
                   r.read_u32() == static_cast<std::uint32_t>(
                                       config_.sequence_segments) &&
                   r.read_u32() == static_cast<std::uint32_t>(
                                       config_.velocity_bins) &&
                   r.read_u32() == static_cast<std::uint32_t>(
                                       config_.range_bins) &&
                   r.read_u32() == static_cast<std::uint32_t>(
                                       config_.angle_bins) &&
                   r.read_u32() == static_cast<std::uint32_t>(
                                       config_.temporal),
               "checkpoint geometry differs from model config");
  nn::load_parameters(parameters(), r);
}

void write_cube_frame(const radar::RadarCube& cube,
                      const PoseNetConfig& config, float* dst) {
  MMHAND_CHECK(cube.velocity_bins() == config.velocity_bins &&
                   cube.range_bins() == config.range_bins &&
                   cube.angle_bins() == config.angle_bins,
               "cube dims " << cube.velocity_bins() << "x"
                            << cube.range_bins() << "x" << cube.angle_bins()
                            << " do not match the network config");
  const auto& data = cube.data();
  // Noise-floor subtraction: most cube cells hold thermal-noise speckle
  // whose log-magnitude fluctuations would dominate the input energy; the
  // per-frame median estimates that floor robustly (the hand occupies only
  // a small fraction of cells), and clamping at zero leaves a sparse,
  // signal-only tensor for the network.  The nth_element staging buffer
  // is per-thread grow-on-demand scratch (audited in
  // scripts/purity_allowlist.json) so steady-state serving ingests
  // frames without allocating.
  std::vector<float>& sorted = cube_median_scratch(data.size());
  sorted.assign(data.begin(), data.end());
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  const float floor =
      config.noise_floor_scale * sorted[sorted.size() / 2];
  for (std::size_t i = 0; i < data.size(); ++i) {
    const float v = std::max(0.0f, data[i] - floor);
    dst[i] = v * config.cube_scale + config.cube_offset;
  }
}

}  // namespace mmhand::pose
