#include "mmhand/pose/gesture_classifier.hpp"

#include <cmath>

#include "mmhand/common/error.hpp"

namespace mmhand::pose {

std::vector<double> GestureClassifier::descriptor(
    const hand::JointSet& joints) {
  static constexpr int kTips[5] = {4, 8, 12, 16, 20};
  const Vec3 wrist = joints[hand::kWrist];
  std::vector<double> d;
  d.reserve(5 + 10);
  // Fingertip reach from the wrist.
  for (int tip : kTips)
    d.push_back(distance(joints[static_cast<std::size_t>(tip)], wrist));
  // Pairwise fingertip separations (splay / pinch signatures).
  for (int a = 0; a < 5; ++a)
    for (int b = a + 1; b < 5; ++b)
      d.push_back(distance(joints[static_cast<std::size_t>(kTips[a])],
                           joints[static_cast<std::size_t>(kTips[b])]));
  return d;
}

GestureClassifier::GestureClassifier(std::vector<hand::Gesture> vocabulary)
    : vocab_(vocabulary.empty() ? hand::all_gestures()
                                : std::move(vocabulary)) {
  const auto profile = hand::HandProfile::reference();
  templates_.reserve(vocab_.size());
  for (hand::Gesture g : vocab_) {
    hand::HandPose pose;
    pose.fingers = hand::gesture_articulation(g);
    templates_.push_back(
        descriptor(hand::forward_kinematics(profile, pose)));
  }
}

double GestureClassifier::cost(const hand::JointSet& joints,
                               hand::Gesture gesture) const {
  for (std::size_t i = 0; i < vocab_.size(); ++i) {
    if (vocab_[i] != gesture) continue;
    const auto d = descriptor(joints);
    double c = 0.0;
    for (std::size_t k = 0; k < d.size(); ++k)
      c += std::abs(d[k] - templates_[i][k]);
    return c;
  }
  throw Error("gesture not in the classifier's vocabulary");
}

hand::Gesture GestureClassifier::classify(
    const hand::JointSet& joints) const {
  const auto d = descriptor(joints);
  double best = 1e18;
  hand::Gesture best_g = vocab_.front();
  for (std::size_t i = 0; i < vocab_.size(); ++i) {
    double c = 0.0;
    for (std::size_t k = 0; k < d.size(); ++k)
      c += std::abs(d[k] - templates_[i][k]);
    if (c < best) {
      best = c;
      best_g = vocab_[i];
    }
  }
  return best_g;
}

ConfusionMatrix::ConfusionMatrix(std::vector<hand::Gesture> vocabulary)
    : vocab_(std::move(vocabulary)),
      counts_(vocab_.size() * vocab_.size(), 0) {
  MMHAND_CHECK(!vocab_.empty(), "empty confusion-matrix vocabulary");
}

int ConfusionMatrix::index_of(hand::Gesture g) const {
  for (std::size_t i = 0; i < vocab_.size(); ++i)
    if (vocab_[i] == g) return static_cast<int>(i);
  throw Error("gesture outside the confusion matrix's vocabulary");
}

void ConfusionMatrix::add(hand::Gesture truth, hand::Gesture predicted) {
  const auto t = static_cast<std::size_t>(index_of(truth));
  const auto p = static_cast<std::size_t>(index_of(predicted));
  ++counts_[t * vocab_.size() + p];
  ++total_;
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < vocab_.size(); ++i)
    hits += static_cast<std::size_t>(counts_[i * vocab_.size() + i]);
  return static_cast<double>(hits) / static_cast<double>(total_);
}

int ConfusionMatrix::count(hand::Gesture truth,
                           hand::Gesture predicted) const {
  return counts_[static_cast<std::size_t>(index_of(truth)) * vocab_.size() +
                 static_cast<std::size_t>(index_of(predicted))];
}

}  // namespace mmhand::pose
