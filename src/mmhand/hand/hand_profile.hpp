#pragma once

// Per-user hand geometry — the substitute for the paper's 10 volunteers
// (5 male, 5 female, heights 1.65-1.85 m; DESIGN.md §2).  A profile fixes
// the MCP layout and phalange lengths; the gesture generator articulates it.

#include <array>

#include "mmhand/common/vec3.hpp"
#include "mmhand/hand/skeleton.hpp"

namespace mmhand::hand {

struct HandProfile {
  /// Offsets of the five MCP (thumb CMC) joints from the wrist, expressed
  /// in the canonical hand frame: wrist at origin, middle finger +y, palm
  /// normal +z (back of the hand), thumb side +x.  Meters.
  std::array<Vec3, kNumFingers> mcp_offsets;

  /// Phalange lengths per finger: proximal, middle, distal.  Meters.
  std::array<std::array<double, 3>, kNumFingers> phalange_lengths;

  /// Resting abduction (splay) of each finger in the palm plane, radians.
  std::array<double, kNumFingers> rest_splay;

  /// Overall scale applied on construction (1.0 = reference adult hand).
  double scale = 1.0;

  /// Reference adult hand (≈18.5 cm wrist-to-middle-tip).
  static HandProfile reference();

  /// Deterministic profile for one of the paper's 10 simulated users.
  /// Even ids are "male" (larger), odd "female" (smaller), with per-user
  /// length and splay perturbations.
  static HandProfile for_user(int user_id);

  /// Uniformly scaled copy.
  HandProfile scaled(double s) const;
};

}  // namespace mmhand::hand
