#include "mmhand/hand/gesture.hpp"

#include <algorithm>
#include <cmath>

#include "mmhand/common/error.hpp"

namespace mmhand::hand {

namespace {

/// Articulation shorthand: a fully curled finger.
constexpr FingerArticulation kCurled{1.45, 1.5, 0.9, 0.0};
/// A straight finger.
constexpr FingerArticulation kStraight{0.05, 0.05, 0.02, 0.0};
/// Thumb tucked across the palm.
constexpr FingerArticulation kThumbTucked{0.9, 0.9, 0.5, -0.15};
/// Thumb relaxed alongside the hand.
constexpr FingerArticulation kThumbOpen{0.15, 0.1, 0.05, 0.0};

double smoothstep(double t) { return t * t * (3.0 - 2.0 * t); }

}  // namespace

std::string_view gesture_name(Gesture g) {
  switch (g) {
    case Gesture::kOpenPalm: return "open_palm";
    case Gesture::kFist: return "fist";
    case Gesture::kPoint: return "point";
    case Gesture::kCount2: return "count2";
    case Gesture::kCount3: return "count3";
    case Gesture::kCount4: return "count4";
    case Gesture::kCount5: return "count5";
    case Gesture::kPinch: return "pinch";
    case Gesture::kThumbsUp: return "thumbs_up";
    case Gesture::kOkSign: return "ok_sign";
    case Gesture::kGun: return "gun";
    case Gesture::kRock: return "rock";
    case Gesture::kCall: return "call";
  }
  throw Error("unknown gesture");
}

std::array<FingerArticulation, kNumFingers> gesture_articulation(Gesture g) {
  // Index layout: {thumb, index, middle, ring, pinky}.
  switch (g) {
    case Gesture::kOpenPalm:
      return {kThumbOpen, kStraight, kStraight, kStraight, kStraight};
    case Gesture::kFist:
      return {kThumbTucked, kCurled, kCurled, kCurled, kCurled};
    case Gesture::kPoint:
      return {kThumbTucked, kStraight, kCurled, kCurled, kCurled};
    case Gesture::kCount2:
      return {kThumbTucked, kStraight,
              FingerArticulation{0.05, 0.05, 0.02, 0.12}, kCurled,
              kCurled};
    case Gesture::kCount3:
      return {kThumbTucked, kStraight, kStraight,
              FingerArticulation{0.05, 0.05, 0.02, -0.1}, kCurled};
    case Gesture::kCount4:
      return {kThumbTucked, kStraight, kStraight, kStraight, kStraight};
    case Gesture::kCount5:
      return {FingerArticulation{0.05, 0.05, 0.02, 0.2},
              FingerArticulation{0.05, 0.05, 0.02, 0.18},
              kStraight,
              FingerArticulation{0.05, 0.05, 0.02, -0.18},
              FingerArticulation{0.05, 0.05, 0.02, -0.2}};
    case Gesture::kPinch:
      return {FingerArticulation{0.45, 0.5, 0.25, 0.1},
              FingerArticulation{0.75, 0.65, 0.35, 0.0},
              FingerArticulation{0.3, 0.25, 0.1, 0.0},
              FingerArticulation{0.35, 0.3, 0.12, 0.0},
              FingerArticulation{0.4, 0.3, 0.12, 0.0}};
    case Gesture::kThumbsUp:
      return {FingerArticulation{-0.1, 0.0, 0.0, 0.15}, kCurled, kCurled,
              kCurled, kCurled};
    case Gesture::kOkSign:
      return {FingerArticulation{0.5, 0.55, 0.3, 0.1},
              FingerArticulation{0.8, 0.7, 0.4, 0.0},
              kStraight,
              FingerArticulation{0.05, 0.05, 0.02, -0.1},
              FingerArticulation{0.05, 0.05, 0.02, -0.15}};
    case Gesture::kGun:
      return {FingerArticulation{-0.05, 0.0, 0.0, 0.2}, kStraight, kCurled,
              kCurled, kCurled};
    case Gesture::kRock:
      return {kThumbTucked, kStraight, kCurled, kCurled, kStraight};
    case Gesture::kCall:
      return {FingerArticulation{-0.1, 0.0, 0.0, 0.2}, kCurled, kCurled,
              kCurled, kStraight};
  }
  throw Error("unknown gesture");
}

std::vector<Gesture> all_gestures() {
  std::vector<Gesture> out;
  out.reserve(kNumGestures);
  for (int i = 0; i < kNumGestures; ++i)
    out.push_back(static_cast<Gesture>(i));
  return out;
}

GestureScript::GestureScript(const GestureScriptConfig& config, Rng rng,
                             double duration_s)
    : config_(config), duration_(duration_s) {
  MMHAND_CHECK(duration_s > 0.0, "script duration " << duration_s);
  MMHAND_CHECK(config.keyframe_period_s > 0.0, "keyframe period");
  const auto vocab =
      config_.vocabulary.empty() ? all_gestures() : config_.vocabulary;
  const int n_keys =
      static_cast<int>(std::ceil(duration_s / config.keyframe_period_s)) + 2;
  keyframes_.reserve(static_cast<std::size_t>(n_keys));
  Gesture prev = vocab[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<int>(vocab.size()) - 1))];
  keyframes_.push_back(prev);
  for (int i = 1; i < n_keys; ++i) {
    Gesture next = prev;
    // Avoid a keyframe repeating its predecessor so the hand keeps moving.
    for (int tries = 0; tries < 8 && next == prev; ++tries)
      next = vocab[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(vocab.size()) - 1))];
    keyframes_.push_back(next);
    prev = next;
  }
  drift_phase_x_ = rng.uniform(0.0, 6.28);
  drift_phase_y_ = rng.uniform(0.0, 6.28);
  drift_phase_z_ = rng.uniform(0.0, 6.28);
  wobble_phase_a_ = rng.uniform(0.0, 6.28);
  wobble_phase_b_ = rng.uniform(0.0, 6.28);
}

HandPose GestureScript::pose_at(double t) const {
  t = std::clamp(t, 0.0, duration_);
  const double period = config_.keyframe_period_s;
  const auto key = static_cast<std::size_t>(t / period);
  const double local = t / period - static_cast<double>(key);

  const auto a = gesture_articulation(keyframes_[key]);
  const auto b = gesture_articulation(
      keyframes_[std::min(key + 1, keyframes_.size() - 1)]);
  // Hold the gesture for the first part of the period, then transition.
  const double hold = config_.hold_fraction;
  const double mix =
      local <= hold ? 0.0 : smoothstep((local - hold) / (1.0 - hold));

  HandPose pose;
  for (int f = 0; f < kNumFingers; ++f) {
    const auto fi = static_cast<std::size_t>(f);
    pose.fingers[fi].mcp = a[fi].mcp + (b[fi].mcp - a[fi].mcp) * mix;
    pose.fingers[fi].pip = a[fi].pip + (b[fi].pip - a[fi].pip) * mix;
    pose.fingers[fi].dip = a[fi].dip + (b[fi].dip - a[fi].dip) * mix;
    pose.fingers[fi].splay = a[fi].splay + (b[fi].splay - a[fi].splay) * mix;
  }

  // Slow wrist wander and orientation wobble make every frame unique.
  const double d = config_.wrist_drift_m;
  pose.wrist_position =
      config_.base_wrist +
      Vec3{d * std::sin(0.9 * t + drift_phase_x_),
           0.6 * d * std::sin(0.6 * t + drift_phase_y_),
           d * std::sin(0.75 * t + drift_phase_z_)};
  const double w = config_.orientation_wobble_rad;
  const Quaternion wobble =
      Quaternion::from_axis_angle(Vec3{1.0, 0.0, 0.0},
                                  w * std::sin(0.7 * t + wobble_phase_a_)) *
      Quaternion::from_axis_angle(Vec3{0.0, 0.0, 1.0},
                                  w * std::sin(0.5 * t + wobble_phase_b_));
  pose.orientation = wobble * config_.base_orientation;
  return clamp_articulation(pose);
}

Gesture GestureScript::gesture_at(double t) const {
  t = std::clamp(t, 0.0, duration_);
  const auto key = static_cast<std::size_t>(
      std::min(t / config_.keyframe_period_s + 0.5,
               static_cast<double>(keyframes_.size() - 1)));
  return keyframes_[key];
}

}  // namespace mmhand::hand
