#pragma once

// The 21-hand-joint model (§IV, Fig. 4): one wrist joint, 16 finger joints
// and 4 fingertip joints... the paper counts the thumb CMC/MCP/IP chain
// among the finger joints.  Joint ordering follows MediaPipe Hands, the
// tool the paper uses for ground truth, so labels line up 1:1:
//   0 wrist; then for each finger f in {thumb, index, middle, ring, pinky}:
//   1+4f, 2+4f, 3+4f, 4+4f  =  MCP(CMC), PIP(MCP), DIP(IP), TIP.

#include <array>
#include <string_view>

#include "mmhand/common/vec3.hpp"

namespace mmhand::hand {

inline constexpr int kNumJoints = 21;
inline constexpr int kNumFingers = 5;
inline constexpr int kWrist = 0;

/// 3-D positions of the 21 joints (meters, radar/world frame).
using JointSet = std::array<Vec3, kNumJoints>;

enum class Finger { kThumb = 0, kIndex = 1, kMiddle = 2, kRing = 3,
                    kPinky = 4 };

/// First joint index (MCP / thumb CMC) of a finger.
constexpr int finger_base(Finger f) { return 1 + 4 * static_cast<int>(f); }

/// Joint index of the j-th joint (0=MCP..3=TIP) of finger f.
constexpr int finger_joint(Finger f, int j) { return finger_base(f) + j; }

/// True for the 4 fingertip joints.
constexpr bool is_fingertip(int joint) { return joint >= 1 && joint % 4 == 0; }

/// Palm joints: wrist + the five MCP joints.  The paper's palm/finger
/// split (Fig. 14) uses this partition.
constexpr bool is_palm_joint(int joint) {
  return joint == kWrist || (joint >= 1 && joint % 4 == 1);
}

std::string_view joint_name(int joint);

/// Parent joint in the kinematic tree (wrist has parent -1).
constexpr int joint_parent(int joint) {
  if (joint == kWrist) return -1;
  return joint % 4 == 1 ? kWrist : joint - 1;
}

/// Bone count of the skeleton (20 bones: each non-wrist joint to parent).
inline constexpr int kNumBones = kNumJoints - 1;

/// Mean per-bone length of a joint set, phalange validity helper.
double bone_length(const JointSet& joints, int child_joint);

}  // namespace mmhand::hand
