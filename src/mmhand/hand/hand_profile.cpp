#include "mmhand/hand/hand_profile.hpp"

#include <cmath>

#include "mmhand/common/error.hpp"
#include "mmhand/common/rng.hpp"

namespace mmhand::hand {

HandProfile HandProfile::reference() {
  HandProfile p;
  // Anthropometric averages (meters).  x: thumb side, y: finger direction.
  p.mcp_offsets = {
      Vec3{0.030, 0.020, -0.004},   // thumb CMC sits low on the palm edge
      Vec3{0.025, 0.085, 0.0},      // index MCP
      Vec3{0.005, 0.090, 0.0},      // middle MCP
      Vec3{-0.015, 0.085, 0.0},     // ring MCP
      Vec3{-0.033, 0.075, 0.0},     // pinky MCP
  };
  p.phalange_lengths = {{
      {0.042, 0.032, 0.028},  // thumb: metacarpal-ish, proximal, distal
      {0.040, 0.025, 0.022},  // index
      {0.045, 0.028, 0.024},  // middle
      {0.041, 0.027, 0.023},  // ring
      {0.032, 0.020, 0.019},  // pinky
  }};
  p.rest_splay = {0.85, 0.12, 0.0, -0.12, -0.28};  // radians
  p.scale = 1.0;
  return p;
}

HandProfile HandProfile::for_user(int user_id) {
  MMHAND_CHECK(user_id >= 0, "user id " << user_id);
  HandProfile p = reference();
  // Deterministic per-user variation seeded by the id.
  Rng rng(0x9e3779b97f4a7c15ull ^ static_cast<std::uint64_t>(user_id));
  // Even ids male (scale ~1.0-1.08), odd ids female (scale ~0.88-0.96),
  // echoing the paper's 5/5 split and 1.65-1.85 m height spread.
  const double base = (user_id % 2 == 0) ? 1.04 : 0.92;
  const double scale = base + rng.uniform(-0.04, 0.04);
  p = p.scaled(scale);
  for (int f = 0; f < kNumFingers; ++f) {
    auto fi = static_cast<std::size_t>(f);
    for (auto& len : p.phalange_lengths[fi])
      len *= 1.0 + rng.uniform(-0.05, 0.05);
    p.rest_splay[fi] += rng.uniform(-0.03, 0.03);
  }
  return p;
}

HandProfile HandProfile::scaled(double s) const {
  MMHAND_CHECK(s > 0.0, "profile scale " << s);
  HandProfile p = *this;
  for (auto& o : p.mcp_offsets) o *= s;
  for (auto& f : p.phalange_lengths)
    for (auto& len : f) len *= s;
  p.scale = scale * s;
  return p;
}

}  // namespace mmhand::hand
