#include "mmhand/hand/kinematics.hpp"

#include <algorithm>
#include <cmath>

namespace mmhand::hand {

namespace {

/// Rodrigues rotation of v about unit axis by angle.
Vec3 rotate_about(const Vec3& v, const Vec3& axis, double angle) {
  const double c = std::cos(angle);
  const double s = std::sin(angle);
  return v * c + axis.cross(v) * s + axis * (axis.dot(v) * (1.0 - c));
}

}  // namespace

HandPose HandPose::lerp(const HandPose& a, const HandPose& b, double t) {
  HandPose out;
  out.wrist_position = a.wrist_position * (1.0 - t) + b.wrist_position * t;
  out.orientation = Quaternion::slerp(a.orientation, b.orientation, t);
  for (int f = 0; f < kNumFingers; ++f) {
    const auto fi = static_cast<std::size_t>(f);
    out.fingers[fi].mcp = a.fingers[fi].mcp * (1.0 - t) +
                          b.fingers[fi].mcp * t;
    out.fingers[fi].pip = a.fingers[fi].pip * (1.0 - t) +
                          b.fingers[fi].pip * t;
    out.fingers[fi].dip = a.fingers[fi].dip * (1.0 - t) +
                          b.fingers[fi].dip * t;
    out.fingers[fi].splay = a.fingers[fi].splay * (1.0 - t) +
                            b.fingers[fi].splay * t;
  }
  return out;
}

JointSet local_kinematics(const HandProfile& profile, const HandPose& pose) {
  JointSet joints{};
  joints[kWrist] = Vec3{0.0, 0.0, 0.0};

  const Vec3 palm_normal{0.0, 0.0, 1.0};  // back of the hand, hand frame
  for (int f = 0; f < kNumFingers; ++f) {
    const auto fi = static_cast<std::size_t>(f);
    const FingerArticulation& art = pose.fingers[fi];
    const Vec3 mcp = profile.mcp_offsets[fi];

    // Base direction: +y splayed in the palm plane.
    const double splay = profile.rest_splay[fi] + art.splay;
    Vec3 dir = rotate_about(Vec3{0.0, 1.0, 0.0}, palm_normal, splay);
    // Lateral (flexion) axis is fixed per finger, so the finger curls in a
    // plane: positive flexion bends toward the palm (-z).
    const Vec3 lateral = palm_normal.cross(dir).normalized();
    if (f == static_cast<int>(Finger::kThumb)) {
      // The thumb's column is pre-rotated out of the palm plane so it can
      // oppose the fingers.
      dir = rotate_about(dir, lateral, 0.45);
    }

    const std::array<double, 3> flex{art.mcp, art.pip, art.dip};
    Vec3 cursor = mcp;
    Vec3 bone_dir = dir;
    double accumulated = 0.0;
    joints[static_cast<std::size_t>(finger_joint(
        static_cast<Finger>(f), 0))] = cursor;
    for (int k = 0; k < 3; ++k) {
      accumulated += flex[static_cast<std::size_t>(k)];
      bone_dir = rotate_about(dir, lateral, accumulated);
      cursor += bone_dir * profile.phalange_lengths[fi]
                               [static_cast<std::size_t>(k)];
      joints[static_cast<std::size_t>(
          finger_joint(static_cast<Finger>(f), k + 1))] = cursor;
    }
  }
  return joints;
}

JointSet forward_kinematics(const HandProfile& profile,
                            const HandPose& pose) {
  JointSet joints = local_kinematics(profile, pose);
  for (auto& j : joints)
    j = pose.wrist_position + pose.orientation.rotate(j);
  return joints;
}

HandPose clamp_articulation(const HandPose& pose) {
  HandPose out = pose;
  for (auto& f : out.fingers) {
    f.mcp = std::clamp(f.mcp, -0.25, kMaxFlexion);
    f.pip = std::clamp(f.pip, -0.10, kMaxFlexion);
    f.dip = std::clamp(f.dip, -0.10, 1.2);
    f.splay = std::clamp(f.splay, -0.35, 0.35);
  }
  return out;
}

}  // namespace mmhand::hand
