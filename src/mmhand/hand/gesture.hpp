#pragma once

// Gesture vocabulary and continuous gesture synthesis (§VI-A).
//
// The paper's volunteers performed "interaction gestures and counting
// gestures ... non-predefined and most common daily gestures" continuously.
// GestureGenerator reproduces that: a keyframe sequence of named poses is
// sampled per user, and the hand animates smoothly between keyframes with
// wrist drift and orientation wobble layered on top.

#include <string_view>
#include <vector>

#include "mmhand/common/rng.hpp"
#include "mmhand/hand/kinematics.hpp"

namespace mmhand::hand {

enum class Gesture {
  kOpenPalm,
  kFist,
  kPoint,       // counting "1"
  kCount2,
  kCount3,
  kCount4,
  kCount5,      // == open palm with spread fingers
  kPinch,
  kThumbsUp,
  kOkSign,
  kGun,
  kRock,
  kCall,
};

inline constexpr int kNumGestures = 13;

std::string_view gesture_name(Gesture g);

/// Finger articulations of a named static gesture (wrist pose untouched).
std::array<FingerArticulation, kNumFingers> gesture_articulation(Gesture g);

/// All gestures, convenient for parameterized tests.
std::vector<Gesture> all_gestures();

struct GestureScriptConfig {
  double keyframe_period_s = 0.8;   ///< time between gesture keyframes
  double hold_fraction = 0.35;      ///< fraction of each period held static
  double wrist_drift_m = 0.015;     ///< amplitude of slow wrist wander
  double orientation_wobble_rad = 0.12;
  /// Base wrist placement; gestures wander around this point.
  Vec3 base_wrist{0.0, 0.30, 0.0};
  /// Base orientation (hand frame -> world).  Default faces the palm
  /// toward the radar (-y) with fingers up (+z): a 180-degree rotation
  /// about the (0,1,1)/sqrt(2) axis maps hand +y (fingers) to world +z and
  /// hand +z (back of hand) to world +y.
  Quaternion base_orientation =
      Quaternion{0.0, 0.0, 0.7071067811865476, 0.7071067811865476};
  /// Restrict to a subset of gestures; empty means all.
  std::vector<Gesture> vocabulary;
};

/// A deterministic continuous gesture performance.
class GestureScript {
 public:
  GestureScript(const GestureScriptConfig& config, Rng rng,
                double duration_s);

  /// Hand pose at time t (clamped to the script duration).
  HandPose pose_at(double t) const;

  /// Gesture held around time t (the nearest keyframe's label).
  Gesture gesture_at(double t) const;

  double duration() const { return duration_; }

 private:
  GestureScriptConfig config_;
  double duration_;
  std::vector<Gesture> keyframes_;
  // Smooth per-script phases for drift and wobble.
  double drift_phase_x_, drift_phase_y_, drift_phase_z_;
  double wobble_phase_a_, wobble_phase_b_;
};

}  // namespace mmhand::hand
