#include "mmhand/hand/skeleton.hpp"

#include "mmhand/common/error.hpp"

namespace mmhand::hand {

std::string_view joint_name(int joint) {
  static constexpr std::array<std::string_view, kNumJoints> kNames = {
      "wrist",      "thumb_cmc",  "thumb_mcp",  "thumb_ip",   "thumb_tip",
      "index_mcp",  "index_pip",  "index_dip",  "index_tip",  "middle_mcp",
      "middle_pip", "middle_dip", "middle_tip", "ring_mcp",   "ring_pip",
      "ring_dip",   "ring_tip",   "pinky_mcp",  "pinky_pip",  "pinky_dip",
      "pinky_tip"};
  MMHAND_CHECK(joint >= 0 && joint < kNumJoints, "joint index " << joint);
  return kNames[static_cast<std::size_t>(joint)];
}

double bone_length(const JointSet& joints, int child_joint) {
  MMHAND_CHECK(child_joint >= 1 && child_joint < kNumJoints,
               "bone child " << child_joint);
  const int parent = joint_parent(child_joint);
  return distance(joints[static_cast<std::size_t>(child_joint)],
                  joints[static_cast<std::size_t>(parent)]);
}

}  // namespace mmhand::hand
