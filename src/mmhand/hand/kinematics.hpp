#pragma once

// Articulated hand kinematics.
//
// A HandPose articulates a HandProfile: per-finger flexion angles (MCP,
// PIP, DIP) and splay, plus the global wrist position and orientation.
// forward_kinematics produces the 21 world-space joints.  Within a finger,
// all flexion happens about one fixed lateral axis, so the four joints of
// each finger are exactly coplanar — the geometric property the paper's
// kinematic loss (Eq. 9) enforces.

#include <array>

#include "mmhand/common/quaternion.hpp"
#include "mmhand/hand/hand_profile.hpp"
#include "mmhand/hand/skeleton.hpp"

namespace mmhand::hand {

/// Flexion/abduction state of one finger (radians).
struct FingerArticulation {
  double mcp = 0.0;   ///< flexion at the MCP (thumb CMC) joint
  double pip = 0.0;   ///< flexion at the PIP (thumb MCP) joint
  double dip = 0.0;   ///< flexion at the DIP (thumb IP) joint
  double splay = 0.0; ///< abduction offset from the profile's rest splay
};

struct HandPose {
  Vec3 wrist_position{0.0, 0.30, 0.0};  ///< world frame, radar at origin
  Quaternion orientation = Quaternion::identity();  ///< hand frame -> world
  std::array<FingerArticulation, kNumFingers> fingers{};

  /// Linear interpolation of articulations + slerp of orientation.
  static HandPose lerp(const HandPose& a, const HandPose& b, double t);
};

/// World-space joints of a posed hand.
JointSet forward_kinematics(const HandProfile& profile, const HandPose& pose);

/// Joints expressed in the canonical hand frame (wrist at origin).
JointSet local_kinematics(const HandProfile& profile, const HandPose& pose);

/// Largest absolute flexion angle that keeps fingers anatomically sane.
inline constexpr double kMaxFlexion = 1.85;  // ~106 degrees

/// Clamps all articulation angles into anatomically plausible ranges.
HandPose clamp_articulation(const HandPose& pose);

}  // namespace mmhand::hand
