#pragma once

// FMCW radar configuration (§III, §VI-A).
//
// Defaults mirror the paper's TI IWR1443 setup: 77-81 GHz chirps, 80 us
// chirp cycle, 64 ADC samples per chirp, 3 TX x 4 RX TDM-MIMO.  The number
// of chirp loops per frame is configurable; the paper uses 64, the simulated
// reproduction defaults to 16 to keep CPU training tractable (documented in
// DESIGN.md).

#include <cmath>

#include "mmhand/common/error.hpp"

namespace mmhand::radar {

/// Speed of light in m/s.
inline constexpr double kSpeedOfLight = 299792458.0;

struct ChirpConfig {
  double start_freq_hz = 77.0e9;   ///< f0: chirp start frequency
  double bandwidth_hz = 4.0e9;     ///< B: swept bandwidth (77-81 GHz)
  double chirp_duration_s = 80e-6; ///< Tc: chirp cycle time
  int samples_per_chirp = 64;      ///< ADC samples per chirp
  int chirps_per_frame = 16;       ///< chirp loops per TX per frame
  int num_tx = 3;                  ///< transmit antennas (TDM)
  int num_rx = 4;                  ///< receive antennas
  double frame_period_s = 0.02;    ///< time between frame starts (50 fps)
  double noise_stddev = 0.02;      ///< thermal noise per IF sample

  /// ADC sample rate in Hz.
  double sample_rate_hz() const {
    return static_cast<double>(samples_per_chirp) / chirp_duration_s;
  }
  /// Chirp slope S = B / Tc in Hz/s.
  double slope_hz_per_s() const { return bandwidth_hz / chirp_duration_s; }
  /// Carrier wavelength at the chirp start frequency.
  double wavelength_m() const { return kSpeedOfLight / start_freq_hz; }
  /// Range resolution c / (2B).
  double range_resolution_m() const {
    return kSpeedOfLight / (2.0 * bandwidth_hz);
  }
  /// Maximum unambiguous range fs*c*Tc/(2B)/2 (half the beat Nyquist).
  double max_range_m() const {
    return sample_rate_hz() / 2.0 * kSpeedOfLight /
           (2.0 * slope_hz_per_s());
  }
  /// Effective chirp repetition for one TX under TDM.
  double tdm_chirp_period_s() const {
    return chirp_duration_s * static_cast<double>(num_tx);
  }
  /// Maximum unambiguous radial velocity lambda / (4 * Tc_tdm).
  double max_velocity_mps() const {
    return wavelength_m() / (4.0 * tdm_chirp_period_s());
  }
  /// Beat frequency for a target at range r: f_b = 2*S*r/c.
  double beat_frequency_hz(double range_m) const {
    return 2.0 * slope_hz_per_s() * range_m / kSpeedOfLight;
  }
  /// Range corresponding to a beat frequency.
  double range_for_beat(double beat_hz) const {
    return beat_hz * kSpeedOfLight / (2.0 * slope_hz_per_s());
  }

  void validate() const {
    // Finiteness first: a NaN slips through every `>` comparison below
    // (NaN compares false both ways) and then poisons the whole cube.
    MMHAND_CHECK(std::isfinite(start_freq_hz) && std::isfinite(bandwidth_hz),
                 "chirp frequencies must be finite");
    MMHAND_CHECK(std::isfinite(chirp_duration_s) &&
                     std::isfinite(frame_period_s),
                 "chirp timing must be finite");
    MMHAND_CHECK(std::isfinite(noise_stddev) && noise_stddev >= 0,
                 "noise stddev " << noise_stddev);
    MMHAND_CHECK(start_freq_hz > 0 && bandwidth_hz > 0, "chirp frequencies");
    MMHAND_CHECK(chirp_duration_s > 0, "chirp duration");
    MMHAND_CHECK(samples_per_chirp >= 8, "samples per chirp");
    MMHAND_CHECK(chirps_per_frame >= 2, "chirps per frame");
    MMHAND_CHECK(num_tx >= 1 && num_rx >= 1, "antenna counts");
    MMHAND_CHECK(frame_period_s >=
                     chirp_duration_s * num_tx * chirps_per_frame,
                 "frame period shorter than the chirp train");
  }
};

/// Radar-cube dimensions produced by the pre-processing pipeline.
struct CubeConfig {
  int range_bins = 24;      ///< cropped leading range bins (~90 cm span)
  int azimuth_bins = 16;    ///< zoom-FFT azimuth bins over +-span
  int elevation_bins = 8;   ///< zoom-FFT elevation bins over +-span
  double angle_span_deg = 30.0;  ///< hand appears within +-30 deg (§III)
  int zoom_factor = 2;      ///< paper's angle-FFT refinement factor

  /// Width of the range-angle image fed to the network: azimuth and
  /// elevation spectra are concatenated along the angle axis.
  int total_angle_bins() const { return azimuth_bins + elevation_bins; }

  /// Angle span in radians.
  double angle_span_rad() const {
    return angle_span_deg * 3.14159265358979323846 / 180.0;
  }

  void validate() const {
    MMHAND_CHECK(range_bins >= 4, "range bins");
    MMHAND_CHECK(azimuth_bins >= 4 && elevation_bins >= 2, "angle bins");
    MMHAND_CHECK(std::isfinite(angle_span_deg) && angle_span_deg > 0 &&
                     angle_span_deg <= 60,
                 "angle span");
    MMHAND_CHECK(zoom_factor >= 1, "zoom factor " << zoom_factor);
  }
};

}  // namespace mmhand::radar
