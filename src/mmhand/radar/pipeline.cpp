#include "mmhand/radar/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "mmhand/common/aligned.hpp"
#include "mmhand/common/parallel.hpp"
#include "mmhand/common/realtime.hpp"
#include "mmhand/dsp/fft.hpp"
#include "mmhand/obs/context.hpp"
#include "mmhand/obs/metrics.hpp"
#include "mmhand/obs/trace.hpp"
#include "mmhand/simd/simd.hpp"

namespace mmhand::radar {

namespace {

constexpr double kPi = std::numbers::pi;
using Cd = std::complex<double>;

/// Roofline cost model for the DSP stages (`<stage>.flops` /
/// `<stage>.bytes` counters next to the span histograms of the same
/// name).  These are arithmetic estimates of the stage's math — 5·N·log2N
/// per complex FFT, one CZT as three kernel FFTs, 16-byte complex
/// doubles streamed in and out — not measurements, and deliberately
/// identical for the scalar and SIMD paths so arithmetic intensity is a
/// property of the algorithm, not the dispatch.
double fft_flops(double n) {
  return 5.0 * n * std::log2(std::max(2.0, n));
}

/// Bluestein/CZT on `n` inputs and `m` output bins: chirp multiply,
/// forward+inverse FFT at the padded size, kernel multiply.
double czt_flops(double n, double m) {
  double fft_n = 2.0;
  while (fft_n < n + m - 1.0) fft_n *= 2.0;
  return 3.0 * fft_flops(fft_n) + 6.0 * (n + m + fft_n);
}

void note_stage_cost(const char* flops_name, const char* bytes_name,
                     double flops, double bytes) {
  obs::counter(flops_name).add(static_cast<std::int64_t>(flops));
  obs::counter(bytes_name).add(static_cast<std::int64_t>(bytes));
}

/// Per-thread SoA scratch for the lane-batched stages; grown on demand
/// so steady-state frames allocate nothing.
double* stage_scratch(std::size_t doubles) {
  thread_local aligned_vector<double> buf;
  if (buf.size() < doubles) buf.resize(doubles);
  return buf.data();
}

}  // namespace

RadarPipeline::RadarPipeline(const ChirpConfig& chirp,
                             const AntennaArray& array,
                             const PipelineConfig& config)
    : chirp_(chirp), array_(array), config_(config) {
  chirp_.validate();
  config_.cube.validate();
  MMHAND_CHECK(config_.cube.range_bins <= chirp_.samples_per_chirp,
               "more range bins than samples per chirp");
  MMHAND_CHECK(config_.band_lo_m < config_.band_hi_m, "bandpass band");
  if (config_.enable_bandpass) {
    const double fs = chirp_.sample_rate_hz();
    const double f_lo = chirp_.beat_frequency_hz(config_.band_lo_m);
    const double f_hi =
        std::min(chirp_.beat_frequency_hz(config_.band_hi_m), 0.45 * fs);
    bandpass_ = dsp::butterworth_bandpass(config_.butterworth_order, f_lo,
                                          f_hi, fs);
  }
  range_window_ = dsp::make_window(
      config_.range_window,
      static_cast<std::size_t>(chirp_.samples_per_chirp));
  doppler_window_ = dsp::make_window(
      config_.doppler_window,
      static_cast<std::size_t>(chirp_.chirps_per_frame));
}

double RadarPipeline::range_for_bin(int d) const {
  const double bin_hz = chirp_.sample_rate_hz() /
                        static_cast<double>(chirp_.samples_per_chirp);
  return chirp_.range_for_beat(bin_hz * static_cast<double>(d));
}

double RadarPipeline::azimuth_for_bin(int a) const {
  const int n = config_.cube.azimuth_bins;
  MMHAND_CHECK(a >= 0 && a < n, "azimuth bin " << a);
  const double span = config_.cube.angle_span_rad();
  // Bins sample sin(theta) uniformly across [-sin(span), sin(span)].
  const double s = -std::sin(span) +
                   (2.0 * std::sin(span)) * (static_cast<double>(a) + 0.5) /
                       static_cast<double>(n);
  return std::asin(s);
}

double RadarPipeline::elevation_for_bin(int e) const {
  const int n = config_.cube.elevation_bins;
  MMHAND_CHECK(e >= 0 && e < n, "elevation bin " << e);
  const double span = config_.cube.angle_span_rad();
  const double s = -std::sin(span) +
                   (2.0 * std::sin(span)) * (static_cast<double>(e) + 0.5) /
                       static_cast<double>(n);
  return std::asin(s);
}

double RadarPipeline::velocity_for_bin(int v) const {
  const int n = chirp_.chirps_per_frame;
  MMHAND_CHECK(v >= 0 && v < n, "doppler bin " << v);
  const int k = v - n / 2;  // signed bin after fftshift
  const double doppler_hz =
      static_cast<double>(k) /
      (static_cast<double>(n) * chirp_.tdm_chirp_period_s());
  return doppler_hz * chirp_.wavelength_m() / 2.0;
}


namespace {

/// Per-thread frame workspace: every per-frame intermediate (bandpass
/// staging, range profiles, Doppler volume, TDM phase table) lives
/// here, grown on demand and reused across frames, so a warm
/// `process_frame_into` performs no heap allocation on vector ISAs
/// (audited in scripts/purity_allowlist.json; scripts/check_purity.sh
/// asserts it at runtime).
struct FrameWorkspace {
  aligned_vector<Cd> filtered;
  aligned_vector<Cd> profiles;
  aligned_vector<Cd> doppler;
  aligned_vector<double> ph_re, ph_im;
};

FrameWorkspace& frame_workspace(std::size_t filtered_n,
                                std::size_t profiles_n,
                                std::size_t doppler_n,
                                std::size_t phase_n) {
  thread_local FrameWorkspace ws;
  if (ws.filtered.size() < filtered_n) ws.filtered.resize(filtered_n);
  if (ws.profiles.size() < profiles_n) ws.profiles.resize(profiles_n);
  if (ws.doppler.size() < doppler_n) ws.doppler.resize(doppler_n);
  if (ws.ph_re.size() < phase_n) ws.ph_re.resize(phase_n);
  if (ws.ph_im.size() < phase_n) ws.ph_im.resize(phase_n);
  return ws;
}

}  // namespace

void RadarPipeline::range_fft_scalar(const IfFrame& frame,
                                     const Cd* filtered,
                                     Cd* profiles) const {
  const int n_rx = frame.num_rx();
  const int n_chirp = frame.chirps();
  const int n_samp = frame.samples();
  const int n_range = config_.cube.range_bins;
  const std::int64_t n_virt =
      static_cast<std::int64_t>(frame.num_tx()) * n_rx * n_chirp;
  parallel_for(
      0, n_virt, 1,
      [&](std::int64_t idx) {
        const int c = static_cast<int>(idx % n_chirp);
        const int rx = static_cast<int>((idx / n_chirp) % n_rx);
        const int tx = static_cast<int>(
            idx / (static_cast<std::int64_t>(n_chirp) * n_rx));
        const Cd* in = filtered != nullptr
                           ? filtered +
                                 static_cast<std::size_t>(idx) * n_samp
                           : frame.chirp_data(tx, rx, c);
        std::vector<Cd> chirp_buf(in, in + n_samp);
        for (int m = 0; m < n_samp; ++m)
          chirp_buf[static_cast<std::size_t>(m)] *=
              range_window_[static_cast<std::size_t>(m)];
        const auto spectrum = dsp::fft(chirp_buf);
        const std::size_t base =
            ((static_cast<std::size_t>(tx) * n_rx + rx) * n_chirp + c) *
            n_range;
        for (int d = 0; d < n_range; ++d)
          profiles[base + static_cast<std::size_t>(d)] =
              spectrum[static_cast<std::size_t>(d)];
      });
}

MMHAND_REALTIME
void RadarPipeline::range_profiles_into(const IfFrame& frame, Cd* filtered,
                                        Cd* profiles) const {
  const int n_tx = frame.num_tx();
  const int n_rx = frame.num_rx();
  const int n_chirp = frame.chirps();
  const int n_samp = frame.samples();
  const int n_range = config_.cube.range_bins;
  const std::int64_t n_virt =
      static_cast<std::int64_t>(n_tx) * n_rx * n_chirp;
  auto chirp_of = [&](std::int64_t idx, int& tx, int& rx, int& c) {
    c = static_cast<int>(idx % n_chirp);
    rx = static_cast<int>((idx / n_chirp) % n_rx);
    tx = static_cast<int>(idx /
                          (static_cast<std::int64_t>(n_chirp) * n_rx));
  };

  // Stage 1: Butterworth bandpass, all chirps in one zero-phase batch
  // (skipped when disabled; the per-chirp op order is the same as the
  // fused loop, so results are unchanged).  filtfilt_batch runs the
  // per-signal reference loop under the scalar ISA and the lane-batched
  // biquad cascade otherwise.
  const bool bandpass = config_.enable_bandpass;
  if (bandpass) {
    MMHAND_SPAN("radar/bandpass");
    for (std::int64_t idx = 0; idx < n_virt; ++idx) {
      int tx, rx, c;
      chirp_of(idx, tx, rx, c);
      const Cd* in = frame.chirp_data(tx, rx, c);
      std::copy(in, in + n_samp,
                filtered + static_cast<std::ptrdiff_t>(idx) * n_samp);
    }
    bandpass_.filtfilt_batch(filtered, static_cast<std::size_t>(n_samp),
                             static_cast<std::size_t>(n_virt));
  }

  // Stage 2: window + range-FFT per (tx, rx, chirp); each index owns a
  // disjoint `n_range` slice of `profiles`, so the fan-out is
  // deterministic.
  MMHAND_SPAN("radar/range_fft");
  const bool vec_range = simd::active_isa() != simd::Isa::kScalar &&
                         dsp::is_power_of_two(static_cast<std::size_t>(
                             n_samp));
  if (!vec_range) {
    range_fft_scalar(frame, bandpass ? filtered : nullptr, profiles);
    return;
  }

  // Vector path: `width` chirps ride the SIMD lanes of one split-complex
  // FFT.  Groups are fixed runs of consecutive chirp indices, so the
  // output is independent of the thread count.
  const auto& kernels = simd::kernels();
  const std::size_t width = static_cast<std::size_t>(kernels.width);
  const std::int64_t groups =
      (n_virt + static_cast<std::int64_t>(width) - 1) /
      static_cast<std::int64_t>(width);
  parallel_for(0, groups, 1, [&](std::int64_t g) {
    const std::size_t ns = static_cast<std::size_t>(n_samp);
    double* re = stage_scratch(2 * ns * width);
    double* im = re + ns * width;
    const std::int64_t first = g * static_cast<std::int64_t>(width);
    const std::size_t lanes = static_cast<std::size_t>(
        std::min<std::int64_t>(static_cast<std::int64_t>(width),
                               n_virt - first));
    for (std::size_t l = 0; l < width; ++l) {
      // Clamp trailing lanes to the last chirp; they are never scattered.
      const std::int64_t idx =
          first + static_cast<std::int64_t>(std::min(l, lanes - 1));
      int tx, rx, c;
      chirp_of(idx, tx, rx, c);
      const Cd* in = bandpass ? filtered +
                                    static_cast<std::size_t>(idx) * ns
                              : frame.chirp_data(tx, rx, c);
      for (std::size_t s = 0; s < ns; ++s) {
        re[s * width + l] = in[s].real();
        im[s * width + l] = in[s].imag();
      }
    }
    kernels.scale_bcast(re, im, range_window_.data(), ns);
    dsp::fft_lanes_pow2(re, im, ns, false);
    for (std::size_t l = 0; l < lanes; ++l) {
      const std::size_t base =
          static_cast<std::size_t>(first + static_cast<std::int64_t>(l)) *
          n_range;
      for (int d = 0; d < n_range; ++d)
        profiles[base + static_cast<std::size_t>(d)] =
            Cd{re[static_cast<std::size_t>(d) * width + l],
               im[static_cast<std::size_t>(d) * width + l]};
    }
  });
}

void RadarPipeline::doppler_fft_scalar(const IfFrame& frame,
                                       const Cd* profiles,
                                       Cd* doppler) const {
  const int n_tx = frame.num_tx();
  const int n_rx = frame.num_rx();
  const int n_chirp = frame.chirps();
  const int n_range = config_.cube.range_bins;
  auto profile_at = [&](int tx, int rx, int c, int d) -> Cd {
    return profiles[((static_cast<std::size_t>(tx) * n_rx + rx) * n_chirp +
                     c) *
                        n_range +
                    static_cast<std::size_t>(d)];
  };
  const std::int64_t n_cols =
      static_cast<std::int64_t>(n_tx) * n_rx * n_range;
  parallel_for(
      0, n_cols, 1,
      [&](std::int64_t idx) {
        const int d = static_cast<int>(idx % n_range);
        const int rx = static_cast<int>((idx / n_range) % n_rx);
        const int tx = static_cast<int>(idx / (static_cast<std::int64_t>(
                                                   n_range) *
                                               n_rx));
        std::vector<Cd> seq(static_cast<std::size_t>(n_chirp));
        for (int c = 0; c < n_chirp; ++c)
          seq[static_cast<std::size_t>(c)] =
              profile_at(tx, rx, c, d) *
              doppler_window_[static_cast<std::size_t>(c)];
        auto spec = dsp::fft_shift(dsp::fft(seq));
        for (int v = 0; v < n_chirp; ++v) {
          const int k = v - n_chirp / 2;
          const double comp = -2.0 * kPi * static_cast<double>(k) *
                              static_cast<double>(tx) /
                              (static_cast<double>(n_chirp) * n_tx);
          doppler[((static_cast<std::size_t>(tx) * n_rx + rx) * n_chirp +
                   v) *
                      n_range +
                  static_cast<std::size_t>(d)] =
              spec[static_cast<std::size_t>(v)] * std::polar(1.0, comp);
        }
      });
}

void RadarPipeline::angle_fft_scalar(const IfFrame& frame,
                                     const Cd* doppler, double f_max,
                                     RadarCube* cube) const {
  const int n_rx = frame.num_rx();
  const int n_chirp = frame.chirps();
  const int n_range = config_.cube.range_bins;
  const int n_az = config_.cube.azimuth_bins;
  const int n_el = config_.cube.elevation_bins;
  const auto& az_row = array_.azimuth_row();
  const auto& el_row = array_.elevation_row();
  auto doppler_at = [&](int tx, int rx, int v, int d) -> Cd {
    return doppler[((static_cast<std::size_t>(tx) * n_rx + rx) * n_chirp +
                    v) *
                       n_range +
                   static_cast<std::size_t>(d)];
  };
  const std::int64_t n_cells =
      static_cast<std::int64_t>(n_chirp) * n_range;
  parallel_for(
      0, n_cells, 1,
      [&](std::int64_t idx) {
        const int v = static_cast<int>(idx / n_range);
        const int d = static_cast<int>(idx % n_range);
        std::vector<Cd> az_sig(az_row.size());
        std::vector<Cd> el_sig(2);
        for (std::size_t i = 0; i < az_row.size(); ++i)
          az_sig[i] = doppler_at(az_row[i].first, az_row[i].second, v, d);
        // IF phase grows with path length, so elements closer to a target on
        // the +x side have *smaller* phase: the array response is
        // exp(-j*2*pi*f*i).  The DFT therefore peaks at -f; sweep the band
        // from +f_max down to -f_max so bin index increases with theta.
        auto az_spec = dsp::zoom_fft(az_sig, -f_max, f_max,
                                     static_cast<std::size_t>(n_az));
        for (int a = 0; a < n_az; ++a)
          cube->at(v, d, a) = static_cast<float>(
              std::log1p(std::abs(az_spec[static_cast<std::size_t>(
                  n_az - 1 - a)])));

        // Elevation: a 2-element lambda/2 vertical aperture formed by the
        // overlapping x-span of the base row and the raised TX2 row.
        Cd row0{};
        for (std::size_t i = 2; i < 6 && i < az_row.size(); ++i)
          row0 += doppler_at(az_row[i].first, az_row[i].second, v, d);
        row0 /= 4.0;
        Cd row1{};
        for (const auto& [tx, rx] : el_row) row1 += doppler_at(tx, rx, v, d);
        row1 /= static_cast<double>(el_row.size());
        el_sig[0] = row0;
        el_sig[1] = row1;
        auto el_spec = dsp::zoom_fft(el_sig, -f_max, f_max,
                                     static_cast<std::size_t>(n_el));
        for (int e = 0; e < n_el; ++e)
          cube->at(v, d, n_az + e) = static_cast<float>(
              std::log1p(std::abs(el_spec[static_cast<std::size_t>(
                  n_el - 1 - e)])));
      });
}

MMHAND_REALTIME
void RadarPipeline::process_frame_into(const IfFrame& frame,
                                       RadarCube* out) const {
  // Span first, frame scope second: the scope's flow anchor lands inside
  // the frame slice, and the scope closes (emitting its per-frame record)
  // before the frame span records itself, so the frame is not a stage of
  // its own record.
  MMHAND_SPAN("radar/process_frame");
  obs::FrameScope frame_scope("radar/process_frame");
  if (obs::metrics_enabled()) {
    static obs::Counter& frames = obs::counter("radar/frames");
    frames.add(1);
  }
  const int n_tx = frame.num_tx();
  const int n_rx = frame.num_rx();
  const int n_chirp = frame.chirps();
  const int n_samp = frame.samples();
  const int n_range = config_.cube.range_bins;
  const int n_az = config_.cube.azimuth_bins;
  const int n_el = config_.cube.elevation_bins;
  const bool vector_isa = simd::active_isa() != simd::Isa::kScalar;

  if (obs::metrics_enabled()) {
    // Roofline inputs, credited once per frame from the frame's geometry
    // (cheaper and steadier than instrumenting the inner loops).
    const double nv = static_cast<double>(n_tx) * n_rx * n_chirp;
    const double ns = static_cast<double>(n_samp);
    const double cols = static_cast<double>(n_tx) * n_rx * n_range;
    const double cells = static_cast<double>(n_chirp) * n_range;
    const double az_n = static_cast<double>(array_.azimuth_row().size());
    if (config_.enable_bandpass) {
      // Zero-phase cascade: forward+backward over each complex chirp,
      // ~9 flops per biquad per real sample, two real channels.
      const double sos = static_cast<double>(bandpass_.sections().size());
      note_stage_cost("radar/bandpass.flops", "radar/bandpass.bytes",
                      36.0 * sos * nv * ns, 64.0 * nv * ns);
    }
    note_stage_cost("radar/range_fft.flops", "radar/range_fft.bytes",
                    nv * (fft_flops(ns) + 6.0 * ns),
                    16.0 * nv * (ns + n_range));
    note_stage_cost("radar/doppler_fft.flops", "radar/doppler_fft.bytes",
                    cols * (fft_flops(n_chirp) + 12.0 * n_chirp),
                    32.0 * cols * n_chirp);
    note_stage_cost("radar/zoom_angle_fft.flops",
                    "radar/zoom_angle_fft.bytes",
                    cells * (czt_flops(az_n, n_az) + czt_flops(2.0, n_el) +
                             10.0 * (n_az + n_el)),
                    cells * (16.0 * (az_n + 2.0) + 4.0 * (n_az + n_el)));
  }

  // All per-frame intermediates live in the per-thread workspace; the
  // first frame on a thread sizes it, later frames stage into warm
  // storage.
  const std::int64_t n_virt =
      static_cast<std::int64_t>(n_tx) * n_rx * n_chirp;
  const std::size_t profile_n =
      static_cast<std::size_t>(n_virt) * n_range;
  FrameWorkspace& ws = frame_workspace(
      config_.enable_bandpass
          ? static_cast<std::size_t>(n_virt) * n_samp
          : 0,
      profile_n, profile_n,
      static_cast<std::size_t>(n_tx) * n_chirp);

  range_profiles_into(frame, ws.filtered.data(), ws.profiles.data());
  const Cd* profiles = ws.profiles.data();
  auto profile_at = [&](int tx, int rx, int c, int d) -> Cd {
    return profiles[((static_cast<std::size_t>(tx) * n_rx + rx) * n_chirp +
                     c) *
                        n_range +
                    static_cast<std::size_t>(d)];
  };

  // Doppler-FFT per (tx, rx, range bin), with fftshift and TDM phase
  // compensation: TX i fires i*Tc later within each chirp loop, adding a
  // Doppler-dependent phase 2*pi*f_d*i*Tc that must be removed before the
  // angle-FFT can combine virtual channels coherently.
  Cd* doppler = ws.doppler.data();
  auto doppler_at = [&](int tx, int rx, int v, int d) -> Cd& {
    return doppler[((static_cast<std::size_t>(tx) * n_rx + rx) * n_chirp +
                    v) *
                       n_range +
                   static_cast<std::size_t>(d)];
  };
  // One Doppler-FFT per (tx, rx, range bin); each index owns the
  // doppler(tx, rx, *, d) column.
  {
  MMHAND_SPAN("radar/doppler_fft");
  const std::int64_t n_cols =
      static_cast<std::int64_t>(n_tx) * n_rx * n_range;
  const bool vec_doppler =
      vector_isa && dsp::is_power_of_two(static_cast<std::size_t>(n_chirp));
  if (!vec_doppler) {
    doppler_fft_scalar(frame, profiles, doppler);
  } else {
    // TDM compensation factors depend only on (tx, doppler bin);
    // recompute the n_tx * n_chirp table into the workspace each frame.
    const std::size_t nc = static_cast<std::size_t>(n_chirp);
    double* ph_re = ws.ph_re.data();
    double* ph_im = ws.ph_im.data();
    for (int tx = 0; tx < n_tx; ++tx)
      for (int v = 0; v < n_chirp; ++v) {
        const int k = v - n_chirp / 2;
        const double comp = -2.0 * kPi * static_cast<double>(k) *
                            static_cast<double>(tx) /
                            (static_cast<double>(n_chirp) * n_tx);
        const Cd p = std::polar(1.0, comp);
        ph_re[static_cast<std::size_t>(tx) * nc + v] = p.real();
        ph_im[static_cast<std::size_t>(tx) * nc + v] = p.imag();
      }
    const auto& kernels = simd::kernels();
    const std::size_t width = static_cast<std::size_t>(kernels.width);
    const std::size_t half = (nc + 1) / 2;  // fft_shift offset
    const std::int64_t groups =
        (n_cols + static_cast<std::int64_t>(width) - 1) /
        static_cast<std::int64_t>(width);
    parallel_for(0, groups, 1, [&](std::int64_t g) {
      double* re = stage_scratch(4 * nc * width);
      double* im = re + nc * width;
      double* pr = im + nc * width;
      double* pi = pr + nc * width;
      const std::int64_t first = g * static_cast<std::int64_t>(width);
      const std::size_t lanes = static_cast<std::size_t>(
          std::min<std::int64_t>(static_cast<std::int64_t>(width),
                                 n_cols - first));
      int txs[8], rxs[8], ds[8];
      for (std::size_t l = 0; l < width; ++l) {
        const std::int64_t idx =
            first + static_cast<std::int64_t>(std::min(l, lanes - 1));
        ds[l] = static_cast<int>(idx % n_range);
        rxs[l] = static_cast<int>((idx / n_range) % n_rx);
        txs[l] = static_cast<int>(
            idx / (static_cast<std::int64_t>(n_range) * n_rx));
        for (int c = 0; c < n_chirp; ++c) {
          const Cd p = profile_at(txs[l], rxs[l], c, ds[l]);
          re[static_cast<std::size_t>(c) * width + l] = p.real();
          im[static_cast<std::size_t>(c) * width + l] = p.imag();
        }
      }
      kernels.scale_bcast(re, im, doppler_window_.data(), nc);
      dsp::fft_lanes_pow2(re, im, nc, false);
      // Apply the TDM phase in pre-shift row order: row r lands at
      // shifted bin v with r = (v + half) % nc.
      for (std::size_t r = 0; r < nc; ++r) {
        const std::size_t v = (r + nc - half) % nc;
        for (std::size_t l = 0; l < width; ++l) {
          pr[r * width + l] =
              ph_re[static_cast<std::size_t>(txs[l]) * nc + v];
          pi[r * width + l] =
              ph_im[static_cast<std::size_t>(txs[l]) * nc + v];
        }
      }
      kernels.cmul(re, im, pr, pi, nc * width);
      for (std::size_t l = 0; l < lanes; ++l)
        for (std::size_t v = 0; v < nc; ++v) {
          const std::size_t r = (v + half) % nc;
          doppler_at(txs[l], rxs[l], static_cast<int>(v), ds[l]) =
              Cd{re[r * width + l], im[r * width + l]};
        }
    });
  }
  }

  // Angle-FFTs.  The azimuth row is an 8-element lambda/2 ULA; spatial
  // frequency f = d*sin(theta)/lambda = sin(theta)/2 cycles/element.  The
  // zoom-FFT evaluates only the +-angle_span band on a fine grid (§III's
  // refinement); disabling zoom widens the band to +-90 deg at the same bin
  // count, emulating the plain angle-FFT.
  const double span = config_.cube.angle_span_rad();
  const double f_max =
      config_.enable_zoom_fft ? std::sin(span) / 2.0 : 0.5;
  const auto& az_row = array_.azimuth_row();
  const auto& el_row = array_.elevation_row();

  // Cube assembly: shape (or reshape) and zero the output tensor the
  // angle stage fills in place; same-shaped reuse keeps the storage.
  {
    MMHAND_SPAN("radar/cube_assembly");
    out->reset(n_chirp, n_range, n_az + n_el);
  }
  RadarCube& cube = *out;
  // One zoom angle-FFT pair per (v, d); each index owns the cube(v, d, *)
  // fiber.
  MMHAND_SPAN("radar/zoom_angle_fft");
  const std::int64_t n_cells =
      static_cast<std::int64_t>(n_chirp) * n_range;
  if (!vector_isa) {
    angle_fft_scalar(frame, doppler, f_max, out);
    return;
  }

  // Vector path: `width` (v, d) cells share the lane-batched Bluestein
  // plans — the dominant pre-SIMD cost (per-cell chirp factor and kernel
  // FFT recomputation) is amortized into the cached plans, and the two
  // convolution FFTs per cell run across lanes.
  const auto& kernels = simd::kernels();
  const std::size_t width = static_cast<std::size_t>(kernels.width);
  const std::size_t az_n = az_row.size();
  const dsp::CztPlan& az_plan =
      dsp::zoom_plan(az_n, -f_max, f_max, static_cast<std::size_t>(n_az));
  const dsp::CztPlan& el_plan =
      dsp::zoom_plan(2, -f_max, f_max, static_cast<std::size_t>(n_el));
  const std::int64_t groups =
      (n_cells + static_cast<std::int64_t>(width) - 1) /
      static_cast<std::int64_t>(width);
  parallel_for(0, groups, 1, [&](std::int64_t g) {
    const std::size_t na = static_cast<std::size_t>(n_az);
    const std::size_t ne = static_cast<std::size_t>(n_el);
    const std::size_t mag_n = std::max(na, ne) * width;
    double* sig_re = stage_scratch(2 * az_n * width + 2 * na * width +
                                   2 * 2 * width + 2 * ne * width + mag_n);
    double* sig_im = sig_re + az_n * width;
    double* out_re = sig_im + az_n * width;
    double* out_im = out_re + na * width;
    double* el_re = out_im + na * width;
    double* el_im = el_re + 2 * width;
    double* eo_re = el_im + 2 * width;
    double* eo_im = eo_re + ne * width;
    double* mag = eo_im + ne * width;
    const std::int64_t first = g * static_cast<std::int64_t>(width);
    const std::size_t lanes = static_cast<std::size_t>(
        std::min<std::int64_t>(static_cast<std::int64_t>(width),
                               n_cells - first));
    int vs[8], ds[8];
    for (std::size_t l = 0; l < width; ++l) {
      const std::int64_t cell =
          first + static_cast<std::int64_t>(std::min(l, lanes - 1));
      vs[l] = static_cast<int>(cell / n_range);
      ds[l] = static_cast<int>(cell % n_range);
      for (std::size_t i = 0; i < az_n; ++i) {
        const Cd s = doppler_at(az_row[i].first, az_row[i].second, vs[l],
                                ds[l]);
        sig_re[i * width + l] = s.real();
        sig_im[i * width + l] = s.imag();
      }
      Cd row0{};
      for (std::size_t i = 2; i < 6 && i < az_n; ++i)
        row0 += doppler_at(az_row[i].first, az_row[i].second, vs[l], ds[l]);
      row0 /= 4.0;
      Cd row1{};
      for (const auto& [tx, rx] : el_row)
        row1 += doppler_at(tx, rx, vs[l], ds[l]);
      row1 /= static_cast<double>(el_row.size());
      el_re[0 * width + l] = row0.real();
      el_im[0 * width + l] = row0.imag();
      el_re[1 * width + l] = row1.real();
      el_im[1 * width + l] = row1.imag();
    }
    az_plan.run_lanes(sig_re, sig_im, out_re, out_im);
    kernels.vmag(out_re, out_im, mag, na * width);
    for (std::size_t l = 0; l < lanes; ++l)
      for (int a = 0; a < n_az; ++a)
        cube.at(vs[l], ds[l], a) = static_cast<float>(std::log1p(
            mag[static_cast<std::size_t>(n_az - 1 - a) * width + l]));
    el_plan.run_lanes(el_re, el_im, eo_re, eo_im);
    kernels.vmag(eo_re, eo_im, mag, ne * width);
    for (std::size_t l = 0; l < lanes; ++l)
      for (int e = 0; e < n_el; ++e)
        cube.at(vs[l], ds[l], n_az + e) = static_cast<float>(std::log1p(
            mag[static_cast<std::size_t>(n_el - 1 - e) * width + l]));
  });
}

MMHAND_REALTIME
RadarCube RadarPipeline::process_frame(const IfFrame& frame) const {
  RadarCube cube;
  process_frame_into(frame, &cube);
  return cube;
}

}  // namespace mmhand::radar
