#include "mmhand/radar/if_simulator.hpp"

#include <cmath>
#include <numbers>

#include "mmhand/common/error.hpp"

namespace mmhand::radar {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}

IfFrame::IfFrame(int num_tx, int num_rx, int chirps, int samples)
    : num_tx_(num_tx),
      num_rx_(num_rx),
      chirps_(chirps),
      samples_(samples),
      data_(static_cast<std::size_t>(num_tx) * num_rx * chirps * samples) {
  MMHAND_CHECK(num_tx >= 1 && num_rx >= 1 && chirps >= 1 && samples >= 1,
               "IfFrame dims");
}

std::size_t IfFrame::index(int tx, int rx, int chirp, int sample) const {
  MMHAND_ASSERT(tx >= 0 && tx < num_tx_ && rx >= 0 && rx < num_rx_ &&
                chirp >= 0 && chirp < chirps_ && sample >= 0 &&
                sample < samples_);
  return ((static_cast<std::size_t>(tx) * num_rx_ + rx) * chirps_ + chirp) *
             samples_ +
         sample;
}

std::complex<double>& IfFrame::at(int tx, int rx, int chirp, int sample) {
  return data_[index(tx, rx, chirp, sample)];
}
const std::complex<double>& IfFrame::at(int tx, int rx, int chirp,
                                        int sample) const {
  return data_[index(tx, rx, chirp, sample)];
}

std::complex<double>* IfFrame::chirp_data(int tx, int rx, int chirp) {
  return &data_[index(tx, rx, chirp, 0)];
}
const std::complex<double>* IfFrame::chirp_data(int tx, int rx,
                                                int chirp) const {
  return &data_[index(tx, rx, chirp, 0)];
}

IfSimulator::IfSimulator(const ChirpConfig& config, const AntennaArray& array)
    : config_(config), array_(array) {
  config_.validate();
}

IfFrame IfSimulator::simulate_frame(const Scene& scene, double frame_time,
                                    Rng& rng) const {
  const int n_tx = config_.num_tx;
  const int n_rx = config_.num_rx;
  const int n_chirp = config_.chirps_per_frame;
  const int n_samp = config_.samples_per_chirp;
  IfFrame frame(n_tx, n_rx, n_chirp, n_samp);

  const double slope = config_.slope_hz_per_s();
  const double f0 = config_.start_freq_hz;
  const double dt = 1.0 / config_.sample_rate_hz();
  const double tc = config_.chirp_duration_s;

  for (const Scatterer& s : scene) {
    const double amp = s.observed_amplitude();
    if (amp <= 0.0) continue;
    for (int chirp = 0; chirp < n_chirp; ++chirp) {
      for (int tx = 0; tx < n_tx; ++tx) {
        // TDM: within one chirp loop the TX antennas fire in sequence.
        const double chirp_time =
            frame_time +
            (static_cast<double>(chirp) * n_tx + tx) * tc;
        const Vec3 pos = s.position + s.velocity * chirp_time;
        const double d_tx = distance(pos, array_.tx_position(tx));
        for (int rx = 0; rx < n_rx; ++rx) {
          const double d_rx = distance(pos, array_.rx_position(rx));
          const double tau = (d_tx + d_rx) / kSpeedOfLight;
          // Per-sample phase advances linearly: phi(m) = 2*pi*(f0*tau +
          // S*tau*m*dt).  Use an incremental complex rotation so each
          // sample costs one complex multiply.
          const double phi0 = kTwoPi * f0 * tau;
          const double dphi = kTwoPi * slope * tau * dt;
          std::complex<double> phasor = std::polar(amp, phi0);
          const std::complex<double> rot = std::polar(1.0, dphi);
          std::complex<double>* out = frame.chirp_data(tx, rx, chirp);
          for (int m = 0; m < n_samp; ++m) {
            out[m] += phasor;
            phasor *= rot;
          }
        }
      }
    }
  }

  if (config_.noise_stddev > 0.0) {
    const double sigma = config_.noise_stddev;
    for (int tx = 0; tx < n_tx; ++tx)
      for (int rx = 0; rx < n_rx; ++rx)
        for (int chirp = 0; chirp < n_chirp; ++chirp) {
          std::complex<double>* out = frame.chirp_data(tx, rx, chirp);
          for (int m = 0; m < n_samp; ++m)
            out[m] += std::complex<double>{rng.normal(0.0, sigma),
                                           rng.normal(0.0, sigma)};
        }
  }
  return frame;
}

}  // namespace mmhand::radar
