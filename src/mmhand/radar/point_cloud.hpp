#pragma once

// Radar point-cloud extraction: turns a Radar Cube into sparse 3-D points
// with intensity and radial velocity — the representation classic mmWave
// perception stacks (RadHAR-style) operate on.  Used as an interpretable
// diagnostic view of the cube and by the point-cloud centroid tracker.

#include <vector>

#include "mmhand/common/vec3.hpp"
#include "mmhand/radar/pipeline.hpp"

namespace mmhand::radar {

struct RadarPoint {
  Vec3 position;            ///< meters, radar frame
  double velocity = 0.0;    ///< radial velocity, m/s
  double intensity = 0.0;   ///< cube magnitude (log domain)
};

struct PointCloudConfig {
  /// Keep cells whose magnitude exceeds mean + k * stddev of the cube.
  double sigma_threshold = 2.5;
  std::size_t max_points = 256;
};

/// Extracts the strongest cells of a cube as 3-D points.  Azimuth comes
/// from the azimuth section of the angle axis; elevation from the
/// magnitude-weighted centroid of the elevation section at the same
/// range-Doppler cell.
std::vector<RadarPoint> extract_point_cloud(
    const RadarCube& cube, const RadarPipeline& pipeline,
    const PointCloudConfig& config = {});

/// Intensity-weighted centroid of a point cloud (the classic "where is the
/// target" estimate); zero vector for an empty cloud.
Vec3 point_cloud_centroid(const std::vector<RadarPoint>& points);

}  // namespace mmhand::radar
