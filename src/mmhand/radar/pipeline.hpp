#pragma once

// Signal pre-processing pipeline (§III): bandpass filtering, range-FFT,
// Doppler-FFT with TDM phase compensation, and zoom angle-FFTs producing
// the Radar Cube.

#include <complex>
#include <vector>

#include "mmhand/dsp/butterworth.hpp"
#include "mmhand/dsp/window.hpp"
#include "mmhand/radar/antenna_array.hpp"
#include "mmhand/radar/chirp_config.hpp"
#include "mmhand/radar/if_simulator.hpp"
#include "mmhand/radar/radar_cube.hpp"

namespace mmhand::radar {

struct PipelineConfig {
  CubeConfig cube;
  /// Hand range band preserved by the Butterworth bandpass (meters).
  double band_lo_m = 0.08;
  double band_hi_m = 0.90;
  /// Butterworth order; the paper uses an 8th-order filter.
  int butterworth_order = 8;
  bool enable_bandpass = true;
  bool enable_zoom_fft = true;  ///< ablation switch (DESIGN.md)
  dsp::WindowType range_window = dsp::WindowType::kHann;
  dsp::WindowType doppler_window = dsp::WindowType::kHann;
};

/// Turns raw IF frames into Radar Cubes.
class RadarPipeline {
 public:
  RadarPipeline(const ChirpConfig& chirp, const AntennaArray& array,
                const PipelineConfig& config);

  /// Full pre-processing of one frame.
  RadarCube process_frame(const IfFrame& frame) const;

  /// Steady-state variant: assembles the cube into `*out`, reusing its
  /// storage when the shape is unchanged, and staging every
  /// intermediate in grow-on-demand per-thread scratch.  On vector ISAs
  /// a warmed-up call performs zero heap allocations
  /// (scripts/check_purity.sh asserts this at runtime; `mmhand_lint
  /// --purity` proves it statically from the MMHAND_REALTIME root).
  void process_frame_into(const IfFrame& frame, RadarCube* out) const;

  /// Range represented by range bin d (meters).
  double range_for_bin(int d) const;
  /// Azimuth angle of azimuth bin a (radians); bins ordered left to right.
  double azimuth_for_bin(int a) const;
  /// Elevation angle of elevation bin e (radians).
  double elevation_for_bin(int e) const;
  /// Radial velocity of Doppler bin v (m/s, after fftshift).
  double velocity_for_bin(int v) const;

  const PipelineConfig& config() const { return config_; }
  const ChirpConfig& chirp() const { return chirp_; }

 private:
  /// Range profiles for every (tx, rx, chirp): bandpass + window + FFT,
  /// cropped to the configured range bins.  `filtered` stages the
  /// bandpass batch (num_virtual * samples values, untouched when the
  /// bandpass is disabled); `profiles` receives num_virtual * range_bins
  /// values.
  void range_profiles_into(const IfFrame& frame,
                           std::complex<double>* filtered,
                           std::complex<double>* profiles) const;

  /// Scalar-ISA reference stages, split out so their per-item
  /// allocations (dsp::fft and friends return vectors) stay audited
  /// cold paths instead of leaking into the hot-path purity closure.
  /// Op order matches the pre-SIMD pipeline bit-for-bit.
  void range_fft_scalar(const IfFrame& frame,
                        const std::complex<double>* filtered,
                        std::complex<double>* profiles) const;
  void doppler_fft_scalar(const IfFrame& frame,
                          const std::complex<double>* profiles,
                          std::complex<double>* doppler) const;
  void angle_fft_scalar(const IfFrame& frame,
                        const std::complex<double>* doppler, double f_max,
                        RadarCube* cube) const;

  ChirpConfig chirp_;
  const AntennaArray& array_;
  PipelineConfig config_;
  dsp::SosFilter bandpass_;
  std::vector<double> range_window_;
  std::vector<double> doppler_window_;
};

}  // namespace mmhand::radar
