#pragma once

// TDM-MIMO antenna geometry (§III).
//
// Models the IWR1443 layout: 4 RX antennas spaced lambda/2 along azimuth;
// TX1 and TX3 spaced 2*lambda apart in azimuth, TX2 raised by lambda/2 in
// elevation.  Activating the 3 TX in sequence against the always-on 4 RX
// forms a virtual array with an 8-element azimuth row and a 4-element
// elevation-offset row, which the pipeline uses to measure azimuth and
// elevation simultaneously.

#include <vector>

#include "mmhand/common/vec3.hpp"
#include "mmhand/radar/chirp_config.hpp"

namespace mmhand::radar {

/// Radar coordinate frame: the radar sits at the origin and boresight is
/// +y; +x is azimuth (to the radar's right), +z is elevation (up).
class AntennaArray {
 public:
  explicit AntennaArray(const ChirpConfig& config);

  /// Physical TX antenna position (meters).
  const Vec3& tx_position(int tx) const;
  /// Physical RX antenna position (meters).
  const Vec3& rx_position(int rx) const;

  int num_tx() const { return static_cast<int>(tx_.size()); }
  int num_rx() const { return static_cast<int>(rx_.size()); }
  int num_virtual() const { return num_tx() * num_rx(); }

  /// Virtual element position: tx_position + rx_position.
  Vec3 virtual_position(int tx, int rx) const;

  /// Indices (tx, rx) of the virtual elements forming the 8-element
  /// azimuth row (elevation offset zero), ordered by increasing x.
  const std::vector<std::pair<int, int>>& azimuth_row() const {
    return azimuth_row_;
  }
  /// Indices of the elevation-offset row (TX2's virtual elements).
  const std::vector<std::pair<int, int>>& elevation_row() const {
    return elevation_row_;
  }

  /// Element spacing of the azimuth row in meters (lambda/2).
  double azimuth_spacing_m() const { return spacing_; }
  /// Vertical offset between the two rows in meters (lambda/2).
  double elevation_offset_m() const { return spacing_; }

 private:
  std::vector<Vec3> tx_;
  std::vector<Vec3> rx_;
  std::vector<std::pair<int, int>> azimuth_row_;
  std::vector<std::pair<int, int>> elevation_row_;
  double spacing_ = 0.0;
};

}  // namespace mmhand::radar
