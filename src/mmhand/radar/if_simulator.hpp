#pragma once

// FMCW IF signal synthesis — the substitute for the IWR1443 + DCA1000
// capture chain (DESIGN.md §2).
//
// For each scatterer, TX antenna, RX antenna and chirp, the round-trip
// delay tau = (|p - p_tx| + |p - p_rx|) / c produces an IF tone (Eq.(1)):
//   x_IF(t) = A * exp(j*2*pi*(f0*tau + S*tau*t)),
// with S the chirp slope.  Scatterer motion between chirps makes tau vary
// across the chirp train, which is exactly where Doppler information comes
// from; different RX positions change tau by fractions of a wavelength,
// which is where angle information comes from.  No approximation separates
// the three effects — the downstream FFT pipeline recovers them just as it
// would from real hardware.

#include <complex>
#include <vector>

#include "mmhand/common/rng.hpp"
#include "mmhand/radar/antenna_array.hpp"
#include "mmhand/radar/chirp_config.hpp"
#include "mmhand/radar/scatterer.hpp"

namespace mmhand::radar {

/// Raw IF samples of one frame, indexed [tx][rx][chirp][sample].
class IfFrame {
 public:
  IfFrame(int num_tx, int num_rx, int chirps, int samples);

  std::complex<double>& at(int tx, int rx, int chirp, int sample);
  const std::complex<double>& at(int tx, int rx, int chirp,
                                 int sample) const;

  /// Contiguous samples of one chirp.
  std::complex<double>* chirp_data(int tx, int rx, int chirp);
  const std::complex<double>* chirp_data(int tx, int rx, int chirp) const;

  int num_tx() const { return num_tx_; }
  int num_rx() const { return num_rx_; }
  int chirps() const { return chirps_; }
  int samples() const { return samples_; }

 private:
  std::size_t index(int tx, int rx, int chirp, int sample) const;

  int num_tx_, num_rx_, chirps_, samples_;
  std::vector<std::complex<double>> data_;
};

/// Synthesizes IF frames from point-scatterer scenes.
class IfSimulator {
 public:
  IfSimulator(const ChirpConfig& config, const AntennaArray& array);

  /// Simulates one frame starting at `frame_time` seconds.  Scatterer
  /// positions are advanced by their velocity to each chirp's timestamp.
  /// Thermal noise with the configured stddev is added per sample.
  IfFrame simulate_frame(const Scene& scene, double frame_time,
                         Rng& rng) const;

  const ChirpConfig& config() const { return config_; }

 private:
  ChirpConfig config_;
  const AntennaArray& array_;
};

}  // namespace mmhand::radar
