#include "mmhand/radar/antenna_array.hpp"

#include <algorithm>

#include "mmhand/common/error.hpp"

namespace mmhand::radar {

AntennaArray::AntennaArray(const ChirpConfig& config) {
  MMHAND_CHECK(config.num_tx == 3 && config.num_rx == 4,
               "AntennaArray models the IWR1443 3TX/4RX layout; got "
                   << config.num_tx << "TX/" << config.num_rx << "RX");
  const double lambda = config.wavelength_m();
  spacing_ = lambda / 2.0;

  // RX: 4 elements along azimuth at lambda/2 spacing.
  rx_.reserve(4);
  for (int i = 0; i < 4; ++i)
    rx_.push_back(Vec3{static_cast<double>(i) * spacing_, 0.0, 0.0});

  // TX: TX0 at origin, TX1 raised by lambda/2 and shifted lambda in
  // azimuth, TX2 at 2*lambda azimuth.  TX0+TX2 against the RX row create an
  // 8-element azimuth ULA; TX1 creates the elevation-offset row.
  tx_ = {Vec3{0.0, 0.0, 0.0}, Vec3{2.0 * spacing_, 0.0, spacing_},
         Vec3{4.0 * spacing_, 0.0, 0.0}};

  for (int tx : {0, 2})
    for (int rx = 0; rx < 4; ++rx) azimuth_row_.push_back({tx, rx});
  std::sort(azimuth_row_.begin(), azimuth_row_.end(),
            [this](const auto& a, const auto& b) {
              return virtual_position(a.first, a.second).x <
                     virtual_position(b.first, b.second).x;
            });
  for (int rx = 0; rx < 4; ++rx) elevation_row_.push_back({1, rx});
}

const Vec3& AntennaArray::tx_position(int tx) const {
  MMHAND_CHECK(tx >= 0 && tx < num_tx(), "tx index " << tx);
  return tx_[static_cast<std::size_t>(tx)];
}

const Vec3& AntennaArray::rx_position(int rx) const {
  MMHAND_CHECK(rx >= 0 && rx < num_rx(), "rx index " << rx);
  return rx_[static_cast<std::size_t>(rx)];
}

Vec3 AntennaArray::virtual_position(int tx, int rx) const {
  return tx_position(tx) + rx_position(rx);
}

}  // namespace mmhand::radar
