#pragma once

// The Radar Cube (§III): per-frame tensor of Doppler x Range x Angle
// magnitudes assembled from the Range-, Doppler-, Azimuth- and
// Elevation-Spectrums.  The azimuth and elevation spectra are concatenated
// along the angle axis, so one frame is a V x D x (A_az + A_el) tensor.

#include <vector>

#include "mmhand/common/error.hpp"

namespace mmhand::radar {

class RadarCube {
 public:
  RadarCube() = default;
  RadarCube(int velocity_bins, int range_bins, int angle_bins);

  /// Reshapes to the given dims and zero-fills, reusing the existing
  /// storage when the element count is unchanged.  Grow-only in
  /// practice: re-processing same-shaped frames into one cube performs
  /// no allocation after the first call (audited in
  /// scripts/purity_allowlist.json).
  void reset(int velocity_bins, int range_bins, int angle_bins);

  float& at(int v, int d, int a);
  float at(int v, int d, int a) const;

  int velocity_bins() const { return v_; }
  int range_bins() const { return d_; }
  int angle_bins() const { return a_; }
  std::size_t size() const { return data_.size(); }

  const std::vector<float>& data() const { return data_; }
  std::vector<float>& data() { return data_; }

  /// Largest cell magnitude (useful for normalization and tests).
  float max_value() const;

 private:
  int v_ = 0, d_ = 0, a_ = 0;
  std::vector<float> data_;
};

}  // namespace mmhand::radar
