#include "mmhand/radar/point_cloud.hpp"

#include <algorithm>
#include <cmath>

#include "mmhand/common/error.hpp"

namespace mmhand::radar {

std::vector<RadarPoint> extract_point_cloud(const RadarCube& cube,
                                            const RadarPipeline& pipeline,
                                            const PointCloudConfig& config) {
  MMHAND_CHECK(config.max_points >= 1, "point cloud budget");
  const int n_az = pipeline.config().cube.azimuth_bins;
  const int n_el = pipeline.config().cube.elevation_bins;
  MMHAND_CHECK(cube.angle_bins() == n_az + n_el,
               "cube does not match the pipeline's angle layout");

  // Threshold from the cube's global statistics.
  double mean = 0.0;
  for (float v : cube.data()) mean += v;
  mean /= static_cast<double>(cube.size());
  double var = 0.0;
  for (float v : cube.data()) var += (v - mean) * (v - mean);
  var /= static_cast<double>(cube.size());
  const double threshold = mean + config.sigma_threshold * std::sqrt(var);

  std::vector<RadarPoint> points;
  for (int v = 0; v < cube.velocity_bins(); ++v)
    for (int d = 0; d < cube.range_bins(); ++d)
      for (int a = 0; a < n_az; ++a) {
        const double mag = cube.at(v, d, a);
        if (mag <= threshold) continue;
        // Elevation from the magnitude-weighted centroid of the elevation
        // section at this range-Doppler cell.
        double num = 0.0, den = 0.0;
        for (int e = 0; e < n_el; ++e) {
          const double m = cube.at(v, d, n_az + e);
          num += m * pipeline.elevation_for_bin(e);
          den += m;
        }
        const double elevation = den > 1e-12 ? num / den : 0.0;
        const double range = pipeline.range_for_bin(d);
        const double azimuth = pipeline.azimuth_for_bin(a);

        RadarPoint p;
        p.position = Vec3{range * std::cos(elevation) * std::sin(azimuth),
                          range * std::cos(elevation) * std::cos(azimuth),
                          range * std::sin(elevation)};
        p.velocity = pipeline.velocity_for_bin(v);
        p.intensity = mag;
        points.push_back(p);
      }

  std::sort(points.begin(), points.end(),
            [](const RadarPoint& a, const RadarPoint& b) {
              return a.intensity > b.intensity;
            });
  if (points.size() > config.max_points) points.resize(config.max_points);
  return points;
}

Vec3 point_cloud_centroid(const std::vector<RadarPoint>& points) {
  if (points.empty()) return Vec3{};
  Vec3 acc;
  double total = 0.0;
  for (const auto& p : points) {
    acc += p.position * p.intensity;
    total += p.intensity;
  }
  return total > 1e-12 ? acc / total : Vec3{};
}

}  // namespace mmhand::radar
