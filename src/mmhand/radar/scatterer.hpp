#pragma once

// Point-scatterer scene description consumed by the IF simulator.
//
// A real hand reflects mmWave energy from many small surface patches; the
// simulator approximates the hand (and clutter such as the body or
// furniture) as a set of point scatterers with individual reflectivities
// and velocities.  This is the standard point-target model that underlies
// Eq.(1) of the paper.

#include <vector>

#include "mmhand/common/vec3.hpp"

namespace mmhand::radar {

struct Scatterer {
  Vec3 position;        ///< meters, radar at origin, boresight +y
  Vec3 velocity;        ///< meters/second
  double amplitude = 1.0;  ///< reflected amplitude at reference range

  /// Amplitude observed at the radar after two-way propagation loss,
  /// relative to a 30 cm reference range.  FMCW power falls with R^4, so
  /// amplitude falls with R^2.
  double observed_amplitude() const {
    constexpr double kRef = 0.30;
    const double r = position.norm();
    if (r < 1e-3) return amplitude;
    const double ratio = kRef / r;
    return amplitude * ratio * ratio;
  }
};

using Scene = std::vector<Scatterer>;

}  // namespace mmhand::radar
