#include "mmhand/radar/radar_cube.hpp"

#include <algorithm>

namespace mmhand::radar {

RadarCube::RadarCube(int velocity_bins, int range_bins, int angle_bins)
    : v_(velocity_bins),
      d_(range_bins),
      a_(angle_bins),
      data_(static_cast<std::size_t>(velocity_bins) * range_bins *
            angle_bins) {
  MMHAND_CHECK(velocity_bins >= 1 && range_bins >= 1 && angle_bins >= 1,
               "RadarCube dims " << velocity_bins << "x" << range_bins << "x"
                                 << angle_bins);
}

void RadarCube::reset(int velocity_bins, int range_bins, int angle_bins) {
  MMHAND_CHECK(velocity_bins >= 1 && range_bins >= 1 && angle_bins >= 1,
               "RadarCube dims " << velocity_bins << "x" << range_bins << "x"
                                 << angle_bins);
  v_ = velocity_bins;
  d_ = range_bins;
  a_ = angle_bins;
  const std::size_t n =
      static_cast<std::size_t>(v_) * static_cast<std::size_t>(d_) *
      static_cast<std::size_t>(a_);
  if (data_.size() != n) data_.resize(n);
  std::fill(data_.begin(), data_.end(), 0.0f);
}

float& RadarCube::at(int v, int d, int a) {
  MMHAND_ASSERT(v >= 0 && v < v_ && d >= 0 && d < d_ && a >= 0 && a < a_);
  return data_[(static_cast<std::size_t>(v) * d_ + d) * a_ + a];
}

float RadarCube::at(int v, int d, int a) const {
  MMHAND_ASSERT(v >= 0 && v < v_ && d >= 0 && d < d_ && a >= 0 && a < a_);
  return data_[(static_cast<std::size_t>(v) * d_ + d) * a_ + a];
}

float RadarCube::max_value() const {
  if (data_.empty()) return 0.0f;
  return *std::max_element(data_.begin(), data_.end());
}

}  // namespace mmhand::radar
