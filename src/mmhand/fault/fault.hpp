#pragma once

// Seeded, env-driven fault injection (MMHAND_FAULT=<spec>).
//
// The production failure modes this reproduction must survive — DCA1000
// UDP packet loss, saturated ADC frames, NaN bursts, torn writes on a
// dying box — are rare by nature, so the recovery paths would otherwise
// ship untested.  This module turns each of them into a deterministic,
// seedable event stream that the input layer (sim/dataset) and the IO
// layer (common/io_safe) consult at their fault points.
//
// Spec grammar (comma-separated key=value pairs):
//
//   MMHAND_FAULT="drop_frame=0.05,nan_burst=0.02,seed=42"
//
// Keys are the kind names below plus `seed`; values are Bernoulli rates
// in [0, 1] (seed: any u64).  Unknown keys and malformed values throw
// mmhand::Error at first use, so typos fail loudly.
//
// Cost model mirrors the obs layer: when MMHAND_FAULT is unset,
// `enabled()` is one relaxed atomic load and every fault point is a
// single branch — outputs are bitwise identical to a build without the
// module (enforced by tests/test_fault.cpp).
//
// Determinism: each kind owns an event counter; event n of kind k fires
// iff splitmix64(seed ^ k ^ n) maps below the kind's rate.  Injection
// sites that consume faults in a fixed order therefore see the same
// fault pattern on every run with the same seed, independent of thread
// count.
//
// This module sits below `common` in the link order and depends on
// nothing but the header-only error machinery.

#include <cstdint>
#include <string>

#include "mmhand/common/error.hpp"

namespace mmhand::fault {

enum class Kind {
  kDropFrame = 0,  ///< input: an entire radar cube frame lost (all zeros)
  kGap,            ///< input: packet-loss gap — a run of dropped frames
  kSaturate,       ///< input: ADC rail saturation (flat-topped frame)
  kNanBurst,       ///< input: a burst of non-finite cells in a frame
  kShortWrite,     ///< io: durable write truncated partway through
  kFsyncFail,      ///< io: fsync reports failure before the rename
  kBitFlip,        ///< io: one bit flipped in a payload on read
  kChurn,          ///< serve: a client leaves and rejoins mid-stream
  kBurst,          ///< serve: a client floods extra frames at once
  kStall,          ///< serve: a client goes silent for a run of ticks
};
inline constexpr int kNumKinds = 10;

/// Parsed fault specification: per-kind Bernoulli rates plus the stream
/// seed.
struct Spec {
  double rate[kNumKinds] = {};
  std::uint64_t seed = 0xFA17;
};

/// Stable spec-grammar name of a kind ("drop_frame", "bit_flip", ...).
const char* kind_name(Kind kind);

/// Parses the MMHAND_FAULT grammar; throws mmhand::Error on unknown
/// keys, malformed values, or rates outside [0, 1].
Spec parse_spec(const std::string& text);

/// True when fault injection is active.  One relaxed atomic load when
/// off; the first call resolves MMHAND_FAULT exactly once per process.
bool enabled();

/// Runtime override for tests: installs (and enables) a spec parsed
/// from `text`, or disables injection entirely when `text` is empty.
/// Resets all event and injection counters.
void set_spec(const std::string& text);

/// Configured rate for a kind (0 when disabled).
double rate(Kind kind);

/// Advances kind's event counter and reports whether this event is
/// faulted.  Deterministic in (seed, kind, event index).
bool should_inject(Kind kind);

/// Deterministic parameter stream for a kind (gap lengths, bit
/// positions, ...).  Advances an independent per-kind draw counter.
std::uint64_t draw_u64(Kind kind);

/// Number of faults injected so far for a kind (process lifetime, or
/// since the last set_spec / reset_counts).
std::uint64_t injected_count(Kind kind);

/// Zeroes every event and injection counter (test isolation).
void reset_counts();

}  // namespace mmhand::fault
