#include "mmhand/fault/fault.hpp"

#include <array>
#include <atomic>
#include <cstdlib>
#include <mutex>

namespace mmhand::fault {

namespace {

/// splitmix64: a tiny, stateless mixer with full-period 64-bit output.
/// Used instead of mmhand::Rng so the fault streams are independent of
/// every simulation stream — injecting a fault must never shift the
/// random numbers the pipeline itself consumes.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

struct State {
  std::mutex mu;
  Spec spec;  // guarded by mu (written once at init or via set_spec)
  std::array<std::atomic<std::uint64_t>, kNumKinds> events{};
  std::array<std::atomic<std::uint64_t>, kNumKinds> draws{};
  std::array<std::atomic<std::uint64_t>, kNumKinds> injected{};
};

State& state() {
  static State s;
  return s;
}

/// -1 until MMHAND_FAULT has been consulted, then 0 (off) or 1 (on).
std::atomic<int>& enabled_atomic() {
  static std::atomic<int> e{-1};
  return e;
}

int init_enabled() {
  static std::once_flag once;
  std::call_once(once, [] {
    int on = 0;
    if (const char* spec = std::getenv("MMHAND_FAULT");
        spec != nullptr && *spec != '\0') {
      const Spec parsed = parse_spec(spec);  // throws on a malformed spec
      std::lock_guard<std::mutex> lk(state().mu);
      state().spec = parsed;
      on = 1;
    }
    enabled_atomic().store(on, std::memory_order_relaxed);
  });
  return enabled_atomic().load(std::memory_order_relaxed);
}

/// Per-kind domain separation so the event streams of two kinds with
/// equal rates never correlate.
std::uint64_t kind_salt(Kind kind) {
  return 0xFA11ull + (static_cast<std::uint64_t>(kind) << 56);
}

}  // namespace

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::kDropFrame:
      return "drop_frame";
    case Kind::kGap:
      return "gap";
    case Kind::kSaturate:
      return "saturate";
    case Kind::kNanBurst:
      return "nan_burst";
    case Kind::kShortWrite:
      return "short_write";
    case Kind::kFsyncFail:
      return "fsync_fail";
    case Kind::kBitFlip:
      return "bit_flip";
    case Kind::kChurn:
      return "churn";
    case Kind::kBurst:
      return "burst";
    case Kind::kStall:
      return "stall";
  }
  return "?";
}

Spec parse_spec(const std::string& text) {
  Spec spec;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(',', pos);
    if (end == std::string::npos) end = text.size();
    const std::string pair = text.substr(pos, end - pos);
    pos = end + 1;
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    MMHAND_CHECK(eq != std::string::npos && eq > 0 && eq + 1 < pair.size(),
                 "MMHAND_FAULT entry '" << pair << "' is not key=value");
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    std::size_t consumed = 0;
    if (key == "seed") {
      std::uint64_t seed = 0;
      try {
        seed = std::stoull(value, &consumed, 0);
      } catch (const std::exception&) {
        consumed = 0;
      }
      MMHAND_CHECK(consumed == value.size(),
                   "MMHAND_FAULT seed '" << value << "' is not an integer");
      spec.seed = seed;
      continue;
    }
    int kind = -1;
    for (int k = 0; k < kNumKinds; ++k)
      if (key == kind_name(static_cast<Kind>(k))) kind = k;
    MMHAND_CHECK(kind >= 0, "MMHAND_FAULT key '"
                                << key
                                << "' is not a fault kind (drop_frame, gap,"
                                   " saturate, nan_burst, short_write,"
                                   " fsync_fail, bit_flip, churn, burst,"
                                   " stall) or 'seed'");
    double rate = -1.0;
    try {
      rate = std::stod(value, &consumed);
    } catch (const std::exception&) {
      consumed = 0;
    }
    MMHAND_CHECK(consumed == value.size() && rate >= 0.0 && rate <= 1.0,
                 "MMHAND_FAULT rate '" << value << "' for " << key
                                       << " must be in [0, 1]");
    spec.rate[kind] = rate;
  }
  return spec;
}

bool enabled() {
  int e = enabled_atomic().load(std::memory_order_relaxed);
  if (e < 0) e = init_enabled();
  return e != 0;
}

void set_spec(const std::string& text) {
  (void)enabled();  // resolve the environment first so init cannot race
  if (text.empty()) {
    enabled_atomic().store(0, std::memory_order_relaxed);
  } else {
    const Spec parsed = parse_spec(text);
    std::lock_guard<std::mutex> lk(state().mu);
    state().spec = parsed;
    enabled_atomic().store(1, std::memory_order_relaxed);
  }
  reset_counts();
}

double rate(Kind kind) {
  if (!enabled()) return 0.0;
  std::lock_guard<std::mutex> lk(state().mu);
  return state().spec.rate[static_cast<int>(kind)];
}

bool should_inject(Kind kind) {
  if (!enabled()) return false;
  State& s = state();
  const int k = static_cast<int>(kind);
  double r;
  std::uint64_t seed;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    r = s.spec.rate[k];
    seed = s.spec.seed;
  }
  const std::uint64_t n = s.events[static_cast<std::size_t>(k)].fetch_add(
      1, std::memory_order_relaxed);
  if (r <= 0.0) return false;
  // Top 53 bits -> uniform double in [0, 1).
  const double u = static_cast<double>(mix64(seed ^ kind_salt(kind) ^ n) >>
                                       11) *
                   0x1.0p-53;
  if (u >= r) return false;
  s.injected[static_cast<std::size_t>(k)].fetch_add(
      1, std::memory_order_relaxed);
  return true;
}

std::uint64_t draw_u64(Kind kind) {
  State& s = state();
  const int k = static_cast<int>(kind);
  std::uint64_t seed;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    seed = s.spec.seed;
  }
  const std::uint64_t n = s.draws[static_cast<std::size_t>(k)].fetch_add(
      1, std::memory_order_relaxed);
  return mix64(seed ^ ~kind_salt(kind) ^ n);
}

std::uint64_t injected_count(Kind kind) {
  return state()
      .injected[static_cast<std::size_t>(static_cast<int>(kind))]
      .load(std::memory_order_relaxed);
}

void reset_counts() {
  State& s = state();
  for (int k = 0; k < kNumKinds; ++k) {
    s.events[static_cast<std::size_t>(k)].store(0, std::memory_order_relaxed);
    s.draws[static_cast<std::size_t>(k)].store(0, std::memory_order_relaxed);
    s.injected[static_cast<std::size_t>(k)].store(0,
                                                  std::memory_order_relaxed);
  }
}

}  // namespace mmhand::fault
