#include "mmhand/eval/table_printer.hpp"

#include <cstdio>

namespace mmhand::eval {

void print_header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

void print_metric(const std::string& label, double value,
                  const std::string& unit) {
  std::printf("%-40s %8.2f %s\n", label.c_str(), value, unit.c_str());
}

std::string fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

void print_table(const std::vector<std::vector<std::string>>& rows,
                 bool header) {
  if (rows.empty()) return;
  std::vector<std::size_t> widths;
  for (const auto& row : rows) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
    std::printf("\n");
  };
  print_row(rows[0]);
  if (header) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      for (std::size_t i = 0; i < widths[c]; ++i) std::printf("-");
      std::printf("  ");
    }
    std::printf("\n");
  }
  for (std::size_t r = 1; r < rows.size(); ++r) print_row(rows[r]);
}

}  // namespace mmhand::eval
