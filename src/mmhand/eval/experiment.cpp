#include "mmhand/eval/experiment.hpp"

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "mmhand/common/io_safe.hpp"
#include "mmhand/obs/metrics.hpp"
#include "mmhand/obs/log.hpp"
#include "mmhand/obs/runlog.hpp"

namespace mmhand::eval {

namespace {

/// FNV-1a over a byte view; good enough for cache keys.
std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

template <typename T>
std::uint64_t mix(std::uint64_t h, const T& v) {
  return fnv1a(h, &v, sizeof(v));
}

/// Bumps one of the `eval/model_cache.{hits,misses,stores}` counters so
/// cache behavior shows up in metrics snapshots.
void note_model_cache(const char* which) {
  if (!obs::metrics_enabled()) return;
  obs::counter(std::string("eval/model_cache.") + which).add(1);
}

}  // namespace

void append_eval_run_record(const EvalAccumulator& acc, const char* label,
                            int user) {
  if (!obs::runlog_enabled() || acc.empty()) return;
  obs::RunRecord rec("eval");
  rec.field("label", label)
      .field("user", user)
      .field("frames", acc.frames())
      .field("mpjpe_mm", acc.mpjpe_mm())
      .field("mpjpe_palm_mm", acc.mpjpe_mm(JointSubset::kPalm))
      .field("mpjpe_fingers_mm", acc.mpjpe_mm(JointSubset::kFingers));
  std::ostringstream pck;
  pck << '{';
  bool first = true;
  for (const double thr : {20.0, 30.0, 40.0, 50.0, 60.0}) {
    pck << (first ? "" : ", ") << "\"" << static_cast<int>(thr)
        << "\": " << obs::detail::json_number(acc.pck(thr));
    first = false;
  }
  pck << '}';
  rec.raw("pck", pck.str());
  std::ostringstream joints;
  joints << '[';
  const auto per_joint = acc.per_joint_mpjpe_mm();
  for (std::size_t j = 0; j < per_joint.size(); ++j)
    joints << (j ? ", " : "") << obs::detail::json_number(per_joint[j]);
  joints << ']';
  rec.raw("per_joint_mpjpe_mm", joints.str());
  obs::append_run_record(rec);
}

ProtocolConfig ProtocolConfig::standard() {
  ProtocolConfig c;
  // Radar: the paper's chirp with a CPU-sized chirp train (DESIGN.md §2).
  c.chirp.chirps_per_frame = 16;
  c.chirp.frame_period_s = 0.02;
  // The paper's 64-loop chirp train has 4x our coherent processing gain;
  // compensate the reduced loop count with a matching noise figure.
  c.chirp.noise_stddev = 0.008;
  // Cube: 24 range bins (~90 cm) x 16 azimuth + 8 elevation zoom bins.
  c.pipeline.cube.range_bins = 24;
  c.pipeline.cube.azimuth_bins = 16;
  c.pipeline.cube.elevation_bins = 8;
  // Network geometry mirrors the cube.
  c.posenet.velocity_bins = c.chirp.chirps_per_frame;
  c.posenet.range_bins = c.pipeline.cube.range_bins;
  c.posenet.angle_bins = c.pipeline.cube.total_angle_bins();
  c.train.epochs = 30;
  c.train.batch_size = 4;
  c.train_duration_s = 20.0;
  return c;
}

ProtocolConfig ProtocolConfig::fast() {
  ProtocolConfig c;
  c.chirp.chirps_per_frame = 8;
  c.chirp.samples_per_chirp = 32;
  c.chirp.frame_period_s = 0.05;
  c.pipeline.cube.range_bins = 16;
  c.pipeline.cube.azimuth_bins = 12;
  c.pipeline.cube.elevation_bins = 4;
  c.posenet.velocity_bins = 8;
  c.posenet.range_bins = 16;
  c.posenet.angle_bins = 16;
  c.posenet.segment_frames = 2;
  c.posenet.sequence_segments = 2;
  c.posenet.feature_dim = 48;
  c.posenet.lstm_hidden = 32;
  c.posenet.spacenet.stem_channels = 6;
  c.posenet.spacenet.block1_channels = 8;
  c.posenet.spacenet.block2_channels = 10;
  c.num_users = 4;
  c.folds = 2;
  c.train_duration_s = 4.0;
  c.test_duration_s = 2.0;
  c.train_stride = 4;
  c.train.epochs = 4;
  return c;
}

std::uint64_t ProtocolConfig::fingerprint() const {
  std::uint64_t h = 1469598103934665603ull;
  h = mix(h, chirp.chirps_per_frame);
  h = mix(h, chirp.samples_per_chirp);
  h = mix(h, chirp.frame_period_s);
  h = mix(h, chirp.noise_stddev);
  h = mix(h, pipeline.cube.range_bins);
  h = mix(h, pipeline.cube.azimuth_bins);
  h = mix(h, pipeline.cube.elevation_bins);
  h = mix(h, pipeline.enable_bandpass);
  h = mix(h, pipeline.enable_zoom_fft);
  h = mix(h, posenet.segment_frames);
  h = mix(h, posenet.sequence_segments);
  h = mix(h, posenet.feature_dim);
  h = mix(h, posenet.lstm_hidden);
  h = mix(h, posenet.temporal);
  h = mix(h, posenet.noise_floor_scale);
  h = mix(h, posenet.cube_scale);
  h = mix(h, posenet.cube_offset);
  h = mix(h, posenet.spacenet.stem_channels);
  h = mix(h, posenet.spacenet.block1_channels);
  h = mix(h, posenet.spacenet.block2_channels);
  h = mix(h, posenet.spacenet.attention.frame);
  h = mix(h, posenet.spacenet.attention.channel);
  h = mix(h, posenet.spacenet.attention.spatial);
  h = mix(h, train.epochs);
  h = mix(h, train.batch_size);
  h = mix(h, train.lr);
  h = mix(h, train.loss.beta);
  h = mix(h, train.loss.gamma);
  h = mix(h, num_users);
  h = mix(h, folds);
  h = mix(h, train_duration_s);
  h = mix(h, test_duration_s);
  h = mix(h, train_stride);
  h = mix(h, seed);
  h = mix(h, protocol_revision);
  return h;
}

Experiment::Experiment(const ProtocolConfig& config)
    : config_(config), builder_(config.chirp, config.pipeline) {
  MMHAND_CHECK(config_.folds >= 2 && config_.num_users >= config_.folds,
               "fold configuration");
  config_.posenet.validate();
  fold_models_.resize(static_cast<std::size_t>(config_.folds));
}

sim::ScenarioConfig Experiment::default_scenario(int user) const {
  sim::ScenarioConfig s;
  s.user_id = user;
  // Uniform test placement: per-user comparisons (Fig. 12/13) must reflect
  // hand geometry and gesture style, not placement.  28 cm on boresight is
  // interior to the training envelope below.
  s.hand_distance_m = 0.28;
  s.hand_azimuth_deg = 0.0;
  s.duration_s = config_.test_duration_s;
  s.seed = config_.seed ^ 0xABCDu;
  return s;
}

std::vector<sim::ScenarioConfig> Experiment::training_scenarios(
    int user) const {
  // Each training user records at three placements rotating over the
  // paper's 20-40 cm / natural-bearing envelope, so every fold's model
  // learns the placement manifold rather than one spot.
  std::vector<sim::ScenarioConfig> scenarios;
  for (int r = 0; r < 3; ++r) {
    sim::ScenarioConfig sc = default_scenario(user);
    sc.hand_distance_m = 0.22 + 0.07 * ((user + r) % 3);
    sc.hand_azimuth_deg = -10.0 + 10.0 * ((user + 2 * r) % 3);
    sc.duration_s = config_.train_duration_s / 3.0;
    sc.seed = config_.seed ^ (0x7700u + static_cast<unsigned>(user) * 16 +
                              static_cast<unsigned>(r));
    scenarios.push_back(sc);
  }
  return scenarios;
}

std::vector<pose::PoseSample> Experiment::fold_training_samples(
    int fold) const {
  std::vector<pose::PoseSample> samples;
  for (int user = 0; user < config_.num_users; ++user) {
    if (fold_of(user) == fold) continue;  // held out for testing
    for (const auto& scenario : training_scenarios(user)) {
      const auto recording = builder_.record(scenario);
      auto user_samples = pose::make_pose_samples(
          recording, config_.posenet, config_.train_stride);
      for (auto& s : user_samples) samples.push_back(std::move(s));
    }
  }
  return samples;
}

std::string Experiment::cache_path(const std::string& dir, int fold) const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "pose_%016llx_fold%d.bin",
                static_cast<unsigned long long>(config_.fingerprint()),
                fold);
  return (std::filesystem::path(dir) / buf).string();
}

void Experiment::prepare(const std::string& cache_dir) {
  std::filesystem::create_directories(cache_dir);
  for (int fold = 0; fold < config_.folds; ++fold) {
    Rng rng(config_.seed ^ (0x5151u + static_cast<unsigned>(fold)));
    auto model =
        std::make_unique<pose::HandJointRegressor>(config_.posenet, rng);
    const std::string path = cache_path(cache_dir, fold);
    bool loaded = false;
    if (file_exists(path)) {
      try {
        model->load(path);
        loaded = true;
        note_model_cache("hits");
        MMHAND_INFO("fold %d: loaded cached model %s", fold, path.c_str());
      } catch (const Error& e) {
        // Corrupt cache entry: move it aside and fall through to the
        // retrain path.  The Rng and model are recreated from scratch so
        // the rebuild is bitwise identical to a plain cache miss (the
        // failed load may have partially mutated the model).
        const std::string q = io_safe::quarantine(path);
        note_model_cache("quarantined");
        MMHAND_WARN("fold %d: cached model %s is unusable (%s); %s%s — "
                    "retraining",
                    fold, path.c_str(), e.what(),
                    q.empty() ? "removed" : "quarantined to ",
                    q.c_str());
        rng = Rng(config_.seed ^ (0x5151u + static_cast<unsigned>(fold)));
        model = std::make_unique<pose::HandJointRegressor>(config_.posenet,
                                                           rng);
      }
    }
    if (!loaded) {
      note_model_cache("misses");
      MMHAND_INFO("fold %d: generating training data...", fold);
      const auto samples = fold_training_samples(fold);
      MMHAND_INFO("fold %d: training on %zu samples, %d epochs", fold,
                  samples.size(), config_.train.epochs);
      pose::TrainConfig tc = config_.train;
      tc.seed = config_.seed ^ (0x33AAu + static_cast<unsigned>(fold));
      tc.on_epoch = [fold](int epoch, double loss) {
        MMHAND_INFO("fold %d epoch %d loss %.4f", fold, epoch, loss);
      };
      pose::train_pose_model(*model, samples, tc);
      model->save(path);
      note_model_cache("stores");
      MMHAND_INFO("fold %d: cached to %s", fold, path.c_str());
    }
    fold_models_[static_cast<std::size_t>(fold)] = std::move(model);
  }
}

pose::HandJointRegressor& Experiment::model_for_user(int user) {
  MMHAND_CHECK(user >= 0 && user < config_.num_users, "user " << user);
  auto& model = fold_models_[static_cast<std::size_t>(fold_of(user))];
  MMHAND_CHECK(model != nullptr, "Experiment::prepare() not called");
  return *model;
}

sim::Recording Experiment::record_test(
    const sim::ScenarioConfig& scenario) const {
  return builder_.record(scenario);
}

EvalAccumulator Experiment::evaluate_scenario(
    const sim::ScenarioConfig& scenario) {
  if (obs::metrics_enabled()) {
    static obs::Counter& scenarios = obs::counter("eval/scenarios");
    scenarios.add(1);
  }
  auto& model = model_for_user(scenario.user_id);
  const auto recording = record_test(scenario);
  const auto predictions = pose::predict_recording(model, recording);
  EvalAccumulator acc;
  for (const auto& p : predictions) acc.add(p.joints, p.oracle);
  append_eval_run_record(acc, "scenario", scenario.user_id);
  return acc;
}

EvalAccumulator Experiment::evaluate_user(int user) {
  return evaluate_scenario(default_scenario(user));
}

}  // namespace mmhand::eval
