#pragma once

// Shared model cache for benchmark binaries: the fold models (and the mesh
// reconstructor) train once, land on disk, and every subsequent bench run
// loads them.  The directory comes from $MMHAND_CACHE_DIR, defaulting to
// ./mmhand_cache.

#include <memory>
#include <string>

#include "mmhand/eval/experiment.hpp"
#include "mmhand/mesh/reconstruction.hpp"

namespace mmhand::eval {

/// Cache directory resolution.
std::string cache_directory();

/// Builds the standard-protocol experiment with trained (or cached) fold
/// models.  Set MMHAND_FAST=1 in the environment to substitute the fast
/// smoke-test protocol (useful while iterating on bench code).
std::unique_ptr<Experiment> prepared_standard_experiment();

/// A trained mesh reconstructor on the reference template (cached).
std::unique_ptr<mesh::MeshReconstructor> prepared_mesh_reconstructor();

}  // namespace mmhand::eval
