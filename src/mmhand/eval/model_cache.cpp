#include "mmhand/eval/model_cache.hpp"

#include <cstdlib>
#include <filesystem>

#include "mmhand/common/io_safe.hpp"
#include "mmhand/obs/log.hpp"
#include "mmhand/obs/metrics.hpp"

namespace mmhand::eval {

namespace {

/// Cache traffic counters shared with the fold-model cache in
/// experiment.cpp; without these the cache is invisible to a
/// MMHAND_METRICS snapshot.
void note_cache(const char* which) {
  if (!obs::metrics_enabled()) return;
  obs::counter(std::string("eval/model_cache.") + which).add(1);
}

}  // namespace

std::string cache_directory() {
  if (const char* env = std::getenv("MMHAND_CACHE_DIR"); env && *env)
    return env;
  return "mmhand_cache";
}

std::unique_ptr<Experiment> prepared_standard_experiment() {
  const char* fast = std::getenv("MMHAND_FAST");
  const ProtocolConfig config = (fast && *fast == '1')
                                    ? ProtocolConfig::fast()
                                    : ProtocolConfig::standard();
  auto experiment = std::make_unique<Experiment>(config);
  experiment->prepare(cache_directory());
  return experiment;
}

std::unique_ptr<mesh::MeshReconstructor> prepared_mesh_reconstructor() {
  const std::string dir = cache_directory();
  std::filesystem::create_directories(dir);
  const std::string path =
      (std::filesystem::path(dir) / "mesh_reconstructor.bin").string();
  Rng rng(0x4d414e4f);  // "MANO"
  auto recon = std::make_unique<mesh::MeshReconstructor>(
      mesh::HandTemplate::create(hand::HandProfile::reference()), rng);
  bool loaded = false;
  if (file_exists(path)) {
    try {
      recon->load(path);
      loaded = true;
      note_cache("hits");
      MMHAND_INFO("loaded cached mesh reconstructor");
    } catch (const Error& e) {
      // Quarantine the poisoned entry and retrain from a fresh model, so
      // the rebuild matches a plain cache miss bit for bit.
      const std::string q = io_safe::quarantine(path);
      note_cache("quarantined");
      MMHAND_WARN("cached mesh reconstructor %s is unusable (%s); %s%s — "
                  "retraining",
                  path.c_str(), e.what(),
                  q.empty() ? "removed" : "quarantined to ", q.c_str());
      rng = Rng(0x4d414e4f);
      recon = std::make_unique<mesh::MeshReconstructor>(
          mesh::HandTemplate::create(hand::HandProfile::reference()), rng);
    }
  }
  if (!loaded) {
    note_cache("misses");
    MMHAND_INFO("training mesh reconstructor...");
    const double err = recon->train(mesh::ReconstructorTrainConfig{});
    MMHAND_INFO("mesh reconstructor held-out error: %.1f mm", 1000.0 * err);
    recon->save(path);
    note_cache("stores");
  }
  return recon;
}

}  // namespace mmhand::eval
