#pragma once

// Evaluation metrics (§VI-A): MPJPE (Eq. 12), 3D-PCK (Eq. 13), the AUC of
// the PCK curve, palm/finger splits (Fig. 14) and error CDFs (Fig. 15).

#include <vector>

#include "mmhand/hand/skeleton.hpp"

namespace mmhand::eval {

enum class JointSubset { kAll, kPalm, kFingers };

/// Accumulates per-joint Euclidean errors across evaluated frames.
class EvalAccumulator {
 public:
  /// Records one frame's prediction against its ground truth.
  void add(const hand::JointSet& predicted, const hand::JointSet& truth);

  /// Merges another accumulator's observations.
  void merge(const EvalAccumulator& other);

  std::size_t frames() const { return frames_; }
  bool empty() const { return frames_ == 0; }

  /// Mean per-joint position error in millimeters.
  double mpjpe_mm(JointSubset subset = JointSubset::kAll) const;

  /// Percentage (0-100) of joints within `threshold_mm`.
  double pck(double threshold_mm,
             JointSubset subset = JointSubset::kAll) const;

  /// PCK curve over thresholds [0, max_mm] with `steps` points.
  struct CurvePoint {
    double threshold_mm = 0.0;
    double pck = 0.0;  // 0-100
  };
  std::vector<CurvePoint> pck_curve(double max_mm, int steps,
                                    JointSubset subset = JointSubset::kAll)
      const;

  /// Area under the (normalized) PCK curve, in [0, 1].
  double auc(double max_mm, int steps,
             JointSubset subset = JointSubset::kAll) const;

  /// All per-joint errors in millimeters (for CDF plots).
  std::vector<double> errors_mm(JointSubset subset = JointSubset::kAll)
      const;

  /// Mean error per joint in millimeters, indexed by the Fig. 4 joint
  /// order (for run records and per-joint breakdowns).  Joints with no
  /// observations report 0.
  std::vector<double> per_joint_mpjpe_mm() const;

  /// Per-frame MPJPE values in millimeters (for MPJPE CDFs).
  const std::vector<double>& frame_mpjpe_mm() const { return frame_mpjpe_; }

 private:
  static bool in_subset(int joint, JointSubset subset);

  // errors_[j] collects the error history of joint j.
  std::array<std::vector<double>, hand::kNumJoints> errors_;
  std::vector<double> frame_mpjpe_;
  std::size_t frames_ = 0;
};

}  // namespace mmhand::eval
