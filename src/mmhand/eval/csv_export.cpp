#include "mmhand/eval/csv_export.hpp"

#include <fstream>

#include "mmhand/common/error.hpp"
#include "mmhand/eval/table_printer.hpp"

namespace mmhand::eval {

CsvWriter::CsvWriter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  MMHAND_CHECK(!columns_.empty(), "CSV needs columns");
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::add_row(const std::vector<std::string>& row) {
  MMHAND_CHECK(row.size() == columns_.size(),
               "CSV row has " << row.size() << " cells, expected "
                              << columns_.size());
  rows_.push_back(row);
}

void CsvWriter::add_row(const std::vector<double>& row, int decimals) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) cells.push_back(fmt(v, decimals));
  add_row(cells);
}

void CsvWriter::write(const std::string& path) const {
  std::ofstream out(path);
  MMHAND_CHECK(out.good(), "cannot open " << path);
  for (std::size_t c = 0; c < columns_.size(); ++c)
    out << (c ? "," : "") << escape(columns_[c]);
  out << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      out << (c ? "," : "") << escape(row[c]);
    out << "\n";
  }
  out.flush();
  MMHAND_CHECK(out.good(), "write failure on " << path);
}

}  // namespace mmhand::eval
