#pragma once

// The evaluation harness: the protocol that stands in for the paper's
// 10-volunteer, 5-fold cross-validation campaign (§VI-A), scaled to a CPU
// (DESIGN.md §2).  Users are split into folds; each fold's model is
// trained on the remaining users' recordings and evaluated on the fold's
// users, so every user is tested by a model that never saw them.

#include <map>
#include <memory>
#include <string>

#include "mmhand/eval/metrics.hpp"
#include "mmhand/pose/inference.hpp"
#include "mmhand/sim/dataset.hpp"

namespace mmhand::eval {

struct ProtocolConfig {
  radar::ChirpConfig chirp;
  radar::PipelineConfig pipeline;
  pose::PoseNetConfig posenet;
  pose::TrainConfig train;
  int num_users = 10;
  int folds = 2;              ///< paper: 5; default scaled for CPU budget
  double train_duration_s = 16.0;  ///< per user
  double test_duration_s = 8.0;    ///< per user
  int train_stride = 8;       ///< sample window hop (frames)
  std::uint64_t seed = 2024;
  /// Bumped whenever scenario-placement logic changes in ways the other
  /// fields cannot capture (training data depends on default_scenario).
  int protocol_revision = 3;

  /// The standard protocol: consistent radar / cube / network geometry.
  static ProtocolConfig standard();
  /// A much smaller configuration for smoke tests.
  static ProtocolConfig fast();

  /// Stable fingerprint of everything that affects trained weights.
  std::uint64_t fingerprint() const;
};

/// Appends one `kind: "eval"` run record for an accumulated evaluation
/// (MPJPE overall/palm/fingers, per-joint breakdown, PCK at the standard
/// thresholds) when the run log is enabled; no-op otherwise.  `label`
/// names the evaluation ("user", "fig19_angle", ...), `user` the
/// evaluated user id (or -1 when not user-specific).
void append_eval_run_record(const EvalAccumulator& acc, const char* label,
                            int user);

class Experiment {
 public:
  explicit Experiment(const ProtocolConfig& config);

  /// Trains all fold models, or loads them from `cache_dir` when a
  /// matching checkpoint exists.  Training progress goes to stderr.
  void prepare(const std::string& cache_dir);

  /// The fold model for which `user` is a held-out test user.
  pose::HandJointRegressor& model_for_user(int user);

  /// Simulates a test recording (scenario defaults: standard placement).
  sim::Recording record_test(const sim::ScenarioConfig& scenario) const;

  /// Runs the held-out model over a scenario's recording and accumulates
  /// metrics against the noise-free oracle joints.
  EvalAccumulator evaluate_scenario(const sim::ScenarioConfig& scenario);

  /// Standard per-user evaluation (paper's default setup: 20-40 cm, body
  /// in front, corridor).
  EvalAccumulator evaluate_user(int user);

  /// Default scenario (standard placement) for a user; benches tweak the
  /// returned value for their sweeps.
  sim::ScenarioConfig default_scenario(int user) const;

  /// The three placement-diverse training recordings of one user.
  std::vector<sim::ScenarioConfig> training_scenarios(int user) const;

  const ProtocolConfig& config() const { return config_; }
  const sim::DatasetBuilder& builder() const { return builder_; }

 private:
  int fold_of(int user) const { return user % config_.folds; }
  std::string cache_path(const std::string& dir, int fold) const;
  std::vector<pose::PoseSample> fold_training_samples(int fold) const;

  ProtocolConfig config_;
  sim::DatasetBuilder builder_;
  std::vector<std::unique_ptr<pose::HandJointRegressor>> fold_models_;
};

}  // namespace mmhand::eval
