#include "mmhand/eval/metrics.hpp"

#include "mmhand/common/error.hpp"
#include "mmhand/common/stats.hpp"

namespace mmhand::eval {

bool EvalAccumulator::in_subset(int joint, JointSubset subset) {
  switch (subset) {
    case JointSubset::kAll: return true;
    case JointSubset::kPalm: return hand::is_palm_joint(joint);
    case JointSubset::kFingers: return !hand::is_palm_joint(joint);
  }
  return true;
}

void EvalAccumulator::add(const hand::JointSet& predicted,
                          const hand::JointSet& truth) {
  double frame_total = 0.0;
  for (int j = 0; j < hand::kNumJoints; ++j) {
    const double err_mm =
        1000.0 * distance(predicted[static_cast<std::size_t>(j)],
                          truth[static_cast<std::size_t>(j)]);
    errors_[static_cast<std::size_t>(j)].push_back(err_mm);
    frame_total += err_mm;
  }
  frame_mpjpe_.push_back(frame_total / hand::kNumJoints);
  ++frames_;
}

void EvalAccumulator::merge(const EvalAccumulator& other) {
  for (int j = 0; j < hand::kNumJoints; ++j) {
    auto& dst = errors_[static_cast<std::size_t>(j)];
    const auto& src = other.errors_[static_cast<std::size_t>(j)];
    dst.insert(dst.end(), src.begin(), src.end());
  }
  frame_mpjpe_.insert(frame_mpjpe_.end(), other.frame_mpjpe_.begin(),
                      other.frame_mpjpe_.end());
  frames_ += other.frames_;
}

std::vector<double> EvalAccumulator::errors_mm(JointSubset subset) const {
  std::vector<double> out;
  for (int j = 0; j < hand::kNumJoints; ++j) {
    if (!in_subset(j, subset)) continue;
    const auto& e = errors_[static_cast<std::size_t>(j)];
    out.insert(out.end(), e.begin(), e.end());
  }
  return out;
}

std::vector<double> EvalAccumulator::per_joint_mpjpe_mm() const {
  std::vector<double> out(hand::kNumJoints, 0.0);
  for (int j = 0; j < hand::kNumJoints; ++j) {
    const auto& e = errors_[static_cast<std::size_t>(j)];
    if (!e.empty()) out[static_cast<std::size_t>(j)] = mean(e);
  }
  return out;
}

double EvalAccumulator::mpjpe_mm(JointSubset subset) const {
  const auto errs = errors_mm(subset);
  MMHAND_CHECK(!errs.empty(), "MPJPE over an empty accumulator");
  return mean(errs);
}

double EvalAccumulator::pck(double threshold_mm, JointSubset subset) const {
  const auto errs = errors_mm(subset);
  MMHAND_CHECK(!errs.empty(), "PCK over an empty accumulator");
  std::size_t hit = 0;
  for (double e : errs)
    if (e < threshold_mm) ++hit;
  return 100.0 * static_cast<double>(hit) / static_cast<double>(errs.size());
}

std::vector<EvalAccumulator::CurvePoint> EvalAccumulator::pck_curve(
    double max_mm, int steps, JointSubset subset) const {
  MMHAND_CHECK(steps >= 2 && max_mm > 0.0, "pck_curve arguments");
  std::vector<CurvePoint> curve(static_cast<std::size_t>(steps));
  for (int i = 0; i < steps; ++i) {
    const double thr = max_mm * static_cast<double>(i) /
                       static_cast<double>(steps - 1);
    curve[static_cast<std::size_t>(i)] = {thr, pck(thr, subset)};
  }
  return curve;
}

double EvalAccumulator::auc(double max_mm, int steps,
                            JointSubset subset) const {
  const auto curve = pck_curve(max_mm, steps, subset);
  std::vector<double> xs, ys;
  xs.reserve(curve.size());
  ys.reserve(curve.size());
  for (const auto& p : curve) {
    xs.push_back(p.threshold_mm);
    ys.push_back(p.pck / 100.0);
  }
  return normalized_auc(xs, ys);
}

}  // namespace mmhand::eval
