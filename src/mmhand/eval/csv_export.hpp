#pragma once

// CSV export for benchmark series — lets downstream users replot the
// paper's figures from the bench binaries' data without scraping stdout.

#include <string>
#include <vector>

namespace mmhand::eval {

/// A simple column-oriented CSV writer.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> columns);

  /// Appends one row; must match the column count.
  void add_row(const std::vector<std::string>& row);
  void add_row(const std::vector<double>& row, int decimals = 4);

  /// Writes the accumulated table; throws on I/O failure.
  void write(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  static std::string escape(const std::string& cell);

  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mmhand::eval
