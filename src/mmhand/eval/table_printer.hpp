#pragma once

// Small helpers for printing the paper-style tables and series the bench
// binaries emit.

#include <string>
#include <vector>

namespace mmhand::eval {

/// Prints a titled rule-delimited section header to stdout.
void print_header(const std::string& title);

/// Prints one row of "label: value unit" with aligned columns.
void print_metric(const std::string& label, double value,
                  const std::string& unit);

/// Prints an aligned table; `rows` are cell strings, first row can serve
/// as the header (pass header=true to underline it).
void print_table(const std::vector<std::vector<std::string>>& rows,
                 bool header = true);

/// Formats a double with fixed precision.
std::string fmt(double value, int decimals = 1);

}  // namespace mmhand::eval
