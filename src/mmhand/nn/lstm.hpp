#pragma once

// Single-layer LSTM over a sequence [T, F] -> hidden states [T, H].
//
// mmHand's temporal model (§IV-A): the per-segment feature vectors produced
// by mmSpaceNet form a sequence; the LSTM extracts temporal features that
// describe hand motion across segments.  Full backpropagation through time.

#include "mmhand/nn/layer.hpp"

namespace mmhand::nn {

class Lstm : public Layer {
 public:
  Lstm(int input_size, int hidden_size, Rng& rng);

  /// x: [T, input]; returns [T, hidden].  State starts at zero per call
  /// (sequences are independent samples).
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  /// Cross-sequence batched inference: x is [B*T, input] with sample b
  /// owning rows [b*T, (b+1)*T).  One big input-projection GEMM plus a
  /// per-timestep [B x 4H] recurrent GEMM replace B independent scans;
  /// every per-element summation order matches the single-sample path,
  /// so each sample's rows are bitwise identical to forward() on that
  /// sample alone (asserted by tests/test_serve.cpp).
  Tensor forward_sequences(const Tensor& x, int sequences) override;
  std::vector<Parameter*> parameters() override {
    return {&w_ih_, &w_hh_, &bias_};
  }
  std::string name() const override { return "Lstm"; }

  int hidden_size() const { return hidden_; }

 private:
  int input_, hidden_;
  // Gate order within the 4H rows: input, forget, cell(g), output.
  Parameter w_ih_;  ///< [4H, F]
  Parameter w_hh_;  ///< [4H, H]
  Parameter bias_;  ///< [4H]

  // Caches for BPTT.
  Tensor cached_input_;  ///< [T, F]
  Tensor gates_;         ///< [T, 4H] post-activation gate values
  Tensor cells_;         ///< [T, H] cell states
  Tensor hiddens_;       ///< [T, H] hidden states
};

}  // namespace mmhand::nn
