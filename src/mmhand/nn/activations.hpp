#pragma once

// Pointwise activations as layers (with cached state for backward).

#include "mmhand/nn/layer.hpp"

namespace mmhand::nn {

class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "ReLU"; }

 private:
  Tensor mask_;  ///< 1 where x > 0
};

class Sigmoid : public Layer {
 public:
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "Sigmoid"; }

 private:
  Tensor output_;
};

class Tanh : public Layer {
 public:
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "Tanh"; }

 private:
  Tensor output_;
};

/// Functional scalar forms used inside the LSTM cell.
float sigmoid_value(float x);
float tanh_value(float x);

}  // namespace mmhand::nn
