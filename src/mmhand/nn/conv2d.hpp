#pragma once

// 2-D convolution and transposed convolution over [N, C, H, W] maps.
//
// Conv2d runs im2col + matmul (the dominant training cost of mmSpaceNet);
// ConvTranspose2d uses direct scatter loops, which is plenty for the small
// upsampling maps in the hourglass branch.

#include "mmhand/nn/layer.hpp"

namespace mmhand::nn {

class Conv2d : public Layer {
 public:
  Conv2d(int in_channels, int out_channels, int kernel, int stride, int pad,
         Rng& rng);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  std::string name() const override { return "Conv2d"; }

  /// Output spatial size for an input of extent `in`.
  int out_extent(int in) const { return (in + 2 * pad_ - kernel_) / stride_ + 1; }

 private:
  int in_ch_, out_ch_, kernel_, stride_, pad_;
  Parameter weight_;  ///< [OC, IC, K, K]
  Parameter bias_;    ///< [OC]
  Tensor cached_input_;
};

class ConvTranspose2d : public Layer {
 public:
  ConvTranspose2d(int in_channels, int out_channels, int kernel, int stride,
                  int pad, Rng& rng);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  std::string name() const override { return "ConvTranspose2d"; }

  int out_extent(int in) const {
    return (in - 1) * stride_ - 2 * pad_ + kernel_;
  }

 private:
  int in_ch_, out_ch_, kernel_, stride_, pad_;
  Parameter weight_;  ///< [IC, OC, K, K]
  Parameter bias_;    ///< [OC]
  Tensor cached_input_;
};

}  // namespace mmhand::nn
