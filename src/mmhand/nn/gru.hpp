#pragma once

// Single-layer GRU over a sequence [T, F] -> hidden states [T, H].
//
// Used by the temporal-model ablation (bench_ablation_temporal): the paper
// chooses an LSTM for temporal feature extraction; the GRU is the natural
// lighter-weight alternative to compare against.

#include "mmhand/nn/layer.hpp"

namespace mmhand::nn {

class Gru : public Layer {
 public:
  Gru(int input_size, int hidden_size, Rng& rng);

  /// x: [T, input]; returns [T, hidden].  State starts at zero per call.
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override {
    return {&w_ih_, &w_hh_, &bias_ih_, &bias_hh_};
  }
  std::string name() const override { return "Gru"; }

  int hidden_size() const { return hidden_; }

 private:
  int input_, hidden_;
  // Gate order within the 3H rows: reset (r), update (z), candidate (n).
  Parameter w_ih_;    ///< [3H, F]
  Parameter w_hh_;    ///< [3H, H]
  Parameter bias_ih_; ///< [3H]
  Parameter bias_hh_; ///< [3H] (separate recurrent bias, torch-style, so
                      ///< the candidate's reset gating is well-defined)

  // Caches for BPTT.
  Tensor cached_input_;  ///< [T, F]
  Tensor gates_;         ///< [T, 3H]: r, z, n post-activation
  Tensor hh_n_;          ///< [T, H]: (W_hh h_prev + b_hh) candidate rows
  Tensor hiddens_;       ///< [T, H]
};

}  // namespace mmhand::nn
