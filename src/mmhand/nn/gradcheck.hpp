#pragma once

// Numerical gradient checking used by the test suite to pin down every
// hand-derived backward pass.

#include <functional>

#include "mmhand/nn/layer.hpp"

namespace mmhand::nn {

struct GradCheckResult {
  double max_abs_error = 0.0;    ///< worst |analytic - numeric|
  double max_rel_error = 0.0;    ///< worst relative error
  std::size_t checked = 0;
};

/// Checks dL/d(input) of `layer` for L = sum(w . forward(x)) with a fixed
/// random weighting w.  Central differences with step `eps`.
GradCheckResult check_input_gradient(Layer& layer, const Tensor& x,
                                     Rng& rng, double eps = 1e-3);

/// Checks dL/d(theta) for every parameter of `layer` under the same loss.
GradCheckResult check_parameter_gradients(Layer& layer, const Tensor& x,
                                          Rng& rng, double eps = 1e-3,
                                          std::size_t max_entries_per_param = 64);

}  // namespace mmhand::nn
