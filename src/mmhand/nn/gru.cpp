#include "mmhand/nn/gru.hpp"

#include <cmath>

#include "mmhand/nn/activations.hpp"
#include "mmhand/nn/gemm.hpp"
#include "mmhand/obs/trace.hpp"

namespace mmhand::nn {

Gru::Gru(int input_size, int hidden_size, Rng& rng)
    : input_(input_size),
      hidden_(hidden_size),
      w_ih_(Tensor::randn({3 * hidden_size, input_size}, rng,
                          1.0 / std::sqrt(static_cast<double>(input_size))),
            "gru.w_ih"),
      w_hh_(Tensor::randn({3 * hidden_size, hidden_size}, rng,
                          1.0 / std::sqrt(static_cast<double>(hidden_size))),
            "gru.w_hh"),
      bias_ih_(Tensor::zeros({3 * hidden_size}), "gru.bias_ih"),
      bias_hh_(Tensor::zeros({3 * hidden_size}), "gru.bias_hh") {
  MMHAND_CHECK(input_size >= 1 && hidden_size >= 1, "Gru sizes");
}

Tensor Gru::forward(const Tensor& x, bool training) {
  MMHAND_SPAN("nn/gru_forward");
  MMHAND_CHECK(x.rank() == 2 && x.dim(1) == input_,
               "Gru expects [T, " << input_ << "]");
  const int t_len = x.dim(0);
  const int h = hidden_;
  Tensor gates({t_len, 3 * h});
  Tensor hh_n({t_len, h});
  Tensor hiddens({t_len, h});

  // Input pre-activations for every timestep in one GEMM; the recurrent
  // half (the candidate uses r . (W_hh h + b_hh), so the two stay separate)
  // remains a per-step matrix-vector product.
  Tensor pre_all({t_len, 3 * h});
  for (int t = 0; t < t_len; ++t) {
    float* pt = pre_all.data() + static_cast<std::size_t>(t) * 3 * h;
    for (int r = 0; r < 3 * h; ++r)
      pt[r] = bias_ih_.value[static_cast<std::size_t>(r)];
  }
  gemm_a_bt_acc(x.data(), w_ih_.value.data(), pre_all.data(), t_len, input_,
                3 * h);

  std::vector<float> h_prev(static_cast<std::size_t>(h), 0.0f);
  std::vector<float> hh(static_cast<std::size_t>(3 * h));
  for (int t = 0; t < t_len; ++t) {
    const float* pre =
        pre_all.data() + static_cast<std::size_t>(t) * 3 * h;
    for (int r = 0; r < 3 * h; ++r)
      hh[static_cast<std::size_t>(r)] =
          bias_hh_.value[static_cast<std::size_t>(r)];
    gemv_acc(w_hh_.value.data(), h_prev.data(), hh.data(), 3 * h, h);
    float* gt = gates.data() + static_cast<std::size_t>(t) * 3 * h;
    float* nh = hh_n.data() + static_cast<std::size_t>(t) * h;
    float* ht = hiddens.data() + static_cast<std::size_t>(t) * h;
    for (int j = 0; j < h; ++j) {
      const float r_gate = sigmoid_value(pre[static_cast<std::size_t>(j)] +
                                         hh[static_cast<std::size_t>(j)]);
      const float z_gate =
          sigmoid_value(pre[static_cast<std::size_t>(h + j)] +
                        hh[static_cast<std::size_t>(h + j)]);
      const float hh_cand = hh[static_cast<std::size_t>(2 * h + j)];
      const float n_gate = tanh_value(
          pre[static_cast<std::size_t>(2 * h + j)] + r_gate * hh_cand);
      gt[j] = r_gate;
      gt[h + j] = z_gate;
      gt[2 * h + j] = n_gate;
      nh[j] = hh_cand;
      ht[j] = (1.0f - z_gate) * n_gate +
              z_gate * h_prev[static_cast<std::size_t>(j)];
    }
    std::copy(ht, ht + h, h_prev.begin());
  }

  if (training) {
    cached_input_ = x;
    gates_ = std::move(gates);
    hh_n_ = std::move(hh_n);
    hiddens_ = hiddens;
  }
  return hiddens;
}

Tensor Gru::backward(const Tensor& grad_out) {
  MMHAND_SPAN("nn/gru_backward");
  MMHAND_CHECK(!cached_input_.empty(), "Gru backward before forward");
  const int t_len = cached_input_.dim(0);
  const int h = hidden_;
  MMHAND_CHECK(grad_out.rank() == 2 && grad_out.dim(0) == t_len &&
                   grad_out.dim(1) == h,
               "Gru grad shape");

  Tensor grad_in = Tensor::zeros({t_len, input_});
  std::vector<float> dh_next(static_cast<std::size_t>(h), 0.0f);
  std::vector<float> d_pre_i(static_cast<std::size_t>(3 * h));
  std::vector<float> d_pre_h(static_cast<std::size_t>(3 * h));

  for (int t = t_len - 1; t >= 0; --t) {
    const float* gt = gates_.data() + static_cast<std::size_t>(t) * 3 * h;
    const float* nh = hh_n_.data() + static_cast<std::size_t>(t) * h;
    const float* h_prev =
        t > 0 ? hiddens_.data() + static_cast<std::size_t>(t - 1) * h
              : nullptr;
    const float* go = grad_out.data() + static_cast<std::size_t>(t) * h;
    const float* xt =
        cached_input_.data() + static_cast<std::size_t>(t) * input_;

    // dh carries the gradient into this step's hidden state; the recurrent
    // path through h_prev accumulates into dh_next for step t-1.
    std::vector<float> dh(static_cast<std::size_t>(h));
    for (int j = 0; j < h; ++j)
      dh[static_cast<std::size_t>(j)] =
          go[j] + dh_next[static_cast<std::size_t>(j)];
    std::fill(dh_next.begin(), dh_next.end(), 0.0f);

    for (int j = 0; j < h; ++j) {
      const float r_gate = gt[j], z_gate = gt[h + j], n_gate = gt[2 * h + j];
      const float hp = h_prev ? h_prev[j] : 0.0f;
      const float dhj = dh[static_cast<std::size_t>(j)];
      // h = (1-z) n + z h_prev
      const float dz = dhj * (hp - n_gate);
      const float dn = dhj * (1.0f - z_gate);
      if (h_prev) dh_next[static_cast<std::size_t>(j)] += dhj * z_gate;
      // n = tanh(pre_n + r * hh_n)
      const float dn_pre = dn * (1.0f - n_gate * n_gate);
      const float dr = dn_pre * nh[j];
      // gate pre-activation derivatives
      d_pre_i[static_cast<std::size_t>(2 * h + j)] = dn_pre;
      d_pre_h[static_cast<std::size_t>(2 * h + j)] = dn_pre * r_gate;
      const float dz_pre = dz * z_gate * (1.0f - z_gate);
      d_pre_i[static_cast<std::size_t>(h + j)] = dz_pre;
      d_pre_h[static_cast<std::size_t>(h + j)] = dz_pre;
      const float dr_pre = dr * r_gate * (1.0f - r_gate);
      d_pre_i[static_cast<std::size_t>(j)] = dr_pre;
      d_pre_h[static_cast<std::size_t>(j)] = dr_pre;
    }

    float* dx = grad_in.data() + static_cast<std::size_t>(t) * input_;
    for (int r = 0; r < 3 * h; ++r) {
      const float di = d_pre_i[static_cast<std::size_t>(r)];
      const float dhh = d_pre_h[static_cast<std::size_t>(r)];
      if (di != 0.0f) {
        bias_ih_.grad[static_cast<std::size_t>(r)] += di;
        float* dwi = w_ih_.grad.data() + static_cast<std::size_t>(r) * input_;
        const float* wi =
            w_ih_.value.data() + static_cast<std::size_t>(r) * input_;
        for (int f = 0; f < input_; ++f) {
          dwi[f] += di * xt[f];
          dx[f] += di * wi[f];
        }
      }
      if (dhh != 0.0f) {
        bias_hh_.grad[static_cast<std::size_t>(r)] += dhh;
        float* dwh = w_hh_.grad.data() + static_cast<std::size_t>(r) * h;
        const float* wh = w_hh_.value.data() + static_cast<std::size_t>(r) * h;
        if (h_prev) {
          for (int j = 0; j < h; ++j) {
            dwh[j] += dhh * h_prev[j];
            dh_next[static_cast<std::size_t>(j)] += dhh * wh[j];
          }
        }
      }
    }
  }
  return grad_in;
}

}  // namespace mmhand::nn
