#pragma once

// A simple layer container that chains forward/backward.

#include <memory>
#include <vector>

#include "mmhand/nn/layer.hpp"

namespace mmhand::nn {

class Sequential : public Layer {
 public:
  Sequential() = default;

  /// Appends a layer; returns a reference for further configuration.
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  void append(std::unique_ptr<Layer> layer) {
    layers_.push_back(std::move(layer));
  }

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return "Sequential"; }

  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace mmhand::nn
