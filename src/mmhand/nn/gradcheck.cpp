#include "mmhand/nn/gradcheck.hpp"

#include <cmath>

namespace mmhand::nn {

namespace {

/// Fixed random weighting makes the scalar loss sensitive to every output.
Tensor make_weighting(const std::vector<int>& shape, Rng& rng) {
  Tensor w(shape);
  for (std::size_t i = 0; i < w.numel(); ++i)
    w[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  return w;
}

double weighted_sum(const Tensor& y, const Tensor& w) {
  double acc = 0.0;
  for (std::size_t i = 0; i < y.numel(); ++i)
    acc += static_cast<double>(y[i]) * w[i];
  return acc;
}

void update(GradCheckResult& res, double analytic, double numeric) {
  const double abs_err = std::abs(analytic - numeric);
  const double denom =
      std::max({std::abs(analytic), std::abs(numeric), 1e-4});
  res.max_abs_error = std::max(res.max_abs_error, abs_err);
  // Track relative error only where the absolute error exceeds the noise
  // floor of float-precision central differences; for near-zero gradients
  // the ratio is dominated by rounding, not by the backward derivation.
  if (abs_err > 5e-4)
    res.max_rel_error = std::max(res.max_rel_error, abs_err / denom);
  ++res.checked;
}

}  // namespace

GradCheckResult check_input_gradient(Layer& layer, const Tensor& x, Rng& rng,
                                     double eps) {
  Tensor input = x;
  const Tensor y = layer.forward(input, /*training=*/true);
  const Tensor w = make_weighting(y.shape(), rng);
  const Tensor analytic = layer.backward(w);
  MMHAND_CHECK(analytic.same_shape(input), "gradcheck input-grad shape");

  GradCheckResult res;
  for (std::size_t i = 0; i < input.numel(); ++i) {
    const float orig = input[i];
    input[i] = orig + static_cast<float>(eps);
    const double plus = weighted_sum(layer.forward(input, false), w);
    input[i] = orig - static_cast<float>(eps);
    const double minus = weighted_sum(layer.forward(input, false), w);
    input[i] = orig;
    update(res, analytic[i], (plus - minus) / (2.0 * eps));
  }
  return res;
}

GradCheckResult check_parameter_gradients(Layer& layer, const Tensor& x,
                                          Rng& rng, double eps,
                                          std::size_t max_entries_per_param) {
  const Tensor y = layer.forward(x, /*training=*/true);
  const Tensor w = make_weighting(y.shape(), rng);
  auto params = layer.parameters();
  zero_grads(params);
  // Re-run forward so caches are fresh, then accumulate analytic grads.
  (void)layer.forward(x, true);
  (void)layer.backward(w);

  GradCheckResult res;
  for (Parameter* p : params) {
    const std::size_t n = p->value.numel();
    const std::size_t stride =
        std::max<std::size_t>(1, n / max_entries_per_param);
    for (std::size_t i = 0; i < n; i += stride) {
      const float orig = p->value[i];
      p->value[i] = orig + static_cast<float>(eps);
      const double plus = weighted_sum(layer.forward(x, false), w);
      p->value[i] = orig - static_cast<float>(eps);
      const double minus = weighted_sum(layer.forward(x, false), w);
      p->value[i] = orig;
      update(res, p->grad[i], (plus - minus) / (2.0 * eps));
    }
  }
  return res;
}

}  // namespace mmhand::nn
