#pragma once

// Loss functions.  The paper's L3D (§IV-B) sums per-joint Euclidean
// distances; the kinematic loss lives in mmhand/pose (it needs the finger
// topology).

#include "mmhand/nn/tensor.hpp"

namespace mmhand::nn {

struct LossResult {
  double value = 0.0;
  Tensor grad;  ///< dL/d(prediction), same shape as the prediction
};

/// L3D = sum_j || pred_j - gt_j ||_2 over joints laid out as consecutive
/// (x, y, z) triples.  `pred` and `target` are [J*3] or [N, J*3].
LossResult joint_l2_loss(const Tensor& pred, const Tensor& target);

/// Plain mean-squared error (used by baselines and the IK/shape nets).
LossResult mse_loss(const Tensor& pred, const Tensor& target);

}  // namespace mmhand::nn
