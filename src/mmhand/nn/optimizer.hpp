#pragma once

// Adam optimizer with the paper's cosine learning-rate decay (§VI-A:
// initial lr 0.001, cosine schedule).

#include <vector>

#include "mmhand/nn/layer.hpp"

namespace mmhand::nn {

struct AdamConfig {
  double lr = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  double weight_decay = 0.0;
};

class Adam {
 public:
  Adam(std::vector<Parameter*> params, const AdamConfig& config = {});

  /// Applies one update from the accumulated gradients, then the caller
  /// typically zeroes them.  `lr_scale` multiplies the base rate (cosine
  /// schedule hook).
  void step(double lr_scale = 1.0);

  void zero_grad();

  std::size_t steps_taken() const { return t_; }

  /// Serializes the optimizer state (step count + first/second moments)
  /// so an interrupted training run can resume bit-for-bit.  load()
  /// validates the moment geometry against the bound parameters and
  /// throws mmhand::Error on mismatch.
  void save(BinaryWriter& w) const;
  void load(BinaryReader& r);

 private:
  std::vector<Parameter*> params_;
  AdamConfig config_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  std::size_t t_ = 0;
};

/// Cosine decay factor in [0, 1] for epoch `e` of `total` (lr0 * factor).
double cosine_decay(int epoch, int total_epochs);

}  // namespace mmhand::nn
