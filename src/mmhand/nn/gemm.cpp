#include "mmhand/nn/gemm.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "mmhand/common/parallel.hpp"
#include "mmhand/obs/metrics.hpp"
#include "mmhand/obs/trace.hpp"

namespace mmhand::nn {

namespace {

/// Call/FLOP/byte accounting for every GEMM variant.  Disabled cost:
/// one relaxed atomic load; enabled cost: three sharded relaxed adds.
/// Bytes are the compulsory-traffic estimate (read A and B once, read+
/// write C once, 4-byte floats) that `mmhand_report --roofline` divides
/// flops by for arithmetic intensity; cache reuse makes real DRAM
/// traffic lower, so the estimate is an upper bound on bytes moved.
inline void note_gemm(std::int64_t m, std::int64_t k, std::int64_t n) {
  if (!obs::metrics_enabled()) return;
  static obs::Counter& calls = obs::counter("nn/gemm.calls");
  static obs::Counter& flops = obs::counter("nn/gemm.flops");
  static obs::Counter& bytes = obs::counter("nn/gemm.bytes");
  calls.add(1);
  flops.add(2 * m * k * n);
  bytes.add(4 * (m * k + k * n + 2 * m * n));
}

// Register/cache blocking.  kMB rows of C per task keep a packed stripe of
// A in L1 while a [kKB x kNB] tile of B (128 KiB at floats) streams through
// L2; tasks are whole C tiles so each output element has exactly one
// writer.
constexpr int kMB = 16;
constexpr int kKB = 128;
constexpr int kNB = 256;

// Minimum flops per parallel task; below this the dispatch overhead wins
// and `parallel_for` collapses to the serial path via its grain check.
constexpr std::int64_t kMinChunkFlops = 1 << 15;

int num_blocks(int extent, int block) { return (extent + block - 1) / block; }

/// Tiles per parallel task so each task carries at least kMinChunkFlops.
std::int64_t tile_grain(std::int64_t flops_per_tile) {
  return std::max<std::int64_t>(
      1, (kMinChunkFlops + flops_per_tile - 1) / std::max<std::int64_t>(
                                                     1, flops_per_tile));
}

}  // namespace

void gemm_acc(const float* a, const float* b, float* c, int m, int k,
              int n) {
  note_gemm(m, k, n);
  MMHAND_SPAN("nn/gemm");
  // Split C along its larger dimension so small-m multiplies (e.g. Conv2d
  // with few output channels but a wide im2col matrix) still fan out.  For
  // any split the k-loop order per output element is fixed (pp then p,
  // ascending), so results are thread-count invariant.
  if (m >= n / 2) {
    const std::int64_t grain = tile_grain(2ll * kMB * k * n);
    parallel_for(0, num_blocks(m, kMB), grain, [=](std::int64_t bi) {
      const int i0 = static_cast<int>(bi) * kMB;
      const int i1 = std::min(m, i0 + kMB);
      for (int jj = 0; jj < n; jj += kNB) {
        const int j1 = std::min(n, jj + kNB);
        for (int pp = 0; pp < k; pp += kKB) {
          const int p1 = std::min(k, pp + kKB);
          for (int i = i0; i < i1; ++i) {
            const float* ai = a + static_cast<std::size_t>(i) * k;
            float* ci = c + static_cast<std::size_t>(i) * n;
            for (int p = pp; p < p1; ++p) {
              const float av = ai[p];
              if (av == 0.0f) continue;
              const float* bp = b + static_cast<std::size_t>(p) * n;
              for (int j = jj; j < j1; ++j) ci[j] += av * bp[j];
            }
          }
        }
      }
    });
  } else {
    const std::int64_t grain = tile_grain(2ll * m * k * kNB);
    parallel_for(0, num_blocks(n, kNB), grain, [=](std::int64_t bj) {
      const int j0 = static_cast<int>(bj) * kNB;
      const int j1 = std::min(n, j0 + kNB);
      for (int pp = 0; pp < k; pp += kKB) {
        const int p1 = std::min(k, pp + kKB);
        for (int i = 0; i < m; ++i) {
          const float* ai = a + static_cast<std::size_t>(i) * k;
          float* ci = c + static_cast<std::size_t>(i) * n;
          for (int p = pp; p < p1; ++p) {
            const float av = ai[p];
            if (av == 0.0f) continue;
            const float* bp = b + static_cast<std::size_t>(p) * n;
            for (int j = j0; j < j1; ++j) ci[j] += av * bp[j];
          }
        }
      }
    });
  }
}

void gemm_at_b_acc(const float* a, const float* b, float* c, int m, int k,
                   int n) {
  note_gemm(m, k, n);
  MMHAND_SPAN("nn/gemm");
  const std::int64_t grain = tile_grain(2ll * kMB * k * n);
  parallel_for(0, num_blocks(m, kMB), grain, [=](std::int64_t bi) {
    const int i0 = static_cast<int>(bi) * kMB;
    const int i1 = std::min(m, i0 + kMB);
    for (int pp = 0; pp < k; pp += kKB) {
      const int p1 = std::min(k, pp + kKB);
      for (int i = i0; i < i1; ++i) {
        float* ci = c + static_cast<std::size_t>(i) * n;
        for (int p = pp; p < p1; ++p) {
          const float av = a[static_cast<std::size_t>(p) * m + i];
          if (av == 0.0f) continue;
          const float* bp = b + static_cast<std::size_t>(p) * n;
          for (int j = 0; j < n; ++j) ci[j] += av * bp[j];
        }
      }
    }
  });
}

void gemm_a_bt_acc(const float* a, const float* b, float* c, int m, int k,
                   int n) {
  note_gemm(m, k, n);
  MMHAND_SPAN("nn/gemm");
  // Dot-product form: every output is one full-length k scan, accumulated
  // in a scalar before touching C, so k-blocking is unnecessary and the
  // summation order is trivially fixed.
  if (m >= n / 2) {
    const std::int64_t grain = tile_grain(2ll * kMB * k * n);
    parallel_for(0, num_blocks(m, kMB), grain, [=](std::int64_t bi) {
      const int i0 = static_cast<int>(bi) * kMB;
      const int i1 = std::min(m, i0 + kMB);
      for (int i = i0; i < i1; ++i) {
        const float* ai = a + static_cast<std::size_t>(i) * k;
        float* ci = c + static_cast<std::size_t>(i) * n;
        for (int j = 0; j < n; ++j) {
          const float* bj = b + static_cast<std::size_t>(j) * k;
          float acc = 0.0f;
          for (int p = 0; p < k; ++p) acc += ai[p] * bj[p];
          ci[j] += acc;
        }
      }
    });
  } else {
    const std::int64_t grain = tile_grain(2ll * m * k * kNB);
    parallel_for(0, num_blocks(n, kNB), grain, [=](std::int64_t blk) {
      const int j0 = static_cast<int>(blk) * kNB;
      const int j1 = std::min(n, j0 + kNB);
      for (int i = 0; i < m; ++i) {
        const float* ai = a + static_cast<std::size_t>(i) * k;
        float* ci = c + static_cast<std::size_t>(i) * n;
        for (int j = j0; j < j1; ++j) {
          const float* bj = b + static_cast<std::size_t>(j) * k;
          float acc = 0.0f;
          for (int p = 0; p < k; ++p) acc += ai[p] * bj[p];
          ci[j] += acc;
        }
      }
    });
  }
}

void gemv_acc(const float* a, const float* x, float* y, int m, int k) {
  note_gemm(m, k, 1);
  MMHAND_SPAN("nn/gemm");
  const std::int64_t grain = std::max<std::int64_t>(
      1, kMinChunkFlops / (2 * std::max(k, 1)));
  parallel_for(0, m, grain, [=](std::int64_t i) {
    const float* ai = a + static_cast<std::size_t>(i) * k;
    float acc = 0.0f;
    for (int p = 0; p < k; ++p) acc += ai[p] * x[p];
    y[i] += acc;
  });
}

}  // namespace mmhand::nn
