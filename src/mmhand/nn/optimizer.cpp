#include "mmhand/nn/optimizer.hpp"

#include <cmath>
#include <numbers>
#include <sstream>

#include "mmhand/nn/tensor_stats.hpp"
#include "mmhand/obs/numeric.hpp"

namespace mmhand::nn {

namespace {

/// Magnitudes past this are treated as an exploded tensor even though
/// the values are still technically finite (float overflows at ~3.4e38;
/// 1e8 is far beyond any healthy weight or gradient in this stack).
constexpr double kExplosionThreshold = 1e8;

/// Watchdog pass over one tensor; reports at most one anomaly per
/// tensor per step (the counts in `detail` carry the full extent).
void check_tensor(const char* site, const Parameter& p, const Tensor& t,
                  std::size_t param_index, std::size_t step) {
  const TensorStats s = tensor_stats(t);
  const double worst = std::max(std::abs(s.min), std::abs(s.max));
  if (s.all_finite() && worst <= kExplosionThreshold) return;
  std::ostringstream detail;
  detail << "param " << param_index;
  if (!p.name.empty()) detail << " (" << p.name << ")";
  detail << " step " << step << ": " << s.nan_count << " nan, "
         << s.inf_count << " inf, |max| " << worst << " of " << s.count
         << " elements";
  const char* what = s.nan_count > 0  ? "nan"
                     : s.inf_count > 0 ? "inf"
                                        : "explosion";
  obs::report_numeric_anomaly(site, what, detail.str());
}

}  // namespace

Adam::Adam(std::vector<Parameter*> params, const AdamConfig& config)
    : params_(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Parameter* p : params_) {
    m_.push_back(Tensor::zeros(p->value.shape()));
    v_.push_back(Tensor::zeros(p->value.shape()));
  }
}

void Adam::step(double lr_scale) {
  ++t_;
  // Gated watchdog: inspect the incoming gradients before they are
  // folded into the moments, so a NaN is attributed to the step (and
  // batch) that produced it.  Reading stats never changes the update.
  if (obs::numeric_check_enabled()) {
    for (std::size_t i = 0; i < params_.size(); ++i)
      check_tensor("nn/adam.grad", *params_[i], params_[i]->grad, i, t_);
  }
  const double lr = config_.lr * lr_scale;
  const double b1 = config_.beta1, b2 = config_.beta2;
  const double bc1 = 1.0 - std::pow(b1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(b2, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (std::size_t e = 0; e < p.value.numel(); ++e) {
      double g = p.grad[e];
      if (config_.weight_decay > 0.0) g += config_.weight_decay * p.value[e];
      m[e] = static_cast<float>(b1 * m[e] + (1.0 - b1) * g);
      v[e] = static_cast<float>(b2 * v[e] + (1.0 - b2) * g * g);
      const double mhat = m[e] / bc1;
      const double vhat = v[e] / bc2;
      p.value[e] -= static_cast<float>(lr * mhat /
                                       (std::sqrt(vhat) + config_.eps));
    }
  }
  // Post-update pass: a poisoned moment or overflowing weight shows up
  // here one step before it ruins the next forward pass.
  if (obs::numeric_check_enabled()) {
    for (std::size_t i = 0; i < params_.size(); ++i)
      check_tensor("nn/adam.param", *params_[i], params_[i]->value, i, t_);
  }
}

void Adam::zero_grad() { zero_grads(params_); }

void Adam::save(BinaryWriter& w) const {
  w.write_u64(static_cast<std::uint64_t>(t_));
  w.write_u64(m_.size());
  for (std::size_t i = 0; i < m_.size(); ++i) {
    w.write_f32_vector(m_[i].vec());
    w.write_f32_vector(v_[i].vec());
  }
}

void Adam::load(BinaryReader& r) {
  const auto t = r.read_u64();
  const auto n = r.read_u64();
  MMHAND_CHECK(n == params_.size(),
               "optimizer state has " << n << " moment pairs, expected "
                                      << params_.size());
  // Two-phase: parse and validate everything before assigning anything,
  // so a mismatched checkpoint leaves the optimizer untouched.
  std::vector<std::vector<float>> ms, vs;
  ms.reserve(n);
  vs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto m = r.read_f32_vector();
    auto v = r.read_f32_vector();
    MMHAND_CHECK(m.size() == m_[i].numel() && v.size() == v_[i].numel(),
                 "optimizer moment " << i << " size mismatch");
    ms.push_back(std::move(m));
    vs.push_back(std::move(v));
  }
  for (std::size_t i = 0; i < n; ++i) {
    m_[i] = Tensor::from_vector(m_[i].shape(), std::move(ms[i]));
    v_[i] = Tensor::from_vector(v_[i].shape(), std::move(vs[i]));
  }
  t_ = static_cast<std::size_t>(t);
}

double cosine_decay(int epoch, int total_epochs) {
  MMHAND_CHECK(total_epochs >= 1, "cosine_decay epochs");
  if (epoch >= total_epochs) return 0.0;
  if (epoch < 0) epoch = 0;
  return 0.5 * (1.0 + std::cos(std::numbers::pi * static_cast<double>(epoch) /
                               static_cast<double>(total_epochs)));
}

}  // namespace mmhand::nn
