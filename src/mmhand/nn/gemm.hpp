#pragma once

// Shared SGEMM kernels for the NN hot path.
//
// One cache-blocked, row-parallel matrix multiply backs Conv2d (im2col),
// Linear, and the LSTM/GRU gate projections instead of per-layer ad-hoc
// loops.  All matrices are row-major and dense.  Every kernel *accumulates*
// into C (callers pre-fill C with the bias or zeros), and every kernel is
// deterministic: threads partition rows of C, and for a fixed output
// element the k-summation order never depends on the thread count, so
// results are bitwise identical at any `mmhand::num_threads()`.

namespace mmhand::nn {

/// C[m x n] += A[m x k] * B[k x n].
void gemm_acc(const float* a, const float* b, float* c, int m, int k, int n);

/// C[m x n] += A^T * B, with A stored row-major as [k x m].  This is the
/// transposed variant used by the backward passes (dX = W^T * dY).
void gemm_at_b_acc(const float* a, const float* b, float* c, int m, int k,
                   int n);

/// C[m x n] += A * B^T, with B stored row-major as [n x k].  Used where the
/// right operand is naturally row-major per output column (y = x W^T, and
/// dW = dY * cols^T).
void gemm_a_bt_acc(const float* a, const float* b, float* c, int m, int k,
                   int n);

/// y[m] += A[m x k] * x[k].  Row-parallel matrix-vector product for the
/// recurrent (per-timestep) gate projections.
void gemv_acc(const float* a, const float* x, float* y, int m, int k);

}  // namespace mmhand::nn
