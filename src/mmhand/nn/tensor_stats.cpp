#include "mmhand/nn/tensor_stats.hpp"

#include <cmath>
#include <limits>

namespace mmhand::nn {

TensorStats tensor_stats(const float* data, std::size_t n) {
  TensorStats s;
  s.count = n;
  double lo = std::numeric_limits<double>::max();
  double hi = std::numeric_limits<double>::lowest();
  double sum_sq = 0.0;
  std::size_t finite = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = data[i];
    if (std::isnan(v)) {
      ++s.nan_count;
      continue;
    }
    if (std::isinf(v)) {
      ++s.inf_count;
      continue;
    }
    ++finite;
    if (v < lo) lo = v;
    if (v > hi) hi = v;
    sum_sq += v * v;
  }
  if (finite > 0) {
    s.min = lo;
    s.max = hi;
    s.rms = std::sqrt(sum_sq / static_cast<double>(finite));
  }
  return s;
}

double grad_l2_norm(const std::vector<Parameter*>& params) {
  double sum_sq = 0.0;
  for (const Parameter* p : params) {
    const float* g = p->grad.data();
    const std::size_t n = p->grad.numel();
    for (std::size_t i = 0; i < n; ++i) {
      const double v = g[i];
      if (std::isfinite(v)) sum_sq += v * v;
    }
  }
  return std::sqrt(sum_sq);
}

}  // namespace mmhand::nn
