#pragma once

// Attention mechanisms of mmSpaceNet (§IV-A, Fig. 6).
//
// Two-stage channel attention followed by 3-D spatial attention, applied
// inside every residual block:
//   stage 1 (frame channels):    a_i = sigma(MLP(TGAP(X_i) + TGMP(X_i))),
//                                Y_i = a_i * X_i                  (Eq. 2-3)
//   stage 2 (velocity channels): b_i = sigma(FC([GAP(Y_i), GMP(Y_i)])),
//                                Z_i = b_i . Y_i                  (Eq. 4-5)
//   spatial:                     C_i = sigma(Conv([MEAN(Z_i), MAX(Z_i)])),
//                                W_i = C_i . Z_i                  (Eq. 6-7)
// Tensors are [st, C, H, W]: the segment's frames sit in the leading dim,
// feature channels generalize the velocity channels of the raw cube, and
// H x W is the range-angle map.

#include <memory>

#include "mmhand/nn/conv2d.hpp"
#include "mmhand/nn/linear.hpp"

namespace mmhand::nn {

/// Stage 1: weighs whole frames against each other.  The per-frame
/// descriptor TGAP+TGMP (three-dimensional pooling over C, H, W) runs
/// through a shared two-layer bottleneck ("a block with two convolutional
/// layers" — 1x1 convs across the frame channel, i.e. a shared MLP).
class FrameChannelAttention : public Layer {
 public:
  explicit FrameChannelAttention(Rng& rng, int hidden = 4);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return "FrameChannelAttention"; }

  /// Attention weights of the last forward (diagnostics / ablations).
  const Tensor& last_weights() const { return weights_; }

 private:
  Linear fc1_;
  Linear fc2_;
  Tensor cached_input_;
  Tensor relu_mask_;      ///< hidden-layer ReLU mask
  Tensor weights_;        ///< a_i, [st]
  std::vector<std::size_t> max_index_;  ///< argmax element per frame
};

/// Stage 2: weighs feature (velocity) channels within each frame using the
/// concatenated GAP/GMP descriptor and a single FC layer.
class ChannelAttention : public Layer {
 public:
  ChannelAttention(int channels, Rng& rng);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override { return fc_.parameters(); }
  std::string name() const override { return "ChannelAttention"; }

 private:
  int channels_;
  Linear fc_;  ///< [2C] -> [C]
  Tensor cached_input_;
  Tensor weights_;  ///< b, [N, C]
  std::vector<std::size_t> max_index_;  ///< argmax pixel per (n, c)
};

/// 3-D spatial attention: emphasizes range-angle cells where finger joints
/// live, from the across-channel MEAN/MAX maps.
class SpatialAttention : public Layer {
 public:
  explicit SpatialAttention(Rng& rng, int kernel = 5);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override { return conv_.parameters(); }
  std::string name() const override { return "SpatialAttention"; }

 private:
  Conv2d conv_;  ///< 2 -> 1 channels, same-size
  Tensor cached_input_;
  Tensor weights_;  ///< M, [N, 1, H, W]
  std::vector<int> max_channel_;  ///< argmax channel per (n, h, w)
};

}  // namespace mmhand::nn
