#include "mmhand/nn/sequential.hpp"

namespace mmhand::nn {

Tensor Sequential::forward(const Tensor& x, bool training) {
  MMHAND_CHECK(!layers_.empty(), "empty Sequential");
  Tensor y = x;
  for (auto& layer : layers_) y = layer->forward(y, training);
  return y;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  MMHAND_CHECK(!layers_.empty(), "empty Sequential");
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> out;
  for (auto& layer : layers_) {
    const auto p = layer->parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

}  // namespace mmhand::nn
