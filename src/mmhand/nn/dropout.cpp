#include "mmhand/nn/dropout.hpp"

namespace mmhand::nn {

Dropout::Dropout(double rate, Rng& rng) : rate_(rate), rng_(rng.fork()) {
  MMHAND_CHECK(rate >= 0.0 && rate < 1.0, "dropout rate " << rate);
}

Tensor Dropout::forward(const Tensor& x, bool training) {
  if (!training || rate_ == 0.0) {
    mask_ = Tensor();  // inference: backward would be a bug, flag it
    return x;
  }
  const float keep_scale = static_cast<float>(1.0 / (1.0 - rate_));
  mask_ = Tensor::zeros(x.shape());
  Tensor y = x;
  for (std::size_t i = 0; i < y.numel(); ++i) {
    if (rng_.bernoulli(rate_)) {
      y[i] = 0.0f;
    } else {
      y[i] *= keep_scale;
      mask_[i] = keep_scale;
    }
  }
  return y;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  MMHAND_CHECK(!mask_.empty(), "Dropout backward without training forward");
  MMHAND_CHECK(grad_out.same_shape(mask_), "Dropout grad shape");
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.numel(); ++i) g[i] *= mask_[i];
  return g;
}

}  // namespace mmhand::nn
